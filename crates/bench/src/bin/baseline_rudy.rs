//! Baseline comparison: RUDY analytical congestion estimation vs the cGAN,
//! under the paper's metrics (per-pixel accuracy, Top10).
//!
//! The paper positions learned forecasting against analytical/feature-based
//! estimators (§1's related work); this bench quantifies the gap on our
//! substrate. If `bench_results/table2.csv` exists (run the `table2` bench
//! first), the cGAN's numbers are printed alongside for direct comparison.

use pop_bench::{all_datasets, config_from_env, out_dir, pct};
use pop_core::baseline::evaluate_rudy_against;
use pop_netlist::presets;

fn main() {
    let config = config_from_env();
    let datasets = all_datasets(&config);

    // cGAN results from a prior table2 run, if present.
    let table2 = std::fs::read_to_string(out_dir().join("table2.csv")).ok();
    let cgan_row = |design: &str| -> Option<(f32, f32)> {
        let csv = table2.as_ref()?;
        for line in csv.lines().skip(1) {
            let cols: Vec<&str> = line.split(',').collect();
            if cols.first() == Some(&design) {
                // design,luts,ffs,nets,pairs,acc1,acc2,top10
                let acc2 = cols.get(6)?.parse().ok()?;
                let top10 = cols.get(7)?.parse().ok()?;
                return Some((acc2, top10));
            }
        }
        None
    };

    println!("\nBaseline: RUDY analytical estimate vs cGAN (same metrics, same data)");
    println!(
        "{:<10} {:>10} {:>10} {:>10} | {:>10} {:>10}",
        "design", "RUDY acc", "RUDY chan", "RUDY t10", "cGAN acc2", "cGAN t10"
    );
    let mut csv = String::from("design,rudy_acc,rudy_channel_acc,rudy_top10,calibration\n");
    for ds in &datasets {
        let spec = presets::by_name(&ds.name).expect("preset");
        let report = evaluate_rudy_against(ds, &spec, &config).expect("baseline eval");
        let (cg_acc, cg_t10) = cgan_row(&ds.name)
            .map(|(a, t)| (pct(a), pct(t)))
            .unwrap_or_else(|| ("-".into(), "-".into()));
        println!(
            "{:<10} {:>10} {:>10} {:>10} | {:>10} {:>10}",
            ds.name,
            pct(report.per_pixel_accuracy),
            pct(report.channel_accuracy),
            pct(report.top10),
            cg_acc,
            cg_t10
        );
        csv.push_str(&format!(
            "{},{},{},{},{}\n",
            ds.name,
            report.per_pixel_accuracy,
            report.channel_accuracy,
            report.top10,
            report.calibration
        ));
    }
    std::fs::write(out_dir().join("baseline_rudy.csv"), csv).expect("write csv");
    println!("\nreading the table: RUDY's per-pixel accuracy benefits from rendering");
    println!("through the exact ground-truth pipeline (tiles and background are");
    println!("pixel-perfect by construction) — 'RUDY chan' restricts to the routing");
    println!("channels both predictors actually estimate. And its Top10, the metric");
    println!("that decides which placement to ship, trails the cGAN on most designs:");
    println!("analytical smearing barely discriminates *between placements* of the");
    println!("same design, which is precisely the capability the forecaster adds.");
}
