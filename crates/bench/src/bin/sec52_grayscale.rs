//! Regenerates **§5.2** (colour scheme vs grayscale): trains one model on
//! RGB `img_place` inputs and one on grayscale-converted inputs, then
//! compares per-pixel accuracy, training time and inference time.
//!
//! Paper claims: grayscale drops average accuracy by 3–5 %, saves ~20 %
//! training time and ~50 % inference time (fewer input channels), and the
//! inference images come out "brighter" than the ground truth.

use pop_bench::{config_from_env, out_dir, pct};
use pop_core::dataset::build_or_load;
use pop_core::{metrics, ExperimentConfig, Pix2Pix};
use pop_netlist::presets;
use std::time::Instant;

fn run(config: &ExperimentConfig, label: &str) -> (f32, f64, f64) {
    let spec = presets::by_name("raygentop").expect("preset");
    let ds = build_or_load(&spec, config, Some(&pop_bench::cache_dir())).expect("dataset");
    let split = ds.pairs.len() * 3 / 4;
    let (train, test) = ds.pairs.split_at(split.max(1));

    let mut model = Pix2Pix::new(config, config.seed).expect("valid config");
    let t0 = Instant::now();
    let _ = model.train(train, config.epochs);
    let train_secs = t0.elapsed().as_secs_f64();

    let t1 = Instant::now();
    let acc = metrics::evaluate_accuracy(&mut model, test, config.tolerance)
        .expect("model and corpus share a resolution");
    let infer_secs = t1.elapsed().as_secs_f64() / test.len().max(1) as f64;
    eprintln!("[sec52] {label}: trained {train_secs:.1}s, infer {infer_secs:.4}s/img");
    (acc, train_secs, infer_secs)
}

fn main() {
    let rgb_config = config_from_env();
    let gray_config = ExperimentConfig {
        grayscale_input: true,
        ..rgb_config.clone()
    };

    println!("\n§5.2 — colour scheme vs grayscale input (design: raygentop)");
    let (acc_rgb, t_rgb, i_rgb) = run(&rgb_config, "rgb");
    let (acc_gray, t_gray, i_gray) = run(&gray_config, "grayscale");

    println!(
        "{:<11} {:>9} {:>12} {:>14}",
        "input", "pixelAcc", "train (s)", "infer (s/img)"
    );
    println!(
        "{:<11} {:>9} {:>12.1} {:>14.4}",
        "rgb",
        pct(acc_rgb),
        t_rgb,
        i_rgb
    );
    println!(
        "{:<11} {:>9} {:>12.1} {:>14.4}",
        "grayscale",
        pct(acc_gray),
        t_gray,
        i_gray
    );
    println!(
        "\naccuracy delta: {:+.1} pts (paper: −3..−5 pts) | train time: {:+.0}% (paper ≈ −20%) | inference: {:+.0}% (paper ≈ −50%)",
        (acc_gray - acc_rgb) * 100.0,
        (t_gray / t_rgb - 1.0) * 100.0,
        (i_gray / i_rgb - 1.0) * 100.0
    );
    let mut csv = String::from("input,acc,train_secs,infer_secs\n");
    csv.push_str(&format!("rgb,{acc_rgb},{t_rgb},{i_rgb}\n"));
    csv.push_str(&format!("grayscale,{acc_gray},{t_gray},{i_gray}\n"));
    std::fs::write(out_dir().join("sec52.csv"), csv).expect("write csv");
}
