//! Serving-engine driver: checkpoint → registry → engine → concurrent
//! clients, printing throughput, latency and batch-occupancy telemetry.
//!
//! Exercises the whole `pop-serve` stack the way a deployment would: a
//! model is trained briefly, checkpointed to disk, loaded back through the
//! LRU [`ModelRegistry`], served by a [`ForecastEngine`], and queried by
//! several client threads at once — including one running the §5.4
//! real-time forecast app through the engine.
//!
//! Run with: `cargo run --release -p pop-bench --bin serve_demo`
//! (`POP_SCALE=test|quick` selects the model scale.)

use pop_bench::config_from_env;
use pop_core::apps::realtime_forecast_with;
use pop_core::{dataset, model_io, Pix2Pix};
use pop_netlist::presets;
use pop_nn::Tensor;
use pop_place::PlaceOptions;
use pop_serve::{EngineConfig, ForecastEngine, ModelRegistry};
use std::time::{Duration, Instant};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let config = config_from_env();
    let spec = presets::by_name("diffeq1").expect("preset exists");

    println!(
        "training a {}x{} forecaster...",
        config.resolution, config.resolution
    );
    let ds = dataset::build_design_dataset(&spec, &config)?;
    let mut model = Pix2Pix::new(&config, 17)?;
    let _ = model.train(&ds.pairs, config.epochs.min(2));

    // Checkpoint → registry → engine: the deployment path.
    let ckpt = std::env::temp_dir().join("pop_serve_demo/model.ckpt");
    model_io::save_model(&mut model, &ckpt)?;
    let registry = ModelRegistry::new(4);
    let shared = registry.get_or_load(&config, &ckpt)?;
    println!("checkpoint {} loaded through the registry", ckpt.display());

    let engine = ForecastEngine::start_shared(
        &shared,
        EngineConfig {
            max_batch: 8,
            max_wait: Duration::from_millis(2),
            ..EngineConfig::default()
        },
    )?;

    // Concurrent clients: raw forecast traffic plus the §5.4 realtime app.
    const CLIENTS: usize = 4;
    const PER_CLIENT: usize = 24;
    let started = Instant::now();
    let traffic: Vec<_> = (0..CLIENTS)
        .map(|t| {
            let client = engine.client();
            let config = config.clone();
            std::thread::spawn(move || {
                for i in 0..PER_CLIENT {
                    let x = Tensor::randn(
                        [
                            1,
                            config.input_channels(),
                            config.resolution,
                            config.resolution,
                        ],
                        0.0,
                        0.5,
                        (t * PER_CLIENT + i) as u64,
                    );
                    client.forecast(&x).expect("forecast answered");
                }
            })
        })
        .collect();

    let (arch, netlist, _) = dataset::design_fabric(&spec, &config)?;
    let snapshots = realtime_forecast_with(
        &engine.client(),
        &arch,
        &netlist,
        &PlaceOptions {
            seed: 99,
            ..Default::default()
        },
        &config,
        500,
        8,
    )?;

    for t in traffic {
        t.join().expect("client thread");
    }
    let wall = started.elapsed();
    let stats = engine.shutdown();

    println!(
        "\n{} forecasts ({} raw + {} realtime-app) in {:.2}s -> {:.1} QPS",
        stats.completed,
        CLIENTS * PER_CLIENT,
        snapshots.len(),
        wall.as_secs_f64(),
        stats.completed as f64 / wall.as_secs_f64(),
    );
    println!(
        "batches: {} (mean occupancy {:.2}, max {}), latency mean {:.1} ms / max {:.1} ms",
        stats.batches,
        stats.mean_batch_occupancy,
        stats.max_batch,
        stats.mean_latency_us / 1e3,
        stats.max_latency_us as f64 / 1e3,
    );
    println!(
        "realtime app saw congestion {:.4} -> {:.4} over {} snapshots",
        snapshots
            .first()
            .map(|s| s.predicted_mean_congestion)
            .unwrap_or(0.0),
        snapshots
            .last()
            .map(|s| s.predicted_mean_congestion)
            .unwrap_or(0.0),
        snapshots.len(),
    );
    let _ = std::fs::remove_file(&ckpt);
    Ok(())
}
