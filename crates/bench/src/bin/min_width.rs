//! Regenerates the Figure 2 caption statistic — "Routing succeeded with a
//! channel width factor of 34" — for every design: the binary-searched
//! minimum channel width of a default placement, and the calibrated width
//! (minimum × margin) the dataset fabric actually uses.

use pop_arch::Arch;
use pop_bench::{config_from_env, out_dir};
use pop_core::dataset::design_fabric;
use pop_netlist::{generate, presets};
use pop_place::{place, PlaceOptions};
use pop_route::{min_channel_width, RouteOptions};

fn main() {
    let config = config_from_env();
    println!("\nChannel width factors (scale {})", config.design_scale);
    println!(
        "{:<10} {:>8} {:>8} {:>8} {:>10}",
        "design", "grid", "min W", "used W", "wirelen"
    );
    let mut csv = String::from("design,grid,min_width,used_width,wirelength\n");
    for spec in presets::all() {
        let scaled = spec.scaled(config.design_scale);
        let netlist = generate(&scaled);
        let (c, i, m, x) = netlist.site_demand();
        let probe = Arch::auto_size(c, i, m, x, 8, 1.3).expect("arch");
        let placement = place(&probe, &netlist, &PlaceOptions::default()).expect("placement");
        let (min_w, result) =
            min_channel_width(&probe, &netlist, &placement, &RouteOptions::default())
                .expect("width search");
        let (_, _, used_w) = design_fabric(&spec, &config).expect("fabric");
        let grid = format!("{}x{}", probe.width(), probe.height());
        println!(
            "{:<10} {:>8} {:>8} {:>8} {:>10}",
            spec.name,
            grid,
            min_w,
            used_w,
            result.wirelength()
        );
        csv.push_str(&format!(
            "{},{grid},{min_w},{used_w},{}\n",
            spec.name,
            result.wirelength()
        ));
    }
    std::fs::write(out_dir().join("min_width.csv"), csv).expect("write csv");
    println!("\n(the paper's diffeq1-class example routes at W=34 full-scale; scaled");
    println!(" instances concentrate traffic, so widths are design- and scale-specific)");
}
