//! Extension experiment (beyond the paper's evaluation, implementing its
//! §1 motivation): **congestion-aware placement**. The annealer runs as
//! usual; the cGAN forecasts every snapshot; the flow ships the snapshot
//! with the lowest *predicted* congestion. Both the congestion-aware choice
//! and the congestion-blind final placement are then actually routed, so
//! the comparison below is against ground truth.

use pop_bench::{config_from_env, dataset_for, out_dir};
use pop_core::apps::congestion_aware_place;
use pop_core::dataset::design_fabric;
use pop_core::Pix2Pix;
use pop_netlist::presets;
use pop_place::{place, PlaceOptions};
use pop_route::{route, RouteOptions};

fn main() {
    let config = config_from_env();
    let design = "OR1200";
    let ds = dataset_for(design, &config);
    let mut model = Pix2Pix::new(&config, config.seed).expect("valid config");
    let _ = model.train(&ds.pairs, config.epochs);

    let spec = presets::by_name(design).expect("preset");
    let (arch, netlist, _) = design_fabric(&spec, &config).expect("fabric");

    println!("\nCongestion-aware placement on {design} (forecast-guided snapshot selection)");
    println!(
        "{:>6} {:>12} {:>12} {:>12} {:>12} {:>9}",
        "seed", "pred(sel)", "pred(final)", "true(sel)", "true(final)", "win"
    );
    let mut csv = String::from("seed,pred_selected,pred_final,true_selected,true_final,improved\n");
    let mut wins = 0;
    let mut total = 0;
    for seed in [901u64, 902, 903] {
        let opts = PlaceOptions {
            seed,
            ..Default::default()
        };
        let aware =
            congestion_aware_place(&mut model, &arch, &netlist, &opts, &config, 2_000, 4_000)
                .expect("aware placement");
        // Ground truth: route the selected snapshot and the blind final
        // placement of an identical annealing run.
        let blind = place(&arch, &netlist, &opts).expect("blind placement");
        let r_sel = route(&arch, &netlist, &aware.placement, &RouteOptions::default())
            .expect("route selected");
        let r_blind =
            route(&arch, &netlist, &blind, &RouteOptions::default()).expect("route final");
        let true_sel = r_sel.congestion().mean_utilization();
        let true_blind = r_blind.congestion().mean_utilization();
        let improved = true_sel <= true_blind;
        wins += usize::from(improved);
        total += 1;
        println!(
            "{:>6} {:>12.4} {:>12.4} {:>12.4} {:>12.4} {:>9}",
            seed,
            aware.predicted_congestion,
            aware.final_predicted_congestion,
            true_sel,
            true_blind,
            if improved { "yes" } else { "no" }
        );
        csv.push_str(&format!(
            "{seed},{},{},{true_sel},{true_blind},{improved}\n",
            aware.predicted_congestion, aware.final_predicted_congestion
        ));
    }
    std::fs::write(out_dir().join("aware_placement.csv"), csv).expect("write csv");
    println!("\nforecast-guided selection matched or beat the blind flow on {wins}/{total} runs");
    println!("(no routing inside the selection loop — only for this validation)");
}
