//! The cross-scenario generalization experiment: Table 2's metrics as a
//! K×K matrix (train on scenario X, evaluate on scenario Y's held-out
//! split), emitted as `BENCH_eval.json`.
//!
//! ```text
//! cargo run --release --bin eval_matrix [-- OPTIONS]
//!
//!   --scenarios a,b,c   registry scenarios forming the matrix axis
//!                       (default: baseline,highfanout,longrange; all
//!                       axis members must share one resolution)
//!   --ci                the reduced 2-scenario smoke matrix (16x16) the
//!                       CI eval-smoke step runs
//!   --epochs N          streaming training epochs per model
//!   --eval-pairs N      held-out placements per design variant
//!   --replicates N      seed replicates behind each cell's mean ± CI
//!   --threads N         cell fan-out width (never changes the numbers)
//!   --cache-dir DIR     corpus cache: a warm re-run regenerates nothing
//!   --out PATH          where to write the JSON (default repo-root
//!                       BENCH_eval.json)
//!   --trace-out PATH    enable span tracing and write the run's
//!                       pop_obs::RunReport (eval_train/eval_holdout/
//!                       eval_cell span tree + metrics) to PATH
//! ```
//!
//! The printed summary includes machine-checkable lines (`matrix
//! complete…`, `warm run…`, `diagonal acc1 … vs RUDY`) that the CI smoke
//! greps.

use pop_eval::{evaluate_matrix, EvalMatrix, MatrixSpec};
use pop_pipeline::{scenario, PipelineOptions, ScenarioSpec};
use std::time::Instant;

/// The reduced matrix the CI eval-smoke runs: two 16×16 scenarios whose
/// data actually differs (at the smoke design scale the fabric-density
/// knob rounds away, so the shifted scenario changes the *design family*:
/// a broadcast-heavy, weak-locality diffeq1), sized so the whole step —
/// cold run, warm run, assertions — stays in CI minutes.
fn ci_scenarios() -> Vec<ScenarioSpec> {
    let smoke = ScenarioSpec {
        // Bigger and hotter than the registry smoke scenario: at the
        // 0.01 design scale congestion is so smooth that a calibrated
        // analytical smear is near-optimal and the detail-level
        // comparison degenerates; a denser fabric gives the learned
        // model actual spatial structure to win on. Six pairs per epoch
        // make the streamed corpus a real training signal.
        design_scale: 0.02,
        target_utilization: 0.95,
        pairs_per_design: 6,
        ..scenario::by_name("smoke").expect("registry scenario")
    };
    let shifted = ScenarioSpec {
        name: "smoke-shift".into(),
        design: "diffeq1".into(),
        ..smoke.clone()
    };
    vec![smoke, shifted]
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Default axis: three registry scenarios that differ along the
    // net-profile knobs — design family, fanout, locality — which shift
    // the distribution at every design scale. (`dense`/`wide` are now
    // sized so their fabric knobs genuinely bite, but at that scale each
    // cell costs minutes of annealing; the default axis keeps the matrix
    // cheap. Add them explicitly via --scenarios for the full spread.)
    let mut names = vec![
        "baseline".to_string(),
        "highfanout".to_string(),
        "longrange".to_string(),
    ];
    let mut ci = false;
    let mut scenarios_given = false;
    let mut epochs: Option<usize> = None;
    let mut eval_pairs: Option<usize> = None;
    let mut replicates: Option<usize> = None;
    let mut threads: Option<usize> = None;
    let mut filters: Option<usize> = None;
    let mut tolerance: Option<f32> = None;
    let mut cache_dir: Option<std::path::PathBuf> = None;
    let mut out: Option<std::path::PathBuf> = None;
    let mut trace_out: Option<std::path::PathBuf> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |what: &str| args.next().ok_or(format!("{arg} needs {what}"));
        match arg.as_str() {
            "--scenarios" => {
                scenarios_given = true;
                names = value("a comma-separated list")?
                    .split(',')
                    .map(|s| s.trim().to_string())
                    .filter(|s| !s.is_empty())
                    .collect();
            }
            "--ci" => ci = true,
            "--epochs" => epochs = Some(value("a count")?.parse()?),
            "--eval-pairs" => eval_pairs = Some(value("a count")?.parse()?),
            "--replicates" => replicates = Some(value("a count")?.parse()?),
            "--threads" => threads = Some(value("a count")?.parse()?),
            "--filters" => filters = Some(value("a count")?.parse()?),
            "--tolerance" => tolerance = Some(value("a per-channel tolerance")?.parse()?),
            "--cache-dir" => cache_dir = Some(value("a path")?.into()),
            "--out" => out = Some(value("a path")?.into()),
            "--trace-out" => trace_out = Some(value("a path")?.into()),
            other => return Err(format!("unknown argument '{other}'").into()),
        }
    }

    let scenarios = if ci {
        if scenarios_given {
            return Err("--ci uses its own fixed 2-scenario axis; drop --scenarios \
                        (or drop --ci to benchmark a custom axis)"
                .into());
        }
        ci_scenarios()
    } else {
        names
            .iter()
            .map(|n| {
                scenario::by_name(n)
                    .ok_or_else(|| format!("unknown scenario '{n}' (see pop::pipeline::scenario)"))
            })
            .collect::<Result<Vec<_>, _>>()?
    };

    let mut spec = MatrixSpec::new(scenarios);
    // CI defaults are smaller but still past the RUDY floor; explicit
    // flags override either mode's defaults.
    spec.train_epochs = epochs.unwrap_or(300);
    spec.eval_pairs = eval_pairs.unwrap_or(if ci { 10 } else { 12 });
    spec.replicates = replicates.unwrap_or(if ci { 2 } else { 3 });
    // Capacity past the tiny test-config default: the diagonal is
    // expected to clear the RUDY per-pixel floor, which the 4-filter
    // miniature cannot reach.
    spec.model_filters = Some(filters.unwrap_or(12));
    if let Some(t) = tolerance {
        spec.metrics.tolerance = t;
    }
    if let Some(t) = threads {
        spec.threads = t;
    }
    spec.options = PipelineOptions::with_workers(4);
    if let Some(dir) = &cache_dir {
        spec.options = spec.options.clone().with_cache_dir(dir);
        println!("cache dir: {}", dir.display());
    }

    let k = spec.scenarios.len();
    println!(
        "eval matrix: {k}x{k} scenarios at {res}x{res}, {e} train epoch(s), \
         {p} eval pair(s)/variant, {r} replicate(s), {t} cell threads",
        res = spec.scenarios[0].resolution,
        e = spec.train_epochs,
        p = spec.eval_pairs,
        r = spec.replicates,
        t = spec.threads,
    );
    let t0 = Instant::now();
    if trace_out.is_some() {
        pop_obs::enable_tracing();
    }
    let matrix = evaluate_matrix(&spec)?;
    let elapsed = t0.elapsed();

    print_summary(&matrix);
    println!("wall clock: {elapsed:.1?}");

    let path = out.unwrap_or_else(|| {
        std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_eval.json")
    });
    std::fs::write(&path, matrix.to_json())?;
    println!("wrote {}", path.display());

    if let Some(trace_path) = &trace_out {
        let report = pop_obs::RunReport::capture("eval_matrix", t0, pop_obs::global());
        report.write_json(trace_path)?;
        let text = std::fs::read_to_string(trace_path)?;
        pop_obs::json::parse(&text).map_err(|e| format!("trace report invalid: {e}"))?;
        let span_count = |name: &str| {
            pop_obs::find_span(&report.spans, name)
                .map(|n| n.count)
                .unwrap_or(0)
        };
        println!(
            "trace report: {} ({} root spans, {} dropped) parses OK",
            trace_path.display(),
            report.spans.len(),
            report.dropped_spans
        );
        println!(
            "trace eval spans: eval_train={} eval_holdout={} eval_cell={}",
            span_count("eval_train"),
            span_count("eval_holdout"),
            span_count("eval_cell"),
        );
    }
    Ok(())
}

fn print_summary(matrix: &EvalMatrix) {
    let k = matrix.k();
    if matrix.is_complete() {
        println!("matrix complete: {k}x{k} cells, all metrics finite");
    } else {
        println!("matrix INCOMPLETE: missing or non-finite cells");
    }

    // Acc.1 means, train scenarios down, eval scenarios across.
    println!("\nAcc.1 (mean over replicates); rows = trained on, cols = evaluated on");
    print!("{:<14}", "");
    for name in &matrix.scenarios {
        print!("{name:>14}");
    }
    println!();
    for (i, name) in matrix.scenarios.iter().enumerate() {
        print!("{name:<14}");
        for j in 0..k {
            let c = &matrix.cells[i][j];
            print!("{:>14}", format!("{:.3}±{:.3}", c.mean.acc1, c.ci95.acc1));
        }
        println!();
    }

    let diag = matrix.diagonal_mean();
    println!(
        "\ndiagonal means: acc1 {:.3}, acc2 {:.3}, chan_acc1 {:.3}, top {:.3}, \
         pearson {:.3}, spearman {:.3}, nrms {:.4}",
        diag.acc1, diag.acc2, diag.chan_acc1, diag.top, diag.pearson, diag.spearman, diag.nrms
    );
    if let (Some(off), Some(gap)) = (matrix.off_diagonal_mean(), matrix.generalization_gap()) {
        println!(
            "off-diagonal means: acc1 {:.3}, acc2 {:.3}, chan_acc1 {:.3}, top {:.3}, \
             pearson {:.3}, spearman {:.3}, nrms {:.4}",
            off.acc1, off.acc2, off.chan_acc1, off.top, off.pearson, off.spearman, off.nrms
        );
        println!(
            "generalization gap (diag - off-diag): acc1 {:+.3}, acc2 {:+.3}, \
             chan_acc1 {:+.3}, top {:+.3}, pearson {:+.3}, spearman {:+.3}, nrms {:+.4}",
            gap.acc1, gap.acc2, gap.chan_acc1, gap.top, gap.pearson, gap.spearman, gap.nrms
        );
    }

    // The learned-vs-analytical comparison: each diagonal cell against
    // RUDY on the same held-out split. Full-image Acc.1 is printed for
    // the paper's record, but the verdict is judged on **channel
    // accuracy** — RUDY's block tiles render through the ground-truth
    // pipeline (pixel-perfect by construction), so only the routing
    // channels compare the two predictors on work they both do.
    let mut beats = 0usize;
    let mut scored = 0usize;
    for (j, baseline) in matrix.baseline.iter().enumerate() {
        let Some(b) = baseline else { continue };
        let cell = &matrix.cells[j][j].mean;
        scored += 1;
        let verdict = if cell.chan_acc1 > b.channel_accuracy {
            beats += 1;
            "beats baseline"
        } else {
            "below baseline"
        };
        println!(
            "diagonal {}: channel acc1 {:.3} vs RUDY {:.3} ({verdict}); \
             full-image acc1 {:.3} vs RUDY {:.3}; spearman {:.3} vs RUDY {:.3}",
            matrix.scenarios[j],
            cell.chan_acc1,
            b.channel_accuracy,
            cell.acc1,
            b.accuracy,
            cell.spearman,
            b.spearman
        );
    }
    if scored > 0 {
        println!("diagonal channel acc1 beats RUDY baseline: {beats}/{scored} scenarios");
    }

    let c = &matrix.corpus;
    println!(
        "corpus: jobs {}, cache hits {}, place-stage runs {}, route-stage runs {}",
        c.jobs, c.cache_hits, c.place_stage_runs, c.route_stage_runs
    );
    // Baseline replay accounting: with a cache dir, warm runs load the
    // scored RUDY records from disk, so this must read `replays: 0`.
    let snap = pop_obs::global().snapshot();
    println!(
        "baseline replays: {} (cached splits: {})",
        snap.counter("eval.baseline.replay").unwrap_or(0),
        snap.counter("eval.baseline.cached").unwrap_or(0)
    );
    if c.fully_warm() {
        println!("warm run: corpus streamed straight from disk (zero pairs regenerated)");
    }
}
