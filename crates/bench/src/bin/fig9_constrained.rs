//! Regenerates **Figure 9**: constrained placement exploration on `ode`.
//!
//! Five objectives, as in the paper: overall max-congestion, overall
//! min-congestion, and min-congestion constrained to the upper / lower /
//! right side of the floorplan. For each objective the model ranks every
//! placement by *predicted* regional congestion; we report how its choice
//! ranks under the ground truth, and write the predicted + true heat maps
//! of each chosen placement (the Output/Truth rows of the figure).

use pop_bench::{config_from_env, dataset_for, out_dir};
use pop_core::apps::{constrained_exploration, Objective, Region};
use pop_core::features::tensor_to_image;
use pop_core::Pix2Pix;

fn main() {
    let config = config_from_env();
    let ds = dataset_for("ode", &config);
    let dir = out_dir().join("fig9");
    std::fs::create_dir_all(&dir).expect("fig9 dir");

    // Train on ode's own sweep (the paper explores within the ode dataset).
    let mut model = Pix2Pix::new(&config, config.seed).expect("valid config");
    let _ = model.train(&ds.pairs, config.epochs);

    let queries = [
        (Region::Overall, Objective::Max),
        (Region::Overall, Objective::Min),
        (Region::Upper, Objective::Min),
        (Region::Lower, Objective::Min),
        (Region::Right, Objective::Min),
    ];
    let results = constrained_exploration(&mut model, &ds, &queries);

    println!(
        "\nFigure 9 — constrained placement exploration on ode ({} placements)",
        ds.pairs.len()
    );
    println!(
        "{:<22} {:>7} {:>10} {:>10} {:>9} {:>10}",
        "objective", "chosen", "predicted", "true", "trueBest", "trueRank"
    );
    let mut csv =
        String::from("region,objective,chosen,predicted_score,true_score,true_best,true_rank\n");
    for r in &results {
        let label = format!("{:?}-{:?}", r.region, r.objective);
        println!(
            "{:<22} {:>7} {:>10.4} {:>10.4} {:>9} {:>10}",
            label,
            r.chosen,
            r.predicted_score,
            r.true_score_of_chosen,
            r.true_best,
            r.true_rank_of_chosen
        );
        csv.push_str(&format!(
            "{:?},{:?},{},{},{},{},{}\n",
            r.region,
            r.objective,
            r.chosen,
            r.predicted_score,
            r.true_score_of_chosen,
            r.true_best,
            r.true_rank_of_chosen
        ));
        // Output / Truth image pair for the chosen placement.
        let chosen = &ds.pairs[r.chosen];
        model
            .forecast_image(&chosen.x)
            .write_pnm(dir.join(format!("{label}_output.ppm")))
            .expect("write output");
        tensor_to_image(&chosen.y)
            .write_pnm(dir.join(format!("{label}_truth.ppm")))
            .expect("write truth");
    }
    std::fs::write(out_dir().join("fig9.csv"), csv).expect("write csv");
    let good = results.iter().filter(|r| r.true_rank_of_chosen < 5).count();
    println!(
        "\nshape check: {good}/{} choices rank in the true top-5 for their objective",
        results.len()
    );
    println!("images: {}", dir.display());
}
