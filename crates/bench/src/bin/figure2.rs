//! Regenerates **Figure 2**, the motivating example: (a) `img_floor`,
//! (b) `img_place`, (d) `img_route` (the routing heat map used as ground
//! truth) and (e) the pixel difference `img_route − img_place`, plus the
//! Figure 4 connectivity images of two different placements.

use pop_bench::{config_from_env, out_dir};
use pop_core::dataset::design_fabric;
use pop_netlist::presets;
use pop_place::{place, PlaceOptions};
use pop_raster::{
    render_congestion, render_connectivity, render_floorplan, render_placement, render_routing,
    Image,
};
use pop_route::{route, RouteOptions};

fn main() {
    let config = config_from_env();
    let spec = presets::by_name("diffeq1").expect("preset");
    let (arch, netlist, width) = design_fabric(&spec, &config).expect("fabric");
    let dir = out_dir().join("figure2");
    std::fs::create_dir_all(&dir).expect("figure2 dir");
    let side = config.resolution.max(128); // keep the showcase images legible

    let placement = place(&arch, &netlist, &PlaceOptions::default()).expect("placement");
    let routing = route(&arch, &netlist, &placement, &RouteOptions::default()).expect("routing");

    let img_floor = render_floorplan(&arch, side);
    let img_place = render_placement(&arch, &netlist, &placement, side);
    let img_wires = render_routing(&arch, &netlist, &placement, routing.routes(), side);
    let img_route = render_congestion(&arch, &netlist, &placement, routing.congestion(), side);

    // (e): exact per-pixel difference, visualised as |route − place|.
    let mut diff = Image::zeros(side, side, 3);
    for (o, (a, b)) in diff
        .data_mut()
        .iter_mut()
        .zip(img_route.data().iter().zip(img_place.data()))
    {
        *o = (a - b).abs();
    }

    img_floor
        .write_pnm(dir.join("a_img_floor.ppm"))
        .expect("write");
    img_place
        .write_pnm(dir.join("b_img_place.ppm"))
        .expect("write");
    img_wires
        .write_pnm(dir.join("c_routing_result.ppm"))
        .expect("write");
    img_route
        .write_pnm(dir.join("d_img_route.ppm"))
        .expect("write");
    diff.write_pnm(dir.join("e_difference.ppm")).expect("write");

    // Figure 4: connectivity images of two different placements.
    let placement2 = place(
        &arch,
        &netlist,
        &PlaceOptions {
            seed: 42,
            ..Default::default()
        },
    )
    .expect("placement 2");
    render_connectivity(&arch, &netlist, &placement, side)
        .write_pnm(dir.join("fig4_connectivity_a.pgm"))
        .expect("write");
    render_connectivity(&arch, &netlist, &placement2, side)
        .write_pnm(dir.join("fig4_connectivity_b.pgm"))
        .expect("write");

    println!(
        "\nFigure 2 — motivating example (diffeq1 at scale {})",
        config.design_scale
    );
    println!(
        "grid {}x{} tiles, channel width factor {} ({}), peak utilisation {:.2}",
        arch.width(),
        arch.height(),
        width,
        if routing.success {
            "routing succeeded"
        } else {
            "overuse remains"
        },
        routing.congestion().max_utilization()
    );
    println!("images written to {}", dir.display());
}
