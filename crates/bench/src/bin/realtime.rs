//! Regenerates the **§5.4 real-time forecast** demo: congestion is
//! forecast *while the design is being placed* by the simulated annealer
//! (the paper ships this as GIF videos; we print the trajectory and dump
//! frames).
//!
//! The printed series shows predicted congestion falling alongside the
//! annealer's cost — forecasting quality during placement is what makes
//! congestion-aware placement loops possible.

use pop_bench::{config_from_env, dataset_for, out_dir};
use pop_core::apps::realtime_forecast;
use pop_core::dataset::design_fabric;
use pop_core::Pix2Pix;
use pop_netlist::presets;
use pop_place::PlaceOptions;

fn main() {
    let config = config_from_env();
    // Train on the diffeq1 sweep, forecast a fresh annealing run.
    let ds = dataset_for("diffeq1", &config);
    let mut model = Pix2Pix::new(&config, config.seed).expect("valid config");
    let _ = model.train(&ds.pairs, config.epochs);

    let spec = presets::by_name("diffeq1").expect("preset");
    let (arch, netlist, _) = design_fabric(&spec, &config).expect("fabric");
    let options = PlaceOptions {
        seed: 0xF0E57,
        ..Default::default()
    };
    let snapshots = realtime_forecast(&mut model, &arch, &netlist, &options, &config, 150, 60)
        .expect("realtime forecast");

    println!("\n§5.4 — real-time congestion forecast during annealing (diffeq1)");
    println!(
        "{:>10} {:>14} {:>14} {:>12}",
        "moves", "place cost", "temperature", "predCong"
    );
    let mut csv = String::from("moves,cost,temperature,predicted_mean_congestion\n");
    for s in &snapshots {
        println!(
            "{:>10} {:>14.1} {:>14.4} {:>12.4}",
            s.moves, s.cost, s.temperature, s.predicted_mean_congestion
        );
        csv.push_str(&format!(
            "{},{},{},{}\n",
            s.moves, s.cost, s.temperature, s.predicted_mean_congestion
        ));
    }
    std::fs::write(out_dir().join("realtime.csv"), csv).expect("write csv");

    let first = snapshots.first().map(|s| s.predicted_mean_congestion);
    let last = snapshots.last().map(|s| s.predicted_mean_congestion);
    if let (Some(f), Some(l)) = (first, last) {
        println!(
            "\nshape check: predicted congestion {f:.4} -> {l:.4} as placement improves ({})",
            if l <= f {
                "falls ✓"
            } else {
                "did not fall ✗"
            }
        );
    }
}
