//! Regenerates **Table 2**: per-design Acc.1 (leave-one-design-out
//! per-pixel accuracy), Acc.2 (after fine-tuning on a few pairs of the
//! held-out design) and Top10 (min-congestion placement retrieval).
//!
//! Strategy 1 trains on every design except the one under test; strategy 2
//! then fine-tunes on the first `finetune_pairs` pairs of the held-out
//! design, and accuracy is evaluated on the remaining pairs. Top10 uses
//! the strategy-2 model, as in the paper.

use pop_bench::{all_datasets, config_from_env, out_dir, pct, PAPER_TABLE2};
use pop_core::dataset::leave_one_out;
use pop_core::{ExclusiveForecaster, MetricSet, Pix2Pix};
use pop_netlist::{generate, presets};
use std::fmt::Write as _;
use std::time::Instant;

fn main() {
    let config = config_from_env();
    eprintln!(
        "[table2] scale: {}x{} res, {} pairs/design, {} epochs, design scale {}",
        config.resolution,
        config.resolution,
        config.pairs_per_design,
        config.epochs,
        config.design_scale
    );
    let datasets = all_datasets(&config);

    println!(
        "\nTable 2 — experimental results ({} scaled designs, {} placements each)",
        datasets.len(),
        config.pairs_per_design
    );
    println!(
        "{:<10} {:>6} {:>5} {:>6} {:>4} | {:>7} {:>7} {:>6} | {:>7} {:>7} {:>6}",
        "Design",
        "#LUTs",
        "#FF",
        "#Nets",
        "#P",
        "Acc.1",
        "Acc.2",
        "Top10",
        "pAcc.1",
        "pAcc.2",
        "pTop10"
    );

    let mut csv = String::from("design,luts,ffs,nets,pairs,acc1,acc2,top10\n");
    for held_out in PAPER_TABLE2.iter().map(|r| r.0) {
        let t0 = Instant::now();
        let (train, test) = leave_one_out(&datasets, held_out);

        // The paper's literal Top10 (not the fraction-scaled eval-harness
        // default), all metrics fed from one batched sweep per model.
        let metric10 = MetricSet::from_config(&config).with_top_count(10);

        // Strategy 1: train on the other designs only.
        let mut model = Pix2Pix::new(&config, config.seed).expect("valid config");
        let _ = model.train_refs(&train, config.epochs);
        let acc1 = metric10
            .evaluate(&ExclusiveForecaster::new(&mut model), test)
            .expect("model and corpus share a resolution")
            .accuracy;

        // Strategy 2: fine-tune on a few pairs of the held-out design,
        // then ONE inference sweep over the whole design feeds both Acc.2
        // (the pairs not used for fine-tuning) and Top10 (the full
        // ranking) — no per-metric forward re-runs.
        let k = config
            .finetune_pairs
            .min(test.pairs.len().saturating_sub(1));
        let _ = model.finetune(&test.pairs[..k], config.finetune_epochs);
        let evals = metric10
            .evaluate_pairs(
                &ExclusiveForecaster::new(&mut model),
                &test.pairs,
                test.grid_width,
                test.grid_height,
            )
            .expect("model and corpus share a resolution");
        let acc2 = metric10.summarize(&evals[k..]).accuracy;
        let top10 = metric10.summarize(&evals).top_overlap;

        // Scaled design statistics for the row.
        let stats = generate(
            &presets::by_name(held_out)
                .expect("preset")
                .scaled(config.design_scale),
        )
        .stats();
        let paper = PAPER_TABLE2
            .iter()
            .find(|r| r.0 == held_out)
            .expect("paper row");
        println!(
            "{:<10} {:>6} {:>5} {:>6} {:>4} | {:>7} {:>7} {:>6} | {:>7} {:>7} {:>6}   ({:.0?})",
            held_out,
            stats.luts,
            stats.ffs,
            stats.nets,
            test.pairs.len(),
            pct(acc1),
            pct(acc2),
            pct(top10),
            pct(paper.5),
            pct(paper.6),
            pct(paper.7),
            t0.elapsed()
        );
        let _ = writeln!(
            csv,
            "{held_out},{},{},{},{},{acc1},{acc2},{top10}",
            stats.luts,
            stats.ffs,
            stats.nets,
            test.pairs.len()
        );
    }
    let path = out_dir().join("table2.csv");
    std::fs::write(&path, csv).expect("write csv");
    println!("\n(pAcc/pTop10 = paper-reported values at full scale; ours are at the");
    println!(
        " CPU reproduction scale — compare shapes, not absolutes. CSV: {})",
        path.display()
    );
}
