//! Standalone forecast server over HTTP — the CI http-smoke target and
//! the quickest way to poke the API with `curl`.
//!
//! Serves a `hot` model (with quantized replicas) and a `cold` model at
//! a small resolution, prints the bound address (and writes it to
//! `--port-file` for scripts), writes a ready-to-POST request body to
//! `--sample-request`, then blocks on stdin: a `drain` line — or EOF —
//! triggers the graceful shutdown, and the final `DrainReport` is
//! printed as the receipt CI greps (`clean drain: ...`).
//!
//! ```text
//! cargo run --release --bin http_serve -- --port-file port.txt --sample-request body.json
//! curl -s "http://$(cat port.txt)/healthz"
//! curl -s -X POST --data-binary @body.json "http://$(cat port.txt)/v1/forecast"
//! ```

use pop_core::{ExperimentConfig, Pix2Pix};
use pop_http::{api, ForecastService, HttpServer, ServerConfig};
use pop_nn::Tensor;
use pop_serve::EngineConfig;
use std::io::BufRead;
use std::time::Duration;

fn flag_value(args: &[String], name: &str) -> Option<String> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .cloned()
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let addr = flag_value(&args, "--addr").unwrap_or_else(|| "127.0.0.1:0".to_string());
    let resolution: usize = flag_value(&args, "--resolution")
        .map(|v| v.parse().expect("--resolution takes a number"))
        .unwrap_or(16);

    let config = ExperimentConfig {
        resolution,
        base_filters: 4,
        depth: 3,
        ..ExperimentConfig::test()
    };
    let service = ForecastService::builder()
        .engine_config(EngineConfig {
            workers: 2,
            max_wait: Duration::from_micros(500),
            ..EngineConfig::default()
        })
        .model_with_quantized("hot", Pix2Pix::new(&config, 11).expect("valid config"))
        .model("cold", Pix2Pix::new(&config, 12).expect("valid config"))
        .build()
        .expect("service starts");
    let server = HttpServer::start(
        service,
        ServerConfig {
            addr,
            ..ServerConfig::default()
        },
    )
    .expect("server binds");
    let local = server.local_addr();
    println!("listening on {local} (models: hot+quant, cold @ {resolution}x{resolution})");

    if let Some(path) = flag_value(&args, "--port-file") {
        std::fs::write(&path, local.to_string()).expect("write port file");
    }
    if let Some(path) = flag_value(&args, "--sample-request") {
        let x = Tensor::randn(
            [1, config.input_channels(), resolution, resolution],
            0.0,
            0.5,
            1,
        );
        let body = api::render_forecast_request(None, false, x.data());
        std::fs::write(&path, body).expect("write sample request");
        println!("sample forecast body -> {path}");
    }

    // Serve until the operator says drain (or closes stdin).
    let stdin = std::io::stdin();
    for line in stdin.lock().lines() {
        match line {
            Ok(cmd) if cmd.trim() == "drain" => break,
            Ok(cmd) if cmd.trim() == "stats" => {
                let s = server.http_stats();
                println!(
                    "stats: {} requests, {} connections, 2xx {}, 4xx {}, 5xx {}",
                    s.requests, s.connections, s.responses_2xx, s.responses_4xx, s.responses_5xx
                );
            }
            Ok(_) => {}
            Err(_) => break,
        }
    }

    let report = server.shutdown();
    println!(
        "clean drain: worker_panics {}, requests {}, completed {}, rejected {}, failed {}",
        report.worker_panics,
        report.http.requests,
        report.serve.completed,
        report.serve.rejected,
        report.serve.failed,
    );
    assert_eq!(report.worker_panics, 0, "a worker panicked while serving");
}
