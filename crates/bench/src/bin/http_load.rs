//! Closed-loop HTTP load generator against a running forecast server
//! (`http_serve`, or anything speaking the pop-http API).
//!
//! Discovers the served models from `GET /v1/models`, then drives a
//! closed loop of keep-alive clients with optional bursts and hot/cold
//! or quantized mixes, reporting QPS and exact p50/p99 latency:
//!
//! ```text
//! cargo run --release --bin http_load -- --addr 127.0.0.1:8080 \
//!     --clients 8 --requests 64 --burst 8 --pause-ms 20 \
//!     --cold-every 4 --quant-every 3 --json load.json
//! ```

use pop_bench::http_load::{self, LoadPlan};
use std::net::SocketAddr;
use std::time::Duration;

fn flag<T: std::str::FromStr>(args: &[String], name: &str, default: T) -> T {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let Some(addr) = args
        .iter()
        .position(|a| a == "--addr")
        .and_then(|i| args.get(i + 1))
    else {
        eprintln!("usage: http_load --addr HOST:PORT [--clients N] [--requests N] [--burst N] [--pause-ms N] [--cold-every N] [--quant-every N] [--name LABEL] [--json PATH]");
        std::process::exit(2);
    };
    let addr: SocketAddr = addr.parse().expect("--addr takes HOST:PORT");

    let plan = LoadPlan {
        name: args
            .iter()
            .position(|a| a == "--name")
            .and_then(|i| args.get(i + 1))
            .cloned()
            .unwrap_or_else(|| "adhoc".to_string()),
        clients: flag(&args, "--clients", 4),
        requests_per_client: flag(&args, "--requests", 32),
        burst: flag(&args, "--burst", 0),
        pause: Duration::from_millis(flag(&args, "--pause-ms", 0)),
        cold_every: flag(&args, "--cold-every", 0),
        quant_every: flag(&args, "--quant-every", 0),
    };

    let target = http_load::discover(addr).expect("server answers /v1/models");
    println!(
        "target {addr}: hot {:?} ({}x{}x{}, quantized {}), cold {:?}",
        target.hot,
        target.channels,
        target.resolution,
        target.resolution,
        target.hot_quant,
        target.cold
    );

    let report = http_load::run(addr, &target, &plan);
    println!("{}", http_load::summary_line(&report));

    if let Some(path) = args
        .iter()
        .position(|a| a == "--json")
        .and_then(|i| args.get(i + 1))
    {
        let json =
            http_load::render_bench_json("adhoc", target.resolution, std::slice::from_ref(&report));
        std::fs::write(path, json).expect("write report json");
        println!("wrote {path}");
    }

    if report.errors > 0 {
        eprintln!("{} requests failed outside 200/429", report.errors);
        std::process::exit(1);
    }
}
