//! Regenerates **Figure 7**: ground truth vs generated heat maps for the
//! three model variants on OR1200 — (b) L1 + all skips, (c) without L1,
//! (d) L1 + a single skip connection.
//!
//! Writes the four images as PPM files and prints per-pixel accuracy and
//! MAE per variant; the paper's claim is an ordering —
//! `L1+skip > w/o L1 > single skip` — with visible mispredictions in (c)
//! and heavy noise in (d).

use pop_bench::{config_from_env, dataset_for, out_dir, pct};
use pop_core::features::tensor_to_image;
use pop_core::{metrics, ExperimentConfig, Pix2Pix, SkipMode};
use pop_raster::metrics::{mae, per_pixel_accuracy, ssim};

fn variant(name: &str, config: &ExperimentConfig) -> ExperimentConfig {
    match name {
        "l1_all_skip" => config.clone(),
        "no_l1" => ExperimentConfig {
            use_l1: false,
            ..config.clone()
        },
        "single_skip" => ExperimentConfig {
            skip: SkipMode::Single,
            ..config.clone()
        },
        _ => unreachable!(),
    }
}

fn main() {
    let config = config_from_env();
    let ds = dataset_for("OR1200", &config);
    let dir = out_dir().join("fig7");
    std::fs::create_dir_all(&dir).expect("fig7 dir");

    // The probe placement: the last pair (untouched by fine-tuning flows).
    let probe = ds.pairs.last().expect("non-empty dataset");
    let truth_img = tensor_to_image(&probe.y);
    truth_img
        .write_pnm(dir.join("truth.ppm"))
        .expect("write truth");

    println!(
        "\nFigure 7 — ablation heat maps on OR1200 (probe placement #{})",
        probe.meta.index
    );
    println!(
        "{:<14} {:>9} {:>9} {:>7} {:>10}",
        "variant", "pixelAcc", "MAE", "SSIM", "meanCong"
    );
    let mut accs = Vec::new();
    for name in ["l1_all_skip", "no_l1", "single_skip"] {
        let cfg = variant(name, &config);
        let mut model = Pix2Pix::new(&cfg, cfg.seed).expect("valid config");
        let _ = model.train(&ds.pairs[..ds.pairs.len() - 1], cfg.epochs);
        let pred = model.forecast_image(&probe.x);
        pred.write_pnm(dir.join(format!("{name}.ppm")))
            .expect("write");
        let acc = per_pixel_accuracy(&pred, &truth_img, cfg.tolerance).expect("shape");
        let err = mae(&pred, &truth_img).expect("shape");
        let structural = ssim(&pred, &truth_img, 8).expect("shape");
        let cong = metrics::image_mean_congestion(ds.grid_width, ds.grid_height, &pred);
        println!(
            "{:<14} {:>9} {:>9.4} {:>7.3} {:>10.4}",
            name,
            pct(acc),
            err,
            structural,
            cong
        );
        accs.push((name, acc));
    }
    let truth_cong = metrics::image_mean_congestion(ds.grid_width, ds.grid_height, &truth_img);
    println!(
        "{:<14} {:>9} {:>9} {:>7} {:>10.4}",
        "truth", "-", "-", "-", truth_cong
    );
    println!("\npaper shape: L1+all-skip best, w/o L1 shows a mispredicted region,");
    println!("single-skip worst (noise). images: {}", dir.display());
    if accs[0].1 >= accs[2].1 {
        println!("shape check: l1_all_skip >= single_skip ✓");
    } else {
        println!("shape check: l1_all_skip < single_skip ✗ (did not reproduce)");
    }
}
