//! Regenerates **Figure 8**: generator and discriminator training-loss
//! curves for the three §5.3 variants (L1 + all skips, without L1, single
//! skip), trained on OR1200.
//!
//! Emits one CSV per variant (`epoch,g_loss,d_loss,l1`) and prints the
//! curves' end-points plus the late-training noise statistic. The paper's
//! claim is qualitative: with L1 + skips the curves optimise smoothly;
//! the ablated variants show larger oscillations (over/under-fitting).

use pop_bench::{config_from_env, dataset_for, out_dir};
use pop_core::{ExperimentConfig, Pix2Pix, SkipMode};

fn main() {
    let config = config_from_env();
    let ds = dataset_for("OR1200", &config);
    let dir = out_dir();

    println!(
        "\nFigure 8 — training-loss curves on OR1200 ({} epochs)",
        config.epochs
    );
    println!(
        "{:<14} {:>10} {:>10} {:>10} {:>12}",
        "variant", "final G", "final D", "final L1", "late noise"
    );
    for (name, cfg) in [
        ("l1_all_skip", config.clone()),
        (
            "no_l1",
            ExperimentConfig {
                use_l1: false,
                ..config.clone()
            },
        ),
        (
            "single_skip",
            ExperimentConfig {
                skip: SkipMode::Single,
                ..config.clone()
            },
        ),
    ] {
        let mut model = Pix2Pix::new(&cfg, cfg.seed).expect("valid config");
        let history = model.train(&ds.pairs, cfg.epochs);
        let path = dir.join(format!("fig8_{name}.csv"));
        std::fs::write(&path, history.to_csv()).expect("write csv");
        println!(
            "{:<14} {:>10.4} {:>10.4} {:>10.4} {:>12.5}",
            name,
            history.generator_loss.last().copied().unwrap_or(f32::NAN),
            history
                .discriminator_loss
                .last()
                .copied()
                .unwrap_or(f32::NAN),
            history.l1.last().copied().unwrap_or(f32::NAN),
            history.late_noise(),
        );
    }
    println!("\npaper shape: smooth optimisation with L1+skip; noisier curves for");
    println!("the ablations. CSVs: {}", dir.display());
}
