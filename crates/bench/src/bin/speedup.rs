//! Regenerates the **§5.1 speedup** claim: "the speedup is measured using
//! the magnitude of routing runtime divided by inference time" (the paper
//! reports ~0.09 s inference against minutes of routing).
//!
//! Routing times come from the dataset metadata (measured while building
//! the ground truth); inference time is measured here on the same machine,
//! so the ratio is apples-to-apples.

use pop_bench::{all_datasets, config_from_env, out_dir};
use pop_core::Pix2Pix;
use std::time::Instant;

fn main() {
    let config = config_from_env();
    let datasets = all_datasets(&config);
    let mut model = Pix2Pix::new(&config, config.seed).expect("valid config");

    println!("\n§5.1 speedup — routing runtime vs forecast inference");
    println!(
        "{:<10} {:>14} {:>14} {:>16} {:>9}",
        "design", "route (ms)", "place (ms)", "inference (ms)", "speedup"
    );
    let mut csv = String::from("design,route_ms,place_ms,inference_ms,speedup\n");
    for ds in &datasets {
        let route_ms: f64 = ds
            .pairs
            .iter()
            .map(|p| p.meta.route_micros as f64 / 1000.0)
            .sum::<f64>()
            / ds.pairs.len() as f64;
        let place_ms: f64 = ds
            .pairs
            .iter()
            .map(|p| p.meta.place_micros as f64 / 1000.0)
            .sum::<f64>()
            / ds.pairs.len() as f64;

        // Mean inference latency over a handful of pairs.
        let n = ds.pairs.len().min(8);
        let t0 = Instant::now();
        for p in ds.pairs.iter().take(n) {
            let _ = model.forecast(&p.x);
        }
        let infer_ms = t0.elapsed().as_secs_f64() * 1000.0 / n as f64;
        let speedup = route_ms / infer_ms;
        println!(
            "{:<10} {:>14.2} {:>14.2} {:>16.2} {:>8.1}x",
            ds.name, route_ms, place_ms, infer_ms, speedup
        );
        csv.push_str(&format!(
            "{},{route_ms},{place_ms},{infer_ms},{speedup}\n",
            ds.name
        ));
    }
    std::fs::write(out_dir().join("speedup.csv"), csv).expect("write csv");
    println!("\npaper shape: inference is orders of magnitude faster than routing,");
    println!("and the gap widens with design size (routing scales, inference doesn't).");
}
