//! Shared harness for the per-table / per-figure experiment binaries.
//!
//! Every binary regenerates one artefact of the paper's evaluation section
//! (see DESIGN.md §4 for the index):
//!
//! | binary            | paper artefact                          |
//! |-------------------|------------------------------------------|
//! | `table2`          | Table 2 (Acc.1 / Acc.2 / Top10)          |
//! | `fig7_ablation`   | Figure 7 (ablation heat maps)            |
//! | `fig8_losses`     | Figure 8 (training-loss curves)          |
//! | `fig9_constrained`| Figure 9 (constrained exploration)       |
//! | `sec52_grayscale` | §5.2 (colour scheme vs grayscale)        |
//! | `speedup`         | §5.1 (routing vs inference runtime)      |
//! | `realtime`        | §5.4 (forecast during annealing)         |
//! | `figure2`         | Figure 2 (motivating images)             |
//! | `min_width`       | Figure 2 caption (channel width factor)  |
//!
//! The experiment scale is selected with the `POP_SCALE` environment
//! variable: `test` (seconds), `quick` (default; minutes) or `paper`
//! (the paper-exact configuration — GPU-scale budgets required).
//! Datasets are cached under `POP_CACHE_DIR` (default `target/pop-cache`)
//! and outputs land in `POP_OUT_DIR` (default `bench_results/`).

pub mod http_load;

use pop_core::dataset::{build_or_load, DesignDataset};
use pop_core::ExperimentConfig;
use pop_netlist::presets;
use std::path::PathBuf;

/// Resolves the experiment configuration from `POP_SCALE`.
pub fn config_from_env() -> ExperimentConfig {
    match std::env::var("POP_SCALE").as_deref() {
        Ok("test") => ExperimentConfig::test(),
        Ok("paper") => ExperimentConfig::paper(),
        Ok("quick") | Err(_) => ExperimentConfig::quick(),
        Ok(other) => {
            eprintln!("unknown POP_SCALE '{other}', using quick");
            ExperimentConfig::quick()
        }
    }
}

/// Dataset cache directory (`POP_CACHE_DIR`, default `target/pop-cache`).
pub fn cache_dir() -> PathBuf {
    std::env::var("POP_CACHE_DIR")
        .map(PathBuf::from)
        .unwrap_or_else(|_| PathBuf::from("target/pop-cache"))
}

/// Output directory for CSVs and images (`POP_OUT_DIR`, default
/// `bench_results`). Created on demand.
pub fn out_dir() -> PathBuf {
    let dir = std::env::var("POP_OUT_DIR")
        .map(PathBuf::from)
        .unwrap_or_else(|_| PathBuf::from("bench_results"));
    std::fs::create_dir_all(&dir).expect("create output dir");
    dir
}

/// Builds (or loads from cache) the dataset of one named design.
///
/// # Panics
///
/// Panics when the design name is unknown or the pipeline fails — these
/// binaries are top-level experiment drivers.
pub fn dataset_for(name: &str, config: &ExperimentConfig) -> DesignDataset {
    let spec = presets::by_name(name).unwrap_or_else(|| panic!("unknown design {name}"));
    let cache = cache_dir();
    eprintln!(
        "[data] {name}: building or loading (cache: {})",
        cache.display()
    );
    build_or_load(&spec, config, Some(&cache)).expect("dataset pipeline")
}

/// Builds (or loads) all eight Table 2 datasets, in paper order.
pub fn all_datasets(config: &ExperimentConfig) -> Vec<DesignDataset> {
    presets::all()
        .iter()
        .map(|s| dataset_for(&s.name, config))
        .collect()
}

/// Formats a ratio as a percentage with one decimal.
pub fn pct(x: f32) -> String {
    format!("{:.1}%", x * 100.0)
}

/// One paper-reported Table 2 row:
/// `(design, luts, ffs, nets, pairs, acc1, acc2, top10)`.
pub type PaperRow = (&'static str, usize, usize, usize, usize, f32, f32, f32);

/// Paper-reported Table 2 values for side-by-side printing.
pub const PAPER_TABLE2: [PaperRow; 8] = [
    ("diffeq1", 563, 193, 2_059, 200, 0.672, 0.689, 0.50),
    ("diffeq2", 419, 96, 1_560, 200, 0.653, 0.659, 0.40),
    ("raygentop", 1_920, 1_047, 5_023, 200, 0.681, 0.771, 0.70),
    ("SHA", 2_501, 911, 10_910, 200, 0.433, 0.610, 0.40),
    ("OR1200", 2_823, 670, 12_336, 200, 0.646, 0.676, 0.90),
    ("ode", 5_488, 1_316, 20_981, 200, 0.749, 0.759, 0.80),
    ("dcsg", 9_088, 1_618, 36_912, 200, 0.714, 0.854, 0.80),
    ("bfly", 9_503, 1_748, 38_582, 200, 0.715, 0.765, 0.70),
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn env_config_defaults_to_quick() {
        std::env::remove_var("POP_SCALE");
        assert_eq!(config_from_env(), ExperimentConfig::quick());
    }

    #[test]
    fn paper_table_matches_preset_names() {
        let names: Vec<&str> = PAPER_TABLE2.iter().map(|r| r.0).collect();
        for n in names {
            assert!(presets::by_name(n).is_some(), "{n}");
        }
    }
}
