//! Closed-loop HTTP load generation against a [`pop_http::HttpServer`],
//! shared by the `serve_http` bench and the `http_load` binary.
//!
//! The generator is *closed-loop*: each client thread owns one keep-alive
//! connection and does not send request `i+1` until request `i` is
//! answered, so measured latency includes server-side queueing and the
//! offered load adapts to what the server sustains (the steady-state QPS
//! is the throughput, not an arrival-rate guess). Bursty arrivals are
//! modeled per client — `burst` back-to-back requests, then an
//! inter-burst `pause` — and hot/cold model mixes by routing every k-th
//! request to the cold model or the quantized sibling.

use pop_http::{api, HttpClient};
use pop_nn::Tensor;
use pop_obs::json;
use std::net::SocketAddr;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// What the server offers, discovered from `GET /v1/models`.
#[derive(Debug, Clone)]
pub struct Target {
    /// The default model — the hot path.
    pub hot: String,
    /// A second registered model, when present — the cold path.
    pub cold: Option<String>,
    /// Whether the hot model has quantized replicas.
    pub hot_quant: bool,
    /// Input channels of the hot model.
    pub channels: usize,
    /// Input resolution of the hot model.
    pub resolution: usize,
}

/// Asks the server what it serves.
///
/// # Errors
///
/// Propagates transport failures; malformed documents are
/// `InvalidData`.
pub fn discover(addr: SocketAddr) -> std::io::Result<Target> {
    let invalid =
        |what: &str| std::io::Error::new(std::io::ErrorKind::InvalidData, what.to_string());
    let mut client = HttpClient::connect(addr)?;
    let res = client.get("/v1/models")?;
    if res.status != 200 {
        return Err(invalid(&format!("/v1/models answered {}", res.status)));
    }
    let doc = json::parse(&res.text()).map_err(|e| invalid(&format!("bad models JSON: {e}")))?;
    let hot = doc
        .get("default")
        .and_then(json::Value::as_str)
        .ok_or_else(|| invalid("missing default model"))?
        .to_string();
    let models = doc
        .get("models")
        .and_then(json::Value::as_array)
        .ok_or_else(|| invalid("missing models array"))?;
    let mut cold = None;
    let mut hot_quant = false;
    let mut channels = 0;
    let mut resolution = 0;
    for m in models {
        let name = m
            .get("name")
            .and_then(json::Value::as_str)
            .unwrap_or_default();
        if name == hot {
            hot_quant = m.get("quantized").and_then(json::Value::as_bool) == Some(true);
            channels = m.get("channels").and_then(json::Value::as_u64).unwrap_or(0) as usize;
            resolution = m
                .get("resolution")
                .and_then(json::Value::as_u64)
                .unwrap_or(0) as usize;
        } else if cold.is_none() {
            cold = Some(name.to_string());
        }
    }
    if channels == 0 || resolution == 0 {
        return Err(invalid("default model reports no geometry"));
    }
    Ok(Target {
        hot,
        cold,
        hot_quant,
        channels,
        resolution,
    })
}

/// One load scenario.
#[derive(Debug, Clone)]
pub struct LoadPlan {
    /// Scenario label, the `"scenario"` key of the report.
    pub name: String,
    /// Concurrent closed-loop clients (one keep-alive connection each).
    pub clients: usize,
    /// Requests each client issues.
    pub requests_per_client: usize,
    /// Requests sent back-to-back before pausing; 0 disables bursting.
    pub burst: usize,
    /// Gap between bursts.
    pub pause: Duration,
    /// Every k-th request targets the cold model (0 = never).
    pub cold_every: usize,
    /// Every k-th request asks for the quantized hot sibling (0 = never).
    pub quant_every: usize,
}

/// What one scenario measured.
#[derive(Debug, Clone)]
pub struct LoadReport {
    pub name: String,
    pub clients: usize,
    pub requests: usize,
    /// 200s — completed forecasts.
    pub ok: usize,
    /// 429s — engine backpressure, the expected overload answer.
    pub rejected: usize,
    /// Anything else (transport failures, 5xx): must be zero.
    pub errors: usize,
    pub elapsed_s: f64,
    /// Completed forecasts per second of wall-clock.
    pub qps: f64,
    pub p50_us: u64,
    pub p99_us: u64,
    pub max_us: u64,
}

/// Exact nearest-rank percentile over a sorted sample.
fn percentile(sorted: &[u64], p: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let rank = ((p * sorted.len() as f64).ceil() as usize)
        .saturating_sub(1)
        .min(sorted.len() - 1);
    sorted[rank]
}

/// Runs one closed-loop scenario to completion.
///
/// # Panics
///
/// Panics when a client cannot connect — load generation against a dead
/// server is a harness bug, not a measurement.
pub fn run(addr: SocketAddr, target: &Target, plan: &LoadPlan) -> LoadReport {
    // Pre-render a rotation of request bodies so serialization cost sits
    // outside the measured loop: hot f32, quantized hot, cold f32.
    let bodies: Arc<Vec<String>> = Arc::new(
        (0..4u64)
            .map(|seed| {
                let x = Tensor::randn(
                    [1, target.channels, target.resolution, target.resolution],
                    0.0,
                    0.5,
                    seed,
                );
                api::render_forecast_request(Some(&target.hot), false, x.data())
            })
            .collect(),
    );
    let quant_bodies: Arc<Vec<String>> = Arc::new(match target.hot_quant {
        true => (4..6u64)
            .map(|seed| {
                let x = Tensor::randn(
                    [1, target.channels, target.resolution, target.resolution],
                    0.0,
                    0.5,
                    seed,
                );
                api::render_forecast_request(Some(&target.hot), true, x.data())
            })
            .collect(),
        false => Vec::new(),
    });
    let cold_bodies: Arc<Vec<String>> = Arc::new(match &target.cold {
        Some(cold) => (6..8u64)
            .map(|seed| {
                let x = Tensor::randn(
                    [1, target.channels, target.resolution, target.resolution],
                    0.0,
                    0.5,
                    seed,
                );
                api::render_forecast_request(Some(cold), false, x.data())
            })
            .collect(),
        None => Vec::new(),
    });

    let started = Instant::now();
    let mut handles = Vec::new();
    for client_id in 0..plan.clients {
        let plan = plan.clone();
        let bodies = Arc::clone(&bodies);
        let quant_bodies = Arc::clone(&quant_bodies);
        let cold_bodies = Arc::clone(&cold_bodies);
        handles.push(std::thread::spawn(move || {
            let mut client = HttpClient::connect_with_timeout(addr, Duration::from_secs(60))
                .expect("load client connects");
            let mut latencies: Vec<u64> = Vec::with_capacity(plan.requests_per_client);
            let (mut ok, mut rejected, mut errors) = (0usize, 0usize, 0usize);
            for i in 0..plan.requests_per_client {
                let n = client_id + i; // de-phase clients in the mixes
                let body =
                    if plan.cold_every > 0 && !cold_bodies.is_empty() && n % plan.cold_every == 0 {
                        &cold_bodies[n % cold_bodies.len()]
                    } else if plan.quant_every > 0
                        && !quant_bodies.is_empty()
                        && n % plan.quant_every == 0
                    {
                        &quant_bodies[n % quant_bodies.len()]
                    } else {
                        &bodies[n % bodies.len()]
                    };
                let t0 = Instant::now();
                match client.post_json("/v1/forecast", body) {
                    Ok(res) if res.status == 200 => {
                        ok += 1;
                        latencies.push(t0.elapsed().as_micros() as u64);
                    }
                    Ok(res) if res.status == 429 => rejected += 1,
                    Ok(_) | Err(_) => {
                        errors += 1;
                        // The server closes errored connections: reconnect
                        // so one fault doesn't void the rest of the loop.
                        if let Ok(fresh) =
                            HttpClient::connect_with_timeout(addr, Duration::from_secs(60))
                        {
                            client = fresh;
                        }
                    }
                }
                if plan.burst > 0 && (i + 1) % plan.burst == 0 {
                    std::thread::sleep(plan.pause);
                }
            }
            (latencies, ok, rejected, errors)
        }));
    }

    let mut latencies: Vec<u64> = Vec::new();
    let (mut ok, mut rejected, mut errors) = (0usize, 0usize, 0usize);
    for handle in handles {
        let (mut l, o, r, e) = handle.join().expect("load client thread");
        latencies.append(&mut l);
        ok += o;
        rejected += r;
        errors += e;
    }
    let elapsed_s = started.elapsed().as_secs_f64();
    latencies.sort_unstable();
    LoadReport {
        name: plan.name.clone(),
        clients: plan.clients,
        requests: plan.clients * plan.requests_per_client,
        ok,
        rejected,
        errors,
        elapsed_s,
        qps: ok as f64 / elapsed_s.max(1e-9),
        p50_us: percentile(&latencies, 0.50),
        p99_us: percentile(&latencies, 0.99),
        max_us: latencies.last().copied().unwrap_or(0),
    }
}

/// One human-readable summary line per scenario.
pub fn summary_line(r: &LoadReport) -> String {
    format!(
        "{}: {} clients x {} reqs -> {:.1} qps, p50 {} us, p99 {} us (ok {}, 429 {}, errors {})",
        r.name,
        r.clients,
        r.requests / r.clients.max(1),
        r.qps,
        r.p50_us,
        r.p99_us,
        r.ok,
        r.rejected,
        r.errors
    )
}

/// The `BENCH_serve.json` document for a set of scenario reports.
pub fn render_bench_json(mode: &str, resolution: usize, reports: &[LoadReport]) -> String {
    let mut out = format!(
        "{{\n  \"bench\": \"serve_http\",\n  \"mode\": \"{mode}\",\n  \"resolution\": {resolution},\n  \"scenarios\": [\n"
    );
    for (i, r) in reports.iter().enumerate() {
        if i > 0 {
            out.push_str(",\n");
        }
        out.push_str(&format!(
            "    {{\"scenario\": \"{}\", \"clients\": {}, \"requests\": {}, \"ok\": {}, \"rejected\": {}, \"errors\": {}, \"elapsed_s\": {:.3}, \"qps\": {:.1}, \"p50_us\": {}, \"p99_us\": {}, \"max_us\": {}}}",
            r.name,
            r.clients,
            r.requests,
            r.ok,
            r.rejected,
            r.errors,
            r.elapsed_s,
            r.qps,
            r.p50_us,
            r.p99_us,
            r.max_us,
        ));
    }
    out.push_str("\n  ]\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentile_is_exact_nearest_rank() {
        let sorted: Vec<u64> = (1..=100).collect();
        assert_eq!(percentile(&sorted, 0.50), 50);
        assert_eq!(percentile(&sorted, 0.99), 99);
        assert_eq!(percentile(&sorted, 1.0), 100);
        assert_eq!(percentile(&[42], 0.99), 42);
        assert_eq!(percentile(&[], 0.5), 0);
    }

    #[test]
    fn bench_json_is_parseable_and_keyed() {
        let reports = [LoadReport {
            name: "steady_hot".into(),
            clients: 4,
            requests: 64,
            ok: 60,
            rejected: 4,
            errors: 0,
            elapsed_s: 1.25,
            qps: 48.0,
            p50_us: 900,
            p99_us: 4100,
            max_us: 5000,
        }];
        let text = render_bench_json("full", 32, &reports);
        let doc = pop_obs::json::parse(&text).unwrap();
        assert_eq!(
            doc.get("bench").and_then(pop_obs::json::Value::as_str),
            Some("serve_http")
        );
        let scenarios = doc
            .get("scenarios")
            .and_then(pop_obs::json::Value::as_array)
            .unwrap();
        assert_eq!(
            scenarios[0]
                .get("qps")
                .and_then(pop_obs::json::Value::as_f64),
            Some(48.0)
        );
    }
}
