//! Criterion bench: image rendering throughput (the paper's "image
//! generator implemented based on VPR").

use criterion::{criterion_group, criterion_main, Criterion};
use pop_arch::Arch;
use pop_netlist::{generate, presets};
use pop_place::{place, PlaceOptions};
use pop_raster::{
    grayscale, render_congestion, render_connectivity, render_floorplan, render_placement,
};
use pop_route::{route, RouteOptions};

fn bench_raster(c: &mut Criterion) {
    let netlist = generate(&presets::by_name("diffeq1").unwrap().scaled(0.02));
    let (cl, io, me, mu) = netlist.site_demand();
    let arch = Arch::auto_size(cl, io, me, mu, 16, 1.3).unwrap();
    let placement = place(&arch, &netlist, &PlaceOptions::default()).unwrap();
    let routing = route(&arch, &netlist, &placement, &RouteOptions::default()).unwrap();
    let place_img = render_placement(&arch, &netlist, &placement, 64);

    let mut group = c.benchmark_group("raster");
    group.sample_size(20);

    for side in [64usize, 256] {
        group.bench_function(format!("floorplan_{side}"), |b| {
            b.iter(|| render_floorplan(&arch, side))
        });
        group.bench_function(format!("placement_{side}"), |b| {
            b.iter(|| render_placement(&arch, &netlist, &placement, side))
        });
        group.bench_function(format!("connectivity_{side}"), |b| {
            b.iter(|| render_connectivity(&arch, &netlist, &placement, side))
        });
        group.bench_function(format!("congestion_{side}"), |b| {
            b.iter(|| render_congestion(&arch, &netlist, &placement, routing.congestion(), side))
        });
    }
    group.bench_function("grayscale_64", |b| b.iter(|| grayscale(&place_img)));

    group.finish();
}

criterion_group!(benches, bench_raster);
criterion_main!(benches);
