//! Criterion bench: serving-engine throughput vs the sequential
//! single-request baseline on the paper-shaped 64×64 quick configuration.
//!
//! The acceptance claim of the `pop-serve` subsystem: coalescing concurrent
//! requests into one batched generator forward (`[N, C, 64, 64]`) yields
//! higher throughput than answering the same requests one `[1, C, 64, 64]`
//! forecast at a time. The win comes from the batched im2col+matmul path in
//! `pop-nn`, whose inner loops are `N×` longer on the small deep-layer
//! feature maps (see `linalg::matmul_nn`).

use criterion::{criterion_group, criterion_main, Criterion};
use pop_core::{ExperimentConfig, Pix2Pix};
use pop_nn::Tensor;
use pop_serve::{EngineConfig, ForecastEngine};
use std::time::Duration;

const REQUESTS: usize = 16;

fn inputs(config: &ExperimentConfig) -> Vec<Tensor> {
    (0..REQUESTS)
        .map(|s| {
            Tensor::randn(
                [
                    1,
                    config.input_channels(),
                    config.resolution,
                    config.resolution,
                ],
                0.0,
                0.5,
                s as u64,
            )
        })
        .collect()
}

fn bench_serve(c: &mut Criterion) {
    let config = ExperimentConfig::quick(); // 64×64, the acceptance shape
    assert_eq!(config.resolution, 64);
    let xs = inputs(&config);

    let mut group = c.benchmark_group("serve");
    group.sample_size(10);

    // Baseline: an exclusive model answering one request at a time.
    let mut sequential = Pix2Pix::new(&config, 1).expect("valid config");
    group.bench_function(format!("sequential_{REQUESTS}x64x64").as_str(), |b| {
        b.iter(|| {
            let mut last = None;
            for x in &xs {
                last = Some(sequential.forecast(x));
            }
            last
        })
    });

    // The engine: the same requests submitted together, coalesced into
    // batched forwards by the micro-batcher.
    let engine = ForecastEngine::start(
        Pix2Pix::new(&config, 1).expect("valid config"),
        EngineConfig {
            max_batch: 8,
            max_wait: Duration::from_millis(1),
            workers: 1, // single-core container: the win is batching, not threads
            ..EngineConfig::default()
        },
    )
    .expect("engine starts");
    let client = engine.client();
    group.bench_function(format!("engine_batched_{REQUESTS}x64x64").as_str(), |b| {
        b.iter(|| {
            let pending: Vec<_> = xs
                .iter()
                .map(|x| client.submit(x).expect("queue accepts"))
                .collect();
            pending
                .into_iter()
                .map(|p| p.wait().expect("engine answers"))
                .collect::<Vec<_>>()
        })
    });
    group.finish();

    let stats = engine.shutdown();
    println!(
        "engine served {} requests in {} batches (mean occupancy {:.2}, max {}), \
         mean latency {:.1} ms",
        stats.completed,
        stats.batches,
        stats.mean_batch_occupancy,
        stats.max_batch,
        stats.mean_latency_us / 1e3,
    );
    println!(
        "engine latency percentiles: p50 {:.1} ms, p99 {:.1} ms, max {:.1} ms",
        stats.p50_latency_us as f64 / 1e3,
        stats.p99_latency_us as f64 / 1e3,
        stats.max_latency_us as f64 / 1e3,
    );
}

criterion_group!(benches, bench_serve);
criterion_main!(benches);
