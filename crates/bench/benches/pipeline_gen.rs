//! Corpus-generation throughput: sequential reference loop vs the staged
//! parallel pipeline, on a standard multi-scenario corpus.
//!
//! Emits `BENCH_pipeline.json` (pairs/sec for both paths, speedup, host
//! parallelism) alongside the human-readable report. The pipeline is
//! embarrassingly parallel over placements, so on an N-core host the
//! 4-worker configuration approaches min(4, N)× — ≥2× on 4 cores is the
//! acceptance bar; a 1-core container honestly reports ≈1×, which is why
//! `host_parallelism` is part of the artefact.
//!
//! Run with `cargo bench -p pop-bench --bench pipeline_gen`.

use pop_pipeline::{generate_corpus, generate_corpus_sequential, PipelineOptions, ScenarioSpec};
use std::time::Instant;

const WORKERS: usize = 4;

/// The "standard corpus" of the acceptance criterion: three scenarios,
/// three design families, mixed fabric density/aspect — heavy enough per
/// pair (tens of milliseconds of place + route) that stage overlap, not
/// queue overhead, decides the wall clock.
fn standard_corpus() -> Vec<ScenarioSpec> {
    let base = ScenarioSpec {
        design_scale: 0.05,
        resolution: 64,
        pairs_per_design: 8,
        ..ScenarioSpec::default()
    };
    vec![
        ScenarioSpec {
            name: "bench-baseline".into(),
            design: "diffeq2".into(),
            ..base.clone()
        },
        ScenarioSpec {
            name: "bench-dense".into(),
            design: "diffeq1".into(),
            target_utilization: 0.9,
            ..base.clone()
        },
        ScenarioSpec {
            name: "bench-sha".into(),
            design: "SHA".into(),
            aspect_ratio: 2.0,
            seed: 101,
            ..base
        },
    ]
}

fn main() {
    let scenarios = standard_corpus();
    let total_pairs: usize = scenarios.iter().map(ScenarioSpec::total_pairs).sum();
    let host_parallelism = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    println!(
        "corpus: {} scenarios, {total_pairs} pairs; host parallelism {host_parallelism}, \
         pipeline workers {WORKERS}",
        scenarios.len()
    );

    // Warm-up (page caches, allocator) on the smallest scenario.
    let warm = vec![ScenarioSpec {
        pairs_per_design: 1,
        ..scenarios[0].clone()
    }];
    let _ = generate_corpus_sequential(&warm).expect("warm-up");

    let t0 = Instant::now();
    let sequential = generate_corpus_sequential(&scenarios).expect("sequential path");
    let seq_secs = t0.elapsed().as_secs_f64();

    let t1 = Instant::now();
    let parallel = generate_corpus(&scenarios, &PipelineOptions::with_workers(WORKERS))
        .expect("parallel pipeline");
    let par_secs = t1.elapsed().as_secs_f64();

    // The correctness half of the claim: identical output, bit for bit
    // (wall-clock timing metadata aside).
    let mut identical = sequential.len() == parallel.len();
    for (s, p) in sequential.iter().zip(&parallel) {
        identical &= s.name == p.name
            && s.channel_width == p.channel_width
            && s.pairs.len() == p.pairs.len()
            && s.pairs
                .iter()
                .zip(&p.pairs)
                .all(|(a, b)| a.without_timings() == b.without_timings());
    }
    assert!(
        identical,
        "pipeline output diverged from the sequential path"
    );

    let seq_pps = total_pairs as f64 / seq_secs;
    let par_pps = total_pairs as f64 / par_secs;
    let speedup = seq_secs / par_secs;
    println!("sequential: {seq_secs:.2} s ({seq_pps:.2} pairs/s)");
    println!("pipeline ({WORKERS} workers): {par_secs:.2} s ({par_pps:.2} pairs/s)");
    println!("speedup: {speedup:.2}x, outputs identical: {identical}");

    let json = format!(
        "{{\n  \"bench\": \"pipeline_gen\",\n  \"scenarios\": {},\n  \"total_pairs\": {},\n  \
         \"host_parallelism\": {},\n  \"workers\": {},\n  \
         \"sequential\": {{ \"seconds\": {:.4}, \"pairs_per_sec\": {:.4} }},\n  \
         \"pipeline\": {{ \"seconds\": {:.4}, \"pairs_per_sec\": {:.4} }},\n  \
         \"speedup\": {:.4},\n  \"identical\": {}\n}}\n",
        scenarios.len(),
        total_pairs,
        host_parallelism,
        WORKERS,
        seq_secs,
        seq_pps,
        par_secs,
        par_pps,
        speedup,
        identical
    );
    // Anchor the artefact at the workspace root regardless of the bench
    // binary's working directory.
    let out = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_pipeline.json");
    std::fs::write(&out, &json).expect("write BENCH_pipeline.json");
    println!("wrote {}", out.display());
}
