//! Corpus-generation throughput: sequential reference loop vs the staged
//! parallel pipeline vs a **warm per-job disk cache**, on a standard
//! multi-scenario corpus.
//!
//! Emits `BENCH_pipeline.json` (pairs/sec for both generation paths,
//! speedup, host parallelism, and the cold-vs-warm cache ratio) alongside
//! the human-readable report. The pipeline is embarrassingly parallel over
//! placements, so on an N-core host the 4-worker configuration approaches
//! min(4, N)× — ≥2× on 4 cores is the acceptance bar; a 1-core container
//! honestly reports ≈1×, which is why `host_parallelism` is part of the
//! artefact. The warm-cache run skips place/route entirely (asserted), so
//! its ratio is bounded by disk + decode speed, not cores.
//!
//! Run with `cargo bench -p pop-bench --bench pipeline_gen`.

use pop_arch::Arch;
use pop_netlist::{generate, presets};
use pop_pipeline::{
    generate_corpus, generate_corpus_sequential, generate_corpus_with_stats, PipelineOptions,
    ScenarioSpec,
};
use pop_place::{place, CostModel, PlaceAlgorithm, PlaceOptions, PlaceStrategy};
use std::time::Instant;

const WORKERS: usize = 4;

/// The single-large-design placement benchmark behind the `place_parallel`
/// entry: one 0.5-scale SHA placed by the sequential annealer vs the
/// region-parallel one (4 regions, 4 threads), averaged over a few seeds
/// because the annealers' seed-to-seed cost noise is itself a couple of
/// percent. The speedup is honest for *this* host (`host_parallelism` is
/// in the artefact): ≈1× on one core, ≥1.8× expected on four (the
/// sequential exchange phase bounds it at 2.5×, Amdahl).
fn place_parallel_bench(host_parallelism: usize) -> String {
    const DESIGN: &str = "SHA";
    const SCALE: f64 = 0.5;
    const REGIONS: usize = 4;
    const THREADS: usize = 4;
    const SEEDS: [u64; 3] = [1, 2, 3];

    let netlist = generate(&presets::by_name(DESIGN).unwrap().scaled(SCALE));
    let (c, i, m, x) = netlist.site_demand();
    let arch = Arch::auto_size(c, i, m, x, 12, 1.3).expect("bench fabric");
    let model = CostModel::new(PlaceAlgorithm::BoundingBox);

    let mut seq_secs = 0.0f64;
    let mut par_secs = 0.0f64;
    let mut respawn_secs = 0.0f64;
    let mut cost_ratio_sum = 0.0f64;
    for seed in SEEDS {
        let popts = PlaceOptions {
            seed,
            ..PlaceOptions::default()
        };
        let par_opts = PlaceOptions {
            strategy: PlaceStrategy::ParallelRegions {
                regions: REGIONS,
                threads: THREADS,
            },
            ..popts.clone()
        };
        let t0 = Instant::now();
        let sequential = place(&arch, &netlist, &popts).expect("sequential placement");
        seq_secs += t0.elapsed().as_secs_f64();

        // Persistent park/unpark pool (the default) vs per-round thread
        // respawn: same annealer, same rounds, so the placements must be
        // identical — the pool is pure plumbing.
        let t1 = Instant::now();
        let parallel = place(&arch, &netlist, &par_opts).expect("parallel placement");
        par_secs += t1.elapsed().as_secs_f64();

        pop_exec::set_pool_mode(pop_exec::PoolMode::ScopedRespawn);
        let t2 = Instant::now();
        let respawned = place(&arch, &netlist, &par_opts).expect("respawn placement");
        respawn_secs += t2.elapsed().as_secs_f64();
        pop_exec::set_pool_mode(pop_exec::PoolMode::Persistent);
        assert_eq!(
            parallel, respawned,
            "persistent pool must not change the placement (seed {seed})"
        );

        parallel.verify(&arch, &netlist).expect("legal placement");
        let seq_cost = model.total_cost(&arch, &netlist, &sequential) as f64;
        let par_cost = model.total_cost(&arch, &netlist, &parallel) as f64;
        cost_ratio_sum += par_cost / seq_cost;
    }
    let speedup = seq_secs / par_secs;
    let pool_speedup = respawn_secs / par_secs;
    let cost_ratio = cost_ratio_sum / SEEDS.len() as f64;
    println!(
        "place_parallel ({DESIGN} x{SCALE}, {REGIONS} regions, {THREADS} threads, \
         {} seeds): sequential {seq_secs:.2} s, parallel {par_secs:.2} s \
         (respawn {respawn_secs:.2} s, pool speedup {pool_speedup:.2}x), \
         speedup {speedup:.2}x, cost ratio {cost_ratio:.4}",
        SEEDS.len()
    );
    // The quality half of the acceptance criterion holds on any host; the
    // speedup halves depend on cores/scheduler and are recorded, not
    // asserted (the pool's identical-placement contract IS asserted).
    assert!(
        cost_ratio <= 1.02,
        "parallel final cost must stay within 2% of sequential (got {cost_ratio:.4})"
    );
    format!(
        "{{ \"design\": \"{DESIGN}\", \"scale\": {SCALE}, \"regions\": {REGIONS}, \
         \"threads\": {THREADS}, \"seeds\": {}, \"host_parallelism\": {host_parallelism}, \
         \"sequential_seconds\": {seq_secs:.4}, \"parallel_seconds\": {par_secs:.4}, \
         \"respawn_seconds\": {respawn_secs:.4}, \"pool_speedup\": {pool_speedup:.4}, \
         \"speedup\": {speedup:.4}, \"cost_ratio\": {cost_ratio:.4} }}",
        SEEDS.len()
    )
}

/// The observability tax, measured: the same pipeline corpus generated
/// with the span subscriber disabled (a disabled `span!` is one relaxed
/// load and a branch) vs enabled (full capture into per-thread rings).
/// Min-of-N wall clocks on both sides — the robust estimator against
/// scheduler noise — and the delta is asserted under 3 %: tracing must
/// never be a number anyone hesitates to leave on.
fn obs_overhead_bench() -> String {
    const RUNS: usize = 3;
    // Sized so one run is hundreds of milliseconds: the 3 % bound needs
    // enough absolute wall clock that scheduler jitter cannot fake (or
    // mask) a real regression.
    let scenarios = vec![ScenarioSpec {
        name: "bench-obs".into(),
        design_scale: 0.1,
        resolution: 64,
        pairs_per_design: 24,
        ..ScenarioSpec::default()
    }];
    let opts = PipelineOptions::with_workers(WORKERS);
    let run_once = || {
        let t = Instant::now();
        let _ = generate_corpus(&scenarios, &opts).expect("obs-overhead corpus");
        t.elapsed().as_secs_f64()
    };

    pop_obs::disable_tracing();
    let mut noop = f64::INFINITY;
    for _ in 0..RUNS {
        noop = noop.min(run_once());
    }
    pop_obs::enable_tracing();
    let mut traced = f64::INFINITY;
    for _ in 0..RUNS {
        traced = traced.min(run_once());
        // Drain between runs so ring occupancy never caps what a run
        // records (dropped spans would make tracing look cheaper).
        let set = pop_obs::drain_spans();
        assert_eq!(set.dropped, 0, "span rings must not overflow this workload");
    }
    pop_obs::disable_tracing();

    let overhead = traced / noop - 1.0;
    println!(
        "obs overhead: noop {noop:.3} s, traced {traced:.3} s, delta {:+.2}%",
        overhead * 100.0
    );
    assert!(
        overhead < 0.03,
        "span tracing must cost < 3% of pipeline wall clock (got {:+.2}%)",
        overhead * 100.0
    );
    format!(
        "{{ \"runs\": {RUNS}, \"noop_seconds\": {noop:.4}, \
         \"traced_seconds\": {traced:.4}, \"overhead\": {overhead:.4} }}"
    )
}

/// The "standard corpus" of the acceptance criterion: three scenarios,
/// three design families, mixed fabric density/aspect — heavy enough per
/// pair (tens of milliseconds of place + route) that stage overlap, not
/// queue overhead, decides the wall clock.
fn standard_corpus() -> Vec<ScenarioSpec> {
    let base = ScenarioSpec {
        design_scale: 0.05,
        resolution: 64,
        pairs_per_design: 8,
        ..ScenarioSpec::default()
    };
    vec![
        ScenarioSpec {
            name: "bench-baseline".into(),
            design: "diffeq2".into(),
            ..base.clone()
        },
        ScenarioSpec {
            name: "bench-dense".into(),
            design: "diffeq1".into(),
            target_utilization: 0.9,
            ..base.clone()
        },
        ScenarioSpec {
            name: "bench-sha".into(),
            design: "SHA".into(),
            aspect_ratio: 2.0,
            seed: 101,
            ..base
        },
    ]
}

fn main() {
    let scenarios = standard_corpus();
    let total_pairs: usize = scenarios.iter().map(ScenarioSpec::total_pairs).sum();
    let host_parallelism = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    println!(
        "corpus: {} scenarios, {total_pairs} pairs; host parallelism {host_parallelism}, \
         pipeline workers {WORKERS}",
        scenarios.len()
    );

    // Warm-up (page caches, allocator) on the smallest scenario.
    let warm = vec![ScenarioSpec {
        pairs_per_design: 1,
        ..scenarios[0].clone()
    }];
    let _ = generate_corpus_sequential(&warm).expect("warm-up");

    let t0 = Instant::now();
    let sequential = generate_corpus_sequential(&scenarios).expect("sequential path");
    let seq_secs = t0.elapsed().as_secs_f64();

    let t1 = Instant::now();
    let parallel = generate_corpus(&scenarios, &PipelineOptions::with_workers(WORKERS))
        .expect("parallel pipeline");
    let par_secs = t1.elapsed().as_secs_f64();

    // The correctness half of the claim: identical output, bit for bit
    // (wall-clock timing metadata aside).
    let mut identical = sequential.len() == parallel.len();
    for (s, p) in sequential.iter().zip(&parallel) {
        identical &= s.name == p.name
            && s.channel_width == p.channel_width
            && s.pairs.len() == p.pairs.len()
            && s.pairs
                .iter()
                .zip(&p.pairs)
                .all(|(a, b)| a.without_timings() == b.without_timings());
    }
    assert!(
        identical,
        "pipeline output diverged from the sequential path"
    );

    let seq_pps = total_pairs as f64 / seq_secs;
    let par_pps = total_pairs as f64 / par_secs;
    let speedup = seq_secs / par_secs;
    println!("sequential: {seq_secs:.2} s ({seq_pps:.2} pairs/s)");
    println!("pipeline ({WORKERS} workers): {par_secs:.2} s ({par_pps:.2} pairs/s)");
    println!("speedup: {speedup:.2}x, outputs identical: {identical}");

    // Cache variant: a cold run through a fresh CorpusStore (generates and
    // writes per-job caches as jobs complete), then a warm re-run that
    // must stream straight from disk — 100% hits, zero place/route stage
    // executions, bitwise-identical pairs (wall-clock provenance included,
    // which regeneration could never reproduce).
    let cache_root =
        std::env::temp_dir().join(format!("pop_bench_pipeline_cache_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&cache_root);
    let cache_opts = PipelineOptions::with_workers(WORKERS).with_cache_dir(&cache_root);
    let t2 = Instant::now();
    let (cold, cold_stats) =
        generate_corpus_with_stats(&scenarios, &cache_opts).expect("cold cached run");
    let cold_secs = t2.elapsed().as_secs_f64();
    assert_eq!(cold_stats.cache_hits, 0, "cache dir must start empty");
    let t3 = Instant::now();
    let (warm, warm_stats) =
        generate_corpus_with_stats(&scenarios, &cache_opts).expect("warm cached run");
    let warm_secs = t3.elapsed().as_secs_f64();
    let _ = std::fs::remove_dir_all(&cache_root);
    assert_eq!(
        warm_stats.cache_hits, warm_stats.jobs,
        "warm run must be 100% cache hits"
    );
    assert_eq!(warm_stats.place_stage_runs, 0, "warm run must not place");
    assert_eq!(warm_stats.route_stage_runs, 0, "warm run must not route");
    assert_eq!(cold, warm, "cached pairs must be bitwise-identical");
    let warm_ratio = cold_secs / warm_secs;
    println!(
        "cache: cold {cold_secs:.2} s -> warm {warm_secs:.3} s ({warm_ratio:.1}x, \
         {}/{} hits, 0 place/route runs)",
        warm_stats.cache_hits, warm_stats.jobs
    );

    // Single-large-design placement parallelism (the tentpole of PR 4).
    let place_parallel = place_parallel_bench(host_parallelism);

    // Observability tax: traced vs noop subscriber on the same corpus.
    let obs_overhead = obs_overhead_bench();

    let json = format!(
        "{{\n  \"bench\": \"pipeline_gen\",\n  \"scenarios\": {},\n  \"total_pairs\": {},\n  \
         \"host_parallelism\": {},\n  \"workers\": {},\n  \
         \"sequential\": {{ \"seconds\": {:.4}, \"pairs_per_sec\": {:.4} }},\n  \
         \"pipeline\": {{ \"seconds\": {:.4}, \"pairs_per_sec\": {:.4} }},\n  \
         \"speedup\": {:.4},\n  \"identical\": {},\n  \
         \"cache\": {{ \"cold_seconds\": {:.4}, \"warm_seconds\": {:.4}, \
         \"cold_vs_warm\": {:.4}, \"jobs\": {}, \"warm_cache_hits\": {}, \
         \"warm_place_stage_runs\": {}, \"warm_route_stage_runs\": {}, \
         \"identical\": true }},\n  \
         \"place_parallel\": {place_parallel},\n  \
         \"obs_overhead\": {obs_overhead}\n}}\n",
        scenarios.len(),
        total_pairs,
        host_parallelism,
        WORKERS,
        seq_secs,
        seq_pps,
        par_secs,
        par_pps,
        speedup,
        identical,
        cold_secs,
        warm_secs,
        warm_ratio,
        warm_stats.jobs,
        warm_stats.cache_hits,
        warm_stats.place_stage_runs,
        warm_stats.route_stage_runs,
    );
    // Anchor the artefact at the workspace root regardless of the bench
    // binary's working directory.
    let out = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_pipeline.json");
    std::fs::write(&out, &json).expect("write BENCH_pipeline.json");
    println!("wrote {}", out.display());
}
