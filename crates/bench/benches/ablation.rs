//! Criterion bench: cost of the design choices DESIGN.md calls out —
//! skip-connection modes (§5.3), grayscale vs RGB inputs (§5.2) and the
//! RUDY analytical baseline vs one generator forward pass.

use criterion::{criterion_group, criterion_main, Criterion};
use pop_arch::Arch;
use pop_core::{ExperimentConfig, Pix2Pix, SkipMode};
use pop_netlist::{generate, presets};
use pop_nn::Tensor;
use pop_place::{place, PlaceOptions};
use pop_route::rudy_estimate;

fn bench_ablation(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation");
    group.sample_size(20);

    // Skip-connection modes: inference cost per variant.
    let base = ExperimentConfig::test();
    for (label, skip) in [
        ("all_skips", SkipMode::All),
        ("single_skip", SkipMode::Single),
        ("no_skips", SkipMode::None),
    ] {
        let cfg = ExperimentConfig {
            skip,
            ..base.clone()
        };
        let mut model = Pix2Pix::new(&cfg, 1).expect("model");
        let x = Tensor::randn(
            [1, cfg.input_channels(), cfg.resolution, cfg.resolution],
            0.0,
            0.5,
            2,
        );
        group.bench_function(format!("forecast_{label}"), |b| {
            b.iter(|| model.forecast(&x))
        });
    }

    // Grayscale vs RGB input channels.
    let gray = ExperimentConfig {
        grayscale_input: true,
        ..base.clone()
    };
    let mut gray_model = Pix2Pix::new(&gray, 1).expect("model");
    let gx = Tensor::randn(
        [1, gray.input_channels(), gray.resolution, gray.resolution],
        0.0,
        0.5,
        3,
    );
    group.bench_function("forecast_grayscale_input", |b| {
        b.iter(|| gray_model.forecast(&gx))
    });

    // The RUDY analytical baseline on the same placement inputs.
    let netlist = generate(&presets::by_name("diffeq1").unwrap().scaled(0.02));
    let (cl, io, me, mu) = netlist.site_demand();
    let arch = Arch::auto_size(cl, io, me, mu, 16, 1.3).unwrap();
    let placement = place(&arch, &netlist, &PlaceOptions::default()).unwrap();
    group.bench_function("rudy_estimate", |b| {
        b.iter(|| rudy_estimate(&arch, &netlist, &placement, 1.0))
    });

    group.finish();
}

criterion_group!(benches, bench_ablation);
criterion_main!(benches);
