//! Criterion bench: simulated-annealing placement throughput.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use pop_arch::Arch;
use pop_netlist::{generate, presets};
use pop_place::{place, Annealer, PlaceOptions};

fn setup() -> (Arch, pop_netlist::Netlist) {
    let netlist = generate(&presets::by_name("diffeq1").unwrap().scaled(0.02));
    let (c, i, m, x) = netlist.site_demand();
    let arch = Arch::auto_size(c, i, m, x, 12, 1.3).unwrap();
    (arch, netlist)
}

fn bench_placer(c: &mut Criterion) {
    let (arch, netlist) = setup();
    let mut group = c.benchmark_group("placer");
    group.sample_size(10);

    group.bench_function("full_anneal_diffeq1_x0.02", |b| {
        b.iter(|| place(&arch, &netlist, &PlaceOptions::default()).unwrap())
    });

    group.bench_function("anneal_1000_moves", |b| {
        b.iter_batched(
            || Annealer::new(&arch, &netlist, &PlaceOptions::default()).unwrap(),
            |mut annealer| annealer.step(1000),
            BatchSize::SmallInput,
        )
    });

    group.finish();
}

criterion_group!(benches, bench_placer);
criterion_main!(benches);
