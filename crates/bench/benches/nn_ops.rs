//! Criterion bench: neural-network layer kernels (the substrate replacing
//! TensorFlow).

use criterion::{criterion_group, criterion_main, Criterion};
use pop_nn::{BatchNorm2d, Conv2d, ConvTranspose2d, Layer, Tensor};

fn bench_nn_ops(c: &mut Criterion) {
    let mut group = c.benchmark_group("nn_ops");
    group.sample_size(20);

    let x = Tensor::randn([1, 16, 32, 32], 0.0, 1.0, 1);
    let mut conv = Conv2d::new(16, 32, 4, 2, 1, 2);
    group.bench_function("conv2d_fwd_16x32x32", |b| b.iter(|| conv.forward(&x, true)));
    let y = conv.forward(&x, true);
    group.bench_function("conv2d_fwd_bwd_16x32x32", |b| {
        b.iter(|| {
            let _ = conv.forward(&x, true);
            conv.backward(&y)
        })
    });

    let xt = Tensor::randn([1, 32, 16, 16], 0.0, 1.0, 3);
    let mut deconv = ConvTranspose2d::new(32, 16, 4, 2, 1, 4);
    group.bench_function("deconv_fwd_32x16x16", |b| {
        b.iter(|| deconv.forward(&xt, true))
    });

    let mut bn = BatchNorm2d::new(16);
    group.bench_function("batchnorm_fwd_16x32x32", |b| {
        b.iter(|| bn.forward(&x, true))
    });

    group.bench_function("matmul_64x256x256", |b| {
        let a = vec![0.5f32; 64 * 256];
        let bm = vec![0.25f32; 256 * 256];
        b.iter(|| {
            let mut out = vec![0.0f32; 64 * 256];
            pop_nn::linalg::matmul_nn(&a, &bm, &mut out, 64, 256, 256);
            out
        })
    });

    group.finish();
}

criterion_group!(benches, bench_nn_ops);
criterion_main!(benches);
