//! Kernel microbench: the register-blocked `linalg` kernels vs the PR-1
//! reference kernels (embedded below, zero-skip and all) at the exact GEMM
//! shapes batched inference creates at the serve configuration
//! (`ExperimentConfig::quick()`: 64×64, 4 input channels, base filters 12,
//! depth 6, batch 8), plus end-to-end f32 vs quantized `forecast_batch`
//! throughput and the quantization accuracy delta.
//!
//! Emits `BENCH_kernels.json` at the workspace root and sanity-parses it
//! back. `--smoke` runs one timed pass per shape (seconds, not minutes)
//! and skips the throughput assertions — CI uses it to prove the artefact
//! stays emittable and well-formed; the committed numbers come from a full
//! run. `--note <text>` appends a line to the artefact's `notes` array
//! (used to record the lto/codegen-units before/after).
//!
//! Run with `cargo bench -p pop-bench --bench kernels [-- --smoke]`.

use pop_core::{ExperimentConfig, Forecaster, Pix2Pix};
use pop_nn::linalg::{matmul_nn, matmul_nt, matmul_tn};
use pop_nn::Tensor;
use std::time::Instant;

// ---------------------------------------------------------------------------
// PR-1 reference kernels, embedded verbatim (same fold order, `ikj` loops,
// column tiling and the `== 0.0` skip) so old-vs-new is measured in one
// binary under one profile.
// ---------------------------------------------------------------------------

fn ref_col_tile(rows: usize, n: usize) -> usize {
    (262_144 / rows.max(1)).max(32).min(n.max(1))
}

fn ref_matmul_nn(a: &[f32], b: &[f32], c: &mut [f32], m: usize, k: usize, n: usize) {
    let tile = ref_col_tile(k + m, n);
    let mut j0 = 0;
    while j0 < n {
        let j1 = (j0 + tile).min(n);
        for i in 0..m {
            let c_row = &mut c[i * n + j0..i * n + j1];
            for kk in 0..k {
                let aik = a[i * k + kk];
                if aik == 0.0 {
                    continue;
                }
                let b_row = &b[kk * n + j0..kk * n + j1];
                for (cv, bv) in c_row.iter_mut().zip(b_row) {
                    *cv += aik * bv;
                }
            }
        }
        j0 = j1;
    }
}

fn ref_matmul_nt(a: &[f32], b: &[f32], c: &mut [f32], m: usize, k: usize, n: usize) {
    for i in 0..m {
        let a_row = &a[i * k..(i + 1) * k];
        for j in 0..n {
            let b_row = &b[j * k..(j + 1) * k];
            let mut acc = 0.0f32;
            for (av, bv) in a_row.iter().zip(b_row) {
                acc += av * bv;
            }
            c[i * n + j] += acc;
        }
    }
}

fn ref_matmul_tn(a: &[f32], b: &[f32], c: &mut [f32], m: usize, k: usize, n: usize) {
    let tile = ref_col_tile(m, n);
    let mut j0 = 0;
    while j0 < n {
        let j1 = (j0 + tile).min(n);
        for kk in 0..k {
            let a_row = &a[kk * m..(kk + 1) * m];
            let b_row = &b[kk * n + j0..kk * n + j1];
            for i in 0..m {
                let aki = a_row[i];
                if aki == 0.0 {
                    continue;
                }
                let c_row = &mut c[i * n + j0..i * n + j1];
                for (cv, bv) in c_row.iter_mut().zip(b_row) {
                    *cv += aki * bv;
                }
            }
        }
        j0 = j1;
    }
}

// ---------------------------------------------------------------------------
// The serve-shape GEMM inventory: every forward-path matmul the quick-config
// U-Net issues for one batch-8 `forecast_batch` call. Encoder convs lower to
// `nn` with (m, k, n) = (out_c, in_c·4·4, 8·ho·wo); decoder deconvs lower to
// `tn` with (out_c·4·4, in_c, 8·h·w). Channel plan: enc 12,24,48,96,96,96;
// dec 96,96,96,48,24,3 with skip concats (see pop-core's `UNetGenerator`).
// ---------------------------------------------------------------------------

struct GemmShape {
    kernel: &'static str,
    layer: &'static str,
    m: usize,
    k: usize,
    n: usize,
}

const SERVE_SHAPES: &[GemmShape] = &[
    GemmShape {
        kernel: "nn",
        layer: "enc0",
        m: 12,
        k: 64,
        n: 8192,
    },
    GemmShape {
        kernel: "nn",
        layer: "enc1",
        m: 24,
        k: 192,
        n: 2048,
    },
    GemmShape {
        kernel: "nn",
        layer: "enc2",
        m: 48,
        k: 384,
        n: 512,
    },
    GemmShape {
        kernel: "nn",
        layer: "enc3",
        m: 96,
        k: 768,
        n: 128,
    },
    GemmShape {
        kernel: "nn",
        layer: "enc4",
        m: 96,
        k: 1536,
        n: 32,
    },
    GemmShape {
        kernel: "nn",
        layer: "enc5",
        m: 96,
        k: 1536,
        n: 8,
    },
    GemmShape {
        kernel: "tn",
        layer: "dec0",
        m: 1536,
        k: 96,
        n: 8,
    },
    GemmShape {
        kernel: "tn",
        layer: "dec1",
        m: 1536,
        k: 192,
        n: 32,
    },
    GemmShape {
        kernel: "tn",
        layer: "dec2",
        m: 1536,
        k: 192,
        n: 128,
    },
    GemmShape {
        kernel: "tn",
        layer: "dec3",
        m: 768,
        k: 144,
        n: 512,
    },
    GemmShape {
        kernel: "tn",
        layer: "dec4",
        m: 384,
        k: 72,
        n: 2048,
    },
    GemmShape {
        kernel: "tn",
        layer: "dec5",
        m: 48,
        k: 36,
        n: 8192,
    },
    // Backward-path shape (training, `C += A @ Bᵀ`), one representative.
    GemmShape {
        kernel: "nt",
        layer: "bwd2",
        m: 48,
        k: 512,
        n: 384,
    },
];

/// Deterministic non-zero matrix filler (zeros would let the reference
/// kernels' `== 0.0` skip fire and muddy the comparison).
fn fill(len: usize, seed: u64) -> Vec<f32> {
    (0..len)
        .map(|i| {
            let x = (i as u64)
                .wrapping_mul(6364136223846793005)
                .wrapping_add(seed | 1);
            let v = ((x >> 33) as f32 / 2.0_f32.powi(31)) - 1.0;
            if v == 0.0 {
                0.5
            } else {
                v
            }
        })
        .collect()
}

/// Min-of-`reps` per-call seconds for `iters` back-to-back calls of `f` —
/// the robust estimator against scheduler noise on a shared host.
fn time_per_call(reps: usize, iters: usize, mut f: impl FnMut()) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let t = Instant::now();
        for _ in 0..iters {
            f();
        }
        best = best.min(t.elapsed().as_secs_f64() / iters as f64);
    }
    best
}

struct ShapeResult {
    kernel: &'static str,
    layer: &'static str,
    m: usize,
    k: usize,
    n: usize,
    flops: f64,
    ref_secs: f64,
    new_secs: f64,
}

fn bench_shape(shape: &GemmShape, smoke: bool) -> ShapeResult {
    let &GemmShape {
        kernel,
        layer,
        m,
        k,
        n,
    } = shape;
    let (a_len, b_len) = match kernel {
        "nn" => (m * k, k * n),
        "nt" => (m * k, n * k),
        "tn" => (k * m, k * n),
        other => unreachable!("unknown kernel {other}"),
    };
    let a = fill(a_len, 11);
    let b = fill(b_len, 22);
    let mut c_ref = vec![0.0f32; m * n];
    let mut c_new = vec![0.0f32; m * n];
    let run_ref: &dyn Fn(&mut [f32]) = &|c| match kernel {
        "nn" => ref_matmul_nn(&a, &b, c, m, k, n),
        "nt" => ref_matmul_nt(&a, &b, c, m, k, n),
        _ => ref_matmul_tn(&a, &b, c, m, k, n),
    };
    let run_new: &dyn Fn(&mut [f32]) = &|c| match kernel {
        "nn" => matmul_nn(&a, &b, c, m, k, n),
        "nt" => matmul_nt(&a, &b, c, m, k, n),
        _ => matmul_tn(&a, &b, c, m, k, n),
    };

    // Correctness checksum: same fold order ⇒ bitwise-equal outputs (the
    // exhaustive proof lives in pop-nn's identity and property tests).
    run_ref(&mut c_ref);
    run_new(&mut c_new);
    let same = c_ref
        .iter()
        .zip(&c_new)
        .all(|(x, y)| x.to_bits() == y.to_bits());
    assert!(same, "{kernel}/{layer}: new kernel diverged from reference");

    // Size iterations so each measurement is long enough to trust: pilot
    // one call, target ~60 ms per timed pass (1 pass in smoke mode).
    let t0 = Instant::now();
    c_ref.fill(0.0);
    run_ref(&mut c_ref);
    let pilot = t0.elapsed().as_secs_f64().max(1e-6);
    let iters = if smoke {
        1
    } else {
        ((0.06 / pilot).ceil() as usize).clamp(2, 400)
    };
    let reps = if smoke { 1 } else { 3 };

    let ref_secs = time_per_call(reps, iters, || {
        c_ref.fill(0.0);
        run_ref(&mut c_ref);
    });
    let new_secs = time_per_call(reps, iters, || {
        c_new.fill(0.0);
        run_new(&mut c_new);
    });
    let flops = 2.0 * m as f64 * k as f64 * n as f64;
    println!(
        "{kernel}/{layer} ({m}x{k}x{n}): ref {:.2} GFLOP/s, new {:.2} GFLOP/s, {:.2}x",
        flops / ref_secs / 1e9,
        flops / new_secs / 1e9,
        ref_secs / new_secs
    );
    ShapeResult {
        kernel,
        layer,
        m,
        k,
        n,
        flops,
        ref_secs,
        new_secs,
    }
}

struct InferenceResult {
    f32_images_per_sec: f64,
    quant_images_per_sec: f64,
    quant_speedup: f64,
    quant_max_abs_delta: f64,
}

/// End-to-end `forecast_batch` at the serve shape: f32 vs the i8-quantized
/// forecaster, same weights, same batch.
fn bench_inference(smoke: bool) -> InferenceResult {
    const BATCH: usize = 8;
    let config = ExperimentConfig::quick();
    let mut model = Pix2Pix::new(&config, 7).expect("quick config");
    let quant = model.quantized();
    let xs: Vec<Tensor> = (0..BATCH)
        .map(|i| {
            Tensor::randn(
                [
                    1,
                    config.input_channels(),
                    config.resolution,
                    config.resolution,
                ],
                0.0,
                0.5,
                100 + i as u64,
            )
        })
        .collect();
    let refs: Vec<&Tensor> = xs.iter().collect();

    let f32_out = model.forecast_batch(&refs);
    let quant_out = quant.forecast_batch(&refs).expect("quantized forecast");
    let mut max_delta = 0.0f64;
    for (f, q) in f32_out.iter().zip(&quant_out) {
        for (a, b) in f.data().iter().zip(q.data()) {
            max_delta = max_delta.max((a - b).abs() as f64);
        }
    }

    let (reps, iters) = if smoke { (1, 1) } else { (3, 3) };
    let f32_secs = time_per_call(reps, iters, || {
        let _ = model.forecast_batch(&refs);
    });
    let quant_secs = time_per_call(reps, iters, || {
        let _ = quant.forecast_batch(&refs).expect("quantized forecast");
    });
    let f32_ips = BATCH as f64 / f32_secs;
    let quant_ips = BATCH as f64 / quant_secs;
    println!(
        "forecast_batch (quick, batch {BATCH}): f32 {f32_ips:.2} img/s, \
         quantized {quant_ips:.2} img/s ({:.2}x), max |Δ| {max_delta:.4}",
        quant_ips / f32_ips
    );
    InferenceResult {
        f32_images_per_sec: f32_ips,
        quant_images_per_sec: quant_ips,
        quant_speedup: quant_ips / f32_ips,
        quant_max_abs_delta: max_delta,
    }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let mut notes: Vec<String> = vec![format!(
        "profile.bench: lto=thin, codegen-units=1, debug=true (workspace Cargo.toml)"
    )];
    let mut it = args.iter();
    while let Some(a) = it.next() {
        if a == "--note" {
            notes.push(
                it.next()
                    .expect("--note requires a value")
                    .replace('"', "'"),
            );
        }
    }
    let host_parallelism = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    println!(
        "kernels bench ({}), host parallelism {host_parallelism}",
        if smoke { "smoke" } else { "full" }
    );

    let results: Vec<ShapeResult> = SERVE_SHAPES.iter().map(|s| bench_shape(s, smoke)).collect();

    // Whole-forward-pass kernel throughput: total GEMM work over total GEMM
    // time for one batch-8 forecast (the `nt` training shape excluded).
    let fwd: Vec<&ShapeResult> = results.iter().filter(|r| r.kernel != "nt").collect();
    let fwd_flops: f64 = fwd.iter().map(|r| r.flops).sum();
    let fwd_ref: f64 = fwd.iter().map(|r| r.ref_secs).sum();
    let fwd_new: f64 = fwd.iter().map(|r| r.new_secs).sum();
    let fwd_speedup = fwd_ref / fwd_new;
    println!(
        "forward-pass GEMMs: ref {:.2} GFLOP/s, new {:.2} GFLOP/s, speedup {fwd_speedup:.2}x",
        fwd_flops / fwd_ref / 1e9,
        fwd_flops / fwd_new / 1e9
    );

    let inference = bench_inference(smoke);

    if !smoke {
        assert!(
            fwd_speedup >= 1.3,
            "batched-inference kernel throughput must be ≥1.3x the PR-1 kernels \
             (got {fwd_speedup:.2}x)"
        );
        assert!(
            inference.quant_speedup > 1.0,
            "quantized inference must beat f32 (got {:.2}x)",
            inference.quant_speedup
        );
    }
    assert!(
        inference.quant_max_abs_delta < 0.1,
        "quantized outputs drifted from f32 (max |Δ| {:.4})",
        inference.quant_max_abs_delta
    );

    let shapes_json: Vec<String> = results
        .iter()
        .map(|r| {
            format!(
                "    {{ \"kernel\": \"{}\", \"layer\": \"{}\", \"m\": {}, \"k\": {}, \
                 \"n\": {}, \"gflops_ref\": {:.4}, \"gflops_new\": {:.4}, \
                 \"speedup\": {:.4} }}",
                r.kernel,
                r.layer,
                r.m,
                r.k,
                r.n,
                r.flops / r.ref_secs / 1e9,
                r.flops / r.new_secs / 1e9,
                r.ref_secs / r.new_secs
            )
        })
        .collect();
    let notes_json: Vec<String> = notes.iter().map(|n| format!("    \"{n}\"")).collect();
    let json = format!(
        "{{\n  \"bench\": \"kernels\",\n  \"smoke\": {smoke},\n  \
         \"host_parallelism\": {host_parallelism},\n  \
         \"serve_shape\": {{ \"config\": \"quick\", \"resolution\": 64, \"batch\": 8 }},\n  \
         \"shapes\": [\n{}\n  ],\n  \
         \"forward_pass\": {{ \"gflops_ref\": {:.4}, \"gflops_new\": {:.4}, \
         \"speedup\": {:.4} }},\n  \
         \"inference\": {{ \"f32_images_per_sec\": {:.4}, \
         \"quant_images_per_sec\": {:.4}, \"quant_speedup\": {:.4}, \
         \"quant_max_abs_delta\": {:.6} }},\n  \
         \"notes\": [\n{}\n  ]\n}}\n",
        shapes_json.join(",\n"),
        fwd_flops / fwd_ref / 1e9,
        fwd_flops / fwd_new / 1e9,
        fwd_speedup,
        inference.f32_images_per_sec,
        inference.quant_images_per_sec,
        inference.quant_speedup,
        inference.quant_max_abs_delta,
        notes_json.join(",\n"),
    );
    let out = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_kernels.json");
    std::fs::write(&out, &json).expect("write BENCH_kernels.json");

    // Sanity-parse the artefact back: the keys CI greps for must survive a
    // write/read round trip, and every number must have serialized finite.
    let back = std::fs::read_to_string(&out).expect("read BENCH_kernels.json back");
    for key in [
        "\"bench\": \"kernels\"",
        "\"shapes\"",
        "\"forward_pass\"",
        "\"speedup\"",
        "\"quant_speedup\"",
        "\"notes\"",
    ] {
        assert!(back.contains(key), "artefact missing {key}");
    }
    assert!(
        !back.contains("NaN") && !back.contains(": inf") && !back.contains(": -inf"),
        "artefact contains non-finite numbers"
    );
    println!("wrote {}", out.display());
}
