//! Criterion bench: heat-map forecast latency — the numerator of the
//! paper's speedup metric ("inference takes about 0.09 second per image"
//! on the authors' GPU; this measures our CPU substrate).

use criterion::{criterion_group, criterion_main, Criterion};
use pop_core::{ExperimentConfig, Pix2Pix};
use pop_nn::Tensor;

fn bench_inference(c: &mut Criterion) {
    let mut group = c.benchmark_group("inference");
    group.sample_size(20);

    for (label, config) in [
        ("test_scale", ExperimentConfig::test()),
        ("quick_scale", ExperimentConfig::quick()),
    ] {
        let mut model = Pix2Pix::new(&config, 1).expect("valid config");
        let x = Tensor::randn(
            [
                1,
                config.input_channels(),
                config.resolution,
                config.resolution,
            ],
            0.0,
            0.5,
            2,
        );
        group.bench_function(format!("forecast_{label}"), |b| {
            b.iter(|| model.forecast(&x))
        });
        group.bench_function(format!("train_step_{label}"), |b| {
            let y = Tensor::randn([1, 3, config.resolution, config.resolution], 0.0, 0.5, 3);
            b.iter(|| model.train_step(&x, &y))
        });
    }

    group.finish();
}

criterion_group!(benches, bench_inference);
criterion_main!(benches);
