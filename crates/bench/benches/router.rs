//! Criterion bench: PathFinder routing and min-channel-width search.

use criterion::{criterion_group, criterion_main, Criterion};
use pop_arch::Arch;
use pop_netlist::{generate, presets};
use pop_place::{place, PlaceOptions};
use pop_route::{min_channel_width, route, route_on_graph, RouteGraph, RouteOptions};

fn bench_router(c: &mut Criterion) {
    let netlist = generate(&presets::by_name("diffeq1").unwrap().scaled(0.02));
    let (cl, io, me, mu) = netlist.site_demand();
    let arch = Arch::auto_size(cl, io, me, mu, 16, 1.3).unwrap();
    let placement = place(&arch, &netlist, &PlaceOptions::default()).unwrap();
    let graph = RouteGraph::new(&arch);

    let mut group = c.benchmark_group("router");
    group.sample_size(10);

    group.bench_function("route_diffeq1_x0.02", |b| {
        b.iter(|| route(&arch, &netlist, &placement, &RouteOptions::default()).unwrap())
    });

    group.bench_function("route_prebuilt_graph", |b| {
        b.iter(|| {
            route_on_graph(
                &arch,
                &graph,
                &netlist,
                &placement,
                &RouteOptions::default(),
            )
            .unwrap()
        })
    });

    group.bench_function("min_channel_width", |b| {
        b.iter(|| min_channel_width(&arch, &netlist, &placement, &RouteOptions::default()).unwrap())
    });

    group.bench_function("build_route_graph", |b| b.iter(|| RouteGraph::new(&arch)));

    group.finish();
}

criterion_group!(benches, bench_router);
criterion_main!(benches);
