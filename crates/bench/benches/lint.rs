//! Lint self-benchmark: how long the interprocedural pass takes on this
//! workspace and how much of its call graph resolves to typed verdicts.
//!
//! Emits `BENCH_lint.json` (files/fns/call-site/edge counts, wall-clock
//! seconds, and the resolution rate) and asserts two floors: the
//! workspace lints clean, and the resolution rate stays above 0.65 —
//! the level where the transitive rules stay useful. A front-end
//! regression (parser misses items, symtab loses `use` edges) shows up
//! here as a rate drop before it shows up as silently-missed findings.
//!
//! Run with `cargo bench -p pop-bench --bench lint [-- --smoke]`.

use std::time::Instant;

/// The resolution-rate floor. Today's workspace resolves ≈72% of call
/// sites to a Precise workspace target or a proven-external method; the
/// floor leaves headroom for new code while catching wholesale breakage.
const RESOLUTION_FLOOR: f64 = 0.65;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");

    let reps = if smoke { 1 } else { 3 };
    let mut best_secs = f64::INFINITY;
    let mut report = None;
    let mut graph = None;
    for _ in 0..reps {
        let t0 = Instant::now();
        let (r, g) = pop_lint::run_workspace_graph(&root).expect("workspace scans");
        best_secs = best_secs.min(t0.elapsed().as_secs_f64());
        report = Some(r);
        graph = Some(g);
    }
    let report = report.expect("at least one rep ran");
    let graph = graph.expect("at least one rep ran");
    let s = graph.stats;
    let rate = s.resolution_rate();

    println!(
        "lint bench ({}): {} files, {} fns, {} call sites, {} edges",
        if smoke { "smoke" } else { "full" },
        s.files,
        s.fns,
        s.call_sites,
        s.edges
    );
    println!(
        "lint pass: {best_secs:.3}s best of {reps}, resolution {:.1}%, {} findings",
        100.0 * rate,
        report.findings.len()
    );

    assert!(
        report.findings.is_empty(),
        "the workspace must lint clean inside the bench:\n{}",
        report.render()
    );
    assert!(
        rate >= RESOLUTION_FLOOR,
        "call-graph resolution rate {rate:.3} fell below the {RESOLUTION_FLOOR} floor — \
         the front end is losing type information"
    );

    let json = format!(
        "{{\n  \"bench\": \"lint\",\n  \"files\": {},\n  \"fns\": {},\n  \
         \"call_sites\": {},\n  \"edges\": {},\n  \"precise\": {},\n  \
         \"external\": {},\n  \"approx\": {},\n  \"approx_external\": {},\n  \
         \"resolution_rate\": {:.4},\n  \"resolution_floor\": {RESOLUTION_FLOOR},\n  \
         \"lint_seconds\": {best_secs:.4},\n  \"findings\": {},\n  \"allows\": {}\n}}\n",
        s.files,
        s.fns,
        s.call_sites,
        s.edges,
        s.precise,
        s.external,
        s.approx,
        s.approx_external,
        rate,
        report.findings.len(),
        report.allows.len(),
    );
    let out = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_lint.json");
    std::fs::write(&out, &json).expect("write BENCH_lint.json");
    println!("wrote {}", out.display());
}
