//! Closed-loop HTTP serving benchmark: QPS and latency percentiles of a
//! live [`pop_http::HttpServer`] under the traffic shapes the ROADMAP
//! north star cares about — steady closed-loop load, bursty arrivals,
//! and a hot/cold model mix with quantized traffic folded in.
//!
//! Emits `BENCH_serve.json` (per-scenario QPS, p50/p99/max latency,
//! 200/429 split) and asserts the serving invariants while measuring:
//! zero transport/5xx errors, zero worker panics, and a clean drain.
//!
//! Run with `cargo bench -p pop-bench --bench serve_http [-- --ci]`.
//! `--ci` (alias `--smoke`) shrinks the model and request counts to
//! seconds of wall-clock; its noisy numbers gate only "the server
//! serves" floors, never thresholds.

use pop_bench::http_load::{self, LoadPlan};
use pop_core::{ExperimentConfig, Pix2Pix};
use pop_http::{ForecastService, HttpServer, ServerConfig};
use pop_serve::EngineConfig;
use std::time::Duration;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let ci = args.iter().any(|a| a == "--ci" || a == "--smoke");
    let mode = if ci { "ci" } else { "full" };

    // The serve shape: small enough that the bench measures the serving
    // stack (parsing, routing, queueing, batching) rather than minutes
    // of GEMM; large enough that a forward pass dominates a syscall.
    let config = ExperimentConfig {
        resolution: if ci { 16 } else { 32 },
        base_filters: if ci { 4 } else { 8 },
        depth: if ci { 3 } else { 4 },
        ..ExperimentConfig::test()
    };
    let engine = EngineConfig {
        workers: 2,
        max_batch: 8,
        max_wait: Duration::from_micros(500),
        ..EngineConfig::default()
    };
    let service = ForecastService::builder()
        .engine_config(engine)
        .model_with_quantized("hot", Pix2Pix::new(&config, 11).expect("valid config"))
        .model("cold", Pix2Pix::new(&config, 12).expect("valid config"))
        .build()
        .expect("service starts");
    let server = HttpServer::start(
        service,
        ServerConfig {
            workers: 8,
            ..ServerConfig::default()
        },
    )
    .expect("server binds");
    let addr = server.local_addr();
    let target = http_load::discover(addr).expect("server describes itself");
    assert_eq!(target.hot, "hot");
    assert_eq!(target.cold.as_deref(), Some("cold"));
    assert!(target.hot_quant, "hot model serves quantized replicas");

    let reqs = if ci { 8 } else { 64 };
    let plans = [
        // Steady closed-loop: the sustained-throughput baseline.
        LoadPlan {
            name: "steady_hot".to_string(),
            clients: 4,
            requests_per_client: reqs,
            burst: 0,
            pause: Duration::ZERO,
            cold_every: 0,
            quant_every: 0,
        },
        // Bursty arrivals: back-to-back volleys separated by idle gaps —
        // the shape that stresses the micro-batcher and the queue bound.
        LoadPlan {
            name: "bursty_hot".to_string(),
            clients: 4,
            requests_per_client: reqs,
            burst: 8,
            pause: Duration::from_millis(20),
            cold_every: 0,
            quant_every: 0,
        },
        // Production-shaped mix: mostly hot f32, every 3rd request the
        // quantized fast path, every 4th the cold model.
        LoadPlan {
            name: "hot_cold_mix".to_string(),
            clients: 4,
            requests_per_client: reqs,
            burst: 0,
            pause: Duration::ZERO,
            cold_every: 4,
            quant_every: 3,
        },
    ];

    let mut reports = Vec::new();
    for plan in &plans {
        let report = http_load::run(addr, &target, plan);
        println!("{}", http_load::summary_line(&report));
        assert_eq!(
            report.errors, 0,
            "{}: only 200/429 are acceptable under load",
            report.name
        );
        assert!(report.qps > 0.0, "{}: the server must serve", report.name);
        assert!(
            report.ok + report.rejected == report.requests,
            "{}: every request is accounted for",
            report.name
        );
        reports.push(report);
    }

    let drain = server.shutdown();
    println!(
        "drain: worker_panics {}, completed {}, rejected {}, http requests {}",
        drain.worker_panics, drain.serve.completed, drain.serve.rejected, drain.http.requests
    );
    assert_eq!(drain.worker_panics, 0, "no connection worker may panic");
    assert_eq!(drain.http.responses_5xx, 0, "no request may hit a 5xx");
    let total_ok: usize = reports.iter().map(|r| r.ok).sum();
    assert!(
        drain.serve.completed >= total_ok as u64,
        "serve-layer counters cover every completed forecast"
    );

    let json = http_load::render_bench_json(mode, config.resolution, &reports);
    let out = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_serve.json");
    std::fs::write(&out, &json).expect("write BENCH_serve.json");
    println!("wrote {}", out.display());
}
