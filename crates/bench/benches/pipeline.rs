//! Criterion bench: one end-to-end dataset pair (place → route → rasterise
//! → tensors), the unit of the paper's data-generation cost.

use criterion::{criterion_group, criterion_main, Criterion};
use pop_core::features::{assemble_input, assemble_target};
use pop_core::{dataset::design_fabric, ExperimentConfig};
use pop_netlist::presets;
use pop_place::{place, PlaceOptions};
use pop_raster::{render_congestion, render_connectivity, render_placement};
use pop_route::{route_on_graph, RouteGraph, RouteOptions};

fn bench_pipeline(c: &mut Criterion) {
    let config = ExperimentConfig::test();
    let spec = presets::by_name("diffeq1").unwrap();
    let (arch, netlist, _) = design_fabric(&spec, &config).expect("fabric");
    let graph = RouteGraph::new(&arch);

    let mut group = c.benchmark_group("pipeline");
    group.sample_size(10);

    group.bench_function("one_pair_end_to_end", |b| {
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            let opts = PlaceOptions {
                seed,
                inner_num: 0.05,
                ..Default::default()
            };
            let placement = place(&arch, &netlist, &opts).unwrap();
            let routing = route_on_graph(
                &arch,
                &graph,
                &netlist,
                &placement,
                &RouteOptions::default(),
            )
            .unwrap();
            let img_place = render_placement(&arch, &netlist, &placement, config.resolution);
            let img_connect = render_connectivity(&arch, &netlist, &placement, config.resolution);
            let img_route = render_congestion(
                &arch,
                &netlist,
                &placement,
                routing.congestion(),
                config.resolution,
            );
            (
                assemble_input(&img_place, &img_connect, &config),
                assemble_target(&img_route),
            )
        })
    });

    group.finish();
}

criterion_group!(benches, bench_pipeline);
criterion_main!(benches);
