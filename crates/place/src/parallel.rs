//! Region-partitioned parallel-moves simulated annealing.
//!
//! The sequential [`Annealer`](crate::Annealer) is the wall-clock
//! bottleneck whenever a corpus has one *large* design instead of a wide
//! sweep: the pipeline's placement pool then has a single job to run and
//! every other worker idles. This module parallelises *inside* one
//! placement, the way routability-driven placers (RoutePlacer, GOALPlace)
//! treat the placer itself as the scalable component:
//!
//! 1. the fabric is partitioned into `K` vertical strips (regions), each
//!    owning whole site columns — two half-strip-shifted partitions
//!    alternate between sync rounds so strip boundaries never fossilise;
//! 2. every temperature step ("epoch") runs [`SYNC_ROUNDS`] synchronised
//!    rounds: each region proposes its share of the `INNER_NUM · N^{4/3}`
//!    move budget **confined to its own blocks and sites**, scored against
//!    a frozen start-of-round snapshot of the rest of the fabric, on a
//!    [`pop_exec::run_scoped`] worker pool;
//! 3. each round's region outcomes merge in fixed region order (disjoint
//!    by construction) and the moved blocks' net costs are refreshed
//!    exactly; after the rounds, a sequential **exchange phase** spends
//!    the remaining budget on whole-fabric moves so blocks can migrate
//!    across region boundaries;
//! 4. temperature, range limit and the exit criterion then update from the
//!    epoch's aggregate acceptance, exactly as in the sequential schedule.
//!
//! **Determinism:** each region's move stream is driven by a SplitMix-
//! derived RNG seeded from `(seed, epoch, round, region)`, region outcomes
//! are pure functions of the round snapshot, and the merge order is fixed
//! — so the final placement depends only on `(seed, regions)`. The thread
//! count decides wall-clock, never bits; `threads = 1` *is* the reference
//! sequential execution of the same schedule.

use crate::cost::CostModel;
use crate::error::PlaceError;
use crate::kernel::{random_initial_placement, MoveKernel, SitePools};
use crate::options::{PlaceOptions, PlaceStrategy};
use crate::placement::{required_site_kind, Placement};
use crate::AnnealStats;
use pop_arch::{Arch, SiteKind};
use pop_netlist::{BlockId, Netlist};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Ceiling of the sequential exchange fraction — the value small designs
/// use, and the fixed fraction of the first parallel milestone. Amdahl
/// bounds the 4-thread speedup at `1 / (f + (1-f)/4)` = 2.5× for
/// `f = 0.20`.
const EXCHANGE_FRACTION_MAX: f64 = 0.20;

/// Floor of the exchange fraction: even the largest designs keep 5% of
/// the budget in whole-fabric moves so blocks can cross region boundaries.
/// At `f = 0.05` the 4-thread Amdahl ceiling rises to 3.48×.
const EXCHANGE_FRACTION_MIN: f64 = 0.05;

/// Fraction of each epoch's move budget spent in the sequential exchange
/// phase (whole-fabric moves that let blocks cross region boundaries) —
/// a pure function of `(movable, regions)`, never of timing, so it is
/// part of the `(seed, regions)` determinism contract.
///
/// Rationale: cross-boundary traffic scales with the number of boundary
/// columns (∝ `regions`) relative to the design's side length
/// (∝ `√movable`), so the fraction decays as `regions / √movable`: small
/// designs keep the proven 20% (identical schedule to the fixed-fraction
/// milestone), while large designs — exactly where the sequential phase
/// dominates wall-clock — taper toward 5%, raising the Amdahl ceiling
/// where it matters. Quality holds because a large fabric's exchange
/// budget is still huge in absolute moves and both partitions' alternating
/// boundaries co-optimise straddling nets.
fn exchange_fraction(movable: usize, regions: usize) -> f64 {
    if regions <= 1 || movable == 0 {
        EXCHANGE_FRACTION_MAX
    } else {
        (regions as f64 / (movable as f64).sqrt())
            .clamp(EXCHANGE_FRACTION_MIN, EXCHANGE_FRACTION_MAX)
    }
}

/// SplitMix64 finaliser — the per-region stream derivation of the issue's
/// determinism contract (also how the `rand` shim expands seeds).
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Synchronisation rounds per temperature step: the region phase re-takes
/// its snapshot (merge + exact cost refresh) this many times per epoch, so
/// region workers never score more than `1/SYNC_ROUNDS` of a temperature's
/// moves against stale remote positions. The resync cost is O(nets) per
/// round — noise next to the move budget — and it measurably closes the
/// final-cost gap to the sequential annealer.
const SYNC_ROUNDS: u64 = 4;

/// Minimum movable blocks per region: below this, confining moves to a
/// strip starves the proposers (tiny per-kind pools, mostly no-op picks)
/// and placement quality falls off a cliff. The requested region count is
/// clamped so small designs degenerate toward one region — the parallel
/// schedule is for *large* designs; small ones never needed it.
const MIN_MOVABLE_PER_REGION: usize = 16;

/// The RNG stream seed of `(seed, epoch, round, region)` — distinct per
/// region, per sync round and per epoch, independent of thread scheduling.
fn region_stream_seed(seed: u64, epoch: usize, round: u64, region: usize) -> u64 {
    splitmix64(
        splitmix64(seed ^ splitmix64(epoch as u64 + 1) ^ splitmix64((round + 1) << 8))
            ^ (region as u64 + 1),
    )
}

/// What one region worker hands back after its slice of an epoch.
struct RegionOutcome {
    /// Blocks whose site changed, with their final (region-internal) site.
    moves: Vec<(BlockId, pop_arch::SiteId)>,
    proposed: u64,
    accepted: u64,
}

/// The fixed spatial partition: `region_of_x[x]` maps a fabric column to
/// its region; `pools[r]` holds region `r`'s move-target sites.
struct RegionMap {
    region_of_x: Vec<u32>,
    pools: Vec<SitePools>,
}

impl RegionMap {
    /// Splits the fabric into vertical strips with balanced CLB column
    /// counts; every site column (IO, memory, multiplier included) lands in
    /// exactly one strip. `k` is clamped to the CLB column count.
    ///
    /// `phase 0` is the canonical k-strip partition; `phase 1` shifts every
    /// boundary by half a strip (yielding up to `k + 1` strips). Sync
    /// rounds alternate between the two, so every phase-0 boundary is
    /// strip-interior in phase 1 — nets straddling a boundary get
    /// co-optimised on alternate rounds instead of depending solely on the
    /// exchange phase.
    fn new(arch: &Arch, k: usize, phase: usize) -> Self {
        let mut clb_cols: Vec<usize> = Vec::new();
        for s in arch.sites() {
            if s.kind == SiteKind::Clb && clb_cols.last() != Some(&s.x) {
                if let Err(i) = clb_cols.binary_search(&s.x) {
                    clb_cols.insert(i, s.x);
                }
            }
        }
        let n = clb_cols.len();
        let k = k.clamp(1, n.max(1));
        // Chunk end indices into `clb_cols` (exclusive, strictly
        // increasing, final end == n).
        let mut ends: Vec<usize> = if phase == 0 || k == 1 {
            (1..=k).map(|i| n * i / k).collect()
        } else {
            let mut v: Vec<usize> = (0..k).map(|i| n * (2 * i + 1) / (2 * k)).collect();
            v.push(n);
            v
        };
        ends.retain(|&e| e > 0);
        ends.dedup();
        let regions = ends.len();
        // Region r covers every x up to (and including) its last CLB
        // column; the final region covers the rest (right IO column
        // included).
        let hi_x: Vec<usize> = ends.iter().map(|&e| clb_cols[e - 1]).collect();
        let mut region_of_x = vec![(regions - 1) as u32; arch.width()];
        for (x, slot) in region_of_x.iter_mut().enumerate() {
            *slot = hi_x.partition_point(|&hi| hi < x).min(regions - 1) as u32;
        }
        let pools = (0..regions)
            .map(|r| {
                SitePools::from_sites(
                    arch,
                    arch.sites().iter().filter(|s| region_of_x[s.x] == r as u32),
                )
            })
            .collect();
        RegionMap { region_of_x, pools }
    }

    fn len(&self) -> usize {
        self.pools.len()
    }
}

/// Region-partitioned parallel-moves annealer — the multi-threaded
/// counterpart of [`Annealer`](crate::Annealer) behind
/// [`PlaceStrategy::ParallelRegions`].
///
/// Deterministic in `(options.seed, regions)`: the thread count only
/// changes wall-clock time (see the module docs for why). Final cost
/// tracks the sequential annealer's within a few percent on fabrics large
/// enough to partition; tiny fabrics degenerate to one region, where the
/// schedule is close to (but not bitwise) the sequential one.
///
/// # Example
///
/// ```
/// use pop_arch::Arch;
/// use pop_netlist::{presets, generate};
/// use pop_place::{ParallelAnnealer, PlaceOptions, PlaceStrategy};
///
/// let netlist = generate(&presets::by_name("diffeq1").unwrap().scaled(0.05));
/// let (c, i, m, x) = netlist.site_demand();
/// let arch = Arch::auto_size(c, i, m, x, 12, 1.3)?;
/// let opts = PlaceOptions {
///     strategy: PlaceStrategy::ParallelRegions { regions: 2, threads: 2 },
///     ..PlaceOptions::default()
/// };
/// let mut annealer = ParallelAnnealer::new(&arch, &netlist, &opts)?;
/// annealer.run();
/// assert!(annealer.placement().verify(&arch, &netlist).is_ok());
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug)]
pub struct ParallelAnnealer<'a> {
    arch: &'a Arch,
    netlist: &'a Netlist,
    options: PlaceOptions,
    kernel: MoveKernel<'a>,
    global_pools: SitePools,
    /// Alternating partitions: `maps[0]` is the canonical k-strip split,
    /// `maps[1]` (present when k > 1) the half-strip-shifted one.
    maps: Vec<RegionMap>,
    threads: usize,
    /// Persistent park/unpark workers for the per-round fan-out — spawned
    /// once per annealer instead of once per round. `None` runs rounds on
    /// per-round scoped threads (single-worker schedules, or the
    /// [`pop_exec::PoolMode::ScopedRespawn`] comparison mode).
    pool: Option<pop_exec::ParkingPool>,
    rng: StdRng, // warm-up + exchange-phase stream
    movable: Vec<BlockId>,
    temperature: f64,
    rlim: f64,
    moves_per_temp: u64,
    exchange_per_temp: u64,
    last_acceptance: f64,
    moves_total: u64,
    outer_iters: usize,
    done: bool,
}

impl std::fmt::Debug for RegionMap {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RegionMap")
            .field("regions", &self.pools.len())
            .finish()
    }
}

impl<'a> ParallelAnnealer<'a> {
    /// Creates a parallel annealer with the same random initial placement
    /// and temperature calibration as the sequential annealer (both consume
    /// the seed-derived RNG identically). Region count and thread budget
    /// come from `options.strategy`; a `Sequential` strategy is treated as
    /// one region on one thread.
    ///
    /// # Errors
    ///
    /// Returns [`PlaceError::InsufficientSites`] when a block kind
    /// outnumbers its sites.
    pub fn new(
        arch: &'a Arch,
        netlist: &'a Netlist,
        options: &PlaceOptions,
    ) -> Result<Self, PlaceError> {
        let options = options.sanitized();
        let (regions, threads) = match options.strategy {
            PlaceStrategy::ParallelRegions { regions, threads } => (regions, threads),
            PlaceStrategy::Sequential => (1, 1),
        };
        let mut rng = StdRng::seed_from_u64(options.seed.wrapping_mul(0x5851_f42d_4c95_7f2d));
        let placement = random_initial_placement(arch, netlist, &mut rng)?;
        let model = CostModel::new(options.algorithm);
        let kernel = MoveKernel::new(arch, netlist, model, placement);
        let global_pools = SitePools::whole_fabric(arch);

        let site_count = |k| arch.capacity(k);
        let movable: Vec<BlockId> = netlist
            .blocks()
            .iter()
            .filter(|b| site_count(required_site_kind(b.kind)) > 1)
            .map(|b| b.id)
            .collect();

        // Degenerate gracefully on small designs (see the constant's doc);
        // the clamp is a pure function of the netlist + fabric, so it
        // cannot break the (seed, regions) determinism contract.
        let regions = regions.min((movable.len() / MIN_MOVABLE_PER_REGION).max(1));
        let mut maps = vec![RegionMap::new(arch, regions, 0)];
        if maps[0].len() > 1 {
            maps.push(RegionMap::new(arch, regions, 1));
        }

        let n = netlist.blocks().len() as f64;
        let moves_per_temp = ((options.inner_num * n.powf(4.0 / 3.0)).ceil() as u64).max(16);
        let fraction = exchange_fraction(movable.len(), maps[0].len());
        let exchange_per_temp = ((moves_per_temp as f64 * fraction).ceil() as u64).max(1);

        // Spawn the round workers once; they park between rounds. A
        // single-worker schedule dispatches rounds on scoped threads (the
        // spawn cost is negligible at that cadence), as does the
        // ScopedRespawn comparison mode benches flip on.
        let max_regions = maps.iter().map(RegionMap::len).max().unwrap_or(1);
        let workers = threads.min(max_regions).max(1);
        let pool = (workers > 1 && pop_exec::pool_mode() == pop_exec::PoolMode::Persistent)
            .then(|| pop_exec::ParkingPool::new("pop-place-region", workers));

        let mut annealer = ParallelAnnealer {
            arch,
            netlist,
            options,
            kernel,
            global_pools,
            maps,
            threads,
            pool,
            rng,
            movable,
            temperature: 0.0,
            rlim: arch.width().max(arch.height()) as f64,
            moves_per_temp,
            exchange_per_temp,
            last_acceptance: 1.0,
            moves_total: 0,
            outer_iters: 0,
            done: false,
        };
        annealer.temperature = annealer.calibrate_initial_temperature();
        if annealer.movable.is_empty() || netlist.nets().is_empty() {
            annealer.done = true;
        }
        Ok(annealer)
    }

    /// The same VPR-style warm-up as the sequential annealer: one
    /// whole-fabric move per movable block, accepted unconditionally;
    /// `T0 = 20 · stddev(ΔC)`.
    fn calibrate_initial_temperature(&mut self) -> f64 {
        let rlim = self.rlim;
        if self.movable.is_empty() {
            return 1.0;
        }
        let mut deltas = Vec::with_capacity(self.movable.len());
        for i in 0..self.movable.len() {
            let block = self.movable[i];
            if let Some((delta, _, _)) =
                self.kernel
                    .propose(&mut self.rng, &self.global_pools, block, rlim)
            {
                deltas.push(delta);
            }
        }
        if deltas.is_empty() {
            return 1.0;
        }
        let mean: f64 = deltas.iter().sum::<f64>() / deltas.len() as f64;
        let var: f64 =
            deltas.iter().map(|d| (d - mean) * (d - mean)).sum::<f64>() / deltas.len() as f64;
        (20.0 * var.sqrt()).max(1e-3)
    }

    /// Advances one epoch (= one temperature step): [`SYNC_ROUNDS`]
    /// parallel region rounds (snapshot → confined moves → deterministic
    /// merge → exact refresh), then the sequential exchange phase and the
    /// schedule update. Returns the stats after the step; a no-op once the
    /// schedule is done.
    pub fn step_epoch(&mut self) -> AnnealStats {
        if self.done {
            return self.stats();
        }
        let mut proposed = 0u64;
        let mut accepted = 0u64;
        let region_budget_total = self.moves_per_temp.saturating_sub(self.exchange_per_temp);
        for round in 0..SYNC_ROUNDS {
            // Largest-remainder split of the total across rounds.
            let budget = region_budget_total / SYNC_ROUNDS
                + u64::from(round < region_budget_total % SYNC_ROUNDS);
            self.region_round(round, budget, &mut proposed, &mut accepted);
        }

        // --- Sequential exchange phase: whole-fabric moves on the merged
        // state, driven by the annealer's own RNG stream.
        for _ in 0..self.exchange_per_temp {
            let block = self.movable[self.rng.gen_range(0..self.movable.len())];
            proposed += 1;
            if let Some((delta, _site, old_site)) =
                self.kernel
                    .propose(&mut self.rng, &self.global_pools, block, self.rlim)
            {
                let accept =
                    delta <= 0.0 || self.rng.gen::<f64>() < (-delta / self.temperature).exp();
                if accept {
                    accepted += 1;
                } else {
                    self.kernel.undo(block, old_site);
                }
            }
        }

        // --- Schedule update, identical to the sequential recipe.
        self.moves_total += proposed;
        let acceptance = accepted as f64 / proposed.max(1) as f64;
        self.last_acceptance = acceptance;
        self.outer_iters += 1;
        let max_dim = self.arch.width().max(self.arch.height()) as f64;
        self.rlim = (self.rlim * (1.0 - 0.44 + acceptance)).clamp(1.0, max_dim);
        self.temperature *= self.options.alpha_t;
        self.kernel.refresh_costs();
        let exit_t = self.options.exit_t_factor * self.kernel.total_cost()
            / self.netlist.nets().len().max(1) as f64;
        if self.temperature < exit_t || self.outer_iters >= self.options.max_outer_iters {
            self.done = true;
        }
        self.stats()
    }

    /// One synchronised region round: freeze a snapshot, fan `budget`
    /// confined moves out over the regions on a scoped worker pool, merge
    /// the outcomes in fixed region order and refresh the exact costs.
    /// Workers pull region indices from a shared counter; each outcome is a
    /// pure function of `(snapshot, epoch, round, region)`, so which worker
    /// runs which region cannot leak into the result.
    fn region_round(
        &mut self,
        round: u64,
        budget_total: u64,
        proposed: &mut u64,
        accepted: &mut u64,
    ) {
        // Alternate the partition phase between rounds so phase-0 strip
        // boundaries sit strip-interior on odd rounds.
        let map = &self.maps[round as usize % self.maps.len()];
        let k = map.len();

        // Partition the movable blocks by their *current* region (blocks
        // migrate in the exchange phase, and the region set itself
        // alternates, so this is recomputed from the live placement every
        // round).
        let mut movable_by_region: Vec<Vec<BlockId>> = vec![Vec::new(); k];
        for &b in &self.movable {
            let x = self.arch.site(self.kernel.placement().site_of(b)).x;
            movable_by_region[map.region_of_x[x] as usize].push(b);
        }

        // Split the round budget proportionally to movable counts
        // (largest-remainder rounding keeps the total exact).
        let total_movable: u64 = movable_by_region.iter().map(|m| m.len() as u64).sum();
        let mut budgets = vec![0u64; k];
        let mut assigned = 0u64;
        for r in 0..k {
            budgets[r] = (budget_total * movable_by_region[r].len() as u64)
                .checked_div(total_movable)
                .unwrap_or(0);
            assigned += budgets[r];
        }
        // Top up only regions that can spend the remainder (a region with
        // no movable blocks would just burn its budget as no-op proposals).
        let mut leftover = if total_movable > 0 {
            budget_total - assigned
        } else {
            0
        };
        for (b, movable) in budgets.iter_mut().zip(&movable_by_region) {
            if leftover == 0 {
                break;
            }
            if movable.is_empty() {
                continue;
            }
            *b += 1;
            leftover -= 1;
        }

        let snapshot = self.kernel.placement().clone();
        let snapshot_costs = self.kernel.net_costs().to_vec();
        let snapshot_total = self.kernel.total_cost();
        let (arch, netlist, model) = (self.arch, self.netlist, *self.kernel.model());
        let (temperature, rlim, seed, epoch) = (
            self.temperature,
            self.rlim,
            self.options.seed,
            self.outer_iters,
        );
        let region_pools = &map.pools;
        let next = AtomicUsize::new(0);
        let outcomes: Vec<Mutex<Option<RegionOutcome>>> =
            (0..k).map(|_| Mutex::new(None)).collect();
        {
            let (snapshot, snapshot_costs) = (&snapshot, &snapshot_costs);
            let (movable_by_region, budgets, outcomes, next) =
                (&movable_by_region, &budgets, &outcomes, &next);
            // One worker's share of the round: pull region indices from the
            // shared cursor until they run out. Identical under either
            // executor — each outcome is a pure function of
            // (snapshot, epoch, round, region).
            let worker = move |_w: usize| loop {
                let r = next.fetch_add(1, Ordering::SeqCst);
                if r >= k {
                    break;
                }
                let outcome = run_region(
                    arch,
                    netlist,
                    model,
                    &region_pools[r],
                    &movable_by_region[r],
                    snapshot,
                    snapshot_costs,
                    snapshot_total,
                    budgets[r],
                    temperature,
                    rlim,
                    region_stream_seed(seed, epoch, round, r),
                );
                *outcomes[r].lock().expect("region outcome lock") = Some(outcome);
            };
            let panicked = match &self.pool {
                Some(pool) => pool.run(&worker),
                None => pop_exec::run_scoped("pop-place-region", self.threads.min(k).max(1), |w| {
                    move || worker(w)
                }),
            };
            assert_eq!(panicked, 0, "a region worker panicked");
        }

        // Deterministic merge (fixed region order; regions own disjoint
        // site sets, so the concatenated batch is conflict-free), then an
        // exact *incremental* refresh of the moved blocks' nets: region
        // deltas were scored against frozen remote positions, the refresh
        // restores ground truth at O(nets touched), not O(all nets).
        let merge_started = std::time::Instant::now();
        let mut merged: Vec<(BlockId, pop_arch::SiteId)> = Vec::new();
        for slot in &outcomes {
            let outcome = slot
                .lock()
                .expect("region outcome lock")
                .take()
                .expect("every region delivers an outcome");
            *proposed += outcome.proposed;
            *accepted += outcome.accepted;
            merged.extend(outcome.moves);
        }
        self.kernel.placement_mut().apply_assignments(&merged);
        self.kernel.refresh_blocks(merged.iter().map(|&(b, _)| b));
        pop_obs::global()
            .histogram("place.region.merge_us")
            .record_duration(merge_started.elapsed());
    }

    /// Runs the schedule to completion.
    pub fn run(&mut self) {
        while !self.done {
            self.step_epoch();
        }
    }

    /// Whether the annealing schedule has completed.
    pub fn is_done(&self) -> bool {
        self.done
    }

    /// The placement in its current (possibly mid-anneal) state.
    pub fn placement(&self) -> &Placement {
        self.kernel.placement()
    }

    /// Consumes the annealer, returning the final placement.
    pub fn into_placement(self) -> Placement {
        self.kernel.into_placement()
    }

    /// The number of regions actually in use (the requested count clamped
    /// to the fabric's CLB column count; the canonical, phase-0 partition).
    pub fn regions(&self) -> usize {
        self.maps[0].len()
    }

    /// Current progress statistics.
    pub fn stats(&self) -> AnnealStats {
        AnnealStats {
            temperature: self.temperature,
            cost: self.kernel.total_cost(),
            acceptance: self.last_acceptance,
            rlim: self.rlim,
            moves: self.moves_total,
            outer_iters: self.outer_iters,
        }
    }

    /// Current total cost under the configured cost model.
    pub fn cost(&self) -> f64 {
        self.kernel.total_cost()
    }
}

/// One region's slice of an epoch: move proposals confined to the region's
/// blocks and sites, scored on a private kernel seeded from the epoch
/// snapshot. Pure in its arguments — thread scheduling cannot affect it.
#[allow(clippy::too_many_arguments)] // one epoch snapshot, spelled out
fn run_region(
    arch: &Arch,
    netlist: &Netlist,
    model: CostModel,
    pools: &SitePools,
    movable: &[BlockId],
    snapshot: &Placement,
    snapshot_costs: &[f32],
    snapshot_total: f64,
    budget: u64,
    temperature: f64,
    rlim: f64,
    stream_seed: u64,
) -> RegionOutcome {
    if movable.is_empty() || budget == 0 {
        return RegionOutcome {
            moves: Vec::new(),
            proposed: budget,
            accepted: 0,
        };
    }
    let mut rng = StdRng::seed_from_u64(stream_seed);
    let mut kernel = MoveKernel::with_costs(
        arch,
        netlist,
        model,
        snapshot.clone(),
        snapshot_costs.to_vec(),
        snapshot_total,
    );
    let mut accepted = 0u64;
    for _ in 0..budget {
        let block = movable[rng.gen_range(0..movable.len())];
        if let Some((delta, _site, old_site)) = kernel.propose(&mut rng, pools, block, rlim) {
            let accept = delta <= 0.0 || rng.gen::<f64>() < (-delta / temperature).exp();
            if accept {
                accepted += 1;
            } else {
                kernel.undo(block, old_site);
            }
        }
    }
    let final_placement = kernel.into_placement();
    let moves = movable
        .iter()
        .filter_map(|&b| {
            let s = final_placement.site_of(b);
            (s != snapshot.site_of(b)).then_some((b, s))
        })
        .collect();
    RegionOutcome {
        moves,
        proposed: budget,
        accepted,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::wirelength;
    use pop_netlist::{generate, presets};

    fn setup(scale: f64) -> (Arch, Netlist) {
        let netlist = generate(&presets::by_name("diffeq1").unwrap().scaled(scale));
        let (c, i, m, x) = netlist.site_demand();
        let arch = Arch::auto_size(c, i, m, x, 12, 1.3).unwrap();
        (arch, netlist)
    }

    fn opts(seed: u64, regions: usize, threads: usize) -> PlaceOptions {
        PlaceOptions {
            seed,
            strategy: PlaceStrategy::ParallelRegions { regions, threads },
            ..PlaceOptions::default()
        }
    }

    #[test]
    fn region_map_partitions_every_column_once() {
        let (arch, _) = setup(0.05);
        for k in [1, 2, 3, 4, 7] {
            for phase in [0, 1] {
                let map = RegionMap::new(&arch, k, phase);
                // Phase 1 shifts boundaries by half a strip and may carry
                // one extra (half-width) strip at each edge.
                assert!(map.len() >= 1 && map.len() <= k.max(1) + 1);
                assert_eq!(map.region_of_x.len(), arch.width());
                // Regions are contiguous, start at 0 and end at len-1.
                assert_eq!(map.region_of_x[0], 0);
                assert_eq!(map.region_of_x[arch.width() - 1] as usize, map.len() - 1);
                for w in map.region_of_x.windows(2) {
                    assert!(
                        w[1] == w[0] || w[1] == w[0] + 1,
                        "strips must be contiguous"
                    );
                }
                // Every site appears in exactly one region pool.
                let total: usize = map
                    .pools
                    .iter()
                    .map(|p| {
                        p.candidates(SiteKind::Clb)
                            + p.candidates(SiteKind::Io)
                            + p.candidates(SiteKind::Memory)
                            + p.candidates(SiteKind::Multiplier)
                    })
                    .sum();
                assert_eq!(total, arch.sites().len());
            }
        }
    }

    #[test]
    fn phase_one_boundaries_are_interior_to_phase_zero_strips() {
        // Wide enough that strips span several columns; on very narrow
        // fabrics integer rounding can make the phases share a boundary,
        // which is harmless (alternation just degenerates there).
        let arch = Arch::builder().interior(32, 8).build().unwrap();
        let a = RegionMap::new(&arch, 4, 0);
        let b = RegionMap::new(&arch, 4, 1);
        // Where phase 0 changes region mid-fabric, phase 1 must not (and
        // vice versa): that is the whole point of alternating.
        let boundaries = |m: &RegionMap| -> Vec<usize> {
            (1..arch.width())
                .filter(|&x| m.region_of_x[x] != m.region_of_x[x - 1])
                .collect()
        };
        let ba = boundaries(&a);
        let bb = boundaries(&b);
        assert!(
            ba.iter().all(|x| !bb.contains(x)),
            "phase-0 {ba:?} and phase-1 {bb:?} boundaries must not coincide"
        );
    }

    #[test]
    fn parallel_placement_is_legal_and_improves() {
        let (arch, netlist) = setup(0.25);
        let mut annealer = ParallelAnnealer::new(&arch, &netlist, &opts(7, 4, 2)).unwrap();
        let before = wirelength(&arch, &netlist, annealer.placement());
        annealer.run();
        annealer.placement().verify(&arch, &netlist).unwrap();
        let after = wirelength(&arch, &netlist, annealer.placement());
        assert!(
            after < before,
            "wirelength should improve: {before} -> {after}"
        );
        assert!(annealer.is_done());
        assert!(annealer.stats().outer_iters > 0);
    }

    #[test]
    fn thread_count_never_changes_the_placement() {
        // The determinism contract: (seed, regions) decides the result,
        // threads only decide wall-clock. threads=1 is the sequential
        // reference execution of the same schedule.
        let (arch, netlist) = setup(0.25);
        let place_with = |threads| {
            let mut a = ParallelAnnealer::new(&arch, &netlist, &opts(42, 3, threads)).unwrap();
            a.run();
            a.into_placement()
        };
        let one = place_with(1);
        let four = place_with(4);
        let eight = place_with(8);
        assert_eq!(one, four);
        assert_eq!(one, eight);
    }

    #[test]
    fn same_seed_and_threads_is_bitwise_identical() {
        let (arch, netlist) = setup(0.25);
        let run = || {
            let mut a = ParallelAnnealer::new(&arch, &netlist, &opts(11, 2, 2)).unwrap();
            a.run();
            a.into_placement()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn seed_and_region_count_change_the_placement() {
        let (arch, netlist) = setup(0.25);
        let place_with = |seed, regions| {
            let mut a = ParallelAnnealer::new(&arch, &netlist, &opts(seed, regions, 2)).unwrap();
            a.run();
            a.into_placement()
        };
        let base = place_with(5, 2);
        assert_ne!(base, place_with(6, 2), "seed must matter");
        assert_ne!(
            base,
            place_with(5, 3),
            "region count is part of the identity"
        );
    }

    #[test]
    fn final_cost_tracks_the_sequential_annealer() {
        let (arch, netlist) = setup(0.25);
        let model = CostModel::new(crate::PlaceAlgorithm::BoundingBox);
        let sequential = crate::place(
            &arch,
            &netlist,
            &PlaceOptions {
                seed: 3,
                ..PlaceOptions::default()
            },
        )
        .unwrap();
        let mut parallel = ParallelAnnealer::new(&arch, &netlist, &opts(3, 4, 2)).unwrap();
        parallel.run();
        let seq_cost = model.total_cost(&arch, &netlist, &sequential) as f64;
        let par_cost = model.total_cost(&arch, &netlist, parallel.placement()) as f64;
        let ratio = par_cost / seq_cost;
        assert!(
            ratio < 1.10,
            "parallel cost {par_cost:.1} vs sequential {seq_cost:.1} (ratio {ratio:.3})"
        );
    }

    #[test]
    fn sequential_strategy_runs_as_one_region() {
        let (arch, netlist) = setup(0.02);
        let mut a = ParallelAnnealer::new(
            &arch,
            &netlist,
            &PlaceOptions {
                seed: 9,
                ..PlaceOptions::default()
            },
        )
        .unwrap();
        assert_eq!(a.regions(), 1);
        a.run();
        a.placement().verify(&arch, &netlist).unwrap();
    }

    #[test]
    fn place_dispatches_on_strategy() {
        let (arch, netlist) = setup(0.2);
        let parallel = crate::place(&arch, &netlist, &opts(21, 2, 2)).unwrap();
        parallel.verify(&arch, &netlist).unwrap();
        // And matches a hand-driven ParallelAnnealer run exactly.
        let mut direct = ParallelAnnealer::new(&arch, &netlist, &opts(21, 2, 2)).unwrap();
        direct.run();
        assert_eq!(parallel, direct.into_placement());
    }

    #[test]
    fn tiny_fabrics_degenerate_gracefully() {
        // A tiny design cannot feed several regions; the annealer must
        // clamp to one region (the movable-count floor) and still
        // terminate legally.
        let (arch, netlist) = setup(0.01);
        let mut a = ParallelAnnealer::new(&arch, &netlist, &opts(1, 16, 4)).unwrap();
        assert_eq!(a.regions(), 1, "movable-count floor must clamp regions");
        a.run();
        a.placement().verify(&arch, &netlist).unwrap();
    }

    #[test]
    fn large_designs_keep_their_requested_regions() {
        let (arch, netlist) = setup(0.25);
        let a = ParallelAnnealer::new(&arch, &netlist, &opts(1, 3, 2)).unwrap();
        assert_eq!(a.regions(), 3);
    }

    #[test]
    fn exchange_fraction_adapts_to_design_size() {
        // Single region (or empty design): the fixed-milestone 20%.
        assert_eq!(exchange_fraction(1000, 1), EXCHANGE_FRACTION_MAX);
        assert_eq!(exchange_fraction(0, 4), EXCHANGE_FRACTION_MAX);
        // Small multi-region designs stay at the ceiling (regions/√N ≥ 0.2).
        assert_eq!(exchange_fraction(100, 4), EXCHANGE_FRACTION_MAX);
        assert_eq!(exchange_fraction(400, 4), EXCHANGE_FRACTION_MAX);
        // Large designs taper: 4 regions over 10 000 movables → the floor.
        assert_eq!(exchange_fraction(10_000, 4), EXCHANGE_FRACTION_MIN);
        // Mid-scale lands strictly between the clamps.
        let mid = exchange_fraction(2_500, 5);
        assert!((mid - 0.10).abs() < 1e-12, "5/√2500 = 0.1, got {mid}");
        // Monotone: more movables never raises the fraction.
        assert!(exchange_fraction(40_000, 4) <= exchange_fraction(10_000, 4));
    }

    #[test]
    fn pool_modes_produce_identical_placements() {
        // The persistent park/unpark pool must change scheduling only:
        // flipping to per-round scoped respawn yields the same bits.
        let (arch, netlist) = setup(0.25);
        let run = || {
            let mut a = ParallelAnnealer::new(&arch, &netlist, &opts(13, 3, 4)).unwrap();
            a.run();
            a.into_placement()
        };
        assert_eq!(pop_exec::pool_mode(), pop_exec::PoolMode::Persistent);
        let persistent = run();
        pop_exec::set_pool_mode(pop_exec::PoolMode::ScopedRespawn);
        let scoped = run();
        pop_exec::set_pool_mode(pop_exec::PoolMode::Persistent);
        assert_eq!(persistent, scoped);
    }

    #[test]
    fn round_dispatches_feed_pool_telemetry() {
        let (arch, netlist) = setup(0.25);
        let mut a = ParallelAnnealer::new(&arch, &netlist, &opts(2, 2, 2)).unwrap();
        if a.pool.is_none() {
            // A concurrent test had the ScopedRespawn comparison mode on
            // while this annealer was built; nothing to measure here.
            return;
        }
        let before = pop_obs::global()
            .snapshot()
            .counter("exec.pool.pop-place-region.rounds")
            .unwrap_or(0);
        a.step_epoch();
        let after = pop_obs::global()
            .snapshot()
            .counter("exec.pool.pop-place-region.rounds")
            .unwrap_or(0);
        // `>=`: other tests' annealers share the counter name.
        assert!(
            after - before >= SYNC_ROUNDS,
            "one pool dispatch per sync round (saw {})",
            after - before
        );
    }
}
