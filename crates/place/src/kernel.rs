//! The move kernel shared by the sequential [`Annealer`](crate::Annealer)
//! and the region-parallel [`ParallelAnnealer`](crate::ParallelAnnealer).
//!
//! One annealing *move* — pick a same-kind target site within the range
//! limit, displace/swap, incrementally update the touched nets' costs, and
//! optionally undo — is identical in both placers; what differs is *which
//! sites are eligible targets* (the whole fabric vs one spatial region) and
//! *which RNG stream drives the pick*. [`MoveKernel`] therefore owns the
//! placement + cost bookkeeping and takes the [`SitePools`] and RNG as
//! parameters, so region workers can run the very same kernel over a
//! region-restricted pool with a region-private RNG stream.

use crate::cost::CostModel;
use crate::error::PlaceError;
use crate::placement::{required_site_kind, Placement};
use pop_arch::{Arch, Site, SiteId, SiteKind};
use pop_netlist::{BlockId, NetId, Netlist};
use rand::rngs::StdRng;
use rand::Rng;

/// The move-target site pools of one fabric slice: CLB columns (sorted by
/// x, each column sorted by y) plus flat pools for the other site kinds.
/// Built once per slice — the whole fabric for the sequential annealer, one
/// spatial region for each parallel-region worker.
#[derive(Debug, Clone)]
pub(crate) struct SitePools {
    clb_cols: Vec<usize>,
    clb_col_sites: Vec<Vec<SiteId>>, // parallel to clb_cols, sorted by y
    io_sites: Vec<SiteId>,
    mem_sites: Vec<SiteId>,
    mult_sites: Vec<SiteId>,
}

impl SitePools {
    /// Pools over an arbitrary subset of the fabric's sites. Sites must be
    /// passed in `arch.sites()` order (ascending y within each x), which
    /// keeps every CLB column sorted.
    pub(crate) fn from_sites<'s>(arch: &Arch, sites: impl Iterator<Item = &'s Site>) -> Self {
        let mut clb_col_map: Vec<Vec<SiteId>> = vec![Vec::new(); arch.width()];
        let mut io_sites = Vec::new();
        let mut mem_sites = Vec::new();
        let mut mult_sites = Vec::new();
        for s in sites {
            match s.kind {
                SiteKind::Clb => clb_col_map[s.x].push(s.id),
                SiteKind::Io => io_sites.push(s.id),
                SiteKind::Memory => mem_sites.push(s.id),
                SiteKind::Multiplier => mult_sites.push(s.id),
            }
        }
        let mut clb_cols = Vec::new();
        let mut clb_col_sites = Vec::new();
        for (x, sites) in clb_col_map.into_iter().enumerate() {
            if !sites.is_empty() {
                clb_cols.push(x);
                clb_col_sites.push(sites);
            }
        }
        SitePools {
            clb_cols,
            clb_col_sites,
            io_sites,
            mem_sites,
            mult_sites,
        }
    }

    /// Pools over the entire fabric.
    pub(crate) fn whole_fabric(arch: &Arch) -> Self {
        Self::from_sites(arch, arch.sites().iter())
    }

    /// Number of candidate sites this pool holds for `kind`.
    #[cfg_attr(not(test), allow(dead_code))] // exercised by partition tests
    pub(crate) fn candidates(&self, kind: SiteKind) -> usize {
        match kind {
            SiteKind::Clb => self.clb_col_sites.iter().map(Vec::len).sum(),
            SiteKind::Io => self.io_sites.len(),
            SiteKind::Memory => self.mem_sites.len(),
            SiteKind::Multiplier => self.mult_sites.len(),
        }
    }
}

/// Placement state plus incremental cost bookkeeping for annealing moves.
///
/// Holds the placement, the per-net cost cache and the stamp/touched
/// scratch used to dedup affected nets. Target-pool and RNG choices are
/// per-call, so one kernel type serves both the global sequential schedule
/// and the per-region parallel workers (each of which runs a kernel over a
/// cloned snapshot).
#[derive(Debug)]
pub(crate) struct MoveKernel<'a> {
    arch: &'a Arch,
    netlist: &'a Netlist,
    model: CostModel,
    placement: Placement,
    net_costs: Vec<f32>,
    total_cost: f64,
    net_stamp: Vec<u64>,
    stamp: u64,
    touched: Vec<NetId>,
}

impl<'a> MoveKernel<'a> {
    /// A kernel over `placement`, computing every net's cost up front.
    pub(crate) fn new(
        arch: &'a Arch,
        netlist: &'a Netlist,
        model: CostModel,
        placement: Placement,
    ) -> Self {
        let net_costs: Vec<f32> = netlist
            .nets()
            .iter()
            .map(|n| model.net_cost(arch, netlist, &placement, n))
            .collect();
        let total_cost: f64 = net_costs.iter().map(|&c| c as f64).sum();
        MoveKernel {
            arch,
            netlist,
            model,
            placement,
            net_costs,
            total_cost,
            net_stamp: vec![0; netlist.nets().len()],
            stamp: 0,
            touched: Vec::new(),
        }
    }

    /// A kernel seeded with already-computed net costs — how a region
    /// worker starts from the epoch snapshot without re-scanning every net.
    pub(crate) fn with_costs(
        arch: &'a Arch,
        netlist: &'a Netlist,
        model: CostModel,
        placement: Placement,
        net_costs: Vec<f32>,
        total_cost: f64,
    ) -> Self {
        debug_assert_eq!(net_costs.len(), netlist.nets().len());
        MoveKernel {
            arch,
            netlist,
            model,
            placement,
            net_costs,
            total_cost,
            net_stamp: vec![0; netlist.nets().len()],
            stamp: 0,
            touched: Vec::new(),
        }
    }

    /// Proposes and applies a move of `block` to a random in-range site of
    /// its kind drawn from `pools`; returns `(delta_cost, new_site,
    /// old_site)`. The move is left applied — callers undo it to reject.
    pub(crate) fn propose(
        &mut self,
        rng: &mut StdRng,
        pools: &SitePools,
        block: BlockId,
        rlim: f64,
    ) -> Option<(f64, SiteId, SiteId)> {
        let old_site = self.placement.site_of(block);
        let target = self.pick_target(rng, pools, block, old_site, rlim)?;
        if target == old_site {
            return None;
        }
        let evicted = self.placement.block_at(target);

        // Collect affected nets (dedup by stamp).
        self.stamp += 1;
        self.touched.clear();
        for &n in self.netlist.nets_of(block) {
            if self.net_stamp[n.index()] != self.stamp {
                self.net_stamp[n.index()] = self.stamp;
                self.touched.push(n);
            }
        }
        if let Some(e) = evicted {
            for &n in self.netlist.nets_of(e) {
                if self.net_stamp[n.index()] != self.stamp {
                    self.net_stamp[n.index()] = self.stamp;
                    self.touched.push(n);
                }
            }
        }

        let old_cost: f64 = self
            .touched
            .iter()
            .map(|&n| self.net_costs[n.index()] as f64)
            .sum();
        self.placement.displace(block, target);
        let mut new_cost = 0.0f64;
        for i in 0..self.touched.len() {
            let n = self.touched[i];
            let c = self.model.net_cost(
                self.arch,
                self.netlist,
                &self.placement,
                self.netlist.net(n),
            );
            self.net_costs[n.index()] = c;
            new_cost += c as f64;
        }
        self.total_cost += new_cost - old_cost;
        Some((new_cost - old_cost, target, old_site))
    }

    /// Undoes a move previously applied by [`MoveKernel::propose`].
    pub(crate) fn undo(&mut self, block: BlockId, old_site: SiteId) {
        self.placement.displace(block, old_site);
        let mut delta = 0.0f64;
        for i in 0..self.touched.len() {
            let n = self.touched[i];
            let old = self.net_costs[n.index()] as f64;
            let c = self.model.net_cost(
                self.arch,
                self.netlist,
                &self.placement,
                self.netlist.net(n),
            );
            self.net_costs[n.index()] = c;
            delta += c as f64 - old;
        }
        self.total_cost += delta;
    }

    /// Picks a random same-kind target site from `pools` within the range
    /// limit; `None` when the pool holds no site of the block's kind.
    fn pick_target(
        &self,
        rng: &mut StdRng,
        pools: &SitePools,
        block: BlockId,
        old_site: SiteId,
        rlim: f64,
    ) -> Option<SiteId> {
        let kind = required_site_kind(self.netlist.block(block).kind);
        let site = self.arch.site(old_site);
        let (cx, cy) = (site.x as f64, site.y as f64);
        let rlim = rlim.max(1.0);
        match kind {
            SiteKind::Clb => {
                if pools.clb_cols.is_empty() {
                    return None;
                }
                let tx =
                    (cx + rng.gen_range(-rlim..=rlim)).clamp(0.0, (self.arch.width() - 1) as f64);
                let ty =
                    (cy + rng.gen_range(-rlim..=rlim)).clamp(0.0, (self.arch.height() - 1) as f64);
                // Nearest CLB column to tx.
                let col_idx = match pools.clb_cols.binary_search(&(tx.round() as usize)) {
                    Ok(i) => i,
                    Err(i) => {
                        if i == 0 {
                            0
                        } else if i >= pools.clb_cols.len() {
                            pools.clb_cols.len() - 1
                        } else {
                            // pick the nearer neighbour
                            let lo = pools.clb_cols[i - 1] as f64;
                            let hi = pools.clb_cols[i] as f64;
                            if (tx - lo).abs() <= (hi - tx).abs() {
                                i - 1
                            } else {
                                i
                            }
                        }
                    }
                };
                let col = &pools.clb_col_sites[col_idx];
                let row = (ty.round() as usize).clamp(
                    self.arch.site(col[0]).y,
                    self.arch.site(col[col.len() - 1]).y,
                ) - self.arch.site(col[0]).y;
                Some(col[row.min(col.len() - 1)])
            }
            SiteKind::Io => pick_in_range(rng, self.arch, &pools.io_sites, cx, cy, rlim),
            SiteKind::Memory => pick_in_range(rng, self.arch, &pools.mem_sites, cx, cy, rlim),
            SiteKind::Multiplier => pick_in_range(rng, self.arch, &pools.mult_sites, cx, cy, rlim),
        }
    }

    /// Recomputes the costs of every net incident to `blocks` (deduped) and
    /// folds the difference into the total — the incremental refresh after
    /// merging a parallel-region move batch, where only the moved blocks'
    /// nets can have changed.
    pub(crate) fn refresh_blocks(&mut self, blocks: impl Iterator<Item = BlockId>) {
        self.stamp += 1;
        self.touched.clear();
        for b in blocks {
            for &n in self.netlist.nets_of(b) {
                if self.net_stamp[n.index()] != self.stamp {
                    self.net_stamp[n.index()] = self.stamp;
                    self.touched.push(n);
                }
            }
        }
        let mut delta = 0.0f64;
        for i in 0..self.touched.len() {
            let n = self.touched[i];
            let old = self.net_costs[n.index()] as f64;
            let c = self.model.net_cost(
                self.arch,
                self.netlist,
                &self.placement,
                self.netlist.net(n),
            );
            self.net_costs[n.index()] = c;
            delta += c as f64 - old;
        }
        self.total_cost += delta;
    }

    /// Recomputes every net's cost from scratch, cancelling accumulated
    /// float drift (and absorbing merged parallel-region moves).
    pub(crate) fn refresh_costs(&mut self) {
        let mut total = 0.0f64;
        for (i, n) in self.netlist.nets().iter().enumerate() {
            let c = self
                .model
                .net_cost(self.arch, self.netlist, &self.placement, n);
            self.net_costs[i] = c;
            total += c as f64;
        }
        self.total_cost = total;
    }

    /// The placement in its current state.
    pub(crate) fn placement(&self) -> &Placement {
        &self.placement
    }

    /// Mutable access for merging parallel-region move batches.
    pub(crate) fn placement_mut(&mut self) -> &mut Placement {
        &mut self.placement
    }

    /// Consumes the kernel, returning its placement.
    pub(crate) fn into_placement(self) -> Placement {
        self.placement
    }

    /// The tracked total cost.
    pub(crate) fn total_cost(&self) -> f64 {
        self.total_cost
    }

    /// The per-net cost cache (a snapshot input for region workers).
    pub(crate) fn net_costs(&self) -> &[f32] {
        &self.net_costs
    }

    /// The cost model this kernel scores with.
    pub(crate) fn model(&self) -> &CostModel {
        &self.model
    }
}

/// Picks a random site from `pool` within Chebyshev distance `rlim` of
/// `(cx, cy)`; falls back to a uniform pick when the window is empty.
fn pick_in_range(
    rng: &mut StdRng,
    arch: &Arch,
    pool: &[SiteId],
    cx: f64,
    cy: f64,
    rlim: f64,
) -> Option<SiteId> {
    if pool.is_empty() {
        return None;
    }
    for _ in 0..8 {
        let cand = pool[rng.gen_range(0..pool.len())];
        let s = arch.site(cand);
        if (s.x as f64 - cx).abs() <= rlim && (s.y as f64 - cy).abs() <= rlim {
            return Some(cand);
        }
    }
    Some(pool[rng.gen_range(0..pool.len())])
}

/// Random legal initial placement: shuffle each kind's site list and assign
/// blocks in order.
pub(crate) fn random_initial_placement(
    arch: &Arch,
    netlist: &Netlist,
    rng: &mut StdRng,
) -> Result<Placement, PlaceError> {
    let mut pools: [Vec<SiteId>; 4] = [Vec::new(), Vec::new(), Vec::new(), Vec::new()];
    for s in arch.sites() {
        let k = match s.kind {
            SiteKind::Io => 0,
            SiteKind::Clb => 1,
            SiteKind::Memory => 2,
            SiteKind::Multiplier => 3,
        };
        pools[k].push(s.id);
    }
    for pool in &mut pools {
        for i in (1..pool.len()).rev() {
            let j = rng.gen_range(0..=i);
            pool.swap(i, j);
        }
    }
    let mut cursors = [0usize; 4];
    let kind_name = ["io", "clb", "memory", "multiplier"];
    let mut site_of = Vec::with_capacity(netlist.blocks().len());
    let mut demand = [0usize; 4];
    for b in netlist.blocks() {
        let k = match required_site_kind(b.kind) {
            SiteKind::Io => 0,
            SiteKind::Clb => 1,
            SiteKind::Memory => 2,
            SiteKind::Multiplier => 3,
        };
        demand[k] += 1;
        if cursors[k] >= pools[k].len() {
            return Err(PlaceError::InsufficientSites {
                kind: kind_name[k],
                needed: netlist
                    .blocks()
                    .iter()
                    .filter(|bb| required_site_kind(bb.kind) == required_site_kind(b.kind))
                    .count(),
                available: pools[k].len(),
            });
        }
        site_of.push(pools[k][cursors[k]]);
        cursors[k] += 1;
    }
    Ok(Placement::from_assignment(site_of, arch.sites().len()))
}
