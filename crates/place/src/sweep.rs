//! Deterministic generation of placement-option combinations.
//!
//! The paper's dataset comes from "sweeping the VPR placement options,
//! including seed, ALPHA_T, INNER_NUM and place_algorithm" to obtain ~200
//! placements per design. [`SweepSpec`] captures the swept values;
//! [`SweepSpec::options`] yields the Cartesian product (seed varying
//! fastest) and [`SweepSpec::take`] yields exactly `n` combinations,
//! extending the seed range as needed — matching how one pads a sweep to a
//! target `#P` count.

use crate::options::{PlaceAlgorithm, PlaceOptions};

/// The values swept for each placement option.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepSpec {
    /// Base RNG seed; combination `i` uses `base_seed + i`.
    pub base_seed: u64,
    /// `ALPHA_T` values to sweep.
    pub alpha_ts: Vec<f64>,
    /// `INNER_NUM` values to sweep.
    pub inner_nums: Vec<f64>,
    /// `place_algorithm` values to sweep.
    pub algorithms: Vec<PlaceAlgorithm>,
}

impl Default for SweepSpec {
    /// The default sweep mirrors a realistic VPR exploration: four cooling
    /// rates, three effort levels, both cost functions.
    fn default() -> Self {
        SweepSpec {
            base_seed: 1,
            alpha_ts: vec![0.8, 0.85, 0.9, 0.95],
            inner_nums: vec![0.25, 0.5, 1.0],
            algorithms: vec![PlaceAlgorithm::BoundingBox, PlaceAlgorithm::PathTiming],
        }
    }
}

impl SweepSpec {
    /// A cheaper sweep for tests and CPU-sized experiments (lower effort,
    /// same diversity of knobs).
    pub fn quick() -> Self {
        SweepSpec {
            base_seed: 1,
            alpha_ts: vec![0.7, 0.8, 0.9],
            inner_nums: vec![0.05, 0.15],
            algorithms: vec![PlaceAlgorithm::BoundingBox, PlaceAlgorithm::PathTiming],
        }
    }

    /// Number of combinations in one full pass of the sweep.
    pub fn combinations(&self) -> usize {
        self.alpha_ts.len() * self.inner_nums.len() * self.algorithms.len()
    }

    /// Yields exactly `n` option sets: the Cartesian product repeated with
    /// fresh seeds until `n` combinations are produced. Every returned
    /// option set is distinct (the seed always advances).
    pub fn take(&self, n: usize) -> Vec<PlaceOptions> {
        let mut out = Vec::with_capacity(n);
        let mut seed = self.base_seed;
        'outer: loop {
            for &alg in &self.algorithms {
                for &alpha in &self.alpha_ts {
                    for &inner in &self.inner_nums {
                        if out.len() >= n {
                            break 'outer;
                        }
                        out.push(PlaceOptions {
                            seed,
                            alpha_t: alpha,
                            inner_num: inner,
                            algorithm: alg,
                            ..PlaceOptions::default()
                        });
                        seed += 1;
                    }
                }
            }
            if self.combinations() == 0 {
                break;
            }
        }
        out
    }

    /// One full pass of the Cartesian product.
    pub fn options(&self) -> Vec<PlaceOptions> {
        self.take(self.combinations())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_sweep_size() {
        let s = SweepSpec::default();
        assert_eq!(s.combinations(), 4 * 3 * 2);
        assert_eq!(s.options().len(), 24);
    }

    #[test]
    fn take_pads_with_fresh_seeds() {
        let s = SweepSpec::default();
        let opts = s.take(50);
        assert_eq!(opts.len(), 50);
        // All seeds distinct => all option sets distinct.
        let mut seeds: Vec<u64> = opts.iter().map(|o| o.seed).collect();
        seeds.sort_unstable();
        seeds.dedup();
        assert_eq!(seeds.len(), 50);
    }

    #[test]
    fn take_covers_all_knob_values() {
        let s = SweepSpec::default();
        let opts = s.take(s.combinations());
        for &a in &s.alpha_ts {
            assert!(opts.iter().any(|o| o.alpha_t == a));
        }
        for &i in &s.inner_nums {
            assert!(opts.iter().any(|o| o.inner_num == i));
        }
        for &alg in &s.algorithms {
            assert!(opts.iter().any(|o| o.algorithm == alg));
        }
    }

    #[test]
    fn empty_sweep_yields_nothing() {
        let s = SweepSpec {
            alpha_ts: vec![],
            ..Default::default()
        };
        assert!(s.take(10).is_empty());
    }
}
