//! VPR-style simulated-annealing FPGA placement.
//!
//! The paper generates its training data by "sweeping the VPR placement
//! options, including `seed`, `ALPHA_T`, `INNER_NUM` and `place_algorithm`"
//! (§5, *Datasets*). This crate reimplements that placer family:
//!
//! * [`Placement`] — a legal assignment of netlist blocks to architecture
//!   sites (one block per site, kinds matching);
//! * [`PlaceOptions`] — the four swept knobs plus the annealing schedule;
//! * [`place`] — one-shot placement;
//! * [`Annealer`] — a stepping interface over the same algorithm, used by
//!   the paper's §5.4 "visualising the simulated-annealing placement
//!   algorithm" application (forecast congestion *while* placing);
//! * [`sweep`] — deterministic generation of option combinations, the
//!   dataset-generation driver behind Table 2's "#P" column.
//!
//! The annealer is the classic VPR recipe: bounding-box wirelength cost with
//! the `q(n)` crossing correction, swap/displace moves restricted to an
//! adaptive range limit, `INNER_NUM · N^{4/3}` moves per temperature, and
//! geometric cooling by `ALPHA_T`.
//!
//! # Example
//!
//! ```
//! use pop_arch::Arch;
//! use pop_netlist::{presets, generate};
//! use pop_place::{place, PlaceOptions};
//!
//! let netlist = generate(&presets::by_name("diffeq2").unwrap().scaled(0.02));
//! let (clbs, ios, mems, mults) = netlist.site_demand();
//! let arch = Arch::auto_size(clbs, ios, mems, mults, 12, 1.3)?;
//! let placement = place(&arch, &netlist, &PlaceOptions::default())?;
//! assert!(placement.verify(&arch, &netlist).is_ok());
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

mod annealer;
mod cost;
mod error;
mod kernel;
mod options;
mod parallel;
mod placement;
pub mod sweep;

pub use annealer::{AnnealStats, Annealer};
pub use cost::{net_bbox_cost, wirelength, CostModel};
pub use error::PlaceError;
pub use options::{PlaceAlgorithm, PlaceOptions, PlaceStrategy};
pub use parallel::ParallelAnnealer;
pub use placement::Placement;

use pop_arch::Arch;
use pop_netlist::Netlist;

/// Places `netlist` onto `arch` by running the configured annealer to
/// completion: the classic sequential schedule, or the region-parallel
/// one when `options.strategy` is [`PlaceStrategy::ParallelRegions`].
///
/// Deterministic in `(options.seed, strategy regions)` — the parallel
/// strategy's thread count affects wall-clock only.
///
/// # Errors
///
/// Returns [`PlaceError::InsufficientSites`] when the architecture lacks
/// sites of some kind.
pub fn place(
    arch: &Arch,
    netlist: &Netlist,
    options: &PlaceOptions,
) -> Result<Placement, PlaceError> {
    let _span = pop_obs::span!(
        "place",
        blocks = netlist.blocks().len(),
        seed = options.seed
    );
    match options.strategy {
        PlaceStrategy::Sequential => {
            let mut annealer = Annealer::new(arch, netlist, options)?;
            annealer.run();
            Ok(annealer.into_placement())
        }
        PlaceStrategy::ParallelRegions { .. } => {
            let mut annealer = ParallelAnnealer::new(arch, netlist, options)?;
            annealer.run();
            Ok(annealer.into_placement())
        }
    }
}
