use crate::options::PlaceAlgorithm;
use crate::placement::Placement;
use pop_arch::Arch;
use pop_netlist::{Net, Netlist};

/// VPR's `q(n)` crossing-correction factors for net bounding-box wirelength
/// (Cheng, "RISA: accurate and efficient placement routability modeling").
/// Index by `min(terminals, 50)`; terminals ≤ 3 need no correction.
const CROSSING: [f32; 51] = [
    1.0, 1.0, 1.0, 1.0, 1.0828, 1.1536, 1.2206, 1.2823, 1.3385, 1.3991, 1.4493, 1.4974, 1.5455,
    1.5937, 1.6418, 1.6899, 1.7304, 1.7709, 1.8114, 1.8519, 1.8924, 1.9288, 1.9652, 2.0015, 2.0379,
    2.0743, 2.1061, 2.1379, 2.1698, 2.2016, 2.2334, 2.2646, 2.2958, 2.3271, 2.3583, 2.3895, 2.4187,
    2.4479, 2.4772, 2.5064, 2.5356, 2.5610, 2.5864, 2.6117, 2.6371, 2.6625, 2.6887, 2.7148, 2.7410,
    2.7671, 2.7933,
];

/// Returns `q(n)` for a net with `terminals` terminals.
fn crossing_factor(terminals: usize) -> f32 {
    CROSSING[terminals.min(50)]
}

/// Cost model used by the annealer: per-net weighted bounding-box
/// half-perimeter wirelength.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CostModel {
    algorithm: PlaceAlgorithm,
}

impl CostModel {
    /// Creates the cost model for a `place_algorithm` choice.
    pub fn new(algorithm: PlaceAlgorithm) -> Self {
        CostModel { algorithm }
    }

    /// Extra weight applied to a net, distinguishing the two algorithms:
    /// `PathTiming` overweights low-fanout nets (proxy for timing-critical
    /// chains), `BoundingBox` weighs all nets equally.
    #[inline]
    pub fn net_weight(&self, net: &Net) -> f32 {
        match self.algorithm {
            PlaceAlgorithm::BoundingBox => 1.0,
            PlaceAlgorithm::PathTiming => {
                if net.degree() <= 3 {
                    1.6
                } else {
                    0.9
                }
            }
        }
    }

    /// Cost of one net under the current placement.
    #[inline]
    pub fn net_cost(&self, arch: &Arch, netlist: &Netlist, p: &Placement, net: &Net) -> f32 {
        self.net_weight(net) * net_bbox_cost(arch, netlist, p, net)
    }

    /// Total placement cost (sum of net costs).
    pub fn total_cost(&self, arch: &Arch, netlist: &Netlist, p: &Placement) -> f32 {
        netlist
            .nets()
            .iter()
            .map(|n| self.net_cost(arch, netlist, p, n))
            .sum()
    }
}

/// Half-perimeter bounding-box cost of `net` with the `q(n)` correction:
/// `q(n) · (bb_width + bb_height)` in tile units.
pub fn net_bbox_cost(arch: &Arch, _netlist: &Netlist, p: &Placement, net: &Net) -> f32 {
    let mut min_x = f32::MAX;
    let mut max_x = f32::MIN;
    let mut min_y = f32::MAX;
    let mut max_y = f32::MIN;
    for term in net.terminals() {
        let (x, y) = p.position(arch, term);
        min_x = min_x.min(x);
        max_x = max_x.max(x);
        min_y = min_y.min(y);
        max_y = max_y.max(y);
    }
    crossing_factor(net.degree()) * ((max_x - min_x) + (max_y - min_y))
}

/// Total uncorrected half-perimeter wirelength of a placement, a quality
/// metric independent of the annealer's weighting (used in tests/benches to
/// compare placements).
pub fn wirelength(arch: &Arch, netlist: &Netlist, p: &Placement) -> f32 {
    netlist
        .nets()
        .iter()
        .map(|net| {
            let mut min_x = f32::MAX;
            let mut max_x = f32::MIN;
            let mut min_y = f32::MAX;
            let mut max_y = f32::MIN;
            for term in net.terminals() {
                let (x, y) = p.position(arch, term);
                min_x = min_x.min(x);
                max_x = max_x.max(x);
                min_y = min_y.min(y);
                max_y = max_y.max(y);
            }
            (max_x - min_x) + (max_y - min_y)
        })
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use pop_netlist::{BlockId, NetId};

    #[test]
    fn crossing_factors_monotone() {
        for n in 1..50 {
            assert!(crossing_factor(n + 1) >= crossing_factor(n));
        }
        assert_eq!(crossing_factor(2), 1.0);
        assert_eq!(crossing_factor(500), crossing_factor(50));
    }

    #[test]
    fn path_timing_overweights_small_nets() {
        let m = CostModel::new(PlaceAlgorithm::PathTiming);
        let small = Net {
            id: NetId(0),
            driver: BlockId(0),
            sinks: vec![BlockId(1)],
        };
        let big = Net {
            id: NetId(1),
            driver: BlockId(0),
            sinks: (1..8).map(BlockId).collect(),
        };
        assert!(m.net_weight(&small) > 1.0);
        assert!(m.net_weight(&big) < 1.0);
        let bb = CostModel::new(PlaceAlgorithm::BoundingBox);
        assert_eq!(bb.net_weight(&small), 1.0);
        assert_eq!(bb.net_weight(&big), 1.0);
    }
}
