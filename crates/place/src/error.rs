use pop_netlist::BlockId;
use std::error::Error;
use std::fmt;

/// Errors produced by placement.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PlaceError {
    /// The architecture does not provide enough sites of a kind.
    InsufficientSites {
        /// Site kind name (`clb`, `io`, `memory`, `multiplier`).
        kind: &'static str,
        /// Blocks needing a site of this kind.
        needed: usize,
        /// Sites available.
        available: usize,
    },
    /// A placement failed verification: a block sits on a site of the wrong
    /// kind or two blocks share a site.
    Illegal {
        /// The offending block.
        block: BlockId,
        /// Human-readable reason.
        reason: String,
    },
}

impl fmt::Display for PlaceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PlaceError::InsufficientSites {
                kind,
                needed,
                available,
            } => write!(
                f,
                "need {needed} {kind} sites but architecture provides {available}"
            ),
            PlaceError::Illegal { block, reason } => {
                write!(f, "illegal placement of block {block}: {reason}")
            }
        }
    }
}

impl Error for PlaceError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_mentions_counts() {
        let e = PlaceError::InsufficientSites {
            kind: "clb",
            needed: 10,
            available: 4,
        };
        assert!(e.to_string().contains("10 clb"));
        assert!(e.to_string().contains('4'));
    }
}
