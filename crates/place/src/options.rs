/// The placement cost function, VPR's `place_algorithm` option.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PlaceAlgorithm {
    /// Pure bounding-box wirelength (`bounding_box` in VPR).
    BoundingBox,
    /// Wirelength with extra weight on low-fanout (timing-critical-like)
    /// nets, standing in for VPR's `path_timing_driven` mode. Produces
    /// systematically different placements, which is all the option sweep
    /// needs from it.
    PathTiming,
}

/// How the annealing schedule is *executed* — on one thread, or fanned out
/// over spatial regions of the fabric.
///
/// This is an execution strategy, not a cost function (that is
/// [`PlaceAlgorithm`]): `Sequential` is the classic single-threaded VPR
/// recipe, `ParallelRegions` partitions the fabric into `regions` vertical
/// strips and runs per-region move proposers on `threads` worker threads
/// with an epoch-synchronised exchange phase for cross-region migration
/// (see [`ParallelAnnealer`](crate::ParallelAnnealer)).
///
/// **Determinism contract:** the parallel result is a pure function of
/// `(seed, regions)` — per-region moves draw from SplitMix-derived RNG
/// streams keyed by `(seed, epoch, region)` and region outcomes merge in
/// fixed region order, so `threads` changes wall-clock only, never the
/// placement. (`Sequential` and `ParallelRegions` produce *different*
/// placements for the same seed; they are different schedules.)
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash)]
pub enum PlaceStrategy {
    /// Single-threaded annealing (the default, VPR's behaviour).
    #[default]
    Sequential,
    /// Region-partitioned parallel-moves annealing.
    ParallelRegions {
        /// Number of vertical fabric strips (clamped to the CLB column
        /// count at run time). Part of the result's identity.
        regions: usize,
        /// Worker threads proposing region moves. Wall-clock only — the
        /// placement is identical for every thread count.
        threads: usize,
    },
}

impl PlaceStrategy {
    /// Checks the strategy's counts are usable; `Err` carries the
    /// human-readable problem (shared by `ExperimentConfig::validate` and
    /// `ScenarioSpec::validate`, which wrap it in their own error types).
    pub fn validate(&self) -> Result<(), String> {
        if let PlaceStrategy::ParallelRegions { regions, threads } = *self {
            if regions == 0 || threads == 0 {
                return Err(format!(
                    "place_strategy ParallelRegions needs positive counts \
                     (regions {regions}, threads {threads})"
                ));
            }
        }
        Ok(())
    }
}

/// Options controlling one placement run — the four knobs the paper sweeps
/// (`seed`, `ALPHA_T`, `INNER_NUM`, `place_algorithm`) plus schedule bounds.
///
/// # Example
///
/// ```
/// use pop_place::{PlaceOptions, PlaceAlgorithm};
///
/// let opts = PlaceOptions {
///     seed: 42,
///     alpha_t: 0.85,
///     inner_num: 0.5,
///     algorithm: PlaceAlgorithm::PathTiming,
///     ..PlaceOptions::default()
/// };
/// assert!(opts.alpha_t < 1.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct PlaceOptions {
    /// RNG seed (VPR `--seed`).
    pub seed: u64,
    /// Geometric cooling factor per temperature step (VPR `ALPHA_T`),
    /// in `(0, 1)`. Lower cools faster and yields worse placements.
    pub alpha_t: f64,
    /// Scales moves per temperature: `inner_num · N^{4/3}` (VPR `INNER_NUM`).
    pub inner_num: f64,
    /// Cost function (VPR `place_algorithm`).
    pub algorithm: PlaceAlgorithm,
    /// Stop when the temperature drops below
    /// `exit_t_factor · cost / num_nets` (VPR's exit criterion).
    pub exit_t_factor: f64,
    /// Safety cap on outer (temperature) iterations.
    pub max_outer_iters: usize,
    /// Execution strategy: single-threaded or region-parallel annealing.
    pub strategy: PlaceStrategy,
}

impl Default for PlaceOptions {
    fn default() -> Self {
        PlaceOptions {
            seed: 1,
            alpha_t: 0.9,
            inner_num: 1.0,
            algorithm: PlaceAlgorithm::BoundingBox,
            exit_t_factor: 0.005,
            max_outer_iters: 256,
            strategy: PlaceStrategy::Sequential,
        }
    }
}

impl PlaceOptions {
    /// Clamps schedule parameters into their valid ranges (alpha into
    /// `[0.5, 0.99]`, inner_num positive), returning the sanitised options.
    /// Out-of-range sweep values are thereby usable without panics.
    pub fn sanitized(&self) -> PlaceOptions {
        let strategy = match self.strategy {
            PlaceStrategy::Sequential => PlaceStrategy::Sequential,
            PlaceStrategy::ParallelRegions { regions, threads } => PlaceStrategy::ParallelRegions {
                regions: regions.clamp(1, 64),
                threads: threads.clamp(1, 64),
            },
        };
        PlaceOptions {
            alpha_t: self.alpha_t.clamp(0.5, 0.99),
            inner_num: self.inner_num.max(0.01),
            exit_t_factor: self.exit_t_factor.max(1e-9),
            max_outer_iters: self.max_outer_iters.max(1),
            strategy,
            ..self.clone()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_valid() {
        let o = PlaceOptions::default();
        assert!(o.alpha_t > 0.0 && o.alpha_t < 1.0);
        assert!(o.inner_num > 0.0);
    }

    #[test]
    fn sanitize_clamps() {
        let o = PlaceOptions {
            alpha_t: 1.5,
            inner_num: -3.0,
            strategy: PlaceStrategy::ParallelRegions {
                regions: 0,
                threads: 10_000,
            },
            ..Default::default()
        }
        .sanitized();
        assert_eq!(o.alpha_t, 0.99);
        assert_eq!(o.inner_num, 0.01);
        assert_eq!(
            o.strategy,
            PlaceStrategy::ParallelRegions {
                regions: 1,
                threads: 64
            }
        );
    }

    #[test]
    fn default_strategy_is_sequential() {
        assert_eq!(PlaceOptions::default().strategy, PlaceStrategy::Sequential);
        assert_eq!(PlaceStrategy::default(), PlaceStrategy::Sequential);
    }
}
