/// The placement cost function, VPR's `place_algorithm` option.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PlaceAlgorithm {
    /// Pure bounding-box wirelength (`bounding_box` in VPR).
    BoundingBox,
    /// Wirelength with extra weight on low-fanout (timing-critical-like)
    /// nets, standing in for VPR's `path_timing_driven` mode. Produces
    /// systematically different placements, which is all the option sweep
    /// needs from it.
    PathTiming,
}

/// Options controlling one placement run — the four knobs the paper sweeps
/// (`seed`, `ALPHA_T`, `INNER_NUM`, `place_algorithm`) plus schedule bounds.
///
/// # Example
///
/// ```
/// use pop_place::{PlaceOptions, PlaceAlgorithm};
///
/// let opts = PlaceOptions {
///     seed: 42,
///     alpha_t: 0.85,
///     inner_num: 0.5,
///     algorithm: PlaceAlgorithm::PathTiming,
///     ..PlaceOptions::default()
/// };
/// assert!(opts.alpha_t < 1.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct PlaceOptions {
    /// RNG seed (VPR `--seed`).
    pub seed: u64,
    /// Geometric cooling factor per temperature step (VPR `ALPHA_T`),
    /// in `(0, 1)`. Lower cools faster and yields worse placements.
    pub alpha_t: f64,
    /// Scales moves per temperature: `inner_num · N^{4/3}` (VPR `INNER_NUM`).
    pub inner_num: f64,
    /// Cost function (VPR `place_algorithm`).
    pub algorithm: PlaceAlgorithm,
    /// Stop when the temperature drops below
    /// `exit_t_factor · cost / num_nets` (VPR's exit criterion).
    pub exit_t_factor: f64,
    /// Safety cap on outer (temperature) iterations.
    pub max_outer_iters: usize,
}

impl Default for PlaceOptions {
    fn default() -> Self {
        PlaceOptions {
            seed: 1,
            alpha_t: 0.9,
            inner_num: 1.0,
            algorithm: PlaceAlgorithm::BoundingBox,
            exit_t_factor: 0.005,
            max_outer_iters: 256,
        }
    }
}

impl PlaceOptions {
    /// Clamps schedule parameters into their valid ranges (alpha into
    /// `[0.5, 0.99]`, inner_num positive), returning the sanitised options.
    /// Out-of-range sweep values are thereby usable without panics.
    pub fn sanitized(&self) -> PlaceOptions {
        PlaceOptions {
            alpha_t: self.alpha_t.clamp(0.5, 0.99),
            inner_num: self.inner_num.max(0.01),
            exit_t_factor: self.exit_t_factor.max(1e-9),
            max_outer_iters: self.max_outer_iters.max(1),
            ..self.clone()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_valid() {
        let o = PlaceOptions::default();
        assert!(o.alpha_t > 0.0 && o.alpha_t < 1.0);
        assert!(o.inner_num > 0.0);
    }

    #[test]
    fn sanitize_clamps() {
        let o = PlaceOptions {
            alpha_t: 1.5,
            inner_num: -3.0,
            ..Default::default()
        }
        .sanitized();
        assert_eq!(o.alpha_t, 0.99);
        assert_eq!(o.inner_num, 0.01);
    }
}
