use crate::error::PlaceError;
use pop_arch::{Arch, SiteId, SiteKind};
use pop_netlist::{BlockId, BlockKind, Netlist};

/// A complete assignment of every netlist block to an architecture site.
///
/// Invariants (checked by [`Placement::verify`], maintained by the
/// annealer): every block has exactly one site, no two blocks share a site,
/// and block kinds match site kinds (`Input`/`Output` → `Io`, `Clb` → `Clb`,
/// …). This is the `Graph(V, E', grids)` of the paper's §2.2: after
/// placement every vertex has a 2-D location.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Placement {
    site_of: Vec<SiteId>,
    block_at: Vec<Option<BlockId>>,
}

impl Placement {
    /// Builds a placement from a per-block site assignment.
    ///
    /// `site_of[b]` is the site of block `b`; `num_sites` is
    /// `arch.sites().len()`.
    pub(crate) fn from_assignment(site_of: Vec<SiteId>, num_sites: usize) -> Self {
        let mut block_at = vec![None; num_sites];
        for (b, s) in site_of.iter().enumerate() {
            block_at[s.index()] = Some(BlockId(b as u32));
        }
        Placement { site_of, block_at }
    }

    /// The site holding `block`.
    #[inline]
    pub fn site_of(&self, block: BlockId) -> SiteId {
        self.site_of[block.index()]
    }

    /// The block on `site`, if any.
    #[inline]
    pub fn block_at(&self, site: SiteId) -> Option<BlockId> {
        self.block_at[site.index()]
    }

    /// Number of placed blocks.
    pub fn len(&self) -> usize {
        self.site_of.len()
    }

    /// Whether the placement holds no blocks.
    pub fn is_empty(&self) -> bool {
        self.site_of.is_empty()
    }

    /// Continuous 2-D location of `block` (its site's centre), the `grids`
    /// coordinate used for wirelength, rasterisation and routing.
    #[inline]
    pub fn position(&self, arch: &Arch, block: BlockId) -> (f32, f32) {
        arch.site(self.site_of(block)).center()
    }

    /// Moves `block` to `site`, returning the previous occupant of `site`
    /// (which is left unplaced — callers must re-place it, as the annealer's
    /// swap move does).
    pub(crate) fn displace(&mut self, block: BlockId, site: SiteId) -> Option<BlockId> {
        let old_site = self.site_of[block.index()];
        let evicted = self.block_at[site.index()];
        self.block_at[old_site.index()] = None;
        self.block_at[site.index()] = Some(block);
        self.site_of[block.index()] = site;
        if let Some(e) = evicted {
            if e != block {
                self.block_at[old_site.index()] = Some(e);
                self.site_of[e.index()] = old_site;
            }
        }
        evicted
    }

    /// Applies a batch of final block positions at once — the merge step of
    /// the region-parallel annealer. The batch must be a *re-assignment*:
    /// target sites distinct, and any occupant displaced from a target site
    /// must itself appear in the batch (region workers guarantee this by
    /// only permuting blocks within their own site set).
    pub(crate) fn apply_assignments(&mut self, moves: &[(BlockId, SiteId)]) {
        // Two passes so a block landing on another mover's old site never
        // sees a stale occupant: first vacate every mover's old site, then
        // bind the new ones.
        for &(b, _) in moves {
            let old = self.site_of[b.index()];
            self.block_at[old.index()] = None;
        }
        for &(b, s) in moves {
            self.site_of[b.index()] = s;
            self.block_at[s.index()] = Some(b);
        }
    }

    /// Serialises the placement to a simple text format (one
    /// `block_id site_id` line per block), the VPR `.place`-file analogue.
    pub fn to_text(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::from(".placement\n");
        for (b, s) in self.site_of.iter().enumerate() {
            let _ = writeln!(out, "{b} {}", s.0);
        }
        out.push_str(".end\n");
        out
    }

    /// Parses [`Placement::to_text`] output and verifies it against the
    /// architecture and netlist.
    ///
    /// # Errors
    ///
    /// Returns [`PlaceError::Illegal`] for malformed text, out-of-range
    /// ids, or a placement violating any invariant.
    pub fn from_text(text: &str, arch: &Arch, netlist: &Netlist) -> Result<Placement, PlaceError> {
        let bad = |reason: String| PlaceError::Illegal {
            block: BlockId(0),
            reason,
        };
        let mut site_of = vec![None; netlist.blocks().len()];
        for raw in text.lines() {
            let line = raw.split('#').next().unwrap_or("").trim();
            if line.is_empty() || line.starts_with(".placement") {
                continue;
            }
            if line.starts_with(".end") {
                break;
            }
            let (b, s) = line
                .split_once(' ')
                .ok_or_else(|| bad(format!("malformed line: {line}")))?;
            let b: usize = b
                .trim()
                .parse()
                .map_err(|_| bad(format!("bad block id: {line}")))?;
            let s: u32 = s
                .trim()
                .parse()
                .map_err(|_| bad(format!("bad site id: {line}")))?;
            if b >= site_of.len() {
                return Err(bad(format!("block {b} outside netlist")));
            }
            if s as usize >= arch.sites().len() {
                return Err(bad(format!("site {s} outside architecture")));
            }
            site_of[b] = Some(SiteId(s));
        }
        let site_of: Vec<SiteId> = site_of
            .into_iter()
            .enumerate()
            .map(|(b, s)| s.ok_or_else(|| bad(format!("block {b} not placed"))))
            .collect::<Result<_, _>>()?;
        let placement = Placement::from_assignment(site_of, arch.sites().len());
        placement.verify(arch, netlist)?;
        Ok(placement)
    }

    /// Checks all placement invariants against `arch` and `netlist`.
    ///
    /// # Errors
    ///
    /// Returns [`PlaceError::Illegal`] naming the first offending block.
    pub fn verify(&self, arch: &Arch, netlist: &Netlist) -> Result<(), PlaceError> {
        if self.site_of.len() != netlist.blocks().len() {
            return Err(PlaceError::Illegal {
                block: BlockId(0),
                reason: format!(
                    "placement holds {} blocks, netlist has {}",
                    self.site_of.len(),
                    netlist.blocks().len()
                ),
            });
        }
        let mut seen = vec![false; arch.sites().len()];
        for block in netlist.blocks() {
            let site_id = self.site_of(block.id);
            let site = arch.site(site_id);
            if seen[site_id.index()] {
                return Err(PlaceError::Illegal {
                    block: block.id,
                    reason: format!("site {site_id} is shared"),
                });
            }
            seen[site_id.index()] = true;
            let ok = matches!(
                (block.kind, site.kind),
                (BlockKind::Input, SiteKind::Io)
                    | (BlockKind::Output, SiteKind::Io)
                    | (BlockKind::Clb { .. }, SiteKind::Clb)
                    | (BlockKind::Memory, SiteKind::Memory)
                    | (BlockKind::Multiplier, SiteKind::Multiplier)
            );
            if !ok {
                return Err(PlaceError::Illegal {
                    block: block.id,
                    reason: format!("block kind {:?} on {} site", block.kind, site.kind),
                });
            }
            if self.block_at(site_id) != Some(block.id) {
                return Err(PlaceError::Illegal {
                    block: block.id,
                    reason: "site_of/block_at tables disagree".into(),
                });
            }
        }
        Ok(())
    }
}

/// Maps a [`BlockKind`] to the [`SiteKind`] it must be placed on.
pub(crate) fn required_site_kind(kind: BlockKind) -> SiteKind {
    match kind {
        BlockKind::Input | BlockKind::Output => SiteKind::Io,
        BlockKind::Clb { .. } => SiteKind::Clb,
        BlockKind::Memory => SiteKind::Memory,
        BlockKind::Multiplier => SiteKind::Multiplier,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn required_kind_mapping() {
        assert_eq!(required_site_kind(BlockKind::Input), SiteKind::Io);
        assert_eq!(
            required_site_kind(BlockKind::Clb { luts: 1, ffs: 0 }),
            SiteKind::Clb
        );
        assert_eq!(required_site_kind(BlockKind::Memory), SiteKind::Memory);
        assert_eq!(
            required_site_kind(BlockKind::Multiplier),
            SiteKind::Multiplier
        );
    }

    #[test]
    fn text_roundtrip_preserves_placement() {
        use pop_netlist::{generate, presets};
        let netlist = generate(&presets::by_name("diffeq2").unwrap().scaled(0.02));
        let (c, i, m, x) = netlist.site_demand();
        let arch = Arch::auto_size(c, i, m, x, 12, 1.3).unwrap();
        let placement = crate::place(&arch, &netlist, &crate::PlaceOptions::default()).unwrap();
        let text = placement.to_text();
        let back = Placement::from_text(&text, &arch, &netlist).unwrap();
        assert_eq!(placement, back);
    }

    #[test]
    fn from_text_rejects_garbage() {
        use pop_netlist::{generate, presets};
        let netlist = generate(&presets::by_name("diffeq2").unwrap().scaled(0.02));
        let (c, i, m, x) = netlist.site_demand();
        let arch = Arch::auto_size(c, i, m, x, 12, 1.3).unwrap();
        for bad in [
            "0 999999\n", // site out of range
            "0 zero\n",   // non-numeric
            "garbage\n",  // malformed
            "",           // nothing placed
        ] {
            assert!(
                Placement::from_text(bad, &arch, &netlist).is_err(),
                "{bad:?} should fail"
            );
        }
    }

    #[test]
    fn displace_swaps_occupants() {
        // Three sites, two blocks.
        let mut p = Placement::from_assignment(vec![SiteId(0), SiteId(1)], 3);
        // Move block 0 onto an empty site.
        assert_eq!(p.displace(BlockId(0), SiteId(2)), None);
        assert_eq!(p.site_of(BlockId(0)), SiteId(2));
        assert_eq!(p.block_at(SiteId(0)), None);
        // Move block 0 onto block 1's site: they swap.
        let evicted = p.displace(BlockId(0), SiteId(1));
        assert_eq!(evicted, Some(BlockId(1)));
        assert_eq!(p.site_of(BlockId(0)), SiteId(1));
        assert_eq!(p.site_of(BlockId(1)), SiteId(2));
        assert_eq!(p.block_at(SiteId(2)), Some(BlockId(1)));
    }
}
