use crate::cost::CostModel;
use crate::error::PlaceError;
use crate::options::PlaceOptions;
use crate::placement::{required_site_kind, Placement};
use pop_arch::{Arch, SiteId, SiteKind};
use pop_netlist::{BlockId, NetId, Netlist};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Progress snapshot of an annealing run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AnnealStats {
    /// Current temperature.
    pub temperature: f64,
    /// Current total cost.
    pub cost: f64,
    /// Acceptance ratio of the last completed temperature step.
    pub acceptance: f64,
    /// Current move range limit in tiles.
    pub rlim: f64,
    /// Total proposed moves so far.
    pub moves: u64,
    /// Completed temperature (outer) iterations.
    pub outer_iters: usize,
}

/// Simulated-annealing placer with a stepping interface.
///
/// [`Annealer::run`] reproduces VPR's behaviour; [`Annealer::step`] advances
/// by a bounded number of moves so callers can observe (and, in the paper's
/// §5.4 application, *forecast congestion for*) the evolving placement.
///
/// # Example
///
/// ```
/// use pop_arch::Arch;
/// use pop_netlist::{presets, generate};
/// use pop_place::{Annealer, PlaceOptions};
///
/// let netlist = generate(&presets::by_name("diffeq1").unwrap().scaled(0.02));
/// let (c, i, m, x) = netlist.site_demand();
/// let arch = Arch::auto_size(c, i, m, x, 12, 1.3)?;
/// let mut annealer = Annealer::new(&arch, &netlist, &PlaceOptions::default())?;
/// while !annealer.is_done() {
///     annealer.step(500); // forecast on annealer.placement() here
/// }
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug)]
pub struct Annealer<'a> {
    arch: &'a Arch,
    netlist: &'a Netlist,
    options: PlaceOptions,
    model: CostModel,
    placement: Placement,
    net_costs: Vec<f32>,
    total_cost: f64,
    temperature: f64,
    rlim: f64,
    rng: StdRng,
    movable: Vec<BlockId>,
    clb_cols: Vec<usize>,
    clb_col_sites: Vec<Vec<SiteId>>, // parallel to clb_cols, sorted by y
    io_sites: Vec<SiteId>,
    mem_sites: Vec<SiteId>,
    mult_sites: Vec<SiteId>,
    moves_per_temp: u64,
    moves_this_temp: u64,
    accepted_this_temp: u64,
    last_acceptance: f64,
    moves_total: u64,
    outer_iters: usize,
    done: bool,
    net_stamp: Vec<u64>,
    stamp: u64,
    touched: Vec<NetId>,
}

impl<'a> Annealer<'a> {
    /// Creates an annealer with a random initial placement and a calibrated
    /// starting temperature (20 × the standard deviation of move costs, as
    /// in VPR). Deterministic in `options.seed`.
    ///
    /// # Errors
    ///
    /// Returns [`PlaceError::InsufficientSites`] when a block kind outnumbers
    /// its sites.
    pub fn new(
        arch: &'a Arch,
        netlist: &'a Netlist,
        options: &PlaceOptions,
    ) -> Result<Self, PlaceError> {
        let options = options.sanitized();
        let mut rng = StdRng::seed_from_u64(options.seed.wrapping_mul(0x5851_f42d_4c95_7f2d));
        let placement = random_initial_placement(arch, netlist, &mut rng)?;

        let model = CostModel::new(options.algorithm);
        let net_costs: Vec<f32> = netlist
            .nets()
            .iter()
            .map(|n| model.net_cost(arch, netlist, &placement, n))
            .collect();
        let total_cost: f64 = net_costs.iter().map(|&c| c as f64).sum();

        // Partition sites for move-target selection.
        let mut clb_col_map: Vec<Vec<SiteId>> = vec![Vec::new(); arch.width()];
        let mut io_sites = Vec::new();
        let mut mem_sites = Vec::new();
        let mut mult_sites = Vec::new();
        for s in arch.sites() {
            match s.kind {
                SiteKind::Clb => clb_col_map[s.x].push(s.id),
                SiteKind::Io => io_sites.push(s.id),
                SiteKind::Memory => mem_sites.push(s.id),
                SiteKind::Multiplier => mult_sites.push(s.id),
            }
        }
        let mut clb_cols = Vec::new();
        let mut clb_col_sites = Vec::new();
        for (x, sites) in clb_col_map.into_iter().enumerate() {
            if !sites.is_empty() {
                clb_cols.push(x);
                clb_col_sites.push(sites);
            }
        }

        // Movable blocks: kinds with more than one candidate site.
        let site_count = |k: SiteKind| arch.capacity(k);
        let movable: Vec<BlockId> = netlist
            .blocks()
            .iter()
            .filter(|b| site_count(required_site_kind(b.kind)) > 1)
            .map(|b| b.id)
            .collect();

        let n = netlist.blocks().len() as f64;
        let moves_per_temp = ((options.inner_num * n.powf(4.0 / 3.0)).ceil() as u64).max(16);

        let mut annealer = Annealer {
            arch,
            netlist,
            options,
            model,
            placement,
            net_costs,
            total_cost,
            temperature: 0.0,
            rlim: arch.width().max(arch.height()) as f64,
            rng,
            movable,
            clb_cols,
            clb_col_sites,
            io_sites,
            mem_sites,
            mult_sites,
            moves_per_temp,
            moves_this_temp: 0,
            accepted_this_temp: 0,
            last_acceptance: 1.0,
            moves_total: 0,
            outer_iters: 0,
            done: false,
            net_stamp: vec![0; netlist.nets().len()],
            stamp: 0,
            touched: Vec::new(),
        };

        annealer.temperature = annealer.calibrate_initial_temperature();
        if annealer.movable.is_empty() || netlist.nets().is_empty() {
            annealer.done = true;
        }
        Ok(annealer)
    }

    /// VPR-style warm-up: propose one move per movable block, accept all,
    /// and set `T0 = 20 · stddev(ΔC)`.
    fn calibrate_initial_temperature(&mut self) -> f64 {
        let n = self.movable.len();
        if n == 0 {
            return 1.0;
        }
        let mut deltas = Vec::with_capacity(n);
        for i in 0..n {
            let block = self.movable[i];
            if let Some((delta, site, old_site)) = self.propose(block) {
                deltas.push(delta);
                // Accept unconditionally during warm-up.
                let _ = (site, old_site);
            }
        }
        if deltas.is_empty() {
            return 1.0;
        }
        let mean: f64 = deltas.iter().sum::<f64>() / deltas.len() as f64;
        let var: f64 =
            deltas.iter().map(|d| (d - mean) * (d - mean)).sum::<f64>() / deltas.len() as f64;
        (20.0 * var.sqrt()).max(1e-3)
    }

    /// Proposes and applies a move of `block` to a random in-range site of
    /// its kind; returns `(delta_cost, new_site, old_site)`. The move is
    /// left applied — callers undo it to reject.
    fn propose(&mut self, block: BlockId) -> Option<(f64, SiteId, SiteId)> {
        let old_site = self.placement.site_of(block);
        let target = self.pick_target(block, old_site)?;
        if target == old_site {
            return None;
        }
        let evicted = self.placement.block_at(target);

        // Collect affected nets (dedup by stamp).
        self.stamp += 1;
        self.touched.clear();
        for &n in self.netlist.nets_of(block) {
            if self.net_stamp[n.index()] != self.stamp {
                self.net_stamp[n.index()] = self.stamp;
                self.touched.push(n);
            }
        }
        if let Some(e) = evicted {
            for &n in self.netlist.nets_of(e) {
                if self.net_stamp[n.index()] != self.stamp {
                    self.net_stamp[n.index()] = self.stamp;
                    self.touched.push(n);
                }
            }
        }

        let old_cost: f64 = self
            .touched
            .iter()
            .map(|&n| self.net_costs[n.index()] as f64)
            .sum();
        self.placement.displace(block, target);
        let mut new_cost = 0.0f64;
        for i in 0..self.touched.len() {
            let n = self.touched[i];
            let c = self.model.net_cost(
                self.arch,
                self.netlist,
                &self.placement,
                self.netlist.net(n),
            );
            self.net_costs[n.index()] = c;
            new_cost += c as f64;
        }
        self.total_cost += new_cost - old_cost;
        Some((new_cost - old_cost, target, old_site))
    }

    /// Undoes a move previously applied by [`Annealer::propose`].
    fn undo(&mut self, block: BlockId, old_site: SiteId) {
        self.placement.displace(block, old_site);
        let mut delta = 0.0f64;
        for i in 0..self.touched.len() {
            let n = self.touched[i];
            let old = self.net_costs[n.index()] as f64;
            let c = self.model.net_cost(
                self.arch,
                self.netlist,
                &self.placement,
                self.netlist.net(n),
            );
            self.net_costs[n.index()] = c;
            delta += c as f64 - old;
        }
        self.total_cost += delta;
    }

    /// Picks a random same-kind target site within the range limit.
    fn pick_target(&mut self, block: BlockId, old_site: SiteId) -> Option<SiteId> {
        let kind = required_site_kind(self.netlist.block(block).kind);
        let site = self.arch.site(old_site);
        let (cx, cy) = (site.x as f64, site.y as f64);
        let rlim = self.rlim.max(1.0);
        match kind {
            SiteKind::Clb => {
                let tx = (cx + self.rng.gen_range(-rlim..=rlim))
                    .clamp(0.0, (self.arch.width() - 1) as f64);
                let ty = (cy + self.rng.gen_range(-rlim..=rlim))
                    .clamp(0.0, (self.arch.height() - 1) as f64);
                // Nearest CLB column to tx.
                let col_idx = match self.clb_cols.binary_search(&(tx.round() as usize)) {
                    Ok(i) => i,
                    Err(i) => {
                        if i == 0 {
                            0
                        } else if i >= self.clb_cols.len() {
                            self.clb_cols.len() - 1
                        } else {
                            // pick the nearer neighbour
                            let lo = self.clb_cols[i - 1] as f64;
                            let hi = self.clb_cols[i] as f64;
                            if (tx - lo).abs() <= (hi - tx).abs() {
                                i - 1
                            } else {
                                i
                            }
                        }
                    }
                };
                let col = &self.clb_col_sites[col_idx];
                let row = (ty.round() as usize).clamp(
                    self.arch.site(col[0]).y,
                    self.arch.site(col[col.len() - 1]).y,
                ) - self.arch.site(col[0]).y;
                Some(col[row.min(col.len() - 1)])
            }
            SiteKind::Io => pick_in_range(&mut self.rng, self.arch, &self.io_sites, cx, cy, rlim),
            SiteKind::Memory => {
                pick_in_range(&mut self.rng, self.arch, &self.mem_sites, cx, cy, rlim)
            }
            SiteKind::Multiplier => {
                pick_in_range(&mut self.rng, self.arch, &self.mult_sites, cx, cy, rlim)
            }
        }
    }

    /// Runs up to `max_moves` annealing moves, crossing temperature
    /// boundaries as needed, and returns the current stats. Returns early
    /// when the schedule completes.
    pub fn step(&mut self, max_moves: u64) -> AnnealStats {
        let mut budget = max_moves;
        while budget > 0 && !self.done {
            let block = self.movable[self.rng.gen_range(0..self.movable.len())];
            self.moves_total += 1;
            self.moves_this_temp += 1;
            budget -= 1;
            if let Some((delta, _site, old_site)) = self.propose(block) {
                let accept =
                    delta <= 0.0 || self.rng.gen::<f64>() < (-delta / self.temperature).exp();
                if accept {
                    self.accepted_this_temp += 1;
                } else {
                    self.undo(block, old_site);
                }
            }
            if self.moves_this_temp >= self.moves_per_temp {
                self.end_of_temperature();
            }
        }
        self.stats()
    }

    /// Completes one temperature step: update acceptance, range limit,
    /// temperature, and the exit criterion.
    fn end_of_temperature(&mut self) {
        let acceptance = self.accepted_this_temp as f64 / self.moves_this_temp.max(1) as f64;
        self.last_acceptance = acceptance;
        self.moves_this_temp = 0;
        self.accepted_this_temp = 0;
        self.outer_iters += 1;

        // VPR range-limit update: aim for 44 % acceptance.
        let max_dim = self.arch.width().max(self.arch.height()) as f64;
        self.rlim = (self.rlim * (1.0 - 0.44 + acceptance)).clamp(1.0, max_dim);
        self.temperature *= self.options.alpha_t;

        // Refresh the exact cost to cancel accumulated float drift.
        self.total_cost = self.net_costs.iter().map(|&c| c as f64).sum();

        let exit_t =
            self.options.exit_t_factor * self.total_cost / self.netlist.nets().len().max(1) as f64;
        if self.temperature < exit_t || self.outer_iters >= self.options.max_outer_iters {
            self.done = true;
        }
    }

    /// Whether the annealing schedule has completed.
    pub fn is_done(&self) -> bool {
        self.done
    }

    /// Runs the schedule to completion.
    pub fn run(&mut self) {
        while !self.done {
            self.step(u64::from(u32::MAX));
        }
    }

    /// The placement in its current (possibly mid-anneal) state.
    pub fn placement(&self) -> &Placement {
        &self.placement
    }

    /// Consumes the annealer, returning the final placement.
    pub fn into_placement(self) -> Placement {
        self.placement
    }

    /// Current progress statistics.
    pub fn stats(&self) -> AnnealStats {
        AnnealStats {
            temperature: self.temperature,
            cost: self.total_cost,
            acceptance: self.last_acceptance,
            rlim: self.rlim,
            moves: self.moves_total,
            outer_iters: self.outer_iters,
        }
    }

    /// Current total cost under the configured cost model.
    pub fn cost(&self) -> f64 {
        self.total_cost
    }
}

/// Picks a random site from `pool` within Chebyshev distance `rlim` of
/// `(cx, cy)`; falls back to a uniform pick when the window is empty.
fn pick_in_range(
    rng: &mut StdRng,
    arch: &Arch,
    pool: &[SiteId],
    cx: f64,
    cy: f64,
    rlim: f64,
) -> Option<SiteId> {
    if pool.is_empty() {
        return None;
    }
    for _ in 0..8 {
        let cand = pool[rng.gen_range(0..pool.len())];
        let s = arch.site(cand);
        if (s.x as f64 - cx).abs() <= rlim && (s.y as f64 - cy).abs() <= rlim {
            return Some(cand);
        }
    }
    Some(pool[rng.gen_range(0..pool.len())])
}

/// Random legal initial placement: shuffle each kind's site list and assign
/// blocks in order.
fn random_initial_placement(
    arch: &Arch,
    netlist: &Netlist,
    rng: &mut StdRng,
) -> Result<Placement, PlaceError> {
    let mut pools: [Vec<SiteId>; 4] = [Vec::new(), Vec::new(), Vec::new(), Vec::new()];
    for s in arch.sites() {
        let k = match s.kind {
            SiteKind::Io => 0,
            SiteKind::Clb => 1,
            SiteKind::Memory => 2,
            SiteKind::Multiplier => 3,
        };
        pools[k].push(s.id);
    }
    for pool in &mut pools {
        for i in (1..pool.len()).rev() {
            let j = rng.gen_range(0..=i);
            pool.swap(i, j);
        }
    }
    let mut cursors = [0usize; 4];
    let kind_name = ["io", "clb", "memory", "multiplier"];
    let mut site_of = Vec::with_capacity(netlist.blocks().len());
    let mut demand = [0usize; 4];
    for b in netlist.blocks() {
        let k = match required_site_kind(b.kind) {
            SiteKind::Io => 0,
            SiteKind::Clb => 1,
            SiteKind::Memory => 2,
            SiteKind::Multiplier => 3,
        };
        demand[k] += 1;
        if cursors[k] >= pools[k].len() {
            return Err(PlaceError::InsufficientSites {
                kind: kind_name[k],
                needed: netlist
                    .blocks()
                    .iter()
                    .filter(|bb| required_site_kind(bb.kind) == required_site_kind(b.kind))
                    .count(),
                available: pools[k].len(),
            });
        }
        site_of.push(pools[k][cursors[k]]);
        cursors[k] += 1;
    }
    Ok(Placement::from_assignment(site_of, arch.sites().len()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::wirelength;
    use pop_netlist::{generate, presets};

    fn setup() -> (Arch, Netlist) {
        let netlist = generate(&presets::by_name("diffeq1").unwrap().scaled(0.02));
        let (c, i, m, x) = netlist.site_demand();
        let arch = Arch::auto_size(c, i, m, x, 12, 1.3).unwrap();
        (arch, netlist)
    }

    #[test]
    fn initial_placement_is_legal() {
        let (arch, netlist) = setup();
        let annealer = Annealer::new(&arch, &netlist, &PlaceOptions::default()).unwrap();
        annealer.placement().verify(&arch, &netlist).unwrap();
    }

    #[test]
    fn annealing_keeps_placement_legal_and_reduces_wirelength() {
        let (arch, netlist) = setup();
        let mut annealer = Annealer::new(&arch, &netlist, &PlaceOptions::default()).unwrap();
        let before = wirelength(&arch, &netlist, annealer.placement());
        annealer.run();
        annealer.placement().verify(&arch, &netlist).unwrap();
        let after = wirelength(&arch, &netlist, annealer.placement());
        assert!(
            after < before,
            "wirelength should improve: {before} -> {after}"
        );
    }

    #[test]
    fn deterministic_in_seed() {
        let (arch, netlist) = setup();
        let opts = PlaceOptions {
            seed: 99,
            ..Default::default()
        };
        let a = crate::place(&arch, &netlist, &opts).unwrap();
        let b = crate::place(&arch, &netlist, &opts).unwrap();
        assert_eq!(a, b);
        let c = crate::place(
            &arch,
            &netlist,
            &PlaceOptions {
                seed: 100,
                ..Default::default()
            },
        )
        .unwrap();
        assert_ne!(a, c);
    }

    #[test]
    fn stepping_reaches_completion() {
        let (arch, netlist) = setup();
        let mut annealer = Annealer::new(&arch, &netlist, &PlaceOptions::default()).unwrap();
        let mut steps = 0;
        while !annealer.is_done() {
            annealer.step(1000);
            annealer.placement().verify(&arch, &netlist).unwrap();
            steps += 1;
            assert!(steps < 100_000, "annealer failed to terminate");
        }
        assert!(annealer.stats().outer_iters > 0);
    }

    #[test]
    fn incremental_cost_matches_recomputation() {
        let (arch, netlist) = setup();
        let mut annealer = Annealer::new(&arch, &netlist, &PlaceOptions::default()).unwrap();
        annealer.step(2000);
        let tracked = annealer.cost();
        let fresh = annealer
            .model
            .total_cost(&arch, &netlist, annealer.placement()) as f64;
        let rel = (tracked - fresh).abs() / fresh.max(1.0);
        assert!(rel < 1e-3, "cost drift: tracked {tracked} vs fresh {fresh}");
    }

    #[test]
    fn exit_criterion_is_satisfied_at_completion() {
        let (arch, netlist) = setup();
        let opts = PlaceOptions::default();
        let mut annealer = Annealer::new(&arch, &netlist, &opts).unwrap();
        annealer.run();
        let stats = annealer.stats();
        let exit_t = opts.exit_t_factor * stats.cost / netlist.nets().len() as f64;
        assert!(
            stats.temperature < exit_t || stats.outer_iters >= opts.max_outer_iters,
            "temperature {} vs exit {} after {} iters",
            stats.temperature,
            exit_t,
            stats.outer_iters
        );
    }

    #[test]
    fn faster_cooling_means_fewer_outer_iterations() {
        let (arch, netlist) = setup();
        let run = |alpha: f64| {
            let mut a = Annealer::new(
                &arch,
                &netlist,
                &PlaceOptions {
                    alpha_t: alpha,
                    ..Default::default()
                },
            )
            .unwrap();
            a.run();
            a.stats().outer_iters
        };
        let fast = run(0.5);
        let slow = run(0.95);
        assert!(fast < slow, "alpha 0.5 ({fast}) vs 0.95 ({slow})");
    }

    #[test]
    fn netlist_without_nets_finishes_immediately() {
        let blocks = vec![pop_netlist::Block {
            id: BlockId(0),
            kind: pop_netlist::BlockKind::Clb { luts: 1, ffs: 0 },
            name: "c".into(),
        }];
        let netlist = Netlist::new("empty", blocks, vec![]).unwrap();
        let arch = Arch::builder().interior(4, 4).build().unwrap();
        let annealer = Annealer::new(&arch, &netlist, &PlaceOptions::default()).unwrap();
        assert!(annealer.is_done());
    }

    #[test]
    fn insufficient_sites_is_reported() {
        let netlist = generate(&presets::by_name("ode").unwrap().scaled(0.2));
        let arch = Arch::builder().interior(4, 4).build().unwrap();
        match Annealer::new(&arch, &netlist, &PlaceOptions::default()) {
            Err(PlaceError::InsufficientSites { .. }) => {}
            other => panic!("expected InsufficientSites, got {other:?}"),
        }
    }

    #[test]
    fn different_algorithms_differ() {
        let (arch, netlist) = setup();
        let bb = crate::place(
            &arch,
            &netlist,
            &PlaceOptions {
                algorithm: crate::PlaceAlgorithm::BoundingBox,
                ..Default::default()
            },
        )
        .unwrap();
        let pt = crate::place(
            &arch,
            &netlist,
            &PlaceOptions {
                algorithm: crate::PlaceAlgorithm::PathTiming,
                ..Default::default()
            },
        )
        .unwrap();
        assert_ne!(bb, pt);
    }
}
