use crate::cost::CostModel;
use crate::error::PlaceError;
use crate::kernel::{random_initial_placement, MoveKernel, SitePools};
use crate::options::PlaceOptions;
use crate::placement::{required_site_kind, Placement};
use pop_arch::Arch;
use pop_netlist::{BlockId, Netlist};
use pop_obs::{Counter, Gauge, Histogram};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;
use std::time::Instant;

/// Handles onto the global registry's annealer telemetry, resolved once
/// per annealer so the per-temperature record path never takes the
/// registration lock. Shared by the sequential and region-parallel
/// annealers ([`crate::ParallelAnnealer`] runs one [`Annealer`] per
/// region, so region temperatures land in the same series).
#[derive(Debug)]
pub(crate) struct AnnealTelemetry {
    /// Per-temperature acceptance ratio, recorded in percent.
    acceptance_pct: Arc<Histogram>,
    /// Per-temperature wall time.
    temp_us: Arc<Histogram>,
    /// Cost after the most recent completed temperature.
    cost: Arc<Gauge>,
    /// Temperature after the most recent completed step.
    temperature: Arc<Gauge>,
    proposed: Arc<Counter>,
    accepted: Arc<Counter>,
    temps: Arc<Counter>,
}

impl AnnealTelemetry {
    pub(crate) fn register() -> AnnealTelemetry {
        let registry = pop_obs::global();
        AnnealTelemetry {
            acceptance_pct: registry.histogram("place.acceptance_pct"),
            temp_us: registry.histogram("place.temp_us"),
            cost: registry.gauge("place.cost"),
            temperature: registry.gauge("place.temperature"),
            proposed: registry.counter("place.moves.proposed"),
            accepted: registry.counter("place.moves.accepted"),
            temps: registry.counter("place.temperatures"),
        }
    }
}

/// Progress snapshot of an annealing run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AnnealStats {
    /// Current temperature.
    pub temperature: f64,
    /// Current total cost.
    pub cost: f64,
    /// Acceptance ratio of the last completed temperature step.
    pub acceptance: f64,
    /// Current move range limit in tiles.
    pub rlim: f64,
    /// Total proposed moves so far.
    pub moves: u64,
    /// Completed temperature (outer) iterations.
    pub outer_iters: usize,
}

/// Simulated-annealing placer with a stepping interface.
///
/// [`Annealer::run`] reproduces VPR's behaviour; [`Annealer::step`] advances
/// by a bounded number of moves so callers can observe (and, in the paper's
/// §5.4 application, *forecast congestion for*) the evolving placement.
/// The move mechanics live in the crate-internal move kernel, which the
/// region-parallel [`ParallelAnnealer`](crate::ParallelAnnealer) shares.
///
/// # Example
///
/// ```
/// use pop_arch::Arch;
/// use pop_netlist::{presets, generate};
/// use pop_place::{Annealer, PlaceOptions};
///
/// let netlist = generate(&presets::by_name("diffeq1").unwrap().scaled(0.02));
/// let (c, i, m, x) = netlist.site_demand();
/// let arch = Arch::auto_size(c, i, m, x, 12, 1.3)?;
/// let mut annealer = Annealer::new(&arch, &netlist, &PlaceOptions::default())?;
/// while !annealer.is_done() {
///     annealer.step(500); // forecast on annealer.placement() here
/// }
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug)]
pub struct Annealer<'a> {
    arch: &'a Arch,
    netlist: &'a Netlist,
    options: PlaceOptions,
    kernel: MoveKernel<'a>,
    pools: SitePools,
    temperature: f64,
    rlim: f64,
    rng: StdRng,
    movable: Vec<BlockId>,
    moves_per_temp: u64,
    moves_this_temp: u64,
    accepted_this_temp: u64,
    last_acceptance: f64,
    moves_total: u64,
    outer_iters: usize,
    done: bool,
    telemetry: AnnealTelemetry,
    temp_started: Instant,
}

impl<'a> Annealer<'a> {
    /// Creates an annealer with a random initial placement and a calibrated
    /// starting temperature (20 × the standard deviation of move costs, as
    /// in VPR). Deterministic in `options.seed`.
    ///
    /// # Errors
    ///
    /// Returns [`PlaceError::InsufficientSites`] when a block kind outnumbers
    /// its sites.
    pub fn new(
        arch: &'a Arch,
        netlist: &'a Netlist,
        options: &PlaceOptions,
    ) -> Result<Self, PlaceError> {
        let options = options.sanitized();
        let mut rng = StdRng::seed_from_u64(options.seed.wrapping_mul(0x5851_f42d_4c95_7f2d));
        let placement = random_initial_placement(arch, netlist, &mut rng)?;

        let model = CostModel::new(options.algorithm);
        let kernel = MoveKernel::new(arch, netlist, model, placement);
        let pools = SitePools::whole_fabric(arch);

        // Movable blocks: kinds with more than one candidate site.
        let site_count = |k| arch.capacity(k);
        let movable: Vec<BlockId> = netlist
            .blocks()
            .iter()
            .filter(|b| site_count(required_site_kind(b.kind)) > 1)
            .map(|b| b.id)
            .collect();

        let n = netlist.blocks().len() as f64;
        let moves_per_temp = ((options.inner_num * n.powf(4.0 / 3.0)).ceil() as u64).max(16);

        let mut annealer = Annealer {
            arch,
            netlist,
            options,
            kernel,
            pools,
            temperature: 0.0,
            rlim: arch.width().max(arch.height()) as f64,
            rng,
            movable,
            moves_per_temp,
            moves_this_temp: 0,
            accepted_this_temp: 0,
            last_acceptance: 1.0,
            moves_total: 0,
            outer_iters: 0,
            done: false,
            telemetry: AnnealTelemetry::register(),
            temp_started: Instant::now(),
        };

        annealer.temperature = annealer.calibrate_initial_temperature();
        if annealer.movable.is_empty() || netlist.nets().is_empty() {
            annealer.done = true;
        }
        Ok(annealer)
    }

    /// VPR-style warm-up: propose one move per movable block, accept all,
    /// and set `T0 = 20 · stddev(ΔC)`.
    fn calibrate_initial_temperature(&mut self) -> f64 {
        let rlim = self.rlim;
        let n = self.movable.len();
        if n == 0 {
            return 1.0;
        }
        let mut deltas = Vec::with_capacity(n);
        for i in 0..n {
            let block = self.movable[i];
            if let Some((delta, site, old_site)) =
                self.kernel.propose(&mut self.rng, &self.pools, block, rlim)
            {
                deltas.push(delta);
                // Accept unconditionally during warm-up.
                let _ = (site, old_site);
            }
        }
        if deltas.is_empty() {
            return 1.0;
        }
        let mean: f64 = deltas.iter().sum::<f64>() / deltas.len() as f64;
        let var: f64 =
            deltas.iter().map(|d| (d - mean) * (d - mean)).sum::<f64>() / deltas.len() as f64;
        (20.0 * var.sqrt()).max(1e-3)
    }

    /// Runs up to `max_moves` annealing moves, crossing temperature
    /// boundaries as needed, and returns the current stats. Returns early
    /// when the schedule completes.
    pub fn step(&mut self, max_moves: u64) -> AnnealStats {
        let mut budget = max_moves;
        while budget > 0 && !self.done {
            let block = self.movable[self.rng.gen_range(0..self.movable.len())];
            self.moves_total += 1;
            self.moves_this_temp += 1;
            budget -= 1;
            if let Some((delta, _site, old_site)) =
                self.kernel
                    .propose(&mut self.rng, &self.pools, block, self.rlim)
            {
                let accept =
                    delta <= 0.0 || self.rng.gen::<f64>() < (-delta / self.temperature).exp();
                if accept {
                    self.accepted_this_temp += 1;
                } else {
                    self.kernel.undo(block, old_site);
                }
            }
            if self.moves_this_temp >= self.moves_per_temp {
                self.end_of_temperature();
            }
        }
        self.stats()
    }

    /// Completes one temperature step: update acceptance, range limit,
    /// temperature, and the exit criterion; records the step's telemetry
    /// (acceptance, cost trajectory, per-temperature wall time) into the
    /// global registry.
    fn end_of_temperature(&mut self) {
        let acceptance = self.accepted_this_temp as f64 / self.moves_this_temp.max(1) as f64;
        self.telemetry
            .acceptance_pct
            .record((acceptance * 100.0).round() as u64);
        self.telemetry
            .temp_us
            .record_duration(self.temp_started.elapsed());
        self.telemetry.proposed.add(self.moves_this_temp);
        self.telemetry.accepted.add(self.accepted_this_temp);
        self.telemetry.temps.inc();
        self.temp_started = Instant::now();

        self.last_acceptance = acceptance;
        self.moves_this_temp = 0;
        self.accepted_this_temp = 0;
        self.outer_iters += 1;

        // VPR range-limit update: aim for 44 % acceptance.
        let max_dim = self.arch.width().max(self.arch.height()) as f64;
        self.rlim = (self.rlim * (1.0 - 0.44 + acceptance)).clamp(1.0, max_dim);
        self.temperature *= self.options.alpha_t;

        // Refresh the exact cost to cancel accumulated float drift.
        self.kernel.refresh_costs();
        self.telemetry.cost.set(self.kernel.total_cost());
        self.telemetry.temperature.set(self.temperature);

        let exit_t = self.options.exit_t_factor * self.kernel.total_cost()
            / self.netlist.nets().len().max(1) as f64;
        if self.temperature < exit_t || self.outer_iters >= self.options.max_outer_iters {
            self.done = true;
        }
    }

    /// Whether the annealing schedule has completed.
    pub fn is_done(&self) -> bool {
        self.done
    }

    /// Runs the schedule to completion.
    pub fn run(&mut self) {
        while !self.done {
            self.step(u64::from(u32::MAX));
        }
    }

    /// The placement in its current (possibly mid-anneal) state.
    pub fn placement(&self) -> &Placement {
        self.kernel.placement()
    }

    /// Consumes the annealer, returning the final placement.
    pub fn into_placement(self) -> Placement {
        self.kernel.into_placement()
    }

    /// Current progress statistics.
    pub fn stats(&self) -> AnnealStats {
        AnnealStats {
            temperature: self.temperature,
            cost: self.kernel.total_cost(),
            acceptance: self.last_acceptance,
            rlim: self.rlim,
            moves: self.moves_total,
            outer_iters: self.outer_iters,
        }
    }

    /// Current total cost under the configured cost model.
    pub fn cost(&self) -> f64 {
        self.kernel.total_cost()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::wirelength;
    use pop_netlist::{generate, presets};

    fn setup() -> (Arch, Netlist) {
        let netlist = generate(&presets::by_name("diffeq1").unwrap().scaled(0.02));
        let (c, i, m, x) = netlist.site_demand();
        let arch = Arch::auto_size(c, i, m, x, 12, 1.3).unwrap();
        (arch, netlist)
    }

    #[test]
    fn initial_placement_is_legal() {
        let (arch, netlist) = setup();
        let annealer = Annealer::new(&arch, &netlist, &PlaceOptions::default()).unwrap();
        annealer.placement().verify(&arch, &netlist).unwrap();
    }

    #[test]
    fn annealing_keeps_placement_legal_and_reduces_wirelength() {
        let (arch, netlist) = setup();
        let mut annealer = Annealer::new(&arch, &netlist, &PlaceOptions::default()).unwrap();
        let before = wirelength(&arch, &netlist, annealer.placement());
        annealer.run();
        annealer.placement().verify(&arch, &netlist).unwrap();
        let after = wirelength(&arch, &netlist, annealer.placement());
        assert!(
            after < before,
            "wirelength should improve: {before} -> {after}"
        );
    }

    #[test]
    fn deterministic_in_seed() {
        let (arch, netlist) = setup();
        let opts = PlaceOptions {
            seed: 99,
            ..Default::default()
        };
        let a = crate::place(&arch, &netlist, &opts).unwrap();
        let b = crate::place(&arch, &netlist, &opts).unwrap();
        assert_eq!(a, b);
        let c = crate::place(
            &arch,
            &netlist,
            &PlaceOptions {
                seed: 100,
                ..Default::default()
            },
        )
        .unwrap();
        assert_ne!(a, c);
    }

    #[test]
    fn stepping_reaches_completion() {
        let (arch, netlist) = setup();
        let mut annealer = Annealer::new(&arch, &netlist, &PlaceOptions::default()).unwrap();
        let mut steps = 0;
        while !annealer.is_done() {
            annealer.step(1000);
            annealer.placement().verify(&arch, &netlist).unwrap();
            steps += 1;
            assert!(steps < 100_000, "annealer failed to terminate");
        }
        assert!(annealer.stats().outer_iters > 0);
    }

    #[test]
    fn incremental_cost_matches_recomputation() {
        let (arch, netlist) = setup();
        let mut annealer = Annealer::new(&arch, &netlist, &PlaceOptions::default()).unwrap();
        annealer.step(2000);
        let tracked = annealer.cost();
        let fresh = annealer
            .kernel
            .model()
            .total_cost(&arch, &netlist, annealer.placement()) as f64;
        let rel = (tracked - fresh).abs() / fresh.max(1.0);
        assert!(rel < 1e-3, "cost drift: tracked {tracked} vs fresh {fresh}");
    }

    #[test]
    fn exit_criterion_is_satisfied_at_completion() {
        let (arch, netlist) = setup();
        let opts = PlaceOptions::default();
        let mut annealer = Annealer::new(&arch, &netlist, &opts).unwrap();
        annealer.run();
        let stats = annealer.stats();
        let exit_t = opts.exit_t_factor * stats.cost / netlist.nets().len() as f64;
        assert!(
            stats.temperature < exit_t || stats.outer_iters >= opts.max_outer_iters,
            "temperature {} vs exit {} after {} iters",
            stats.temperature,
            exit_t,
            stats.outer_iters
        );
    }

    #[test]
    fn faster_cooling_means_fewer_outer_iterations() {
        let (arch, netlist) = setup();
        let run = |alpha: f64| {
            let mut a = Annealer::new(
                &arch,
                &netlist,
                &PlaceOptions {
                    alpha_t: alpha,
                    ..Default::default()
                },
            )
            .unwrap();
            a.run();
            a.stats().outer_iters
        };
        let fast = run(0.5);
        let slow = run(0.95);
        assert!(fast < slow, "alpha 0.5 ({fast}) vs 0.95 ({slow})");
    }

    #[test]
    fn annealing_records_per_temperature_telemetry() {
        let (arch, netlist) = setup();
        let before = pop_obs::global().snapshot();
        let mut annealer = Annealer::new(&arch, &netlist, &PlaceOptions::default()).unwrap();
        annealer.run();
        let outer = annealer.stats().outer_iters as u64;
        assert!(outer > 0);
        let after = pop_obs::global().snapshot();
        // The registry is global and other tests also anneal: assert deltas.
        let delta =
            |name: &str| after.counter(name).unwrap_or(0) - before.counter(name).unwrap_or(0);
        assert!(delta("place.temperatures") >= outer);
        assert!(delta("place.moves.proposed") >= delta("place.moves.accepted"));
        assert!(delta("place.moves.proposed") > 0);
        let acc = after.histogram("place.acceptance_pct").unwrap();
        assert!(acc.count >= outer);
        assert!(acc.max <= 100, "acceptance is a percentage");
        assert!(after.gauge("place.cost").unwrap() > 0.0);
    }

    #[test]
    fn netlist_without_nets_finishes_immediately() {
        let blocks = vec![pop_netlist::Block {
            id: BlockId(0),
            kind: pop_netlist::BlockKind::Clb { luts: 1, ffs: 0 },
            name: "c".into(),
        }];
        let netlist = Netlist::new("empty", blocks, vec![]).unwrap();
        let arch = Arch::builder().interior(4, 4).build().unwrap();
        let annealer = Annealer::new(&arch, &netlist, &PlaceOptions::default()).unwrap();
        assert!(annealer.is_done());
    }

    #[test]
    fn insufficient_sites_is_reported() {
        let netlist = generate(&presets::by_name("ode").unwrap().scaled(0.2));
        let arch = Arch::builder().interior(4, 4).build().unwrap();
        match Annealer::new(&arch, &netlist, &PlaceOptions::default()) {
            Err(PlaceError::InsufficientSites { .. }) => {}
            other => panic!("expected InsufficientSites, got {other:?}"),
        }
    }

    #[test]
    fn different_algorithms_differ() {
        let (arch, netlist) = setup();
        let bb = crate::place(
            &arch,
            &netlist,
            &PlaceOptions {
                algorithm: crate::PlaceAlgorithm::BoundingBox,
                ..Default::default()
            },
        )
        .unwrap();
        let pt = crate::place(
            &arch,
            &netlist,
            &PlaceOptions {
                algorithm: crate::PlaceAlgorithm::PathTiming,
                ..Default::default()
            },
        )
        .unwrap();
        assert_ne!(bb, pt);
    }
}
