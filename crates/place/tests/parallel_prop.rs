//! Property tests for the region-parallel annealer: across seeds, region
//! counts and thread counts, parallel placements stay legal, land within a
//! cost tolerance of the sequential annealer, and are a pure function of
//! `(seed, regions)` — bitwise thread-count invariant.

use pop_arch::Arch;
use pop_netlist::{generate, presets, Netlist};
use pop_place::{place, CostModel, PlaceAlgorithm, PlaceOptions, PlaceStrategy};
use proptest::prelude::*;

fn fabric(design: &str, scale: f64) -> (Arch, Netlist) {
    let netlist = generate(&presets::by_name(design).unwrap().scaled(scale));
    let (c, i, m, x) = netlist.site_demand();
    let arch = Arch::auto_size(c, i, m, x, 12, 1.3).unwrap();
    (arch, netlist)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// For arbitrary seeds and region/thread counts the parallel annealer
    /// must produce a *legal* placement whose final bounding-box cost is
    /// within tolerance of the sequential annealer at the same seed, and
    /// the result must not depend on the thread count.
    #[test]
    fn parallel_is_legal_cost_bounded_and_thread_invariant(
        seed in 0u64..1000,
        regions in 2usize..5,
        threads in 1usize..5,
        design in 0usize..2,
    ) {
        let (arch, netlist) = fabric(["diffeq1", "diffeq2"][design], 0.25);
        let sequential = place(
            &arch,
            &netlist,
            &PlaceOptions { seed, ..PlaceOptions::default() },
        )
        .unwrap();
        let popts = |threads| PlaceOptions {
            seed,
            strategy: PlaceStrategy::ParallelRegions { regions, threads },
            ..PlaceOptions::default()
        };
        let parallel = place(&arch, &netlist, &popts(threads)).unwrap();
        parallel.verify(&arch, &netlist).unwrap();

        // Cost tolerance: on these small proptest fabrics the annealers'
        // own seed-to-seed noise is a few percent, so the bound is looser
        // than the 2% bench criterion (which averages over seeds on a
        // 0.5-scale design — see benches/pipeline_gen.rs).
        let model = CostModel::new(PlaceAlgorithm::BoundingBox);
        let seq_cost = model.total_cost(&arch, &netlist, &sequential) as f64;
        let par_cost = model.total_cost(&arch, &netlist, &parallel) as f64;
        prop_assert!(
            par_cost <= seq_cost * 1.15,
            "parallel cost {par_cost:.0} vs sequential {seq_cost:.0} (seed {seed}, k {regions})"
        );

        // Thread-count invariance: the same (seed, regions) on a different
        // thread count is bitwise-identical.
        let other_threads = if threads == 1 { 4 } else { 1 };
        let again = place(&arch, &netlist, &popts(other_threads)).unwrap();
        prop_assert_eq!(&parallel, &again);
    }
}

/// Determinism pinned exactly: same `(seed, threads)` twice is bitwise
/// identical; and so is the same seed at a *different* thread count.
#[test]
fn same_seed_same_threads_is_bitwise_identical() {
    let (arch, netlist) = fabric("diffeq1", 0.2);
    let opts = PlaceOptions {
        seed: 2026,
        strategy: PlaceStrategy::ParallelRegions {
            regions: 4,
            threads: 4,
        },
        ..PlaceOptions::default()
    };
    let a = place(&arch, &netlist, &opts).unwrap();
    let b = place(&arch, &netlist, &opts).unwrap();
    assert_eq!(a, b, "same (seed, threads) must be bitwise identical");
}
