//! Serving telemetry: lock-free counters plus a latency histogram the
//! engine updates on the hot path, snapshotted on demand.
//!
//! Latencies feed a per-engine [`pop_obs::Histogram`] (each engine owns
//! its series — two engines in one process must not pollute each other's
//! percentiles), so snapshots report true p50/p99 rather than the
//! mean/max-only view the first serving milestone shipped with.

use pop_obs::Histogram;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Per-model telemetry: request counters plus a latency histogram, one
/// series per served model label (the HTTP front end labels each engine
/// with its registry name, quantized engines with `<name>/quant` — the
/// same split PR-7 gave the aggregate quantized percentiles).
///
/// Handles are `Arc`s handed to workers once at startup; the record path
/// is the same lock-free increment the aggregate series uses.
#[derive(Debug, Default)]
pub struct ModelSeries {
    completed: AtomicU64,
    failed: AtomicU64,
    latency_us: Histogram,
}

impl ModelSeries {
    pub(crate) fn record(&self, ok: bool, latency_us: u64) {
        if ok {
            self.completed.fetch_add(1, Ordering::Relaxed);
        } else {
            self.failed.fetch_add(1, Ordering::Relaxed);
        }
        self.latency_us.record(latency_us);
    }
}

/// Aggregate counters shared by the queue, workers and clients. All fields
/// are monotone; readers take a [`StatsSnapshot`].
#[derive(Debug, Default)]
pub struct ServeStats {
    /// Requests accepted into the queue.
    pub(crate) submitted: AtomicU64,
    /// Requests rejected with [`QueueFull`](crate::ServeError::QueueFull).
    pub(crate) rejected: AtomicU64,
    /// Requests completed successfully.
    pub(crate) completed: AtomicU64,
    /// Requests that failed inside a worker.
    pub(crate) failed: AtomicU64,
    /// Forward passes executed.
    pub(crate) batches: AtomicU64,
    /// Requests served across all forward passes (`Σ` batch sizes).
    pub(crate) batched_requests: AtomicU64,
    /// Largest batch observed.
    pub(crate) max_batch: AtomicU64,
    /// Total enqueue→response latency, microseconds.
    pub(crate) latency_us_total: AtomicU64,
    /// Worst single-request latency, microseconds.
    pub(crate) latency_us_max: AtomicU64,
    /// Total time spent inside generator forward passes, microseconds.
    pub(crate) forward_us_total: AtomicU64,
    /// Per-request latency distribution (microseconds) — the percentile
    /// source. Recording is one atomic increment; see [`pop_obs`].
    pub(crate) latency_us: Histogram,
    /// Latencies of requests answered by quantized (i8) replicas — a
    /// separate series so a mixed fleet can compare the two replica kinds
    /// from one snapshot.
    pub(crate) quant_latency_us: Histogram,
    /// Requests answered by quantized replicas.
    pub(crate) quant_completed: AtomicU64,
    /// Per-model series keyed by engine label (see [`ModelSeries`]).
    /// Registration takes the mutex once per engine startup; workers hold
    /// the returned `Arc` so the hot path never re-locks.
    per_model: Mutex<BTreeMap<String, Arc<ModelSeries>>>,
}

impl ServeStats {
    /// The per-model series for `label`, registering it on first use.
    /// Engines with a [`model_label`](crate::EngineConfig::model_label)
    /// resolve their series once at worker startup.
    pub fn model_series(&self, label: &str) -> Arc<ModelSeries> {
        // Poisoning cannot corrupt the map (insertion is atomic from the
        // map's point of view), so recover instead of propagating.
        // lint: allow(blocking) — one registration per engine startup,
        // before the serve loop; never on the per-batch path.
        let mut map = self.per_model.lock().unwrap_or_else(|e| e.into_inner());
        Arc::clone(map.entry(label.to_string()).or_default())
    }
    pub(crate) fn record_batch(&self, batch_size: usize, forward_us: u64) {
        self.batches.fetch_add(1, Ordering::Relaxed);
        self.batched_requests
            .fetch_add(batch_size as u64, Ordering::Relaxed);
        self.max_batch
            .fetch_max(batch_size as u64, Ordering::Relaxed);
        self.forward_us_total
            .fetch_add(forward_us, Ordering::Relaxed);
    }

    pub(crate) fn record_request_done(&self, ok: bool, latency_us: u64, quantized: bool) {
        if ok {
            self.completed.fetch_add(1, Ordering::Relaxed);
        } else {
            self.failed.fetch_add(1, Ordering::Relaxed);
        }
        self.latency_us_total
            .fetch_add(latency_us, Ordering::Relaxed);
        self.latency_us_max.fetch_max(latency_us, Ordering::Relaxed);
        self.latency_us.record(latency_us);
        if quantized {
            self.quant_completed.fetch_add(1, Ordering::Relaxed);
            self.quant_latency_us.record(latency_us);
        }
    }

    /// A consistent-enough point-in-time copy of the counters.
    pub fn snapshot(&self) -> StatsSnapshot {
        let completed = self.completed.load(Ordering::Relaxed);
        let failed = self.failed.load(Ordering::Relaxed);
        let batches = self.batches.load(Ordering::Relaxed);
        let batched_requests = self.batched_requests.load(Ordering::Relaxed);
        let done = completed + failed;
        let latency = self.latency_us.snapshot();
        let quant_latency = self.quant_latency_us.snapshot();
        let per_model: Vec<ModelStatsSnapshot> = {
            let map = self.per_model.lock().unwrap_or_else(|e| e.into_inner());
            map.iter()
                .map(|(name, s)| {
                    let h = s.latency_us.snapshot();
                    ModelStatsSnapshot {
                        model: name.clone(),
                        completed: s.completed.load(Ordering::Relaxed),
                        failed: s.failed.load(Ordering::Relaxed),
                        mean_latency_us: if h.count == 0 {
                            0.0
                        } else {
                            h.sum as f64 / h.count as f64
                        },
                        p50_latency_us: h.percentile(0.50),
                        p99_latency_us: h.percentile(0.99),
                    }
                })
                .collect()
        };
        StatsSnapshot {
            submitted: self.submitted.load(Ordering::Relaxed),
            rejected: self.rejected.load(Ordering::Relaxed),
            completed,
            failed,
            batches,
            max_batch: self.max_batch.load(Ordering::Relaxed),
            mean_batch_occupancy: if batches == 0 {
                0.0
            } else {
                batched_requests as f64 / batches as f64
            },
            mean_latency_us: if done == 0 {
                0.0
            } else {
                self.latency_us_total.load(Ordering::Relaxed) as f64 / done as f64
            },
            p50_latency_us: latency.percentile(0.50),
            p99_latency_us: latency.percentile(0.99),
            max_latency_us: self.latency_us_max.load(Ordering::Relaxed),
            forward_us_total: self.forward_us_total.load(Ordering::Relaxed),
            quant_completed: self.quant_completed.load(Ordering::Relaxed),
            p50_quant_latency_us: quant_latency.percentile(0.50),
            p99_quant_latency_us: quant_latency.percentile(0.99),
            per_model,
        }
    }
}

/// Point-in-time view of one model's [`ModelSeries`].
#[derive(Debug, Clone, PartialEq)]
pub struct ModelStatsSnapshot {
    /// The engine label (`<name>` for f32, `<name>/quant` for i8 replicas).
    pub model: String,
    /// Requests this model answered successfully.
    pub completed: u64,
    /// Requests this model answered with an error.
    pub failed: u64,
    /// Mean enqueue→response latency, microseconds.
    pub mean_latency_us: f64,
    /// Median latency, microseconds (histogram bucket upper bound).
    pub p50_latency_us: u64,
    /// 99th-percentile latency, microseconds (same convention).
    pub p99_latency_us: u64,
}

/// Point-in-time view of [`ServeStats`].
#[derive(Debug, Clone, PartialEq)]
pub struct StatsSnapshot {
    /// Requests accepted into the queue.
    pub submitted: u64,
    /// Requests bounced with `QueueFull`.
    pub rejected: u64,
    /// Requests answered successfully.
    pub completed: u64,
    /// Requests answered with an error.
    pub failed: u64,
    /// Forward passes executed.
    pub batches: u64,
    /// Largest coalesced batch.
    pub max_batch: u64,
    /// Mean requests per forward pass (the micro-batcher's figure of merit).
    pub mean_batch_occupancy: f64,
    /// Mean enqueue→response latency in microseconds.
    pub mean_latency_us: f64,
    /// Median enqueue→response latency in microseconds (histogram bucket
    /// upper bound: never understates, overstates ≤ 1/16 relative).
    pub p50_latency_us: u64,
    /// 99th-percentile enqueue→response latency in microseconds (same
    /// bucket-bound convention).
    pub p99_latency_us: u64,
    /// Worst-case single-request latency in microseconds.
    pub max_latency_us: u64,
    /// Cumulative time inside generator forwards, microseconds.
    pub forward_us_total: u64,
    /// Requests answered by quantized (i8) replicas.
    pub quant_completed: u64,
    /// Median latency of the quantized-path series, microseconds (zero
    /// while no quantized replica has answered).
    pub p50_quant_latency_us: u64,
    /// 99th-percentile latency of the quantized-path series, microseconds.
    pub p99_quant_latency_us: u64,
    /// Per-model request/latency breakdown, sorted by label. Empty unless
    /// at least one engine was started with a `model_label` (the HTTP
    /// front end labels every engine it owns).
    pub per_model: Vec<ModelStatsSnapshot>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_derives_means() {
        let s = ServeStats::default();
        s.submitted.store(10, Ordering::Relaxed);
        s.record_batch(4, 1000);
        s.record_batch(2, 500);
        for _ in 0..4 {
            s.record_request_done(true, 100, false);
        }
        s.record_request_done(false, 300, false);
        let snap = s.snapshot();
        assert_eq!(snap.submitted, 10);
        assert_eq!(snap.completed, 4);
        assert_eq!(snap.failed, 1);
        assert_eq!(snap.batches, 2);
        assert_eq!(snap.max_batch, 4);
        assert!((snap.mean_batch_occupancy - 3.0).abs() < 1e-9);
        assert!((snap.mean_latency_us - 140.0).abs() < 1e-9);
        assert_eq!(snap.max_latency_us, 300);
        assert_eq!(snap.forward_us_total, 1500);
    }

    #[test]
    fn empty_stats_have_zero_means() {
        let snap = ServeStats::default().snapshot();
        assert_eq!(snap.mean_batch_occupancy, 0.0);
        assert_eq!(snap.mean_latency_us, 0.0);
        assert_eq!(snap.p50_latency_us, 0);
        assert_eq!(snap.p99_latency_us, 0);
    }

    #[test]
    fn snapshot_reports_true_percentiles() {
        let s = ServeStats::default();
        // A long-tail distribution the old mean/max view hid: 98 fast
        // requests and two stragglers. The mean lands near 118 µs and max
        // at 1 ms — only the percentiles show the real service level.
        for _ in 0..98 {
            s.record_request_done(true, 100, false);
        }
        s.record_request_done(true, 1000, false);
        s.record_request_done(true, 1000, false);
        let snap = s.snapshot();
        assert!(
            (100..=107).contains(&snap.p50_latency_us),
            "p50 {} should bracket 100µs within one bucket",
            snap.p50_latency_us
        );
        assert!(
            (1000..=1063).contains(&snap.p99_latency_us),
            "p99 {} should bracket the 1ms straggler within one bucket",
            snap.p99_latency_us
        );
        assert_eq!(snap.max_latency_us, 1000);
        assert!(snap.p50_latency_us <= snap.p99_latency_us);
        assert!(snap.p99_latency_us <= snap.max_latency_us);
    }

    #[test]
    fn quantized_requests_feed_their_own_percentile_series() {
        let s = ServeStats::default();
        // f32 replicas answer slowly, the quantized replica fast — the
        // combined series must not hide the split.
        for _ in 0..10 {
            s.record_request_done(true, 2000, false);
        }
        for _ in 0..10 {
            s.record_request_done(true, 200, true);
        }
        let snap = s.snapshot();
        assert_eq!(snap.completed, 20);
        assert_eq!(snap.quant_completed, 10);
        assert!(
            (200..=213).contains(&snap.p50_quant_latency_us),
            "quantized p50 {} should bracket 200µs within one bucket",
            snap.p50_quant_latency_us
        );
        assert!(snap.p99_quant_latency_us < 2000);
        assert!(
            snap.p50_latency_us >= snap.p50_quant_latency_us,
            "combined series includes the slow f32 half"
        );
    }

    #[test]
    fn per_model_series_split_by_label_in_sorted_order() {
        let s = ServeStats::default();
        let base = s.model_series("base");
        let quant = s.model_series("base/quant");
        // Re-registration returns the same series, not a fresh one.
        assert!(Arc::ptr_eq(&base, &s.model_series("base")));
        for _ in 0..4 {
            base.record(true, 1000);
        }
        base.record(false, 3000);
        quant.record(true, 200);
        let snap = s.snapshot();
        assert_eq!(snap.per_model.len(), 2);
        let b = &snap.per_model[0];
        assert_eq!(b.model, "base");
        assert_eq!(b.completed, 4);
        assert_eq!(b.failed, 1);
        assert!((b.mean_latency_us - 1400.0).abs() < 1e-9);
        assert!(b.p50_latency_us >= 1000);
        let q = &snap.per_model[1];
        assert_eq!(q.model, "base/quant");
        assert_eq!(q.completed, 1);
        assert_eq!(q.failed, 0);
        assert!((200..=213).contains(&q.p50_latency_us));
    }

    #[test]
    fn per_model_is_empty_without_labeled_engines() {
        let s = ServeStats::default();
        s.record_request_done(true, 500, false);
        assert!(s.snapshot().per_model.is_empty());
    }

    #[test]
    fn quantized_series_is_zero_without_quantized_replicas() {
        let s = ServeStats::default();
        s.record_request_done(true, 500, false);
        let snap = s.snapshot();
        assert_eq!(snap.quant_completed, 0);
        assert_eq!(snap.p50_quant_latency_us, 0);
        assert_eq!(snap.p99_quant_latency_us, 0);
    }
}
