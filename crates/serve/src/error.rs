use std::error::Error;
use std::fmt;

/// Errors produced by the serving engine.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServeError {
    /// The bounded request queue is at capacity (backpressure signal of
    /// [`try_submit`](crate::ForecastClient::try_submit)).
    QueueFull,
    /// The engine is shutting down (or has shut down) and no longer accepts
    /// or can complete requests.
    ShuttingDown,
    /// The input tensor does not match the served model's expected shape.
    BadInput(String),
    /// The engine configuration is invalid (zero batch size, capacity or
    /// worker count).
    BadConfig(String),
    /// Model loading or inference failed.
    Model(String),
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::QueueFull => write!(f, "forecast queue is full"),
            ServeError::ShuttingDown => write!(f, "forecast engine is shutting down"),
            ServeError::BadInput(m) => write!(f, "bad forecast input: {m}"),
            ServeError::BadConfig(m) => write!(f, "bad engine config: {m}"),
            ServeError::Model(m) => write!(f, "forecast model failed: {m}"),
        }
    }
}

impl Error for ServeError {}

impl From<pop_core::CoreError> for ServeError {
    fn from(e: pop_core::CoreError) -> Self {
        ServeError::Model(e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants() {
        assert!(ServeError::QueueFull.to_string().contains("full"));
        assert!(ServeError::ShuttingDown
            .to_string()
            .contains("shutting down"));
        assert!(ServeError::BadInput("x".into()).to_string().contains("x"));
        assert!(ServeError::BadConfig("w".into()).to_string().contains("w"));
        assert!(ServeError::Model("y".into()).to_string().contains("y"));
    }

    #[test]
    fn core_errors_convert() {
        let e: ServeError = pop_core::CoreError::Pipeline("boom".into()).into();
        assert!(matches!(e, ServeError::Model(_)));
    }
}
