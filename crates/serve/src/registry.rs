//! The model registry: an LRU cache of loaded checkpoints, so one serving
//! process can answer forecasts for several trained models (the Table 2
//! flow trains one checkpoint per held-out design) without re-reading
//! weights from disk on every request.

use crate::error::ServeError;
use pop_core::{model_io, ExperimentConfig, QuantizedForecaster, SharedForecaster};
use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::sync::Mutex;

#[derive(Debug)]
struct Entry {
    model: SharedForecaster,
    /// Lazily-built i8 snapshot of `model` — the alternate replica kind.
    /// Built once per cache residency and evicted together with the entry.
    quant: Option<QuantizedForecaster>,
    last_used: u64,
}

#[derive(Debug, Default)]
struct RegistryInner {
    map: HashMap<PathBuf, Entry>,
    tick: u64,
    loads: u64,
    hits: u64,
}

/// A bounded, thread-safe cache of [`SharedForecaster`]s keyed by
/// checkpoint path.
///
/// [`ModelRegistry::get_or_load`] returns the cached model or loads it via
/// [`pop_core::model_io::load_checkpoint`]; when the cache exceeds its
/// capacity the least-recently-used checkpoint is evicted. Handed-out
/// [`SharedForecaster`]s are reference-counted, so eviction never
/// invalidates a model an engine is still serving.
#[derive(Debug)]
pub struct ModelRegistry {
    capacity: usize,
    inner: Mutex<RegistryInner>,
}

impl ModelRegistry {
    /// Creates a registry caching at most `capacity` loaded checkpoints.
    ///
    /// # Panics
    ///
    /// Panics when `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "registry capacity must be positive");
        ModelRegistry {
            capacity,
            inner: Mutex::new(RegistryInner::default()),
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, RegistryInner> {
        // A request-thread panic must not take the whole registry (and
        // with it every future request) down: the inner map is valid at
        // any panic point, so recover from poisoning.
        // lint: allow(blocking) — registry mutex guards a small map; the
        // worker only touches it for O(1) lookups, never while loading.
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Returns the model stored at `path`, loading (and caching) it on the
    /// first request. `config` must describe the checkpoint's architecture.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::Model`] when the checkpoint is missing,
    /// corrupt or of a mismatched architecture.
    pub fn get_or_load(
        &self,
        config: &ExperimentConfig,
        path: &Path,
    ) -> Result<SharedForecaster, ServeError> {
        let mut inner = self.lock();
        inner.tick += 1;
        let tick = inner.tick;
        if let Some(entry) = inner.map.get_mut(path) {
            entry.last_used = tick;
            let model = entry.model.clone();
            inner.hits += 1;
            return Ok(model);
        }
        // Miss: load while holding the lock so concurrent requests for the
        // same checkpoint do not stampede the disk. This serializes cold
        // loads behind one lock — acceptable while checkpoints are a few
        // MB (millisecond loads); switch to per-entry locks if they grow.
        let model = model_io::load_checkpoint(config, path)
            .map_err(|e| ServeError::Model(e.to_string()))?;
        let shared = SharedForecaster::new(model);
        inner.loads += 1;
        inner.map.insert(
            path.to_path_buf(),
            Entry {
                model: shared.clone(),
                quant: None,
                last_used: tick,
            },
        );
        Self::evict_lru(&mut inner, self.capacity);
        Ok(shared)
    }

    /// Returns the i8 snapshot of the checkpoint at `path` — the alternate
    /// replica kind — loading the f32 model first if needed and quantizing
    /// it once per cache residency (snapshots are immutable and cheap to
    /// clone, so repeated requests share the same weights).
    ///
    /// # Errors
    ///
    /// Propagates [`ModelRegistry::get_or_load`] failures.
    pub fn get_or_load_quantized(
        &self,
        config: &ExperimentConfig,
        path: &Path,
    ) -> Result<QuantizedForecaster, ServeError> {
        let model = self.get_or_load(config, path)?;
        let mut inner = self.lock();
        let entry = match inner.map.get_mut(path) {
            Some(entry) => entry,
            // Evicted between the two locks (capacity-1 race): quantize
            // the handed-out model without re-caching.
            None => return Ok(model.lock().quantized()),
        };
        let quant = entry
            .quant
            .get_or_insert_with(|| entry.model.lock().quantized());
        Ok(quant.clone())
    }

    /// Caches an already-built model under `path` (pre-warming, or serving
    /// a freshly trained model that was never written to disk).
    pub fn insert(&self, path: &Path, model: SharedForecaster) {
        let mut inner = self.lock();
        inner.tick += 1;
        let tick = inner.tick;
        inner.map.insert(
            path.to_path_buf(),
            Entry {
                model,
                quant: None,
                last_used: tick,
            },
        );
        Self::evict_lru(&mut inner, self.capacity);
    }

    fn evict_lru(inner: &mut RegistryInner, capacity: usize) {
        while inner.map.len() > capacity {
            let Some(lru) = inner
                .map
                .iter()
                .min_by_key(|(_, e)| e.last_used)
                .map(|(p, _)| p.clone())
            else {
                break; // len() > capacity ≥ 1 implies non-empty; stay safe anyway
            };
            inner.map.remove(&lru);
        }
    }

    /// Whether `path` is currently cached.
    pub fn contains(&self, path: &Path) -> bool {
        self.lock().map.contains_key(path)
    }

    /// Number of cached checkpoints.
    pub fn len(&self) -> usize {
        // lint: allow(blocking) — O(1) probe of the registry mutex.
        self.lock().map.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Checkpoints loaded from disk so far (cache misses).
    pub fn loads(&self) -> u64 {
        self.lock().loads
    }

    /// Requests answered from cache.
    pub fn hits(&self) -> u64 {
        self.lock().hits
    }

    /// The configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }
}
