//! The bounded MPMC request queue at the heart of the micro-batcher.
//!
//! Producers are [`ForecastClient`](crate::ForecastClient)s — `try_push`
//! bounces with [`ServeError::QueueFull`] (backpressure), `push` blocks for
//! space. Consumers are engine workers calling [`RequestQueue::pop_batch`],
//! which coalesces up to `max_batch` *shape-compatible* pending requests
//! into one batch, waiting up to `max_wait` past the first request for
//! stragglers so a lone request still sees bounded latency.

use crate::error::ServeError;
use pop_nn::Tensor;
use std::collections::VecDeque;
use std::sync::mpsc;
use std::sync::{Condvar, Mutex};
use std::time::{Duration, Instant};

/// One in-flight forecast request.
#[derive(Debug)]
pub(crate) struct Request {
    /// The `[1, C, H, W]` input features.
    pub input: Tensor,
    /// When the request entered the queue (latency accounting).
    pub enqueued: Instant,
    /// Where the worker sends the painted heat map.
    pub respond: mpsc::Sender<Result<Tensor, ServeError>>,
}

#[derive(Debug, Default)]
struct QueueState {
    deque: VecDeque<Request>,
    closed: bool,
}

/// Bounded multi-producer / multi-consumer queue with batch-coalescing pop.
#[derive(Debug)]
pub(crate) struct RequestQueue {
    capacity: usize,
    state: Mutex<QueueState>,
    not_empty: Condvar,
    not_full: Condvar,
}

impl RequestQueue {
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "queue capacity must be positive");
        RequestQueue {
            capacity,
            state: Mutex::new(QueueState::default()),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, QueueState> {
        self.state.lock().expect("queue mutex poisoned")
    }

    /// Non-blocking enqueue: the backpressure path.
    pub fn try_push(&self, req: Request) -> Result<(), ServeError> {
        let mut st = self.lock();
        if st.closed {
            return Err(ServeError::ShuttingDown);
        }
        if st.deque.len() >= self.capacity {
            return Err(ServeError::QueueFull);
        }
        st.deque.push_back(req);
        drop(st);
        self.not_empty.notify_one();
        Ok(())
    }

    /// Blocking enqueue: waits for queue space (or shutdown).
    pub fn push(&self, req: Request) -> Result<(), ServeError> {
        let mut st = self.lock();
        while !st.closed && st.deque.len() >= self.capacity {
            st = self.not_full.wait(st).expect("queue mutex poisoned");
        }
        if st.closed {
            return Err(ServeError::ShuttingDown);
        }
        st.deque.push_back(req);
        drop(st);
        self.not_empty.notify_one();
        Ok(())
    }

    /// Dequeues the next batch: the oldest request plus up to
    /// `max_batch - 1` further pending requests with the same input shape,
    /// waiting at most `max_wait` past the first pop for more to arrive.
    /// Requests with other shapes stay queued in order for a later batch.
    ///
    /// Returns `None` once the queue is closed *and* drained — the worker
    /// shutdown signal.
    pub fn pop_batch(&self, max_batch: usize, max_wait: Duration) -> Option<Vec<Request>> {
        let max_batch = max_batch.max(1);
        let mut st = self.lock();
        loop {
            if let Some(first) = st.deque.pop_front() {
                fn take_matching(
                    batch: &mut Vec<Request>,
                    st: &mut QueueState,
                    shape: [usize; 4],
                    max_batch: usize,
                ) {
                    let mut i = 0;
                    while batch.len() < max_batch && i < st.deque.len() {
                        if st.deque[i].input.shape() == shape {
                            // `remove` preserves FIFO order of the rest.
                            batch.push(st.deque.remove(i).expect("index in bounds"));
                        } else {
                            i += 1;
                        }
                    }
                }
                let shape = first.input.shape();
                let mut batch = vec![first];
                take_matching(&mut batch, &mut st, shape, max_batch);
                // Hold the pop open briefly for stragglers: bounded extra
                // latency for the first request, much higher occupancy
                // under concurrent load.
                if batch.len() < max_batch && !max_wait.is_zero() && !st.closed {
                    let deadline = Instant::now() + max_wait;
                    while batch.len() < max_batch && !st.closed {
                        let now = Instant::now();
                        let Some(left) = deadline.checked_duration_since(now) else {
                            break;
                        };
                        if left.is_zero() {
                            break;
                        }
                        let (next, timeout) = self
                            .not_empty
                            .wait_timeout(st, left)
                            .expect("queue mutex poisoned");
                        st = next;
                        take_matching(&mut batch, &mut st, shape, max_batch);
                        // A wakeup may have been for a shape this batch
                        // cannot take: pass the baton so an idle worker
                        // serves it instead of waiting out our deadline.
                        if !st.deque.is_empty() {
                            self.not_empty.notify_one();
                        }
                        if timeout.timed_out() {
                            break;
                        }
                    }
                }
                // Mismatched-shape requests may remain; their producers'
                // notifications were consumed above, so re-notify before
                // handing the batch to the model.
                let leftover = !st.deque.is_empty();
                drop(st);
                if leftover {
                    self.not_empty.notify_one();
                }
                // Freed capacity: wake blocked producers.
                self.not_full.notify_all();
                return Some(batch);
            }
            if st.closed {
                return None;
            }
            st = self.not_empty.wait(st).expect("queue mutex poisoned");
        }
    }

    /// Stops accepting new requests and wakes every waiter; queued requests
    /// remain poppable so workers drain gracefully.
    pub fn close(&self) {
        self.lock().closed = true;
        self.not_empty.notify_all();
        self.not_full.notify_all();
    }

    /// Current queue depth.
    pub fn len(&self) -> usize {
        self.lock().deque.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    fn req(shape: [usize; 4]) -> (Request, mpsc::Receiver<Result<Tensor, ServeError>>) {
        let (tx, rx) = mpsc::channel();
        (
            Request {
                input: Tensor::zeros(shape),
                enqueued: Instant::now(),
                respond: tx,
            },
            rx,
        )
    }

    #[test]
    fn try_push_bounces_when_saturated() {
        let q = RequestQueue::new(2);
        let (a, _ra) = req([1, 2, 4, 4]);
        let (b, _rb) = req([1, 2, 4, 4]);
        let (c, _rc) = req([1, 2, 4, 4]);
        q.try_push(a).unwrap();
        q.try_push(b).unwrap();
        assert_eq!(q.try_push(c).unwrap_err(), ServeError::QueueFull);
        assert_eq!(q.len(), 2);
        // Space frees after a pop.
        let batch = q.pop_batch(1, Duration::ZERO).unwrap();
        assert_eq!(batch.len(), 1);
        let (d, _rd) = req([1, 2, 4, 4]);
        q.try_push(d).unwrap();
    }

    #[test]
    fn pop_batch_coalesces_available_requests() {
        let q = RequestQueue::new(8);
        for _ in 0..5 {
            let (r, _rx) = req([1, 2, 4, 4]);
            q.try_push(r).unwrap();
        }
        let batch = q.pop_batch(4, Duration::ZERO).unwrap();
        assert_eq!(batch.len(), 4);
        let rest = q.pop_batch(4, Duration::ZERO).unwrap();
        assert_eq!(rest.len(), 1);
    }

    #[test]
    fn pop_batch_keeps_mismatched_shapes_for_later() {
        let q = RequestQueue::new(8);
        let (a, _ra) = req([1, 2, 4, 4]);
        let (b, _rb) = req([1, 2, 8, 8]);
        let (c, _rc) = req([1, 2, 4, 4]);
        q.try_push(a).unwrap();
        q.try_push(b).unwrap();
        q.try_push(c).unwrap();
        // First batch: the two 4x4 requests, coalesced around the front.
        let batch = q.pop_batch(4, Duration::ZERO).unwrap();
        assert_eq!(batch.len(), 2);
        assert!(batch.iter().all(|r| r.input.shape() == [1, 2, 4, 4]));
        // The 8x8 request is still queued, in order.
        let batch = q.pop_batch(4, Duration::ZERO).unwrap();
        assert_eq!(batch.len(), 1);
        assert_eq!(batch[0].input.shape(), [1, 2, 8, 8]);
    }

    #[test]
    fn pop_batch_waits_for_stragglers() {
        let q = Arc::new(RequestQueue::new(8));
        let (a, _ra) = req([1, 1, 4, 4]);
        q.try_push(a).unwrap();
        let producer = {
            let q = Arc::clone(&q);
            std::thread::spawn(move || {
                std::thread::sleep(Duration::from_millis(20));
                let (b, rx) = req([1, 1, 4, 4]);
                q.try_push(b).unwrap();
                rx
            })
        };
        // Generous window: the straggler lands well inside it.
        let batch = q.pop_batch(2, Duration::from_millis(2000)).unwrap();
        assert_eq!(batch.len(), 2);
        let _rx = producer.join().unwrap();
    }

    #[test]
    fn close_drains_then_signals_shutdown() {
        let q = RequestQueue::new(4);
        let (a, _ra) = req([1, 1, 4, 4]);
        q.try_push(a).unwrap();
        q.close();
        let (b, _rb) = req([1, 1, 4, 4]);
        assert_eq!(q.try_push(b).unwrap_err(), ServeError::ShuttingDown);
        // The queued request is still served...
        assert_eq!(q.pop_batch(4, Duration::ZERO).unwrap().len(), 1);
        // ...and only then do consumers see shutdown.
        assert!(q.pop_batch(4, Duration::ZERO).is_none());
    }

    #[test]
    fn blocking_push_waits_for_space() {
        let q = Arc::new(RequestQueue::new(1));
        let (a, _ra) = req([1, 1, 4, 4]);
        q.try_push(a).unwrap();
        let pusher = {
            let q = Arc::clone(&q);
            std::thread::spawn(move || {
                let (b, rx) = req([1, 1, 4, 4]);
                q.push(b).unwrap();
                rx
            })
        };
        std::thread::sleep(Duration::from_millis(20));
        // The pusher is blocked; free a slot and it completes.
        let _ = q.pop_batch(1, Duration::ZERO).unwrap();
        let _rx = pusher.join().unwrap();
        assert_eq!(q.len(), 1);
    }
}
