//! The bounded MPMC request queue at the heart of the micro-batcher.
//!
//! Since the concurrency substrate moved to `pop-exec`, this module is a
//! thin domain adapter: it pins the generic [`BoundedQueue`] to
//! [`Request`] items, maps [`PushError`] onto [`ServeError`]s, and keys
//! batch coalescing by input tensor shape so one popped batch can be
//! stacked into a single `[N, C, H, W]` forward pass.
//!
//! Producers are [`ForecastClient`](crate::ForecastClient)s — `try_push`
//! bounces with [`ServeError::QueueFull`] (backpressure), `push` blocks for
//! space. Consumers are engine workers calling [`RequestQueue::pop_batch`],
//! which coalesces up to `max_batch` *shape-compatible* pending requests
//! into one batch, waiting up to `max_wait` past the first request for
//! stragglers so a lone request still sees bounded latency.

use crate::error::ServeError;
use pop_exec::{BoundedQueue, PushError};
use pop_nn::Tensor;
use std::sync::mpsc;
use std::time::{Duration, Instant};

/// One in-flight forecast request.
#[derive(Debug)]
pub(crate) struct Request {
    /// The `[1, C, H, W]` input features.
    pub input: Tensor,
    /// When the request entered the queue (latency accounting).
    pub enqueued: Instant,
    /// Where the worker sends the painted heat map.
    pub respond: mpsc::Sender<Result<Tensor, ServeError>>,
}

fn serve_error(e: PushError<Request>) -> ServeError {
    match e {
        PushError::Full(_) => ServeError::QueueFull,
        PushError::Closed(_) => ServeError::ShuttingDown,
    }
}

/// Bounded multi-producer / multi-consumer queue with batch-coalescing pop,
/// backed by [`pop_exec::BoundedQueue`].
#[derive(Debug)]
pub(crate) struct RequestQueue {
    inner: BoundedQueue<Request>,
}

impl RequestQueue {
    pub fn new(capacity: usize) -> Self {
        RequestQueue {
            inner: BoundedQueue::new(capacity),
        }
    }

    /// Non-blocking enqueue: the backpressure path.
    pub fn try_push(&self, req: Request) -> Result<(), ServeError> {
        self.inner.try_push(req).map_err(serve_error)
    }

    /// Blocking enqueue: waits for queue space (or shutdown).
    pub fn push(&self, req: Request) -> Result<(), ServeError> {
        self.inner.push(req).map_err(serve_error)
    }

    /// Dequeues the next batch: the oldest request plus up to
    /// `max_batch - 1` further pending requests with the same input shape,
    /// waiting at most `max_wait` past the first pop for more to arrive.
    /// Requests with other shapes stay queued in order for a later batch.
    ///
    /// Returns `None` once the queue is closed *and* drained — the worker
    /// shutdown signal.
    pub fn pop_batch(&self, max_batch: usize, max_wait: Duration) -> Option<Vec<Request>> {
        self.inner
            .pop_batch_by(max_batch, max_wait, |r| r.input.shape())
    }

    /// Stops accepting new requests and wakes every waiter; queued requests
    /// remain poppable so workers drain gracefully.
    pub fn close(&self) {
        self.inner.close();
    }

    /// Current queue depth.
    pub fn len(&self) -> usize {
        self.inner.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    fn req(shape: [usize; 4]) -> (Request, mpsc::Receiver<Result<Tensor, ServeError>>) {
        let (tx, rx) = mpsc::channel();
        (
            Request {
                input: Tensor::zeros(shape),
                enqueued: Instant::now(),
                respond: tx,
            },
            rx,
        )
    }

    #[test]
    fn try_push_bounces_when_saturated() {
        let q = RequestQueue::new(2);
        let (a, _ra) = req([1, 2, 4, 4]);
        let (b, _rb) = req([1, 2, 4, 4]);
        let (c, _rc) = req([1, 2, 4, 4]);
        q.try_push(a).unwrap();
        q.try_push(b).unwrap();
        assert_eq!(q.try_push(c).unwrap_err(), ServeError::QueueFull);
        assert_eq!(q.len(), 2);
        // Space frees after a pop.
        let batch = q.pop_batch(1, Duration::ZERO).unwrap();
        assert_eq!(batch.len(), 1);
        let (d, _rd) = req([1, 2, 4, 4]);
        q.try_push(d).unwrap();
    }

    #[test]
    fn pop_batch_coalesces_available_requests() {
        let q = RequestQueue::new(8);
        for _ in 0..5 {
            let (r, _rx) = req([1, 2, 4, 4]);
            q.try_push(r).unwrap();
        }
        let batch = q.pop_batch(4, Duration::ZERO).unwrap();
        assert_eq!(batch.len(), 4);
        let rest = q.pop_batch(4, Duration::ZERO).unwrap();
        assert_eq!(rest.len(), 1);
    }

    #[test]
    fn pop_batch_keeps_mismatched_shapes_for_later() {
        let q = RequestQueue::new(8);
        let (a, _ra) = req([1, 2, 4, 4]);
        let (b, _rb) = req([1, 2, 8, 8]);
        let (c, _rc) = req([1, 2, 4, 4]);
        q.try_push(a).unwrap();
        q.try_push(b).unwrap();
        q.try_push(c).unwrap();
        // First batch: the two 4x4 requests, coalesced around the front.
        let batch = q.pop_batch(4, Duration::ZERO).unwrap();
        assert_eq!(batch.len(), 2);
        assert!(batch.iter().all(|r| r.input.shape() == [1, 2, 4, 4]));
        // The 8x8 request is still queued, in order.
        let batch = q.pop_batch(4, Duration::ZERO).unwrap();
        assert_eq!(batch.len(), 1);
        assert_eq!(batch[0].input.shape(), [1, 2, 8, 8]);
    }

    #[test]
    fn pop_batch_waits_for_stragglers() {
        let q = Arc::new(RequestQueue::new(8));
        let (a, _ra) = req([1, 1, 4, 4]);
        q.try_push(a).unwrap();
        let producer = {
            let q = Arc::clone(&q);
            std::thread::spawn(move || {
                std::thread::sleep(Duration::from_millis(20));
                let (b, rx) = req([1, 1, 4, 4]);
                q.try_push(b).unwrap();
                rx
            })
        };
        // Generous window: the straggler lands well inside it.
        let batch = q.pop_batch(2, Duration::from_millis(2000)).unwrap();
        assert_eq!(batch.len(), 2);
        let _rx = producer.join().unwrap();
    }

    #[test]
    fn close_drains_then_signals_shutdown() {
        let q = RequestQueue::new(4);
        let (a, _ra) = req([1, 1, 4, 4]);
        q.try_push(a).unwrap();
        q.close();
        let (b, _rb) = req([1, 1, 4, 4]);
        assert_eq!(q.try_push(b).unwrap_err(), ServeError::ShuttingDown);
        // The queued request is still served...
        assert_eq!(q.pop_batch(4, Duration::ZERO).unwrap().len(), 1);
        // ...and only then do consumers see shutdown.
        assert!(q.pop_batch(4, Duration::ZERO).is_none());
    }

    #[test]
    fn blocking_push_waits_for_space() {
        let q = Arc::new(RequestQueue::new(1));
        let (a, _ra) = req([1, 1, 4, 4]);
        q.try_push(a).unwrap();
        let pusher = {
            let q = Arc::clone(&q);
            std::thread::spawn(move || {
                let (b, rx) = req([1, 1, 4, 4]);
                q.push(b).unwrap();
                rx
            })
        };
        std::thread::sleep(Duration::from_millis(20));
        // The pusher is blocked; free a slot and it completes.
        let _ = q.pop_batch(1, Duration::ZERO).unwrap();
        let _rx = pusher.join().unwrap();
        assert_eq!(q.len(), 1);
    }
}
