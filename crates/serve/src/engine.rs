//! The forecast-serving engine: a worker pool draining the request queue
//! in shape-coalesced micro-batches, plus the blocking client handle.

use crate::error::ServeError;
use crate::queue::{Request, RequestQueue};
use crate::stats::{ServeStats, StatsSnapshot};
use pop_core::features::tensor_to_image;
use pop_core::{CoreError, Forecaster, Pix2Pix, QuantizedForecaster, SharedForecaster};
use pop_exec::WorkerPool;
use pop_nn::Tensor;
use pop_raster::Image;
use std::panic::AssertUnwindSafe;
use std::sync::{mpsc, Arc};
use std::time::{Duration, Instant};

/// Tuning knobs of a [`ForecastEngine`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EngineConfig {
    /// Largest batch one forward pass serves (`N` of the stacked tensor).
    pub max_batch: usize,
    /// How long a worker holds a batch open for stragglers past the first
    /// request. Zero batches only what is already queued.
    pub max_wait: Duration,
    /// Bound of the request queue — the backpressure threshold.
    pub queue_capacity: usize,
    /// Worker threads. Each worker owns a private replica of the model, so
    /// distinct batches run genuinely in parallel.
    pub workers: usize,
    /// Artificial delay added to every forward pass — a load-shaping /
    /// testing knob simulating a slower model (leave zero in production).
    pub forward_delay: Duration,
    /// When set, requests this engine answers also feed the per-model
    /// series of that label in [`StatsSnapshot::per_model`] — the handle a
    /// multi-engine front end (one [`ServeStats`] shared via
    /// [`ForecastEngine::start_with_stats`]) uses to split traffic by
    /// model. `None` (the default) records aggregate counters only.
    pub model_label: Option<String>,
}

impl Default for EngineConfig {
    fn default() -> Self {
        let parallelism = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        EngineConfig {
            max_batch: 8,
            max_wait: Duration::from_millis(2),
            queue_capacity: 256,
            workers: parallelism.min(4),
            forward_delay: Duration::ZERO,
            model_label: None,
        }
    }
}

impl EngineConfig {
    fn validate(&self) -> Result<(), ServeError> {
        if self.max_batch == 0 || self.queue_capacity == 0 || self.workers == 0 {
            return Err(ServeError::BadConfig(
                "max_batch, queue_capacity and workers must be positive".into(),
            ));
        }
        Ok(())
    }
}

/// The input geometry the engine accepts, derived from the served model.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct InputSpec {
    channels: usize,
    resolution: usize,
}

/// One worker's private model: the f32 checkpoint or its i8 snapshot
/// (the registry's alternate replica kind). The quantized variant is a
/// cheap `Arc`-free clone of immutable weights and forecasts through
/// `&self` — no per-worker activation caches to replicate.
#[derive(Debug)]
enum Replica {
    F32(Box<Pix2Pix>),
    Quantized(QuantizedForecaster),
}

impl Replica {
    fn forecast_batch(&mut self, xs: &[&Tensor]) -> Result<Vec<Tensor>, ServeError> {
        match self {
            Replica::F32(model) => Ok(model.forecast_batch(xs)),
            // Infallible for spec-checked inputs, but the trait is
            // fallible: route any error to the requests in this batch
            // instead of panicking the worker.
            Replica::Quantized(q) => q
                .forecast_batch(xs)
                .map_err(|e| ServeError::Model(e.to_string())),
        }
    }

    fn quantized(&self) -> bool {
        matches!(self, Replica::Quantized(_))
    }
}

impl InputSpec {
    fn check(&self, x: &Tensor) -> Result<(), ServeError> {
        let want = [1, self.channels, self.resolution, self.resolution];
        if x.shape() != want {
            return Err(ServeError::BadInput(format!(
                "expected shape {:?}, got {:?}",
                want,
                x.shape()
            )));
        }
        Ok(())
    }
}

/// A multi-threaded, micro-batching forecast server over one trained
/// [`Pix2Pix`] checkpoint.
///
/// Requests submitted through [`ForecastClient`]s land in a bounded queue;
/// each worker pops the oldest request plus any shape-compatible pending
/// ones (up to [`EngineConfig::max_batch`], waiting at most
/// [`EngineConfig::max_wait`] for stragglers), stacks them along the batch
/// dimension, runs one generator forward on its private model replica, and
/// splits the painted heat maps back per request. Inference-mode layers
/// treat batch elements independently, so every answer is bitwise-identical
/// to an exclusive single-request [`Pix2Pix::forecast`].
///
/// Dropping the engine closes the queue, drains already-accepted requests
/// and joins the workers.
#[derive(Debug)]
pub struct ForecastEngine {
    queue: Arc<RequestQueue>,
    stats: Arc<ServeStats>,
    spec: InputSpec,
    config: EngineConfig,
    workers: WorkerPool,
}

impl ForecastEngine {
    /// Starts an engine serving `model`, replicating it once per worker.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::BadConfig`] for a zero `max_batch`,
    /// `queue_capacity` or `workers`.
    pub fn start(model: Pix2Pix, config: EngineConfig) -> Result<Self, ServeError> {
        Self::start_with_stats(model, config, Arc::new(ServeStats::default()))
    }

    /// [`ForecastEngine::start`], recording into a caller-supplied
    /// [`ServeStats`]. A front end running several engines (one per served
    /// model) shares one stats instance across all of them so a single
    /// snapshot covers the whole fleet; set
    /// [`EngineConfig::model_label`] to keep the per-model series apart.
    ///
    /// # Errors
    ///
    /// Propagates [`ForecastEngine::start`] validation failures.
    pub fn start_with_stats(
        model: Pix2Pix,
        config: EngineConfig,
        stats: Arc<ServeStats>,
    ) -> Result<Self, ServeError> {
        let spec = InputSpec {
            channels: model.config().input_channels(),
            resolution: model.config().resolution,
        };
        // One private replica per worker; the last worker takes the
        // original model instead of an extra clone.
        let mut replicas: Vec<Replica> = Vec::with_capacity(config.workers);
        for _ in 1..config.workers {
            replicas.push(Replica::F32(Box::new(model.clone())));
        }
        replicas.push(Replica::F32(Box::new(model)));
        Self::start_replicas(replicas, spec, config, stats)
    }

    /// Starts an engine over a [`SharedForecaster`] (e.g. handed out by the
    /// [`ModelRegistry`](crate::ModelRegistry)), replicating its current
    /// weights per worker.
    ///
    /// # Errors
    ///
    /// Propagates [`ForecastEngine::start`] validation failures.
    pub fn start_shared(
        model: &SharedForecaster,
        config: EngineConfig,
    ) -> Result<Self, ServeError> {
        Self::start(model.replica(), config)
    }

    /// Starts an engine over an i8 snapshot ([`QuantizedForecaster`]) — the
    /// opt-in quantized replica kind. Every worker clones the same
    /// immutable snapshot; answers land in the quantized latency series of
    /// [`StatsSnapshot`] (`p50_quant_latency_us` / `p99_quant_latency_us`).
    ///
    /// The snapshot carries no [`ExperimentConfig`]
    /// (it is weights-only), so the serving geometry is taken from
    /// `config_hint` — pass the config the checkpoint was trained with.
    ///
    /// # Errors
    ///
    /// Propagates [`ForecastEngine::start`] validation failures.
    pub fn start_quantized(
        model: QuantizedForecaster,
        config_hint: &pop_core::ExperimentConfig,
        config: EngineConfig,
    ) -> Result<Self, ServeError> {
        Self::start_quantized_with_stats(
            model,
            config_hint,
            config,
            Arc::new(ServeStats::default()),
        )
    }

    /// [`ForecastEngine::start_quantized`] over a caller-supplied
    /// [`ServeStats`] — see [`ForecastEngine::start_with_stats`].
    ///
    /// # Errors
    ///
    /// Propagates [`ForecastEngine::start`] validation failures.
    pub fn start_quantized_with_stats(
        model: QuantizedForecaster,
        config_hint: &pop_core::ExperimentConfig,
        config: EngineConfig,
        stats: Arc<ServeStats>,
    ) -> Result<Self, ServeError> {
        let spec = InputSpec {
            channels: config_hint.input_channels(),
            resolution: config_hint.resolution,
        };
        let replicas: Vec<Replica> = (0..config.workers)
            .map(|_| Replica::Quantized(model.clone()))
            .collect();
        Self::start_replicas(replicas, spec, config, stats)
    }

    fn start_replicas(
        mut replicas: Vec<Replica>,
        spec: InputSpec,
        config: EngineConfig,
        stats: Arc<ServeStats>,
    ) -> Result<Self, ServeError> {
        config.validate()?;
        let queue = Arc::new(RequestQueue::new(config.queue_capacity));
        let workers = WorkerPool::spawn("pop-serve", config.workers, |_| {
            // lint: allow(panic_path) — construction-time: `validate()`
            // guarantees exactly `workers` replicas were built
            let replica = replicas.pop().expect("one replica per worker");
            let queue = Arc::clone(&queue);
            let stats = Arc::clone(&stats);
            let cfg = config.clone();
            move || worker_loop(replica, queue, stats, cfg)
        });
        Ok(ForecastEngine {
            queue,
            stats,
            spec,
            config,
            workers,
        })
    }

    /// A cheap cloneable handle for submitting requests.
    pub fn client(&self) -> ForecastClient {
        ForecastClient {
            queue: Arc::clone(&self.queue),
            stats: Arc::clone(&self.stats),
            spec: self.spec,
        }
    }

    /// Live telemetry.
    pub fn stats(&self) -> StatsSnapshot {
        self.stats.snapshot()
    }

    /// The configuration the engine runs with.
    pub fn config(&self) -> &EngineConfig {
        &self.config
    }

    /// Current request-queue depth.
    pub fn queue_depth(&self) -> usize {
        self.queue.len()
    }

    /// Graceful shutdown: stops accepting requests, serves everything
    /// already queued, joins the workers and returns the final counters.
    pub fn shutdown(mut self) -> StatsSnapshot {
        self.close_and_join();
        self.stats.snapshot()
    }

    fn close_and_join(&mut self) {
        self.queue.close();
        let _ = self.workers.join();
    }
}

impl Drop for ForecastEngine {
    fn drop(&mut self) {
        self.close_and_join();
    }
}

fn worker_loop(
    mut model: Replica,
    queue: Arc<RequestQueue>,
    stats: Arc<ServeStats>,
    cfg: EngineConfig,
) {
    let quantized = model.quantized();
    // Resolve the per-model series once (it takes a registration lock);
    // the per-batch path below only touches atomics.
    let series = cfg
        .model_label
        .as_deref()
        .map(|label| stats.model_series(label));
    let record = |ok: bool, latency_us: u64| {
        stats.record_request_done(ok, latency_us, quantized);
        if let Some(series) = &series {
            series.record(ok, latency_us);
        }
    };
    while let Some(batch) = queue.pop_batch(cfg.max_batch, cfg.max_wait) {
        if !cfg.forward_delay.is_zero() {
            // lint: allow(blocking) — synthetic forward-delay pacing for
            // latency experiments; zero (a no-op) in production configs.
            std::thread::sleep(cfg.forward_delay);
        }
        let inputs: Vec<&Tensor> = batch.iter().map(|r| &r.input).collect();
        let _span = pop_obs::span!("serve_batch", size = batch.len());
        let started = Instant::now();
        // A panicking forward (impossible for spec-checked inputs, but the
        // model is swappable) must not wedge the whole engine: convert it
        // into per-request errors and keep serving. Eval-mode forwards
        // rebuild every layer cache from scratch, so the replica stays
        // usable afterwards.
        let outputs = std::panic::catch_unwind(AssertUnwindSafe(|| model.forecast_batch(&inputs)));
        let forward_us = started.elapsed().as_micros() as u64;
        stats.record_batch(batch.len(), forward_us);
        match outputs {
            Ok(Ok(outputs)) => {
                for (req, out) in batch.into_iter().zip(outputs) {
                    let latency_us = req.enqueued.elapsed().as_micros() as u64;
                    record(true, latency_us);
                    let _ = req.respond.send(Ok(out));
                }
            }
            Ok(Err(err)) => {
                for req in batch {
                    let latency_us = req.enqueued.elapsed().as_micros() as u64;
                    record(false, latency_us);
                    let _ = req.respond.send(Err(err.clone()));
                }
            }
            Err(panic) => {
                let msg = panic_message(&panic);
                for req in batch {
                    let latency_us = req.enqueued.elapsed().as_micros() as u64;
                    record(false, latency_us);
                    let _ = req
                        .respond
                        .send(Err(ServeError::Model(format!("forward panicked: {msg}"))));
                }
            }
        }
    }
}

fn panic_message(panic: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = panic.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = panic.downcast_ref::<String>() {
        s.clone()
    } else {
        "unknown panic".to_string()
    }
}

/// A pending forecast: redeem with [`PendingForecast::wait`].
#[derive(Debug)]
#[must_use = "a pending forecast does nothing until waited on"]
pub struct PendingForecast {
    rx: mpsc::Receiver<Result<Tensor, ServeError>>,
}

impl PendingForecast {
    /// Blocks until the engine answers.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::ShuttingDown`] when the engine terminated
    /// before answering, or the error the worker reported.
    pub fn wait(self) -> Result<Tensor, ServeError> {
        // lint: allow(blocking) — blocking is this API's contract (client
        // side of the request-response seam); workers reach it only
        // through the `Forecaster` trait over-approximation.
        self.rx.recv().map_err(|_| ServeError::ShuttingDown)?
    }

    /// [`PendingForecast::wait`] decoded into an image.
    ///
    /// # Errors
    ///
    /// Propagates [`PendingForecast::wait`] failures.
    pub fn wait_image(self) -> Result<Image, ServeError> {
        // lint: allow(blocking) — see `PendingForecast::wait`.
        Ok(tensor_to_image(&self.wait()?))
    }
}

/// A cheap, cloneable, thread-safe handle onto a [`ForecastEngine`].
///
/// `forecast` is the blocking request-response call the annealer callback
/// uses; `submit`/`try_submit` expose the asynchronous and backpressure
/// halves separately.
#[derive(Debug, Clone)]
pub struct ForecastClient {
    queue: Arc<RequestQueue>,
    stats: Arc<ServeStats>,
    spec: InputSpec,
}

impl ForecastClient {
    fn make_request(&self, x: &Tensor) -> Result<(Request, PendingForecast), ServeError> {
        self.spec.check(x)?;
        let (tx, rx) = mpsc::channel();
        Ok((
            Request {
                input: x.clone(),
                enqueued: Instant::now(),
                respond: tx,
            },
            PendingForecast { rx },
        ))
    }

    /// Enqueues a forecast, blocking while the queue is full.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::BadInput`] for a shape the served model cannot
    /// take and [`ServeError::ShuttingDown`] after engine shutdown.
    pub fn submit(&self, x: &Tensor) -> Result<PendingForecast, ServeError> {
        let (req, pending) = self.make_request(x)?;
        self.queue.push(req)?;
        self.stats
            .submitted
            .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        Ok(pending)
    }

    /// Enqueues a forecast without blocking — the backpressure-aware path.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::QueueFull`] when the bounded queue is
    /// saturated, plus every [`ForecastClient::submit`] error.
    pub fn try_submit(&self, x: &Tensor) -> Result<PendingForecast, ServeError> {
        let (req, pending) = self.make_request(x)?;
        match self.queue.try_push(req) {
            Ok(()) => {
                self.stats
                    .submitted
                    .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                Ok(pending)
            }
            Err(e) => {
                if e == ServeError::QueueFull {
                    self.stats
                        .rejected
                        .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                }
                Err(e)
            }
        }
    }

    /// Blocking request-response: submit, wait, decode to an image.
    ///
    /// # Errors
    ///
    /// Propagates submission and transport failures.
    pub fn forecast(&self, x: &Tensor) -> Result<Image, ServeError> {
        self.submit(x)?.wait_image()
    }

    /// Blocking request-response returning the raw `[-1, 1]` tensor.
    ///
    /// # Errors
    ///
    /// Propagates submission and transport failures.
    pub fn forecast_tensor(&self, x: &Tensor) -> Result<Tensor, ServeError> {
        // lint: allow(blocking) — see `PendingForecast::wait`.
        self.submit(x)?.wait()
    }
}

/// The engine client plugs directly into the §5.4 applications
/// ([`pop_core::apps::realtime_forecast_with`]): an annealer thread holds a
/// `ForecastClient` while the engine batches its snapshots with everyone
/// else's traffic.
impl Forecaster for ForecastClient {
    fn forecast(&self, x: &Tensor) -> Result<Tensor, CoreError> {
        self.forecast_tensor(x)
            .map_err(|e| CoreError::Pipeline(e.to_string()))
    }
}
