//! `pop-serve` — a batched congestion-forecast serving engine.
//!
//! The paper's headline application is congestion forecasting fast enough
//! to run *inside* the placement loop (§5.4). A production deployment of
//! that idea serves many concurrent forecast streams — one per annealer,
//! per design-space-exploration worker, per user — against a handful of
//! trained checkpoints. This crate is the architectural seam for that
//! scale-out:
//!
//! The queue/pool machinery itself lives in the shared `pop-exec` crate
//! (the data-generation pipeline runs on the same substrate); this crate
//! adds the forecast-serving semantics on top:
//!
//! * [`ForecastEngine`] — a worker pool over a **bounded request queue**
//!   with a **dynamic micro-batcher**: each worker pops the oldest request
//!   plus up to [`EngineConfig::max_batch`] shape-compatible pending
//!   requests (holding the batch open at most [`EngineConfig::max_wait`]
//!   for stragglers), stacks them along the `nn::Tensor` batch dimension,
//!   runs **one** generator forward on a private model replica, and splits
//!   the painted heat maps back per request. Inference-mode layers treat
//!   batch elements independently, so every answer is bitwise-identical to
//!   an exclusive [`Pix2Pix::forecast`](pop_core::Pix2Pix::forecast) call.
//! * [`ForecastClient`] — the cheap, cloneable blocking handle:
//!   [`forecast`](ForecastClient::forecast) for request-response,
//!   [`submit`](ForecastClient::submit) /
//!   [`try_submit`](ForecastClient::try_submit) for pipelined use with
//!   explicit backpressure ([`ServeError::QueueFull`]). It implements
//!   [`pop_core::Forecaster`], so
//!   [`pop_core::apps::realtime_forecast_with`] can run the §5.4 demo
//!   through the engine unchanged.
//! * [`ModelRegistry`] — an LRU cache of loaded checkpoints keyed by path,
//!   so one process serves several trained models (the paper trains one per
//!   held-out design) via [`pop_core::model_io`].
//! * [`StatsSnapshot`] — per-request latency plus aggregate throughput /
//!   batch-occupancy counters.
//!
//! # Example
//!
//! ```
//! use pop_core::{ExperimentConfig, Pix2Pix};
//! use pop_nn::Tensor;
//! use pop_serve::{EngineConfig, ForecastEngine};
//!
//! let config = ExperimentConfig { resolution: 16, base_filters: 4, depth: 3,
//!                                 ..ExperimentConfig::test() };
//! let model = Pix2Pix::new(&config, 1)?;
//! let engine = ForecastEngine::start(model, EngineConfig::default())?;
//! let client = engine.client();
//!
//! let x = Tensor::randn([1, config.input_channels(), 16, 16], 0.0, 0.5, 7);
//! let heat = client.forecast(&x)?;
//! assert_eq!(heat.width(), 16);
//!
//! let stats = engine.shutdown();
//! assert_eq!(stats.completed, 1);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

mod engine;
mod error;
mod queue;
mod registry;
mod stats;

pub use engine::{EngineConfig, ForecastClient, ForecastEngine, PendingForecast};
pub use error::ServeError;
pub use registry::ModelRegistry;
pub use stats::{ModelSeries, ModelStatsSnapshot, ServeStats, StatsSnapshot};

#[cfg(test)]
mod tests {
    use super::*;
    use pop_core::{model_io, ExperimentConfig, Forecaster, Pix2Pix};
    use pop_nn::Tensor;
    use std::sync::{Arc, Barrier};
    use std::time::Duration;

    fn tiny_config() -> ExperimentConfig {
        ExperimentConfig {
            resolution: 16,
            base_filters: 4,
            depth: 3,
            ..ExperimentConfig::test()
        }
    }

    fn tiny_model(seed: u64) -> Pix2Pix {
        Pix2Pix::new(&tiny_config(), seed).unwrap()
    }

    fn input(seed: u64) -> Tensor {
        Tensor::randn([1, tiny_config().input_channels(), 16, 16], 0.0, 0.5, seed)
    }

    #[test]
    fn batched_engine_matches_sequential_forecasts() {
        // The acceptance gate: an N>=4 batched pass through the engine
        // returns the same images as exclusive sequential calls.
        let mut reference = tiny_model(3);
        let xs: Vec<Tensor> = (0..6).map(|s| input(100 + s)).collect();
        let expected: Vec<_> = xs.iter().map(|x| reference.forecast_image(x)).collect();

        let engine = ForecastEngine::start(
            tiny_model(3),
            EngineConfig {
                max_batch: 8,
                max_wait: Duration::from_millis(50),
                workers: 2,
                ..EngineConfig::default()
            },
        )
        .unwrap();
        let client = engine.client();
        // Submit everything first so the batcher can coalesce, then wait.
        let pending: Vec<_> = xs.iter().map(|x| client.submit(x).unwrap()).collect();
        let got: Vec<_> = pending
            .into_iter()
            .map(|p| p.wait_image().unwrap())
            .collect();
        for (g, e) in got.iter().zip(&expected) {
            assert_eq!(g, e);
        }
        let stats = engine.shutdown();
        assert_eq!(stats.completed, 6);
        assert_eq!(stats.failed, 0);
        assert!(stats.mean_batch_occupancy >= 1.0);
    }

    #[test]
    fn concurrent_identical_submissions_are_deterministic() {
        let engine = ForecastEngine::start(
            tiny_model(5),
            EngineConfig {
                max_batch: 4,
                max_wait: Duration::from_millis(10),
                workers: 3,
                ..EngineConfig::default()
            },
        )
        .unwrap();
        let x = input(42);
        let expected = engine.client().forecast(&x).unwrap();
        let barrier = Arc::new(Barrier::new(6));
        let handles: Vec<_> = (0..6)
            .map(|_| {
                let client = engine.client();
                let x = x.clone();
                let barrier = Arc::clone(&barrier);
                std::thread::spawn(move || {
                    barrier.wait();
                    let mut out = Vec::new();
                    for _ in 0..4 {
                        out.push(client.forecast(&x).unwrap());
                    }
                    out
                })
            })
            .collect();
        for h in handles {
            for img in h.join().unwrap() {
                assert_eq!(img, expected, "every thread sees identical forecasts");
            }
        }
        let stats = engine.shutdown();
        assert_eq!(stats.completed, 25);
    }

    #[test]
    fn try_submit_bounces_when_saturated_and_submit_blocks() {
        // One slow worker (500 ms per forward) guarantees the queue fills:
        // r0 is in flight, r1/r2 occupy the two queue slots, r3 must bounce.
        let engine = ForecastEngine::start(
            tiny_model(6),
            EngineConfig {
                max_batch: 1,
                max_wait: Duration::ZERO,
                queue_capacity: 2,
                workers: 1,
                forward_delay: Duration::from_millis(500),
                ..EngineConfig::default()
            },
        )
        .unwrap();
        let client = engine.client();
        let x = input(1);
        let p0 = client.try_submit(&x).unwrap();
        // Give the worker time to take r0 out of the queue.
        while engine.queue_depth() > 0 {
            std::thread::sleep(Duration::from_millis(5));
        }
        let p1 = client.try_submit(&x).unwrap();
        let p2 = client.try_submit(&x).unwrap();
        let err = client.try_submit(&x).unwrap_err();
        assert_eq!(err, ServeError::QueueFull);
        assert_eq!(engine.stats().rejected, 1);
        // The blocking path rides out the backpressure instead.
        let p3 = client.submit(&x).unwrap();
        for p in [p0, p1, p2, p3] {
            p.wait_image().unwrap();
        }
        let stats = engine.shutdown();
        assert_eq!(stats.completed, 4);
        assert_eq!(stats.rejected, 1);
    }

    #[test]
    fn micro_batcher_coalesces_under_load() {
        // While the single worker sleeps through the first forward, four
        // more requests arrive; they must be served as one batch.
        let engine = ForecastEngine::start(
            tiny_model(7),
            EngineConfig {
                max_batch: 8,
                max_wait: Duration::ZERO,
                queue_capacity: 16,
                workers: 1,
                forward_delay: Duration::from_millis(300),
                ..EngineConfig::default()
            },
        )
        .unwrap();
        let client = engine.client();
        let x = input(2);
        let first = client.submit(&x).unwrap();
        while engine.queue_depth() > 0 {
            std::thread::sleep(Duration::from_millis(5));
        }
        let rest: Vec<_> = (0..4).map(|_| client.submit(&x).unwrap()).collect();
        first.wait().unwrap();
        for p in rest {
            p.wait().unwrap();
        }
        let stats = engine.shutdown();
        assert_eq!(stats.completed, 5);
        assert_eq!(stats.batches, 2, "r0 alone, then the coalesced four");
        assert_eq!(stats.max_batch, 4);
        assert!((stats.mean_batch_occupancy - 2.5).abs() < 1e-9);
    }

    #[test]
    fn bad_input_is_rejected_before_queueing() {
        let engine = ForecastEngine::start(tiny_model(8), EngineConfig::default()).unwrap();
        let client = engine.client();
        let wrong_res = Tensor::zeros([1, 4, 8, 8]);
        assert!(matches!(
            client.forecast(&wrong_res),
            Err(ServeError::BadInput(_))
        ));
        let wrong_batch = Tensor::zeros([2, 4, 16, 16]);
        assert!(matches!(
            client.try_submit(&wrong_batch),
            Err(ServeError::BadInput(_))
        ));
        assert_eq!(engine.stats().submitted, 0);
    }

    #[test]
    fn shutdown_drains_accepted_requests_then_rejects() {
        let engine = ForecastEngine::start(
            tiny_model(9),
            EngineConfig {
                workers: 1,
                forward_delay: Duration::from_millis(50),
                ..EngineConfig::default()
            },
        )
        .unwrap();
        let client = engine.client();
        let x = input(3);
        let pending: Vec<_> = (0..3).map(|_| client.submit(&x).unwrap()).collect();
        let stats = engine.shutdown();
        assert_eq!(stats.completed, 3, "accepted requests are served");
        for p in pending {
            p.wait().unwrap();
        }
        assert!(matches!(client.submit(&x), Err(ServeError::ShuttingDown)));
    }

    #[test]
    fn client_serves_the_realtime_app_through_the_forecaster_trait() {
        let engine = ForecastEngine::start(tiny_model(10), EngineConfig::default()).unwrap();
        let client = engine.client();
        let x = input(4);
        let via_trait = Forecaster::forecast(&client, &x).unwrap();
        assert_eq!(via_trait, client.forecast_tensor(&x).unwrap());
    }

    #[test]
    fn registry_caches_and_evicts_lru() {
        let dir = std::env::temp_dir().join("pop_serve_registry_test");
        let _ = std::fs::remove_dir_all(&dir);
        let config = tiny_config();
        let paths: Vec<_> = (0..3).map(|i| dir.join(format!("m{i}.ckpt"))).collect();
        for (i, path) in paths.iter().enumerate() {
            let mut model = tiny_model(20 + i as u64);
            model_io::save_model(&mut model, path).unwrap();
        }

        let registry = ModelRegistry::new(2);
        let a = registry.get_or_load(&config, &paths[0]).unwrap();
        let _b = registry.get_or_load(&config, &paths[1]).unwrap();
        assert_eq!(registry.loads(), 2);
        // Touch A so B becomes the LRU entry, then load C: B is evicted.
        let a2 = registry.get_or_load(&config, &paths[0]).unwrap();
        let _c = registry.get_or_load(&config, &paths[2]).unwrap();
        assert_eq!(registry.len(), 2);
        assert!(registry.contains(&paths[0]), "recently used survives");
        assert!(!registry.contains(&paths[1]), "LRU entry evicted");
        assert!(registry.contains(&paths[2]));
        assert_eq!(registry.loads(), 3);
        assert_eq!(registry.hits(), 1);

        // Cached lookups return the *same* shared model.
        let x = input(5);
        assert_eq!(a.forecast(&x).unwrap(), a2.forecast(&x).unwrap());
        // Reloading the evicted checkpoint still works and forecasts
        // identically to a fresh load (weights come from the same file).
        let b2 = registry.get_or_load(&config, &paths[1]).unwrap();
        let mut direct = model_io::load_checkpoint(&config, &paths[1]).unwrap();
        assert_eq!(b2.forecast(&x).unwrap(), direct.forecast(&x));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn quantized_engine_serves_the_snapshot_and_feeds_quant_stats() {
        // The alternate replica kind end-to-end: a quantized engine must
        // answer exactly what the snapshot answers directly, and its
        // requests must land in the quantized latency series.
        let model = tiny_model(11);
        let quant = model.quantized();
        let xs: Vec<Tensor> = (0..5).map(|s| input(200 + s)).collect();
        let expected: Vec<Tensor> = xs
            .iter()
            .map(|x| Forecaster::forecast(&quant, x).unwrap())
            .collect();

        let engine = ForecastEngine::start_quantized(
            quant,
            model.config(),
            EngineConfig {
                max_batch: 8,
                max_wait: Duration::from_millis(20),
                workers: 2,
                ..EngineConfig::default()
            },
        )
        .unwrap();
        let client = engine.client();
        let pending: Vec<_> = xs.iter().map(|x| client.submit(x).unwrap()).collect();
        for (p, want) in pending.into_iter().zip(&expected) {
            assert_eq!(&p.wait().unwrap(), want);
        }
        let stats = engine.shutdown();
        assert_eq!(stats.completed, 5);
        assert_eq!(
            stats.quant_completed, 5,
            "all answers came from i8 replicas"
        );
        assert!(stats.p50_quant_latency_us > 0);
        assert!(stats.p99_quant_latency_us >= stats.p50_quant_latency_us);
    }

    #[test]
    fn f32_engine_leaves_quant_stats_empty() {
        let engine = ForecastEngine::start(tiny_model(12), EngineConfig::default()).unwrap();
        engine.client().forecast(&input(7)).unwrap();
        let stats = engine.shutdown();
        assert_eq!(stats.completed, 1);
        assert_eq!(stats.quant_completed, 0);
        assert_eq!(stats.p50_quant_latency_us, 0);
    }

    #[test]
    fn registry_hands_out_cached_quantized_snapshots() {
        let dir = std::env::temp_dir().join("pop_serve_registry_quant_test");
        let _ = std::fs::remove_dir_all(&dir);
        let config = tiny_config();
        let path = dir.join("m.ckpt");
        let mut model = tiny_model(31);
        model_io::save_model(&mut model, &path).unwrap();

        let registry = ModelRegistry::new(2);
        let q1 = registry.get_or_load_quantized(&config, &path).unwrap();
        let q2 = registry.get_or_load_quantized(&config, &path).unwrap();
        assert_eq!(registry.loads(), 1, "one disk load serves both kinds");
        let x = input(8);
        let want = Forecaster::forecast(&model.quantized(), &x).unwrap();
        assert_eq!(Forecaster::forecast(&q1, &x).unwrap(), want);
        assert_eq!(Forecaster::forecast(&q2, &x).unwrap(), want);
        // The f32 kind stays available from the same entry.
        let f = registry.get_or_load(&config, &path).unwrap();
        assert_eq!(f.forecast(&x).unwrap(), model.forecast(&x));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn registry_rejects_missing_checkpoints() {
        let registry = ModelRegistry::new(1);
        let err = registry
            .get_or_load(&tiny_config(), std::path::Path::new("/nonexistent/m.ckpt"))
            .unwrap_err();
        assert!(matches!(err, ServeError::Model(_)));
        assert!(registry.is_empty());
    }

    #[test]
    fn engine_starts_from_registry_models() {
        let dir = std::env::temp_dir().join("pop_serve_registry_engine_test");
        let _ = std::fs::remove_dir_all(&dir);
        let config = tiny_config();
        let path = dir.join("m.ckpt");
        let mut model = tiny_model(30);
        model_io::save_model(&mut model, &path).unwrap();

        let registry = ModelRegistry::new(4);
        let shared = registry.get_or_load(&config, &path).unwrap();
        let engine = ForecastEngine::start_shared(&shared, EngineConfig::default()).unwrap();
        let x = input(6);
        assert_eq!(
            engine.client().forecast(&x).unwrap(),
            model.forecast_image(&x)
        );
        engine.shutdown();
        let _ = std::fs::remove_dir_all(&dir);
    }
}
