use std::fmt;

/// The functional kind of a placement site (and, mirrored in
/// [`pop-netlist`](../pop_netlist/index.html), of a block).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum SiteKind {
    /// One port of a perimeter I/O pad.
    Io,
    /// A cluster-based logic block (CLB) position.
    Clb,
    /// A block-RAM (memory) position, possibly several tiles tall.
    Memory,
    /// A multiplier (DSP) position, possibly several tiles tall.
    Multiplier,
}

impl fmt::Display for SiteKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            SiteKind::Io => "io",
            SiteKind::Clb => "clb",
            SiteKind::Memory => "memory",
            SiteKind::Multiplier => "multiplier",
        };
        f.write_str(s)
    }
}

/// Dense index of a [`Site`] within one [`Arch`](crate::Arch).
///
/// Site ids are assigned contiguously from zero in the deterministic order
/// produced by [`Arch::sites`](crate::Arch::sites), so they can index a
/// `Vec`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SiteId(pub u32);

impl SiteId {
    /// Returns the id as a `usize` for direct slice indexing.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for SiteId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "s{}", self.0)
    }
}

/// A concrete location a netlist block can be placed at.
///
/// `x`/`y` address the site's anchor tile (bottom tile for multi-tile-tall
/// sites). For I/O sites, `subtile` distinguishes the up-to-`io_capacity`
/// ports sharing one pad tile.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Site {
    /// Dense site index.
    pub id: SiteId,
    /// Functional kind; only blocks of the matching kind may be placed here.
    pub kind: SiteKind,
    /// Anchor tile x coordinate.
    pub x: usize,
    /// Anchor tile y coordinate.
    pub y: usize,
    /// Port index within an I/O pad tile (0 for non-I/O sites).
    pub subtile: usize,
    /// Number of tiles the site spans vertically (1 for I/O and CLB).
    pub height: usize,
}

impl Site {
    /// Centre of the site in tile coordinates (used by the rasteriser and by
    /// wirelength estimation).
    pub fn center(&self) -> (f32, f32) {
        (
            self.x as f32 + 0.5,
            self.y as f32 + self.height as f32 * 0.5,
        )
    }

    /// Whether the site covers tile `(x, y)`.
    pub fn covers(&self, x: usize, y: usize) -> bool {
        x == self.x && y >= self.y && y < self.y + self.height
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn site_center_of_unit_site() {
        let s = Site {
            id: SiteId(0),
            kind: SiteKind::Clb,
            x: 3,
            y: 4,
            subtile: 0,
            height: 1,
        };
        assert_eq!(s.center(), (3.5, 4.5));
        assert!(s.covers(3, 4));
        assert!(!s.covers(3, 5));
        assert!(!s.covers(4, 4));
    }

    #[test]
    fn tall_site_covers_span() {
        let s = Site {
            id: SiteId(1),
            kind: SiteKind::Memory,
            x: 2,
            y: 1,
            subtile: 0,
            height: 4,
        };
        for y in 1..5 {
            assert!(s.covers(2, y));
        }
        assert!(!s.covers(2, 5));
        assert_eq!(s.center(), (2.5, 3.0));
    }

    #[test]
    fn site_kind_display() {
        assert_eq!(SiteKind::Multiplier.to_string(), "multiplier");
        assert_eq!(SiteId(7).to_string(), "s7");
    }
}
