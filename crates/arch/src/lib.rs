//! FPGA architecture model for the *Painting on Placement* reproduction.
//!
//! The DAC'19 paper targets a fixed, VTR-flagship-style FPGA architecture:
//! a rectangular grid of tiles with
//!
//! * **I/O pads** on each of the four sides (each pad tile holds several
//!   I/O ports — eight in the paper),
//! * interior columns of **CLB** sites,
//! * dedicated **memory** and **multiplier** columns (the yellow column and
//!   the pink bars of the paper's Figure 2), and
//! * **routing channels** between adjacent tiles whose width (the *channel
//!   width factor*, e.g. "routing succeeded with a channel width factor of
//!   34") bounds how many nets may cross a given channel segment.
//!
//! This crate models exactly that geometry. It knows nothing about netlists,
//! placement or routing — those live in [`pop-netlist`], [`pop-place`] and
//! [`pop-route`]; it only answers geometric questions: what kind of tile sits
//! at `(x, y)`, which placement sites exist, which channel segments exist and
//! how they are indexed.
//!
//! # Example
//!
//! ```
//! use pop_arch::{Arch, TileKind};
//!
//! let arch = Arch::builder().interior(10, 10).channel_width(12).build()?;
//! assert_eq!(arch.width(), 12);                    // 10 interior + 2 IO ring
//! assert_eq!(arch.tile_kind(0, 0), TileKind::Corner);
//! assert!(arch.clb_capacity() > 0);
//! # Ok::<(), pop_arch::ArchError>(())
//! ```
//!
//! [`pop-netlist`]: ../pop_netlist/index.html
//! [`pop-place`]: ../pop_place/index.html
//! [`pop-route`]: ../pop_route/index.html

mod channel;
mod error;
mod grid;
mod site;

pub use channel::{ChannelId, ChannelIter, ChannelOrientation};
pub use error::ArchError;
pub use grid::{Arch, ArchBuilder, ColumnKind, TileKind};
pub use site::{Site, SiteId, SiteKind};
