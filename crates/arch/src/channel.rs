use std::fmt;

/// Orientation of a routing channel segment.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ChannelOrientation {
    /// Runs east–west along the top edge of a tile row.
    Horizontal,
    /// Runs north–south along the right edge of a tile column.
    Vertical,
}

/// Identifies one unit-length routing channel segment.
///
/// Following the VPR `chanx`/`chany` convention:
///
/// * `Horizontal { x, y }` runs along the **top** edge of tile `(x, y)` and
///   exists for `x in 1..width-1`, `y in 0..height-1`;
/// * `Vertical { x, y }` runs along the **right** edge of tile `(x, y)` and
///   exists for `x in 0..width-1`, `y in 1..height-1`.
///
/// Each segment bundles [`channel_width`](crate::Arch::channel_width) wires;
/// its *utilisation* is `occupancy / channel_width` — exactly the quantity
/// the paper's heat map colourises.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ChannelId {
    /// Horizontal segment above tile `(x, y)`.
    Horizontal {
        /// Tile x coordinate.
        x: usize,
        /// Tile y coordinate.
        y: usize,
    },
    /// Vertical segment right of tile `(x, y)`.
    Vertical {
        /// Tile x coordinate.
        x: usize,
        /// Tile y coordinate.
        y: usize,
    },
}

impl ChannelId {
    /// The segment's orientation.
    pub fn orientation(&self) -> ChannelOrientation {
        match self {
            ChannelId::Horizontal { .. } => ChannelOrientation::Horizontal,
            ChannelId::Vertical { .. } => ChannelOrientation::Vertical,
        }
    }

    /// Midpoint of the segment in continuous tile coordinates (for
    /// rasterisation and for distance-based routing heuristics).
    pub fn midpoint(&self) -> (f32, f32) {
        match *self {
            ChannelId::Horizontal { x, y } => (x as f32 + 0.5, y as f32 + 1.0),
            ChannelId::Vertical { x, y } => (x as f32 + 1.0, y as f32 + 0.5),
        }
    }
}

impl fmt::Display for ChannelId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ChannelId::Horizontal { x, y } => write!(f, "chanx({x},{y})"),
            ChannelId::Vertical { x, y } => write!(f, "chany({x},{y})"),
        }
    }
}

/// Iterator over all channel segments of a grid, horizontal first; created
/// by [`Arch::channels`](crate::Arch::channels).
#[derive(Debug, Clone)]
pub struct ChannelIter {
    width: usize,
    height: usize,
    pos: usize,
}

impl ChannelIter {
    pub(crate) fn new(width: usize, height: usize) -> Self {
        ChannelIter {
            width,
            height,
            pos: 0,
        }
    }

    fn horiz_count(&self) -> usize {
        (self.width - 2) * (self.height - 1)
    }

    fn total(&self) -> usize {
        self.horiz_count() + (self.width - 1) * (self.height - 2)
    }
}

impl Iterator for ChannelIter {
    type Item = ChannelId;

    fn next(&mut self) -> Option<ChannelId> {
        if self.pos >= self.total() {
            return None;
        }
        let i = self.pos;
        self.pos += 1;
        let hc = self.horiz_count();
        Some(if i < hc {
            let row = i / (self.width - 2);
            let col = i % (self.width - 2);
            ChannelId::Horizontal { x: col + 1, y: row }
        } else {
            let j = i - hc;
            let row = j / (self.width - 1);
            let col = j % (self.width - 1);
            ChannelId::Vertical { x: col, y: row + 1 }
        })
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let left = self.total() - self.pos;
        (left, Some(left))
    }
}

impl ExactSizeIterator for ChannelIter {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn iter_yields_exact_count() {
        let it = ChannelIter::new(10, 10);
        let expected = 8 * 9 + 9 * 8;
        assert_eq!(it.len(), expected);
        assert_eq!(it.count(), expected);
    }

    #[test]
    fn horizontal_segments_come_first_and_in_bounds() {
        let (w, h) = (6, 5);
        let mut seen_vertical = false;
        for ch in ChannelIter::new(w, h) {
            match ch {
                ChannelId::Horizontal { x, y } => {
                    assert!(!seen_vertical, "horizontal after vertical");
                    assert!((1..w - 1).contains(&x));
                    assert!(y < h - 1);
                }
                ChannelId::Vertical { x, y } => {
                    seen_vertical = true;
                    assert!(x < w - 1);
                    assert!((1..h - 1).contains(&y));
                }
            }
        }
        assert!(seen_vertical);
    }

    #[test]
    fn midpoints_sit_between_tiles() {
        assert_eq!(ChannelId::Horizontal { x: 2, y: 3 }.midpoint(), (2.5, 4.0));
        assert_eq!(ChannelId::Vertical { x: 2, y: 3 }.midpoint(), (3.0, 3.5));
    }

    #[test]
    fn display_formats() {
        assert_eq!(
            ChannelId::Horizontal { x: 1, y: 0 }.to_string(),
            "chanx(1,0)"
        );
        assert_eq!(ChannelId::Vertical { x: 0, y: 1 }.to_string(), "chany(0,1)");
    }
}
