use std::error::Error;
use std::fmt;

/// Errors produced while constructing or querying an [`Arch`](crate::Arch).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ArchError {
    /// The requested interior dimensions are too small to form a grid
    /// (at least one interior tile is required in each direction).
    GridTooSmall {
        /// Requested interior width in tiles.
        width: usize,
        /// Requested interior height in tiles.
        height: usize,
    },
    /// Channel width must be non-zero; a zero-width channel cannot carry nets.
    ZeroChannelWidth,
    /// I/O pad capacity must be non-zero.
    ZeroIoCapacity,
    /// A special-column height does not divide into the interior height,
    /// or is zero.
    BadBlockHeight {
        /// Offending block height in tiles.
        height: usize,
    },
    /// A coordinate lies outside the grid.
    OutOfBounds {
        /// Queried x coordinate.
        x: usize,
        /// Queried y coordinate.
        y: usize,
        /// Grid width in tiles.
        width: usize,
        /// Grid height in tiles.
        height: usize,
    },
}

impl fmt::Display for ArchError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ArchError::GridTooSmall { width, height } => {
                write!(f, "interior grid {width}x{height} is too small")
            }
            ArchError::ZeroChannelWidth => write!(f, "channel width must be non-zero"),
            ArchError::ZeroIoCapacity => write!(f, "io capacity must be non-zero"),
            ArchError::BadBlockHeight { height } => {
                write!(f, "block height {height} is invalid for this grid")
            }
            ArchError::OutOfBounds {
                x,
                y,
                width,
                height,
            } => write!(f, "tile ({x}, {y}) outside {width}x{height} grid"),
        }
    }
}

impl Error for ArchError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_lowercase_and_concise() {
        let e = ArchError::GridTooSmall {
            width: 0,
            height: 3,
        };
        let msg = e.to_string();
        assert!(msg.starts_with("interior grid"));
        assert!(!msg.ends_with('.'));
    }

    #[test]
    fn errors_are_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<ArchError>();
    }
}
