use crate::channel::{ChannelId, ChannelIter};
use crate::error::ArchError;
use crate::site::{Site, SiteId, SiteKind};

/// What occupies a full interior column of the grid.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ColumnKind {
    /// Column of 1×1 CLB sites.
    Clb,
    /// Column of block-RAM sites (each `mem_height` tiles tall).
    Memory,
    /// Column of multiplier sites (each `mult_height` tiles tall).
    Multiplier,
}

/// The kind of tile at a grid coordinate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TileKind {
    /// One of the four unusable corner tiles.
    Corner,
    /// A perimeter I/O pad tile (holds [`Arch::io_capacity`] ports).
    Io,
    /// An interior CLB tile.
    Clb,
    /// An interior memory tile (part of a possibly-taller memory site).
    Memory,
    /// An interior multiplier tile (part of a possibly-taller site).
    Multiplier,
}

/// Immutable description of the FPGA fabric: grid geometry, column pattern,
/// I/O capacity and routing channel width.
///
/// Construct with [`Arch::builder`]. The grid is `width() × height()` tiles
/// where the outermost ring is I/O (corners unusable) and the interior
/// follows a repeating column pattern of CLB / memory / multiplier columns,
/// mirroring the VTR flagship architecture drawn in Figure 2 of the paper.
///
/// # Example
///
/// ```
/// use pop_arch::{Arch, SiteKind};
///
/// let arch = Arch::builder().interior(8, 8).build()?;
/// let clbs = arch
///     .sites()
///     .iter()
///     .filter(|s| s.kind == SiteKind::Clb)
///     .count();
/// assert_eq!(clbs, arch.clb_capacity());
/// # Ok::<(), pop_arch::ArchError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Arch {
    width: usize,
    height: usize,
    channel_width: usize,
    io_capacity: usize,
    mem_period: Option<usize>,
    mem_offset: usize,
    mem_height: usize,
    mult_period: Option<usize>,
    mult_offset: usize,
    mult_height: usize,
    sites: Vec<Site>,
    /// Capacity per site kind, in the order io / clb / memory / multiplier.
    capacity: [usize; 4],
}

/// Builder for [`Arch`]; see [`Arch::builder`].
#[derive(Debug, Clone)]
pub struct ArchBuilder {
    interior_w: usize,
    interior_h: usize,
    channel_width: usize,
    io_capacity: usize,
    mem_period: Option<usize>,
    mem_offset: usize,
    mem_height: usize,
    mult_period: Option<usize>,
    mult_offset: usize,
    mult_height: usize,
}

impl Default for ArchBuilder {
    fn default() -> Self {
        ArchBuilder {
            interior_w: 8,
            interior_h: 8,
            channel_width: 16,
            io_capacity: 8,
            mem_period: Some(8),
            mem_offset: 2,
            mem_height: 4,
            mult_period: Some(8),
            mult_offset: 6,
            mult_height: 2,
        }
    }
}

impl ArchBuilder {
    /// Sets the interior (non-I/O) grid dimensions in tiles.
    pub fn interior(&mut self, w: usize, h: usize) -> &mut Self {
        self.interior_w = w;
        self.interior_h = h;
        self
    }

    /// Sets the routing channel width factor `W` (wires per channel segment).
    pub fn channel_width(&mut self, w: usize) -> &mut Self {
        self.channel_width = w;
        self
    }

    /// Sets how many I/O ports share one perimeter pad tile (paper: 8).
    pub fn io_capacity(&mut self, cap: usize) -> &mut Self {
        self.io_capacity = cap;
        self
    }

    /// Places a memory column at every `period`-th interior column starting
    /// at `offset` (1-based interior index); `None` disables memory columns.
    pub fn memory_columns(&mut self, period: Option<usize>, offset: usize) -> &mut Self {
        self.mem_period = period;
        self.mem_offset = offset;
        self
    }

    /// Places a multiplier column at every `period`-th interior column
    /// starting at `offset`; `None` disables multiplier columns.
    pub fn multiplier_columns(&mut self, period: Option<usize>, offset: usize) -> &mut Self {
        self.mult_period = period;
        self.mult_offset = offset;
        self
    }

    /// Sets the height in tiles of one memory site.
    pub fn memory_height(&mut self, h: usize) -> &mut Self {
        self.mem_height = h;
        self
    }

    /// Sets the height in tiles of one multiplier site.
    pub fn multiplier_height(&mut self, h: usize) -> &mut Self {
        self.mult_height = h;
        self
    }

    /// Builds the [`Arch`].
    ///
    /// # Errors
    ///
    /// Returns [`ArchError::GridTooSmall`] for degenerate interiors,
    /// [`ArchError::ZeroChannelWidth`] / [`ArchError::ZeroIoCapacity`] for
    /// zero parameters and [`ArchError::BadBlockHeight`] when a special
    /// block height is zero or exceeds the interior height.
    pub fn build(&self) -> Result<Arch, ArchError> {
        if self.interior_w < 1 || self.interior_h < 1 {
            return Err(ArchError::GridTooSmall {
                width: self.interior_w,
                height: self.interior_h,
            });
        }
        if self.channel_width == 0 {
            return Err(ArchError::ZeroChannelWidth);
        }
        if self.io_capacity == 0 {
            return Err(ArchError::ZeroIoCapacity);
        }
        for h in [self.mem_height, self.mult_height] {
            if h == 0 || h > self.interior_h {
                return Err(ArchError::BadBlockHeight { height: h });
            }
        }

        let mut arch = Arch {
            width: self.interior_w + 2,
            height: self.interior_h + 2,
            channel_width: self.channel_width,
            io_capacity: self.io_capacity,
            mem_period: self.mem_period,
            mem_offset: self.mem_offset,
            mem_height: self.mem_height,
            mult_period: self.mult_period,
            mult_offset: self.mult_offset,
            mult_height: self.mult_height,
            sites: Vec::new(),
            capacity: [0; 4],
        };
        arch.enumerate_sites();
        Ok(arch)
    }
}

impl Arch {
    /// Starts building an architecture with VTR-flagship-like defaults
    /// (8×8 interior, channel width 16, 8 I/O ports per pad, a memory column
    /// and a multiplier column per 8 interior columns).
    pub fn builder() -> ArchBuilder {
        ArchBuilder::default()
    }

    /// The small fabric drawn in the paper's Figure 2: an 8×8 interior
    /// surrounded by I/O pads with eight ports each, CLBs in interior
    /// columns 1, 3, 4, 5, 7 and 8, one memory column and one multiplier
    /// column.
    ///
    /// ```
    /// use pop_arch::{Arch, ColumnKind};
    ///
    /// let arch = Arch::paper_example();
    /// assert_eq!(arch.column_kind(2), Some(ColumnKind::Memory));
    /// assert_eq!(arch.column_kind(6), Some(ColumnKind::Multiplier));
    /// assert_eq!(arch.io_capacity(), 8);
    /// ```
    pub fn paper_example() -> Arch {
        Arch::builder()
            .interior(8, 8)
            .io_capacity(8)
            .channel_width(34) // "routing succeeded with a channel width factor of 34"
            .build()
            .expect("the Figure 2 fabric is always valid")
    }

    /// Builds the smallest architecture (with the default column pattern)
    /// whose capacities fit the given block counts with `slack` headroom
    /// (e.g. `1.2` for 20 % spare sites, mirroring VPR's auto-sizing).
    ///
    /// # Errors
    ///
    /// Propagates builder errors; counts that cannot fit any grid up to
    /// 512×512 interior yield [`ArchError::GridTooSmall`].
    pub fn auto_size(
        clbs: usize,
        ios: usize,
        mems: usize,
        mults: usize,
        channel_width: usize,
        slack: f64,
    ) -> Result<Arch, ArchError> {
        Arch::auto_size_with_aspect(clbs, ios, mems, mults, channel_width, slack, 1.0)
    }

    /// [`Arch::auto_size`] with a target interior aspect ratio
    /// `width / height`. `aspect = 1.0` reproduces `auto_size` exactly
    /// (square interiors); `aspect = 2.0` searches interiors roughly twice
    /// as wide as tall. Used by scenario generation to widen the placement
    /// distribution beyond square fabrics.
    ///
    /// # Panics
    ///
    /// Panics when `aspect` is not a positive finite number.
    pub fn auto_size_with_aspect(
        clbs: usize,
        ios: usize,
        mems: usize,
        mults: usize,
        channel_width: usize,
        slack: f64,
        aspect: f64,
    ) -> Result<Arch, ArchError> {
        assert!(
            aspect.is_finite() && aspect > 0.0,
            "aspect ratio must be positive and finite"
        );
        let need = |cap: usize, n: usize| cap as f64 >= (n as f64 * slack).ceil();
        let sqrt_aspect = aspect.sqrt();
        for side in 4..=512usize {
            let w = (((side as f64) * sqrt_aspect).round() as usize).clamp(4, 512);
            let h = (((side as f64) / sqrt_aspect).round() as usize).clamp(4, 512);
            let mut b = Arch::builder();
            b.interior(w, h).channel_width(channel_width);
            if mems == 0 {
                b.memory_columns(None, 2);
            }
            if mults == 0 {
                b.multiplier_columns(None, 6);
            }
            let arch = b.build()?;
            if need(arch.clb_capacity(), clbs)
                && need(arch.io_capacity_total(), ios)
                && need(arch.memory_capacity(), mems)
                && need(arch.multiplier_capacity(), mults)
            {
                return Ok(arch);
            }
        }
        Err(ArchError::GridTooSmall {
            width: 512,
            height: 512,
        })
    }

    /// Total grid width in tiles (interior + 2 I/O columns).
    #[inline]
    pub fn width(&self) -> usize {
        self.width
    }

    /// Total grid height in tiles (interior + 2 I/O rows).
    #[inline]
    pub fn height(&self) -> usize {
        self.height
    }

    /// Routing channel width factor `W`.
    #[inline]
    pub fn channel_width(&self) -> usize {
        self.channel_width
    }

    /// I/O ports per perimeter pad tile.
    #[inline]
    pub fn io_capacity(&self) -> usize {
        self.io_capacity
    }

    /// The kind of interior column `x` (grid coordinate), if `x` is interior.
    pub fn column_kind(&self, x: usize) -> Option<ColumnKind> {
        if x == 0 || x >= self.width - 1 {
            return None;
        }
        let interior_idx = x; // interior columns are 1-based in grid coords
        if let Some(p) = self.mem_period {
            if p > 0 && interior_idx % p == self.mem_offset % p {
                return Some(ColumnKind::Memory);
            }
        }
        if let Some(p) = self.mult_period {
            if p > 0 && interior_idx % p == self.mult_offset % p {
                return Some(ColumnKind::Multiplier);
            }
        }
        Some(ColumnKind::Clb)
    }

    /// The kind of tile at `(x, y)`.
    ///
    /// # Panics
    ///
    /// Panics if `(x, y)` is outside the grid; use [`Arch::tile_kind_checked`]
    /// for fallible lookup.
    pub fn tile_kind(&self, x: usize, y: usize) -> TileKind {
        self.tile_kind_checked(x, y)
            .unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible version of [`Arch::tile_kind`].
    ///
    /// # Errors
    ///
    /// Returns [`ArchError::OutOfBounds`] when the coordinate is outside the
    /// grid.
    pub fn tile_kind_checked(&self, x: usize, y: usize) -> Result<TileKind, ArchError> {
        if x >= self.width || y >= self.height {
            return Err(ArchError::OutOfBounds {
                x,
                y,
                width: self.width,
                height: self.height,
            });
        }
        let on_x_edge = x == 0 || x == self.width - 1;
        let on_y_edge = y == 0 || y == self.height - 1;
        Ok(match (on_x_edge, on_y_edge) {
            (true, true) => TileKind::Corner,
            (true, false) | (false, true) => TileKind::Io,
            (false, false) => match self.column_kind(x).expect("interior column") {
                ColumnKind::Clb => TileKind::Clb,
                ColumnKind::Memory => TileKind::Memory,
                ColumnKind::Multiplier => TileKind::Multiplier,
            },
        })
    }

    /// All placement sites in deterministic order (I/O ring clockwise from
    /// the west edge, then interior columns left-to-right bottom-to-top).
    /// [`SiteId`]s index into this slice.
    #[inline]
    pub fn sites(&self) -> &[Site] {
        &self.sites
    }

    /// Looks up a site by id.
    #[inline]
    pub fn site(&self, id: SiteId) -> &Site {
        &self.sites[id.index()]
    }

    /// Number of CLB sites.
    pub fn clb_capacity(&self) -> usize {
        self.capacity[1]
    }

    /// Number of I/O ports over the whole perimeter.
    pub fn io_capacity_total(&self) -> usize {
        self.capacity[0]
    }

    /// Number of memory sites.
    pub fn memory_capacity(&self) -> usize {
        self.capacity[2]
    }

    /// Number of multiplier sites.
    pub fn multiplier_capacity(&self) -> usize {
        self.capacity[3]
    }

    /// Capacity for a given site kind.
    pub fn capacity(&self, kind: SiteKind) -> usize {
        match kind {
            SiteKind::Io => self.capacity[0],
            SiteKind::Clb => self.capacity[1],
            SiteKind::Memory => self.capacity[2],
            SiteKind::Multiplier => self.capacity[3],
        }
    }

    /// Iterates over every routing channel segment of the fabric.
    ///
    /// Horizontal segments `(x, y)` run along the top edge of tile `(x, y)`
    /// for `x in 1..width-1, y in 0..height-1`; vertical segments run along
    /// the right edge of tile `(x, y)` for `x in 0..width-1, y in 1..height-1`
    /// (the VPR `chanx`/`chany` convention).
    pub fn channels(&self) -> ChannelIter {
        ChannelIter::new(self.width, self.height)
    }

    /// Number of channel segments (size of the congestion map).
    pub fn channel_count(&self) -> usize {
        let horiz = (self.width - 2) * (self.height - 1);
        let vert = (self.width - 1) * (self.height - 2);
        horiz + vert
    }

    /// Dense index of a channel segment in `0..channel_count()`, used by the
    /// router's occupancy vectors and the congestion map.
    pub fn channel_index(&self, id: ChannelId) -> usize {
        match id {
            ChannelId::Horizontal { x, y } => {
                debug_assert!((1..self.width - 1).contains(&x) && y < self.height - 1);
                (y * (self.width - 2)) + (x - 1)
            }
            ChannelId::Vertical { x, y } => {
                let horiz = (self.width - 2) * (self.height - 1);
                debug_assert!(x < self.width - 1 && (1..self.height - 1).contains(&y));
                horiz + (y - 1) * (self.width - 1) + x
            }
        }
    }

    fn enumerate_sites(&mut self) {
        let mut sites = Vec::new();
        let mut cap = [0usize; 4];
        let push = |sites: &mut Vec<Site>,
                    kind: SiteKind,
                    x: usize,
                    y: usize,
                    subtile: usize,
                    height: usize| {
            let id = SiteId(sites.len() as u32);
            sites.push(Site {
                id,
                kind,
                x,
                y,
                subtile,
                height,
            });
        };

        // I/O ring: west, north, east, south edges (corners excluded).
        let (w, h) = (self.width, self.height);
        let mut io_tiles = Vec::new();
        for y in 1..h - 1 {
            io_tiles.push((0, y));
        }
        for x in 1..w - 1 {
            io_tiles.push((x, h - 1));
        }
        for y in (1..h - 1).rev() {
            io_tiles.push((w - 1, y));
        }
        for x in (1..w - 1).rev() {
            io_tiles.push((x, 0));
        }
        for (x, y) in io_tiles {
            for port in 0..self.io_capacity {
                push(&mut sites, SiteKind::Io, x, y, port, 1);
                cap[0] += 1;
            }
        }

        // Interior columns.
        for x in 1..w - 1 {
            match self.column_kind(x).expect("interior") {
                ColumnKind::Clb => {
                    for y in 1..h - 1 {
                        push(&mut sites, SiteKind::Clb, x, y, 0, 1);
                        cap[1] += 1;
                    }
                }
                ColumnKind::Memory => {
                    let mut y = 1;
                    while y + self.mem_height < h {
                        push(&mut sites, SiteKind::Memory, x, y, 0, self.mem_height);
                        cap[2] += 1;
                        y += self.mem_height;
                    }
                }
                ColumnKind::Multiplier => {
                    let mut y = 1;
                    while y + self.mult_height < h {
                        push(&mut sites, SiteKind::Multiplier, x, y, 0, self.mult_height);
                        cap[3] += 1;
                        y += self.mult_height;
                    }
                }
            }
        }

        self.sites = sites;
        self.capacity = cap;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> Arch {
        Arch::builder().interior(8, 8).build().unwrap()
    }

    #[test]
    fn default_grid_dimensions() {
        let a = small();
        assert_eq!(a.width(), 10);
        assert_eq!(a.height(), 10);
    }

    #[test]
    fn corners_and_edges() {
        let a = small();
        assert_eq!(a.tile_kind(0, 0), TileKind::Corner);
        assert_eq!(a.tile_kind(9, 9), TileKind::Corner);
        assert_eq!(a.tile_kind(0, 5), TileKind::Io);
        assert_eq!(a.tile_kind(5, 0), TileKind::Io);
        assert_eq!(a.tile_kind(9, 3), TileKind::Io);
    }

    #[test]
    fn column_pattern_matches_paper_figure() {
        // Default: memory at interior column 2, multiplier at interior
        // column 6 (grid x = 2 and 6), everything else CLB.
        let a = small();
        assert_eq!(a.column_kind(2), Some(ColumnKind::Memory));
        assert_eq!(a.column_kind(6), Some(ColumnKind::Multiplier));
        for x in [1, 3, 4, 5, 7, 8] {
            assert_eq!(a.column_kind(x), Some(ColumnKind::Clb), "col {x}");
        }
        assert_eq!(a.column_kind(0), None);
        assert_eq!(a.column_kind(9), None);
    }

    #[test]
    fn capacities_are_consistent_with_sites() {
        let a = small();
        let count = |k: SiteKind| a.sites().iter().filter(|s| s.kind == k).count();
        assert_eq!(a.clb_capacity(), count(SiteKind::Clb));
        assert_eq!(a.io_capacity_total(), count(SiteKind::Io));
        assert_eq!(a.memory_capacity(), count(SiteKind::Memory));
        assert_eq!(a.multiplier_capacity(), count(SiteKind::Multiplier));
        // 6 CLB columns x 8 rows.
        assert_eq!(a.clb_capacity(), 48);
        // 8 IO tiles per edge x 4 edges x 8 ports.
        assert_eq!(a.io_capacity_total(), 8 * 4 * 8);
        // one memory column, height 4 => 2 sites.
        assert_eq!(a.memory_capacity(), 2);
        // one multiplier column, height 2 => 4 sites.
        assert_eq!(a.multiplier_capacity(), 4);
    }

    #[test]
    fn site_ids_are_dense_and_ordered() {
        let a = small();
        for (i, s) in a.sites().iter().enumerate() {
            assert_eq!(s.id.index(), i);
            assert_eq!(a.site(s.id), s);
        }
    }

    #[test]
    fn channel_indices_are_a_bijection() {
        let a = small();
        let mut seen = vec![false; a.channel_count()];
        for ch in a.channels() {
            let idx = a.channel_index(ch);
            assert!(idx < a.channel_count(), "{ch:?} -> {idx}");
            assert!(!seen[idx], "duplicate index {idx} for {ch:?}");
            seen[idx] = true;
        }
        assert!(seen.iter().all(|&b| b), "all indices covered");
    }

    #[test]
    fn auto_size_fits_counts() {
        let a = Arch::auto_size(100, 30, 2, 2, 16, 1.2).unwrap();
        assert!(a.clb_capacity() as f64 >= 120.0);
        assert!(a.io_capacity_total() >= 36);
        assert!(a.memory_capacity() >= 2);
        assert!(a.multiplier_capacity() >= 2);
    }

    #[test]
    fn auto_size_with_aspect_widens_the_interior() {
        // aspect 1.0 is exactly auto_size.
        let square = Arch::auto_size(100, 30, 2, 2, 16, 1.2).unwrap();
        let same = Arch::auto_size_with_aspect(100, 30, 2, 2, 16, 1.2, 1.0).unwrap();
        assert_eq!(square, same);
        // A 4:1 aspect produces a clearly wider-than-tall fabric that still
        // fits the demand.
        let wide = Arch::auto_size_with_aspect(100, 30, 2, 2, 16, 1.2, 4.0).unwrap();
        assert!(
            wide.width() > wide.height(),
            "{}x{}",
            wide.width(),
            wide.height()
        );
        assert!(wide.clb_capacity() as f64 >= 120.0);
        assert!(wide.io_capacity_total() >= 36);
    }

    #[test]
    #[should_panic(expected = "aspect ratio")]
    fn auto_size_rejects_nonpositive_aspect() {
        let _ = Arch::auto_size_with_aspect(10, 4, 0, 0, 8, 1.2, 0.0);
    }

    #[test]
    fn auto_size_without_special_blocks() {
        let a = Arch::auto_size(10, 4, 0, 0, 8, 1.2).unwrap();
        assert_eq!(a.memory_capacity(), 0);
        assert_eq!(a.multiplier_capacity(), 0);
        assert!(a.clb_capacity() >= 12);
    }

    #[test]
    fn builder_rejects_bad_params() {
        assert!(matches!(
            Arch::builder().interior(0, 5).build(),
            Err(ArchError::GridTooSmall { .. })
        ));
        assert!(matches!(
            Arch::builder().channel_width(0).build(),
            Err(ArchError::ZeroChannelWidth)
        ));
        assert!(matches!(
            Arch::builder().io_capacity(0).build(),
            Err(ArchError::ZeroIoCapacity)
        ));
        assert!(matches!(
            Arch::builder().memory_height(0).build(),
            Err(ArchError::BadBlockHeight { .. })
        ));
    }

    #[test]
    fn tile_kind_checked_out_of_bounds() {
        let a = small();
        assert!(matches!(
            a.tile_kind_checked(100, 0),
            Err(ArchError::OutOfBounds { .. })
        ));
    }
}
