use pop_core::CoreError;
use pop_pipeline::PipelineError;
use std::error::Error;
use std::fmt;

/// Errors produced by the evaluation harness.
#[derive(Debug)]
pub enum EvalError {
    /// The matrix specification is internally inconsistent (no scenarios,
    /// duplicate names, mixed resolutions, zero replicates, …).
    BadSpec(String),
    /// Corpus generation / scenario expansion failed.
    Pipeline(PipelineError),
    /// Model construction, training or metric evaluation failed.
    Core(CoreError),
}

impl fmt::Display for EvalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EvalError::BadSpec(m) => write!(f, "bad matrix spec: {m}"),
            EvalError::Pipeline(e) => write!(f, "corpus generation failed: {e}"),
            EvalError::Core(e) => write!(f, "evaluation failed: {e}"),
        }
    }
}

impl Error for EvalError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            EvalError::BadSpec(_) => None,
            EvalError::Pipeline(e) => Some(e),
            EvalError::Core(e) => Some(e),
        }
    }
}

impl From<PipelineError> for EvalError {
    fn from(e: PipelineError) -> Self {
        EvalError::Pipeline(e)
    }
}

impl From<CoreError> for EvalError {
    fn from(e: CoreError) -> Self {
        EvalError::Core(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_names_the_failure_site() {
        assert!(EvalError::BadSpec("x".into()).to_string().contains("spec"));
        let p: EvalError = PipelineError::BadScenario("y".into()).into();
        assert!(p.to_string().contains("corpus"));
        let c: EvalError = CoreError::Eval("z".into()).into();
        assert!(c.to_string().contains("evaluation"));
    }
}
