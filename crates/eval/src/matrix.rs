//! The harness itself: train one model per scenario through the streaming
//! prefetch path, generate every scenario's held-out split through the
//! cache-aware pipeline, then score every `(model, split)` pairing on the
//! shared exec substrate.

use crate::error::EvalError;
use crate::report::{CellMetrics, CellStats, EvalMatrix};
use pop_core::baseline::rudy_pair_evals_cached;
use pop_core::dataset::{DesignDataset, Fnv1a, Pair};
use pop_core::metrics::PairEval;
use pop_core::{CoreError, EvalReport, ExclusiveForecaster, MetricSet, Pix2Pix};
use pop_exec::scoped_map;
use pop_pipeline::{
    generate_jobs_with_stats, DesignJob, EpochPrefetcher, GenStats, PipelineError, PipelineOptions,
    ScenarioSpec,
};
use std::sync::{Arc, Mutex};

/// Everything one cross-scenario evaluation run needs: the scenario axis
/// plus the training, splitting, replication and fan-out knobs.
#[derive(Debug, Clone)]
pub struct MatrixSpec {
    /// The scenario axis: one model is trained per entry, and every model
    /// is evaluated on every entry's held-out split. All scenarios must
    /// share one image resolution (cross-evaluation feeds one scenario's
    /// images to another scenario's model).
    pub scenarios: Vec<ScenarioSpec>,
    /// Streaming training epochs per model (each epoch re-places the
    /// scenario's designs with fresh seeds, via the epoch prefetcher).
    pub train_epochs: usize,
    /// Held-out placements per design variant in each eval split; their
    /// sweep seeds sit past every training epoch
    /// ([`ScenarioSpec::holdout_jobs`]).
    pub eval_pairs: usize,
    /// Seed replicates per cell: each replicate trains from a different
    /// model-init/trainer seed on the *same* (cached) corpus, and every
    /// cell reports mean ± 95 % CI over them.
    pub replicates: usize,
    /// Eval-split pairs used for strategy-2 fine-tuning (Table 2 Acc.2).
    pub finetune_pairs: usize,
    /// Fine-tuning epochs of strategy 2.
    pub finetune_epochs: usize,
    /// The metric policy every cell is scored with.
    pub metrics: MetricSet,
    /// Corpus-generation options; set a cache dir to make warm re-runs
    /// regenerate nothing (training epochs *and* eval splits).
    pub options: PipelineOptions,
    /// Worker threads the K×K×R cell evaluations fan out over.
    pub threads: usize,
    /// Base seed of the model-init/trainer replicate derivation.
    pub seed: u64,
    /// Whether to score the RUDY analytical baseline on every eval split.
    pub baseline: bool,
    /// U-Net base filter count override for every trained model (`None` =
    /// each scenario config's default). Model capacity is a harness-level
    /// knob: it never touches the data path, so cache fingerprints — and
    /// therefore warm corpora — are unaffected by sweeping it.
    pub model_filters: Option<usize>,
}

impl MatrixSpec {
    /// A spec over `scenarios` with harness defaults: 2 training epochs,
    /// 4 eval pairs, 1 replicate, paper-style fine-tuning (2 pairs, 1
    /// epoch), default metrics/pipeline options, cell fan-out sized to
    /// the host.
    pub fn new(scenarios: Vec<ScenarioSpec>) -> Self {
        let parallelism = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        MatrixSpec {
            scenarios,
            train_epochs: 2,
            eval_pairs: 4,
            replicates: 1,
            finetune_pairs: 2,
            finetune_epochs: 1,
            metrics: MetricSet::default(),
            options: PipelineOptions::default(),
            threads: parallelism.min(8),
            seed: 7,
            baseline: true,
            model_filters: None,
        }
    }

    /// Checks internal consistency: at least one scenario, unique names,
    /// every scenario valid, one shared resolution, positive epoch / pair
    /// / replicate counts.
    ///
    /// # Errors
    ///
    /// Returns [`EvalError::BadSpec`] naming the first problem, or
    /// [`EvalError::Pipeline`] for an invalid scenario.
    pub fn validate(&self) -> Result<(), EvalError> {
        let bad = |m: String| Err(EvalError::BadSpec(m));
        if self.scenarios.is_empty() {
            return bad("at least one scenario is required".into());
        }
        let mut names: Vec<&str> = self.scenarios.iter().map(|s| s.name.as_str()).collect();
        names.sort_unstable();
        if names.windows(2).any(|w| w[0] == w[1]) {
            return bad("scenario names must be unique (they index the matrix)".into());
        }
        for s in &self.scenarios {
            s.validate()?;
        }
        let resolution = self.scenarios[0].resolution;
        if let Some(odd) = self.scenarios.iter().find(|s| s.resolution != resolution) {
            return bad(format!(
                "all scenarios must share one resolution for cross-evaluation \
                 ({} is {}x{}, {} is {}x{})",
                self.scenarios[0].name,
                resolution,
                resolution,
                odd.name,
                odd.resolution,
                odd.resolution
            ));
        }
        if self.train_epochs == 0 {
            return bad("train_epochs must be positive".into());
        }
        if self.eval_pairs == 0 {
            return bad("eval_pairs must be positive".into());
        }
        if self.replicates == 0 {
            return bad("replicates must be positive".into());
        }
        Ok(())
    }
}

/// Replicate `r`'s model-init/trainer seed (FNV-mixed so replicates are
/// decorrelated, deterministic in `(base, r)`).
fn model_seed(base: u64, replicate: usize) -> u64 {
    let mut h = Fnv1a::new();
    h.eat(base);
    h.eat(replicate as u64);
    h.finish()
}

/// Trains every replicate's model on one scenario. Replicate 0 streams
/// through the epoch prefetcher (epoch `N + 1` generates — through the
/// cache-aware pipeline, counters folded into `stats` — while epoch `N`
/// trains) and, with more replicates requested, buffers each epoch as it
/// passes; replicates `1..R` then replay the buffered corpus. Replicates
/// vary only the model/trainer seed, so the corpus is generated **once**
/// per scenario whatever the replicate count — cache dir or not.
fn train_replicates(
    scenario: &ScenarioSpec,
    spec: &MatrixSpec,
    stats: &Arc<Mutex<GenStats>>,
) -> Result<Vec<Pix2Pix>, EvalError> {
    let mut config = scenario.config();
    if let Some(filters) = spec.model_filters {
        config.base_filters = filters;
    }
    let mut replicas = Vec::with_capacity(spec.replicates);
    let mut model = Pix2Pix::new(&config, model_seed(spec.seed, 0))?;
    let prefetcher = EpochPrefetcher::start_observed(
        vec![scenario.clone()],
        spec.options.clone(),
        spec.train_epochs,
        1,
        Arc::clone(stats),
    );
    let mut gen_error: Option<PipelineError> = None;
    let mut buffered: Vec<Vec<Pair>> = Vec::new();
    let buffer = spec.replicates > 1;
    let _ = model.train_stream(prefetcher.map_while(|r| match r {
        Ok(pairs) => {
            if buffer {
                buffered.push(pairs.clone());
            }
            Some(pairs)
        }
        Err(e) => {
            gen_error = Some(e);
            None
        }
    }));
    if let Some(e) = gen_error {
        return Err(EvalError::Pipeline(e));
    }
    replicas.push(model);
    for r in 1..spec.replicates {
        let mut model = Pix2Pix::new(&config, model_seed(spec.seed, r))?;
        let _ = model.train_stream(buffered.iter().cloned());
        replicas.push(model);
    }
    Ok(replicas)
}

/// One batched inference sweep of `model` over a scenario's eval split
/// (one [`MetricSet::evaluate_pairs`] call per variant dataset — each
/// variant may calibrate its own fabric — concatenated into one record
/// stream).
fn sweep(
    model: &mut Pix2Pix,
    sets: &[DesignDataset],
    metrics: &MetricSet,
) -> Result<Vec<PairEval>, CoreError> {
    let forecaster = ExclusiveForecaster::new(model);
    let mut out = Vec::new();
    for ds in sets {
        out.extend(metrics.evaluate_pairs(
            &forecaster,
            &ds.pairs,
            ds.grid_width,
            ds.grid_height,
        )?);
    }
    Ok(out)
}

/// Scores one `(trained model, eval split)` cell: strategy 1 (as-trained)
/// and strategy 2 (fine-tuned on the split's first pairs), each a single
/// batched inference sweep feeding every metric.
fn evaluate_cell(
    model: &Pix2Pix,
    eval_sets: &[DesignDataset],
    spec: &MatrixSpec,
) -> Result<CellMetrics, CoreError> {
    let total: usize = eval_sets.iter().map(|d| d.pairs.len()).sum();
    // Strategy 1: the as-trained model on the whole split.
    let mut base_model = model.clone();
    let base = spec
        .metrics
        .summarize(&sweep(&mut base_model, eval_sets, &spec.metrics)?);
    // Strategy 2: fine-tune on the split's first pairs, then ONE sweep
    // feeds Acc.2 (the remaining pairs) and the rank metrics (full split).
    let k = spec.finetune_pairs.min(total.saturating_sub(1));
    let finetune: Vec<Pair> = eval_sets
        .iter()
        .flat_map(|d| d.pairs.iter())
        .take(k)
        .cloned()
        .collect();
    let mut tuned = base_model;
    let _ = tuned.finetune(&finetune, spec.finetune_epochs);
    let evals = sweep(&mut tuned, eval_sets, &spec.metrics)?;
    let acc2 = spec.metrics.summarize(&evals[k..]).accuracy;
    let tuned_report = spec.metrics.summarize(&evals);
    Ok(CellMetrics {
        acc1: base.accuracy,
        acc2,
        chan_acc1: base.channel_accuracy,
        top: tuned_report.top_overlap,
        pearson: tuned_report.pearson,
        spearman: tuned_report.spearman,
        nrms: base.nrms,
    })
}

/// The RUDY analytical baseline over one scenario's eval split, scored
/// with the **same** [`MetricSet`] as the learned cells: RUDY's per-pair
/// records ([`rudy_pair_evals`]) are summarised exactly like a model's —
/// same accuracy tolerance (the harness's, not the generation config's),
/// same retrieval-set size, same rank correlations.
///
/// The replay re-anneals each eval placement (RUDY needs the placement
/// geometry, which the cached datasets do not store) — but only on a cold
/// split: with a cache dir configured the scored records themselves are
/// persisted per split fingerprint ([`rudy_pair_evals_cached`]), so a
/// warm run loads them from disk and re-anneals **nothing**.
fn rudy_baseline(
    jobs: &[DesignJob],
    sets: &[DesignDataset],
    metrics: &MetricSet,
    cache_dir: Option<&std::path::Path>,
) -> Result<EvalReport, CoreError> {
    let mut evals = Vec::new();
    for (job, ds) in jobs.iter().zip(sets) {
        let mut config = job.config.clone();
        config.tolerance = metrics.tolerance;
        let (mut pair_evals, _calibration) =
            rudy_pair_evals_cached(ds, &job.spec, &config, cache_dir)?;
        evals.append(&mut pair_evals);
    }
    Ok(metrics.summarize(&evals))
}

/// Runs the full cross-scenario experiment:
///
/// 1. generate every scenario's **held-out split** through the cache-aware
///    pipeline (warm runs regenerate nothing);
/// 2. train `replicates` models per scenario through the
///    [`EpochPrefetcher`] streaming path (generation counters observed);
/// 3. fan the `K×K×replicates` cell evaluations out over a
///    [`scoped_map`] worker pool — each cell is deterministic, and results
///    land by index, so the matrix is identical for every thread count;
/// 4. aggregate replicates into per-cell mean ± CI and score the RUDY
///    baseline per eval split.
///
/// # Errors
///
/// Propagates spec validation, generation, training and evaluation
/// failures.
pub fn evaluate_matrix(spec: &MatrixSpec) -> Result<EvalMatrix, EvalError> {
    spec.validate()?;
    let k = spec.scenarios.len();
    let stats = Arc::new(Mutex::new(GenStats::default()));

    // 1. Held-out splits (same designs, sweep seeds past every training
    // epoch; their jobs are kept for the RUDY sweep replay).
    let mut eval_jobs: Vec<Vec<DesignJob>> = Vec::with_capacity(k);
    let mut eval_sets: Vec<Vec<DesignDataset>> = Vec::with_capacity(k);
    for scenario in &spec.scenarios {
        let _span = pop_obs::span!("eval_holdout", scenario = &scenario.name);
        let jobs = scenario.holdout_jobs(spec.eval_pairs, spec.train_epochs)?;
        let (sets, gen) = generate_jobs_with_stats(jobs.clone(), &spec.options)?;
        stats.lock().expect("stats lock").absorb(gen);
        eval_jobs.push(jobs);
        eval_sets.push(sets);
    }

    // 2. Per-scenario models, one per replicate, trained while the next
    // epoch generates in the background; the corpus is generated once per
    // scenario and replayed for the other replicates.
    let mut models: Vec<Vec<Pix2Pix>> = Vec::with_capacity(k);
    for scenario in &spec.scenarios {
        let _span = pop_obs::span!("eval_train", scenario = &scenario.name);
        models.push(train_replicates(scenario, spec, &stats)?);
    }

    // 3. Cell fan-out: all (train, eval, replicate) triples, claimed by
    // the exec pool's workers, results in deterministic index order.
    let reps = spec.replicates;
    let cell_ids: Vec<(usize, usize, usize)> = (0..k)
        .flat_map(|i| (0..k).flat_map(move |j| (0..reps).map(move |r| (i, j, r))))
        .collect();
    let outcomes = scoped_map("pop-eval-cell", spec.threads.max(1), &cell_ids, |_, ids| {
        let (i, j, r) = *ids;
        let _span = pop_obs::span!("eval_cell", train = i, eval = j, replicate = r);
        evaluate_cell(&models[i][r], &eval_sets[j], spec)
    });
    let mut per_cell: Vec<Vec<CellMetrics>> = vec![Vec::with_capacity(reps); k * k];
    for ((i, j, _), outcome) in cell_ids.iter().zip(outcomes) {
        per_cell[i * k + j].push(outcome?);
    }
    let cells: Vec<Vec<CellStats>> = (0..k)
        .map(|i| {
            (0..k)
                .map(|j| CellStats::from_replicates(&per_cell[i * k + j]))
                .collect()
        })
        .collect();

    // 4. The analytical floor each diagonal cell should beat.
    let baseline: Vec<Option<EvalReport>> = if spec.baseline {
        eval_jobs
            .iter()
            .zip(&eval_sets)
            .map(|(jobs, sets)| {
                rudy_baseline(jobs, sets, &spec.metrics, spec.options.cache_dir.as_deref())
                    .map(Some)
            })
            .collect::<Result<_, CoreError>>()?
    } else {
        vec![None; k]
    };

    let corpus = *stats.lock().expect("stats lock");
    Ok(EvalMatrix {
        scenarios: spec.scenarios.iter().map(|s| s.name.clone()).collect(),
        resolution: spec.scenarios[0].resolution,
        train_epochs: spec.train_epochs,
        eval_pairs: spec.eval_pairs,
        replicates: spec.replicates,
        cells,
        baseline,
        corpus,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use pop_pipeline::scenario::by_name;

    fn tiny(name: &str, design: &str) -> ScenarioSpec {
        ScenarioSpec {
            name: name.into(),
            design: design.into(),
            pairs_per_design: 2,
            ..by_name("smoke").unwrap()
        }
    }

    #[test]
    fn validation_rejects_inconsistent_specs() {
        let ok = MatrixSpec::new(vec![tiny("a", "diffeq2"), tiny("b", "diffeq1")]);
        assert!(ok.validate().is_ok());
        for mutate in [
            |s: &mut MatrixSpec| s.scenarios.clear(),
            |s: &mut MatrixSpec| s.scenarios[1].name = "a".into(),
            |s: &mut MatrixSpec| s.scenarios[1].resolution = 32,
            |s: &mut MatrixSpec| s.scenarios[0].design = "nosuch".into(),
            |s: &mut MatrixSpec| s.train_epochs = 0,
            |s: &mut MatrixSpec| s.eval_pairs = 0,
            |s: &mut MatrixSpec| s.replicates = 0,
        ] {
            let mut bad = ok.clone();
            mutate(&mut bad);
            assert!(bad.validate().is_err());
        }
    }

    #[test]
    fn model_seeds_are_deterministic_and_distinct() {
        assert_eq!(model_seed(7, 0), model_seed(7, 0));
        assert_ne!(model_seed(7, 0), model_seed(7, 1));
        assert_ne!(model_seed(7, 0), model_seed(8, 0));
    }
}
