//! The results side of the harness: per-cell metric statistics, the K×K
//! matrix, the diagonal-vs-off-diagonal generalization gap and a
//! dependency-free JSON emitter for `BENCH_eval.json`.

use pop_core::EvalReport;
use pop_pipeline::GenStats;

/// The metric names of one matrix cell, in [`CellMetrics::to_array`]
/// order — the canonical key order of the JSON output.
pub const METRIC_NAMES: [&str; 7] = [
    "acc1",
    "acc2",
    "chan_acc1",
    "top",
    "pearson",
    "spearman",
    "nrms",
];

/// One cell's metrics (one train-scenario → eval-scenario pairing, one
/// replicate): the Table 2 quantities generalised across scenarios.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct CellMetrics {
    /// Per-pixel accuracy of the as-trained model on the eval split
    /// (Table 2 "Acc.1", strategy 1).
    pub acc1: f32,
    /// Per-pixel accuracy after fine-tuning on a few eval-split pairs,
    /// measured on the remaining pairs (Table 2 "Acc.2", strategy 2).
    pub acc2: f32,
    /// Strategy-1 accuracy over routing-channel pixels only — the
    /// like-for-like detail comparison against the RUDY baseline (whose
    /// full-image accuracy gets every block tile free).
    pub chan_acc1: f32,
    /// Top-k min-congestion retrieval overlap of the strategy-2 model
    /// over the full eval split (the paper computes Top10 the same way).
    pub top: f32,
    /// Pearson correlation of predicted vs routed congestion (strategy 2).
    pub pearson: f32,
    /// Spearman rank correlation (strategy 2).
    pub spearman: f32,
    /// NRMS pixel error of the as-trained model (lower is better — the
    /// one matrix metric where the generalization gap is negative).
    pub nrms: f32,
}

impl CellMetrics {
    /// The metrics in [`METRIC_NAMES`] order.
    pub fn to_array(self) -> [f32; 7] {
        [
            self.acc1,
            self.acc2,
            self.chan_acc1,
            self.top,
            self.pearson,
            self.spearman,
            self.nrms,
        ]
    }

    /// Rebuilds from [`METRIC_NAMES`] order.
    pub fn from_array(a: [f32; 7]) -> Self {
        CellMetrics {
            acc1: a[0],
            acc2: a[1],
            chan_acc1: a[2],
            top: a[3],
            pearson: a[4],
            spearman: a[5],
            nrms: a[6],
        }
    }

    /// Whether every metric is a finite number.
    pub fn is_finite(&self) -> bool {
        self.to_array().iter().all(|v| v.is_finite())
    }
}

/// Seed-replicated statistics of one matrix cell: the metric means and
/// their 95 % confidence half-widths (normal approximation,
/// `1.96·s/√n`; zero for a single replicate).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CellStats {
    /// Per-metric mean over the replicates.
    pub mean: CellMetrics,
    /// Per-metric 95 % confidence half-width over the replicates.
    pub ci95: CellMetrics,
    /// How many replicates the statistics summarise.
    pub replicates: usize,
}

impl CellStats {
    /// Aggregates one cell's replicate outcomes.
    ///
    /// # Panics
    ///
    /// Panics on an empty replicate slice (the harness always evaluates
    /// at least one replicate per cell).
    pub fn from_replicates(outcomes: &[CellMetrics]) -> Self {
        assert!(!outcomes.is_empty(), "a cell needs at least one replicate");
        let n = outcomes.len();
        let mut mean = [0.0f64; 7];
        for o in outcomes {
            for (m, v) in mean.iter_mut().zip(o.to_array()) {
                *m += v as f64;
            }
        }
        for m in &mut mean {
            *m /= n as f64;
        }
        let mut ci = [0.0f64; 7];
        if n > 1 {
            for o in outcomes {
                for ((c, m), v) in ci.iter_mut().zip(&mean).zip(o.to_array()) {
                    *c += (v as f64 - m).powi(2);
                }
            }
            for c in &mut ci {
                // Sample std dev → normal-approximation 95 % half-width.
                *c = 1.96 * (*c / (n - 1) as f64).sqrt() / (n as f64).sqrt();
            }
        }
        CellStats {
            mean: CellMetrics::from_array(mean.map(|v| v as f32)),
            ci95: CellMetrics::from_array(ci.map(|v| v as f32)),
            replicates: n,
        }
    }

    /// Whether both the means and the confidence widths are finite.
    pub fn is_finite(&self) -> bool {
        self.mean.is_finite() && self.ci95.is_finite()
    }
}

/// The K×K cross-scenario generalization matrix: every per-scenario model
/// scored against every scenario's held-out split, with seed-replicated
/// confidence intervals per cell.
#[derive(Debug, Clone, PartialEq)]
pub struct EvalMatrix {
    /// Scenario names, indexing both matrix axes (row = trained-on,
    /// column = evaluated-on).
    pub scenarios: Vec<String>,
    /// Image resolution shared by every scenario in the matrix.
    pub resolution: usize,
    /// Training epochs each model streamed through the prefetcher.
    pub train_epochs: usize,
    /// Held-out placements per design variant in each eval split.
    pub eval_pairs: usize,
    /// Seed replicates behind each cell's statistics.
    pub replicates: usize,
    /// `cells[i][j]` = model trained on scenario `i`, evaluated on
    /// scenario `j`'s held-out split.
    pub cells: Vec<Vec<CellStats>>,
    /// Per-eval-scenario RUDY baseline (`None` when disabled), scored
    /// with the *same* [`MetricSet`](pop_core::MetricSet) as the learned
    /// cells — same tolerance, same retrieval-set size, same rank
    /// correlations — so every comparison against it is like-for-like.
    /// Its `accuracy` is still structurally inflated (RUDY renders block
    /// tiles through the ground-truth pipeline); `channel_accuracy` and
    /// the rank metrics are the fair fields.
    pub baseline: Vec<Option<EvalReport>>,
    /// Accumulated generation counters over every training epoch and
    /// every hold-out split — [`GenStats::fully_warm`] on a warm re-run.
    pub corpus: GenStats,
}

impl EvalMatrix {
    /// Number of scenarios (the matrix is `k() × k()`).
    pub fn k(&self) -> usize {
        self.scenarios.len()
    }

    /// Per-metric mean over the diagonal cells (train = eval: the
    /// classic single-distribution Table 2 setting).
    pub fn diagonal_mean(&self) -> CellMetrics {
        self.mean_where(|i, j| i == j)
            .expect("a matrix always has a diagonal")
    }

    /// Per-metric mean over the off-diagonal cells (train ≠ eval: the
    /// distribution-shift setting); `None` for a 1×1 matrix.
    pub fn off_diagonal_mean(&self) -> Option<CellMetrics> {
        self.mean_where(|i, j| i != j)
    }

    /// The generalization gap: diagonal mean − off-diagonal mean, per
    /// metric. Positive for the accuracy/rank metrics means models score
    /// higher on their own distribution than on foreign ones (for `nrms`,
    /// lower is better, so in-distribution advantage shows as a
    /// *negative* gap). `None` for a 1×1 matrix.
    pub fn generalization_gap(&self) -> Option<CellMetrics> {
        let diag = self.diagonal_mean().to_array();
        let off = self.off_diagonal_mean()?.to_array();
        let mut gap = [0.0f32; 7];
        for ((g, d), o) in gap.iter_mut().zip(diag).zip(off) {
            *g = d - o;
        }
        Some(CellMetrics::from_array(gap))
    }

    fn mean_where(&self, select: impl Fn(usize, usize) -> bool) -> Option<CellMetrics> {
        let mut sum = [0.0f64; 7];
        let mut n = 0usize;
        for (i, row) in self.cells.iter().enumerate() {
            for (j, cell) in row.iter().enumerate() {
                if select(i, j) {
                    for (s, v) in sum.iter_mut().zip(cell.mean.to_array()) {
                        *s += v as f64;
                    }
                    n += 1;
                }
            }
        }
        (n > 0).then(|| CellMetrics::from_array(sum.map(|v| (v / n as f64) as f32)))
    }

    /// Whether the matrix is complete and NaN-free: `k×k` cells, every
    /// mean and confidence width finite — the invariant the CI smoke
    /// asserts before trusting any aggregate.
    pub fn is_complete(&self) -> bool {
        let k = self.k();
        self.cells.len() == k
            && self
                .cells
                .iter()
                .all(|row| row.len() == k && row.iter().all(CellStats::is_finite))
    }

    /// Serialises the matrix as the `BENCH_eval.json` document:
    /// scenario axis, per-cell `mean`/`ci95` per metric, the
    /// diagonal/off-diagonal aggregates with the generalization gap, the
    /// RUDY baselines and the corpus-generation counters. Deterministic
    /// formatting (fixed key order, six decimals), so identical matrices
    /// serialise byte-for-byte identically.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        out.push_str("  \"bench\": \"eval_matrix\",\n");
        out.push_str(&format!(
            "  \"scenarios\": [{}],\n",
            self.scenarios
                .iter()
                .map(|s| json_str(s))
                .collect::<Vec<_>>()
                .join(", ")
        ));
        out.push_str(&format!("  \"resolution\": {},\n", self.resolution));
        out.push_str(&format!("  \"train_epochs\": {},\n", self.train_epochs));
        out.push_str(&format!("  \"eval_pairs\": {},\n", self.eval_pairs));
        out.push_str(&format!("  \"replicates\": {},\n", self.replicates));
        out.push_str(&format!(
            "  \"corpus\": {{ \"jobs\": {}, \"cache_hits\": {}, \"place_stage_runs\": {}, \"route_stage_runs\": {} }},\n",
            self.corpus.jobs,
            self.corpus.cache_hits,
            self.corpus.place_stage_runs,
            self.corpus.route_stage_runs,
        ));
        out.push_str("  \"cells\": [\n");
        for (i, row) in self.cells.iter().enumerate() {
            for (j, cell) in row.iter().enumerate() {
                let mut fields = vec![
                    format!("\"train\": {}", json_str(&self.scenarios[i])),
                    format!("\"eval\": {}", json_str(&self.scenarios[j])),
                    format!("\"diagonal\": {}", i == j),
                ];
                let mean = cell.mean.to_array();
                let ci = cell.ci95.to_array();
                for ((name, m), c) in METRIC_NAMES.iter().zip(mean).zip(ci) {
                    fields.push(format!(
                        "\"{name}\": {{ \"mean\": {}, \"ci95\": {} }}",
                        json_num(m),
                        json_num(c)
                    ));
                }
                let last = i + 1 == self.cells.len() && j + 1 == row.len();
                out.push_str(&format!(
                    "    {{ {} }}{}\n",
                    fields.join(", "),
                    if last { "" } else { "," }
                ));
            }
        }
        out.push_str("  ],\n");
        out.push_str(&format!(
            "  \"diagonal\": {},\n",
            json_metrics(Some(self.diagonal_mean()))
        ));
        out.push_str(&format!(
            "  \"off_diagonal\": {},\n",
            json_metrics(self.off_diagonal_mean())
        ));
        out.push_str(&format!(
            "  \"generalization_gap\": {},\n",
            json_metrics(self.generalization_gap())
        ));
        out.push_str("  \"baseline_rudy\": [\n");
        for (j, b) in self.baseline.iter().enumerate() {
            let body = match b {
                Some(b) => format!(
                    "{{ \"scenario\": {}, \"accuracy\": {}, \"channel_accuracy\": {}, \
                     \"top\": {}, \"pearson\": {}, \"spearman\": {}, \"nrms\": {} }}",
                    json_str(&self.scenarios[j]),
                    json_num(b.accuracy),
                    json_num(b.channel_accuracy),
                    json_num(b.top_overlap),
                    json_num(b.pearson),
                    json_num(b.spearman),
                    json_num(b.nrms)
                ),
                None => "null".to_string(),
            };
            out.push_str(&format!(
                "    {body}{}\n",
                if j + 1 == self.baseline.len() {
                    ""
                } else {
                    ","
                }
            ));
        }
        out.push_str("  ]\n}\n");
        out
    }
}

/// A JSON string literal with the mandatory escapes (quotes, backslashes,
/// control characters) — scenario names are arbitrary caller strings, and
/// an unescaped quote would make the whole document unparseable.
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// A finite float with deterministic six-decimal formatting; non-finite
/// values become JSON `null` (and [`EvalMatrix::is_complete`] catches
/// them upstream).
fn json_num(v: f32) -> String {
    if v.is_finite() {
        format!("{v:.6}")
    } else {
        "null".to_string()
    }
}

fn json_metrics(m: Option<CellMetrics>) -> String {
    match m {
        Some(m) => {
            let fields: Vec<String> = METRIC_NAMES
                .iter()
                .zip(m.to_array())
                .map(|(name, v)| format!("\"{name}\": {}", json_num(v)))
                .collect();
            format!("{{ {} }}", fields.join(", "))
        }
        None => "null".to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn metrics(base: f32) -> CellMetrics {
        CellMetrics {
            acc1: base,
            acc2: base + 0.1,
            chan_acc1: base - 0.05,
            top: base + 0.2,
            pearson: base - 0.2,
            spearman: base - 0.1,
            nrms: 1.0 - base,
        }
    }

    fn tiny_matrix() -> EvalMatrix {
        let cell = |v: f32| CellStats::from_replicates(&[metrics(v)]);
        EvalMatrix {
            scenarios: vec!["a".into(), "b".into()],
            resolution: 16,
            train_epochs: 2,
            eval_pairs: 3,
            replicates: 1,
            cells: vec![vec![cell(0.8), cell(0.5)], vec![cell(0.4), cell(0.6)]],
            baseline: vec![
                Some(EvalReport {
                    pairs: 3,
                    accuracy: 0.5,
                    channel_accuracy: 0.4,
                    top_overlap: 0.5,
                    pearson: 0.1,
                    spearman: 0.2,
                    nrms: 0.3,
                }),
                None,
            ],
            corpus: GenStats::default(),
        }
    }

    #[test]
    fn replicate_stats_mean_and_ci() {
        let outcomes = [metrics(0.4), metrics(0.6)];
        let stats = CellStats::from_replicates(&outcomes);
        assert!((stats.mean.acc1 - 0.5).abs() < 1e-6);
        assert!((stats.mean.acc2 - 0.6).abs() < 1e-6);
        // Two replicates at ±0.1: s = 0.1414, ci = 1.96·s/√2 ≈ 0.196.
        assert!(
            (stats.ci95.acc1 - 0.196).abs() < 1e-3,
            "{}",
            stats.ci95.acc1
        );
        assert_eq!(stats.replicates, 2);
        // A single replicate has zero width, not NaN.
        let one = CellStats::from_replicates(&[metrics(0.4)]);
        assert_eq!(one.ci95, CellMetrics::default());
        assert!(one.is_finite());
    }

    #[test]
    fn gap_is_diagonal_minus_off_diagonal() {
        let m = tiny_matrix();
        let diag = m.diagonal_mean();
        assert!((diag.acc1 - 0.7).abs() < 1e-6);
        let off = m.off_diagonal_mean().unwrap();
        assert!((off.acc1 - 0.45).abs() < 1e-6);
        let gap = m.generalization_gap().unwrap();
        assert!((gap.acc1 - 0.25).abs() < 1e-6);
        // nrms is inverted (lower = better): in-distribution advantage
        // shows as a negative gap.
        assert!(gap.nrms < 0.0);
        assert!(m.is_complete());
    }

    #[test]
    fn one_by_one_matrix_has_no_off_diagonal() {
        let mut m = tiny_matrix();
        m.scenarios.truncate(1);
        m.cells.truncate(1);
        m.cells[0].truncate(1);
        m.baseline.truncate(1);
        assert!(m.off_diagonal_mean().is_none());
        assert!(m.generalization_gap().is_none());
        assert!(m.is_complete());
        assert!(m.to_json().contains("\"generalization_gap\": null"));
    }

    #[test]
    fn incomplete_or_nan_matrices_are_detected() {
        let mut m = tiny_matrix();
        m.cells[1].pop();
        assert!(!m.is_complete(), "a missing cell is incomplete");
        let mut m = tiny_matrix();
        m.cells[0][1].mean.pearson = f32::NAN;
        assert!(!m.is_complete(), "a NaN cell is incomplete");
    }

    #[test]
    fn json_is_deterministic_and_structured() {
        let m = tiny_matrix();
        let json = m.to_json();
        assert_eq!(json, m.clone().to_json(), "byte-for-byte deterministic");
        for key in [
            "\"bench\": \"eval_matrix\"",
            "\"scenarios\": [\"a\", \"b\"]",
            "\"train\": \"a\", \"eval\": \"b\", \"diagonal\": false",
            "\"generalization_gap\"",
            "\"baseline_rudy\"",
            "\"corpus\"",
        ] {
            assert!(json.contains(key), "missing {key} in:\n{json}");
        }
        // Exactly k*k cell objects.
        assert_eq!(json.matches("\"train\": ").count(), 4);
    }

    #[test]
    fn json_escapes_hostile_scenario_names() {
        let mut m = tiny_matrix();
        m.scenarios[0] = "quo\"te\\name".into();
        let json = m.to_json();
        assert!(json.contains(r#""quo\"te\\name""#), "{json}");
        // Control characters become \u escapes, not raw bytes.
        m.scenarios[1] = "tab\there".into();
        let json = m.to_json();
        assert!(json.contains("tab\\u0009here"), "{json}");
        assert!(!json.contains('\t'));
    }
}
