//! `pop-eval` — the scenario-conditioned evaluation harness: Table 2 at
//! scale, across distributions.
//!
//! The paper reports Acc.1/Acc.2/Top10 on a single data distribution. This
//! crate answers the distribution-shift question the scenario registry
//! raises (LHNN/GOALPlace framing): **how does a model trained on scenario
//! X score on scenario Y's data?**
//!
//! One [`evaluate_matrix`] run:
//!
//! 1. trains one model per scenario (× [`MatrixSpec::replicates`] seeds)
//!    through the existing `pop-pipeline` streaming path —
//!    [`EpochPrefetcher`](pop_pipeline::EpochPrefetcher) generation
//!    overlapped with training, every pair flowing through the cache-aware
//!    `CorpusStore` when [`MatrixSpec::options`] names a cache dir;
//! 2. generates each scenario's **held-out split**
//!    ([`ScenarioSpec::holdout_jobs`](pop_pipeline::ScenarioSpec::holdout_jobs)):
//!    the same designs, placement-sweep seeds provably disjoint from every
//!    training epoch, cache-fingerprinted so warm re-runs regenerate
//!    nothing;
//! 3. scores every `(model, split)` pairing — the K×K matrix — on a
//!    `pop-exec` worker pool, each cell a *single* batched inference sweep
//!    per strategy feeding all metrics (Acc.1, Acc.2, top-k overlap,
//!    Pearson, Spearman, NRMS);
//! 4. aggregates seed replicates into per-cell mean ± 95 % CI, computes
//!    the **diagonal-vs-off-diagonal generalization gap**, and scores the
//!    RUDY analytical baseline every diagonal cell should beat.
//!
//! Everything is deterministic in the spec: the matrix (and its
//! `BENCH_eval.json` serialisation) is byte-for-byte identical across
//! runs and worker-thread counts.
//!
//! # Example
//!
//! ```no_run
//! use pop_eval::{evaluate_matrix, MatrixSpec};
//! use pop_pipeline::scenario;
//!
//! let spec = MatrixSpec::new(vec![
//!     scenario::by_name("smoke").unwrap(),
//!     // …more scenarios sharing the same resolution…
//! ]);
//! let matrix = evaluate_matrix(&spec)?;
//! assert!(matrix.is_complete());
//! println!("{}", matrix.to_json());
//! # Ok::<(), pop_eval::EvalError>(())
//! ```

mod error;
mod matrix;
mod report;

pub use error::EvalError;
pub use matrix::{evaluate_matrix, MatrixSpec};
pub use report::{CellMetrics, CellStats, EvalMatrix, METRIC_NAMES};

#[cfg(test)]
mod tests {
    use super::*;
    use pop_core::{ExclusiveForecaster, MetricSet, Pix2Pix};
    use pop_pipeline::scenario::by_name;
    use pop_pipeline::{generate_holdout_with_stats, PipelineOptions, ScenarioSpec};

    fn tiny(name: &str, design: &str, seed: u64) -> ScenarioSpec {
        ScenarioSpec {
            name: name.into(),
            design: design.into(),
            pairs_per_design: 2,
            seed,
            ..by_name("smoke").unwrap()
        }
    }

    fn tiny_spec() -> MatrixSpec {
        MatrixSpec {
            train_epochs: 1,
            eval_pairs: 2,
            replicates: 2,
            finetune_pairs: 1,
            finetune_epochs: 1,
            options: PipelineOptions::with_workers(2),
            threads: 2,
            ..MatrixSpec::new(vec![tiny("a", "diffeq2", 1), tiny("b", "diffeq1", 2)])
        }
    }

    #[test]
    fn golden_matrix_is_identical_across_runs_and_thread_counts() {
        // The determinism gate, mirroring the pipeline's bitwise-identity
        // tests: the full matrix — every cell mean, every CI, the JSON
        // bytes — is a pure function of the spec. Fan-out width must only
        // change wall-clock.
        let mut spec = tiny_spec();
        spec.threads = 1;
        let sequential = evaluate_matrix(&spec).unwrap();
        spec.threads = 4;
        let parallel = evaluate_matrix(&spec).unwrap();
        assert_eq!(sequential, parallel, "thread count changed the matrix");
        assert_eq!(sequential.to_json(), parallel.to_json());
        // And run-to-run.
        let again = evaluate_matrix(&spec).unwrap();
        assert_eq!(sequential, again);

        // Structural sanity of the golden matrix.
        assert!(sequential.is_complete(), "complete, NaN-free matrix");
        assert_eq!(sequential.k(), 2);
        assert_eq!(sequential.cells[0][0].replicates, 2);
        assert!(
            sequential.generalization_gap().is_some(),
            "a 2x2 matrix reports the diagonal-vs-off-diagonal gap"
        );
        for b in &sequential.baseline {
            let b = b.expect("baseline enabled by default");
            assert!((0.0..=1.0).contains(&b.accuracy));
        }
        // No cache configured: every pair was generated, none served warm
        // — and generated exactly ONCE per scenario (replicates replay the
        // buffered corpus): 2 scenarios x (1 epoch + 1 holdout) jobs.
        assert_eq!(sequential.corpus.cache_hits, 0);
        assert_eq!(sequential.corpus.jobs, 4);
    }

    #[test]
    fn warm_holdout_rerun_reports_an_identical_eval_report() {
        // The hold-out cache contract at the metric level: a warm
        // CorpusStore re-run of the eval split is 100 % hits, zero
        // regenerated pairs, and the EvalReport computed on it is
        // *identical* (exact f32 equality) to the cold run's.
        let dir = std::env::temp_dir().join("pop_eval_warm_report_test");
        let _ = std::fs::remove_dir_all(&dir);
        let scenario = tiny("warm-report", "diffeq2", 3);
        let opts = PipelineOptions::with_workers(2).with_cache_dir(&dir);

        let (cold, cold_stats) =
            generate_holdout_with_stats(std::slice::from_ref(&scenario), 3, 2, &opts).unwrap();
        assert_eq!(cold_stats.cache_hits, 0);
        let (warm, warm_stats) =
            generate_holdout_with_stats(std::slice::from_ref(&scenario), 3, 2, &opts).unwrap();
        assert!(warm_stats.fully_warm(), "{warm_stats:?}");

        let config = scenario.config();
        let mut model = Pix2Pix::new(&config, 5).unwrap();
        let metrics = MetricSet::from_config(&config);
        let cold_report = metrics
            .evaluate(&ExclusiveForecaster::new(&mut model), &cold[0])
            .unwrap();
        let warm_report = metrics
            .evaluate(&ExclusiveForecaster::new(&mut model), &warm[0])
            .unwrap();
        assert_eq!(cold_report, warm_report);
        assert!(cold_report.is_finite());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn cached_matrix_rerun_regenerates_zero_pairs() {
        // End-to-end warm-run acceptance: with a cache dir, the second
        // full matrix run streams every training epoch AND every eval
        // split from disk — zero place/route stage executions — and
        // produces the identical matrix.
        let dir = std::env::temp_dir().join("pop_eval_warm_matrix_test");
        let _ = std::fs::remove_dir_all(&dir);
        let mut spec = tiny_spec();
        spec.replicates = 1;
        spec.options = PipelineOptions::with_workers(2).with_cache_dir(&dir);

        let cold = evaluate_matrix(&spec).unwrap();
        assert_eq!(cold.corpus.cache_hits, 0, "{:?}", cold.corpus);

        let warm = evaluate_matrix(&spec).unwrap();
        assert!(warm.corpus.fully_warm(), "{:?}", warm.corpus);
        assert_eq!(warm.corpus.jobs, 4, "2 scenarios x (1 epoch + 1 holdout)");
        // Identical evaluation either way (corpus counters aside).
        assert_eq!(cold.cells, warm.cells);
        assert_eq!(cold.baseline, warm.baseline);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
