use crate::color;
use crate::geometry::{Layout, PixelOwner};
use crate::image::{Image, Rgb8};
use pop_arch::{Arch, TileKind};
use pop_netlist::{BlockKind, Netlist};
use pop_place::Placement;
use pop_route::CongestionMap;

/// Renders `img_floor` (Figure 2a): the empty fabric at `side × side`
/// pixels with the Table 1 colour scheme.
pub fn render_floorplan(arch: &Arch, side: usize) -> Image {
    let layout = Layout::new(arch.width(), arch.height(), side);
    let mut img = Image::filled_rgb(side, side, color::WHITE);
    for py in 0..side {
        for px in 0..side {
            let c = match layout.owner(px, py) {
                PixelOwner::Tile { x, y } => match arch.tile_kind(x, y) {
                    TileKind::Corner => color::WHITE,
                    TileKind::Io | TileKind::Clb => color::LIGHTBLUE,
                    TileKind::Memory => color::LIGHTYELLOW,
                    TileKind::Multiplier => color::PINK,
                },
                PixelOwner::Channel(_) | PixelOwner::Junction | PixelOwner::Outside => color::WHITE,
            };
            img.set_rgb8(px, py, c);
        }
    }
    img
}

/// Fills the bottom `fraction` of a tile's block rectangle with `color`
/// (partial fill renders I/O pads whose eight ports are partly used —
/// "the I/O pads may not be fully filled with black pixels").
fn fill_tile_fraction(
    img: &mut Image,
    layout: &Layout,
    x: usize,
    y: usize,
    fraction: f32,
    color: Rgb8,
) {
    let (x0, y0, x1, y1) = layout.tile_rect(x, y);
    let rows = y1 - y0;
    let filled = ((rows as f32 * fraction.clamp(0.0, 1.0)).round() as usize).min(rows);
    // Image y grows downward; "bottom of the tile" is the last rows.
    for py in (y1 - filled)..y1 {
        for px in x0..x1 {
            img.set_rgb8(px, py, color);
        }
    }
}

/// Renders `img_place` (Figure 2b): the floorplan with used CLB and I/O
/// spots blackened (partially for I/O pads, per port usage) and occupied
/// memory / multiplier sites darkened.
pub fn render_placement(
    arch: &Arch,
    netlist: &Netlist,
    placement: &Placement,
    side: usize,
) -> Image {
    let layout = Layout::new(arch.width(), arch.height(), side);
    let mut img = render_floorplan(arch, side);

    // Count used I/O ports per pad tile.
    let mut io_used = std::collections::HashMap::<(usize, usize), usize>::new();
    for block in netlist.blocks() {
        let site = arch.site(placement.site_of(block.id));
        match block.kind {
            BlockKind::Input | BlockKind::Output => {
                *io_used.entry((site.x, site.y)).or_insert(0) += 1;
            }
            BlockKind::Clb { .. } => {
                fill_tile_fraction(&mut img, &layout, site.x, site.y, 1.0, color::BLACK);
            }
            BlockKind::Memory => {
                for ty in site.y..site.y + site.height {
                    fill_tile_fraction(
                        &mut img,
                        &layout,
                        site.x,
                        ty,
                        1.0,
                        color::darken(color::LIGHTYELLOW, color::OCCUPIED_DARKEN),
                    );
                }
            }
            BlockKind::Multiplier => {
                for ty in site.y..site.y + site.height {
                    fill_tile_fraction(
                        &mut img,
                        &layout,
                        site.x,
                        ty,
                        1.0,
                        color::darken(color::PINK, color::OCCUPIED_DARKEN),
                    );
                }
            }
        }
    }
    let cap = arch.io_capacity() as f32;
    for ((x, y), used) in io_used {
        fill_tile_fraction(&mut img, &layout, x, y, used as f32 / cap, color::BLACK);
    }
    img
}

/// Renders `img_connect` (Figure 4): a one-channel image accumulating every
/// placed net edge (driver → each sink) drawn as a line between block
/// centres. Intensity saturates as `1 − exp(−hits/4)`, keeping dense
/// regions distinguishable without a data-dependent normaliser.
pub fn render_connectivity(
    arch: &Arch,
    netlist: &Netlist,
    placement: &Placement,
    side: usize,
) -> Image {
    let layout = Layout::new(arch.width(), arch.height(), side);
    let mut hits = vec![0u32; side * side];
    for net in netlist.nets() {
        let (dx, dy) = placement.position(arch, net.driver);
        let (px0, py0) = layout.point_to_px(dx, dy);
        for &sink in &net.sinks {
            let (sx, sy) = placement.position(arch, sink);
            let (px1, py1) = layout.point_to_px(sx, sy);
            draw_line(&mut hits, side, (px0, py0), (px1, py1));
        }
    }
    let mut img = Image::zeros(side, side, 1);
    for (i, &h) in hits.iter().enumerate() {
        if h > 0 {
            img.data_mut()[i] = 1.0 - (-(h as f32) / 4.0).exp();
        }
    }
    img
}

/// DDA line rasterisation accumulating hit counts (each pixel at most once
/// per line).
fn draw_line(hits: &mut [u32], side: usize, a: (f32, f32), b: (f32, f32)) {
    let steps = ((b.0 - a.0).abs().max((b.1 - a.1).abs()).ceil() as usize).max(1);
    let mut last = usize::MAX;
    for t in 0..=steps {
        let f = t as f32 / steps as f32;
        let x = a.0 + (b.0 - a.0) * f;
        let y = a.1 + (b.1 - a.1) * f;
        let xi = (x.floor() as isize).clamp(0, side as isize - 1) as usize;
        let yi = (y.floor() as isize).clamp(0, side as isize - 1) as usize;
        let idx = yi * side + xi;
        if idx != last {
            hits[idx] += 1;
            last = idx;
        }
    }
}

/// Renders `img_route` (Figure 2d): the placement image with every routing
/// channel pixel colourised by its utilisation on the yellow→purple bar.
/// Utilisation above 1 (an unroutable placement) saturates at purple.
pub fn render_congestion(
    arch: &Arch,
    netlist: &Netlist,
    placement: &Placement,
    congestion: &CongestionMap,
    side: usize,
) -> Image {
    let layout = Layout::new(arch.width(), arch.height(), side);
    let mut img = render_placement(arch, netlist, placement, side);
    for py in 0..side {
        for px in 0..side {
            if let PixelOwner::Channel(ch) = layout.owner(px, py) {
                let u = congestion.utilization(arch, ch);
                img.set_rgb8(px, py, color::utilization_color(u));
            }
        }
    }
    img
}

/// Renders the routing result (Figure 2c): the placement image with every
/// routed net drawn through the channel segments its tree occupies, each
/// net in a deterministic colour from a rotating palette — the colourful
/// wire plot VPR's interactive mode shows after routing.
pub fn render_routing(
    arch: &Arch,
    netlist: &Netlist,
    placement: &Placement,
    routes: &[pop_route::RoutedNet],
    side: usize,
) -> Image {
    let layout = Layout::new(arch.width(), arch.height(), side);
    let mut img = render_placement(arch, netlist, placement, side);
    // Dense channel index -> owning net colour (later nets overwrite).
    let mut wire_color: Vec<Option<Rgb8>> = vec![None; arch.channel_count()];
    for routed in routes {
        let c = net_palette_color(routed.net.index());
        for &node in &routed.nodes {
            wire_color[node as usize] = Some(c);
        }
    }
    for py in 0..side {
        for px in 0..side {
            if let PixelOwner::Channel(ch) = layout.owner(px, py) {
                if let Some(c) = wire_color[arch.channel_index(ch)] {
                    img.set_rgb8(px, py, c);
                }
            }
        }
    }
    img
}

/// A deterministic, well-spread wire colour for net `i` (golden-angle hue
/// rotation at full saturation, avoiding the Table 1 palette hues).
fn net_palette_color(i: usize) -> Rgb8 {
    let hue = (i as f32 * 137.508) % 360.0;
    let h = hue / 60.0;
    let x = 1.0 - (h % 2.0 - 1.0).abs();
    let (r, g, b) = match h as u32 {
        0 => (1.0, x, 0.0),
        1 => (x, 1.0, 0.0),
        2 => (0.0, 1.0, x),
        3 => (0.0, x, 1.0),
        4 => (x, 0.0, 1.0),
        _ => (1.0, 0.0, x),
    };
    // Keep wires dark enough to contrast with the white channels.
    let scale = 0.75;
    Rgb8::new(
        (r * scale * 255.0) as u8,
        (g * scale * 255.0) as u8,
        (b * scale * 255.0) as u8,
    )
}

/// Converts a 3-channel image to 1-channel grayscale with the BT.601
/// weights of `tf.image.rgb_to_grayscale` — the §5.2 ablation input.
///
/// # Panics
///
/// Panics if `img` does not have exactly 3 channels.
pub fn grayscale(img: &Image) -> Image {
    assert_eq!(img.channels(), 3, "grayscale expects an RGB image");
    let (w, h) = (img.width(), img.height());
    let mut out = Image::zeros(w, h, 1);
    for y in 0..h {
        for x in 0..w {
            let v = color::GRAY_WEIGHTS[0] * img.get(x, y, 0)
                + color::GRAY_WEIGHTS[1] * img.get(x, y, 1)
                + color::GRAY_WEIGHTS[2] * img.get(x, y, 2);
            out.set(x, y, 0, v);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use pop_netlist::{generate, presets};
    use pop_place::{place, PlaceOptions};
    use pop_route::{route, RouteOptions};

    fn setup() -> (Arch, Netlist, Placement) {
        let netlist = generate(&presets::by_name("diffeq2").unwrap().scaled(0.02));
        let (c, i, m, x) = netlist.site_demand();
        let arch = Arch::auto_size(c, i, m, x, 16, 1.3).unwrap();
        let placement = place(&arch, &netlist, &PlaceOptions::default()).unwrap();
        (arch, netlist, placement)
    }

    fn count_color(img: &Image, c: Rgb8) -> usize {
        let mut n = 0;
        for y in 0..img.height() {
            for x in 0..img.width() {
                if img.pixel_rgb8(x, y) == c {
                    n += 1;
                }
            }
        }
        n
    }

    #[test]
    fn floorplan_uses_table1_palette() {
        let (arch, _, _) = setup();
        let img = render_floorplan(&arch, 96);
        assert!(count_color(&img, color::WHITE) > 0, "channels/background");
        assert!(count_color(&img, color::LIGHTBLUE) > 0, "clb spots");
        // The auto-sized arch for diffeq2 has multiplier columns.
        if arch.multiplier_capacity() > 0 {
            assert!(count_color(&img, color::PINK) > 0, "multiplier column");
        }
        assert_eq!(count_color(&img, color::BLACK), 0, "nothing used yet");
    }

    #[test]
    fn placement_blackens_used_spots() {
        let (arch, netlist, placement) = setup();
        let img = render_placement(&arch, &netlist, &placement, 96);
        let black = count_color(&img, color::BLACK);
        assert!(black > 0, "used spots must be black");
        // More CLBs are free than used at 30% headroom… the floorplan keeps
        // some lightblue.
        assert!(count_color(&img, color::LIGHTBLUE) > 0);
    }

    #[test]
    fn different_placements_give_different_images() {
        let (arch, netlist, p1) = setup();
        let p2 = place(
            &arch,
            &netlist,
            &PlaceOptions {
                seed: 77,
                ..Default::default()
            },
        )
        .unwrap();
        let a = render_placement(&arch, &netlist, &p1, 64);
        let b = render_placement(&arch, &netlist, &p2, 64);
        assert!(a.mean_abs_diff(&b).unwrap() > 0.0);
    }

    #[test]
    fn connectivity_is_single_channel_and_nonempty() {
        let (arch, netlist, placement) = setup();
        let img = render_connectivity(&arch, &netlist, &placement, 64);
        assert_eq!(img.channels(), 1);
        let nonzero = img.data().iter().filter(|&&v| v > 0.0).count();
        assert!(nonzero > 10, "lines must be drawn");
        assert!(img.data().iter().all(|&v| (0.0..=1.0).contains(&v)));
    }

    #[test]
    fn congestion_image_encodes_utilisation() {
        let (arch, netlist, placement) = setup();
        let routing = route(&arch, &netlist, &placement, &RouteOptions::default()).unwrap();
        let side = 96;
        let img = render_congestion(&arch, &netlist, &placement, routing.congestion(), side);
        // Decode a channel pixel back and compare with the map.
        let layout = Layout::new(arch.width(), arch.height(), side);
        let mut checked = 0;
        for py in 0..side {
            for px in 0..side {
                if let crate::geometry::PixelOwner::Channel(ch) = layout.owner(px, py) {
                    let truth = routing.congestion().utilization(&arch, ch).clamp(0.0, 1.0);
                    let decoded = crate::color::utilization_from_color(img.pixel_rgb8(px, py));
                    assert!(
                        (decoded - truth).abs() < 0.02,
                        "({px},{py}) {ch:?}: {decoded} vs {truth}"
                    );
                    checked += 1;
                }
            }
        }
        assert!(checked > 100);
    }

    #[test]
    fn routing_overlay_draws_wires() {
        let (arch, netlist, placement) = setup();
        let routing = route(&arch, &netlist, &placement, &RouteOptions::default()).unwrap();
        let side = 96;
        let base = render_placement(&arch, &netlist, &placement, side);
        let img = render_routing(&arch, &netlist, &placement, routing.routes(), side);
        // The overlay must differ from the bare placement (wires drawn)…
        assert!(img.mean_abs_diff(&base).unwrap() > 0.0);
        // …while non-channel pixels are untouched.
        let layout = Layout::new(arch.width(), arch.height(), side);
        for py in 0..side {
            for px in 0..side {
                if !matches!(
                    layout.owner(px, py),
                    crate::geometry::PixelOwner::Channel(_)
                ) {
                    assert_eq!(img.pixel_rgb8(px, py), base.pixel_rgb8(px, py));
                }
            }
        }
    }

    #[test]
    fn net_palette_is_deterministic_and_varied() {
        assert_eq!(net_palette_color(3), net_palette_color(3));
        let distinct: std::collections::HashSet<_> = (0..20).map(net_palette_color).collect();
        assert!(distinct.len() >= 18, "palette should spread colours");
    }

    #[test]
    fn grayscale_has_one_channel_in_range() {
        let (arch, _, _) = setup();
        let img = render_floorplan(&arch, 48);
        let gray = grayscale(&img);
        assert_eq!(gray.channels(), 1);
        assert!(gray.data().iter().all(|&v| (0.0..=1.0).contains(&v)));
        // White stays bright, blue-ish dims.
        assert!(gray.get(0, 0, 0) > 0.9);
    }

    #[test]
    fn line_drawing_marks_endpoints() {
        let mut hits = vec![0u32; 64];
        draw_line(&mut hits, 8, (0.5, 0.5), (6.5, 6.5));
        assert!(hits[0] > 0);
        assert!(hits[6 * 8 + 6] > 0);
        let total: u32 = hits.iter().sum();
        assert!(total >= 7);
    }
}
