use std::error::Error;
use std::fmt;
use std::fs::File;
use std::io::{BufWriter, Write};
use std::path::Path;

/// An 8-bit RGB colour.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Rgb8 {
    /// Red channel.
    pub r: u8,
    /// Green channel.
    pub g: u8,
    /// Blue channel.
    pub b: u8,
}

impl Rgb8 {
    /// Creates a colour from components.
    pub const fn new(r: u8, g: u8, b: u8) -> Self {
        Rgb8 { r, g, b }
    }

    /// Euclidean distance in RGB space (the paper differentiates elements
    /// "using RGB euclidean distance").
    pub fn distance(self, other: Rgb8) -> f32 {
        let dr = self.r as f32 - other.r as f32;
        let dg = self.g as f32 - other.g as f32;
        let db = self.b as f32 - other.b as f32;
        (dr * dr + dg * dg + db * db).sqrt()
    }
}

/// Errors produced by image operations.
#[derive(Debug)]
pub enum ImageError {
    /// Channel/shape mismatch between images or against an operation's
    /// requirement.
    ShapeMismatch {
        /// Human-readable description of the expectation.
        expected: String,
        /// What was found instead.
        found: String,
    },
    /// Underlying I/O failure when writing image files.
    Io(std::io::Error),
}

impl fmt::Display for ImageError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ImageError::ShapeMismatch { expected, found } => {
                write!(
                    f,
                    "image shape mismatch: expected {expected}, found {found}"
                )
            }
            ImageError::Io(e) => write!(f, "image io error: {e}"),
        }
    }
}

impl Error for ImageError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            ImageError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for ImageError {
    fn from(e: std::io::Error) -> Self {
        ImageError::Io(e)
    }
}

/// A float image in CHW layout with values in `[0, 1]`.
///
/// One channel for the connectivity image, three for everything else. The
/// CHW layout matches the NCHW tensors of [`pop-nn`](../pop_nn/index.html),
/// so feature assembly is a plain copy.
#[derive(Debug, Clone, PartialEq)]
pub struct Image {
    width: usize,
    height: usize,
    channels: usize,
    data: Vec<f32>,
}

impl Image {
    /// Creates a zero-filled image.
    ///
    /// # Panics
    ///
    /// Panics if any dimension is zero.
    pub fn zeros(width: usize, height: usize, channels: usize) -> Self {
        assert!(width > 0 && height > 0 && channels > 0, "empty image");
        Image {
            width,
            height,
            channels,
            data: vec![0.0; width * height * channels],
        }
    }

    /// Creates an image filled with an RGB colour (3 channels).
    pub fn filled_rgb(width: usize, height: usize, color: Rgb8) -> Self {
        let mut img = Image::zeros(width, height, 3);
        for y in 0..height {
            for x in 0..width {
                img.set_rgb8(x, y, color);
            }
        }
        img
    }

    /// Wraps raw CHW data.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != width * height * channels`.
    pub fn from_data(width: usize, height: usize, channels: usize, data: Vec<f32>) -> Self {
        assert_eq!(data.len(), width * height * channels, "data length");
        Image {
            width,
            height,
            channels,
            data,
        }
    }

    /// Image width in pixels.
    #[inline]
    pub fn width(&self) -> usize {
        self.width
    }

    /// Image height in pixels.
    #[inline]
    pub fn height(&self) -> usize {
        self.height
    }

    /// Number of channels (1 or 3 in this crate).
    #[inline]
    pub fn channels(&self) -> usize {
        self.channels
    }

    /// Raw CHW data.
    #[inline]
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Mutable raw CHW data.
    #[inline]
    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Reads one channel value.
    #[inline]
    pub fn get(&self, x: usize, y: usize, c: usize) -> f32 {
        self.data[c * self.width * self.height + y * self.width + x]
    }

    /// Writes one channel value.
    #[inline]
    pub fn set(&mut self, x: usize, y: usize, c: usize, v: f32) {
        self.data[c * self.width * self.height + y * self.width + x] = v;
    }

    /// Reads a pixel as an 8-bit colour (3-channel images; 1-channel images
    /// return the value replicated to gray).
    pub fn pixel_rgb8(&self, x: usize, y: usize) -> Rgb8 {
        let q = |v: f32| (v.clamp(0.0, 1.0) * 255.0).round() as u8;
        if self.channels >= 3 {
            Rgb8::new(
                q(self.get(x, y, 0)),
                q(self.get(x, y, 1)),
                q(self.get(x, y, 2)),
            )
        } else {
            let g = q(self.get(x, y, 0));
            Rgb8::new(g, g, g)
        }
    }

    /// Writes an 8-bit colour into a 3-channel pixel.
    ///
    /// # Panics
    ///
    /// Panics if the image has fewer than 3 channels.
    pub fn set_rgb8(&mut self, x: usize, y: usize, color: Rgb8) {
        assert!(self.channels >= 3, "set_rgb8 needs 3 channels");
        self.set(x, y, 0, color.r as f32 / 255.0);
        self.set(x, y, 1, color.g as f32 / 255.0);
        self.set(x, y, 2, color.b as f32 / 255.0);
    }

    /// Mean absolute difference to another image of identical shape.
    ///
    /// # Errors
    ///
    /// Returns [`ImageError::ShapeMismatch`] when shapes differ.
    pub fn mean_abs_diff(&self, other: &Image) -> Result<f32, ImageError> {
        self.check_same_shape(other)?;
        let sum: f32 = self
            .data
            .iter()
            .zip(&other.data)
            .map(|(a, b)| (a - b).abs())
            .sum();
        Ok(sum / self.data.len() as f32)
    }

    pub(crate) fn check_same_shape(&self, other: &Image) -> Result<(), ImageError> {
        if (self.width, self.height, self.channels) != (other.width, other.height, other.channels) {
            return Err(ImageError::ShapeMismatch {
                expected: format!("{}x{}x{}", self.width, self.height, self.channels),
                found: format!("{}x{}x{}", other.width, other.height, other.channels),
            });
        }
        Ok(())
    }

    /// Writes the image as binary PPM (3 channels) or PGM (1 channel) — the
    /// dependency-free stand-in for the paper's JPEG files.
    ///
    /// # Errors
    ///
    /// Returns [`ImageError::Io`] on filesystem failure.
    pub fn write_pnm(&self, path: impl AsRef<Path>) -> Result<(), ImageError> {
        let mut w = BufWriter::new(File::create(path)?);
        if self.channels >= 3 {
            write!(w, "P6\n{} {}\n255\n", self.width, self.height)?;
            for y in 0..self.height {
                for x in 0..self.width {
                    let p = self.pixel_rgb8(x, y);
                    w.write_all(&[p.r, p.g, p.b])?;
                }
            }
        } else {
            write!(w, "P5\n{} {}\n255\n", self.width, self.height)?;
            for y in 0..self.height {
                for x in 0..self.width {
                    let v = (self.get(x, y, 0).clamp(0.0, 1.0) * 255.0).round() as u8;
                    w.write_all(&[v])?;
                }
            }
        }
        w.flush()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rgb_roundtrip() {
        let mut img = Image::zeros(4, 4, 3);
        let c = Rgb8::new(173, 216, 230);
        img.set_rgb8(2, 1, c);
        assert_eq!(img.pixel_rgb8(2, 1), c);
        assert_eq!(img.pixel_rgb8(0, 0), Rgb8::new(0, 0, 0));
    }

    #[test]
    fn grayscale_pixel_replicates() {
        let mut img = Image::zeros(2, 2, 1);
        img.set(1, 1, 0, 0.5);
        let p = img.pixel_rgb8(1, 1);
        assert_eq!(p.r, p.g);
        assert_eq!(p.g, p.b);
        assert_eq!(p.r, 128);
    }

    #[test]
    fn mean_abs_diff_basics() {
        let a = Image::zeros(2, 2, 1);
        let mut b = Image::zeros(2, 2, 1);
        b.set(0, 0, 0, 1.0);
        assert!((a.mean_abs_diff(&b).unwrap() - 0.25).abs() < 1e-6);
        let c = Image::zeros(3, 2, 1);
        assert!(a.mean_abs_diff(&c).is_err());
    }

    #[test]
    fn color_distance() {
        assert_eq!(Rgb8::new(0, 0, 0).distance(Rgb8::new(0, 0, 0)), 0.0);
        let d = Rgb8::new(255, 255, 255).distance(Rgb8::new(0, 0, 0));
        assert!((d - (3.0f32).sqrt() * 255.0).abs() < 1e-3);
    }

    #[test]
    fn write_pnm_produces_file() {
        let dir = std::env::temp_dir().join("pop_raster_test");
        std::fs::create_dir_all(&dir).unwrap();
        let p3 = dir.join("t.ppm");
        Image::filled_rgb(3, 2, Rgb8::new(1, 2, 3))
            .write_pnm(&p3)
            .unwrap();
        let bytes = std::fs::read(&p3).unwrap();
        assert!(bytes.starts_with(b"P6\n3 2\n255\n"));
        assert_eq!(bytes.len(), "P6\n3 2\n255\n".len() + 18);
        let p1 = dir.join("t.pgm");
        Image::zeros(2, 2, 1).write_pnm(&p1).unwrap();
        assert!(std::fs::read(&p1).unwrap().starts_with(b"P5\n"));
    }

    #[test]
    #[should_panic(expected = "empty image")]
    fn zero_size_panics() {
        let _ = Image::zeros(0, 4, 3);
    }
}
