//! Rasterisation of the paper's four image kinds and the image metrics.
//!
//! The paper's §3/§4.2 define the visual encoding this crate reproduces:
//!
//! * [`render_floorplan`] — `img_floor`: the empty fabric (Figure 2a);
//! * [`render_placement`] — `img_place`: used CLB and I/O spots filled
//!   black on top of the floorplan (Figure 2b), Table 1 colour scheme;
//! * [`render_connectivity`] — `img_connect`: one-channel image obtained by
//!   drawing every placed net edge (Figure 4);
//! * [`render_congestion`] — `img_route`: routing-channel pixels colourised
//!   by utilisation with the yellow→purple gradient (Figure 2d).
//!
//! Images are [`Image`]s — `w×w` float tensors in `[0,1]` with 1 or 3
//! channels — plus [`Rgb8`] conversion and dependency-free binary PPM/PGM
//! output. [`metrics`] implements the paper's per-pixel accuracy and
//! [`grayscale`] the §5.2 `tf.image.rgb_to_grayscale` equivalent.
//!
//! Geometry: a tile maps to a `cell×cell` pixel block with a one-`gutter`
//! routing-channel strip between adjacent tiles, so every channel segment
//! owns distinct pixels — the "≥ 2×2 pixels per element" resolution rule of
//! §4.2 is satisfied whenever `side ≥ 2·grid`.
//!
//! # Example
//!
//! ```
//! use pop_arch::Arch;
//! use pop_raster::{render_floorplan, color};
//!
//! let arch = Arch::builder().interior(8, 8).build()?;
//! let img = render_floorplan(&arch, 64);
//! assert_eq!((img.width(), img.height(), img.channels()), (64, 64, 3));
//! // Routing channels are white in img_floor.
//! assert_eq!(img.pixel_rgb8(0, 0), color::WHITE);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

pub mod color;
mod geometry;
mod image;
pub mod metrics;
mod render;

pub use geometry::{Layout, PixelOwner};
pub use image::{Image, ImageError, Rgb8};
pub use render::{
    grayscale, render_congestion, render_connectivity, render_floorplan, render_placement,
    render_routing,
};
