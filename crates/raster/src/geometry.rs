use pop_arch::ChannelId;

/// What a pixel of the rendered image depicts.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PixelOwner {
    /// Inside the block of tile `(x, y)`.
    Tile {
        /// Tile x coordinate.
        x: usize,
        /// Tile y coordinate.
        y: usize,
    },
    /// Inside a routing channel strip.
    Channel(ChannelId),
    /// A switchbox corner where two channel gutters cross.
    Junction,
    /// Outside the fabric (beyond the last tile's far edges).
    Outside,
}

/// Maps the `grid_w × grid_h` tile grid onto a `side × side` pixel image.
///
/// Each tile owns the span `[line(i), line(i+1))` along each axis; the
/// trailing `gutter` pixels of a span render the routing channel that
/// separates the tile from its successor. Image rows run top-to-bottom
/// while grid rows run bottom-to-top, so `y` is flipped.
///
/// The §4.2 resolution rule ("dimension of each placement element ≥ 2×2")
/// holds whenever `side ≥ 3 · max(grid_w, grid_h)`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Layout {
    grid_w: usize,
    grid_h: usize,
    side: usize,
    lines_x: Vec<usize>,
    lines_y: Vec<usize>,
    gutter: usize,
}

impl Layout {
    /// Creates the layout for a grid and square image side.
    ///
    /// # Panics
    ///
    /// Panics when `side` is smaller than the grid (at least one pixel per
    /// tile is required).
    pub fn new(grid_w: usize, grid_h: usize, side: usize) -> Self {
        assert!(
            side >= grid_w && side >= grid_h,
            "side {side} too small for {grid_w}x{grid_h} grid"
        );
        let lines = |n: usize| -> Vec<usize> { (0..=n).map(|i| i * side / n).collect() };
        let lines_x = lines(grid_w);
        let lines_y = lines(grid_h);
        // Gutter: about a third of the smallest span, at least one pixel
        // (if a span is a single pixel, the tile wins and channels vanish —
        // callers should use a larger side).
        let min_span = (1..=grid_w.max(grid_h))
            .map(|i| {
                let lx = if i <= grid_w {
                    lines_x[i] - lines_x[i - 1]
                } else {
                    usize::MAX
                };
                let ly = if i <= grid_h {
                    lines_y[i] - lines_y[i - 1]
                } else {
                    usize::MAX
                };
                lx.min(ly)
            })
            .min()
            .unwrap_or(1);
        let gutter = if min_span >= 3 {
            min_span / 3
        } else {
            usize::from(min_span >= 2)
        };
        Layout {
            grid_w,
            grid_h,
            side,
            lines_x,
            lines_y,
            gutter,
        }
    }

    /// Image side in pixels.
    pub fn side(&self) -> usize {
        self.side
    }

    /// Channel gutter thickness in pixels (0 when the resolution is too low
    /// to draw channels).
    pub fn gutter(&self) -> usize {
        self.gutter
    }

    /// Locates a pixel along one axis: returns `(cell_index, in_gutter)`.
    fn locate(lines: &[usize], gutter: usize, p: usize) -> (usize, bool) {
        // Binary search for the span containing p.
        let mut lo = 0usize;
        let mut hi = lines.len() - 1;
        while lo + 1 < hi {
            let mid = (lo + hi) / 2;
            if lines[mid] <= p {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        let span_end = lines[lo + 1];
        let in_gutter = gutter > 0 && p >= span_end.saturating_sub(gutter);
        (lo, in_gutter)
    }

    /// Classifies an image pixel. `py` is an image row (0 at the top).
    pub fn owner(&self, px: usize, py: usize) -> PixelOwner {
        if px >= self.side || py >= self.side {
            return PixelOwner::Outside;
        }
        let (tx, gx) = Self::locate(&self.lines_x, self.gutter, px);
        // Flip: image row 0 is the top of the die = highest grid y.
        let (ty_img, gy_img) = Self::locate(&self.lines_y, self.gutter, py);
        let ty = self.grid_h - 1 - ty_img;
        // A y-gutter at the *end* of an image span is visually *below* the
        // tile in image space, which is grid-south: the channel above tile
        // (ty - 1), i.e. chanx(x, ty - 1).
        match (gx, gy_img) {
            (false, false) => PixelOwner::Tile { x: tx, y: ty },
            (true, false) => {
                // Vertical channel right of tile tx: chany(tx, ty).
                if tx <= self.grid_w.saturating_sub(2)
                    && ty >= 1
                    && ty <= self.grid_h.saturating_sub(2)
                {
                    PixelOwner::Channel(ChannelId::Vertical { x: tx, y: ty })
                } else {
                    PixelOwner::Outside
                }
            }
            (false, true) => {
                // Horizontal channel below tile ty in grid space.
                if ty >= 1
                    && tx >= 1
                    && tx <= self.grid_w.saturating_sub(2)
                    && ty - 1 <= self.grid_h.saturating_sub(2)
                {
                    PixelOwner::Channel(ChannelId::Horizontal { x: tx, y: ty - 1 })
                } else {
                    PixelOwner::Outside
                }
            }
            (true, true) => PixelOwner::Junction,
        }
    }

    /// Pixel rectangle `(x0, y0, x1, y1)` (exclusive ends) of the *block*
    /// part of tile `(x, y)` — the span minus its channel gutters.
    pub fn tile_rect(&self, x: usize, y: usize) -> (usize, usize, usize, usize) {
        let x0 = self.lines_x[x];
        let x1 = (self.lines_x[x + 1] - self.gutter.min(self.lines_x[x + 1] - x0 - 1)).max(x0 + 1);
        let iy = self.grid_h - 1 - y;
        let y0 = self.lines_y[iy];
        let y1 =
            (self.lines_y[iy + 1] - self.gutter.min(self.lines_y[iy + 1] - y0 - 1)).max(y0 + 1);
        (x0, y0, x1, y1)
    }

    /// Converts continuous grid coordinates (tile units, y up) to continuous
    /// pixel coordinates (y down) — used to draw connectivity lines.
    pub fn point_to_px(&self, fx: f32, fy: f32) -> (f32, f32) {
        let sx = self.side as f32 / self.grid_w as f32;
        let sy = self.side as f32 / self.grid_h as f32;
        (fx * sx, (self.grid_h as f32 - fy) * sy)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_pixel_is_classified() {
        let l = Layout::new(6, 6, 48);
        for py in 0..48 {
            for px in 0..48 {
                // Just must not panic; ownership must be stable.
                let a = l.owner(px, py);
                let b = l.owner(px, py);
                assert_eq!(a, b);
            }
        }
    }

    #[test]
    fn tiles_and_channels_both_present() {
        let l = Layout::new(6, 6, 48);
        let mut tiles = 0;
        let mut channels = 0;
        let mut junctions = 0;
        for py in 0..48 {
            for px in 0..48 {
                match l.owner(px, py) {
                    PixelOwner::Tile { .. } => tiles += 1,
                    PixelOwner::Channel(_) => channels += 1,
                    PixelOwner::Junction => junctions += 1,
                    PixelOwner::Outside => {}
                }
            }
        }
        assert!(tiles > channels, "tiles should dominate");
        assert!(channels > 0, "channels must be drawn");
        assert!(junctions > 0);
    }

    #[test]
    fn tile_rect_contains_only_that_tile() {
        let l = Layout::new(5, 5, 40);
        for ty in 0..5 {
            for tx in 0..5 {
                let (x0, y0, x1, y1) = l.tile_rect(tx, ty);
                assert!(x0 < x1 && y0 < y1);
                for py in y0..y1 {
                    for px in x0..x1 {
                        assert_eq!(
                            l.owner(px, py),
                            PixelOwner::Tile { x: tx, y: ty },
                            "pixel ({px},{py}) of rect for tile ({tx},{ty})"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn channel_coordinates_are_valid_for_arch() {
        use pop_arch::Arch;
        let arch = Arch::builder().interior(6, 6).build().unwrap();
        let l = Layout::new(arch.width(), arch.height(), 64);
        for py in 0..64 {
            for px in 0..64 {
                if let PixelOwner::Channel(ch) = l.owner(px, py) {
                    // channel_index must not panic / go out of bounds.
                    let idx = arch.channel_index(ch);
                    assert!(idx < arch.channel_count(), "{ch:?}");
                }
            }
        }
    }

    #[test]
    fn y_axis_is_flipped() {
        let l = Layout::new(4, 4, 32);
        // Top-left image pixel belongs to the highest grid row.
        match l.owner(0, 0) {
            PixelOwner::Tile { x, y } => {
                assert_eq!(x, 0);
                assert_eq!(y, 3);
            }
            other => panic!("expected tile, got {other:?}"),
        }
        let (px, py) = l.point_to_px(0.0, 4.0);
        assert_eq!((px, py), (0.0, 0.0));
        let (_, py_bottom) = l.point_to_px(0.0, 0.0);
        assert_eq!(py_bottom, 32.0);
    }

    #[test]
    #[should_panic(expected = "too small")]
    fn side_smaller_than_grid_panics() {
        let _ = Layout::new(10, 10, 8);
    }
}
