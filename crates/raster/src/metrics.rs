//! Image-level quality metrics.
//!
//! The paper's primary quality number is "per-pixel accuracy between the
//! generated image and ground truth image" (§5.1, Table 2 Acc.1/Acc.2).
//! The paper does not spell out the tolerance; following the common
//! colourisation convention we count a pixel as correct when every channel
//! is within [`DEFAULT_TOLERANCE`] (16/255) of the truth, and expose the
//! tolerance as a parameter.

use crate::image::{Image, ImageError};

/// Default per-channel tolerance for [`per_pixel_accuracy`]: 16 grey levels.
pub const DEFAULT_TOLERANCE: f32 = 16.0 / 255.0;

/// Fraction of pixels whose maximum per-channel absolute error is within
/// `tolerance`. Symmetric in its arguments; 1.0 for identical images.
///
/// # Errors
///
/// Returns [`ImageError::ShapeMismatch`] when the two images differ in
/// shape.
pub fn per_pixel_accuracy(a: &Image, b: &Image, tolerance: f32) -> Result<f32, ImageError> {
    a.check_same_shape(b)?;
    let (w, h, c) = (a.width(), a.height(), a.channels());
    let plane = w * h;
    let mut correct = 0usize;
    for p in 0..plane {
        let mut worst = 0.0f32;
        for ch in 0..c {
            let d = (a.data()[ch * plane + p] - b.data()[ch * plane + p]).abs();
            worst = worst.max(d);
        }
        if worst <= tolerance {
            correct += 1;
        }
    }
    Ok(correct as f32 / plane as f32)
}

/// Mean squared error over all values.
///
/// # Errors
///
/// Returns [`ImageError::ShapeMismatch`] when the two images differ in
/// shape.
pub fn mse(a: &Image, b: &Image) -> Result<f32, ImageError> {
    a.check_same_shape(b)?;
    let sum: f32 = a
        .data()
        .iter()
        .zip(b.data())
        .map(|(x, y)| (x - y) * (x - y))
        .sum();
    Ok(sum / a.data().len() as f32)
}

/// Mean absolute error over all values (the L1 term of the cGAN objective,
/// measured image-side).
///
/// # Errors
///
/// Returns [`ImageError::ShapeMismatch`] when the two images differ in
/// shape.
pub fn mae(a: &Image, b: &Image) -> Result<f32, ImageError> {
    a.mean_abs_diff(b)
}

/// Peak signal-to-noise ratio in dB (images in `[0, 1]`, peak = 1).
/// Identical images return `f32::INFINITY`.
///
/// # Errors
///
/// Returns [`ImageError::ShapeMismatch`] when the two images differ in
/// shape.
pub fn psnr(a: &Image, b: &Image) -> Result<f32, ImageError> {
    let m = mse(a, b)?;
    if m <= 0.0 {
        return Ok(f32::INFINITY);
    }
    Ok(-10.0 * m.log10())
}

/// Structural similarity (SSIM) with the standard constants
/// (`K1 = 0.01`, `K2 = 0.03`, dynamic range 1) over `window`-sized
/// non-overlapping tiles, averaged over tiles and channels. Follow-on
/// ML-for-congestion work (e.g. CircuitNet) reports SSIM alongside pixel
/// accuracy, so the harness exposes it too.
///
/// # Errors
///
/// Returns [`ImageError::ShapeMismatch`] when the two images differ in
/// shape.
///
/// # Panics
///
/// Panics when `window` is zero.
pub fn ssim(a: &Image, b: &Image, window: usize) -> Result<f32, ImageError> {
    assert!(window > 0, "window must be positive");
    a.check_same_shape(b)?;
    let (w, h, c) = (a.width(), a.height(), a.channels());
    let c1 = 0.01f64 * 0.01;
    let c2 = 0.03f64 * 0.03;
    let mut total = 0.0f64;
    let mut tiles = 0usize;
    for ch in 0..c {
        let mut ty = 0;
        while ty < h {
            let mut tx = 0;
            let y_end = (ty + window).min(h);
            while tx < w {
                let x_end = (tx + window).min(w);
                let n = ((x_end - tx) * (y_end - ty)) as f64;
                let (mut sa, mut sb, mut saa, mut sbb, mut sab) = (0.0, 0.0, 0.0, 0.0, 0.0);
                for y in ty..y_end {
                    for x in tx..x_end {
                        let va = a.get(x, y, ch) as f64;
                        let vb = b.get(x, y, ch) as f64;
                        sa += va;
                        sb += vb;
                        saa += va * va;
                        sbb += vb * vb;
                        sab += va * vb;
                    }
                }
                let ma = sa / n;
                let mb = sb / n;
                let va = (saa / n - ma * ma).max(0.0);
                let vb = (sbb / n - mb * mb).max(0.0);
                let cov = sab / n - ma * mb;
                let s = ((2.0 * ma * mb + c1) * (2.0 * cov + c2))
                    / ((ma * ma + mb * mb + c1) * (va + vb + c2));
                total += s;
                tiles += 1;
                tx += window;
            }
            ty += window;
        }
    }
    Ok((total / tiles.max(1) as f64) as f32)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_images_are_fully_accurate() {
        let a = Image::zeros(8, 8, 3);
        assert_eq!(per_pixel_accuracy(&a, &a, DEFAULT_TOLERANCE).unwrap(), 1.0);
        assert_eq!(mse(&a, &a).unwrap(), 0.0);
        assert_eq!(mae(&a, &a).unwrap(), 0.0);
    }

    #[test]
    fn accuracy_is_symmetric() {
        let mut a = Image::zeros(4, 4, 1);
        let mut b = Image::zeros(4, 4, 1);
        a.set(0, 0, 0, 0.5);
        b.set(3, 3, 0, 0.9);
        let ab = per_pixel_accuracy(&a, &b, DEFAULT_TOLERANCE).unwrap();
        let ba = per_pixel_accuracy(&b, &a, DEFAULT_TOLERANCE).unwrap();
        assert_eq!(ab, ba);
    }

    #[test]
    fn tolerance_widens_acceptance() {
        let a = Image::zeros(2, 2, 1);
        let mut b = Image::zeros(2, 2, 1);
        for (i, v) in b.data_mut().iter_mut().enumerate() {
            *v = 0.05 * (i as f32 + 1.0); // 0.05, 0.10, 0.15, 0.20
        }
        let tight = per_pixel_accuracy(&a, &b, 0.06).unwrap();
        let loose = per_pixel_accuracy(&a, &b, 0.16).unwrap();
        assert_eq!(tight, 0.25);
        assert_eq!(loose, 0.75);
    }

    #[test]
    fn worst_channel_governs() {
        let a = Image::zeros(1, 1, 3);
        let mut b = Image::zeros(1, 1, 3);
        b.set(0, 0, 2, 0.5); // only the blue channel is off
        assert_eq!(per_pixel_accuracy(&a, &b, DEFAULT_TOLERANCE).unwrap(), 0.0);
    }

    #[test]
    fn shape_mismatch_is_reported() {
        let a = Image::zeros(2, 2, 1);
        let b = Image::zeros(2, 3, 1);
        assert!(per_pixel_accuracy(&a, &b, 0.1).is_err());
        assert!(mse(&a, &b).is_err());
        assert!(ssim(&a, &b, 4).is_err());
        assert!(psnr(&a, &b).is_err());
    }

    #[test]
    fn psnr_behaviour() {
        let a = Image::zeros(4, 4, 1);
        assert_eq!(psnr(&a, &a).unwrap(), f32::INFINITY);
        let mut b = Image::zeros(4, 4, 1);
        for v in b.data_mut() {
            *v = 0.1; // MSE = 0.01 -> PSNR = 20 dB
        }
        assert!((psnr(&a, &b).unwrap() - 20.0).abs() < 1e-3);
    }

    #[test]
    fn ssim_is_one_for_identical_and_lower_otherwise() {
        let mut a = Image::zeros(8, 8, 1);
        for (i, v) in a.data_mut().iter_mut().enumerate() {
            *v = (i % 7) as f32 / 7.0;
        }
        assert!((ssim(&a, &a, 4).unwrap() - 1.0).abs() < 1e-6);
        let mut b = a.clone();
        for v in b.data_mut() {
            *v = 1.0 - *v;
        }
        let s = ssim(&a, &b, 4).unwrap();
        assert!(s < 0.9, "inverted image should score low, got {s}");
    }

    #[test]
    fn ssim_penalises_structure_loss_more_than_brightness() {
        // A uniform brightness offset keeps structure; noise destroys it.
        let mut a = Image::zeros(8, 8, 1);
        for (i, v) in a.data_mut().iter_mut().enumerate() {
            *v = ((i / 8 + i % 8) % 5) as f32 / 5.0;
        }
        let mut brighter = a.clone();
        for v in brighter.data_mut() {
            *v = (*v + 0.1).min(1.0);
        }
        let mut noisy = a.clone();
        for (i, v) in noisy.data_mut().iter_mut().enumerate() {
            *v = if i % 2 == 0 { 0.0 } else { 1.0 };
        }
        let s_bright = ssim(&a, &brighter, 4).unwrap();
        let s_noisy = ssim(&a, &noisy, 4).unwrap();
        assert!(
            s_bright > s_noisy,
            "brightness shift {s_bright} should beat structure loss {s_noisy}"
        );
    }
}
