//! The paper's Table 1 colour scheme and the utilisation colour bar.
//!
//! | Colour       | `img_place`            | `img_route`            |
//! |--------------|------------------------|------------------------|
//! | White        | Routing channels       | Out of floor plan      |
//! | Lightblue    | CLB spots              | Remaining CLB spots    |
//! | Pink         | Multiplier             | Multiplier             |
//! | Lightyellow  | Memory                 | Memory                 |
//! | Black        | Used CLB and I/O spots | Used CLB and I/O spots |
//! | Yellow→purple| —                      | Routing utilisation    |

use crate::image::Rgb8;

/// Routing channels (`img_place`) / out-of-floorplan (`img_route`).
pub const WHITE: Rgb8 = Rgb8::new(255, 255, 255);
/// Unused CLB (and I/O) spots.
pub const LIGHTBLUE: Rgb8 = Rgb8::new(173, 216, 230);
/// Multiplier columns.
pub const PINK: Rgb8 = Rgb8::new(255, 182, 193);
/// Memory columns.
pub const LIGHTYELLOW: Rgb8 = Rgb8::new(255, 255, 224);
/// Used CLB and I/O spots.
pub const BLACK: Rgb8 = Rgb8::new(0, 0, 0);
/// Low end of the utilisation gradient (0.0 = idle channel).
pub const UTIL_LOW: Rgb8 = Rgb8::new(255, 255, 0);
/// High end of the utilisation gradient (1.0 = fully utilised channel).
pub const UTIL_HIGH: Rgb8 = Rgb8::new(128, 0, 128);

/// Fractional darkening applied to occupied memory/multiplier sites in
/// `img_place` so usage is visible while the Table 1 hue is preserved.
pub const OCCUPIED_DARKEN: f32 = 0.45;

/// Maps a channel utilisation in `[0, 1]` onto the yellow→purple colour bar
/// (values outside the range are clamped, matching VPR's saturated bar).
pub fn utilization_color(u: f32) -> Rgb8 {
    let t = u.clamp(0.0, 1.0);
    let lerp = |a: u8, b: u8| -> u8 { (a as f32 + (b as f32 - a as f32) * t).round() as u8 };
    Rgb8::new(
        lerp(UTIL_LOW.r, UTIL_HIGH.r),
        lerp(UTIL_LOW.g, UTIL_HIGH.g),
        lerp(UTIL_LOW.b, UTIL_HIGH.b),
    )
}

/// Recovers the utilisation encoded by [`utilization_color`] (projection of
/// `c` onto the gradient, clamped to `[0, 1]`). Lossy only through 8-bit
/// quantisation; used when decoding predicted heat maps back into scalar
/// congestion estimates.
pub fn utilization_from_color(c: Rgb8) -> f32 {
    // Project onto the gradient direction d = high - low.
    let d = (
        UTIL_HIGH.r as f32 - UTIL_LOW.r as f32,
        UTIL_HIGH.g as f32 - UTIL_LOW.g as f32,
        UTIL_HIGH.b as f32 - UTIL_LOW.b as f32,
    );
    let v = (
        c.r as f32 - UTIL_LOW.r as f32,
        c.g as f32 - UTIL_LOW.g as f32,
        c.b as f32 - UTIL_LOW.b as f32,
    );
    let dot = v.0 * d.0 + v.1 * d.1 + v.2 * d.2;
    let norm = d.0 * d.0 + d.1 * d.1 + d.2 * d.2;
    (dot / norm).clamp(0.0, 1.0)
}

/// Darkens a colour by `fraction` (0 = unchanged, 1 = black).
pub fn darken(c: Rgb8, fraction: f32) -> Rgb8 {
    let f = (1.0 - fraction.clamp(0.0, 1.0)).max(0.0);
    Rgb8::new(
        (c.r as f32 * f).round() as u8,
        (c.g as f32 * f).round() as u8,
        (c.b as f32 * f).round() as u8,
    )
}

/// Luminance weights of `tf.image.rgb_to_grayscale` (ITU-R BT.601), used by
/// the §5.2 grayscale ablation.
pub const GRAY_WEIGHTS: [f32; 3] = [0.2989, 0.587, 0.114];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gradient_endpoints() {
        assert_eq!(utilization_color(0.0), UTIL_LOW);
        assert_eq!(utilization_color(1.0), UTIL_HIGH);
        assert_eq!(utilization_color(-3.0), UTIL_LOW);
        assert_eq!(utilization_color(9.0), UTIL_HIGH);
    }

    #[test]
    fn gradient_roundtrip() {
        for i in 0..=20 {
            let u = i as f32 / 20.0;
            let back = utilization_from_color(utilization_color(u));
            assert!((back - u).abs() < 0.01, "u={u} back={back}");
        }
    }

    #[test]
    fn gradient_is_monotone_toward_purple() {
        // Distance to the high end decreases monotonically with u.
        let mut last = f32::MAX;
        for i in 0..=10 {
            let u = i as f32 / 10.0;
            let d = utilization_color(u).distance(UTIL_HIGH);
            assert!(d <= last + 1e-3);
            last = d;
        }
    }

    #[test]
    fn table1_colors_are_distinguishable() {
        // The paper requires elements to be separable by RGB distance.
        let palette = [WHITE, LIGHTBLUE, PINK, LIGHTYELLOW, BLACK];
        for (i, a) in palette.iter().enumerate() {
            for b in palette.iter().skip(i + 1) {
                assert!(a.distance(*b) > 30.0, "{a:?} vs {b:?}");
            }
        }
    }

    #[test]
    fn darken_behaviour() {
        assert_eq!(darken(WHITE, 0.0), WHITE);
        assert_eq!(darken(WHITE, 1.0), BLACK);
        let mid = darken(Rgb8::new(200, 100, 50), 0.5);
        assert_eq!(mid, Rgb8::new(100, 50, 25));
    }
}
