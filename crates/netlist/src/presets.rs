//! The eight VTR designs of the paper's Table 2 as [`SyntheticSpec`] presets.
//!
//! LUT / FF / net counts are taken verbatim from Table 2. The paper does not
//! report I/O, memory or multiplier counts, so those are plausible estimates
//! from the corresponding VTR benchmark family (documented per design below);
//! they only influence how many special sites the auto-sized grid provides.
//!
//! Run CPU-sized experiments with [`SyntheticSpec::scaled`], e.g.
//! `presets::by_name("ode").unwrap().scaled(0.05)`.

use crate::generator::SyntheticSpec;

/// Deterministic per-design seed derived from the name (FNV-1a).
fn seed_of(name: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

#[allow(clippy::too_many_arguments)] // mirrors the preset table columns
fn spec(
    name: &str,
    luts: usize,
    ffs: usize,
    nets: usize,
    inputs: usize,
    outputs: usize,
    memories: usize,
    multipliers: usize,
) -> SyntheticSpec {
    SyntheticSpec {
        name: name.into(),
        luts,
        ffs,
        nets,
        inputs,
        outputs,
        memories,
        multipliers,
        luts_per_clb: 10,
        mean_fanout: 3.0,
        locality: 0.75,
        seed: seed_of(name),
    }
}

/// All eight Table 2 designs in paper order.
pub fn all() -> Vec<SyntheticSpec> {
    vec![
        // ODE solvers: multiplier-heavy datapaths, no RAM.
        spec("diffeq1", 563, 193, 2_059, 96, 96, 0, 5),
        spec("diffeq2", 419, 96, 1_560, 64, 64, 0, 5),
        // Ray-generation unit: mixed control + arithmetic, a little RAM.
        spec("raygentop", 1_920, 1_047, 5_023, 214, 32, 1, 8),
        // SHA hash: pure logic.
        spec("SHA", 2_501, 911, 10_910, 38, 36, 0, 0),
        // OR1200 CPU core: logic with a small register-file RAM and MAC.
        spec("OR1200", 2_823, 670, 12_336, 128, 132, 2, 4),
        // Arithmetic kernels (ode / dscg / bfly family): RAM + many mults.
        spec("ode", 5_488, 1_316, 20_981, 128, 96, 2, 12),
        spec("dcsg", 9_088, 1_618, 36_912, 128, 64, 4, 16),
        spec("bfly", 9_503, 1_748, 38_582, 128, 64, 4, 16),
    ]
}

/// Looks up one preset by (case-insensitive) name.
pub fn by_name(name: &str) -> Option<SyntheticSpec> {
    all()
        .into_iter()
        .find(|s| s.name.eq_ignore_ascii_case(name))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eight_designs_in_paper_order() {
        let names: Vec<String> = all().into_iter().map(|s| s.name).collect();
        assert_eq!(
            names,
            vec![
                "diffeq1",
                "diffeq2",
                "raygentop",
                "SHA",
                "OR1200",
                "ode",
                "dcsg",
                "bfly"
            ]
        );
    }

    #[test]
    fn table2_counts_match_paper() {
        let check = |name: &str, luts: usize, ffs: usize, nets: usize| {
            let s = by_name(name).unwrap();
            assert_eq!((s.luts, s.ffs, s.nets), (luts, ffs, nets), "{name}");
        };
        check("diffeq1", 563, 193, 2059);
        check("diffeq2", 419, 96, 1560);
        check("raygentop", 1920, 1047, 5023);
        check("SHA", 2501, 911, 10910);
        check("OR1200", 2823, 670, 12336);
        check("ode", 5488, 1316, 20981);
        check("dcsg", 9088, 1618, 36912);
        check("bfly", 9503, 1748, 38582);
    }

    #[test]
    fn lookup_is_case_insensitive() {
        assert!(by_name("sha").is_some());
        assert!(by_name("Or1200").is_some());
        assert!(by_name("nosuch").is_none());
    }

    #[test]
    fn seeds_are_distinct() {
        let seeds: Vec<u64> = all().into_iter().map(|s| s.seed).collect();
        let mut dedup = seeds.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(seeds.len(), dedup.len());
    }

    #[test]
    fn scaled_presets_generate() {
        for spec in all() {
            let small = spec.scaled(0.02);
            let nl = crate::generate(&small);
            assert_eq!(nl.stats().nets, small.nets, "{}", spec.name);
        }
    }
}
