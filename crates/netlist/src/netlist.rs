use crate::block::{Block, BlockId, BlockKind};
use crate::net::{Net, NetId};
use std::error::Error;
use std::fmt;

/// Aggregate statistics of a design, matching the columns of the paper's
/// Table 2 (`#LUTs`, `#FF`, `#Nets`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DesignStats {
    /// Design name (e.g. `diffeq1`).
    pub name: String,
    /// Total LUTs across all CLBs.
    pub luts: usize,
    /// Total flip-flops across all CLBs.
    pub ffs: usize,
    /// Number of nets.
    pub nets: usize,
    /// Number of CLB blocks.
    pub clbs: usize,
    /// Number of I/O blocks (inputs + outputs).
    pub ios: usize,
    /// Number of memory blocks.
    pub memories: usize,
    /// Number of multiplier blocks.
    pub multipliers: usize,
}

/// Errors produced while assembling a [`Netlist`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NetlistError {
    /// A net references a block id not present in the netlist.
    DanglingBlock {
        /// The offending net.
        net: NetId,
        /// The missing block id.
        block: BlockId,
    },
    /// A net has no sinks.
    EmptyNet {
        /// The offending net.
        net: NetId,
    },
    /// A net lists the same block as driver and sink, or a sink twice.
    DuplicateTerminal {
        /// The offending net.
        net: NetId,
        /// The repeated block.
        block: BlockId,
    },
}

impl fmt::Display for NetlistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetlistError::DanglingBlock { net, block } => {
                write!(f, "net {net} references missing block {block}")
            }
            NetlistError::EmptyNet { net } => write!(f, "net {net} has no sinks"),
            NetlistError::DuplicateTerminal { net, block } => {
                write!(f, "net {net} lists block {block} more than once")
            }
        }
    }
}

impl Error for NetlistError {}

/// The packed netlist `Graph(V, E)` handed to placement.
///
/// Blocks and nets are stored densely; [`BlockId`]/[`NetId`] index them
/// directly. Construct with [`Netlist::new`], which validates the structure.
///
/// # Example
///
/// ```
/// use pop_netlist::{Netlist, Block, BlockId, BlockKind, Net, NetId};
///
/// let blocks = vec![
///     Block { id: BlockId(0), kind: BlockKind::Input, name: "a".into() },
///     Block { id: BlockId(1), kind: BlockKind::Clb { luts: 1, ffs: 0 }, name: "c".into() },
/// ];
/// let nets = vec![Net { id: NetId(0), driver: BlockId(0), sinks: vec![BlockId(1)] }];
/// let nl = Netlist::new("tiny", blocks, nets)?;
/// assert_eq!(nl.stats().nets, 1);
/// # Ok::<(), pop_netlist::NetlistError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Netlist {
    name: String,
    blocks: Vec<Block>,
    nets: Vec<Net>,
    /// For each block, the nets it is a terminal of (driver or sink).
    block_nets: Vec<Vec<NetId>>,
}

impl Netlist {
    /// Assembles and validates a netlist.
    ///
    /// # Errors
    ///
    /// Returns a [`NetlistError`] if any net references an unknown block,
    /// has no sinks, or repeats a terminal.
    pub fn new(
        name: impl Into<String>,
        blocks: Vec<Block>,
        nets: Vec<Net>,
    ) -> Result<Self, NetlistError> {
        let nblocks = blocks.len();
        let mut block_nets = vec![Vec::new(); nblocks];
        for net in &nets {
            if net.sinks.is_empty() {
                return Err(NetlistError::EmptyNet { net: net.id });
            }
            let mut seen = Vec::with_capacity(net.degree());
            for term in net.terminals() {
                if term.index() >= nblocks {
                    return Err(NetlistError::DanglingBlock {
                        net: net.id,
                        block: term,
                    });
                }
                if seen.contains(&term) {
                    return Err(NetlistError::DuplicateTerminal {
                        net: net.id,
                        block: term,
                    });
                }
                seen.push(term);
                block_nets[term.index()].push(net.id);
            }
        }
        Ok(Netlist {
            name: name.into(),
            blocks,
            nets,
            block_nets,
        })
    }

    /// Design name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// All blocks, indexable by [`BlockId`].
    #[inline]
    pub fn blocks(&self) -> &[Block] {
        &self.blocks
    }

    /// All nets, indexable by [`NetId`].
    #[inline]
    pub fn nets(&self) -> &[Net] {
        &self.nets
    }

    /// One block by id.
    #[inline]
    pub fn block(&self, id: BlockId) -> &Block {
        &self.blocks[id.index()]
    }

    /// One net by id.
    #[inline]
    pub fn net(&self, id: NetId) -> &Net {
        &self.nets[id.index()]
    }

    /// Nets incident to `block` (as driver or sink).
    #[inline]
    pub fn nets_of(&self, block: BlockId) -> &[NetId] {
        &self.block_nets[block.index()]
    }

    /// Number of blocks of each kind that need placement sites, as
    /// `(clbs, ios, memories, multipliers)` — the input to
    /// [`pop_arch::Arch::auto_size`](../pop_arch/struct.Arch.html#method.auto_size).
    pub fn site_demand(&self) -> (usize, usize, usize, usize) {
        let mut clbs = 0;
        let mut ios = 0;
        let mut mems = 0;
        let mut mults = 0;
        for b in &self.blocks {
            match b.kind {
                BlockKind::Input | BlockKind::Output => ios += 1,
                BlockKind::Clb { .. } => clbs += 1,
                BlockKind::Memory => mems += 1,
                BlockKind::Multiplier => mults += 1,
            }
        }
        (clbs, ios, mems, mults)
    }

    /// Aggregate statistics (Table 2 columns).
    pub fn stats(&self) -> DesignStats {
        let (clbs, ios, memories, multipliers) = self.site_demand();
        let (mut luts, mut ffs) = (0usize, 0usize);
        for b in &self.blocks {
            if let BlockKind::Clb { luts: l, ffs: f } = b.kind {
                luts += l as usize;
                ffs += f as usize;
            }
        }
        DesignStats {
            name: self.name.clone(),
            luts,
            ffs,
            nets: self.nets.len(),
            clbs,
            ios,
            memories,
            multipliers,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn blocks(n: usize) -> Vec<Block> {
        (0..n)
            .map(|i| Block {
                id: BlockId(i as u32),
                kind: BlockKind::Clb { luts: 2, ffs: 1 },
                name: format!("clb_{i}"),
            })
            .collect()
    }

    #[test]
    fn valid_netlist_builds() {
        let nets = vec![Net {
            id: NetId(0),
            driver: BlockId(0),
            sinks: vec![BlockId(1), BlockId(2)],
        }];
        let nl = Netlist::new("t", blocks(3), nets).unwrap();
        assert_eq!(nl.nets_of(BlockId(0)), &[NetId(0)]);
        assert_eq!(nl.nets_of(BlockId(2)), &[NetId(0)]);
        assert_eq!(nl.stats().luts, 6);
        assert_eq!(nl.stats().ffs, 3);
    }

    #[test]
    fn rejects_dangling_block() {
        let nets = vec![Net {
            id: NetId(0),
            driver: BlockId(0),
            sinks: vec![BlockId(9)],
        }];
        assert!(matches!(
            Netlist::new("t", blocks(2), nets),
            Err(NetlistError::DanglingBlock { .. })
        ));
    }

    #[test]
    fn rejects_empty_net() {
        let nets = vec![Net {
            id: NetId(0),
            driver: BlockId(0),
            sinks: vec![],
        }];
        assert!(matches!(
            Netlist::new("t", blocks(2), nets),
            Err(NetlistError::EmptyNet { .. })
        ));
    }

    #[test]
    fn rejects_duplicate_terminal() {
        let nets = vec![Net {
            id: NetId(0),
            driver: BlockId(0),
            sinks: vec![BlockId(0)],
        }];
        assert!(matches!(
            Netlist::new("t", blocks(2), nets),
            Err(NetlistError::DuplicateTerminal { .. })
        ));
    }

    #[test]
    fn site_demand_counts_kinds() {
        let blocks = vec![
            Block {
                id: BlockId(0),
                kind: BlockKind::Input,
                name: "i".into(),
            },
            Block {
                id: BlockId(1),
                kind: BlockKind::Output,
                name: "o".into(),
            },
            Block {
                id: BlockId(2),
                kind: BlockKind::Memory,
                name: "m".into(),
            },
            Block {
                id: BlockId(3),
                kind: BlockKind::Multiplier,
                name: "x".into(),
            },
            Block {
                id: BlockId(4),
                kind: BlockKind::Clb { luts: 1, ffs: 1 },
                name: "c".into(),
            },
        ];
        let nl = Netlist::new("t", blocks, vec![]).unwrap();
        assert_eq!(nl.site_demand(), (1, 2, 1, 1));
    }
}
