use std::fmt;

/// Dense index of a [`Block`] within one [`Netlist`](crate::Netlist).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct BlockId(pub u32);

impl BlockId {
    /// Returns the id as a `usize` for direct slice indexing.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for BlockId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b{}", self.0)
    }
}

/// What a packed netlist block is.
///
/// Mirrors [`pop_arch::SiteKind`](../pop_arch/enum.SiteKind.html): a block of
/// kind `K` can only be placed on a site of the matching kind.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BlockKind {
    /// Primary input pad.
    Input,
    /// Primary output pad.
    Output,
    /// Cluster-based logic block; carries the number of LUTs and FFs packed
    /// into its BLEs (used only for bookkeeping / Table 2 statistics).
    Clb {
        /// LUTs packed into this cluster.
        luts: u16,
        /// Flip-flops packed into this cluster.
        ffs: u16,
    },
    /// Block RAM.
    Memory,
    /// Multiplier / DSP block.
    Multiplier,
}

impl BlockKind {
    /// Whether this block must sit on an I/O site.
    pub fn is_io(&self) -> bool {
        matches!(self, BlockKind::Input | BlockKind::Output)
    }
}

/// One vertex of the packed netlist graph `Graph(V, E)`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Block {
    /// Dense block index.
    pub id: BlockId,
    /// Functional kind.
    pub kind: BlockKind,
    /// Human-readable name (`clb_17`, `in_3`, …).
    pub name: String,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn io_detection() {
        assert!(BlockKind::Input.is_io());
        assert!(BlockKind::Output.is_io());
        assert!(!BlockKind::Memory.is_io());
        assert!(!BlockKind::Clb { luts: 4, ffs: 2 }.is_io());
    }

    #[test]
    fn block_id_display_and_index() {
        assert_eq!(BlockId(42).to_string(), "b42");
        assert_eq!(BlockId(42).index(), 42);
    }
}
