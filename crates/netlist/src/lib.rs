//! Packed FPGA netlists and the synthetic benchmark generator.
//!
//! The paper evaluates on eight VTR designs (`diffeq1` … `bfly`). The BLIF
//! sources and VTR's packer are not available here, so this crate provides
//! the substitute mandated by the reproduction plan (see `DESIGN.md` §2):
//!
//! * [`Netlist`] — the packed netlist `Graph(V, E)`: blocks (CLBs holding
//!   several BLEs, I/O pads, memories, multipliers) and multi-terminal nets;
//! * [`SyntheticSpec`] + [`generate`] — a deterministic generator that
//!   produces netlists with a chosen LUT/FF/net budget, a geometric fanout
//!   distribution and Rent-style hierarchical locality (nets prefer blocks
//!   in the same recursive cluster, so good placements exist and congestion
//!   varies meaningfully across placements);
//! * [`presets`] — the eight paper designs with the LUT/FF/net counts of
//!   Table 2, plus a `scale` knob so tests and CPU-sized experiments can run
//!   on proportionally smaller instances.
//!
//! # Example
//!
//! ```
//! use pop_netlist::{presets, generate};
//!
//! let spec = presets::by_name("diffeq1").unwrap().scaled(0.05);
//! let netlist = generate(&spec);
//! assert!(netlist.nets().len() > 10);
//! assert_eq!(netlist.stats().name, "diffeq1");
//! ```

mod block;
mod generator;
mod net;
mod netlist;
pub mod presets;
pub mod text;

pub use block::{Block, BlockId, BlockKind};
pub use generator::{generate, SyntheticSpec};
pub use net::{Net, NetId};
pub use netlist::{DesignStats, Netlist, NetlistError};
