//! Plain-text netlist interchange format.
//!
//! A minimal, BLIF-spirited format so netlists can be stored, diffed and
//! shared without this crate's generator:
//!
//! ```text
//! .design diffeq1
//! .block 0 clb:5:2 clb_0
//! .block 1 input in_0
//! .net 0 1 0          # net 0: driver block 1, sink block 0
//! .end
//! ```
//!
//! [`to_text`] and [`from_text`] round-trip exactly; parsing re-validates
//! through [`Netlist::new`], so structural invariants always hold.

use crate::block::{Block, BlockId, BlockKind};
use crate::net::{Net, NetId};
use crate::netlist::{Netlist, NetlistError};
use std::error::Error;
use std::fmt;
use std::fmt::Write as _;

/// Errors produced while parsing the text format.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParseTextError {
    /// A line could not be parsed.
    Syntax {
        /// 1-based line number.
        line: usize,
        /// What went wrong.
        message: String,
    },
    /// The parsed structure failed netlist validation.
    Invalid(NetlistError),
}

impl fmt::Display for ParseTextError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseTextError::Syntax { line, message } => {
                write!(f, "line {line}: {message}")
            }
            ParseTextError::Invalid(e) => write!(f, "invalid netlist: {e}"),
        }
    }
}

impl Error for ParseTextError {}

impl From<NetlistError> for ParseTextError {
    fn from(e: NetlistError) -> Self {
        ParseTextError::Invalid(e)
    }
}

fn kind_to_text(kind: BlockKind) -> String {
    match kind {
        BlockKind::Input => "input".into(),
        BlockKind::Output => "output".into(),
        BlockKind::Clb { luts, ffs } => format!("clb:{luts}:{ffs}"),
        BlockKind::Memory => "memory".into(),
        BlockKind::Multiplier => "multiplier".into(),
    }
}

fn kind_from_text(s: &str) -> Option<BlockKind> {
    match s {
        "input" => Some(BlockKind::Input),
        "output" => Some(BlockKind::Output),
        "memory" => Some(BlockKind::Memory),
        "multiplier" => Some(BlockKind::Multiplier),
        _ => {
            let rest = s.strip_prefix("clb:")?;
            let (luts, ffs) = rest.split_once(':')?;
            Some(BlockKind::Clb {
                luts: luts.parse().ok()?,
                ffs: ffs.parse().ok()?,
            })
        }
    }
}

/// Serialises a netlist to the text format.
pub fn to_text(netlist: &Netlist) -> String {
    let mut out = String::new();
    let _ = writeln!(out, ".design {}", netlist.name());
    for b in netlist.blocks() {
        let _ = writeln!(out, ".block {} {} {}", b.id.0, kind_to_text(b.kind), b.name);
    }
    for n in netlist.nets() {
        let _ = write!(out, ".net {} {}", n.id.0, n.driver.0);
        for s in &n.sinks {
            let _ = write!(out, " {}", s.0);
        }
        out.push('\n');
    }
    out.push_str(".end\n");
    out
}

/// Parses the text format back into a validated [`Netlist`].
///
/// # Errors
///
/// Returns [`ParseTextError::Syntax`] for malformed lines and
/// [`ParseTextError::Invalid`] when the parsed structure violates netlist
/// invariants.
pub fn from_text(text: &str) -> Result<Netlist, ParseTextError> {
    let mut name = String::from("unnamed");
    let mut blocks: Vec<Block> = Vec::new();
    let mut nets: Vec<Net> = Vec::new();
    let syntax = |line: usize, message: &str| ParseTextError::Syntax {
        line,
        message: message.into(),
    };
    for (i, raw) in text.lines().enumerate() {
        let line_no = i + 1;
        // Strip comments and whitespace.
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let mut tok = line.split_whitespace();
        match tok.next() {
            Some(".design") => {
                name = tok
                    .next()
                    .ok_or_else(|| syntax(line_no, "missing design name"))?
                    .to_string();
            }
            Some(".block") => {
                let id: u32 = tok
                    .next()
                    .and_then(|t| t.parse().ok())
                    .ok_or_else(|| syntax(line_no, "bad block id"))?;
                if id as usize != blocks.len() {
                    return Err(syntax(line_no, "block ids must be dense and in order"));
                }
                let kind = tok
                    .next()
                    .and_then(kind_from_text)
                    .ok_or_else(|| syntax(line_no, "bad block kind"))?;
                let bname = tok
                    .next()
                    .ok_or_else(|| syntax(line_no, "missing block name"))?;
                blocks.push(Block {
                    id: BlockId(id),
                    kind,
                    name: bname.to_string(),
                });
            }
            Some(".net") => {
                let id: u32 = tok
                    .next()
                    .and_then(|t| t.parse().ok())
                    .ok_or_else(|| syntax(line_no, "bad net id"))?;
                if id as usize != nets.len() {
                    return Err(syntax(line_no, "net ids must be dense and in order"));
                }
                let driver: u32 = tok
                    .next()
                    .and_then(|t| t.parse().ok())
                    .ok_or_else(|| syntax(line_no, "bad driver id"))?;
                let sinks: Result<Vec<BlockId>, _> = tok
                    .map(|t| {
                        t.parse::<u32>()
                            .map(BlockId)
                            .map_err(|_| syntax(line_no, "bad sink id"))
                    })
                    .collect();
                nets.push(Net {
                    id: NetId(id),
                    driver: BlockId(driver),
                    sinks: sinks?,
                });
            }
            Some(".end") => break,
            Some(other) => {
                return Err(syntax(line_no, &format!("unknown directive {other}")));
            }
            None => unreachable!("empty lines are skipped"),
        }
    }
    Ok(Netlist::new(name, blocks, nets)?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::generate;
    use crate::presets;

    #[test]
    fn roundtrip_preserves_netlist() {
        let nl = generate(&presets::by_name("diffeq1").unwrap().scaled(0.02));
        let text = to_text(&nl);
        let back = from_text(&text).unwrap();
        assert_eq!(nl, back);
    }

    #[test]
    fn parses_comments_and_blank_lines() {
        let text = "\n# a comment\n.design t\n.block 0 input a # trailing\n.block 1 clb:3:1 b\n\n.net 0 0 1\n.end\n";
        let nl = from_text(text).unwrap();
        assert_eq!(nl.name(), "t");
        assert_eq!(nl.blocks().len(), 2);
        assert_eq!(nl.nets().len(), 1);
        assert_eq!(
            nl.block(BlockId(1)).kind,
            BlockKind::Clb { luts: 3, ffs: 1 }
        );
    }

    #[test]
    fn rejects_bad_kind_and_sparse_ids() {
        assert!(matches!(
            from_text(".block 0 gizmo g\n.end"),
            Err(ParseTextError::Syntax { .. })
        ));
        assert!(matches!(
            from_text(".block 5 input a\n.end"),
            Err(ParseTextError::Syntax { .. })
        ));
    }

    #[test]
    fn rejects_invalid_structure() {
        // Net referencing a missing block passes parsing, fails validation.
        let text = ".design t\n.block 0 input a\n.net 0 0 7\n.end";
        assert!(matches!(
            from_text(text),
            Err(ParseTextError::Invalid(NetlistError::DanglingBlock { .. }))
        ));
    }

    #[test]
    fn kind_text_roundtrip() {
        for kind in [
            BlockKind::Input,
            BlockKind::Output,
            BlockKind::Memory,
            BlockKind::Multiplier,
            BlockKind::Clb { luts: 7, ffs: 3 },
        ] {
            assert_eq!(kind_from_text(&kind_to_text(kind)), Some(kind));
        }
        assert_eq!(kind_from_text("clb:x:y"), None);
    }
}
