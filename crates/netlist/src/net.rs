use crate::block::BlockId;
use std::fmt;

/// Dense index of a [`Net`] within one [`Netlist`](crate::Netlist).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NetId(pub u32);

impl NetId {
    /// Returns the id as a `usize` for direct slice indexing.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for NetId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// One hyperedge of the packed netlist: a driver block fanning out to one or
/// more sink blocks.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Net {
    /// Dense net index.
    pub id: NetId,
    /// The block driving the net.
    pub driver: BlockId,
    /// Sink blocks (non-empty; a block may appear once).
    pub sinks: Vec<BlockId>,
}

impl Net {
    /// Iterator over every terminal (driver first, then sinks).
    pub fn terminals(&self) -> impl Iterator<Item = BlockId> + '_ {
        std::iter::once(self.driver).chain(self.sinks.iter().copied())
    }

    /// Number of terminals (driver + sinks).
    pub fn degree(&self) -> usize {
        1 + self.sinks.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn terminals_and_degree() {
        let n = Net {
            id: NetId(0),
            driver: BlockId(3),
            sinks: vec![BlockId(1), BlockId(2)],
        };
        let t: Vec<_> = n.terminals().collect();
        assert_eq!(t, vec![BlockId(3), BlockId(1), BlockId(2)]);
        assert_eq!(n.degree(), 3);
    }

    #[test]
    fn net_id_display() {
        assert_eq!(NetId(5).to_string(), "n5");
    }
}
