use crate::block::{Block, BlockId, BlockKind};
use crate::net::{Net, NetId};
use crate::netlist::Netlist;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Parameters of the synthetic benchmark generator.
///
/// Substitutes for the unavailable VTR BLIF benchmarks (DESIGN.md §2 row 2):
/// what the congestion predictor sees is the *image* of a placed design, so
/// the generator's job is to produce netlists of the right size, fanout
/// profile and spatial locality — not to be logically meaningful circuits.
///
/// Locality is modelled by laying blocks out on a hidden 1-D "affinity"
/// order and sampling net sinks at geometrically-distributed distances from
/// the driver. Annealing rediscovers this structure as 2-D locality, which
/// gives realistically non-uniform congestion that varies across placements.
#[derive(Debug, Clone, PartialEq)]
pub struct SyntheticSpec {
    /// Design name (also reported in Table 2 output).
    pub name: String,
    /// Total LUT budget (Table 2 `#LUTs`).
    pub luts: usize,
    /// Total flip-flop budget (Table 2 `#FF`).
    pub ffs: usize,
    /// Number of nets to generate (Table 2 `#Nets`).
    pub nets: usize,
    /// Primary inputs.
    pub inputs: usize,
    /// Primary outputs.
    pub outputs: usize,
    /// Memory blocks.
    pub memories: usize,
    /// Multiplier blocks.
    pub multipliers: usize,
    /// LUTs packed per CLB (VTR flagship: 10 BLEs per cluster).
    pub luts_per_clb: usize,
    /// Mean number of sinks per net (geometric distribution).
    pub mean_fanout: f64,
    /// Probability that a sink is drawn from the local neighbourhood rather
    /// than uniformly (0 = no locality, 1 = fully local).
    pub locality: f64,
    /// RNG seed; the same spec always generates the same netlist.
    pub seed: u64,
}

impl SyntheticSpec {
    /// Returns a copy scaled to `factor` of the original size (block and net
    /// budgets multiplied by `factor`, minimums preserved so the design stays
    /// well-formed). Used to shrink the paper's designs to CPU-sized
    /// instances while keeping their relative proportions.
    pub fn scaled(&self, factor: f64) -> SyntheticSpec {
        let f = factor.max(0.0);
        let scale = |v: usize, min: usize| -> usize {
            if v == 0 {
                0
            } else {
                ((v as f64 * f).round() as usize).max(min)
            }
        };
        SyntheticSpec {
            name: self.name.clone(),
            luts: scale(self.luts, self.luts_per_clb),
            ffs: scale(self.ffs, 1),
            nets: scale(self.nets, 8),
            inputs: scale(self.inputs, 2),
            outputs: scale(self.outputs, 2),
            memories: scale(self.memories, usize::from(self.memories > 0)),
            multipliers: scale(self.multipliers, usize::from(self.multipliers > 0)),
            luts_per_clb: self.luts_per_clb,
            mean_fanout: self.mean_fanout,
            locality: self.locality,
            seed: self.seed,
        }
    }

    /// Number of CLB blocks this spec packs into.
    pub fn clb_count(&self) -> usize {
        self.luts.div_ceil(self.luts_per_clb).max(1)
    }
}

/// Samples `1 + Geometric(p)` with mean `mean` (values ≥ 1, capped).
fn sample_fanout(rng: &mut StdRng, mean: f64, cap: usize) -> usize {
    let mean_extra = (mean - 1.0).max(0.0);
    let p = 1.0 / (1.0 + mean_extra);
    let mut k = 1usize;
    while k < cap && rng.gen::<f64>() > p {
        k += 1;
    }
    k
}

/// Generates the netlist described by `spec`. Deterministic in `spec.seed`.
///
/// Guarantees: block counts match the spec exactly; the net count matches
/// exactly; every net has a driver and at least one sink with no repeated
/// terminals; every primary input drives at least one net and every primary
/// output sinks at least one net (so the I/O ring is always exercised).
pub fn generate(spec: &SyntheticSpec) -> Netlist {
    let mut rng = StdRng::seed_from_u64(spec.seed ^ 0x9e37_79b9_7f4a_7c15);
    let mut blocks = Vec::new();

    let n_clb = spec.clb_count();
    // Distribute the LUT/FF budget across CLBs as evenly as possible.
    for i in 0..n_clb {
        let luts = (spec.luts * (i + 1) / n_clb - spec.luts * i / n_clb) as u16;
        let ffs = (spec.ffs * (i + 1) / n_clb - spec.ffs * i / n_clb) as u16;
        blocks.push(Block {
            id: BlockId(blocks.len() as u32),
            kind: BlockKind::Clb { luts, ffs },
            name: format!("clb_{i}"),
        });
    }
    for i in 0..spec.inputs {
        blocks.push(Block {
            id: BlockId(blocks.len() as u32),
            kind: BlockKind::Input,
            name: format!("in_{i}"),
        });
    }
    for i in 0..spec.outputs {
        blocks.push(Block {
            id: BlockId(blocks.len() as u32),
            kind: BlockKind::Output,
            name: format!("out_{i}"),
        });
    }
    for i in 0..spec.memories {
        blocks.push(Block {
            id: BlockId(blocks.len() as u32),
            kind: BlockKind::Memory,
            name: format!("mem_{i}"),
        });
    }
    for i in 0..spec.multipliers {
        blocks.push(Block {
            id: BlockId(blocks.len() as u32),
            kind: BlockKind::Multiplier,
            name: format!("mult_{i}"),
        });
    }

    let n_blocks = blocks.len();
    // Hidden affinity order: a fixed random permutation of all blocks.
    let mut order: Vec<usize> = (0..n_blocks).collect();
    for i in (1..n_blocks).rev() {
        let j = rng.gen_range(0..=i);
        order.swap(i, j);
    }
    // position_of[b] = index of block b in the affinity order.
    let mut position_of = vec![0usize; n_blocks];
    for (pos, &b) in order.iter().enumerate() {
        position_of[b] = pos;
    }

    let can_drive = |b: &Block| !matches!(b.kind, BlockKind::Output);
    let can_sink = |b: &Block| !matches!(b.kind, BlockKind::Input);
    let driver_pool: Vec<BlockId> = blocks
        .iter()
        .filter(|b| can_drive(b))
        .map(|b| b.id)
        .collect();
    let sink_pool: Vec<BlockId> = blocks
        .iter()
        .filter(|b| can_sink(b))
        .map(|b| b.id)
        .collect();

    // Pick one sink near `driver` on the affinity line (locality model), or
    // uniformly with probability 1 - locality.
    let pick_sink = |rng: &mut StdRng, driver: BlockId, taken: &[BlockId]| -> Option<BlockId> {
        for _attempt in 0..32 {
            let cand = if rng.gen::<f64>() < spec.locality {
                // Geometric hop distance along the affinity order.
                let mut d: isize = 1;
                while d < 24 && rng.gen::<f64>() > 0.35 {
                    d += 1;
                }
                if rng.gen::<bool>() {
                    d = -d;
                }
                let pos = position_of[driver.index()] as isize + d;
                let pos = pos.rem_euclid(n_blocks as isize) as usize;
                BlockId(order[pos] as u32)
            } else {
                sink_pool[rng.gen_range(0..sink_pool.len())]
            };
            let block = &blocks[cand.index()];
            // Outputs (and other pads) terminate far fewer nets than logic in
            // real designs; damp their selection so traffic does not pile up
            // on the I/O ring.
            if matches!(block.kind, BlockKind::Output) && rng.gen::<f64>() > 0.25 {
                continue;
            }
            if cand != driver && can_sink(block) && !taken.contains(&cand) {
                return Some(cand);
            }
        }
        // Dense fallback: first admissible sink.
        sink_pool
            .iter()
            .copied()
            .find(|&c| c != driver && !taken.contains(&c))
    };

    let mut nets: Vec<Net> = Vec::with_capacity(spec.nets);
    let mut output_covered = vec![false; n_blocks];
    let fanout_cap = 24.min(n_blocks.saturating_sub(1)).max(1);

    // Phase 1: every input drives a net.
    for b in &blocks {
        if nets.len() >= spec.nets {
            break;
        }
        if matches!(b.kind, BlockKind::Input) {
            let k = sample_fanout(&mut rng, spec.mean_fanout, fanout_cap);
            let mut sinks = Vec::with_capacity(k);
            for _ in 0..k {
                if let Some(s) = pick_sink(&mut rng, b.id, &sinks) {
                    sinks.push(s);
                }
            }
            if sinks.is_empty() {
                continue;
            }
            for &s in &sinks {
                output_covered[s.index()] = true;
            }
            nets.push(Net {
                id: NetId(nets.len() as u32),
                driver: b.id,
                sinks,
            });
        }
    }

    // Phase 2: every output sinks a net.
    for b in &blocks {
        if nets.len() >= spec.nets {
            break;
        }
        if matches!(b.kind, BlockKind::Output) && !output_covered[b.id.index()] {
            let driver = driver_pool[rng.gen_range(0..driver_pool.len())];
            if driver == b.id {
                continue;
            }
            nets.push(Net {
                id: NetId(nets.len() as u32),
                driver,
                sinks: vec![b.id],
            });
            output_covered[b.id.index()] = true;
        }
    }

    // Phase 3: fill the net budget with locality-biased nets.
    while nets.len() < spec.nets {
        let driver = driver_pool[rng.gen_range(0..driver_pool.len())];
        let k = sample_fanout(&mut rng, spec.mean_fanout, fanout_cap);
        let mut sinks = Vec::with_capacity(k);
        for _ in 0..k {
            if let Some(s) = pick_sink(&mut rng, driver, &sinks) {
                sinks.push(s);
            }
        }
        if sinks.is_empty() {
            continue;
        }
        nets.push(Net {
            id: NetId(nets.len() as u32),
            driver,
            sinks,
        });
    }

    Netlist::new(spec.name.clone(), blocks, nets)
        .expect("generator produces structurally valid netlists")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_spec() -> SyntheticSpec {
        SyntheticSpec {
            name: "tiny".into(),
            luts: 40,
            ffs: 12,
            nets: 60,
            inputs: 4,
            outputs: 4,
            memories: 1,
            multipliers: 1,
            luts_per_clb: 10,
            mean_fanout: 3.0,
            locality: 0.8,
            seed: 7,
        }
    }

    #[test]
    fn counts_match_spec() {
        let spec = tiny_spec();
        let nl = generate(&spec);
        let s = nl.stats();
        assert_eq!(s.nets, spec.nets);
        assert_eq!(s.clbs, spec.clb_count());
        assert_eq!(s.ios, spec.inputs + spec.outputs);
        assert_eq!(s.memories, 1);
        assert_eq!(s.multipliers, 1);
        assert_eq!(s.luts, spec.luts);
        assert_eq!(s.ffs, spec.ffs);
    }

    #[test]
    fn deterministic_in_seed() {
        let a = generate(&tiny_spec());
        let b = generate(&tiny_spec());
        assert_eq!(a, b);
        let mut other = tiny_spec();
        other.seed = 8;
        let c = generate(&other);
        assert_ne!(a, c);
    }

    #[test]
    fn every_input_drives_and_every_output_sinks() {
        let nl = generate(&tiny_spec());
        for b in nl.blocks() {
            match b.kind {
                BlockKind::Input => {
                    assert!(
                        nl.nets_of(b.id).iter().any(|&n| nl.net(n).driver == b.id),
                        "input {} drives nothing",
                        b.name
                    );
                }
                BlockKind::Output => {
                    assert!(
                        nl.nets_of(b.id)
                            .iter()
                            .any(|&n| nl.net(n).sinks.contains(&b.id)),
                        "output {} sinks nothing",
                        b.name
                    );
                }
                _ => {}
            }
        }
    }

    #[test]
    fn scaling_shrinks_but_keeps_minimums() {
        let spec = tiny_spec().scaled(0.1);
        assert!(spec.nets >= 8);
        assert!(spec.inputs >= 2);
        assert_eq!(spec.memories, 1); // nonzero stays nonzero
        let nl = generate(&spec);
        assert_eq!(nl.stats().nets, spec.nets);
    }

    #[test]
    fn scaled_zero_counts_stay_zero() {
        let mut spec = tiny_spec();
        spec.memories = 0;
        spec.multipliers = 0;
        let scaled = spec.scaled(0.5);
        assert_eq!(scaled.memories, 0);
        assert_eq!(scaled.multipliers, 0);
    }

    #[test]
    fn fanout_sampler_respects_cap_and_min() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..200 {
            let k = sample_fanout(&mut rng, 3.0, 5);
            assert!((1..=5).contains(&k));
        }
    }

    #[test]
    fn mean_fanout_is_roughly_respected() {
        let mut rng = StdRng::seed_from_u64(2);
        let n = 4000;
        let total: usize = (0..n).map(|_| sample_fanout(&mut rng, 3.0, 1000)).sum();
        let mean = total as f64 / n as f64;
        assert!((2.5..3.5).contains(&mean), "mean fanout {mean}");
    }
}
