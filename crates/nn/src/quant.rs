//! Opt-in `i8` weight quantization for inference.
//!
//! Weights are quantized symmetrically to the signed-8-bit grid
//! (`q = round(v / s)`, `|q| ≤ 127`) with **one scale per output row** —
//! per-output-channel for [`crate::Conv2d`], per output tap row for
//! [`crate::ConvTranspose2d`] — and activations are quantized dynamically
//! with one scale per im2col patch. The integer dot products accumulate in
//! `i32`, which is *exact* (no rounding: `127² · k` stays far below
//! `i32::MAX` for every layer shape here), so the only error is the two
//! quantization roundings; the final product is rescaled to `f32`.
//!
//! Quantized values are stored widened to `i16` and consumed through a
//! pair-interleaved 8-pixel panel ([`QPanel`]) whose inner product is the
//! `pmaddwd` shape: one broadcast weight pair against eight interleaved
//! activation pairs — 8 multiplies + 4 adds per SSE2 instruction, with
//! each panel load shared across two weight rows. LLVM's autovectorizer
//! does not find that shape on its own (measured: the scalar loop stays
//! scalar), so on `x86_64` — where SSE2 is the baseline ABI, no runtime
//! detection needed — the two panel dots use explicit intrinsics; every
//! other target runs a scalar kernel that, integer addition being
//! associative, is *bit-exact* with the SIMD path (pinned by test).
//!
//! The quantized layers are inference-only (`&self`, no caches) and are
//! consumed through `pop-core`'s quantized forecaster; the accuracy gate
//! lives there, next to the `MetricSet` it is judged with.

use crate::im2col::conv_out_dim;
use crate::tensor::Tensor;

/// Largest representable magnitude on the symmetric i8 grid.
pub const QMAX: f32 = 127.0;

/// Quantizes `values` onto the symmetric i8 grid (stored as `i16`),
/// returning the scale such that `v ≈ q · scale`. An all-zero (or empty)
/// input returns scale `0.0` with all-zero codes.
///
/// # Panics
///
/// Panics when `out` is shorter than `values`.
pub fn quantize_symmetric(values: &[f32], out: &mut [i16]) -> f32 {
    let maxabs = values.iter().fold(0.0f32, |m, v| m.max(v.abs()));
    if maxabs == 0.0 {
        out[..values.len()].fill(0);
        return 0.0;
    }
    let inv = QMAX / maxabs;
    for (o, &v) in out.iter_mut().zip(values) {
        // Branchless round-half-away-from-zero: `t + ±0.5` then truncate
        // (`as` is a saturating trunc the vectorizer lowers to
        // `cvttps2dq`, where `.round()` compiles to a scalar branchy
        // sequence on baseline x86-64). Differs from `.round()` only
        // within one float ulp of an exact `.5` tie, which stays inside
        // the half-step error bound.
        let t = v * inv;
        let r = (t + 0.5f32.copysign(t)) as i32;
        *o = r.clamp(-127, 127) as i16;
    }
    maxabs / QMAX
}

/// Integer dot product of two quantized rows (i8-range values in `i16`
/// storage), accumulated exactly in `i32`.
///
/// # Panics
///
/// Panics (debug) when lengths differ.
#[inline]
pub fn dot_q(a: &[i16], b: &[i16]) -> i32 {
    debug_assert_eq!(a.len(), b.len(), "quantized dot length");
    let mut acc = 0i32;
    for (&x, &y) in a.iter().zip(b) {
        acc += (x as i32) * (y as i32);
    }
    acc
}

/// A pair-interleaved panel of 8 quantized input columns — the classic
/// `pmaddwd` GEMM layout. Element pairs `(2q, 2q+1)` of each column sit
/// adjacently per pixel (`[pair][pixel][2]`), so the inner product
/// `w₂q·a + w₂q₊₁·b` over a broadcast weight pair is exactly the
/// multiply-adjacent-and-add idiom, with one vertical `i32` accumulator
/// per pixel and no per-dot horizontal reduction until the panel ends.
struct QPanel {
    /// `[len/2][PW][2]` interleaved pairs, then `[PW]` tail for odd `len`.
    data: Vec<i16>,
    /// Column length (the reduction dimension).
    len: usize,
}

/// Pixel-panel width shared by the quantized layers.
const PW: usize = 8;

impl QPanel {
    fn new(len: usize) -> Self {
        QPanel {
            data: vec![0i16; len.div_ceil(2) * 2 * PW],
            len,
        }
    }

    /// Installs `col` (one pixel's quantized column) as panel column `p`.
    fn pack(&mut self, p: usize, col: &[i16]) {
        debug_assert_eq!(col.len(), self.len);
        let pairs = self.len / 2;
        for q in 0..pairs {
            self.data[(q * PW + p) * 2] = col[2 * q];
            self.data[(q * PW + p) * 2 + 1] = col[2 * q + 1];
        }
        if self.len % 2 == 1 {
            self.data[pairs * PW * 2 + p] = col[self.len - 1];
        }
    }

    /// The 8 integer dots `wrow · columnₚ`, accumulated exactly in `i32`.
    #[inline]
    fn dots(&self, wrow: &[i16]) -> [i32; PW] {
        #[cfg(target_arch = "x86_64")]
        {
            self.dots_sse2(wrow)
        }
        #[cfg(not(target_arch = "x86_64"))]
        {
            self.dots_scalar(wrow)
        }
    }

    /// Two weight rows against the same panel: the panel loads are shared
    /// between the rows, which roughly doubles multiply throughput over
    /// two separate [`QPanel::dots`] calls (the loads, not the multiplies,
    /// bound the single-row kernel).
    #[inline]
    fn dots2(&self, w0: &[i16], w1: &[i16]) -> ([i32; PW], [i32; PW]) {
        #[cfg(target_arch = "x86_64")]
        {
            self.dots2_sse2(w0, w1)
        }
        #[cfg(not(target_arch = "x86_64"))]
        {
            (self.dots_scalar(w0), self.dots_scalar(w1))
        }
    }

    /// Portable reference kernel; the SIMD paths must match it exactly
    /// (integer arithmetic — regrouping the accumulation is lossless).
    #[cfg(any(test, not(target_arch = "x86_64")))]
    fn dots_scalar(&self, wrow: &[i16]) -> [i32; PW] {
        debug_assert_eq!(wrow.len(), self.len);
        let pairs = self.len / 2;
        let mut acc = [0i32; PW];
        for q in 0..pairs {
            let w0 = wrow[2 * q] as i32;
            let w1 = wrow[2 * q + 1] as i32;
            let prow: &[i16; 2 * PW] = self.data[q * PW * 2..(q + 1) * PW * 2]
                .try_into()
                .expect("panel pair row");
            for (p, a) in acc.iter_mut().enumerate() {
                *a += w0 * prow[2 * p] as i32 + w1 * prow[2 * p + 1] as i32;
            }
        }
        self.add_odd_tail(wrow, &mut acc);
        acc
    }

    /// Adds the odd-`len` tail element (stored un-paired after the pair
    /// rows) into each pixel's accumulator.
    #[inline]
    fn add_odd_tail(&self, wrow: &[i16], acc: &mut [i32; PW]) {
        if self.len % 2 == 1 {
            let pairs = self.len / 2;
            let wl = wrow[self.len - 1] as i32;
            let tail = &self.data[pairs * PW * 2..pairs * PW * 2 + PW];
            for (a, &t) in acc.iter_mut().zip(tail) {
                *a += wl * t as i32;
            }
        }
    }

    /// `pmaddwd` kernel: broadcast each weight pair, multiply-adjacent-add
    /// against the pair-interleaved panel (8 multiplies + 4 adds per
    /// instruction), accumulate vertically in `i32`. The autovectorizer
    /// does not discover this shape from the scalar loop (measured: it
    /// stays scalar), so the two hot dots use explicit SSE2 intrinsics —
    /// unconditionally available on `x86_64`, where SSE2 is part of the
    /// baseline ABI. Integer accumulation is associative, so the result is
    /// bit-exact with [`QPanel::dots_scalar`] (pinned by test).
    #[cfg(target_arch = "x86_64")]
    fn dots_sse2(&self, wrow: &[i16]) -> [i32; PW] {
        use std::arch::x86_64::*;
        debug_assert_eq!(wrow.len(), self.len);
        let pairs = self.len / 2;
        assert!(self.data.len() >= pairs * PW * 2, "panel size");
        let mut acc = [0i32; PW];
        // SAFETY: SSE2 is baseline on x86_64; every 16-byte load reads
        // `data[q·16 .. q·16 + 16]` with `q < pairs`, in bounds by the
        // assert above; the stores write the 8-i32 `acc` array exactly.
        unsafe {
            let mut lo = _mm_setzero_si128();
            let mut hi = _mm_setzero_si128();
            for q in 0..pairs {
                let wp =
                    _mm_set1_epi32(((wrow[2 * q + 1] as i32) << 16) | (wrow[2 * q] as u16 as i32));
                let p = self.data.as_ptr().add(q * PW * 2);
                let a = _mm_loadu_si128(p as *const __m128i);
                let b = _mm_loadu_si128(p.add(PW) as *const __m128i);
                lo = _mm_add_epi32(lo, _mm_madd_epi16(wp, a));
                hi = _mm_add_epi32(hi, _mm_madd_epi16(wp, b));
            }
            _mm_storeu_si128(acc.as_mut_ptr() as *mut __m128i, lo);
            _mm_storeu_si128(acc.as_mut_ptr().add(4) as *mut __m128i, hi);
        }
        self.add_odd_tail(wrow, &mut acc);
        acc
    }

    /// Two-row `pmaddwd` kernel: identical structure to
    /// [`QPanel::dots_sse2`] with both weight pairs broadcast per panel
    /// load, so each 16-byte panel read feeds two `pmaddwd`s.
    #[cfg(target_arch = "x86_64")]
    fn dots2_sse2(&self, w0: &[i16], w1: &[i16]) -> ([i32; PW], [i32; PW]) {
        use std::arch::x86_64::*;
        debug_assert_eq!(w0.len(), self.len);
        debug_assert_eq!(w1.len(), self.len);
        let pairs = self.len / 2;
        assert!(self.data.len() >= pairs * PW * 2, "panel size");
        let mut acc0 = [0i32; PW];
        let mut acc1 = [0i32; PW];
        // SAFETY: as in `dots_sse2` — baseline SSE2, loads bounded by the
        // assert, stores fill the two 8-i32 accumulator arrays.
        unsafe {
            let mut lo0 = _mm_setzero_si128();
            let mut hi0 = _mm_setzero_si128();
            let mut lo1 = _mm_setzero_si128();
            let mut hi1 = _mm_setzero_si128();
            for q in 0..pairs {
                let wp0 =
                    _mm_set1_epi32(((w0[2 * q + 1] as i32) << 16) | (w0[2 * q] as u16 as i32));
                let wp1 =
                    _mm_set1_epi32(((w1[2 * q + 1] as i32) << 16) | (w1[2 * q] as u16 as i32));
                let p = self.data.as_ptr().add(q * PW * 2);
                let a = _mm_loadu_si128(p as *const __m128i);
                let b = _mm_loadu_si128(p.add(PW) as *const __m128i);
                lo0 = _mm_add_epi32(lo0, _mm_madd_epi16(wp0, a));
                hi0 = _mm_add_epi32(hi0, _mm_madd_epi16(wp0, b));
                lo1 = _mm_add_epi32(lo1, _mm_madd_epi16(wp1, a));
                hi1 = _mm_add_epi32(hi1, _mm_madd_epi16(wp1, b));
            }
            _mm_storeu_si128(acc0.as_mut_ptr() as *mut __m128i, lo0);
            _mm_storeu_si128(acc0.as_mut_ptr().add(4) as *mut __m128i, hi0);
            _mm_storeu_si128(acc1.as_mut_ptr() as *mut __m128i, lo1);
            _mm_storeu_si128(acc1.as_mut_ptr().add(4) as *mut __m128i, hi1);
        }
        self.add_odd_tail(w0, &mut acc0);
        self.add_odd_tail(w1, &mut acc1);
        (acc0, acc1)
    }
}

/// An inference-only quantized [`crate::Conv2d`]: i8 weights with
/// per-output-channel scales, optional inference-affine (batch-norm)
/// folded into the scales and bias.
#[derive(Debug, Clone)]
pub struct QuantizedConv2d {
    in_c: usize,
    out_c: usize,
    k: usize,
    stride: usize,
    pad: usize,
    /// `[out_c][in_c·k·k]` quantized (BN-folded) weight rows.
    wq: Vec<i16>,
    /// Per-output-channel dequantization scales.
    scales: Vec<f32>,
    /// Per-output-channel bias (BN shift folded in).
    bias: Vec<f32>,
}

impl QuantizedConv2d {
    /// Builds from raw f32 weights `[out_c, in_c, k, k]` and bias,
    /// folding the optional per-channel inference affine `y = a·conv + s`
    /// into the quantized rows (`a` scales row `o`, bias becomes
    /// `a·bias + s`).
    ///
    /// # Panics
    ///
    /// Panics when slice lengths do not match the dimensions.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        in_c: usize,
        out_c: usize,
        k: usize,
        stride: usize,
        pad: usize,
        weight: &[f32],
        bias: &[f32],
        affine: Option<(&[f32], &[f32])>,
    ) -> Self {
        let ckk = in_c * k * k;
        assert_eq!(weight.len(), out_c * ckk, "weight size");
        assert_eq!(bias.len(), out_c, "bias size");
        let mut wq = vec![0i16; out_c * ckk];
        let mut scales = vec![0.0f32; out_c];
        let mut fbias = bias.to_vec();
        let mut row = vec![0.0f32; ckk];
        for o in 0..out_c {
            let (a, s) = match affine {
                Some((a, s)) => (a[o], s[o]),
                None => (1.0, 0.0),
            };
            for (r, &w) in row.iter_mut().zip(&weight[o * ckk..(o + 1) * ckk]) {
                *r = a * w;
            }
            scales[o] = quantize_symmetric(&row, &mut wq[o * ckk..(o + 1) * ckk]);
            fbias[o] = a * bias[o] + s;
        }
        QuantizedConv2d {
            in_c,
            out_c,
            k,
            stride,
            pad,
            wq,
            scales,
            bias: fbias,
        }
    }

    /// Output shape for a given input shape.
    pub fn output_shape(&self, input: [usize; 4]) -> [usize; 4] {
        [
            input[0],
            self.out_c,
            conv_out_dim(input[2], self.k, self.stride, self.pad),
            conv_out_dim(input[3], self.k, self.stride, self.pad),
        ]
    }

    /// Gathers the receptive-field patch for output pixel `(oy, ox)` into
    /// `patch` (zero-padded borders), mirroring im2col's layout.
    #[allow(clippy::too_many_arguments)]
    fn gather_patch(
        &self,
        xb: &[f32],
        h: usize,
        w: usize,
        oy: usize,
        ox: usize,
        patch: &mut [f32],
    ) {
        let ix0 = (ox * self.stride) as isize - self.pad as isize;
        let x_interior = ix0 >= 0 && ix0 + self.k as isize <= w as isize;
        let mut idx = 0;
        for ci in 0..self.in_c {
            for ky in 0..self.k {
                let iy = (oy * self.stride + ky) as isize - self.pad as isize;
                let row = &mut patch[idx..idx + self.k];
                if iy < 0 || iy >= h as isize {
                    row.fill(0.0);
                } else {
                    let src = &xb[(ci * h + iy as usize) * w..][..w];
                    if x_interior {
                        // Whole kernel row in bounds: one contiguous copy
                        // instead of a branch per tap.
                        row.copy_from_slice(&src[ix0 as usize..ix0 as usize + self.k]);
                    } else {
                        for (kx, slot) in row.iter_mut().enumerate() {
                            let ix = ix0 + kx as isize;
                            *slot = if ix < 0 || ix >= w as isize {
                                0.0
                            } else {
                                src[ix as usize]
                            };
                        }
                    }
                }
                idx += self.k;
            }
        }
    }

    /// Inference forward. Output pixels run in 8-wide [`QPanel`]s drawn
    /// from the global `batch × ho·wo` pixel stream (so layers with fewer
    /// than 8 pixels per image still fill panels): gather + quantize 8
    /// patches, pack them pair-interleaved, then feed weight rows through
    /// the two-row `pmaddwd` kernel — the `[out_c, ckk]` weight matrix
    /// streams once per 8 pixels and every panel load is shared between
    /// two rows. Integer accumulation is exact, so panel order does not
    /// change any output. No materialized im2col matrix.
    ///
    /// # Panics
    ///
    /// Panics when input channels disagree.
    pub fn forward(&self, x: &Tensor) -> Tensor {
        assert_eq!(x.c(), self.in_c, "input channels");
        let [n, _, h, w] = x.shape();
        let [_, _, ho, wo] = self.output_shape(x.shape());
        let ckk = self.in_c * self.k * self.k;
        let p_out = ho * wo;
        let mut y = Tensor::zeros([n, self.out_c, ho, wo]);
        let yd = y.data_mut();
        let mut patch = vec![0.0f32; ckk];
        let mut pq = vec![0i16; ckk];
        let mut panel = QPanel::new(ckk);
        let mut sx = [0.0f32; PW];
        // Panels run over the *global* pixel stream `b·p_out + pix` so
        // small-spatial layers (p_out < 8) still fill 8-wide panels across
        // batch images instead of falling back to scalar dots.
        let total = n * p_out;
        let xstride = self.in_c * h * w;
        let mut g0 = 0;
        while g0 + PW <= total {
            for (p, s) in sx.iter_mut().enumerate() {
                let (b, pix) = ((g0 + p) / p_out, (g0 + p) % p_out);
                let xb = &x.data()[b * xstride..][..xstride];
                self.gather_patch(xb, h, w, pix / wo, pix % wo, &mut patch);
                *s = quantize_symmetric(&patch, &mut pq);
                panel.pack(p, &pq);
            }
            let mut write = |o: usize, acc: [i32; PW]| {
                for (p, &a) in acc.iter().enumerate() {
                    let (b, pix) = ((g0 + p) / p_out, (g0 + p) % p_out);
                    let v = if sx[p] == 0.0 {
                        0.0
                    } else {
                        self.scales[o] * sx[p] * a as f32
                    };
                    yd[(b * self.out_c + o) * p_out + pix] = v + self.bias[o];
                }
            };
            let mut o = 0;
            while o + 2 <= self.out_c {
                let (acc0, acc1) = panel.dots2(
                    &self.wq[o * ckk..(o + 1) * ckk],
                    &self.wq[(o + 1) * ckk..(o + 2) * ckk],
                );
                write(o, acc0);
                write(o + 1, acc1);
                o += 2;
            }
            if o < self.out_c {
                write(o, panel.dots(&self.wq[o * ckk..(o + 1) * ckk]));
            }
            g0 += PW;
        }
        // Pixel tail (< 8 remaining in the whole batch): one at a time.
        for g in g0..total {
            let (b, pix) = (g / p_out, g % p_out);
            let xb = &x.data()[b * xstride..][..xstride];
            self.gather_patch(xb, h, w, pix / wo, pix % wo, &mut patch);
            let sx = quantize_symmetric(&patch, &mut pq);
            for o in 0..self.out_c {
                let v = if sx == 0.0 {
                    0.0
                } else {
                    let acc = dot_q(&self.wq[o * ckk..(o + 1) * ckk], &pq);
                    self.scales[o] * sx * acc as f32
                };
                yd[(b * self.out_c + o) * p_out + pix] = v + self.bias[o];
            }
        }
        y
    }
}

/// An inference-only quantized [`crate::ConvTranspose2d`]: the weight is
/// stored transposed (`[out_c·k·k][in_c]` rows) so the per-input-pixel
/// reduction over `in_c` is a contiguous integer dot, with one scale per
/// output tap row (channel × kernel tap) and batch-norm folded in.
#[derive(Debug, Clone)]
pub struct QuantizedConvTranspose2d {
    in_c: usize,
    out_c: usize,
    k: usize,
    stride: usize,
    pad: usize,
    /// `[out_c·k·k][in_c]` quantized transposed (BN-folded) weight rows.
    wq: Vec<i16>,
    /// Per-row dequantization scales.
    scales: Vec<f32>,
    /// Per-output-channel bias (BN shift folded in).
    bias: Vec<f32>,
}

impl QuantizedConvTranspose2d {
    /// Builds from raw f32 weights `[in_c, out_c, k, k]` and bias,
    /// folding the optional per-output-channel inference affine.
    ///
    /// # Panics
    ///
    /// Panics when slice lengths do not match the dimensions.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        in_c: usize,
        out_c: usize,
        k: usize,
        stride: usize,
        pad: usize,
        weight: &[f32],
        bias: &[f32],
        affine: Option<(&[f32], &[f32])>,
    ) -> Self {
        let ckk = out_c * k * k;
        assert_eq!(weight.len(), in_c * ckk, "weight size");
        assert_eq!(bias.len(), out_c, "bias size");
        let mut wq = vec![0i16; ckk * in_c];
        let mut scales = vec![0.0f32; ckk];
        let mut fbias = bias.to_vec();
        let mut row = vec![0.0f32; in_c];
        for r in 0..ckk {
            let co = r / (k * k);
            let a = affine.map(|(a, _)| a[co]).unwrap_or(1.0);
            for (ci, slot) in row.iter_mut().enumerate() {
                *slot = a * weight[ci * ckk + r];
            }
            scales[r] = quantize_symmetric(&row, &mut wq[r * in_c..(r + 1) * in_c]);
        }
        for o in 0..out_c {
            let (a, s) = match affine {
                Some((a, s)) => (a[o], s[o]),
                None => (1.0, 0.0),
            };
            fbias[o] = a * bias[o] + s;
        }
        QuantizedConvTranspose2d {
            in_c,
            out_c,
            k,
            stride,
            pad,
            wq,
            scales,
            bias: fbias,
        }
    }

    /// Output shape: `(dim − 1)·stride − 2·pad + k` per spatial axis.
    pub fn output_shape(&self, input: [usize; 4]) -> [usize; 4] {
        [
            input[0],
            self.out_c,
            (input[2] - 1) * self.stride + self.k - 2 * self.pad,
            (input[3] - 1) * self.stride + self.k - 2 * self.pad,
        ]
    }

    /// Inference forward: per input pixel, quantize its channel vector,
    /// run `out_c·k²` integer dots, and scatter-add the dequantized patch
    /// into the (bias-prefilled) output — `col2im` without the matrix.
    ///
    /// # Panics
    ///
    /// Panics when input channels disagree.
    pub fn forward(&self, x: &Tensor) -> Tensor {
        assert_eq!(x.c(), self.in_c, "input channels");
        let [n, _, h, w] = x.shape();
        let out = self.output_shape(x.shape());
        let (ho, wo) = (out[2], out[3]);
        let ckk = self.out_c * self.k * self.k;
        let p_out = ho * wo;
        let mut y = Tensor::zeros(out);
        let yd = y.data_mut();
        for b in 0..n {
            for o in 0..self.out_c {
                yd[(b * self.out_c + o) * p_out..][..p_out].fill(self.bias[o]);
            }
        }
        let mut xcol = vec![0.0f32; self.in_c];
        let mut xq = vec![0i16; self.in_c];
        let mut panel = QPanel::new(self.in_c);
        let mut sx = [0.0f32; PW];
        let mut patch = vec![0.0f32; ckk];
        // Dequantized taps for a whole panel, `[row][pixel]`-interleaved.
        let mut patch_panel = vec![0.0f32; ckk * PW];
        // 8 input pixels per panel, taken from the *global* stream
        // `b·h·w + iy·w + ix` so narrow layers (w < 8) still fill panels
        // across rows and batch images: the `[out_c·k², in_c]` weight
        // matrix streams once per panel instead of once per pixel, with
        // each row pair's 16 dots running as `pmaddwd`-shaped vertical
        // accumulators. Integer accumulation is exact, so each pixel's
        // taps are identical to the one-pixel path.
        let ic = self.in_c;
        let xstride = ic * h * w;
        let ystride = self.out_c * p_out;
        let total = n * h * w;
        let mut g0 = 0;
        while g0 + PW <= total {
            for (p, s) in sx.iter_mut().enumerate() {
                let (b, pix) = ((g0 + p) / (h * w), (g0 + p) % (h * w));
                let xb = &x.data()[b * xstride..][..xstride];
                for (ci, slot) in xcol.iter_mut().enumerate() {
                    *slot = xb[ci * h * w + pix];
                }
                *s = quantize_symmetric(&xcol, &mut xq);
                panel.pack(p, &xq);
            }
            let mut rows = patch_panel.chunks_exact_mut(2 * PW);
            let mut r = 0;
            for taps2 in &mut rows {
                let (acc0, acc1) = panel.dots2(
                    &self.wq[r * ic..(r + 1) * ic],
                    &self.wq[(r + 1) * ic..(r + 2) * ic],
                );
                let (t0, t1) = taps2.split_at_mut(PW);
                for p in 0..PW {
                    t0[p] = self.scales[r] * sx[p] * acc0[p] as f32;
                    t1[p] = self.scales[r + 1] * sx[p] * acc1[p] as f32;
                }
                r += 2;
            }
            let taps = rows.into_remainder();
            if !taps.is_empty() {
                let acc = panel.dots(&self.wq[r * ic..(r + 1) * ic]);
                for (p, tap) in taps.iter_mut().enumerate() {
                    *tap = self.scales[r] * sx[p] * acc[p] as f32;
                }
            }
            for (p, &s) in sx.iter().enumerate() {
                if s == 0.0 {
                    continue;
                }
                let (b, pix) = ((g0 + p) / (h * w), (g0 + p) % (h * w));
                let yb = &mut yd[b * ystride..][..ystride];
                self.scatter_pixel(yb, &patch_panel, p, PW, pix / w, pix % w, ho, wo);
            }
            g0 += PW;
        }
        // Pixel tail (< 8 remaining in the whole batch): one at a time.
        for g in g0..total {
            let (b, pix) = (g / (h * w), g % (h * w));
            let xb = &x.data()[b * xstride..][..xstride];
            for (ci, slot) in xcol.iter_mut().enumerate() {
                *slot = xb[ci * h * w + pix];
            }
            let sx = quantize_symmetric(&xcol, &mut xq);
            if sx == 0.0 {
                continue;
            }
            for (r, slot) in patch.iter_mut().enumerate() {
                let acc = dot_q(&self.wq[r * ic..(r + 1) * ic], &xq);
                *slot = self.scales[r] * sx * acc as f32;
            }
            let yb = &mut yd[b * ystride..][..ystride];
            self.scatter_pixel(yb, &patch, 0, 1, pix / w, pix % w, ho, wo);
        }
        y
    }

    /// Scatter-adds one input pixel's dequantized tap patch into the
    /// output. `taps` is `[row · lanes + lane]`-interleaved; `lane`/`lanes`
    /// select this pixel's column (lanes = 1 for a plain patch).
    #[allow(clippy::too_many_arguments)]
    fn scatter_pixel(
        &self,
        yb: &mut [f32],
        taps: &[f32],
        lane: usize,
        lanes: usize,
        iy: usize,
        ix: usize,
        ho: usize,
        wo: usize,
    ) {
        let ox0 = (ix * self.stride) as isize - self.pad as isize;
        let x_interior = ox0 >= 0 && ox0 + self.k as isize <= wo as isize;
        for co in 0..self.out_c {
            for ky in 0..self.k {
                let oy = (iy * self.stride + ky) as isize - self.pad as isize;
                if oy < 0 || oy >= ho as isize {
                    continue;
                }
                let dst = &mut yb[(co * ho + oy as usize) * wo..][..wo];
                let trow = ((co * self.k + ky) * self.k) * lanes + lane;
                if x_interior {
                    // Whole tap row lands in bounds: branchless strided
                    // accumulate over the k output columns.
                    let dst = &mut dst[ox0 as usize..ox0 as usize + self.k];
                    for (kx, slot) in dst.iter_mut().enumerate() {
                        *slot += taps[trow + kx * lanes];
                    }
                } else {
                    for kx in 0..self.k {
                        let oxp = ox0 + kx as isize;
                        if oxp < 0 || oxp >= wo as isize {
                            continue;
                        }
                        dst[oxp as usize] += taps[trow + kx * lanes];
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Conv2d, ConvTranspose2d, Layer};

    #[test]
    fn quantize_roundtrip_error_is_bounded_by_half_step() {
        let vals: Vec<f32> = (0..257).map(|i| ((i as f32) * 0.37).sin() * 3.0).collect();
        let mut q = vec![0i16; vals.len()];
        let scale = quantize_symmetric(&vals, &mut q);
        assert!(scale > 0.0);
        for (&v, &qi) in vals.iter().zip(&q) {
            assert!((-127..=127).contains(&qi), "code {qi} out of i8 range");
            let back = qi as f32 * scale;
            assert!(
                (v - back).abs() <= scale * 0.5 + 1e-6,
                "value {v} roundtripped to {back} (scale {scale})"
            );
        }
    }

    #[test]
    fn zero_input_quantizes_to_zero_scale() {
        let mut q = vec![7i16; 4];
        let scale = quantize_symmetric(&[0.0; 4], &mut q);
        assert_eq!(scale, 0.0);
        assert_eq!(q, vec![0; 4]);
    }

    #[test]
    fn quantized_conv_tracks_f32_conv() {
        let mut conv = Conv2d::new(3, 5, 4, 2, 1, 9);
        let qconv = conv.quantize(None);
        let x = Tensor::randn([2, 3, 8, 8], 0.0, 1.0, 10);
        let want = conv.forward(&x, false);
        let got = qconv.forward(&x);
        assert_eq!(got.shape(), want.shape());
        let maxabs = want.data().iter().fold(0.0f32, |m, v| m.max(v.abs()));
        for (a, b) in got.data().iter().zip(want.data()) {
            assert!(
                (a - b).abs() < 0.04 * maxabs.max(1.0),
                "quantized {a} vs f32 {b}"
            );
        }
    }

    #[test]
    fn quantized_deconv_tracks_f32_deconv() {
        let mut deconv = ConvTranspose2d::new(6, 3, 4, 2, 1, 11);
        let qdeconv = deconv.quantize(None);
        let x = Tensor::randn([2, 6, 4, 4], 0.0, 1.0, 12);
        let want = deconv.forward(&x, false);
        let got = qdeconv.forward(&x);
        assert_eq!(got.shape(), want.shape());
        let maxabs = want.data().iter().fold(0.0f32, |m, v| m.max(v.abs()));
        for (a, b) in got.data().iter().zip(want.data()) {
            assert!(
                (a - b).abs() < 0.04 * maxabs.max(1.0),
                "quantized {a} vs f32 {b}"
            );
        }
    }

    #[test]
    fn affine_fold_matches_post_scaling() {
        // conv → per-channel affine must equal the folded quantized conv
        // up to quantization error.
        let mut conv = Conv2d::new(2, 3, 4, 2, 1, 13);
        let a = [0.5f32, 2.0, -1.25];
        let s = [0.1f32, -0.2, 0.3];
        let qconv = conv.quantize(Some((&a, &s)));
        let x = Tensor::randn([1, 2, 8, 8], 0.0, 1.0, 14);
        let f = conv.forward(&x, false);
        let mut want = f.clone();
        let [_, _, ho, wo] = f.shape();
        for c in 0..3 {
            for v in &mut want.data_mut()[c * ho * wo..(c + 1) * ho * wo] {
                *v = a[c] * *v + s[c];
            }
        }
        let got = qconv.forward(&x);
        let maxabs = want.data().iter().fold(0.0f32, |m, v| m.max(v.abs()));
        for (g, w) in got.data().iter().zip(want.data()) {
            assert!((g - w).abs() < 0.04 * maxabs.max(1.0), "{g} vs {w}");
        }
    }

    #[test]
    fn panel_simd_dots_match_scalar_exactly() {
        // Odd and even reduction lengths, including the pair tail.
        for len in [1usize, 2, 7, 8, 31, 96, 145] {
            let mut panel = QPanel::new(len);
            let mut col = vec![0i16; len];
            for p in 0..PW {
                for (i, c) in col.iter_mut().enumerate() {
                    *c = ((i * 31 + p * 57 + 13) % 255) as i16 - 127;
                }
                panel.pack(p, &col);
            }
            let w: Vec<i16> = (0..2 * len)
                .map(|i| ((i * 89 + 5) % 255) as i16 - 127)
                .collect();
            let (w0, w1) = w.split_at(len);
            assert_eq!(panel.dots(w0), panel.dots_scalar(w0), "len {len}");
            let (a0, a1) = panel.dots2(w0, w1);
            assert_eq!(a0, panel.dots_scalar(w0), "dots2 row0 len {len}");
            assert_eq!(a1, panel.dots_scalar(w1), "dots2 row1 len {len}");
        }
    }

    #[test]
    fn dot_q_is_exact() {
        let a: Vec<i16> = (-10..10).collect();
        let b: Vec<i16> = (0..20).map(|v| (v * 3 - 17) as i16).collect();
        let want: i32 = a.iter().zip(&b).map(|(&x, &y)| x as i32 * y as i32).sum();
        assert_eq!(dot_q(&a, &b), want);
    }
}
