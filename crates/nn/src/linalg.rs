//! Minimal dense matrix kernels used by the convolution layers.
//!
//! Row-major `f32` matrices as flat slices, shaped for the autovectorizer:
//! every kernel works on **8-wide column panels** with a small block of
//! independent accumulator registers (4 rows × 8 columns for `nn`/`tn`,
//! 8 columns for `nt`), so the innermost loop is a fixed-width bundle of
//! independent fused multiply-adds over contiguous `B` memory — the exact
//! shape LLVM provably lowers to SIMD without `unsafe` or intrinsics.
//!
//! **Bitwise contract.** Register blocking only regroups *independent*
//! output elements: each `C[i, j]` is seeded from the existing `C` value
//! and accumulates its `k` products in ascending order, exactly like the
//! scalar reference kernel, so results are bitwise-identical to a naive
//! triple loop (`tests/kernel_prop.rs` pins this across odd shapes and
//! tails). The old `if aik == 0.0` skip is gone: it broke the fixed-width
//! panel shape (a data-dependent branch in the hot loop defeats
//! vectorization) and, for the finite values these layers produce, adding
//! a `±0.0` product is an accumulator no-op. Kernels assume finite inputs.
//!
//! `matmul_nn` / `matmul_tn` additionally tile over columns so the
//! re-streamed `B` panel stays cache-resident when `n` is large — the
//! regime batched inference creates by widening `n` to `batch · ho · wo`.

/// Column-panel width: 8 f32 lanes (one AVX register, two SSE registers).
const NR: usize = 8;
/// Row-block height for the `nn`/`tn` kernels: 4 independent accumulator
/// rows amortise each `B` panel load across 4 outputs.
const MR: usize = 4;

/// Column-tile width targeting a ~1 MiB working panel (`rows · tile · 4`
/// bytes) so it stays inside the L2 cache.
fn col_tile(rows: usize, n: usize) -> usize {
    (262_144 / rows.max(1)).max(32).min(n.max(1))
}

/// `C += A @ B` where `A` is `m×k`, `B` is `k×n`, `C` is `m×n`.
///
/// # Panics
///
/// Panics when slice lengths do not match the dimensions.
pub fn matmul_nn(a: &[f32], b: &[f32], c: &mut [f32], m: usize, k: usize, n: usize) {
    assert_eq!(a.len(), m * k, "A size");
    assert_eq!(b.len(), k * n, "B size");
    assert_eq!(c.len(), m * n, "C size");
    // The B panel (k rows) is re-streamed for every 4-row block; tile it.
    let tile = col_tile(k, n);
    let mut j0 = 0;
    while j0 < n {
        let j1 = (j0 + tile).min(n);
        let mut i = 0;
        while i + MR <= m {
            let rows: [&[f32]; MR] = std::array::from_fn(|r| &a[(i + r) * k..(i + r + 1) * k]);
            block_rows(&rows, b, c, i, k, n, j0, j1);
            i += MR;
        }
        while i < m {
            let rows = [&a[i * k..(i + 1) * k]];
            block_rows(&rows, b, c, i, k, n, j0, j1);
            i += 1;
        }
        j0 = j1;
    }
}

/// `C += Aᵀ @ B` where `A` is `k×m`, `B` is `k×n`, `C` is `m×n`.
///
/// Packs `Aᵀ` into a row-major scratch once (a cache-blocked transpose,
/// each source line touched once), then runs the `nn` block kernel on it:
/// reading `A` directly would stride the inner loop by `m` — one cache
/// line per 4 floats, re-streamed for every column panel — which measures
/// several times slower than the pack at the deconv shapes (`m` in the
/// hundreds to thousands). The pack is O(m·k) against O(m·k·n) compute and
/// does not touch the per-output fold order, so the bitwise contract is
/// exactly `matmul_nn`'s.
///
/// # Panics
///
/// Panics when slice lengths do not match the dimensions.
pub fn matmul_tn(a: &[f32], b: &[f32], c: &mut [f32], m: usize, k: usize, n: usize) {
    assert_eq!(a.len(), k * m, "A size");
    assert_eq!(b.len(), k * n, "B size");
    assert_eq!(c.len(), m * n, "C size");
    const TB: usize = 32;
    let mut at = vec![0.0f32; m * k];
    let mut ib = 0;
    while ib < m {
        let i1 = (ib + TB).min(m);
        let mut kb = 0;
        while kb < k {
            let k1 = (kb + TB).min(k);
            for i in ib..i1 {
                for kk in kb..k1 {
                    at[i * k + kk] = a[kk * m + i];
                }
            }
            kb = k1;
        }
        ib = i1;
    }
    matmul_nn(&at, b, c, m, k, n);
}

/// `C += A @ Bᵀ` where `A` is `m×k`, `B` is `n×k`, `C` is `m×n`.
///
/// Backward-only (weight gradients). The reduction runs along `k`, so the
/// win here is 8 *independent* accumulator chains across output columns:
/// each dot product still folds `k` in ascending order (bitwise-stable),
/// but the chains interleave for instruction-level parallelism instead of
/// serialising on one accumulator.
///
/// # Panics
///
/// Panics when slice lengths do not match the dimensions.
pub fn matmul_nt(a: &[f32], b: &[f32], c: &mut [f32], m: usize, k: usize, n: usize) {
    assert_eq!(a.len(), m * k, "A size");
    assert_eq!(b.len(), n * k, "B size");
    assert_eq!(c.len(), m * n, "C size");
    for i in 0..m {
        let a_row = &a[i * k..(i + 1) * k];
        let c_row = &mut c[i * n..(i + 1) * n];
        let mut j = 0;
        while j + NR <= n {
            let b_rows: [&[f32]; NR] = std::array::from_fn(|l| &b[(j + l) * k..(j + l + 1) * k]);
            let mut acc = [0.0f32; NR];
            for (kk, &av) in a_row.iter().enumerate() {
                for l in 0..NR {
                    acc[l] += av * b_rows[l][kk];
                }
            }
            for l in 0..NR {
                c_row[j + l] += acc[l];
            }
            j += NR;
        }
        for jj in j..n {
            let b_row = &b[jj * k..(jj + 1) * k];
            let mut acc = 0.0f32;
            for (av, bv) in a_row.iter().zip(b_row) {
                acc += av * bv;
            }
            c_row[jj] += acc;
        }
    }
}

/// Shared row-block kernel for `matmul_nn`: `rows` holds R row slices of
/// `A` (each of length `k`) for output rows `i0..i0+R`; accumulates the
/// `[j0, j1)` column span of `C` in 8-wide register panels.
#[allow(clippy::too_many_arguments)]
fn block_rows<const R: usize>(
    rows: &[&[f32]; R],
    b: &[f32],
    c: &mut [f32],
    i0: usize,
    k: usize,
    n: usize,
    j0: usize,
    j1: usize,
) {
    let mut j = j0;
    while j + NR <= j1 {
        // Seed the register block from C so each output's accumulation
        // chain is exactly `c += a·b` in ascending k — bitwise-identical
        // to the scalar kernel.
        let mut acc = [[0.0f32; NR]; R];
        for (r, accr) in acc.iter_mut().enumerate() {
            accr.copy_from_slice(&c[(i0 + r) * n + j..(i0 + r) * n + j + NR]);
        }
        for kk in 0..k {
            let bp: &[f32; NR] = b[kk * n + j..kk * n + j + NR]
                .try_into()
                .expect("panel width");
            for (accr, row) in acc.iter_mut().zip(rows) {
                let av = row[kk];
                for l in 0..NR {
                    accr[l] += av * bp[l];
                }
            }
        }
        for (r, accr) in acc.iter().enumerate() {
            c[(i0 + r) * n + j..(i0 + r) * n + j + NR].copy_from_slice(accr);
        }
        j += NR;
    }
    // Column tail (< 8 wide): independent scalar chains, same fold order.
    for jj in j..j1 {
        for (r, row) in rows.iter().enumerate() {
            let mut acc = c[(i0 + r) * n + jj];
            for (kk, &av) in row.iter().enumerate() {
                acc += av * b[kk * n + jj];
            }
            c[(i0 + r) * n + jj] = acc;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn naive(a: &[f32], b: &[f32], m: usize, k: usize, n: usize) -> Vec<f32> {
        let mut c = vec![0.0; m * n];
        for i in 0..m {
            for j in 0..n {
                for kk in 0..k {
                    c[i * n + j] += a[i * k + kk] * b[kk * n + j];
                }
            }
        }
        c
    }

    fn transpose(a: &[f32], rows: usize, cols: usize) -> Vec<f32> {
        let mut t = vec![0.0; a.len()];
        for r in 0..rows {
            for c in 0..cols {
                t[c * rows + r] = a[r * cols + c];
            }
        }
        t
    }

    fn randmat(len: usize, seed: u64) -> Vec<f32> {
        // Small deterministic pseudo-random values.
        (0..len)
            .map(|i| {
                let x = (i as u64)
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(seed);
                ((x >> 33) as f32 / 2.0_f32.powi(31)) - 1.0
            })
            .collect()
    }

    #[test]
    fn nn_matches_naive() {
        let (m, k, n) = (5, 7, 3);
        let a = randmat(m * k, 1);
        let b = randmat(k * n, 2);
        let mut c = vec![0.0; m * n];
        matmul_nn(&a, &b, &mut c, m, k, n);
        let want = naive(&a, &b, m, k, n);
        for (x, y) in c.iter().zip(&want) {
            assert!((x - y).abs() < 1e-4);
        }
    }

    #[test]
    fn nt_matches_naive() {
        let (m, k, n) = (4, 6, 5);
        let a = randmat(m * k, 3);
        let bt = randmat(n * k, 4); // B stored as n×k
        let b = transpose(&bt, n, k); // k×n
        let mut c = vec![0.0; m * n];
        matmul_nt(&a, &bt, &mut c, m, k, n);
        let want = naive(&a, &b, m, k, n);
        for (x, y) in c.iter().zip(&want) {
            assert!((x - y).abs() < 1e-4);
        }
    }

    #[test]
    fn tn_matches_naive() {
        let (m, k, n) = (3, 8, 4);
        let at = randmat(k * m, 5); // A stored as k×m
        let a = transpose(&at, k, m); // m×k
        let b = randmat(k * n, 6);
        let mut c = vec![0.0; m * n];
        matmul_tn(&at, &b, &mut c, m, k, n);
        let want = naive(&a, &b, m, k, n);
        for (x, y) in c.iter().zip(&want) {
            assert!((x - y).abs() < 1e-4);
        }
    }

    /// Shapes spanning the register-block boundaries: full 4×8 blocks,
    /// row tails, column tails, and single-row/column degenerates must all
    /// be **bitwise** equal to the naive triple loop (same per-element
    /// fold order), not merely close.
    #[test]
    fn nn_is_bitwise_identical_to_naive_across_tails() {
        for &(m, k, n) in &[
            (4, 5, 8),
            (4, 5, 16),
            (5, 3, 9),
            (7, 11, 23),
            (1, 1, 1),
            (8, 2, 7),
            (9, 13, 40),
        ] {
            let a = randmat(m * k, 7);
            let b = randmat(k * n, 8);
            let mut c = vec![0.0; m * n];
            matmul_nn(&a, &b, &mut c, m, k, n);
            let want = naive(&a, &b, m, k, n);
            assert_eq!(
                c.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                want.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                "shape ({m},{k},{n})"
            );
        }
    }

    #[test]
    fn accumulates_into_c() {
        let a = vec![1.0, 0.0, 0.0, 1.0];
        let b = vec![2.0, 3.0, 4.0, 5.0];
        let mut c = vec![10.0, 10.0, 10.0, 10.0];
        matmul_nn(&a, &b, &mut c, 2, 2, 2);
        assert_eq!(c, vec![12.0, 13.0, 14.0, 15.0]);
    }

    #[test]
    #[should_panic(expected = "A size")]
    fn size_checks() {
        let mut c = vec![0.0; 4];
        matmul_nn(&[1.0; 3], &[1.0; 4], &mut c, 2, 2, 2);
    }
}
