//! Minimal dense matrix kernels used by the convolution layers.
//!
//! Row-major `f32` matrices as flat slices. The `ikj` loop order keeps the
//! innermost loop streaming over contiguous memory, which the compiler
//! auto-vectorises — enough throughput for the CPU-scale experiments.
//!
//! `matmul_nn` / `matmul_tn` additionally tile over columns so the
//! re-streamed `B` (and `C`) panels stay cache-resident when `n` is large —
//! the regime batched inference creates by widening `n` to
//! `batch · ho · wo`. Tiling only regroups *independent* output columns:
//! every `C[i, j]` still accumulates over `k` in ascending order, so
//! results are bitwise-identical to the untiled kernel.

/// Column-tile width targeting a ~1 MiB working panel (`rows · tile · 4`
/// bytes) so it stays inside the L2 cache.
fn col_tile(rows: usize, n: usize) -> usize {
    (262_144 / rows.max(1)).max(32).min(n.max(1))
}

/// `C += A @ B` where `A` is `m×k`, `B` is `k×n`, `C` is `m×n`.
///
/// # Panics
///
/// Panics when slice lengths do not match the dimensions.
pub fn matmul_nn(a: &[f32], b: &[f32], c: &mut [f32], m: usize, k: usize, n: usize) {
    assert_eq!(a.len(), m * k, "A size");
    assert_eq!(b.len(), k * n, "B size");
    assert_eq!(c.len(), m * n, "C size");
    // The B panel (k rows) is re-streamed for every output row; tile it.
    let tile = col_tile(k + m, n);
    let mut j0 = 0;
    while j0 < n {
        let j1 = (j0 + tile).min(n);
        for i in 0..m {
            let c_row = &mut c[i * n + j0..i * n + j1];
            for kk in 0..k {
                let aik = a[i * k + kk];
                if aik == 0.0 {
                    continue;
                }
                let b_row = &b[kk * n + j0..kk * n + j1];
                for (cv, bv) in c_row.iter_mut().zip(b_row) {
                    *cv += aik * bv;
                }
            }
        }
        j0 = j1;
    }
}

/// `C += A @ Bᵀ` where `A` is `m×k`, `B` is `n×k`, `C` is `m×n`.
///
/// # Panics
///
/// Panics when slice lengths do not match the dimensions.
pub fn matmul_nt(a: &[f32], b: &[f32], c: &mut [f32], m: usize, k: usize, n: usize) {
    assert_eq!(a.len(), m * k, "A size");
    assert_eq!(b.len(), n * k, "B size");
    assert_eq!(c.len(), m * n, "C size");
    for i in 0..m {
        let a_row = &a[i * k..(i + 1) * k];
        for j in 0..n {
            let b_row = &b[j * k..(j + 1) * k];
            let mut acc = 0.0f32;
            for (av, bv) in a_row.iter().zip(b_row) {
                acc += av * bv;
            }
            c[i * n + j] += acc;
        }
    }
}

/// `C += Aᵀ @ B` where `A` is `k×m`, `B` is `k×n`, `C` is `m×n`.
///
/// # Panics
///
/// Panics when slice lengths do not match the dimensions.
pub fn matmul_tn(a: &[f32], b: &[f32], c: &mut [f32], m: usize, k: usize, n: usize) {
    assert_eq!(a.len(), k * m, "A size");
    assert_eq!(b.len(), k * n, "B size");
    assert_eq!(c.len(), m * n, "C size");
    // The whole C matrix (m rows) is re-streamed for every kk; tile it.
    let tile = col_tile(m, n);
    let mut j0 = 0;
    while j0 < n {
        let j1 = (j0 + tile).min(n);
        for kk in 0..k {
            let a_row = &a[kk * m..(kk + 1) * m];
            let b_row = &b[kk * n + j0..kk * n + j1];
            for i in 0..m {
                let aki = a_row[i];
                if aki == 0.0 {
                    continue;
                }
                let c_row = &mut c[i * n + j0..i * n + j1];
                for (cv, bv) in c_row.iter_mut().zip(b_row) {
                    *cv += aki * bv;
                }
            }
        }
        j0 = j1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn naive(a: &[f32], b: &[f32], m: usize, k: usize, n: usize) -> Vec<f32> {
        let mut c = vec![0.0; m * n];
        for i in 0..m {
            for j in 0..n {
                for kk in 0..k {
                    c[i * n + j] += a[i * k + kk] * b[kk * n + j];
                }
            }
        }
        c
    }

    fn transpose(a: &[f32], rows: usize, cols: usize) -> Vec<f32> {
        let mut t = vec![0.0; a.len()];
        for r in 0..rows {
            for c in 0..cols {
                t[c * rows + r] = a[r * cols + c];
            }
        }
        t
    }

    fn randmat(len: usize, seed: u64) -> Vec<f32> {
        // Small deterministic pseudo-random values.
        (0..len)
            .map(|i| {
                let x = (i as u64)
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(seed);
                ((x >> 33) as f32 / 2.0_f32.powi(31)) - 1.0
            })
            .collect()
    }

    #[test]
    fn nn_matches_naive() {
        let (m, k, n) = (5, 7, 3);
        let a = randmat(m * k, 1);
        let b = randmat(k * n, 2);
        let mut c = vec![0.0; m * n];
        matmul_nn(&a, &b, &mut c, m, k, n);
        let want = naive(&a, &b, m, k, n);
        for (x, y) in c.iter().zip(&want) {
            assert!((x - y).abs() < 1e-4);
        }
    }

    #[test]
    fn nt_matches_naive() {
        let (m, k, n) = (4, 6, 5);
        let a = randmat(m * k, 3);
        let bt = randmat(n * k, 4); // B stored as n×k
        let b = transpose(&bt, n, k); // k×n
        let mut c = vec![0.0; m * n];
        matmul_nt(&a, &bt, &mut c, m, k, n);
        let want = naive(&a, &b, m, k, n);
        for (x, y) in c.iter().zip(&want) {
            assert!((x - y).abs() < 1e-4);
        }
    }

    #[test]
    fn tn_matches_naive() {
        let (m, k, n) = (3, 8, 4);
        let at = randmat(k * m, 5); // A stored as k×m
        let a = transpose(&at, k, m); // m×k
        let b = randmat(k * n, 6);
        let mut c = vec![0.0; m * n];
        matmul_tn(&at, &b, &mut c, m, k, n);
        let want = naive(&a, &b, m, k, n);
        for (x, y) in c.iter().zip(&want) {
            assert!((x - y).abs() < 1e-4);
        }
    }

    #[test]
    fn accumulates_into_c() {
        let a = vec![1.0, 0.0, 0.0, 1.0];
        let b = vec![2.0, 3.0, 4.0, 5.0];
        let mut c = vec![10.0, 10.0, 10.0, 10.0];
        matmul_nn(&a, &b, &mut c, 2, 2, 2);
        assert_eq!(c, vec![12.0, 13.0, 14.0, 15.0]);
    }

    #[test]
    #[should_panic(expected = "A size")]
    fn size_checks() {
        let mut c = vec![0.0; 4];
        matmul_nn(&[1.0; 3], &[1.0; 4], &mut c, 2, 2, 2);
    }
}
