use crate::tensor::Tensor;
use crate::Layer;

/// Leaky rectified linear unit, `max(x, α·x)`. The paper's encoder (and the
/// discriminator) use `α = 0.2`, the pix2pix convention.
#[derive(Debug, Clone)]
pub struct LeakyRelu {
    alpha: f32,
    cached_input: Option<Tensor>,
}

impl LeakyRelu {
    /// Creates a leaky ReLU with negative slope `alpha`.
    pub fn new(alpha: f32) -> Self {
        LeakyRelu {
            alpha,
            cached_input: None,
        }
    }

    /// The negative slope.
    pub fn alpha(&self) -> f32 {
        self.alpha
    }
}

impl Default for LeakyRelu {
    /// The pix2pix slope, 0.2.
    fn default() -> Self {
        LeakyRelu::new(0.2)
    }
}

impl Layer for LeakyRelu {
    fn forward(&mut self, x: &Tensor, _train: bool) -> Tensor {
        let mut y = x.clone();
        for v in y.data_mut() {
            if *v < 0.0 {
                *v *= self.alpha;
            }
        }
        self.cached_input = Some(x.clone());
        y
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let x = self
            .cached_input
            .take()
            .expect("LeakyRelu::backward called before forward");
        let mut dx = grad_out.clone();
        for (g, xv) in dx.data_mut().iter_mut().zip(x.data()) {
            if *xv < 0.0 {
                *g *= self.alpha;
            }
        }
        dx
    }
}

/// Rectified linear unit — the decoder activation of Figure 5.
#[derive(Debug, Clone, Default)]
pub struct Relu {
    cached_input: Option<Tensor>,
}

impl Relu {
    /// Creates a ReLU.
    pub fn new() -> Self {
        Relu::default()
    }
}

impl Layer for Relu {
    fn forward(&mut self, x: &Tensor, _train: bool) -> Tensor {
        let mut y = x.clone();
        for v in y.data_mut() {
            if *v < 0.0 {
                *v = 0.0;
            }
        }
        self.cached_input = Some(x.clone());
        y
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let x = self
            .cached_input
            .take()
            .expect("Relu::backward called before forward");
        let mut dx = grad_out.clone();
        for (g, xv) in dx.data_mut().iter_mut().zip(x.data()) {
            if *xv <= 0.0 {
                *g = 0.0;
            }
        }
        dx
    }
}

/// Hyperbolic tangent — the generator's output activation (images live in
/// `[−1, 1]` during training).
#[derive(Debug, Clone, Default)]
pub struct Tanh {
    cached_output: Option<Tensor>,
}

impl Tanh {
    /// Creates a tanh activation.
    pub fn new() -> Self {
        Tanh::default()
    }
}

impl Layer for Tanh {
    fn forward(&mut self, x: &Tensor, _train: bool) -> Tensor {
        let mut y = x.clone();
        for v in y.data_mut() {
            *v = v.tanh();
        }
        self.cached_output = Some(y.clone());
        y
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let y = self
            .cached_output
            .take()
            .expect("Tanh::backward called before forward");
        let mut dx = grad_out.clone();
        for (g, yv) in dx.data_mut().iter_mut().zip(y.data()) {
            *g *= 1.0 - yv * yv;
        }
        dx
    }
}

/// Logistic sigmoid — the discriminator's final "true/fake" squashing
/// ("followed by sigmoid function for binary classification", §4.3).
///
/// Training uses [`loss::bce_with_logits`](crate::loss::bce_with_logits)
/// *instead of* this layer for numerical stability; the layer exists for
/// inference-time probability readout.
#[derive(Debug, Clone, Default)]
pub struct Sigmoid {
    cached_output: Option<Tensor>,
}

impl Sigmoid {
    /// Creates a sigmoid activation.
    pub fn new() -> Self {
        Sigmoid::default()
    }
}

impl Layer for Sigmoid {
    fn forward(&mut self, x: &Tensor, _train: bool) -> Tensor {
        let mut y = x.clone();
        for v in y.data_mut() {
            *v = 1.0 / (1.0 + (-*v).exp());
        }
        self.cached_output = Some(y.clone());
        y
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let y = self
            .cached_output
            .take()
            .expect("Sigmoid::backward called before forward");
        let mut dx = grad_out.clone();
        for (g, yv) in dx.data_mut().iter_mut().zip(y.data()) {
            *g *= yv * (1.0 - yv);
        }
        dx
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn leaky_relu_values_and_grad() {
        let mut act = LeakyRelu::new(0.2);
        let x = Tensor::from_vec([1, 1, 1, 4], vec![-2.0, -0.5, 0.5, 2.0]);
        let y = act.forward(&x, true);
        assert_eq!(y.data(), &[-0.4, -0.1, 0.5, 2.0]);
        let g = Tensor::full([1, 1, 1, 4], 1.0);
        let dx = act.backward(&g);
        assert_eq!(dx.data(), &[0.2, 0.2, 1.0, 1.0]);
    }

    #[test]
    fn relu_values_and_grad() {
        let mut act = Relu::new();
        let x = Tensor::from_vec([1, 1, 1, 3], vec![-1.0, 0.0, 2.0]);
        let y = act.forward(&x, true);
        assert_eq!(y.data(), &[0.0, 0.0, 2.0]);
        let dx = act.backward(&Tensor::full([1, 1, 1, 3], 3.0));
        assert_eq!(dx.data(), &[0.0, 0.0, 3.0]);
    }

    #[test]
    fn tanh_range_and_grad() {
        let mut act = Tanh::new();
        let x = Tensor::from_vec([1, 1, 1, 3], vec![-10.0, 0.0, 10.0]);
        let y = act.forward(&x, true);
        assert!(y.data()[0] > -1.0001 && y.data()[0] < -0.999);
        assert_eq!(y.data()[1], 0.0);
        let dx = act.backward(&Tensor::full([1, 1, 1, 3], 1.0));
        // d tanh at 0 is 1; at ±10 almost 0.
        assert!((dx.data()[1] - 1.0).abs() < 1e-6);
        assert!(dx.data()[0] < 1e-6);
    }

    #[test]
    fn sigmoid_values() {
        let mut act = Sigmoid::new();
        let x = Tensor::from_vec([1, 1, 1, 3], vec![-100.0, 0.0, 100.0]);
        let y = act.forward(&x, true);
        assert!(y.data()[0] < 1e-6);
        assert_eq!(y.data()[1], 0.5);
        assert!(y.data()[2] > 1.0 - 1e-6);
        let dx = act.backward(&Tensor::full([1, 1, 1, 3], 1.0));
        assert!((dx.data()[1] - 0.25).abs() < 1e-6);
    }
}
