use crate::tensor::Tensor;

/// A trainable parameter: value, gradient accumulator and Adam moments.
#[derive(Debug, Clone, PartialEq)]
pub struct Param {
    /// Current value.
    pub value: Tensor,
    /// Accumulated gradient (same shape as `value`).
    pub grad: Tensor,
    /// Adam first moment.
    pub m: Tensor,
    /// Adam second moment.
    pub v: Tensor,
}

impl Param {
    /// Creates a parameter from an initial value with zeroed gradient and
    /// moments.
    pub fn new(value: Tensor) -> Self {
        let shape = value.shape();
        Param {
            value,
            grad: Tensor::zeros(shape),
            m: Tensor::zeros(shape),
            v: Tensor::zeros(shape),
        }
    }

    /// Gaussian-initialised parameter (pix2pix uses `N(0, 0.02)`).
    pub fn randn(shape: [usize; 4], std: f32, seed: u64) -> Self {
        Param::new(Tensor::randn(shape, 0.0, std, seed))
    }

    /// Number of scalar weights.
    pub fn len(&self) -> usize {
        self.value.len()
    }

    /// Whether the parameter is empty.
    pub fn is_empty(&self) -> bool {
        self.value.is_empty()
    }

    /// Clears the gradient accumulator.
    pub fn zero_grad(&mut self) {
        self.grad.data_mut().fill(0.0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_param_has_zero_grad_and_moments() {
        let p = Param::randn([2, 3, 1, 1], 0.02, 1);
        assert_eq!(p.len(), 6);
        assert!(p.grad.data().iter().all(|&g| g == 0.0));
        assert!(p.m.data().iter().all(|&g| g == 0.0));
    }

    #[test]
    fn zero_grad_clears() {
        let mut p = Param::new(Tensor::zeros([1, 1, 1, 2]));
        p.grad.data_mut()[0] = 3.0;
        p.zero_grad();
        assert_eq!(p.grad.data(), &[0.0, 0.0]);
    }
}
