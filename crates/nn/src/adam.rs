use crate::param::Param;

/// The Adam optimiser with bias correction.
///
/// [`Adam::paper`] uses the paper's hyper-parameters: learning rate
/// `2·10⁻⁴`, `β₁ = 0.5`, `β₂ = 0.999`, `ε = 10⁻⁸` (§5).
#[derive(Debug, Clone, PartialEq)]
pub struct Adam {
    /// Learning rate.
    pub lr: f32,
    /// First-moment decay.
    pub beta1: f32,
    /// Second-moment decay.
    pub beta2: f32,
    /// Numerical-stability constant.
    pub eps: f32,
    t: u64,
}

impl Adam {
    /// Creates an optimiser with explicit hyper-parameters.
    pub fn new(lr: f32, beta1: f32, beta2: f32, eps: f32) -> Self {
        Adam {
            lr,
            beta1,
            beta2,
            eps,
            t: 0,
        }
    }

    /// The paper's settings: `Adam(2e-4, 0.5, 0.999, 1e-8)`.
    pub fn paper() -> Self {
        Adam::new(2e-4, 0.5, 0.999, 1e-8)
    }

    /// Steps taken so far.
    pub fn steps(&self) -> u64 {
        self.t
    }

    /// Restores the step count (bias-correction position) from a
    /// checkpoint, so a resumed optimiser warms exactly where it left off.
    pub fn set_steps(&mut self, t: u64) {
        self.t = t;
    }

    /// Applies one update to every parameter from its accumulated gradient,
    /// then leaves the gradients untouched (call
    /// [`Layer::zero_grad`](crate::Layer::zero_grad) before the next
    /// accumulation).
    pub fn step(&mut self, params: &mut [&mut Param]) {
        self.t += 1;
        let bc1 = 1.0 - self.beta1.powi(self.t as i32);
        let bc2 = 1.0 - self.beta2.powi(self.t as i32);
        for p in params.iter_mut() {
            let g = p.grad.data().to_vec();
            let m = p.m.data_mut();
            for (mv, &gv) in m.iter_mut().zip(&g) {
                *mv = self.beta1 * *mv + (1.0 - self.beta1) * gv;
            }
            let v = p.v.data_mut();
            for (vv, &gv) in v.iter_mut().zip(&g) {
                *vv = self.beta2 * *vv + (1.0 - self.beta2) * gv * gv;
            }
            for i in 0..g.len() {
                let mhat = p.m.data()[i] / bc1;
                let vhat = p.v.data()[i] / bc2;
                p.value.data_mut()[i] -= self.lr * mhat / (vhat.sqrt() + self.eps);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tensor::Tensor;

    /// Minimising f(w) = (w − 3)² with Adam converges to 3.
    #[test]
    fn converges_on_quadratic() {
        let mut p = Param::new(Tensor::zeros([1, 1, 1, 1]));
        let mut adam = Adam::new(0.1, 0.9, 0.999, 1e-8);
        for _ in 0..500 {
            let w = p.value.data()[0];
            p.grad.data_mut()[0] = 2.0 * (w - 3.0);
            adam.step(&mut [&mut p]);
        }
        let w = p.value.data()[0];
        assert!((w - 3.0).abs() < 0.05, "w = {w}");
    }

    #[test]
    fn first_step_magnitude_is_lr() {
        // With bias correction, the first Adam step ≈ lr · sign(g).
        let mut p = Param::new(Tensor::zeros([1, 1, 1, 1]));
        p.grad.data_mut()[0] = 0.37;
        let mut adam = Adam::new(0.01, 0.9, 0.999, 1e-8);
        adam.step(&mut [&mut p]);
        let w = p.value.data()[0];
        assert!((w + 0.01).abs() < 1e-4, "w = {w}");
        assert_eq!(adam.steps(), 1);
    }

    #[test]
    fn paper_hyperparameters() {
        let a = Adam::paper();
        assert_eq!(a.lr, 2e-4);
        assert_eq!(a.beta1, 0.5);
        assert_eq!(a.beta2, 0.999);
        assert_eq!(a.eps, 1e-8);
    }

    #[test]
    fn zero_grad_gives_zero_update_after_warmup() {
        let mut p = Param::new(Tensor::full([1, 1, 1, 1], 5.0));
        let mut adam = Adam::new(0.1, 0.9, 0.999, 1e-8);
        adam.step(&mut [&mut p]); // g = 0 throughout
        assert_eq!(p.value.data()[0], 5.0);
    }
}
