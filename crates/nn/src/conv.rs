use crate::im2col::{col2im, conv_out_dim, im2col, im2col_strided};
use crate::linalg::{matmul_nn, matmul_nt, matmul_tn};
use crate::param::Param;
use crate::tensor::Tensor;
use crate::Layer;

/// 2-D convolution (`k×k` kernel, stride, zero padding) lowered to im2col +
/// matmul. pix2pix uses `k=4, stride=2, pad=1` throughout the encoder,
/// halving the spatial size per layer — the left column of the paper's
/// Figure 5.
#[derive(Debug, Clone)]
pub struct Conv2d {
    in_c: usize,
    out_c: usize,
    k: usize,
    stride: usize,
    pad: usize,
    weight: Param,
    bias: Param,
    cached_input: Option<Tensor>,
    // Interleaved im2col matrix of the last forward: `[ckk, n·ho·wo]` with
    // sample `b` occupying columns `b·ho·wo .. (b+1)·ho·wo`.
    cached_cols: Vec<f32>,
    cached_p_out: usize,
}

impl Conv2d {
    /// Creates a convolution with pix2pix initialisation (`N(0, 0.02)`).
    ///
    /// # Panics
    ///
    /// Panics when `k` or `stride` is zero.
    pub fn new(in_c: usize, out_c: usize, k: usize, stride: usize, pad: usize, seed: u64) -> Self {
        assert!(k > 0 && stride > 0, "kernel and stride must be positive");
        Conv2d {
            in_c,
            out_c,
            k,
            stride,
            pad,
            weight: Param::randn([out_c, in_c, k, k], 0.02, seed ^ 0xC0_u64),
            bias: Param::new(Tensor::zeros([1, out_c, 1, 1])),
            cached_input: None,
            cached_cols: Vec::new(),
            cached_p_out: 0,
        }
    }

    /// Output shape for a given input shape.
    pub fn output_shape(&self, input: [usize; 4]) -> [usize; 4] {
        [
            input[0],
            self.out_c,
            conv_out_dim(input[2], self.k, self.stride, self.pad),
            conv_out_dim(input[3], self.k, self.stride, self.pad),
        ]
    }

    /// Number of trainable scalars.
    pub fn parameter_count(&self) -> usize {
        self.weight.len() + self.bias.len()
    }

    /// i8 weight quantization with per-output-channel scales; `affine`
    /// optionally folds a following per-channel inference transform
    /// `y = a·conv + s` (batch-norm in eval mode) into the quantized
    /// weights and bias.
    pub fn quantize(&self, affine: Option<(&[f32], &[f32])>) -> crate::quant::QuantizedConv2d {
        crate::quant::QuantizedConv2d::new(
            self.in_c,
            self.out_c,
            self.k,
            self.stride,
            self.pad,
            self.weight.value.data(),
            &self.bias.value.data()[..self.out_c],
            affine,
        )
    }
}

impl Layer for Conv2d {
    fn forward(&mut self, x: &Tensor, train: bool) -> Tensor {
        assert_eq!(x.c(), self.in_c, "input channels");
        let [n, _, h, w] = x.shape();
        let ho = conv_out_dim(h, self.k, self.stride, self.pad);
        let wo = conv_out_dim(w, self.k, self.stride, self.pad);
        let ckk = self.in_c * self.k * self.k;
        let p_out = ho * wo;
        let ncols = n * p_out;
        // Unroll the whole batch into one interleaved [ckk, n·ho·wo] matrix
        // and run a single matmul. Each output element accumulates over
        // `ckk` in the same order as a per-sample lowering, so results are
        // bitwise-identical for any batch size — but the matmul's inner
        // loop is `n×` longer, which is what makes micro-batched inference
        // beat sequential single-sample calls on small feature maps.
        let mut cols = vec![0.0f32; ckk * ncols];
        for b in 0..n {
            im2col_strided(
                &x.data()[b * self.in_c * h * w..(b + 1) * self.in_c * h * w],
                self.in_c,
                h,
                w,
                self.k,
                self.stride,
                self.pad,
                &mut cols,
                ncols,
                b * p_out,
            );
        }
        let mut y_flat = vec![0.0f32; self.out_c * ncols];
        matmul_nn(
            self.weight.value.data(),
            &cols,
            &mut y_flat,
            self.out_c,
            ckk,
            ncols,
        );
        // De-interleave [out_c, n·p] back to NCHW and add the bias.
        let mut y = Tensor::zeros([n, self.out_c, ho, wo]);
        for b in 0..n {
            for c in 0..self.out_c {
                let bv = self.bias.value.data()[c];
                let src = &y_flat[c * ncols + b * p_out..c * ncols + (b + 1) * p_out];
                let dst = &mut y.data_mut()[(b * self.out_c + c) * p_out..][..p_out];
                for (d, s) in dst.iter_mut().zip(src) {
                    *d = s + bv;
                }
            }
        }
        // The caches exist only for a backward pass; inference-mode
        // forwards (the serving hot path) must not retain the k²-scaled
        // im2col matrix or an input clone between requests.
        if train {
            self.cached_cols = cols;
            self.cached_p_out = p_out;
            self.cached_input = Some(x.clone());
        } else {
            self.cached_cols = Vec::new();
            self.cached_input = None;
        }
        y
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let x = self
            .cached_input
            .take()
            .expect("Conv2d::backward called before forward");
        let [n, _, h, w] = x.shape();
        let [_, _, ho, wo] = grad_out.shape();
        let ckk = self.in_c * self.k * self.k;
        let p_out = self.cached_p_out;
        let ncols = n * p_out;
        let cached_cols = std::mem::take(&mut self.cached_cols);
        let mut dx = Tensor::zeros(x.shape());
        let mut cols_scratch = vec![0.0f32; if n > 1 { ckk * p_out } else { 0 }];
        for b in 0..n {
            let dy_n = &grad_out.data()[b * self.out_c * ho * wo..(b + 1) * self.out_c * ho * wo];
            // Per-sample contiguous view of the interleaved cache (the
            // cache *is* contiguous when n == 1).
            let cols_b: &[f32] = if n == 1 {
                &cached_cols
            } else {
                for r in 0..ckk {
                    cols_scratch[r * p_out..(r + 1) * p_out].copy_from_slice(
                        &cached_cols[r * ncols + b * p_out..r * ncols + (b + 1) * p_out],
                    );
                }
                &cols_scratch
            };
            // dW += dY @ colsᵀ.
            matmul_nt(
                dy_n,
                cols_b,
                self.weight.grad.data_mut(),
                self.out_c,
                ho * wo,
                ckk,
            );
            // db += Σ dY.
            for c in 0..self.out_c {
                let s: f32 = dy_n[c * ho * wo..(c + 1) * ho * wo].iter().sum();
                self.bias.grad.data_mut()[c] += s;
            }
            // dX = col2im(Wᵀ @ dY).
            let mut dcols = vec![0.0f32; ckk * ho * wo];
            matmul_tn(
                self.weight.value.data(),
                dy_n,
                &mut dcols,
                ckk,
                self.out_c,
                ho * wo,
            );
            col2im(
                &dcols,
                self.in_c,
                h,
                w,
                self.k,
                self.stride,
                self.pad,
                &mut dx.data_mut()[b * self.in_c * h * w..(b + 1) * self.in_c * h * w],
            );
        }
        dx
    }

    fn params_mut(&mut self) -> Vec<&mut Param> {
        vec![&mut self.weight, &mut self.bias]
    }
}

/// 2-D transposed convolution (the "deconvolutional" layers of Figure 5's
/// decoder). With `k=4, stride=2, pad=1` it exactly doubles the spatial
/// size, mirroring [`Conv2d`]'s halving.
///
/// Implemented as the adjoint of [`Conv2d`]: forward is the conv
/// backward-data pass (`col2im` of `Wᵀ·x`), so gradients line up exactly.
#[derive(Debug, Clone)]
pub struct ConvTranspose2d {
    in_c: usize,
    out_c: usize,
    k: usize,
    stride: usize,
    pad: usize,
    weight: Param, // [in_c, out_c, k, k]
    bias: Param,
    cached_input: Option<Tensor>,
}

impl ConvTranspose2d {
    /// Creates a transposed convolution with pix2pix initialisation.
    ///
    /// # Panics
    ///
    /// Panics when `k` or `stride` is zero.
    pub fn new(in_c: usize, out_c: usize, k: usize, stride: usize, pad: usize, seed: u64) -> Self {
        assert!(k > 0 && stride > 0, "kernel and stride must be positive");
        ConvTranspose2d {
            in_c,
            out_c,
            k,
            stride,
            pad,
            weight: Param::randn([in_c, out_c, k, k], 0.02, seed ^ 0xDC_u64),
            bias: Param::new(Tensor::zeros([1, out_c, 1, 1])),
            cached_input: None,
        }
    }

    /// Output spatial size: `(h − 1)·stride − 2·pad + k`.
    pub fn output_shape(&self, input: [usize; 4]) -> [usize; 4] {
        [
            input[0],
            self.out_c,
            (input[2] - 1) * self.stride + self.k - 2 * self.pad,
            (input[3] - 1) * self.stride + self.k - 2 * self.pad,
        ]
    }

    /// Number of trainable scalars.
    pub fn parameter_count(&self) -> usize {
        self.weight.len() + self.bias.len()
    }

    /// i8 weight quantization (per output tap row), optionally folding a
    /// per-output-channel inference affine — see [`Conv2d::quantize`].
    pub fn quantize(
        &self,
        affine: Option<(&[f32], &[f32])>,
    ) -> crate::quant::QuantizedConvTranspose2d {
        crate::quant::QuantizedConvTranspose2d::new(
            self.in_c,
            self.out_c,
            self.k,
            self.stride,
            self.pad,
            self.weight.value.data(),
            &self.bias.value.data()[..self.out_c],
            affine,
        )
    }
}

impl Layer for ConvTranspose2d {
    fn forward(&mut self, x: &Tensor, train: bool) -> Tensor {
        assert_eq!(x.c(), self.in_c, "input channels");
        let [n, _, h, w] = x.shape();
        let out = self.output_shape(x.shape());
        let (ho, wo) = (out[2], out[3]);
        // Sanity: the adjoint geometry must invert cleanly.
        debug_assert_eq!(conv_out_dim(ho, self.k, self.stride, self.pad), h);
        let ckk = self.out_c * self.k * self.k;
        let p_in = h * w;
        let ncols = n * p_in;
        let mut y = Tensor::zeros(out);
        // Batched lowering mirrors Conv2d: interleave the batch into one
        // [in_c, n·h·w] matrix, run a single `Wᵀ @ X`, then col2im each
        // sample's column block. Accumulation order per element matches the
        // per-sample pass exactly, so any batch size is bitwise-identical.
        if n == 1 {
            let mut cols = vec![0.0f32; ckk * p_in];
            matmul_tn(
                self.weight.value.data(),
                x.data(),
                &mut cols,
                ckk,
                self.in_c,
                p_in,
            );
            let y_n = &mut y.data_mut()[..self.out_c * ho * wo];
            col2im(
                &cols,
                self.out_c,
                ho,
                wo,
                self.k,
                self.stride,
                self.pad,
                y_n,
            );
            for c in 0..self.out_c {
                let bv = self.bias.value.data()[c];
                for v in &mut y_n[c * ho * wo..(c + 1) * ho * wo] {
                    *v += bv;
                }
            }
        } else {
            let mut xt = vec![0.0f32; self.in_c * ncols];
            for b in 0..n {
                for c in 0..self.in_c {
                    xt[c * ncols + b * p_in..c * ncols + (b + 1) * p_in]
                        .copy_from_slice(&x.data()[(b * self.in_c + c) * p_in..][..p_in]);
                }
            }
            let mut cols = vec![0.0f32; ckk * ncols];
            matmul_tn(
                self.weight.value.data(),
                &xt,
                &mut cols,
                ckk,
                self.in_c,
                ncols,
            );
            let mut cols_b = vec![0.0f32; ckk * p_in];
            for b in 0..n {
                for r in 0..ckk {
                    cols_b[r * p_in..(r + 1) * p_in]
                        .copy_from_slice(&cols[r * ncols + b * p_in..r * ncols + (b + 1) * p_in]);
                }
                let y_n =
                    &mut y.data_mut()[b * self.out_c * ho * wo..(b + 1) * self.out_c * ho * wo];
                col2im(
                    &cols_b,
                    self.out_c,
                    ho,
                    wo,
                    self.k,
                    self.stride,
                    self.pad,
                    y_n,
                );
                for c in 0..self.out_c {
                    let bv = self.bias.value.data()[c];
                    for v in &mut y_n[c * ho * wo..(c + 1) * ho * wo] {
                        *v += bv;
                    }
                }
            }
        }
        self.cached_input = if train { Some(x.clone()) } else { None };
        y
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let x = self
            .cached_input
            .take()
            .expect("ConvTranspose2d::backward called before forward");
        let [n, _, h, w] = x.shape();
        let [_, _, ho, wo] = grad_out.shape();
        let ckk = self.out_c * self.k * self.k;
        let mut dx = Tensor::zeros(x.shape());
        for b in 0..n {
            let dy_n = &grad_out.data()[b * self.out_c * ho * wo..(b + 1) * self.out_c * ho * wo];
            // dcols = im2col(dY).
            let mut dcols = vec![0.0f32; ckk * h * w];
            im2col(
                dy_n,
                self.out_c,
                ho,
                wo,
                self.k,
                self.stride,
                self.pad,
                &mut dcols,
            );
            // dX = W @ dcols.
            matmul_nn(
                self.weight.value.data(),
                &dcols,
                &mut dx.data_mut()[b * self.in_c * h * w..(b + 1) * self.in_c * h * w],
                self.in_c,
                ckk,
                h * w,
            );
            // dW += x @ dcolsᵀ.
            let x_n = &x.data()[b * self.in_c * h * w..(b + 1) * self.in_c * h * w];
            matmul_nt(
                x_n,
                &dcols,
                self.weight.grad.data_mut(),
                self.in_c,
                h * w,
                ckk,
            );
            // db += Σ dY.
            for c in 0..self.out_c {
                let s: f32 = dy_n[c * ho * wo..(c + 1) * ho * wo].iter().sum();
                self.bias.grad.data_mut()[c] += s;
            }
        }
        dx
    }

    fn params_mut(&mut self) -> Vec<&mut Param> {
        vec![&mut self.weight, &mut self.bias]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conv_halves_spatial_size() {
        let mut conv = Conv2d::new(4, 8, 4, 2, 1, 1);
        let x = Tensor::randn([2, 4, 16, 16], 0.0, 1.0, 2);
        let y = conv.forward(&x, true);
        assert_eq!(y.shape(), [2, 8, 8, 8]);
        assert_eq!(conv.output_shape(x.shape()), y.shape());
    }

    #[test]
    fn deconv_doubles_spatial_size() {
        let mut deconv = ConvTranspose2d::new(8, 4, 4, 2, 1, 1);
        let x = Tensor::randn([2, 8, 8, 8], 0.0, 1.0, 2);
        let y = deconv.forward(&x, true);
        assert_eq!(y.shape(), [2, 4, 16, 16]);
    }

    #[test]
    fn conv_backward_shapes() {
        let mut conv = Conv2d::new(3, 5, 4, 2, 1, 3);
        let x = Tensor::randn([1, 3, 8, 8], 0.0, 1.0, 4);
        let y = conv.forward(&x, true);
        let dx = conv.backward(&y);
        assert_eq!(dx.shape(), x.shape());
        // Gradients accumulated.
        let gw: f32 = conv.weight.grad.data().iter().map(|g| g.abs()).sum();
        assert!(gw > 0.0);
    }

    #[test]
    fn conv_known_values() {
        // 1x1 kernel, identity-ish: y = w*x + b.
        let mut conv = Conv2d::new(1, 1, 1, 1, 0, 0);
        conv.weight.value.data_mut()[0] = 2.0;
        conv.bias.value.data_mut()[0] = 0.5;
        let x = Tensor::from_vec([1, 1, 1, 3], vec![1.0, 2.0, 3.0]);
        let y = conv.forward(&x, true);
        assert_eq!(y.data(), &[2.5, 4.5, 6.5]);
    }

    #[test]
    fn deconv_is_adjoint_of_conv() {
        // <conv(x), y> == <x, deconv(y)> when deconv shares the conv's
        // weights (and both have zero bias).
        let (cin, cout, k, s, p) = (2, 3, 4, 2, 1);
        let mut conv = Conv2d::new(cin, cout, k, s, p, 7);
        conv.bias.value.data_mut().fill(0.0);
        let mut deconv = ConvTranspose2d::new(cout, cin, k, s, p, 8);
        deconv.bias.value.data_mut().fill(0.0);
        // Share weights: conv W is [cout, cin, k, k], deconv W is
        // [cout(=in_c), cin(=out_c), k, k] — identical memory layout.
        deconv
            .weight
            .value
            .data_mut()
            .copy_from_slice(conv.weight.value.data());

        let x = Tensor::randn([1, cin, 8, 8], 0.0, 1.0, 9);
        let y = Tensor::randn([1, cout, 4, 4], 0.0, 1.0, 10);
        let cx = conv.forward(&x, true);
        let dy = deconv.forward(&y, true);
        let lhs: f64 = cx
            .data()
            .iter()
            .zip(y.data())
            .map(|(a, b)| *a as f64 * *b as f64)
            .sum();
        let rhs: f64 = x
            .data()
            .iter()
            .zip(dy.data())
            .map(|(a, b)| *a as f64 * *b as f64)
            .sum();
        assert!(
            (lhs - rhs).abs() < 1e-2 * lhs.abs().max(1.0),
            "{lhs} vs {rhs}"
        );
    }

    #[test]
    fn batched_forward_is_bitwise_identical_to_per_sample() {
        let mut conv = Conv2d::new(3, 5, 4, 2, 1, 11);
        let mut deconv = ConvTranspose2d::new(5, 3, 4, 2, 1, 12);
        let xs: Vec<Tensor> = (0..4)
            .map(|s| Tensor::randn([1, 3, 8, 8], 0.0, 1.0, 40 + s))
            .collect();
        let conv_singles: Vec<Tensor> = xs.iter().map(|x| conv.forward(x, false)).collect();
        let deconv_singles: Vec<Tensor> = conv_singles
            .iter()
            .map(|y| deconv.forward(y, false))
            .collect();
        let refs: Vec<&Tensor> = xs.iter().collect();
        let batch = Tensor::stack_batch(&refs);
        let conv_batched = conv.forward(&batch, false);
        for (i, (part, single)) in conv_batched
            .split_batch()
            .iter()
            .zip(&conv_singles)
            .enumerate()
        {
            assert_eq!(part, single, "conv sample {i}");
        }
        let deconv_batched = deconv.forward(&conv_batched, false);
        for (i, (part, single)) in deconv_batched
            .split_batch()
            .iter()
            .zip(&deconv_singles)
            .enumerate()
        {
            assert_eq!(part, single, "deconv sample {i}");
        }
    }

    #[test]
    fn batched_conv_backward_matches_per_sample_gradients() {
        // Summed-gradient check: running two samples through one batched
        // forward/backward must accumulate the same dW/db (and produce the
        // same dX) as two independent single-sample passes.
        let xs: Vec<Tensor> = (0..2)
            .map(|s| Tensor::randn([1, 2, 8, 8], 0.0, 1.0, 60 + s))
            .collect();
        let mut single = Conv2d::new(2, 3, 4, 2, 1, 13);
        let mut dxs = Vec::new();
        for x in &xs {
            let y = single.forward(x, true);
            dxs.push(single.backward(&y));
        }
        let mut batched = Conv2d::new(2, 3, 4, 2, 1, 13);
        let refs: Vec<&Tensor> = xs.iter().collect();
        let xb = Tensor::stack_batch(&refs);
        let yb = batched.forward(&xb, true);
        let dxb = batched.backward(&yb);
        for (i, (part, dx)) in dxb.split_batch().iter().zip(&dxs).enumerate() {
            assert_eq!(part, dx, "dx sample {i}");
        }
        for (pb, ps) in batched.params_mut().iter().zip(single.params_mut().iter()) {
            for (a, b) in pb.grad.data().iter().zip(ps.grad.data()) {
                assert!((a - b).abs() < 1e-4, "grad {a} vs {b}");
            }
        }
    }

    #[test]
    #[should_panic(expected = "backward called before forward")]
    fn backward_without_forward_panics() {
        let mut conv = Conv2d::new(1, 1, 3, 1, 1, 0);
        let g = Tensor::zeros([1, 1, 4, 4]);
        let _ = conv.backward(&g);
    }

    #[test]
    fn parameter_counts() {
        let conv = Conv2d::new(3, 8, 4, 2, 1, 0);
        assert_eq!(conv.parameter_count(), 8 * 3 * 16 + 8);
        let deconv = ConvTranspose2d::new(8, 3, 4, 2, 1, 0);
        assert_eq!(deconv.parameter_count(), 8 * 3 * 16 + 3);
    }
}
