//! Pure-Rust neural-network substrate for the cGAN forecaster.
//!
//! The paper trains its model in TensorFlow on a GPU; neither is available
//! here, so this crate implements the required subset of a deep-learning
//! framework from scratch (DESIGN.md §2 row 6):
//!
//! * [`Tensor`] — dense `f32` NCHW tensors;
//! * [`Layer`] — the forward/backward contract, with implementations for
//!   [`Conv2d`], [`ConvTranspose2d`], [`BatchNorm2d`], [`LeakyRelu`],
//!   [`Relu`], [`Tanh`], [`Sigmoid`] and [`Dropout`] — exactly the blocks
//!   of the paper's Figure 5 architecture;
//! * [`loss`] — the stable binary-cross-entropy-with-logits of the GAN
//!   objective (Equation 2) and the L1 term of §4.4/§5.3;
//! * [`Adam`] — the optimiser with the paper's hyper-parameters
//!   (`lr = 2e-4`, `β₁ = 0.5`, `β₂ = 0.999`, `ε = 1e-8`) as defaults;
//! * [`gradcheck`] — finite-difference gradient verification used
//!   throughout the test suite.
//!
//! Backpropagation is implemented manually per layer (no autograd tape):
//! each layer caches what its backward pass needs, and composite models
//! (the U-Net in [`pop-core`](../pop_core/index.html)) call `backward` in
//! reverse order, routing gradients through skip connections explicitly.
//!
//! # Example
//!
//! ```
//! use pop_nn::{Conv2d, Layer, Tensor, Adam};
//!
//! let mut conv = Conv2d::new(3, 8, 4, 2, 1, 7);
//! let x = Tensor::randn([1, 3, 16, 16], 0.0, 1.0, 42);
//! let y = conv.forward(&x, true);
//! assert_eq!(y.shape(), [1, 8, 8, 8]);
//! let dx = conv.backward(&y); // pretend dL/dy = y
//! assert_eq!(dx.shape(), x.shape());
//! let mut adam = Adam::paper();
//! adam.step(&mut conv.params_mut());
//! ```

mod act;
mod adam;
mod conv;
mod dropout;
pub mod gradcheck;
mod im2col;
pub mod linalg;
pub mod loss;
mod norm;
mod param;
pub mod quant;
mod tensor;

pub use act::{LeakyRelu, Relu, Sigmoid, Tanh};
pub use adam::Adam;
pub use conv::{Conv2d, ConvTranspose2d};
pub use dropout::Dropout;
pub use norm::BatchNorm2d;
pub use param::Param;
pub use tensor::Tensor;

/// The layer contract: stateful forward (caching activations) and backward
/// (consuming the cache, accumulating parameter gradients, returning the
/// input gradient).
///
/// `train` switches batch-norm to batch statistics and enables dropout —
/// at inference pass `false`.
pub trait Layer {
    /// Computes the layer output, caching whatever `backward` will need.
    fn forward(&mut self, x: &Tensor, train: bool) -> Tensor;

    /// Propagates `grad_out` (dL/d-output) to dL/d-input, accumulating
    /// parameter gradients internally.
    ///
    /// # Panics
    ///
    /// Implementations may panic when called before `forward`.
    fn backward(&mut self, grad_out: &Tensor) -> Tensor;

    /// The layer's trainable parameters (empty for activations).
    fn params_mut(&mut self) -> Vec<&mut Param> {
        Vec::new()
    }

    /// Non-trainable state that checkpoints must carry (batch-norm running
    /// statistics). Empty for stateless layers.
    fn buffers_mut(&mut self) -> Vec<&mut Vec<f32>> {
        Vec::new()
    }

    /// Zeroes all accumulated parameter gradients.
    fn zero_grad(&mut self) {
        for p in self.params_mut() {
            p.zero_grad();
        }
    }
}
