//! Training losses for the conditional GAN objective.
//!
//! * [`bce_with_logits`] — the discriminator/generator adversarial loss
//!   (Equation 2), computed from raw logits with the numerically stable
//!   formulation so saturated discriminators do not produce infinities;
//! * [`l1_loss`] — the `λ · E‖g − G(x, z)‖₁` term that §5.3 shows is needed
//!   for clean heat maps.
//!
//! Every function returns `(scalar loss, gradient w.r.t. the first
//! argument)` with mean reduction.

use crate::tensor::Tensor;

/// Stable binary cross-entropy on logits against a constant target
/// (`1.0` = real, `0.0` = fake — the GAN labels).
///
/// `loss = mean(max(z, 0) − z·t + ln(1 + e^{−|z|}))`,
/// `∂loss/∂z = (σ(z) − t)/numel`.
pub fn bce_with_logits(logits: &Tensor, target: f32) -> (f32, Tensor) {
    let n = logits.len() as f32;
    let mut grad = Tensor::zeros(logits.shape());
    let mut total = 0.0f64;
    for (g, &z) in grad.data_mut().iter_mut().zip(logits.data()) {
        let loss = z.max(0.0) - z * target + (1.0 + (-z.abs()).exp()).ln();
        total += loss as f64;
        let sig = 1.0 / (1.0 + (-z).exp());
        *g = (sig - target) / n;
    }
    ((total / n as f64) as f32, grad)
}

/// Mean absolute error and its (sub)gradient w.r.t. `pred`.
///
/// # Panics
///
/// Panics when shapes differ.
pub fn l1_loss(pred: &Tensor, target: &Tensor) -> (f32, Tensor) {
    assert_eq!(pred.shape(), target.shape(), "l1 shape mismatch");
    let n = pred.len() as f32;
    let mut grad = Tensor::zeros(pred.shape());
    let mut total = 0.0f64;
    for ((g, &p), &t) in grad
        .data_mut()
        .iter_mut()
        .zip(pred.data())
        .zip(target.data())
    {
        let d = p - t;
        total += d.abs() as f64;
        *g = if d > 0.0 {
            1.0 / n
        } else if d < 0.0 {
            -1.0 / n
        } else {
            0.0
        };
    }
    ((total / n as f64) as f32, grad)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bce_at_zero_logit() {
        let z = Tensor::zeros([1, 1, 1, 4]);
        let (loss, grad) = bce_with_logits(&z, 1.0);
        assert!((loss - std::f32::consts::LN_2).abs() < 1e-6);
        // σ(0) − 1 = −0.5, averaged over 4.
        assert!(grad.data().iter().all(|&g| (g + 0.125).abs() < 1e-6));
    }

    #[test]
    fn bce_is_stable_for_large_logits() {
        let z = Tensor::from_vec([1, 1, 1, 2], vec![1000.0, -1000.0]);
        let (loss_real, g) = bce_with_logits(&z, 1.0);
        assert!(loss_real.is_finite());
        assert!(g.data().iter().all(|v| v.is_finite()));
        let (loss_fake, g2) = bce_with_logits(&z, 0.0);
        assert!(loss_fake.is_finite());
        assert!(g2.data().iter().all(|v| v.is_finite()));
    }

    #[test]
    fn bce_gradient_matches_finite_difference() {
        let z = Tensor::from_vec([1, 1, 1, 3], vec![0.3, -0.7, 1.2]);
        let (_, grad) = bce_with_logits(&z, 1.0);
        let eps = 1e-3;
        for i in 0..3 {
            let mut zp = z.clone();
            zp.data_mut()[i] += eps;
            let mut zm = z.clone();
            zm.data_mut()[i] -= eps;
            let (lp, _) = bce_with_logits(&zp, 1.0);
            let (lm, _) = bce_with_logits(&zm, 1.0);
            let num = (lp - lm) / (2.0 * eps);
            assert!(
                (num - grad.data()[i]).abs() < 1e-3,
                "i={i}: {num} vs {}",
                grad.data()[i]
            );
        }
    }

    #[test]
    fn l1_loss_values_and_grad() {
        let p = Tensor::from_vec([1, 1, 1, 4], vec![1.0, 2.0, 3.0, 4.0]);
        let t = Tensor::from_vec([1, 1, 1, 4], vec![1.0, 0.0, 4.0, 4.0]);
        let (loss, grad) = l1_loss(&p, &t);
        assert!((loss - 0.75).abs() < 1e-6); // (0 + 2 + 1 + 0)/4
        assert_eq!(grad.data(), &[0.0, 0.25, -0.25, 0.0]);
    }

    #[test]
    fn l1_identical_is_zero() {
        let p = Tensor::randn([1, 2, 3, 3], 0.0, 1.0, 8);
        let (loss, grad) = l1_loss(&p, &p);
        assert_eq!(loss, 0.0);
        assert!(grad.data().iter().all(|&g| g == 0.0));
    }
}
