use crate::tensor::Tensor;
use crate::Layer;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Inverted dropout.
///
/// pix2pix (and therefore this paper's generator) provides the GAN noise
/// `z` "only in the form of dropout, applied on several layers of the
/// generator" — there is no explicit noise vector input. The first decoder
/// blocks run dropout with `p = 0.5` at training time.
#[derive(Debug, Clone)]
pub struct Dropout {
    p: f32,
    rng: StdRng,
    cached_mask: Option<Tensor>,
}

impl Dropout {
    /// Creates a dropout layer dropping with probability `p`, deterministic
    /// in `seed`.
    ///
    /// # Panics
    ///
    /// Panics unless `0 ≤ p < 1`.
    pub fn new(p: f32, seed: u64) -> Self {
        assert!((0.0..1.0).contains(&p), "p must be in [0, 1)");
        Dropout {
            p,
            rng: StdRng::seed_from_u64(seed ^ 0xD80),
            cached_mask: None,
        }
    }

    /// The drop probability.
    pub fn probability(&self) -> f32 {
        self.p
    }
}

impl Layer for Dropout {
    fn forward(&mut self, x: &Tensor, train: bool) -> Tensor {
        if !train || self.p == 0.0 {
            self.cached_mask = None;
            return x.clone();
        }
        let keep = 1.0 - self.p;
        let mut mask = Tensor::zeros(x.shape());
        for v in mask.data_mut() {
            *v = if self.rng.gen::<f32>() < keep {
                1.0 / keep
            } else {
                0.0
            };
        }
        let mut y = x.clone();
        for (o, m) in y.data_mut().iter_mut().zip(mask.data()) {
            *o *= m;
        }
        self.cached_mask = Some(mask);
        y
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        match self.cached_mask.take() {
            None => grad_out.clone(),
            Some(mask) => {
                let mut dx = grad_out.clone();
                for (g, m) in dx.data_mut().iter_mut().zip(mask.data()) {
                    *g *= m;
                }
                dx
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eval_mode_is_identity() {
        let mut d = Dropout::new(0.5, 1);
        let x = Tensor::randn([1, 2, 4, 4], 0.0, 1.0, 2);
        let y = d.forward(&x, false);
        assert_eq!(x, y);
    }

    #[test]
    fn train_mode_zeroes_about_p_and_rescales() {
        let mut d = Dropout::new(0.5, 3);
        let x = Tensor::full([1, 1, 64, 64], 1.0);
        let y = d.forward(&x, true);
        let zeros = y.data().iter().filter(|&&v| v == 0.0).count();
        let frac = zeros as f32 / y.len() as f32;
        assert!((0.4..0.6).contains(&frac), "drop fraction {frac}");
        // Kept values are scaled by 2.
        assert!(y.data().iter().all(|&v| v == 0.0 || (v - 2.0).abs() < 1e-6));
        // Expectation preserved.
        assert!((y.mean() - 1.0).abs() < 0.1);
    }

    #[test]
    fn backward_uses_same_mask() {
        let mut d = Dropout::new(0.5, 4);
        let x = Tensor::full([1, 1, 8, 8], 1.0);
        let y = d.forward(&x, true);
        let dx = d.backward(&Tensor::full([1, 1, 8, 8], 1.0));
        for (yv, gv) in y.data().iter().zip(dx.data()) {
            assert_eq!(yv, gv, "mask must match between passes");
        }
    }

    #[test]
    fn zero_probability_is_identity_even_training() {
        let mut d = Dropout::new(0.0, 5);
        let x = Tensor::randn([1, 1, 4, 4], 0.0, 1.0, 6);
        assert_eq!(d.forward(&x, true), x);
    }
}
