use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::fmt;

/// A dense `f32` tensor in NCHW layout.
///
/// The only tensor rank this workload needs is 4 (batch, channels, height,
/// width); vectors and matrices are expressed with singleton dimensions.
#[derive(Clone, PartialEq)]
pub struct Tensor {
    shape: [usize; 4],
    data: Vec<f32>,
}

impl fmt::Debug for Tensor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "Tensor[{}x{}x{}x{}]",
            self.shape[0], self.shape[1], self.shape[2], self.shape[3]
        )
    }
}

impl Tensor {
    /// Creates a zero tensor.
    pub fn zeros(shape: [usize; 4]) -> Self {
        let len = shape.iter().product();
        Tensor {
            shape,
            data: vec![0.0; len],
        }
    }

    /// Creates a tensor filled with `v`.
    pub fn full(shape: [usize; 4], v: f32) -> Self {
        let len = shape.iter().product();
        Tensor {
            shape,
            data: vec![v; len],
        }
    }

    /// Wraps existing data.
    ///
    /// # Panics
    ///
    /// Panics when `data.len()` does not match the shape volume.
    pub fn from_vec(shape: [usize; 4], data: Vec<f32>) -> Self {
        assert_eq!(
            data.len(),
            shape.iter().product::<usize>(),
            "data length vs shape"
        );
        Tensor { shape, data }
    }

    /// Gaussian-initialised tensor (`mean`, `std`), deterministic in `seed`.
    /// pix2pix initialises all weights from `N(0, 0.02)`.
    pub fn randn(shape: [usize; 4], mean: f32, std: f32, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let len: usize = shape.iter().product();
        let mut data = Vec::with_capacity(len);
        // Box–Muller.
        while data.len() < len {
            let u1: f32 = rng.gen_range(f32::EPSILON..1.0);
            let u2: f32 = rng.gen();
            let r = (-2.0 * u1.ln()).sqrt();
            let theta = 2.0 * std::f32::consts::PI * u2;
            data.push(mean + std * r * theta.cos());
            if data.len() < len {
                data.push(mean + std * r * theta.sin());
            }
        }
        Tensor { shape, data }
    }

    /// The NCHW shape.
    #[inline]
    pub fn shape(&self) -> [usize; 4] {
        self.shape
    }

    /// Batch size.
    #[inline]
    pub fn n(&self) -> usize {
        self.shape[0]
    }

    /// Channel count.
    #[inline]
    pub fn c(&self) -> usize {
        self.shape[1]
    }

    /// Height.
    #[inline]
    pub fn h(&self) -> usize {
        self.shape[2]
    }

    /// Width.
    #[inline]
    pub fn w(&self) -> usize {
        self.shape[3]
    }

    /// Total element count.
    #[inline]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the tensor has zero elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Immutable element storage.
    #[inline]
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Mutable element storage.
    #[inline]
    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Element accessor.
    #[inline]
    pub fn at(&self, n: usize, c: usize, h: usize, w: usize) -> f32 {
        let [_, cc, hh, ww] = self.shape;
        self.data[((n * cc + c) * hh + h) * ww + w]
    }

    /// Element mutator.
    #[inline]
    pub fn set(&mut self, n: usize, c: usize, h: usize, w: usize, v: f32) {
        let [_, cc, hh, ww] = self.shape;
        self.data[((n * cc + c) * hh + h) * ww + w] = v;
    }

    /// Reinterprets the tensor with a new shape of identical volume.
    ///
    /// # Panics
    ///
    /// Panics when the volumes differ.
    pub fn reshaped(mut self, shape: [usize; 4]) -> Tensor {
        assert_eq!(
            self.data.len(),
            shape.iter().product::<usize>(),
            "reshape volume"
        );
        self.shape = shape;
        self
    }

    /// Concatenates two tensors along the channel axis — the skip-connection
    /// primitive of the U-Net ("concatenate one layer in the downsampling
    /// path and one layer in the upsampling path").
    ///
    /// # Panics
    ///
    /// Panics when batch or spatial dimensions differ.
    pub fn concat_channels(&self, other: &Tensor) -> Tensor {
        assert_eq!(self.n(), other.n(), "batch mismatch");
        assert_eq!(self.h(), other.h(), "height mismatch");
        assert_eq!(self.w(), other.w(), "width mismatch");
        let (n, h, w) = (self.n(), self.h(), self.w());
        let (c1, c2) = (self.c(), other.c());
        let mut out = Tensor::zeros([n, c1 + c2, h, w]);
        let plane = h * w;
        for b in 0..n {
            let dst = &mut out.data_mut()[b * (c1 + c2) * plane..];
            dst[..c1 * plane].copy_from_slice(&self.data[b * c1 * plane..(b + 1) * c1 * plane]);
        }
        for b in 0..n {
            let start = b * (c1 + c2) * plane + c1 * plane;
            out.data_mut()[start..start + c2 * plane]
                .copy_from_slice(&other.data[b * c2 * plane..(b + 1) * c2 * plane]);
        }
        out
    }

    /// Splits a tensor along channels into `(first c1 channels, rest)` —
    /// the backward counterpart of [`Tensor::concat_channels`].
    ///
    /// # Panics
    ///
    /// Panics when `c1 > self.c()`.
    pub fn split_channels(&self, c1: usize) -> (Tensor, Tensor) {
        assert!(c1 <= self.c(), "split point beyond channel count");
        let (n, h, w) = (self.n(), self.h(), self.w());
        let c2 = self.c() - c1;
        let mut a = Tensor::zeros([n, c1, h, w]);
        let mut b = Tensor::zeros([n, c2.max(1), h, w]);
        if c2 == 0 {
            b = Tensor::zeros([n, 1, h, w]); // placeholder, unused
        }
        let plane = h * w;
        for bi in 0..n {
            let src = &self.data[bi * self.c() * plane..];
            a.data_mut()[bi * c1 * plane..(bi + 1) * c1 * plane]
                .copy_from_slice(&src[..c1 * plane]);
            if c2 > 0 {
                b.data_mut()[bi * c2 * plane..(bi + 1) * c2 * plane]
                    .copy_from_slice(&src[c1 * plane..(c1 + c2) * plane]);
            }
        }
        (a, b)
    }

    /// Concatenates tensors along the batch axis — the micro-batching
    /// primitive of the serving engine: per-request `[1, C, H, W]` inputs
    /// become one `[N, C, H, W]` forward pass.
    ///
    /// Parts may themselves be batched (`n ≥ 1`); batch sizes are summed.
    ///
    /// # Panics
    ///
    /// Panics when `parts` is empty or any part's channel/spatial
    /// dimensions differ from the first part's.
    pub fn stack_batch(parts: &[&Tensor]) -> Tensor {
        assert!(!parts.is_empty(), "stack_batch needs at least one tensor");
        let [_, c, h, w] = parts[0].shape;
        let mut n_total = 0usize;
        for (i, p) in parts.iter().enumerate() {
            assert_eq!(
                [p.c(), p.h(), p.w()],
                [c, h, w],
                "stack_batch: part {i} has shape {:?}, expected [_, {c}, {h}, {w}]",
                p.shape
            );
            n_total += p.n();
        }
        let mut data = Vec::with_capacity(n_total * c * h * w);
        for p in parts {
            data.extend_from_slice(p.data());
        }
        Tensor::from_vec([n_total, c, h, w], data)
    }

    /// Splits a batched tensor into `n()` single-sample `[1, C, H, W]`
    /// tensors — the inverse of [`Tensor::stack_batch`] over singleton
    /// parts, used to hand each serving request its own output.
    pub fn split_batch(&self) -> Vec<Tensor> {
        let [n, c, h, w] = self.shape;
        let stride = c * h * w;
        (0..n)
            .map(|b| {
                Tensor::from_vec(
                    [1, c, h, w],
                    self.data[b * stride..(b + 1) * stride].to_vec(),
                )
            })
            .collect()
    }

    /// Element-wise addition into `self`.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn add_assign(&mut self, other: &Tensor) {
        assert_eq!(self.shape, other.shape, "add_assign shape");
        for (a, b) in self.data.iter_mut().zip(&other.data) {
            *a += b;
        }
    }

    /// Scales all elements in place.
    pub fn scale(&mut self, s: f32) {
        for v in &mut self.data {
            *v *= s;
        }
    }

    /// Mean of all elements.
    pub fn mean(&self) -> f32 {
        if self.data.is_empty() {
            return 0.0;
        }
        self.data.iter().sum::<f32>() / self.data.len() as f32
    }

    /// Returns the tensor mirrored along the width axis (horizontal image
    /// flip — the pix2pix-style augmentation primitive).
    pub fn flipped_w(&self) -> Tensor {
        let [n, c, h, w] = self.shape;
        let mut out = Tensor::zeros(self.shape);
        for b in 0..n {
            for ci in 0..c {
                for y in 0..h {
                    let row = ((b * c + ci) * h + y) * w;
                    for x in 0..w {
                        out.data[row + x] = self.data[row + (w - 1 - x)];
                    }
                }
            }
        }
        out
    }

    /// Returns the tensor mirrored along the height axis (vertical flip).
    pub fn flipped_h(&self) -> Tensor {
        let [n, c, h, w] = self.shape;
        let mut out = Tensor::zeros(self.shape);
        for b in 0..n {
            for ci in 0..c {
                for y in 0..h {
                    let src = ((b * c + ci) * h + (h - 1 - y)) * w;
                    let dst = ((b * c + ci) * h + y) * w;
                    out.data[dst..dst + w].copy_from_slice(&self.data[src..src + w]);
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_access() {
        let mut t = Tensor::zeros([2, 3, 4, 5]);
        assert_eq!(t.len(), 120);
        t.set(1, 2, 3, 4, 7.0);
        assert_eq!(t.at(1, 2, 3, 4), 7.0);
        assert_eq!(t.at(0, 0, 0, 0), 0.0);
    }

    #[test]
    fn randn_statistics() {
        let t = Tensor::randn([1, 1, 100, 100], 0.0, 0.02, 3);
        let mean = t.mean();
        assert!(mean.abs() < 0.002, "mean {mean}");
        let var: f32 = t
            .data()
            .iter()
            .map(|v| (v - mean) * (v - mean))
            .sum::<f32>()
            / t.len() as f32;
        assert!((var.sqrt() - 0.02).abs() < 0.002, "std {}", var.sqrt());
    }

    #[test]
    fn randn_deterministic() {
        let a = Tensor::randn([1, 2, 3, 4], 0.0, 1.0, 9);
        let b = Tensor::randn([1, 2, 3, 4], 0.0, 1.0, 9);
        assert_eq!(a, b);
        let c = Tensor::randn([1, 2, 3, 4], 0.0, 1.0, 10);
        assert_ne!(a, c);
    }

    #[test]
    fn concat_then_split_roundtrip() {
        let a = Tensor::randn([2, 3, 4, 4], 0.0, 1.0, 1);
        let b = Tensor::randn([2, 5, 4, 4], 0.0, 1.0, 2);
        let cat = a.concat_channels(&b);
        assert_eq!(cat.shape(), [2, 8, 4, 4]);
        let (a2, b2) = cat.split_channels(3);
        assert_eq!(a, a2);
        assert_eq!(b, b2);
    }

    #[test]
    fn concat_preserves_values_at_positions() {
        let mut a = Tensor::zeros([1, 1, 2, 2]);
        a.set(0, 0, 1, 1, 5.0);
        let mut b = Tensor::zeros([1, 1, 2, 2]);
        b.set(0, 0, 0, 0, 9.0);
        let cat = a.concat_channels(&b);
        assert_eq!(cat.at(0, 0, 1, 1), 5.0);
        assert_eq!(cat.at(0, 1, 0, 0), 9.0);
    }

    #[test]
    #[should_panic(expected = "height mismatch")]
    fn concat_rejects_mismatched_spatial() {
        let a = Tensor::zeros([1, 1, 2, 2]);
        let b = Tensor::zeros([1, 1, 3, 2]);
        let _ = a.concat_channels(&b);
    }

    #[test]
    fn reshape_keeps_data() {
        let t = Tensor::from_vec([1, 1, 2, 3], vec![1., 2., 3., 4., 5., 6.]);
        let r = t.clone().reshaped([1, 2, 3, 1]);
        assert_eq!(r.data(), t.data());
    }

    #[test]
    fn flips_are_involutions() {
        let t = Tensor::randn([2, 3, 4, 5], 0.0, 1.0, 11);
        assert_eq!(t.flipped_w().flipped_w(), t);
        assert_eq!(t.flipped_h().flipped_h(), t);
        assert_ne!(t.flipped_w(), t);
    }

    #[test]
    fn flip_moves_expected_elements() {
        let mut t = Tensor::zeros([1, 1, 2, 3]);
        t.set(0, 0, 0, 0, 1.0);
        let fw = t.flipped_w();
        assert_eq!(fw.at(0, 0, 0, 2), 1.0);
        assert_eq!(fw.at(0, 0, 0, 0), 0.0);
        let fh = t.flipped_h();
        assert_eq!(fh.at(0, 0, 1, 0), 1.0);
    }

    #[test]
    fn stack_then_split_roundtrip() {
        let a = Tensor::randn([1, 3, 4, 4], 0.0, 1.0, 1);
        let b = Tensor::randn([1, 3, 4, 4], 0.0, 1.0, 2);
        let c = Tensor::randn([2, 3, 4, 4], 0.0, 1.0, 3);
        let batch = Tensor::stack_batch(&[&a, &b, &c]);
        assert_eq!(batch.shape(), [4, 3, 4, 4]);
        let parts = batch.split_batch();
        assert_eq!(parts.len(), 4);
        assert_eq!(parts[0], a);
        assert_eq!(parts[1], b);
        let c_parts = c.split_batch();
        assert_eq!(parts[2], c_parts[0]);
        assert_eq!(parts[3], c_parts[1]);
    }

    #[test]
    fn stack_batch_preserves_element_positions() {
        let mut a = Tensor::zeros([1, 2, 2, 2]);
        a.set(0, 1, 1, 0, 5.0);
        let mut b = Tensor::zeros([1, 2, 2, 2]);
        b.set(0, 0, 0, 1, 9.0);
        let batch = Tensor::stack_batch(&[&a, &b]);
        assert_eq!(batch.at(0, 1, 1, 0), 5.0);
        assert_eq!(batch.at(1, 0, 0, 1), 9.0);
        assert_eq!(batch.at(1, 1, 1, 0), 0.0);
    }

    #[test]
    #[should_panic(expected = "stack_batch needs at least one tensor")]
    fn stack_batch_rejects_empty() {
        let _ = Tensor::stack_batch(&[]);
    }

    #[test]
    #[should_panic(expected = "stack_batch: part 1")]
    fn stack_batch_rejects_shape_mismatch() {
        let a = Tensor::zeros([1, 2, 4, 4]);
        let b = Tensor::zeros([1, 2, 4, 8]);
        let _ = Tensor::stack_batch(&[&a, &b]);
    }

    #[test]
    fn add_and_scale() {
        let mut a = Tensor::full([1, 1, 1, 3], 1.0);
        let b = Tensor::full([1, 1, 1, 3], 2.0);
        a.add_assign(&b);
        a.scale(0.5);
        assert_eq!(a.data(), &[1.5, 1.5, 1.5]);
        assert_eq!(a.mean(), 1.5);
    }
}
