//! `im2col`/`col2im` lowering for convolution.
//!
//! A `[C, H, W]` feature map is unrolled into a `[C·k·k, Ho·Wo]` matrix so
//! convolution becomes one matrix multiply; `col2im` is the exact adjoint
//! (scatter-add), which is what the backward-data pass and the transposed
//! convolution's forward pass need.

/// Output spatial size of a convolution: `(dim + 2·pad − k)/stride + 1`.
///
/// # Panics
///
/// Panics when the kernel does not fit (`dim + 2·pad < k`) or `stride == 0`.
pub fn conv_out_dim(dim: usize, k: usize, stride: usize, pad: usize) -> usize {
    assert!(stride > 0, "stride must be positive");
    assert!(dim + 2 * pad >= k, "kernel larger than padded input");
    (dim + 2 * pad - k) / stride + 1
}

/// Unrolls one sample `x: [c, h, w]` into `cols: [c·k·k, ho·wo]`
/// (zero padding outside the image).
#[allow(clippy::too_many_arguments)]
pub fn im2col(
    x: &[f32],
    c: usize,
    h: usize,
    w: usize,
    k: usize,
    stride: usize,
    pad: usize,
    cols: &mut [f32],
) {
    let ho = conv_out_dim(h, k, stride, pad);
    let wo = conv_out_dim(w, k, stride, pad);
    assert_eq!(cols.len(), c * k * k * ho * wo, "cols size");
    im2col_strided(x, c, h, w, k, stride, pad, cols, ho * wo, 0);
}

/// [`im2col`] writing into a wider interleaved matrix: sample columns land
/// at `col_offset` inside rows of length `row_stride`.
///
/// This is the batched-convolution primitive: unrolling every sample of an
/// `[N, C, H, W]` batch side by side produces one `[C·k·k, N·Ho·Wo]`
/// matrix, so the whole batch runs through a single matmul whose inner
/// loop is `N×` longer — the win that makes micro-batched inference beat
/// sequential single-sample calls on small feature maps.
///
/// # Panics
///
/// Panics when `x` does not match `c·h·w`, when the sample's columns
/// (`col_offset + ho·wo`) overrun `row_stride`, or when `cols` is not
/// exactly `c·k·k` rows of `row_stride`.
#[allow(clippy::too_many_arguments)]
pub fn im2col_strided(
    x: &[f32],
    c: usize,
    h: usize,
    w: usize,
    k: usize,
    stride: usize,
    pad: usize,
    cols: &mut [f32],
    row_stride: usize,
    col_offset: usize,
) {
    let ho = conv_out_dim(h, k, stride, pad);
    let wo = conv_out_dim(w, k, stride, pad);
    assert_eq!(x.len(), c * h * w, "input size");
    assert!(col_offset + ho * wo <= row_stride, "columns overrun stride");
    assert_eq!(cols.len(), c * k * k * row_stride, "cols size");
    for ci in 0..c {
        for ky in 0..k {
            for kx in 0..k {
                let row = (ci * k + ky) * k + kx;
                // The in-bounds output-x span for this tap is a fixed
                // interval (`ix = ox·stride + kx − pad ∈ [0, w)`), so the
                // inner loop needs no per-pixel bounds branch: zero-fill
                // the edges, then bulk-copy (stride 1) or gather.
                let (ox_lo, ox_hi) = tap_span(w, wo, stride, kx, pad);
                let dst = &mut cols
                    [row * row_stride + col_offset..row * row_stride + col_offset + ho * wo];
                for oy in 0..ho {
                    let iy = (oy * stride + ky) as isize - pad as isize;
                    let out = &mut dst[oy * wo..(oy + 1) * wo];
                    if iy < 0 || iy >= h as isize {
                        out.fill(0.0);
                        continue;
                    }
                    let src_row = &x[(ci * h + iy as usize) * w..(ci * h + iy as usize + 1) * w];
                    out[..ox_lo].fill(0.0);
                    out[ox_hi..].fill(0.0);
                    if ox_lo < ox_hi {
                        let ix0 = ox_lo * stride + kx - pad;
                        if stride == 1 {
                            out[ox_lo..ox_hi].copy_from_slice(&src_row[ix0..ix0 + (ox_hi - ox_lo)]);
                        } else {
                            for (o, s) in out[ox_lo..ox_hi]
                                .iter_mut()
                                .zip(src_row[ix0..].iter().step_by(stride))
                            {
                                *o = *s;
                            }
                        }
                    }
                }
            }
        }
    }
}

/// The half-open output-x interval `[ox_lo, ox_hi)` for which kernel tap
/// `kx` reads in-bounds input (`0 ≤ ox·stride + kx − pad < w`); outside it
/// the tap sees zero padding.
fn tap_span(w: usize, wo: usize, stride: usize, kx: usize, pad: usize) -> (usize, usize) {
    let lo = if pad > kx {
        (pad - kx).div_ceil(stride)
    } else {
        0
    };
    let hi = (w + pad)
        .checked_sub(kx + 1)
        .map(|last| (last / stride + 1).min(wo))
        .unwrap_or(0);
    (lo.min(hi), hi)
}

/// Adjoint of [`im2col`]: scatter-adds `cols: [c·k·k, ho·wo]` back into
/// `x: [c, h, w]` (which must be pre-zeroed by the caller if accumulation
/// from a clean slate is desired).
#[allow(clippy::too_many_arguments)]
pub fn col2im(
    cols: &[f32],
    c: usize,
    h: usize,
    w: usize,
    k: usize,
    stride: usize,
    pad: usize,
    x: &mut [f32],
) {
    let ho = conv_out_dim(h, k, stride, pad);
    let wo = conv_out_dim(w, k, stride, pad);
    assert_eq!(x.len(), c * h * w, "output size");
    assert_eq!(cols.len(), c * k * k * ho * wo, "cols size");
    let out_plane = ho * wo;
    for ci in 0..c {
        for ky in 0..k {
            for kx in 0..k {
                let row = (ci * k + ky) * k + kx;
                let src = &cols[row * out_plane..(row + 1) * out_plane];
                // Same branch-free tap interval as `im2col_strided`; the
                // scatter-add visits each destination once per (row, oy),
                // at ascending `ox`, so the accumulation order matches the
                // branchy loop exactly.
                let (ox_lo, ox_hi) = tap_span(w, wo, stride, kx, pad);
                for oy in 0..ho {
                    let iy = (oy * stride + ky) as isize - pad as isize;
                    if iy < 0 || iy >= h as isize {
                        continue;
                    }
                    let dst_row =
                        &mut x[(ci * h + iy as usize) * w..(ci * h + iy as usize + 1) * w];
                    if ox_lo < ox_hi {
                        let ix0 = ox_lo * stride + kx - pad;
                        for (s, d) in src[oy * wo + ox_lo..oy * wo + ox_hi]
                            .iter()
                            .zip(dst_row[ix0..].iter_mut().step_by(stride))
                        {
                            *d += *s;
                        }
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn out_dim_formula() {
        assert_eq!(conv_out_dim(16, 4, 2, 1), 8); // pix2pix halving
        assert_eq!(conv_out_dim(5, 3, 1, 1), 5); // same-conv
        assert_eq!(conv_out_dim(4, 4, 1, 0), 1);
    }

    #[test]
    #[should_panic(expected = "kernel larger")]
    fn out_dim_rejects_oversize_kernel() {
        let _ = conv_out_dim(2, 5, 1, 0);
    }

    #[test]
    fn im2col_identity_kernel() {
        // k=1, s=1, p=0 is a no-op reshape.
        let x: Vec<f32> = (0..12).map(|v| v as f32).collect();
        let mut cols = vec![0.0; 12];
        im2col(&x, 3, 2, 2, 1, 1, 0, &mut cols);
        assert_eq!(cols, x);
    }

    #[test]
    fn im2col_strided_interleaves_samples() {
        // Two 1-channel 2x2 samples with k=1 (no-op unroll) side by side.
        let a = vec![1.0, 2.0, 3.0, 4.0];
        let b = vec![5.0, 6.0, 7.0, 8.0];
        let mut cols = vec![0.0; 8]; // 1 row of stride 8
        im2col_strided(&a, 1, 2, 2, 1, 1, 0, &mut cols, 8, 0);
        im2col_strided(&b, 1, 2, 2, 1, 1, 0, &mut cols, 8, 4);
        assert_eq!(cols, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0]);
    }

    #[test]
    fn im2col_strided_matches_plain_im2col_per_block() {
        let (c, h, w, k, s, p) = (2, 5, 4, 3, 2, 1);
        let ho = conv_out_dim(h, k, s, p);
        let wo = conv_out_dim(w, k, s, p);
        let plane = ho * wo;
        let x: Vec<f32> = (0..c * h * w).map(|i| (i as f32 * 0.61).sin()).collect();
        let mut plain = vec![0.0; c * k * k * plane];
        im2col(&x, c, h, w, k, s, p, &mut plain);
        // Interleave the same sample at offset `plane` of a 3-sample-wide
        // matrix and compare block-wise.
        let mut wide = vec![-1.0; c * k * k * plane * 3];
        im2col_strided(&x, c, h, w, k, s, p, &mut wide, plane * 3, plane);
        for row in 0..c * k * k {
            assert_eq!(
                &wide[row * plane * 3 + plane..row * plane * 3 + 2 * plane],
                &plain[row * plane..(row + 1) * plane],
                "row {row}"
            );
        }
    }

    #[test]
    fn im2col_knows_padding() {
        // 1 channel, 2x2 input, k=3, s=1, p=1 -> 2x2 output positions.
        let x = vec![1.0, 2.0, 3.0, 4.0];
        let mut cols = vec![0.0; 9 * 4];
        im2col(&x, 1, 2, 2, 3, 1, 1, &mut cols);
        // Centre tap (ky=1,kx=1) row must equal the input itself.
        let centre = &cols[4 * 4..5 * 4];
        assert_eq!(centre, &x[..]);
        // Top-left tap at output (0,0) looks at (-1,-1): zero.
        assert_eq!(cols[0], 0.0);
        // Top-left tap at output (1,1) looks at (0,0): 1.0.
        assert_eq!(cols[3], 1.0);
    }

    /// The adjoint identity `<im2col(x), y> == <x, col2im(y)>` is the exact
    /// property backward passes rely on.
    #[test]
    fn col2im_is_adjoint_of_im2col() {
        let (c, h, w, k, s, p) = (2, 5, 4, 3, 2, 1);
        let ho = conv_out_dim(h, k, s, p);
        let wo = conv_out_dim(w, k, s, p);
        let x: Vec<f32> = (0..c * h * w).map(|i| (i as f32 * 0.37).sin()).collect();
        let y: Vec<f32> = (0..c * k * k * ho * wo)
            .map(|i| (i as f32 * 0.53).cos())
            .collect();
        let mut ix = vec![0.0; y.len()];
        im2col(&x, c, h, w, k, s, p, &mut ix);
        let lhs: f64 = ix
            .iter()
            .zip(&y)
            .map(|(a, b)| (*a as f64) * (*b as f64))
            .sum();
        let mut cy = vec![0.0; x.len()];
        col2im(&y, c, h, w, k, s, p, &mut cy);
        let rhs: f64 = x
            .iter()
            .zip(&cy)
            .map(|(a, b)| (*a as f64) * (*b as f64))
            .sum();
        assert!((lhs - rhs).abs() < 1e-3, "{lhs} vs {rhs}");
    }

    #[test]
    fn col2im_accumulates() {
        let cols = vec![1.0; 9 * 4];
        let mut x = vec![0.0; 4];
        col2im(&cols, 1, 2, 2, 3, 1, 1, &mut x);
        // Every output position's 3x3 window covers each input pixel at
        // least once; values must be > 1 due to overlap.
        assert!(x.iter().all(|&v| v >= 2.0), "{x:?}");
    }
}
