//! Finite-difference gradient verification.
//!
//! Used by the test suites of this crate and of
//! [`pop-core`](../pop_core/index.html) to prove every layer's hand-written
//! backward pass against central differences. The probe loss is
//! `L = Σ y ⊙ r` for a fixed random `r`, whose exact output-gradient is `r`.

use crate::tensor::Tensor;
use crate::Layer;

/// Result of one gradient check: largest absolute and relative deviation
/// observed.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GradCheck {
    /// Largest |analytic − numeric| over all probed coordinates.
    pub max_abs_err: f32,
    /// Largest |analytic − numeric| / max(|analytic|, |numeric|, 1e-4).
    pub max_rel_err: f32,
}

impl GradCheck {
    /// Whether both deviations are within tolerance.
    pub fn passes(&self, tol: f32) -> bool {
        self.max_abs_err < tol || self.max_rel_err < tol
    }
}

fn probe_loss<L: Layer>(layer: &mut L, x: &Tensor, r: &Tensor) -> f64 {
    let y = layer.forward(x, true);
    assert_eq!(y.shape(), r.shape(), "probe shape");
    y.data()
        .iter()
        .zip(r.data())
        .map(|(a, b)| *a as f64 * *b as f64)
        .sum()
}

/// Checks the input gradient of `layer` at `x` against central differences
/// on `samples` evenly spaced coordinates.
///
/// The layer must be deterministic across forward calls (no dropout with
/// `p > 0`).
pub fn check_input_grad<L: Layer>(
    layer: &mut L,
    x: &Tensor,
    eps: f32,
    samples: usize,
) -> GradCheck {
    // Output-gradient probe r: fixed pseudo-random pattern.
    let y = layer.forward(x, true);
    let r = Tensor::randn(y.shape(), 0.0, 1.0, 0x5eed);
    // Analytic gradient.
    let _ = layer.forward(x, true);
    let dx = layer.backward(&r);

    let mut worst = GradCheck {
        max_abs_err: 0.0,
        max_rel_err: 0.0,
    };
    let n = x.len();
    let step = (n / samples.max(1)).max(1);
    for i in (0..n).step_by(step) {
        let mut xp = x.clone();
        xp.data_mut()[i] += eps;
        let lp = probe_loss(layer, &xp, &r);
        let mut xm = x.clone();
        xm.data_mut()[i] -= eps;
        let lm = probe_loss(layer, &xm, &r);
        let numeric = ((lp - lm) / (2.0 * eps as f64)) as f32;
        let analytic = dx.data()[i];
        accumulate(&mut worst, analytic, numeric);
    }
    worst
}

/// Checks the parameter gradients of `layer` at `x` against central
/// differences on up to `samples` coordinates per parameter.
pub fn check_param_grads<L: Layer>(
    layer: &mut L,
    x: &Tensor,
    eps: f32,
    samples: usize,
) -> GradCheck {
    let y = layer.forward(x, true);
    let r = Tensor::randn(y.shape(), 0.0, 1.0, 0x5eed);
    layer.zero_grad();
    let _ = layer.forward(x, true);
    let _ = layer.backward(&r);
    let analytic: Vec<Vec<f32>> = layer
        .params_mut()
        .iter()
        .map(|p| p.grad.data().to_vec())
        .collect();

    let mut worst = GradCheck {
        max_abs_err: 0.0,
        max_rel_err: 0.0,
    };
    for (pi, grads) in analytic.iter().enumerate() {
        let plen = grads.len();
        let step = (plen / samples.max(1)).max(1);
        for i in (0..plen).step_by(step) {
            perturb(layer, pi, i, eps);
            let lp = probe_loss(layer, x, &r);
            perturb(layer, pi, i, -2.0 * eps);
            let lm = probe_loss(layer, x, &r);
            perturb(layer, pi, i, eps); // restore
            let numeric = ((lp - lm) / (2.0 * eps as f64)) as f32;
            accumulate(&mut worst, grads[i], numeric);
        }
    }
    worst
}

fn perturb<L: Layer>(layer: &mut L, pi: usize, i: usize, delta: f32) {
    let mut params = layer.params_mut();
    params[pi].value.data_mut()[i] += delta;
}

fn accumulate(worst: &mut GradCheck, analytic: f32, numeric: f32) {
    let abs = (analytic - numeric).abs();
    let rel = abs / analytic.abs().max(numeric.abs()).max(1e-4);
    worst.max_abs_err = worst.max_abs_err.max(abs);
    worst.max_rel_err = worst.max_rel_err.max(rel);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{BatchNorm2d, Conv2d, ConvTranspose2d, LeakyRelu, Relu, Sigmoid, Tanh};

    const EPS: f32 = 1e-2;
    const TOL: f32 = 2e-2;

    #[test]
    fn conv2d_gradients() {
        let mut layer = Conv2d::new(2, 3, 4, 2, 1, 11);
        let x = Tensor::randn([1, 2, 8, 8], 0.0, 1.0, 12);
        let gi = check_input_grad(&mut layer, &x, EPS, 40);
        assert!(gi.passes(TOL), "input: {gi:?}");
        let gp = check_param_grads(&mut layer, &x, EPS, 30);
        assert!(gp.passes(TOL), "params: {gp:?}");
    }

    #[test]
    fn conv_transpose2d_gradients() {
        let mut layer = ConvTranspose2d::new(3, 2, 4, 2, 1, 13);
        let x = Tensor::randn([1, 3, 4, 4], 0.0, 1.0, 14);
        let gi = check_input_grad(&mut layer, &x, EPS, 40);
        assert!(gi.passes(TOL), "input: {gi:?}");
        let gp = check_param_grads(&mut layer, &x, EPS, 30);
        assert!(gp.passes(TOL), "params: {gp:?}");
    }

    #[test]
    fn batchnorm_gradients() {
        let mut layer = BatchNorm2d::new(3);
        let x = Tensor::randn([2, 3, 5, 5], 0.5, 1.5, 15);
        let gi = check_input_grad(&mut layer, &x, EPS, 40);
        assert!(gi.passes(TOL), "input: {gi:?}");
        let gp = check_param_grads(&mut layer, &x, EPS, 12);
        assert!(gp.passes(TOL), "params: {gp:?}");
    }

    #[test]
    fn activation_gradients() {
        let x = Tensor::randn([1, 2, 6, 6], 0.0, 1.0, 16);
        let gi = check_input_grad(&mut LeakyRelu::default(), &x, 1e-3, 30);
        assert!(gi.passes(TOL), "leaky: {gi:?}");
        let gi = check_input_grad(&mut Relu::new(), &x, 1e-3, 30);
        assert!(gi.passes(TOL), "relu: {gi:?}");
        let gi = check_input_grad(&mut Tanh::new(), &x, EPS, 30);
        assert!(gi.passes(TOL), "tanh: {gi:?}");
        let gi = check_input_grad(&mut Sigmoid::new(), &x, EPS, 30);
        assert!(gi.passes(TOL), "sigmoid: {gi:?}");
    }

    #[test]
    fn stride_one_conv_gradients() {
        // The discriminator's final layers use stride-1 convolutions.
        let mut layer = Conv2d::new(2, 1, 4, 1, 1, 17);
        let x = Tensor::randn([1, 2, 6, 6], 0.0, 1.0, 18);
        let gi = check_input_grad(&mut layer, &x, EPS, 40);
        assert!(gi.passes(TOL), "input: {gi:?}");
    }
}
