use crate::param::Param;
use crate::tensor::Tensor;
use crate::Layer;

/// 2-D batch normalisation over `(N, H, W)` per channel.
///
/// Figure 5's discriminator uses "convolutional layers (with batch
/// normalization)"; the pix2pix generator batch-norms every encoder/decoder
/// block except the first and the innermost. With the paper's batch size of
/// 1 this behaves like instance normalisation, which is exactly how pix2pix
/// is trained.
///
/// Training uses batch statistics and maintains running estimates
/// (momentum 0.1) that inference (`train = false`) consumes.
#[derive(Debug, Clone)]
pub struct BatchNorm2d {
    channels: usize,
    eps: f32,
    momentum: f32,
    gamma: Param,
    beta: Param,
    running_mean: Vec<f32>,
    running_var: Vec<f32>,
    // Backward cache (training mode).
    cached_xhat: Option<Tensor>,
    cached_inv_std: Vec<f32>,
}

impl BatchNorm2d {
    /// Creates a batch-norm layer for `channels` feature maps
    /// (`γ = 1`, `β = 0`, `ε = 1e-5`).
    pub fn new(channels: usize) -> Self {
        BatchNorm2d {
            channels,
            eps: 1e-5,
            momentum: 0.1,
            gamma: Param::new(Tensor::full([1, channels, 1, 1], 1.0)),
            beta: Param::new(Tensor::zeros([1, channels, 1, 1])),
            running_mean: vec![0.0; channels],
            running_var: vec![1.0; channels],
            cached_xhat: None,
            cached_inv_std: vec![0.0; channels],
        }
    }

    /// Number of channels this layer normalises.
    pub fn channels(&self) -> usize {
        self.channels
    }

    /// The inference-mode transform as a per-channel affine
    /// `y = scale·x + shift` (running statistics baked in) — what a
    /// quantized convolution folds into its weights.
    pub fn inference_affine(&self) -> (Vec<f32>, Vec<f32>) {
        let mut scale = vec![0.0f32; self.channels];
        let mut shift = vec![0.0f32; self.channels];
        for c in 0..self.channels {
            let inv_std = 1.0 / (self.running_var[c] + self.eps).sqrt();
            let g = self.gamma.value.data()[c];
            scale[c] = g * inv_std;
            shift[c] = self.beta.value.data()[c] - g * self.running_mean[c] * inv_std;
        }
        (scale, shift)
    }
}

impl Layer for BatchNorm2d {
    fn forward(&mut self, x: &Tensor, train: bool) -> Tensor {
        assert_eq!(x.c(), self.channels, "channel count");
        let [n, c, h, w] = x.shape();
        let m = (n * h * w) as f32;
        let plane = h * w;
        let mut y = Tensor::zeros(x.shape());
        let mut xhat = Tensor::zeros(x.shape());
        for ci in 0..c {
            let (mean, var) = if train {
                let mut sum = 0.0f64;
                for b in 0..n {
                    let s = &x.data()[(b * c + ci) * plane..(b * c + ci + 1) * plane];
                    sum += s.iter().map(|&v| v as f64).sum::<f64>();
                }
                let mean = (sum / m as f64) as f32;
                let mut var_sum = 0.0f64;
                for b in 0..n {
                    let s = &x.data()[(b * c + ci) * plane..(b * c + ci + 1) * plane];
                    var_sum += s
                        .iter()
                        .map(|&v| {
                            let d = (v - mean) as f64;
                            d * d
                        })
                        .sum::<f64>();
                }
                let var = (var_sum / m as f64) as f32;
                self.running_mean[ci] =
                    (1.0 - self.momentum) * self.running_mean[ci] + self.momentum * mean;
                self.running_var[ci] =
                    (1.0 - self.momentum) * self.running_var[ci] + self.momentum * var;
                (mean, var)
            } else {
                (self.running_mean[ci], self.running_var[ci])
            };
            let inv_std = 1.0 / (var + self.eps).sqrt();
            self.cached_inv_std[ci] = inv_std;
            let g = self.gamma.value.data()[ci];
            let bta = self.beta.value.data()[ci];
            for b in 0..n {
                let src = &x.data()[(b * c + ci) * plane..(b * c + ci + 1) * plane];
                let xh = &mut xhat.data_mut()[(b * c + ci) * plane..(b * c + ci + 1) * plane];
                for (o, &v) in xh.iter_mut().zip(src) {
                    *o = (v - mean) * inv_std;
                }
            }
            for b in 0..n {
                let xh = &xhat.data()[(b * c + ci) * plane..(b * c + ci + 1) * plane];
                let dst = &mut y.data_mut()[(b * c + ci) * plane..(b * c + ci + 1) * plane];
                for (o, &v) in dst.iter_mut().zip(xh) {
                    *o = g * v + bta;
                }
            }
        }
        if train {
            self.cached_xhat = Some(xhat);
        }
        y
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let xhat = self
            .cached_xhat
            .take()
            .expect("BatchNorm2d::backward called before training forward");
        let [n, c, h, w] = grad_out.shape();
        let m = (n * h * w) as f32;
        let plane = h * w;
        let mut dx = Tensor::zeros(grad_out.shape());
        for ci in 0..c {
            let g = self.gamma.value.data()[ci];
            let inv_std = self.cached_inv_std[ci];
            let mut sum_dy = 0.0f64;
            let mut sum_dy_xhat = 0.0f64;
            for b in 0..n {
                let dy = &grad_out.data()[(b * c + ci) * plane..(b * c + ci + 1) * plane];
                let xh = &xhat.data()[(b * c + ci) * plane..(b * c + ci + 1) * plane];
                for (yv, xv) in dy.iter().zip(xh) {
                    sum_dy += *yv as f64;
                    sum_dy_xhat += (*yv as f64) * (*xv as f64);
                }
            }
            self.beta.grad.data_mut()[ci] += sum_dy as f32;
            self.gamma.grad.data_mut()[ci] += sum_dy_xhat as f32;
            let k = g * inv_std / m;
            for b in 0..n {
                let dy = &grad_out.data()[(b * c + ci) * plane..(b * c + ci + 1) * plane];
                let xh = &xhat.data()[(b * c + ci) * plane..(b * c + ci + 1) * plane];
                let dst = &mut dx.data_mut()[(b * c + ci) * plane..(b * c + ci + 1) * plane];
                for ((o, &yv), &xv) in dst.iter_mut().zip(dy).zip(xh) {
                    *o = k * (m * yv - sum_dy as f32 - xv * sum_dy_xhat as f32);
                }
            }
        }
        dx
    }

    fn params_mut(&mut self) -> Vec<&mut Param> {
        vec![&mut self.gamma, &mut self.beta]
    }

    fn buffers_mut(&mut self) -> Vec<&mut Vec<f32>> {
        vec![&mut self.running_mean, &mut self.running_var]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn training_output_is_normalised() {
        let mut bn = BatchNorm2d::new(2);
        let x = Tensor::randn([1, 2, 8, 8], 3.0, 2.0, 5);
        let y = bn.forward(&x, true);
        // Per-channel mean ~0, var ~1.
        let plane = 64;
        for c in 0..2 {
            let s = &y.data()[c * plane..(c + 1) * plane];
            let mean: f32 = s.iter().sum::<f32>() / plane as f32;
            let var: f32 = s.iter().map(|v| (v - mean) * (v - mean)).sum::<f32>() / plane as f32;
            assert!(mean.abs() < 1e-4, "mean {mean}");
            assert!((var - 1.0).abs() < 1e-2, "var {var}");
        }
    }

    #[test]
    fn eval_uses_running_stats() {
        let mut bn = BatchNorm2d::new(1);
        // Train on a fixed distribution several times to move running stats.
        for seed in 0..30 {
            let x = Tensor::randn([1, 1, 16, 16], 5.0, 1.0, seed);
            let _ = bn.forward(&x, true);
        }
        // Eval on the same distribution: output should be near standard.
        let x = Tensor::randn([1, 1, 16, 16], 5.0, 1.0, 99);
        let y = bn.forward(&x, false);
        let mean = y.mean();
        assert!(mean.abs() < 0.5, "eval mean {mean}");
    }

    #[test]
    fn gamma_beta_affect_output() {
        let mut bn = BatchNorm2d::new(1);
        bn.gamma.value.data_mut()[0] = 2.0;
        bn.beta.value.data_mut()[0] = 1.0;
        let x = Tensor::randn([1, 1, 4, 4], 0.0, 1.0, 1);
        let y = bn.forward(&x, true);
        let mean = y.mean();
        assert!((mean - 1.0).abs() < 1e-4, "shifted mean {mean}");
    }

    #[test]
    fn backward_shapes_and_zero_mean_grad() {
        let mut bn = BatchNorm2d::new(3);
        let x = Tensor::randn([2, 3, 4, 4], 0.0, 1.0, 2);
        let _ = bn.forward(&x, true);
        let dy = Tensor::randn([2, 3, 4, 4], 0.0, 1.0, 3);
        let dx = bn.backward(&dy);
        assert_eq!(dx.shape(), x.shape());
        // BN input grads are zero-mean per channel (projection property).
        let plane = 16;
        for c in 0..3 {
            let mut s = 0.0f32;
            for b in 0..2 {
                s += dx.data()[(b * 3 + c) * plane..(b * 3 + c + 1) * plane]
                    .iter()
                    .sum::<f32>();
            }
            assert!(s.abs() < 1e-3, "channel {c} grad sum {s}");
        }
    }

    #[test]
    fn single_element_stats_do_not_nan() {
        let mut bn = BatchNorm2d::new(4);
        let x = Tensor::randn([1, 4, 1, 1], 0.0, 1.0, 7);
        let y = bn.forward(&x, true);
        assert!(y.data().iter().all(|v| v.is_finite()));
        let dx = bn.backward(&Tensor::full([1, 4, 1, 1], 1.0));
        assert!(dx.data().iter().all(|v| v.is_finite()));
    }
}
