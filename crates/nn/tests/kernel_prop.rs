//! Property tests pinning the register-blocked kernels to their scalar
//! reference semantics across arbitrary shapes — full 4×8 blocks, row
//! tails, column tails and degenerate single-row/column cases — plus the
//! quantization round-trip error bound.
//!
//! The equality here is **bitwise** (`to_bits`), not approximate: the
//! kernels' contract is that register blocking regroups independent
//! outputs without changing any output's fold order (see
//! `src/linalg.rs`).

use pop_nn::linalg::{matmul_nn, matmul_nt, matmul_tn};
use pop_nn::quant::{dot_q, quantize_symmetric, QMAX};
use proptest::prelude::*;

/// Scalar reference for `nn`/`tn`: each `C[i, j]` starts from the existing
/// C value and folds the `k` products in ascending order.
fn ref_accumulate(a: &[f32], b: &[f32], c: &mut [f32], m: usize, k: usize, n: usize) {
    for i in 0..m {
        for j in 0..n {
            let mut acc = c[i * n + j];
            for kk in 0..k {
                acc += a[i * k + kk] * b[kk * n + j];
            }
            c[i * n + j] = acc;
        }
    }
}

/// Scalar reference for `nt` (`B` stored `n×k`): a zero-seeded dot folded
/// in ascending `k`, then added onto C — the kernel's documented chain.
fn ref_nt(a: &[f32], bt: &[f32], c: &mut [f32], m: usize, k: usize, n: usize) {
    for i in 0..m {
        for j in 0..n {
            let mut acc = 0.0f32;
            for kk in 0..k {
                acc += a[i * k + kk] * bt[j * k + kk];
            }
            c[i * n + j] += acc;
        }
    }
}

fn transpose(x: &[f32], rows: usize, cols: usize) -> Vec<f32> {
    let mut t = vec![0.0; x.len()];
    for r in 0..rows {
        for cc in 0..cols {
            t[cc * rows + r] = x[r * cols + cc];
        }
    }
    t
}

fn bits(v: &[f32]) -> Vec<u32> {
    v.iter().map(|x| x.to_bits()).collect()
}

/// Deterministic filler so matrix content varies with the sampled seed but
/// needs no O(m·k) strategy machinery.
fn fill(len: usize, seed: u64) -> Vec<f32> {
    (0..len)
        .map(|i| {
            let x = (i as u64)
                .wrapping_mul(6364136223846793005)
                .wrapping_add(seed.wrapping_mul(1442695040888963407) | 1);
            ((x >> 33) as f32 / 2.0_f32.powi(31)) - 1.0
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// `matmul_nn` is bitwise the scalar accumulate kernel for every
    /// shape, including a non-zero starting C.
    #[test]
    fn nn_is_bitwise_naive(m in 1usize..40, k in 1usize..40, n in 1usize..40, seed in 0u64..1000) {
        let a = fill(m * k, seed);
        let b = fill(k * n, seed ^ 0xA5A5);
        let c0 = fill(m * n, seed ^ 0x5A5A);
        let mut got = c0.clone();
        matmul_nn(&a, &b, &mut got, m, k, n);
        let mut want = c0;
        ref_accumulate(&a, &b, &mut want, m, k, n);
        prop_assert_eq!(bits(&got), bits(&want), "shape ({}, {}, {})", m, k, n);
    }

    /// `matmul_tn` (A stored `k×m`) is bitwise the scalar accumulate
    /// kernel on the transposed A.
    #[test]
    fn tn_is_bitwise_naive(m in 1usize..40, k in 1usize..40, n in 1usize..40, seed in 0u64..1000) {
        let at = fill(k * m, seed);
        let a = transpose(&at, k, m);
        let b = fill(k * n, seed ^ 0x33CC);
        let c0 = fill(m * n, seed ^ 0xCC33);
        let mut got = c0.clone();
        matmul_tn(&at, &b, &mut got, m, k, n);
        let mut want = c0;
        ref_accumulate(&a, &b, &mut want, m, k, n);
        prop_assert_eq!(bits(&got), bits(&want), "shape ({}, {}, {})", m, k, n);
    }

    /// `matmul_nt` (B stored `n×k`) is bitwise the zero-seeded-dot-then-add
    /// scalar chain.
    #[test]
    fn nt_is_bitwise_naive(m in 1usize..40, k in 1usize..40, n in 1usize..40, seed in 0u64..1000) {
        let a = fill(m * k, seed);
        let bt = fill(n * k, seed ^ 0x0F0F);
        let c0 = fill(m * n, seed ^ 0xF0F0);
        let mut got = c0.clone();
        matmul_nt(&a, &bt, &mut got, m, k, n);
        let mut want = c0;
        ref_nt(&a, &bt, &mut want, m, k, n);
        prop_assert_eq!(bits(&got), bits(&want), "shape ({}, {}, {})", m, k, n);
    }

    /// Symmetric i8 quantization round-trips every element within half a
    /// quantization step (plus f32 rounding slack), and codes stay on the
    /// signed-8-bit grid.
    #[test]
    fn quantize_roundtrip_is_half_step_bounded(
        len in 1usize..256,
        mag in 0.01f32..50.0,
        seed in 0u64..10_000,
    ) {
        let values: Vec<f32> = fill(len, seed).iter().map(|v| v * mag).collect();
        let mut q = vec![0i16; values.len()];
        let scale = quantize_symmetric(&values, &mut q);
        let maxabs = values.iter().fold(0.0f32, |m, v| m.max(v.abs()));
        if maxabs == 0.0 {
            prop_assert_eq!(scale, 0.0);
            prop_assert!(q.iter().all(|&c| c == 0));
        } else {
            let step = maxabs / QMAX;
            prop_assert!((scale - step).abs() <= step * 1e-6);
            for (&v, &code) in values.iter().zip(&q) {
                prop_assert!((-127..=127).contains(&code), "code {} off-grid", code);
                let back = code as f32 * scale;
                // Half a grid step, plus slack for the f32 roundings in
                // `v * inv` and `code * scale` (both proportional to scale
                // since |v| ≤ 127·scale).
                prop_assert!(
                    (back - v).abs() <= (0.5 + 1e-4) * scale + 1e-6,
                    "|{} - {}| exceeds half step {}",
                    back, v, 0.5 * scale
                );
            }
        }
    }

    /// The widened i16 dot product is exact: it equals the i64 reference
    /// for every pair of in-range code vectors.
    #[test]
    fn dot_q_matches_i64_reference(len in 0usize..512, seed in 0u64..10_000) {
        let codes = |salt: u64| -> Vec<i16> {
            fill(len, seed ^ salt)
                .iter()
                .map(|v| (v * QMAX).round() as i16)
                .collect()
        };
        let a = codes(0);
        let b = codes(0x9E37);
        let want: i64 = a.iter().zip(&b).map(|(&x, &y)| x as i64 * y as i64).sum();
        prop_assert_eq!(dot_q(&a, &b) as i64, want);
    }
}
