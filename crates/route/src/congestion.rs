use pop_arch::{Arch, ChannelId};

/// Per-channel-segment routing utilisation — the paper's ground truth.
///
/// `utilization(ch) = occupancy(ch) / channel_width`, where occupancy counts
/// distinct nets crossing segment `ch`. Values may exceed `1.0` when the
/// router was stopped with overuse remaining; the heat-map renderer
/// saturates at `1.0` like VPR's colour bar.
#[derive(Debug, Clone, PartialEq)]
pub struct CongestionMap {
    width: usize,
    height: usize,
    util: Vec<f32>,
}

impl CongestionMap {
    /// Builds a map from raw per-node occupancy.
    pub(crate) fn from_occupancy(arch: &Arch, occupancy: &[u32], capacity: usize) -> Self {
        let cap = capacity.max(1) as f32;
        CongestionMap {
            width: arch.width(),
            height: arch.height(),
            util: occupancy.iter().map(|&o| o as f32 / cap).collect(),
        }
    }

    /// Builds a map directly from utilisation values (used by tests and by
    /// synthetic-forecast tooling). `util` must have one entry per channel
    /// segment in [`Arch::channel_index`] order.
    pub fn from_utilization(arch: &Arch, util: Vec<f32>) -> Self {
        assert_eq!(
            util.len(),
            arch.channel_count(),
            "one utilisation value per channel segment"
        );
        CongestionMap {
            width: arch.width(),
            height: arch.height(),
            util,
        }
    }

    /// Grid width in tiles of the architecture this map belongs to.
    pub fn grid_width(&self) -> usize {
        self.width
    }

    /// Grid height in tiles of the architecture this map belongs to.
    pub fn grid_height(&self) -> usize {
        self.height
    }

    /// Utilisation of one segment by dense index.
    #[inline]
    pub fn utilization_at(&self, index: usize) -> f32 {
        self.util[index]
    }

    /// Utilisation of one segment by channel id.
    pub fn utilization(&self, arch: &Arch, ch: ChannelId) -> f32 {
        self.util[arch.channel_index(ch)]
    }

    /// All utilisation values in [`Arch::channel_index`] order.
    pub fn values(&self) -> &[f32] {
        &self.util
    }

    /// Largest utilisation over all segments (0 when there are none).
    pub fn max_utilization(&self) -> f32 {
        self.util.iter().copied().fold(0.0, f32::max)
    }

    /// Mean utilisation over all segments.
    pub fn mean_utilization(&self) -> f32 {
        if self.util.is_empty() {
            return 0.0;
        }
        self.util.iter().sum::<f32>() / self.util.len() as f32
    }

    /// Number of segments with utilisation strictly above `threshold`.
    pub fn count_above(&self, threshold: f32) -> usize {
        self.util.iter().filter(|&&u| u > threshold).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn arch() -> Arch {
        Arch::builder().interior(4, 4).build().unwrap()
    }

    #[test]
    fn from_occupancy_divides_by_capacity() {
        let a = arch();
        let occ = vec![8u32; a.channel_count()];
        let m = CongestionMap::from_occupancy(&a, &occ, 16);
        assert!(m.values().iter().all(|&u| (u - 0.5).abs() < 1e-6));
        assert_eq!(m.max_utilization(), 0.5);
        assert_eq!(m.mean_utilization(), 0.5);
    }

    #[test]
    fn count_above_threshold() {
        let a = arch();
        let mut util = vec![0.2f32; a.channel_count()];
        util[0] = 0.9;
        util[1] = 0.95;
        let m = CongestionMap::from_utilization(&a, util);
        assert_eq!(m.count_above(0.8), 2);
        assert_eq!(m.count_above(1.0), 0);
    }

    #[test]
    #[should_panic(expected = "one utilisation value per channel segment")]
    fn from_utilization_checks_length() {
        let a = arch();
        let _ = CongestionMap::from_utilization(&a, vec![0.0; 3]);
    }

    #[test]
    fn lookup_by_channel_id() {
        let a = arch();
        let mut util = vec![0.0f32; a.channel_count()];
        let ch = ChannelId::Horizontal { x: 1, y: 0 };
        util[a.channel_index(ch)] = 0.7;
        let m = CongestionMap::from_utilization(&a, util);
        assert!((m.utilization(&a, ch) - 0.7).abs() < 1e-6);
    }
}
