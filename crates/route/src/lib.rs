//! PathFinder-style FPGA routing and congestion extraction.
//!
//! Ground truth in the paper is "the congestion heat map … measuring the
//! utilization of the routing channels" after VPR's detailed routing. This
//! crate supplies that substrate (DESIGN.md §2 row 4):
//!
//! * a routing-resource graph at channel-segment granularity
//!   ([`RouteGraph`]): one node per [`pop_arch::ChannelId`] with capacity
//!   `W = arch.channel_width()`, edges wherever two segments meet at a
//!   switchbox, and pin access from every tile to its adjacent segments;
//! * a negotiated-congestion router ([`route`]) in the PathFinder family:
//!   each net is routed by A* over the graph, overused segments get their
//!   penalties raised, and everything is ripped up and re-routed until no
//!   segment exceeds its capacity (or an iteration cap is hit);
//! * [`CongestionMap`] — per-segment utilisation `occupancy / W`, exactly
//!   the quantity the heat-map image colourises;
//! * [`min_channel_width`] — the binary search that VPR performs to report
//!   results like "routing succeeded with a channel width factor of 34"
//!   (Figure 2's caption).
//!
//! # Example
//!
//! ```
//! use pop_arch::Arch;
//! use pop_netlist::{presets, generate};
//! use pop_place::{place, PlaceOptions};
//! use pop_route::{route, RouteOptions};
//!
//! let netlist = generate(&presets::by_name("diffeq1").unwrap().scaled(0.02));
//! let (c, i, m, x) = netlist.site_demand();
//! let arch = Arch::auto_size(c, i, m, x, 12, 1.3)?;
//! let placement = place(&arch, &netlist, &PlaceOptions::default())?;
//! let result = route(&arch, &netlist, &placement, &RouteOptions::default())?;
//! assert!(result.congestion().max_utilization() >= 0.0);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

mod congestion;
mod graph;
mod pathfinder;
mod rudy;

pub use congestion::CongestionMap;
pub use graph::RouteGraph;
pub use pathfinder::{
    min_channel_width, route, route_on_graph, verify_routes, RouteError, RouteOptions, RouteResult,
    RoutedNet,
};
pub use rudy::{calibrate_rudy, rudy_estimate};
