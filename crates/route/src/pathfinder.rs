use crate::congestion::CongestionMap;
use crate::graph::RouteGraph;
use pop_arch::Arch;
use pop_netlist::{NetId, Netlist};
use pop_place::Placement;
use std::cmp::Ordering;
use std::collections::BinaryHeap;
use std::error::Error;
use std::fmt;

/// Options for the negotiated-congestion router.
#[derive(Debug, Clone, PartialEq)]
pub struct RouteOptions {
    /// Maximum rip-up-and-reroute iterations before giving up and returning
    /// the best (least-overused) routing found.
    pub max_iterations: usize,
    /// Initial present-congestion penalty factor.
    pub pres_fac_init: f32,
    /// Multiplier applied to the present-congestion factor each iteration.
    pub pres_fac_mult: f32,
    /// Historical-congestion accumulation rate.
    pub hist_fac: f32,
    /// A* aggressiveness (1.0 = admissible Dijkstra-like, >1 = greedier and
    /// faster; VPR defaults to ~1.2).
    pub astar_fac: f32,
    /// Route against this channel capacity instead of the architecture's
    /// (used by [`min_channel_width`]'s binary search).
    pub channel_width_override: Option<usize>,
}

impl Default for RouteOptions {
    fn default() -> Self {
        RouteOptions {
            max_iterations: 24,
            pres_fac_init: 0.6,
            pres_fac_mult: 1.7,
            hist_fac: 0.4,
            astar_fac: 1.2,
            channel_width_override: None,
        }
    }
}

/// Errors produced by routing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RouteError {
    /// A net terminal sits on a tile with no channel access (cannot happen
    /// on well-formed architectures; reported rather than panicking).
    NoChannelAccess {
        /// The unroutable net.
        net: NetId,
    },
    /// The router could not connect a net at all (disconnected graph).
    Unroutable {
        /// The unroutable net.
        net: NetId,
    },
}

impl fmt::Display for RouteError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RouteError::NoChannelAccess { net } => {
                write!(f, "net {net} has a terminal without channel access")
            }
            RouteError::Unroutable { net } => write!(f, "net {net} could not be routed"),
        }
    }
}

impl Error for RouteError {}

/// The routed tree of one net: the channel segments it occupies.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RoutedNet {
    /// Which net this tree belongs to.
    pub net: NetId,
    /// Channel-segment node indices (dense [`Arch::channel_index`] order),
    /// each counted once.
    pub nodes: Vec<u32>,
}

/// Outcome of [`route`].
#[derive(Debug, Clone, PartialEq)]
pub struct RouteResult {
    routes: Vec<RoutedNet>,
    congestion: CongestionMap,
    /// Rip-up-and-reroute iterations performed.
    pub iterations: usize,
    /// Whether the final routing is overuse-free.
    pub success: bool,
    /// Number of channel segments still over capacity.
    pub overused_segments: usize,
}

impl RouteResult {
    /// The per-channel utilisation map (the paper's ground truth).
    pub fn congestion(&self) -> &CongestionMap {
        &self.congestion
    }

    /// Per-net routed trees.
    pub fn routes(&self) -> &[RoutedNet] {
        &self.routes
    }

    /// Total routed wirelength in channel segments.
    pub fn wirelength(&self) -> usize {
        self.routes.iter().map(|r| r.nodes.len()).sum()
    }
}

/// Orders f32 priorities inside the binary heap (min-heap via `Reverse`
/// semantics, ties broken by node index for determinism).
#[derive(Debug, Clone, Copy, PartialEq)]
struct HeapEntry {
    priority: f32,
    node: u32,
}

impl Eq for HeapEntry {}

impl Ord for HeapEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: BinaryHeap is a max-heap, we want smallest priority.
        other
            .priority
            .total_cmp(&self.priority)
            .then_with(|| other.node.cmp(&self.node))
    }
}

impl PartialOrd for HeapEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// Scratch state reused across nets within one routing pass.
struct Router<'a> {
    graph: &'a RouteGraph,
    capacity: u32,
    occupancy: Vec<u32>,
    history: Vec<f32>,
    pres_fac: f32,
    astar_fac: f32,
    // A* scratch, epoch-stamped to avoid O(V) clears per net.
    visit_stamp: Vec<u64>,
    g_cost: Vec<f32>,
    parent: Vec<u32>,
    epoch: u64,
    // Tree membership stamp.
    tree_stamp: Vec<u64>,
    tree_epoch: u64,
    heap: BinaryHeap<HeapEntry>,
}

const NO_PARENT: u32 = u32::MAX;

impl<'a> Router<'a> {
    fn new(graph: &'a RouteGraph, capacity: u32, options: &RouteOptions) -> Self {
        let n = graph.node_count();
        Router {
            graph,
            capacity,
            occupancy: vec![0; n],
            history: vec![0.0; n],
            pres_fac: options.pres_fac_init,
            astar_fac: options.astar_fac,
            visit_stamp: vec![0; n],
            g_cost: vec![0.0; n],
            parent: vec![NO_PARENT; n],
            epoch: 0,
            tree_stamp: vec![0; n],
            tree_epoch: 0,
            heap: BinaryHeap::new(),
        }
    }

    /// PathFinder node cost: `(base + history) · present-congestion factor`,
    /// where the present factor penalises occupancy that would exceed
    /// capacity.
    #[inline]
    fn node_cost(&self, node: usize) -> f32 {
        let over = (self.occupancy[node] + 1).saturating_sub(self.capacity);
        (1.0 + self.history[node]) * (1.0 + self.pres_fac * over as f32)
    }

    /// Routes one net as a Steiner-ish tree: sinks are connected one at a
    /// time by A* searches seeded from the whole partial tree (VPR's net
    /// routing discipline). Returns the tree's nodes.
    fn route_net(
        &mut self,
        sources: &[usize],
        sink_sets: &[Vec<usize>],
        net: NetId,
    ) -> Result<Vec<u32>, RouteError> {
        let mut tree: Vec<u32> = Vec::new();
        self.tree_epoch += 1;

        // Sort sinks by distance from the first source for stable, mostly
        // monotone tree growth.
        let src_pos = self.graph.position(sources[0]);
        let mut order: Vec<usize> = (0..sink_sets.len()).collect();
        let sink_pos: Vec<(f32, f32)> = sink_sets
            .iter()
            .map(|s| self.graph.position(s[0]))
            .collect();
        order.sort_by(|&a, &b| {
            let da = manhattan(src_pos, sink_pos[a]);
            let db = manhattan(src_pos, sink_pos[b]);
            da.total_cmp(&db).then(a.cmp(&b))
        });

        for sink_idx in order {
            let sinks = &sink_sets[sink_idx];
            // Already reached by the existing tree?
            if sinks.iter().any(|&s| self.tree_stamp[s] == self.tree_epoch) {
                continue;
            }
            let target = sink_pos[sink_idx];

            self.epoch += 1;
            self.heap.clear();

            // Seed: tree nodes at zero g (their cost is already paid),
            // otherwise the net's source access segments.
            if tree.is_empty() {
                for &s in sources {
                    let g = self.node_cost(s);
                    self.visit(s, g, NO_PARENT);
                    self.heap.push(HeapEntry {
                        priority: g + self.h(s, target),
                        node: s as u32,
                    });
                }
            } else {
                for &t in &tree {
                    self.visit(t as usize, 0.0, NO_PARENT);
                    self.heap.push(HeapEntry {
                        priority: self.h(t as usize, target),
                        node: t,
                    });
                }
            }

            let mut found: Option<usize> = None;
            while let Some(HeapEntry { node, .. }) = self.heap.pop() {
                let n = node as usize;
                if sinks.contains(&n) {
                    found = Some(n);
                    break;
                }
                let g = self.g_cost[n];
                for &m in self.graph.neighbors(n) {
                    let m = m as usize;
                    let ng = g + self.node_cost(m);
                    if self.visit_stamp[m] != self.epoch || ng < self.g_cost[m] {
                        self.visit(m, ng, node);
                        self.heap.push(HeapEntry {
                            priority: ng + self.h(m, target),
                            node: m as u32,
                        });
                    }
                }
            }

            let Some(hit) = found else {
                return Err(RouteError::Unroutable { net });
            };

            // Backtrack, appending new nodes until we rejoin the tree (or
            // exhaust the path for the first sink).
            let mut cur = hit as u32;
            loop {
                let c = cur as usize;
                if self.tree_stamp[c] == self.tree_epoch {
                    break;
                }
                self.tree_stamp[c] = self.tree_epoch;
                tree.push(cur);
                let p = self.parent[c];
                if p == NO_PARENT {
                    break;
                }
                cur = p;
            }
        }
        Ok(tree)
    }

    #[inline]
    fn visit(&mut self, node: usize, g: f32, parent: u32) {
        self.visit_stamp[node] = self.epoch;
        self.g_cost[node] = g;
        self.parent[node] = parent;
    }

    #[inline]
    fn h(&self, node: usize, target: (f32, f32)) -> f32 {
        self.astar_fac * manhattan(self.graph.position(node), target)
    }
}

#[inline]
fn manhattan(a: (f32, f32), b: (f32, f32)) -> f32 {
    (a.0 - b.0).abs() + (a.1 - b.1).abs()
}

/// Routes every net of a placed design with PathFinder-style negotiated
/// congestion and returns the per-channel utilisation.
///
/// Deterministic: identical inputs give identical routings.
///
/// # Errors
///
/// Returns [`RouteError`] when a net cannot reach the channel network at
/// all. Capacity overflow is *not* an error: if negotiation does not
/// converge within `options.max_iterations`, the least-overused routing is
/// returned with [`RouteResult::success`] `= false` (its congestion map
/// then legitimately shows utilisation above 1.0).
pub fn route(
    arch: &Arch,
    netlist: &Netlist,
    placement: &Placement,
    options: &RouteOptions,
) -> Result<RouteResult, RouteError> {
    let graph = RouteGraph::new(arch);
    route_on_graph(arch, &graph, netlist, placement, options)
}

/// [`route`] against a prebuilt [`RouteGraph`] (reuse the graph when routing
/// many placements of the same architecture, as dataset generation does).
pub fn route_on_graph(
    arch: &Arch,
    graph: &RouteGraph,
    netlist: &Netlist,
    placement: &Placement,
    options: &RouteOptions,
) -> Result<RouteResult, RouteError> {
    let capacity = options
        .channel_width_override
        .unwrap_or_else(|| arch.channel_width()) as u32;
    let mut router = Router::new(graph, capacity, options);

    // Resolve terminals to channel-access node sets once.
    let mut net_sources: Vec<Vec<usize>> = Vec::with_capacity(netlist.nets().len());
    let mut net_sinks: Vec<Vec<Vec<usize>>> = Vec::with_capacity(netlist.nets().len());
    for net in netlist.nets() {
        let access = |block| {
            let site = arch.site(placement.site_of(block));
            graph.tile_access(site.x, site.y)
        };
        let src = access(net.driver);
        if src.is_empty() {
            return Err(RouteError::NoChannelAccess { net: net.id });
        }
        let mut sinks = Vec::with_capacity(net.sinks.len());
        for &s in &net.sinks {
            let acc = access(s);
            if acc.is_empty() {
                return Err(RouteError::NoChannelAccess { net: net.id });
            }
            sinks.push(acc);
        }
        net_sources.push(src);
        net_sinks.push(sinks);
    }

    let mut routes: Vec<Option<Vec<u32>>> = vec![None; netlist.nets().len()];
    let mut best: Option<(usize, Vec<Vec<u32>>, Vec<u32>)> = None; // (overused, routes, occupancy)
    let mut iterations = 0;

    for iter in 0..options.max_iterations.max(1) {
        iterations = iter + 1;
        for (i, net) in netlist.nets().iter().enumerate() {
            // Rip up previous route.
            if let Some(old) = routes[i].take() {
                for &n in &old {
                    router.occupancy[n as usize] -= 1;
                }
            }
            let tree = router.route_net(&net_sources[i], &net_sinks[i], net.id)?;
            for &n in &tree {
                router.occupancy[n as usize] += 1;
            }
            routes[i] = Some(tree);
        }

        // Count overuse and accumulate history on hot segments.
        let mut overused = 0usize;
        for n in 0..graph.node_count() {
            let over = router.occupancy[n].saturating_sub(capacity);
            if over > 0 {
                overused += 1;
                router.history[n] += options.hist_fac * over as f32;
            }
        }

        let snapshot_better = match &best {
            None => true,
            Some((b, _, _)) => overused < *b,
        };
        if snapshot_better {
            best = Some((
                overused,
                routes
                    .iter()
                    .map(|r| r.clone().unwrap_or_default())
                    .collect(),
                router.occupancy.clone(),
            ));
        }

        if overused == 0 {
            break;
        }
        router.pres_fac *= options.pres_fac_mult;
    }

    let (overused, final_routes, occupancy) = best.expect("at least one iteration ran");
    let congestion = CongestionMap::from_occupancy(arch, &occupancy, capacity as usize);
    let routes = final_routes
        .into_iter()
        .enumerate()
        .map(|(i, nodes)| RoutedNet {
            net: NetId(i as u32),
            nodes,
        })
        .collect();
    Ok(RouteResult {
        routes,
        congestion,
        iterations,
        success: overused == 0,
        overused_segments: overused,
    })
}

/// Binary-searches the minimum channel width for which the placement routes
/// without overuse — VPR's "routing succeeded with a channel width factor
/// of N" (caption of the paper's Figure 2). Returns the width and the
/// successful routing at that width.
///
/// # Errors
///
/// Propagates [`RouteError`] from the underlying routing attempts, and
/// returns [`RouteError::Unroutable`] for the first net if even a very wide
/// fabric (1024 wires) fails.
pub fn min_channel_width(
    arch: &Arch,
    netlist: &Netlist,
    placement: &Placement,
    options: &RouteOptions,
) -> Result<(usize, RouteResult), RouteError> {
    let graph = RouteGraph::new(arch);
    let try_width = |w: usize| -> Result<RouteResult, RouteError> {
        let opts = RouteOptions {
            channel_width_override: Some(w),
            ..options.clone()
        };
        route_on_graph(arch, &graph, netlist, placement, &opts)
    };

    // Grow to find a routable upper bound.
    let mut hi = arch.channel_width().max(2);
    let mut hi_result = try_width(hi)?;
    while !hi_result.success {
        if hi > 1024 {
            return Err(RouteError::Unroutable {
                net: netlist.nets().first().map(|n| n.id).unwrap_or(NetId(0)),
            });
        }
        hi *= 2;
        hi_result = try_width(hi)?;
    }
    let mut lo = 1usize;
    // Invariant: hi routes, lo-1 unknown/fails.
    while lo < hi {
        let mid = (lo + hi) / 2;
        let r = try_width(mid)?;
        if r.success {
            hi = mid;
            hi_result = r;
        } else {
            lo = mid + 1;
        }
    }
    Ok((hi, hi_result))
}

/// Verifies that every routed net connects all of its terminals through a
/// connected set of adjacent channel segments. Used by tests and exposed
/// for downstream validation of externally-produced routings.
pub fn verify_routes(
    arch: &Arch,
    netlist: &Netlist,
    placement: &Placement,
    result: &RouteResult,
) -> Result<(), RouteError> {
    let graph = RouteGraph::new(arch);
    for routed in result.routes() {
        let net = netlist.net(routed.net);
        let in_tree: std::collections::HashSet<usize> =
            routed.nodes.iter().map(|&n| n as usize).collect();
        if in_tree.is_empty() {
            return Err(RouteError::Unroutable { net: net.id });
        }
        // Connectivity of the tree via BFS over graph adjacency.
        let start = routed.nodes[0] as usize;
        let mut seen = std::collections::HashSet::new();
        seen.insert(start);
        let mut stack = vec![start];
        while let Some(n) = stack.pop() {
            for &m in graph.neighbors(n) {
                let m = m as usize;
                if in_tree.contains(&m) && seen.insert(m) {
                    stack.push(m);
                }
            }
        }
        if seen.len() != in_tree.len() {
            return Err(RouteError::Unroutable { net: net.id });
        }
        // Every terminal's access set intersects the tree.
        for term in net.terminals() {
            let site = arch.site(placement.site_of(term));
            let acc = graph.tile_access(site.x, site.y);
            if !acc.iter().any(|a| in_tree.contains(a)) {
                return Err(RouteError::Unroutable { net: net.id });
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use pop_netlist::{generate, presets};
    use pop_place::{place, PlaceOptions};

    fn setup() -> (Arch, Netlist, Placement) {
        let netlist = generate(&presets::by_name("diffeq1").unwrap().scaled(0.02));
        let (c, i, m, x) = netlist.site_demand();
        let arch = Arch::auto_size(c, i, m, x, 16, 1.3).unwrap();
        let placement = place(&arch, &netlist, &PlaceOptions::default()).unwrap();
        (arch, netlist, placement)
    }

    #[test]
    fn routes_small_design_successfully() {
        let (arch, netlist, placement) = setup();
        let result = route(&arch, &netlist, &placement, &RouteOptions::default()).unwrap();
        assert!(result.success, "overused: {}", result.overused_segments);
        assert!(result.wirelength() > 0);
        assert_eq!(result.routes().len(), netlist.nets().len());
    }

    #[test]
    fn routed_trees_connect_all_terminals() {
        let (arch, netlist, placement) = setup();
        let result = route(&arch, &netlist, &placement, &RouteOptions::default()).unwrap();
        verify_routes(&arch, &netlist, &placement, &result).unwrap();
    }

    #[test]
    fn successful_routing_respects_capacity() {
        let (arch, netlist, placement) = setup();
        let result = route(&arch, &netlist, &placement, &RouteOptions::default()).unwrap();
        if result.success {
            assert!(result.congestion().max_utilization() <= 1.0 + 1e-6);
        }
    }

    #[test]
    fn routing_is_deterministic() {
        let (arch, netlist, placement) = setup();
        let a = route(&arch, &netlist, &placement, &RouteOptions::default()).unwrap();
        let b = route(&arch, &netlist, &placement, &RouteOptions::default()).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn narrow_channels_cause_overuse_but_still_return() {
        let (arch, netlist, placement) = setup();
        let opts = RouteOptions {
            channel_width_override: Some(1),
            max_iterations: 3,
            ..Default::default()
        };
        let result = route(&arch, &netlist, &placement, &opts).unwrap();
        assert!(!result.success);
        assert!(result.congestion().max_utilization() > 1.0);
    }

    #[test]
    fn min_channel_width_is_tight() {
        let (arch, netlist, placement) = setup();
        let (w, result) =
            min_channel_width(&arch, &netlist, &placement, &RouteOptions::default()).unwrap();
        assert!(result.success);
        assert!(w >= 1);
        // One less must fail (tightness), unless already at 1.
        if w > 1 {
            let opts = RouteOptions {
                channel_width_override: Some(w - 1),
                ..Default::default()
            };
            let r = route(&arch, &netlist, &placement, &opts).unwrap();
            assert!(!r.success, "width {} should fail", w - 1);
        }
    }

    #[test]
    fn negotiation_reduces_overuse() {
        let (arch, netlist, placement) = setup();
        // Tight fabric: half the calibrated width.
        let tight = |iters: usize| {
            let opts = RouteOptions {
                channel_width_override: Some(6),
                max_iterations: iters,
                ..Default::default()
            };
            route(&arch, &netlist, &placement, &opts)
                .unwrap()
                .overused_segments
        };
        let first_pass = tight(1);
        let negotiated = tight(16);
        assert!(
            negotiated <= first_pass,
            "negotiation must not increase overuse: {first_pass} -> {negotiated}"
        );
    }

    #[test]
    fn wirelength_equals_sum_of_tree_sizes() {
        let (arch, netlist, placement) = setup();
        let result = route(&arch, &netlist, &placement, &RouteOptions::default()).unwrap();
        let sum: usize = result.routes().iter().map(|r| r.nodes.len()).sum();
        assert_eq!(result.wirelength(), sum);
        // Every tree node index is in range and unique within its tree.
        for r in result.routes() {
            let mut nodes = r.nodes.clone();
            nodes.sort_unstable();
            let before = nodes.len();
            nodes.dedup();
            assert_eq!(nodes.len(), before, "net {} repeats a segment", r.net);
            assert!(nodes.iter().all(|&n| (n as usize) < arch.channel_count()));
        }
    }

    #[test]
    fn worse_placement_routes_longer() {
        let (arch, netlist, placement) = setup();
        let good = route(&arch, &netlist, &placement, &RouteOptions::default()).unwrap();
        // A barely-annealed placement should need more wire.
        let bad_opts = PlaceOptions {
            seed: 3,
            inner_num: 0.01,
            alpha_t: 0.5,
            max_outer_iters: 2,
            ..Default::default()
        };
        let bad_placement = place(&arch, &netlist, &bad_opts).unwrap();
        let opts = RouteOptions {
            max_iterations: 8,
            ..Default::default()
        };
        let bad = route(&arch, &netlist, &bad_placement, &opts).unwrap();
        assert!(
            bad.wirelength() > good.wirelength(),
            "bad {} vs good {}",
            bad.wirelength(),
            good.wirelength()
        );
    }
}
