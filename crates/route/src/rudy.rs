//! RUDY — the classic analytical congestion estimator, used here as the
//! pre-ML baseline the cGAN is measured against.
//!
//! RUDY (Rectangular Uniform wire DensitY, Spindler & Johannes, DATE 2007)
//! estimates congestion *without routing*: each net's expected wirelength
//! (half-perimeter of its bounding box) is smeared uniformly over that
//! bounding box. It needs exactly the same inputs as the paper's
//! forecaster — a placed netlist — which makes it the natural baseline for
//! every experiment: anything the cGAN cannot beat RUDY on is not worth a
//! GAN.

use crate::congestion::CongestionMap;
use pop_arch::{Arch, ChannelId};
use pop_netlist::Netlist;
use pop_place::Placement;

/// Estimates a congestion map from placement alone by RUDY smearing.
///
/// For each net with bounding box `w × h` (in tiles), a demand density of
/// `(w + h) / (w · h)` wire-tiles per tile is added over the box. Tile
/// demand is then converted to per-channel utilisation against the fabric's
/// channel capacity (`2 · channel_width` wires available per tile, one
/// horizontal and one vertical channel), and scaled by `calibration`
/// (1.0 = physical units).
pub fn rudy_estimate(
    arch: &Arch,
    netlist: &Netlist,
    placement: &Placement,
    calibration: f32,
) -> CongestionMap {
    let (gw, gh) = (arch.width(), arch.height());
    let mut demand = vec![0.0f32; gw * gh];
    for net in netlist.nets() {
        let mut min_x = f32::MAX;
        let mut max_x = f32::MIN;
        let mut min_y = f32::MAX;
        let mut max_y = f32::MIN;
        for term in net.terminals() {
            let (x, y) = placement.position(arch, term);
            min_x = min_x.min(x);
            max_x = max_x.max(x);
            min_y = min_y.min(y);
            max_y = max_y.max(y);
        }
        // Degenerate boxes still occupy at least one tile span.
        let w = (max_x - min_x).max(1.0);
        let h = (max_y - min_y).max(1.0);
        let density = (w + h) / (w * h);
        let x0 = min_x.floor().max(0.0) as usize;
        let x1 = (max_x.ceil() as usize).min(gw - 1);
        let y0 = min_y.floor().max(0.0) as usize;
        let y1 = (max_y.ceil() as usize).min(gh - 1);
        for ty in y0..=y1 {
            for tx in x0..=x1 {
                demand[ty * gw + tx] += density;
            }
        }
    }

    // Convert tile demand into channel utilisation: each channel segment
    // inherits the mean demand of the two tiles it separates.
    let cap = 2.0 * arch.channel_width() as f32;
    let mut util = vec![0.0f32; arch.channel_count()];
    for ch in arch.channels() {
        let (a, b) = match ch {
            ChannelId::Horizontal { x, y } => {
                let above = if y + 1 < gh {
                    demand[(y + 1) * gw + x]
                } else {
                    0.0
                };
                (demand[y * gw + x], above)
            }
            ChannelId::Vertical { x, y } => {
                let right = if x + 1 < gw {
                    demand[y * gw + x + 1]
                } else {
                    0.0
                };
                (demand[y * gw + x], right)
            }
        };
        util[arch.channel_index(ch)] = calibration * 0.5 * (a + b) / cap;
    }
    CongestionMap::from_utilization(arch, util)
}

/// Least-squares calibration factor that best maps a RUDY estimate onto a
/// reference congestion map (`argmin_k ‖k·est − truth‖²`). The paper's
/// per-pixel-accuracy metric is absolute, so the baseline deserves the same
/// one-scalar fit a practitioner would apply.
pub fn calibrate_rudy(estimate: &CongestionMap, truth: &CongestionMap) -> f32 {
    let num: f64 = estimate
        .values()
        .iter()
        .zip(truth.values())
        .map(|(&e, &t)| e as f64 * t as f64)
        .sum();
    let den: f64 = estimate
        .values()
        .iter()
        .map(|&e| (e as f64) * (e as f64))
        .sum();
    if den <= f64::EPSILON {
        1.0
    } else {
        (num / den) as f32
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pathfinder::{route, RouteOptions};
    use pop_netlist::{generate, presets};
    use pop_place::{place, PlaceOptions};

    fn setup() -> (Arch, Netlist, Placement) {
        let netlist = generate(&presets::by_name("diffeq1").unwrap().scaled(0.02));
        let (c, i, m, x) = netlist.site_demand();
        let arch = Arch::auto_size(c, i, m, x, 16, 1.3).unwrap();
        let placement = place(&arch, &netlist, &PlaceOptions::default()).unwrap();
        (arch, netlist, placement)
    }

    #[test]
    fn rudy_is_nonnegative_and_nonzero() {
        let (arch, netlist, placement) = setup();
        let est = rudy_estimate(&arch, &netlist, &placement, 1.0);
        assert!(est.values().iter().all(|&v| v >= 0.0));
        assert!(est.mean_utilization() > 0.0);
    }

    #[test]
    fn rudy_scales_linearly_with_calibration() {
        let (arch, netlist, placement) = setup();
        let a = rudy_estimate(&arch, &netlist, &placement, 1.0);
        let b = rudy_estimate(&arch, &netlist, &placement, 2.0);
        for (x, y) in a.values().iter().zip(b.values()) {
            assert!((2.0 * x - y).abs() < 1e-5);
        }
    }

    #[test]
    fn rudy_correlates_with_routed_congestion() {
        let (arch, netlist, placement) = setup();
        let est = rudy_estimate(&arch, &netlist, &placement, 1.0);
        let truth = route(&arch, &netlist, &placement, &RouteOptions::default())
            .unwrap()
            .congestion()
            .clone();
        // Pearson correlation across channels should be clearly positive.
        let n = est.values().len() as f64;
        let me: f64 = est.values().iter().map(|&v| v as f64).sum::<f64>() / n;
        let mt: f64 = truth.values().iter().map(|&v| v as f64).sum::<f64>() / n;
        let mut cov = 0.0;
        let mut ve = 0.0;
        let mut vt = 0.0;
        for (&e, &t) in est.values().iter().zip(truth.values()) {
            cov += (e as f64 - me) * (t as f64 - mt);
            ve += (e as f64 - me).powi(2);
            vt += (t as f64 - mt).powi(2);
        }
        let r = cov / (ve.sqrt() * vt.sqrt()).max(1e-12);
        assert!(r > 0.3, "RUDY should correlate with truth, r = {r}");
    }

    #[test]
    fn calibration_minimises_l2() {
        let (arch, netlist, placement) = setup();
        let est = rudy_estimate(&arch, &netlist, &placement, 1.0);
        let truth = route(&arch, &netlist, &placement, &RouteOptions::default())
            .unwrap()
            .congestion()
            .clone();
        let k = calibrate_rudy(&est, &truth);
        assert!(k.is_finite() && k > 0.0);
        let err = |scale: f32| -> f64 {
            est.values()
                .iter()
                .zip(truth.values())
                .map(|(&e, &t)| ((scale * e - t) as f64).powi(2))
                .sum()
        };
        assert!(err(k) <= err(k * 1.2) + 1e-9);
        assert!(err(k) <= err(k * 0.8) + 1e-9);
    }
}
