use pop_arch::{Arch, ChannelId};

/// Routing-resource graph at channel-segment granularity.
///
/// One node per channel segment of the fabric (dense indices from
/// [`Arch::channel_index`]). Two segments are adjacent iff they meet at a
/// switchbox corner; a tile's pins reach the (up to four) segments along its
/// edges. Capacity is uniform: the architecture's channel width.
///
/// Routing at segment granularity (rather than individual wires) is exactly
/// the resolution of the paper's ground truth — the heat map colours each
/// channel by `occupancy / capacity`, not by which wire a net took.
#[derive(Debug, Clone)]
pub struct RouteGraph {
    width: usize,
    height: usize,
    node_count: usize,
    /// CSR adjacency.
    offsets: Vec<u32>,
    edges: Vec<u32>,
    /// Midpoint of each node in tile coordinates (for A* heuristics).
    positions: Vec<(f32, f32)>,
    /// Reverse map node index → channel id.
    channels: Vec<ChannelId>,
}

impl RouteGraph {
    /// Builds the graph for an architecture.
    pub fn new(arch: &Arch) -> Self {
        let width = arch.width();
        let height = arch.height();
        let node_count = arch.channel_count();

        let mut channels = vec![ChannelId::Horizontal { x: 1, y: 0 }; node_count];
        let mut positions = vec![(0.0, 0.0); node_count];
        for ch in arch.channels() {
            let i = arch.channel_index(ch);
            channels[i] = ch;
            positions[i] = ch.midpoint();
        }

        // Collect switchbox incidences, then connect all incident pairs.
        let mut adj: Vec<Vec<u32>> = vec![Vec::new(); node_count];
        let chanx = |x: usize, y: usize| -> Option<usize> {
            (x >= 1 && x <= width - 2 && y <= height - 2)
                .then(|| arch.channel_index(ChannelId::Horizontal { x, y }))
        };
        let chany = |x: usize, y: usize| -> Option<usize> {
            (x <= width - 2 && y >= 1 && y <= height - 2)
                .then(|| arch.channel_index(ChannelId::Vertical { x, y }))
        };
        // Switchbox S(i, j) sits at the corner where the horizontal channel
        // of row j meets the vertical channel of column i.
        for i in 0..width - 1 {
            for j in 0..height - 1 {
                let incident: Vec<usize> =
                    [chanx(i, j), chanx(i + 1, j), chany(i, j), chany(i, j + 1)]
                        .into_iter()
                        .flatten()
                        .collect();
                for a in 0..incident.len() {
                    for b in a + 1..incident.len() {
                        adj[incident[a]].push(incident[b] as u32);
                        adj[incident[b]].push(incident[a] as u32);
                    }
                }
            }
        }
        for list in &mut adj {
            list.sort_unstable();
            list.dedup();
        }

        let mut offsets = Vec::with_capacity(node_count + 1);
        let mut edges = Vec::new();
        offsets.push(0u32);
        for list in &adj {
            edges.extend_from_slice(list);
            offsets.push(edges.len() as u32);
        }

        RouteGraph {
            width,
            height,
            node_count,
            offsets,
            edges,
            positions,
            channels,
        }
    }

    /// Number of channel-segment nodes.
    #[inline]
    pub fn node_count(&self) -> usize {
        self.node_count
    }

    /// Segments adjacent to `node` through switchboxes.
    #[inline]
    pub fn neighbors(&self, node: usize) -> &[u32] {
        let lo = self.offsets[node] as usize;
        let hi = self.offsets[node + 1] as usize;
        &self.edges[lo..hi]
    }

    /// Midpoint of `node` in tile coordinates.
    #[inline]
    pub fn position(&self, node: usize) -> (f32, f32) {
        self.positions[node]
    }

    /// The channel id of `node`.
    #[inline]
    pub fn channel(&self, node: usize) -> ChannelId {
        self.channels[node]
    }

    /// Channel segments reachable from the pins of tile `(x, y)`.
    ///
    /// Interior tiles reach the segments along their four edges. Perimeter
    /// (I/O pad) tiles reach every segment incident to their corner
    /// switchboxes: pads have dedicated access wires in real fabrics, and
    /// with only one geometric edge facing the die they would otherwise
    /// funnel all their nets through a single segment.
    pub fn tile_access(&self, x: usize, y: usize) -> Vec<usize> {
        let (w, h) = (self.width, self.height);
        let on_edge = x == 0 || x == w - 1 || y == 0 || y == h - 1;
        let mut out = Vec::with_capacity(4);
        if !on_edge {
            // Top edge: chanx(x, y); bottom edge: chanx(x, y-1).
            if x >= 1 && x <= w - 2 && y <= h - 2 {
                out.push(self.index_of(ChannelId::Horizontal { x, y }));
            }
            if x >= 1 && x <= w - 2 && y >= 1 {
                out.push(self.index_of(ChannelId::Horizontal { x, y: y - 1 }));
            }
            // Right edge: chany(x, y); left edge: chany(x-1, y).
            if x <= w - 2 && y >= 1 && y <= h - 2 {
                out.push(self.index_of(ChannelId::Vertical { x, y }));
            }
            if x >= 1 && y >= 1 && y <= h - 2 {
                out.push(self.index_of(ChannelId::Vertical { x: x - 1, y }));
            }
            return out;
        }
        // Perimeter pad: union of segments incident to the tile's corner
        // switchboxes S(x-1, y-1), S(x, y-1), S(x-1, y), S(x, y).
        let chanx = |cx: usize, cy: usize| -> Option<usize> {
            (cx >= 1 && cx <= w - 2 && cy <= h - 2)
                .then(|| self.index_of(ChannelId::Horizontal { x: cx, y: cy }))
        };
        let chany = |cx: usize, cy: usize| -> Option<usize> {
            (cx <= w - 2 && cy >= 1 && cy <= h - 2)
                .then(|| self.index_of(ChannelId::Vertical { x: cx, y: cy }))
        };
        for ci in [x.wrapping_sub(1), x] {
            for cj in [y.wrapping_sub(1), y] {
                if ci >= w - 1 || cj >= h - 1 {
                    continue;
                }
                for seg in [
                    chanx(ci, cj),
                    chanx(ci + 1, cj),
                    chany(ci, cj),
                    chany(ci, cj + 1),
                ]
                .into_iter()
                .flatten()
                {
                    out.push(seg);
                }
            }
        }
        out.sort_unstable();
        out.dedup();
        out
    }

    fn index_of(&self, ch: ChannelId) -> usize {
        // Recompute the dense index with the same formula as `Arch`.
        match ch {
            ChannelId::Horizontal { x, y } => (y * (self.width - 2)) + (x - 1),
            ChannelId::Vertical { x, y } => {
                let horiz = (self.width - 2) * (self.height - 1);
                horiz + (y - 1) * (self.width - 1) + x
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn graph() -> (Arch, RouteGraph) {
        let arch = Arch::builder().interior(8, 8).build().unwrap();
        let g = RouteGraph::new(&arch);
        (arch, g)
    }

    #[test]
    fn node_count_matches_arch() {
        let (arch, g) = graph();
        assert_eq!(g.node_count(), arch.channel_count());
    }

    #[test]
    fn adjacency_is_symmetric_and_irreflexive() {
        let (_, g) = graph();
        for n in 0..g.node_count() {
            for &m in g.neighbors(n) {
                assert_ne!(m as usize, n, "self-loop at {n}");
                assert!(
                    g.neighbors(m as usize).contains(&(n as u32)),
                    "asymmetric edge {n} -> {m}"
                );
            }
        }
    }

    #[test]
    fn neighbors_are_geometrically_close() {
        let (_, g) = graph();
        for n in 0..g.node_count() {
            let (x0, y0) = g.position(n);
            for &m in g.neighbors(n) {
                let (x1, y1) = g.position(m as usize);
                let d = (x0 - x1).abs() + (y0 - y1).abs();
                assert!(d <= 1.01, "far neighbours {n}({x0},{y0}) {m}({x1},{y1})");
            }
        }
    }

    #[test]
    fn graph_is_connected() {
        let (_, g) = graph();
        let mut seen = vec![false; g.node_count()];
        let mut stack = vec![0usize];
        seen[0] = true;
        let mut count = 1;
        while let Some(n) = stack.pop() {
            for &m in g.neighbors(n) {
                if !seen[m as usize] {
                    seen[m as usize] = true;
                    count += 1;
                    stack.push(m as usize);
                }
            }
        }
        assert_eq!(count, g.node_count(), "route graph must be connected");
    }

    #[test]
    fn interior_tile_has_four_access_segments() {
        let (_, g) = graph();
        let acc = g.tile_access(4, 4);
        assert_eq!(acc.len(), 4);
        for &n in &acc {
            let (x, y) = g.position(n);
            let d = (x - 4.5).abs() + (y - 4.5).abs();
            assert!(d <= 0.51, "access segment not adjacent: ({x},{y})");
        }
    }

    #[test]
    fn corner_io_tiles_have_access() {
        let (arch, g) = graph();
        // Every perimeter IO tile must reach at least one channel segment.
        for x in 0..arch.width() {
            for y in 0..arch.height() {
                let kind = arch.tile_kind(x, y);
                if kind == pop_arch::TileKind::Io {
                    assert!(
                        !g.tile_access(x, y).is_empty(),
                        "io tile ({x},{y}) has no channel access"
                    );
                }
            }
        }
    }

    #[test]
    fn index_of_matches_arch_index() {
        let (arch, g) = graph();
        for ch in arch.channels() {
            assert_eq!(g.index_of(ch), arch.channel_index(ch));
        }
    }
}
