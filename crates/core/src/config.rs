use crate::error::CoreError;
use pop_place::PlaceStrategy;

/// Which skip connections the U-Net generator uses — the §5.3 ablation axis.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SkipMode {
    /// "Connect all the convolutional and deconvolutional layers" — the
    /// paper's choice (Figure 5).
    All,
    /// A single skip connection at the outermost level, the RouteNet-style
    /// variant the paper shows is insufficient (Figure 7d).
    Single,
    /// No skip connections at all.
    None,
}

/// Every knob of one experiment, from dataset generation to training.
///
/// [`ExperimentConfig::paper`] records the paper-exact values (256×256,
/// base 64 filters, 250 epochs, 200 placements per design).
/// [`ExperimentConfig::quick`] is the CPU-sized default used by the
/// benchmark harness; [`ExperimentConfig::test`] is the miniature used by
/// unit/integration tests. All scale knobs and the substitution rationale
/// are documented in DESIGN.md §2.
#[derive(Debug, Clone, PartialEq)]
pub struct ExperimentConfig {
    /// Image side `w` (input and output are `w×w`; must be a power of two).
    pub resolution: usize,
    /// Base filter count `f` of the U-Net / discriminator (paper: 64).
    pub base_filters: usize,
    /// U-Net depth (number of downsamplings; paper: 8, to a 1×1 bottleneck).
    pub depth: usize,
    /// Skip-connection mode (paper: all).
    pub skip: SkipMode,
    /// Whether the L1 term is included (paper: yes; §5.3 ablates it).
    pub use_l1: bool,
    /// L1 weight in the generator objective (paper: 50).
    pub lambda_l1: f32,
    /// Connectivity-image weight λ in `stack(img_place, λ·img_connect)`
    /// (paper: 0.1).
    pub lambda_connect: f32,
    /// Convert `img_place` to grayscale before stacking (§5.2 ablation).
    pub grayscale_input: bool,
    /// Adam learning rate (paper: 2e-4).
    pub learning_rate: f32,
    /// Training epochs (paper: 250).
    pub epochs: usize,
    /// Placements generated per design — Table 2's `#P` (paper: 200).
    pub pairs_per_design: usize,
    /// Linear scale applied to every design preset (paper: 1.0; CPU runs
    /// shrink designs to keep routing and training tractable).
    pub design_scale: f64,
    /// Channel-width margin over the calibrated minimum (VTR-style 1.3×).
    pub channel_width_margin: f64,
    /// Site-capacity headroom of the auto-sized fabric (VPR-style 1.3 =
    /// 30 % spare sites). Scenario generation exposes this as a *target
    /// utilization*: `fabric_slack = 1 / target_utilization`, so denser
    /// fabrics produce hotter congestion distributions.
    pub fabric_slack: f64,
    /// Interior aspect ratio (width / height) of the auto-sized fabric
    /// (1.0 = square, the paper's setting). Scenario generation sweeps this
    /// to diversify placement geometry.
    pub fabric_aspect: f64,
    /// Pairs taken from the held-out design for strategy-2 fine-tuning
    /// (paper: 10).
    pub finetune_pairs: usize,
    /// Epochs of strategy-2 fine-tuning.
    pub finetune_epochs: usize,
    /// Per-pixel accuracy tolerance (per channel).
    pub tolerance: f32,
    /// Master RNG seed.
    pub seed: u64,
    /// How each placement of the sweep is executed: the classic sequential
    /// annealer, or the region-parallel one (`ParallelRegions`) that fans a
    /// *single* placement out across threads — the knob for corpora with
    /// one large design instead of a wide sweep. The parallel result is
    /// deterministic in `(seed, regions)`; the thread count never changes
    /// the data (and is therefore excluded from the cache fingerprint).
    pub place_strategy: PlaceStrategy,
}

impl ExperimentConfig {
    /// The paper's exact configuration (needs a GPU-scale budget to run).
    pub fn paper() -> Self {
        ExperimentConfig {
            resolution: 256,
            base_filters: 64,
            depth: 8,
            skip: SkipMode::All,
            use_l1: true,
            lambda_l1: 50.0,
            lambda_connect: 0.1,
            grayscale_input: false,
            learning_rate: 2e-4,
            epochs: 250,
            pairs_per_design: 200,
            design_scale: 1.0,
            channel_width_margin: 1.3,
            fabric_slack: 1.3,
            fabric_aspect: 1.0,
            finetune_pairs: 10,
            finetune_epochs: 25,
            tolerance: 16.0 / 255.0,
            seed: 1,
            place_strategy: PlaceStrategy::Sequential,
        }
    }

    /// CPU-sized configuration used by the benchmark harness: same model
    /// family and objective, shrunk resolution / filters / dataset.
    pub fn quick() -> Self {
        ExperimentConfig {
            resolution: 64,
            base_filters: 12,
            depth: 6,
            epochs: 12,
            pairs_per_design: 36,
            design_scale: 0.02,
            finetune_pairs: 10,
            finetune_epochs: 5,
            ..ExperimentConfig::paper()
        }
    }

    /// Miniature configuration for unit and integration tests.
    pub fn test() -> Self {
        ExperimentConfig {
            resolution: 32,
            base_filters: 4,
            depth: 4,
            epochs: 2,
            pairs_per_design: 6,
            design_scale: 0.015,
            finetune_pairs: 2,
            finetune_epochs: 1,
            ..ExperimentConfig::paper()
        }
    }

    /// Validates internal consistency.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::BadConfig`] when the resolution is not a power
    /// of two, the depth exceeds `log2(resolution)`, or any count that must
    /// be positive is zero.
    pub fn validate(&self) -> Result<(), CoreError> {
        if !self.resolution.is_power_of_two() {
            return Err(CoreError::BadConfig(format!(
                "resolution {} is not a power of two",
                self.resolution
            )));
        }
        let max_depth = self.resolution.trailing_zeros() as usize;
        if self.depth == 0 || self.depth > max_depth {
            return Err(CoreError::BadConfig(format!(
                "depth {} invalid for resolution {} (max {max_depth})",
                self.depth, self.resolution
            )));
        }
        if self.base_filters == 0 {
            return Err(CoreError::BadConfig("base_filters must be positive".into()));
        }
        if self.pairs_per_design == 0 {
            return Err(CoreError::BadConfig(
                "pairs_per_design must be positive".into(),
            ));
        }
        if !(self.lambda_connect.is_finite() && self.lambda_l1.is_finite()) {
            return Err(CoreError::BadConfig("non-finite lambda".into()));
        }
        if !(self.fabric_slack.is_finite() && self.fabric_slack >= 1.0) {
            return Err(CoreError::BadConfig(format!(
                "fabric_slack {} must be a finite value >= 1.0",
                self.fabric_slack
            )));
        }
        if !(self.fabric_aspect.is_finite() && self.fabric_aspect > 0.0) {
            return Err(CoreError::BadConfig(format!(
                "fabric_aspect {} must be positive and finite",
                self.fabric_aspect
            )));
        }
        self.place_strategy
            .validate()
            .map_err(CoreError::BadConfig)?;
        Ok(())
    }

    /// Number of input channels after feature assembly: 3 (RGB) or 1
    /// (grayscale) for `img_place`, plus the connectivity channel.
    pub fn input_channels(&self) -> usize {
        if self.grayscale_input {
            2
        } else {
            4
        }
    }
}

impl Default for ExperimentConfig {
    /// The CPU-sized [`ExperimentConfig::quick`] configuration.
    fn default() -> Self {
        ExperimentConfig::quick()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_preset_matches_section5() {
        let c = ExperimentConfig::paper();
        assert_eq!(c.resolution, 256);
        assert_eq!(c.base_filters, 64);
        assert_eq!(c.epochs, 250);
        assert_eq!(c.lambda_l1, 50.0);
        assert_eq!(c.lambda_connect, 0.1);
        assert_eq!(c.learning_rate, 2e-4);
        assert_eq!(c.pairs_per_design, 200);
        assert_eq!(c.finetune_pairs, 10);
        assert!(c.validate().is_ok());
    }

    #[test]
    fn quick_and_test_presets_validate() {
        assert!(ExperimentConfig::quick().validate().is_ok());
        assert!(ExperimentConfig::test().validate().is_ok());
    }

    #[test]
    fn validation_rejects_bad_configs() {
        let mut c = ExperimentConfig::test();
        c.resolution = 48;
        assert!(c.validate().is_err());
        let mut c = ExperimentConfig::test();
        c.depth = 99;
        assert!(c.validate().is_err());
        let mut c = ExperimentConfig::test();
        c.base_filters = 0;
        assert!(c.validate().is_err());
        let mut c = ExperimentConfig::test();
        c.fabric_slack = 0.8; // would undersize the fabric below demand
        assert!(c.validate().is_err());
        let mut c = ExperimentConfig::test();
        c.fabric_aspect = f64::NAN;
        assert!(c.validate().is_err());
        let mut c = ExperimentConfig::test();
        c.place_strategy = PlaceStrategy::ParallelRegions {
            regions: 0,
            threads: 4,
        };
        assert!(c.validate().is_err());
        c.place_strategy = PlaceStrategy::ParallelRegions {
            regions: 2,
            threads: 2,
        };
        assert!(c.validate().is_ok());
    }

    #[test]
    fn input_channels_follow_grayscale_flag() {
        let mut c = ExperimentConfig::test();
        assert_eq!(c.input_channels(), 4);
        c.grayscale_input = true;
        assert_eq!(c.input_channels(), 2);
    }
}
