//! Model checkpointing: save/load the trained cGAN's weights — and, for
//! resumable training, the full optimisation state.
//!
//! Two flavours share one on-disk format (keyed by a configuration
//! fingerprint so a checkpoint can never be loaded into a mismatched
//! architecture):
//!
//! * [`save_model`] — weights + batch-norm buffers only: what inference
//!   (the serving engine's model registry) needs.
//! * [`save_checkpoint`] — weights, buffers, **Adam moments and step
//!   counts, and the trainer RNG's stream position**: what a killed
//!   streaming training run needs to resume as if it was never
//!   interrupted. This is the model-side half of the
//!   [`StreamCheckpoint`](crate::StreamCheckpoint) handshake —
//!   `pop-pipeline`'s `TrainCheckpoint` saves it before acknowledging each
//!   epoch, so the weights on disk never run ahead of (or behind) the
//!   corpus progress marker.
//!
//! All writes are atomic (tmp + rename via
//! [`dataset::atomic_write`](crate::dataset::atomic_write)): a crash
//! mid-save leaves the previous checkpoint intact, never a truncated one.

use crate::config::ExperimentConfig;
use crate::dataset::atomic_write;
use crate::error::CoreError;
use crate::trainer::Pix2Pix;
use pop_nn::Layer;
use std::io::{Read, Write};
use std::path::Path;

const MAGIC: &[u8; 8] = b"POPCKPT3";

fn config_fingerprint(config: &ExperimentConfig) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut eat = |v: u64| {
        h ^= v;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    };
    eat(config.resolution as u64);
    eat(config.base_filters as u64);
    eat(config.depth as u64);
    eat(match config.skip {
        crate::SkipMode::All => 0,
        crate::SkipMode::Single => 1,
        crate::SkipMode::None => 2,
    });
    eat(u64::from(config.grayscale_input));
    h
}

fn dump(w: &mut impl Write, params: &[Vec<f32>]) -> std::io::Result<()> {
    w.write_all(&(params.len() as u32).to_le_bytes())?;
    for p in params {
        w.write_all(&(p.len() as u32).to_le_bytes())?;
        for v in p {
            w.write_all(&v.to_le_bytes())?;
        }
    }
    Ok(())
}

fn slurp(r: &mut impl Read, targets: Vec<&mut [f32]>) -> Result<(), CoreError> {
    let mut b4 = [0u8; 4];
    r.read_exact(&mut b4)?;
    let n = u32::from_le_bytes(b4) as usize;
    if n != targets.len() {
        return Err(CoreError::Cache(format!(
            "checkpoint has {n} tensors, model has {}",
            targets.len()
        )));
    }
    for t in targets {
        r.read_exact(&mut b4)?;
        let len = u32::from_le_bytes(b4) as usize;
        if len != t.len() {
            return Err(CoreError::Cache(format!(
                "tensor size mismatch: {len} vs {}",
                t.len()
            )));
        }
        for v in t.iter_mut() {
            r.read_exact(&mut b4)?;
            *v = f32::from_le_bytes(b4);
        }
    }
    Ok(())
}

fn read_u64(r: &mut impl Read) -> std::io::Result<u64> {
    let mut b = [0u8; 8];
    r.read_exact(&mut b)?;
    Ok(u64::from_le_bytes(b))
}

/// Collects a snapshot of one network section, `select` picking which
/// tensor of each parameter to dump (values for weights, `m`/`v` for the
/// Adam moments).
fn snapshot(
    params: &mut [&mut pop_nn::Param],
    select: impl Fn(&pop_nn::Param) -> &[f32],
) -> Vec<Vec<f32>> {
    params.iter().map(|p| select(p).to_vec()).collect()
}

fn write_model(model: &mut Pix2Pix, path: &Path, with_train_state: bool) -> Result<(), CoreError> {
    let fingerprint = config_fingerprint(model.config());

    let gen_params = snapshot(&mut model.generator_mut().params_mut(), |p| p.value.data());
    let disc_params = snapshot(&mut model.discriminator_mut().params_mut(), |p| {
        p.value.data()
    });
    let gen_bufs: Vec<Vec<f32>> = model
        .generator_mut()
        .buffers_mut()
        .iter()
        .map(|b| b.to_vec())
        .collect();
    let disc_bufs: Vec<Vec<f32>> = model
        .discriminator_mut()
        .buffers_mut()
        .iter()
        .map(|b| b.to_vec())
        .collect();
    let train_state = with_train_state.then(|| {
        (
            snapshot(&mut model.generator_mut().params_mut(), |p| p.m.data()),
            snapshot(&mut model.generator_mut().params_mut(), |p| p.v.data()),
            snapshot(&mut model.discriminator_mut().params_mut(), |p| p.m.data()),
            snapshot(&mut model.discriminator_mut().params_mut(), |p| p.v.data()),
            model.optimizer_steps(),
            model.rng_state(),
        )
    });

    atomic_write(path, |w| {
        w.write_all(MAGIC)?;
        w.write_all(&fingerprint.to_le_bytes())?;
        w.write_all(&[u8::from(with_train_state)])?;
        dump(w, &gen_params)?;
        dump(w, &disc_params)?;
        dump(w, &gen_bufs)?;
        dump(w, &disc_bufs)?;
        if let Some((gen_m, gen_v, disc_m, disc_v, (g_steps, d_steps), rng)) = &train_state {
            dump(w, gen_m)?;
            dump(w, gen_v)?;
            dump(w, disc_m)?;
            dump(w, disc_v)?;
            w.write_all(&g_steps.to_le_bytes())?;
            w.write_all(&d_steps.to_le_bytes())?;
            for word in rng {
                w.write_all(&word.to_le_bytes())?;
            }
        }
        Ok(())
    })?;
    Ok(())
}

/// Saves the model's generator and discriminator weights (inference
/// state: weights + batch-norm buffers). Atomic.
///
/// # Errors
///
/// Returns [`CoreError::Cache`] on I/O failure.
pub fn save_model(model: &mut Pix2Pix, path: &Path) -> Result<(), CoreError> {
    write_model(model, path, false)
}

/// Saves the complete *training* state: weights, buffers, Adam moments and
/// step counts, and the trainer RNG's stream position. Loading it resumes
/// optimisation where it stopped — up to dropout noise — instead of from
/// fresh moments and a rewound shuffle stream. Atomic.
///
/// # Errors
///
/// Returns [`CoreError::Cache`] on I/O failure.
pub fn save_checkpoint(model: &mut Pix2Pix, path: &Path) -> Result<(), CoreError> {
    write_model(model, path, true)
}

/// Loads a checkpoint saved by [`save_model`] or [`save_checkpoint`] into
/// a model of the same architecture; a full training checkpoint also
/// restores the optimiser moments/steps and the trainer RNG position.
///
/// # Errors
///
/// Returns [`CoreError::Cache`] when the file is missing/corrupt or the
/// checkpoint was produced by a different model architecture.
pub fn load_model(model: &mut Pix2Pix, path: &Path) -> Result<(), CoreError> {
    let mut r = std::io::BufReader::new(std::fs::File::open(path)?);
    let mut magic = [0u8; 8];
    r.read_exact(&mut magic)?;
    if &magic != MAGIC {
        return Err(CoreError::Cache("bad checkpoint magic".into()));
    }
    let mut fp = [0u8; 8];
    r.read_exact(&mut fp)?;
    if u64::from_le_bytes(fp) != config_fingerprint(model.config()) {
        return Err(CoreError::Cache(
            "checkpoint was trained with a different architecture".into(),
        ));
    }
    let mut flag = [0u8; 1];
    r.read_exact(&mut flag)?;
    let has_train_state = match flag[0] {
        0 => false,
        1 => true,
        other => {
            return Err(CoreError::Cache(format!(
                "bad checkpoint train-state flag {other}"
            )))
        }
    };
    slurp(
        &mut r,
        model
            .generator_mut()
            .params_mut()
            .into_iter()
            .map(|p| p.value.data_mut())
            .collect(),
    )?;
    slurp(
        &mut r,
        model
            .discriminator_mut()
            .params_mut()
            .into_iter()
            .map(|p| p.value.data_mut())
            .collect(),
    )?;
    slurp(
        &mut r,
        model
            .generator_mut()
            .buffers_mut()
            .into_iter()
            .map(|b| b.as_mut_slice())
            .collect(),
    )?;
    slurp(
        &mut r,
        model
            .discriminator_mut()
            .buffers_mut()
            .into_iter()
            .map(|b| b.as_mut_slice())
            .collect(),
    )?;
    if has_train_state {
        slurp(
            &mut r,
            model
                .generator_mut()
                .params_mut()
                .into_iter()
                .map(|p| p.m.data_mut())
                .collect(),
        )?;
        slurp(
            &mut r,
            model
                .generator_mut()
                .params_mut()
                .into_iter()
                .map(|p| p.v.data_mut())
                .collect(),
        )?;
        slurp(
            &mut r,
            model
                .discriminator_mut()
                .params_mut()
                .into_iter()
                .map(|p| p.m.data_mut())
                .collect(),
        )?;
        slurp(
            &mut r,
            model
                .discriminator_mut()
                .params_mut()
                .into_iter()
                .map(|p| p.v.data_mut())
                .collect(),
        )?;
        let g_steps = read_u64(&mut r)?;
        let d_steps = read_u64(&mut r)?;
        model.set_optimizer_steps(g_steps, d_steps);
        let mut rng = [0u64; 4];
        for word in &mut rng {
            *word = read_u64(&mut r)?;
        }
        model.set_rng_state(rng);
    }
    Ok(())
}

/// Builds a fresh model for `config` and loads the checkpoint at `path`
/// into it — the one-call form the serving engine's model registry uses.
/// A full training checkpoint (from [`save_checkpoint`]) yields a model
/// ready to *continue training*; a weights-only one is inference-ready.
///
/// # Errors
///
/// Returns [`CoreError::BadConfig`] when the config fails validation and
/// [`CoreError::Cache`] when the checkpoint is missing, corrupt or was
/// trained with a different architecture.
pub fn load_checkpoint(config: &ExperimentConfig, path: &Path) -> Result<Pix2Pix, CoreError> {
    let mut model = Pix2Pix::new(config, 0)?;
    load_model(&mut model, path)?;
    Ok(model)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pop_nn::Tensor;

    fn cfg() -> ExperimentConfig {
        ExperimentConfig {
            resolution: 16,
            base_filters: 4,
            depth: 3,
            ..ExperimentConfig::test()
        }
    }

    #[test]
    fn checkpoint_roundtrip_preserves_forecasts() {
        let config = cfg();
        let mut model = Pix2Pix::new(&config, 21).unwrap();
        // A couple of training steps so weights differ from init.
        let x = Tensor::randn([1, config.input_channels(), 16, 16], 0.0, 0.5, 1);
        let y = Tensor::randn([1, 3, 16, 16], 0.0, 0.5, 2);
        for _ in 0..3 {
            model.train_step(&x, &y);
        }
        let before = model.forecast(&x);

        let path = std::env::temp_dir().join("pop_ckpt_test/model.ckpt");
        save_model(&mut model, &path).unwrap();

        let mut fresh = Pix2Pix::new(&config, 99).unwrap();
        assert_ne!(fresh.forecast(&x), before, "fresh model differs");
        load_model(&mut fresh, &path).unwrap();
        assert_eq!(fresh.forecast(&x), before, "loaded model matches");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn full_checkpoint_restores_optimizer_and_rng_state() {
        let config = cfg();
        let mut model = Pix2Pix::new(&config, 33).unwrap();
        let x = Tensor::randn([1, config.input_channels(), 16, 16], 0.0, 0.5, 5);
        let y = Tensor::randn([1, 3, 16, 16], 0.0, 0.5, 6);
        for _ in 0..4 {
            model.train_step(&x, &y);
        }
        let steps = model.optimizer_steps();
        let rng = model.rng_state();
        assert!(steps.0 > 0 && steps.1 > 0);

        let path = std::env::temp_dir().join("pop_ckpt_test/full.ckpt");
        save_checkpoint(&mut model, &path).unwrap();
        let mut resumed = load_checkpoint(&config, &path).unwrap();
        assert_eq!(resumed.optimizer_steps(), steps);
        assert_eq!(resumed.rng_state(), rng);
        // Adam moments restored: one more identical train step moves both
        // models' weights identically (dropout streams differ, so compare
        // through a dropout-free signal — the discriminator loss path is
        // still noisy; instead pin the moments via a second save).
        let again = std::env::temp_dir().join("pop_ckpt_test/full2.ckpt");
        save_checkpoint(&mut resumed, &again).unwrap();
        assert_eq!(
            std::fs::read(&path).unwrap(),
            std::fs::read(&again).unwrap(),
            "resumed model must checkpoint bit-identically"
        );
        // A weights-only save of the same model is smaller (no moments).
        let lean = std::env::temp_dir().join("pop_ckpt_test/lean.ckpt");
        save_model(&mut resumed, &lean).unwrap();
        assert!(std::fs::metadata(&lean).unwrap().len() < std::fs::metadata(&path).unwrap().len());
        for p in [path, again, lean] {
            let _ = std::fs::remove_file(p);
        }
    }

    #[test]
    fn weights_only_checkpoint_leaves_fresh_train_state() {
        let config = cfg();
        let mut model = Pix2Pix::new(&config, 44).unwrap();
        let x = Tensor::randn([1, config.input_channels(), 16, 16], 0.0, 0.5, 7);
        let y = Tensor::randn([1, 3, 16, 16], 0.0, 0.5, 8);
        model.train_step(&x, &y);
        let path = std::env::temp_dir().join("pop_ckpt_test/weights_only.ckpt");
        save_model(&mut model, &path).unwrap();
        let loaded = load_checkpoint(&config, &path).unwrap();
        assert_eq!(loaded.optimizer_steps(), (0, 0), "no train state loaded");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn mismatched_architecture_is_rejected() {
        let config = cfg();
        let mut model = Pix2Pix::new(&config, 1).unwrap();
        let path = std::env::temp_dir().join("pop_ckpt_test/mismatch.ckpt");
        save_model(&mut model, &path).unwrap();

        let other_cfg = ExperimentConfig {
            base_filters: 8,
            ..cfg()
        };
        let mut other = Pix2Pix::new(&other_cfg, 1).unwrap();
        assert!(matches!(
            load_model(&mut other, &path),
            Err(CoreError::Cache(_))
        ));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn load_checkpoint_builds_an_equivalent_model() {
        let config = cfg();
        let mut model = Pix2Pix::new(&config, 31).unwrap();
        let x = Tensor::randn([1, config.input_channels(), 16, 16], 0.0, 0.5, 3);
        let y = Tensor::randn([1, 3, 16, 16], 0.0, 0.5, 4);
        model.train_step(&x, &y);
        let expected = model.forecast(&x);
        let path = std::env::temp_dir().join("pop_ckpt_test/one_call.ckpt");
        save_model(&mut model, &path).unwrap();
        let mut loaded = load_checkpoint(&config, &path).unwrap();
        assert_eq!(loaded.forecast(&x), expected);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn missing_file_is_an_error() {
        let mut model = Pix2Pix::new(&cfg(), 1).unwrap();
        let path = std::env::temp_dir().join("pop_ckpt_test/nope.ckpt");
        assert!(load_model(&mut model, &path).is_err());
    }

    #[test]
    fn saves_are_atomic() {
        // atomic_write leaves no .tmp droppings next to the checkpoint.
        let config = cfg();
        let mut model = Pix2Pix::new(&config, 2).unwrap();
        let dir = std::env::temp_dir().join("pop_ckpt_atomic_test");
        let _ = std::fs::remove_dir_all(&dir);
        let path = dir.join("model.ckpt");
        save_checkpoint(&mut model, &path).unwrap();
        let names: Vec<String> = std::fs::read_dir(&dir)
            .unwrap()
            .map(|e| e.unwrap().file_name().to_string_lossy().into_owned())
            .collect();
        assert_eq!(names, vec!["model.ckpt".to_string()], "{names:?}");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
