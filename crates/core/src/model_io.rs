//! Model checkpointing: save/load the trained cGAN's weights.
//!
//! The Table 2 flow trains one model per held-out design; checkpoints let
//! downstream users (and the example binaries) reuse a trained forecaster
//! without re-training. The format is a little-endian binary dump of every
//! parameter tensor in construction order, keyed by a configuration
//! fingerprint so a checkpoint can never be loaded into a mismatched
//! architecture.

use crate::config::ExperimentConfig;
use crate::error::CoreError;
use crate::trainer::Pix2Pix;
use pop_nn::Layer;
use std::io::{Read, Write};
use std::path::Path;

const MAGIC: &[u8; 8] = b"POPCKPT2";

fn config_fingerprint(config: &ExperimentConfig) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut eat = |v: u64| {
        h ^= v;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    };
    eat(config.resolution as u64);
    eat(config.base_filters as u64);
    eat(config.depth as u64);
    eat(match config.skip {
        crate::SkipMode::All => 0,
        crate::SkipMode::Single => 1,
        crate::SkipMode::None => 2,
    });
    eat(u64::from(config.grayscale_input));
    h
}

/// Saves the model's generator and discriminator weights.
///
/// # Errors
///
/// Returns [`CoreError::Cache`] on I/O failure.
pub fn save_model(model: &mut Pix2Pix, path: &Path) -> Result<(), CoreError> {
    if let Some(parent) = path.parent() {
        std::fs::create_dir_all(parent)?;
    }
    let fingerprint = config_fingerprint(model.config());
    let mut w = std::io::BufWriter::new(std::fs::File::create(path)?);
    w.write_all(MAGIC)?;
    w.write_all(&fingerprint.to_le_bytes())?;
    let mut dump = |params: Vec<&[f32]>| -> std::io::Result<()> {
        w.write_all(&(params.len() as u32).to_le_bytes())?;
        for p in params {
            w.write_all(&(p.len() as u32).to_le_bytes())?;
            for v in p {
                w.write_all(&v.to_le_bytes())?;
            }
        }
        Ok(())
    };
    let gen_params: Vec<Vec<f32>> = model
        .generator_mut()
        .params_mut()
        .iter()
        .map(|p| p.value.data().to_vec())
        .collect();
    dump(gen_params.iter().map(|v| v.as_slice()).collect())?;
    let disc_params: Vec<Vec<f32>> = model
        .discriminator_mut()
        .params_mut()
        .iter()
        .map(|p| p.value.data().to_vec())
        .collect();
    dump(disc_params.iter().map(|v| v.as_slice()).collect())?;
    // Non-trainable state: batch-norm running statistics of both networks.
    let gen_bufs: Vec<Vec<f32>> = model
        .generator_mut()
        .buffers_mut()
        .iter()
        .map(|b| b.to_vec())
        .collect();
    dump(gen_bufs.iter().map(|v| v.as_slice()).collect())?;
    let disc_bufs: Vec<Vec<f32>> = model
        .discriminator_mut()
        .buffers_mut()
        .iter()
        .map(|b| b.to_vec())
        .collect();
    dump(disc_bufs.iter().map(|v| v.as_slice()).collect())?;
    Ok(())
}

/// Loads weights saved by [`save_model`] into a model of the same
/// architecture.
///
/// # Errors
///
/// Returns [`CoreError::Cache`] when the file is missing/corrupt or the
/// checkpoint was produced by a different model architecture.
pub fn load_model(model: &mut Pix2Pix, path: &Path) -> Result<(), CoreError> {
    let mut r = std::io::BufReader::new(std::fs::File::open(path)?);
    let mut magic = [0u8; 8];
    r.read_exact(&mut magic)?;
    if &magic != MAGIC {
        return Err(CoreError::Cache("bad checkpoint magic".into()));
    }
    let mut fp = [0u8; 8];
    r.read_exact(&mut fp)?;
    if u64::from_le_bytes(fp) != config_fingerprint(model.config()) {
        return Err(CoreError::Cache(
            "checkpoint was trained with a different architecture".into(),
        ));
    }
    let mut slurp = |targets: Vec<&mut [f32]>| -> Result<(), CoreError> {
        let mut b4 = [0u8; 4];
        r.read_exact(&mut b4)?;
        let n = u32::from_le_bytes(b4) as usize;
        if n != targets.len() {
            return Err(CoreError::Cache(format!(
                "checkpoint has {n} tensors, model has {}",
                targets.len()
            )));
        }
        for t in targets {
            r.read_exact(&mut b4)?;
            let len = u32::from_le_bytes(b4) as usize;
            if len != t.len() {
                return Err(CoreError::Cache(format!(
                    "tensor size mismatch: {len} vs {}",
                    t.len()
                )));
            }
            for v in t.iter_mut() {
                r.read_exact(&mut b4)?;
                *v = f32::from_le_bytes(b4);
            }
        }
        Ok(())
    };
    slurp(
        model
            .generator_mut()
            .params_mut()
            .into_iter()
            .map(|p| p.value.data_mut())
            .collect(),
    )?;
    slurp(
        model
            .discriminator_mut()
            .params_mut()
            .into_iter()
            .map(|p| p.value.data_mut())
            .collect(),
    )?;
    slurp(
        model
            .generator_mut()
            .buffers_mut()
            .into_iter()
            .map(|b| b.as_mut_slice())
            .collect(),
    )?;
    slurp(
        model
            .discriminator_mut()
            .buffers_mut()
            .into_iter()
            .map(|b| b.as_mut_slice())
            .collect(),
    )?;
    Ok(())
}

/// Builds a fresh model for `config` and loads the checkpoint at `path`
/// into it — the one-call form the serving engine's model registry uses.
///
/// # Errors
///
/// Returns [`CoreError::BadConfig`] when the config fails validation and
/// [`CoreError::Cache`] when the checkpoint is missing, corrupt or was
/// trained with a different architecture.
pub fn load_checkpoint(config: &ExperimentConfig, path: &Path) -> Result<Pix2Pix, CoreError> {
    let mut model = Pix2Pix::new(config, 0)?;
    load_model(&mut model, path)?;
    Ok(model)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pop_nn::Tensor;

    fn cfg() -> ExperimentConfig {
        ExperimentConfig {
            resolution: 16,
            base_filters: 4,
            depth: 3,
            ..ExperimentConfig::test()
        }
    }

    #[test]
    fn checkpoint_roundtrip_preserves_forecasts() {
        let config = cfg();
        let mut model = Pix2Pix::new(&config, 21).unwrap();
        // A couple of training steps so weights differ from init.
        let x = Tensor::randn([1, config.input_channels(), 16, 16], 0.0, 0.5, 1);
        let y = Tensor::randn([1, 3, 16, 16], 0.0, 0.5, 2);
        for _ in 0..3 {
            model.train_step(&x, &y);
        }
        let before = model.forecast(&x);

        let path = std::env::temp_dir().join("pop_ckpt_test/model.ckpt");
        save_model(&mut model, &path).unwrap();

        let mut fresh = Pix2Pix::new(&config, 99).unwrap();
        assert_ne!(fresh.forecast(&x), before, "fresh model differs");
        load_model(&mut fresh, &path).unwrap();
        assert_eq!(fresh.forecast(&x), before, "loaded model matches");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn mismatched_architecture_is_rejected() {
        let config = cfg();
        let mut model = Pix2Pix::new(&config, 1).unwrap();
        let path = std::env::temp_dir().join("pop_ckpt_test/mismatch.ckpt");
        save_model(&mut model, &path).unwrap();

        let other_cfg = ExperimentConfig {
            base_filters: 8,
            ..cfg()
        };
        let mut other = Pix2Pix::new(&other_cfg, 1).unwrap();
        assert!(matches!(
            load_model(&mut other, &path),
            Err(CoreError::Cache(_))
        ));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn load_checkpoint_builds_an_equivalent_model() {
        let config = cfg();
        let mut model = Pix2Pix::new(&config, 31).unwrap();
        let x = Tensor::randn([1, config.input_channels(), 16, 16], 0.0, 0.5, 3);
        let y = Tensor::randn([1, 3, 16, 16], 0.0, 0.5, 4);
        model.train_step(&x, &y);
        let expected = model.forecast(&x);
        let path = std::env::temp_dir().join("pop_ckpt_test/one_call.ckpt");
        save_model(&mut model, &path).unwrap();
        let mut loaded = load_checkpoint(&config, &path).unwrap();
        assert_eq!(loaded.forecast(&x), expected);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn missing_file_is_an_error() {
        let mut model = Pix2Pix::new(&cfg(), 1).unwrap();
        let path = std::env::temp_dir().join("pop_ckpt_test/nope.ckpt");
        assert!(load_model(&mut model, &path).is_err());
    }
}
