//! Dataset generation: the paper's §5 "Datasets" paragraph as code.
//!
//! For each design: scale the preset, generate the netlist, auto-size the
//! fabric, **calibrate the channel width** (binary-search the minimum width
//! on a probe placement, then add the VTR-style margin — this is how "the
//! ground truth images are collected with … default VPR settings" ends up
//! with a fixed, routable fabric per design), then sweep the placement
//! options, route every placement, rasterise `img_place`/`img_connect`/
//! `img_route` and assemble tensors.
//!
//! The stages are exposed individually — [`DesignContext::prepare`] for the
//! per-design half (netlist, calibration, routing graph) and
//! [`DesignContext::generate_pair`] for the per-placement half (place,
//! route, rasterise, tensors) — because two callers share them:
//! [`build_design_dataset`] runs them as a plain sequential loop, and the
//! `pop-pipeline` crate runs the *same* functions on staged worker pools.
//! Both paths are therefore bitwise-identical by construction (wall-clock
//! `PairMeta` timing fields aside; see [`Pair::without_timings`]).
//!
//! Generated datasets can be cached on disk ([`save_dataset`] /
//! [`load_dataset`]) in a little-endian binary format keyed by a
//! fingerprint of *every* scenario parameter that affects the data (full
//! synthetic spec + config + cache format version), because routing
//! hundreds of placements dominates experiment wall-time.

use crate::config::ExperimentConfig;
use crate::error::CoreError;
use crate::features::{assemble_input, assemble_target};
use pop_arch::Arch;
use pop_netlist::{generate, Netlist, SyntheticSpec};
use pop_nn::Tensor;
use pop_place::{place, sweep::SweepSpec, PlaceOptions, Placement};
use pop_raster::{render_congestion, render_connectivity, render_placement};
use pop_route::{min_channel_width, route_on_graph, RouteGraph, RouteOptions, RouteResult};
use std::io::{Read, Write};
use std::path::{Path, PathBuf};
use std::time::Instant;

/// Provenance and ground-truth scalars of one training pair.
#[derive(Debug, Clone, PartialEq)]
pub struct PairMeta {
    /// Design name.
    pub design: String,
    /// Index within the design's placement sweep.
    pub index: usize,
    /// Placement seed that produced this pair.
    pub place_seed: u64,
    /// Mean channel utilisation of the ground-truth routing.
    pub true_mean_congestion: f32,
    /// Peak channel utilisation of the ground-truth routing.
    pub true_max_congestion: f32,
    /// Wall-clock microseconds spent routing (the denominator of the
    /// paper's speedup metric).
    pub route_micros: u64,
    /// Wall-clock microseconds spent placing.
    pub place_micros: u64,
}

impl PairMeta {
    /// Meta for synthetic test pairs.
    pub fn synthetic(seed: u64) -> Self {
        PairMeta {
            design: "synthetic".into(),
            index: seed as usize,
            place_seed: seed,
            true_mean_congestion: 0.0,
            true_max_congestion: 0.0,
            route_micros: 0,
            place_micros: 0,
        }
    }
}

/// One training example: input features `x`, target heat map `y`, and
/// provenance.
#[derive(Debug, Clone, PartialEq)]
pub struct Pair {
    /// Generator input (`stack(img_place, λ·img_connect)` in `[-1, 1]`).
    pub x: Tensor,
    /// Ground-truth heat map in `[-1, 1]`.
    pub y: Tensor,
    /// Provenance and ground-truth scalars.
    pub meta: PairMeta,
}

impl Pair {
    /// A copy with the wall-clock `PairMeta` timing fields zeroed.
    ///
    /// Everything else in a [`Pair`] is a deterministic function of spec +
    /// config + seed; only `route_micros` / `place_micros` vary run to run.
    /// Determinism tests (and the pipeline-vs-sequential golden test)
    /// compare `without_timings` copies with plain `==`, which is then a
    /// bitwise comparison.
    pub fn without_timings(&self) -> Pair {
        Pair {
            x: self.x.clone(),
            y: self.y.clone(),
            meta: PairMeta {
                route_micros: 0,
                place_micros: 0,
                ..self.meta.clone()
            },
        }
    }
}

/// All pairs generated for one design, plus the fabric they share.
#[derive(Debug, Clone, PartialEq)]
pub struct DesignDataset {
    /// Design name (Table 2 row).
    pub name: String,
    /// Training pairs, in sweep order.
    pub pairs: Vec<Pair>,
    /// Calibrated channel width of the fabric.
    pub channel_width: usize,
    /// Fabric grid width in tiles.
    pub grid_width: usize,
    /// Fabric grid height in tiles.
    pub grid_height: usize,
}

/// Rebuilds the architecture and netlist a dataset was generated on (the
/// fabric is a deterministic function of spec + config).
///
/// # Errors
///
/// Propagates substrate errors.
pub fn design_fabric(
    spec: &SyntheticSpec,
    config: &ExperimentConfig,
) -> Result<(Arch, Netlist, usize), CoreError> {
    let scaled = spec.scaled(config.design_scale);
    let netlist = generate(&scaled);
    let (clbs, ios, mems, mults) = netlist.site_demand();
    let auto_size = |width| {
        Arch::auto_size_with_aspect(
            clbs,
            ios,
            mems,
            mults,
            width,
            config.fabric_slack,
            config.fabric_aspect,
        )
    };
    let probe_arch = auto_size(8)?;
    let probe_placement = place(&probe_arch, &netlist, &Default::default())?;
    let (min_w, _) = min_channel_width(
        &probe_arch,
        &netlist,
        &probe_placement,
        &RouteOptions::default(),
    )?;
    let width = ((min_w as f64 * config.channel_width_margin).ceil() as usize).max(4);
    let arch = auto_size(width)?;
    Ok((arch, netlist, width))
}

/// The per-design state every placement of that design shares: the scaled
/// netlist, the calibrated fabric and its routing graph.
///
/// Prepared once per design ([`DesignContext::prepare`] — the expensive
/// fabric-calibration stage), then each placement index is materialised
/// independently via [`DesignContext::generate_pair`]. The sequential
/// [`build_design_dataset`] and the parallel `pop-pipeline` generator are
/// both thin drivers over these two calls.
#[derive(Debug, Clone)]
pub struct DesignContext {
    /// The (unscaled) spec the context was prepared from.
    pub spec: SyntheticSpec,
    /// The experiment configuration (resolution, sweep seed, λ, …).
    pub config: ExperimentConfig,
    /// Calibrated fabric.
    pub arch: Arch,
    /// The scaled netlist placed on it.
    pub netlist: Netlist,
    /// Routing-resource graph of `arch` (shared by every route call).
    pub graph: RouteGraph,
    /// Calibrated channel width of the fabric.
    pub channel_width: usize,
}

impl DesignContext {
    /// Runs the per-design stages: netlist generation, fabric calibration
    /// and routing-graph construction.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::BadConfig`] for an invalid config and
    /// propagates substrate failures.
    pub fn prepare(spec: &SyntheticSpec, config: &ExperimentConfig) -> Result<Self, CoreError> {
        config.validate()?;
        let (arch, netlist, channel_width) = design_fabric(spec, config)?;
        let graph = RouteGraph::new(&arch);
        Ok(DesignContext {
            spec: spec.clone(),
            config: config.clone(),
            arch,
            netlist,
            graph,
            channel_width,
        })
    }

    /// The deterministic placement-option sweep of this design:
    /// `config.pairs_per_design` option sets seeded from `config.seed`,
    /// each executed under `config.place_strategy` (sequential or
    /// region-parallel annealing).
    pub fn sweep_options(&self) -> Vec<PlaceOptions> {
        let sweep = SweepSpec {
            base_seed: self.config.seed,
            ..SweepSpec::quick()
        };
        let mut options = sweep.take(self.config.pairs_per_design);
        for o in &mut options {
            o.strategy = self.config.place_strategy;
        }
        options
    }

    /// Placement stage: anneals one placement of the design under `popts`,
    /// returning it with the wall-clock microseconds spent.
    ///
    /// # Errors
    ///
    /// Propagates placement failures.
    pub fn place_stage(&self, popts: &PlaceOptions) -> Result<(Placement, u64), CoreError> {
        // Stage timing is recorded provenance, never folded into the
        // fingerprint.
        let t0 = Instant::now();
        let placement = place(&self.arch, &self.netlist, popts)?;
        Ok((placement, t0.elapsed().as_micros() as u64))
    }

    /// Routing stage: routes a placement on the shared graph (the
    /// ground-truth collection step the paper's speedup is measured
    /// against), returning the result with the wall-clock microseconds.
    ///
    /// # Errors
    ///
    /// Propagates routing failures.
    pub fn route_stage(&self, placement: &Placement) -> Result<(RouteResult, u64), CoreError> {
        // Stage timing is recorded provenance, never folded into the
        // fingerprint.
        let t1 = Instant::now();
        let routing = route_on_graph(
            &self.arch,
            &self.graph,
            &self.netlist,
            placement,
            &RouteOptions::default(),
        )?;
        Ok((routing, t1.elapsed().as_micros() as u64))
    }

    /// Rasterisation + tensor-assembly stage: renders the three images of a
    /// placed-and-routed design and assembles the training pair.
    #[allow(clippy::too_many_arguments)] // the full provenance of one pair
    pub fn raster_stage(
        &self,
        index: usize,
        popts: &PlaceOptions,
        placement: &Placement,
        routing: &RouteResult,
        place_micros: u64,
        route_micros: u64,
    ) -> Pair {
        let config = &self.config;
        let img_place = render_placement(&self.arch, &self.netlist, placement, config.resolution);
        let img_connect =
            render_connectivity(&self.arch, &self.netlist, placement, config.resolution);
        let img_route = render_congestion(
            &self.arch,
            &self.netlist,
            placement,
            routing.congestion(),
            config.resolution,
        );
        let x = assemble_input(&img_place, &img_connect, config);
        let y = assemble_target(&img_route);
        Pair {
            x,
            y,
            meta: PairMeta {
                design: self.spec.name.clone(),
                index,
                place_seed: popts.seed,
                true_mean_congestion: routing.congestion().mean_utilization(),
                true_max_congestion: routing.congestion().max_utilization(),
                route_micros,
                place_micros,
            },
        }
    }

    /// Runs the per-placement stages for sweep entry `index`:
    /// [`place_stage`](DesignContext::place_stage) →
    /// [`route_stage`](DesignContext::route_stage) →
    /// [`raster_stage`](DesignContext::raster_stage).
    ///
    /// Deterministic in `(context, index, popts)` except for the wall-clock
    /// timing fields of [`PairMeta`].
    ///
    /// # Errors
    ///
    /// Propagates placement/routing failures as [`CoreError::Pipeline`].
    pub fn generate_pair(&self, index: usize, popts: &PlaceOptions) -> Result<Pair, CoreError> {
        let (placement, place_micros) = self.place_stage(popts)?;
        let (routing, route_micros) = self.route_stage(&placement)?;
        Ok(self.raster_stage(
            index,
            popts,
            &placement,
            &routing,
            place_micros,
            route_micros,
        ))
    }

    /// Assembles pairs (in sweep order) into a [`DesignDataset`].
    pub fn into_dataset(self, pairs: Vec<Pair>) -> DesignDataset {
        DesignDataset {
            name: self.spec.name,
            pairs,
            channel_width: self.channel_width,
            grid_width: self.arch.width(),
            grid_height: self.arch.height(),
        }
    }
}

/// Generates the dataset for one design preset under `config`
/// (`config.pairs_per_design` placements from the option sweep, each routed
/// and rasterised) — the sequential reference driver over
/// [`DesignContext`]; the parallel `pop-pipeline` generator produces
/// bitwise-identical output from the same stages.
///
/// # Errors
///
/// Propagates placement/routing failures as [`CoreError::Pipeline`].
pub fn build_design_dataset(
    spec: &SyntheticSpec,
    config: &ExperimentConfig,
) -> Result<DesignDataset, CoreError> {
    let ctx = DesignContext::prepare(spec, config)?;
    let mut pairs = Vec::with_capacity(config.pairs_per_design);
    for (index, popts) in ctx.sweep_options().iter().enumerate() {
        pairs.push(ctx.generate_pair(index, popts)?);
    }
    Ok(ctx.into_dataset(pairs))
}

/// pix2pix-style flip augmentation: returns the originals followed by
/// horizontally- and vertically-mirrored copies of every pair (input and
/// target flipped together, so the mapping stays consistent).
///
/// The paper does not augment — its dataset is large enough — but at the
/// CPU reproduction scale (few placements per design) augmentation
/// measurably steadies training; it is opt-in for that reason.
pub fn augment_flips(pairs: &[Pair]) -> Vec<Pair> {
    let mut out = Vec::with_capacity(pairs.len() * 3);
    out.extend_from_slice(pairs);
    for (flip_x, flip_label) in [(true, "hflip"), (false, "vflip")] {
        for p in pairs {
            let (x, y) = if flip_x {
                (p.x.flipped_w(), p.y.flipped_w())
            } else {
                (p.x.flipped_h(), p.y.flipped_h())
            };
            out.push(Pair {
                x,
                y,
                meta: PairMeta {
                    design: format!("{}-{flip_label}", p.meta.design),
                    ..p.meta.clone()
                },
            });
        }
    }
    out
}

/// Leave-one-design-out split (training strategy 1 of §5.1): all pairs of
/// every design except `held_out` for training, the held-out design for
/// testing.
///
/// # Panics
///
/// Panics when `held_out` does not name a dataset in `all`.
pub fn leave_one_out<'a>(
    all: &'a [DesignDataset],
    held_out: &str,
) -> (Vec<&'a Pair>, &'a DesignDataset) {
    let test = all
        .iter()
        .find(|d| d.name == held_out)
        .unwrap_or_else(|| panic!("no dataset named {held_out}"));
    let train: Vec<&Pair> = all
        .iter()
        .filter(|d| d.name != held_out)
        .flat_map(|d| d.pairs.iter())
        .collect();
    (train, test)
}

// ---------------------------------------------------------------------------
// Disk cache.
// ---------------------------------------------------------------------------

/// Bumped whenever the on-disk layout *or* the fingerprint recipe changes,
/// so caches written by older builds can never be silently loaded.
///
/// v4: pair records are self-contained (each carries its design name), so
/// the same record layout serves both `.popds` dataset files and the
/// pipeline's epoch-spill ring; writes are atomic (tmp + rename).
///
/// v5: the fingerprint folds in the placement execution strategy
/// (sequential vs region-parallel, including the region count — the
/// parallel annealer's placements are a different deterministic family).
/// The record layout is unchanged, so `MAGIC` stays at `POPDS004`.
pub const CACHE_FORMAT_VERSION: u32 = 5;

const MAGIC: &[u8; 8] = b"POPDS004";

/// Decode-time bounds: a corrupt header must never drive
/// `Vec::with_capacity` (or `vec![0; n]`) to a huge allocation. Anything
/// beyond these is treated as corruption, not as a request for memory.
const MAX_PAIRS: usize = 1 << 20;
const MAX_NAME_BYTES: usize = 4096;
const MAX_TENSOR_DIM: usize = 1 << 20;
const MAX_TENSOR_ELEMS: usize = 1 << 28;

fn corrupt(what: &str) -> std::io::Error {
    std::io::Error::new(
        std::io::ErrorKind::InvalidData,
        format!("corrupt cache record: {what}"),
    )
}

/// The FNV-1a accumulator every cache key in the workspace hashes with —
/// the scenario [`fingerprint`], the pipeline's epoch-ring keys and the
/// smoke example's corpus checksum all fold through this one
/// implementation, so the constants can never drift apart.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Fnv1a(u64);

impl Default for Fnv1a {
    fn default() -> Self {
        Self::new()
    }
}

impl Fnv1a {
    /// An accumulator at the FNV offset basis.
    pub fn new() -> Self {
        Fnv1a(0xcbf2_9ce4_8422_2325)
    }

    /// Folds one value in.
    pub fn eat(&mut self, v: u64) {
        self.0 ^= v;
        self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
    }

    /// Folds a byte string in (one fold per byte).
    pub fn eat_bytes(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.eat(b as u64);
        }
    }

    /// The accumulated hash.
    pub fn finish(&self) -> u64 {
        self.0
    }
}

/// Fingerprint of everything that affects generated data: the cache format
/// version, the full synthetic spec (scenario generation varies fanout,
/// locality and seeds — not just the preset seed) and every config knob on
/// the data path (including the fabric slack/aspect scenario parameters).
///
/// Public because cache *keys* are part of the system's contract: the
/// pipeline's [`CorpusStore`] names per-job cache files by it, and the
/// epoch-spill ring folds per-job fingerprints into its epoch keys.
pub fn fingerprint(spec: &SyntheticSpec, config: &ExperimentConfig) -> u64 {
    let mut h = Fnv1a::new();
    h.eat(CACHE_FORMAT_VERSION as u64);
    h.eat_bytes(spec.name.as_bytes());
    h.eat(spec.luts as u64);
    h.eat(spec.ffs as u64);
    h.eat(spec.nets as u64);
    h.eat(spec.inputs as u64);
    h.eat(spec.outputs as u64);
    h.eat(spec.memories as u64);
    h.eat(spec.multipliers as u64);
    h.eat(spec.luts_per_clb as u64);
    h.eat(spec.mean_fanout.to_bits());
    h.eat(spec.locality.to_bits());
    h.eat(spec.seed);
    h.eat(config.resolution as u64);
    h.eat(config.pairs_per_design as u64);
    h.eat(config.design_scale.to_bits());
    h.eat(config.lambda_connect.to_bits() as u64);
    h.eat(u64::from(config.grayscale_input));
    h.eat(config.channel_width_margin.to_bits());
    h.eat(config.fabric_slack.to_bits());
    h.eat(config.fabric_aspect.to_bits());
    h.eat(config.seed);
    // The placement strategy changes the generated placements, so it is
    // part of the data's identity — except the thread count, which by the
    // parallel annealer's determinism contract never changes the result:
    // caches stay warm across machines with different core counts.
    match config.place_strategy {
        pop_place::PlaceStrategy::Sequential => h.eat(0),
        pop_place::PlaceStrategy::ParallelRegions {
            regions,
            threads: _,
        } => {
            h.eat(1);
            h.eat(regions as u64);
        }
    }
    h.finish()
}

fn cache_path(dir: &Path, design: &str) -> PathBuf {
    dir.join(format!("{design}.popds"))
}

fn write_u32(w: &mut impl Write, v: u32) -> std::io::Result<()> {
    w.write_all(&v.to_le_bytes())
}

fn write_u64(w: &mut impl Write, v: u64) -> std::io::Result<()> {
    w.write_all(&v.to_le_bytes())
}

fn write_f32(w: &mut impl Write, v: f32) -> std::io::Result<()> {
    w.write_all(&v.to_le_bytes())
}

fn read_u32(r: &mut impl Read) -> std::io::Result<u32> {
    let mut b = [0u8; 4];
    r.read_exact(&mut b)?;
    Ok(u32::from_le_bytes(b))
}

fn read_u64(r: &mut impl Read) -> std::io::Result<u64> {
    let mut b = [0u8; 8];
    r.read_exact(&mut b)?;
    Ok(u64::from_le_bytes(b))
}

fn read_f32(r: &mut impl Read) -> std::io::Result<f32> {
    let mut b = [0u8; 4];
    r.read_exact(&mut b)?;
    Ok(f32::from_le_bytes(b))
}

fn write_tensor(w: &mut impl Write, t: &Tensor) -> std::io::Result<()> {
    for d in t.shape() {
        write_u32(w, d as u32)?;
    }
    let mut bytes = Vec::with_capacity(t.len() * 4);
    for v in t.data() {
        bytes.extend_from_slice(&v.to_le_bytes());
    }
    w.write_all(&bytes)
}

fn read_tensor(r: &mut impl Read) -> std::io::Result<Tensor> {
    let mut shape = [0usize; 4];
    for s in &mut shape {
        *s = read_u32(r)? as usize;
        if *s > MAX_TENSOR_DIM {
            return Err(corrupt("tensor dimension"));
        }
    }
    // Checked product: four in-bounds dims can still overflow a plain
    // multiply (2^20 each → 2^80), which must read as corruption too.
    let len = shape
        .iter()
        .try_fold(1usize, |acc, &d| acc.checked_mul(d))
        .filter(|&len| len <= MAX_TENSOR_ELEMS)
        .ok_or_else(|| corrupt("tensor element count"))?;
    let mut bytes = vec![0u8; len * 4];
    r.read_exact(&mut bytes)?;
    let data = bytes
        .chunks_exact(4)
        .map(|c| f32::from_le_bytes([c[0], c[1], c[2], c[3]]))
        .collect();
    Ok(Tensor::from_vec(shape, data))
}

/// Writes one [`Pair`] record (full provenance + tensors) in the cache's
/// little-endian layout. The record is self-contained — it carries its
/// design name — so the same layout serves `.popds` dataset files and the
/// pipeline's epoch-spill ring.
///
/// # Errors
///
/// Propagates I/O failures.
pub fn write_pair(w: &mut impl Write, p: &Pair) -> std::io::Result<()> {
    // Enforce the reader's decode bounds at write time: a record the
    // reader would reject must fail loudly here, not become a
    // permanently-unreadable entry that silently defeats the cache.
    let name = p.meta.design.as_bytes();
    if name.len() > MAX_NAME_BYTES {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidInput,
            format!("design name exceeds {MAX_NAME_BYTES} bytes"),
        ));
    }
    let index = u32::try_from(p.meta.index).map_err(|_| {
        std::io::Error::new(
            std::io::ErrorKind::InvalidInput,
            "pair index exceeds the cache record's u32 range",
        )
    })?;
    write_u32(w, name.len() as u32)?;
    w.write_all(name)?;
    write_u32(w, index)?;
    write_u64(w, p.meta.place_seed)?;
    write_f32(w, p.meta.true_mean_congestion)?;
    write_f32(w, p.meta.true_max_congestion)?;
    write_u64(w, p.meta.route_micros)?;
    write_u64(w, p.meta.place_micros)?;
    write_tensor(w, &p.x)?;
    write_tensor(w, &p.y)
}

/// Reads one [`Pair`] record written by [`write_pair`]. Header fields are
/// bounds-checked before any allocation, so a corrupt record fails with a
/// decode error instead of a huge `Vec` reservation.
///
/// # Errors
///
/// Propagates I/O failures; truncated or out-of-bounds records surface as
/// [`std::io::ErrorKind::UnexpectedEof`] / [`std::io::ErrorKind::InvalidData`].
pub fn read_pair(r: &mut impl Read) -> std::io::Result<Pair> {
    let name_len = read_u32(r)? as usize;
    if name_len > MAX_NAME_BYTES {
        return Err(corrupt("design name length"));
    }
    let mut name = vec![0u8; name_len];
    r.read_exact(&mut name)?;
    let design = String::from_utf8(name).map_err(|_| corrupt("design name utf-8"))?;
    let index = read_u32(r)? as usize;
    let place_seed = read_u64(r)?;
    let true_mean_congestion = read_f32(r)?;
    let true_max_congestion = read_f32(r)?;
    let route_micros = read_u64(r)?;
    let place_micros = read_u64(r)?;
    let x = read_tensor(r)?;
    let y = read_tensor(r)?;
    Ok(Pair {
        x,
        y,
        meta: PairMeta {
            design,
            index,
            place_seed,
            true_mean_congestion,
            true_max_congestion,
            route_micros,
            place_micros,
        },
    })
}

static TMP_COUNTER: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);

/// Writes `path` atomically: the content goes to a uniquely-named `.tmp`
/// sibling first and is renamed into place only after a successful flush +
/// fsync. A crash mid-write leaves (at worst) a stray `.tmp` file, never a
/// truncated cache entry with a valid magic + fingerprint. Public so every
/// cache-shaped artefact in the workspace (dataset caches, the pipeline's
/// epoch-spill ring and its progress marker) shares one durability story.
///
/// # Errors
///
/// Propagates I/O failures; on failure the temporary file is removed.
pub fn atomic_write(
    path: &Path,
    write: impl FnOnce(&mut std::io::BufWriter<std::fs::File>) -> std::io::Result<()>,
) -> std::io::Result<()> {
    let dir = path.parent().filter(|p| !p.as_os_str().is_empty());
    if let Some(dir) = dir {
        std::fs::create_dir_all(dir)?;
    }
    let tmp = path.with_file_name(format!(
        ".{}.{}.{}.tmp",
        path.file_name().and_then(|n| n.to_str()).unwrap_or("cache"),
        std::process::id(),
        TMP_COUNTER.fetch_add(1, std::sync::atomic::Ordering::Relaxed),
    ));
    let result = (|| {
        let mut w = std::io::BufWriter::new(std::fs::File::create(&tmp)?);
        write(&mut w)?;
        w.flush()?;
        let file = w.into_inner().map_err(|e| e.into_error())?;
        file.sync_all()?;
        std::fs::rename(&tmp, path)
    })();
    if result.is_err() {
        let _ = std::fs::remove_file(&tmp);
    }
    result
}

fn write_dataset_file(path: &Path, ds: &DesignDataset, fp: u64) -> std::io::Result<()> {
    // Mirror the reader's MAX_PAIRS bound at write time: an oversized
    // dataset must fail loudly here, not become an entry the reader
    // forever rejects as corrupt (silently defeating the cache).
    if ds.pairs.len() > MAX_PAIRS {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidInput,
            format!("dataset exceeds {MAX_PAIRS} pairs"),
        ));
    }
    atomic_write(path, |w| {
        w.write_all(MAGIC)?;
        write_u64(w, fp)?;
        write_u32(w, ds.pairs.len() as u32)?;
        write_u32(w, ds.channel_width as u32)?;
        write_u32(w, ds.grid_width as u32)?;
        write_u32(w, ds.grid_height as u32)?;
        for p in &ds.pairs {
            write_pair(w, p)?;
        }
        Ok(())
    })
}

/// Parses a dataset file body; `Ok(None)` on a magic/fingerprint mismatch,
/// `Err` on truncation or a corrupt field (both of which the callers treat
/// as stale).
fn parse_dataset(
    r: &mut impl Read,
    fp: u64,
    design: &str,
) -> std::io::Result<Option<DesignDataset>> {
    let mut magic = [0u8; 8];
    r.read_exact(&mut magic)?;
    if &magic != MAGIC {
        return Ok(None);
    }
    if read_u64(r)? != fp {
        return Ok(None);
    }
    let n = read_u32(r)? as usize;
    if n > MAX_PAIRS {
        return Err(corrupt("pair count"));
    }
    let channel_width = read_u32(r)? as usize;
    let grid_width = read_u32(r)? as usize;
    let grid_height = read_u32(r)? as usize;
    let mut pairs = Vec::with_capacity(n);
    for _ in 0..n {
        pairs.push(read_pair(r)?);
    }
    Ok(Some(DesignDataset {
        name: design.to_string(),
        pairs,
        channel_width,
        grid_width,
        grid_height,
    }))
}

/// Reads a dataset cache file, treating *every* damage mode as a miss:
/// absent file, wrong magic, stale fingerprint, truncation mid-field and
/// out-of-bounds headers all yield `Ok(None)` so the caller regenerates
/// (and overwrites) the entry — a damaged cache self-heals. Only failure to
/// open an *existing* file (permissions, I/O errors) is a hard error.
fn read_dataset_file(
    path: &Path,
    fp: u64,
    design: &str,
) -> Result<Option<DesignDataset>, CoreError> {
    let file = match std::fs::File::open(path) {
        Ok(f) => f,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
        Err(e) => return Err(CoreError::Cache(format!("open {}: {e}", path.display()))),
    };
    let mut r = std::io::BufReader::new(file);
    Ok(parse_dataset(&mut r, fp, design).unwrap_or(None))
}

/// Writes a dataset to `dir/<design>.popds`, keyed by the scenario
/// fingerprint of `spec` + `config`. The write is atomic (tmp + rename), so
/// a crash or Ctrl-C mid-write can never leave a truncated file behind the
/// final name.
///
/// # Errors
///
/// Returns [`CoreError::Cache`] on I/O failure.
pub fn save_dataset(
    dir: &Path,
    ds: &DesignDataset,
    spec: &SyntheticSpec,
    config: &ExperimentConfig,
) -> Result<(), CoreError> {
    write_dataset_file(&cache_path(dir, &ds.name), ds, fingerprint(spec, config))?;
    Ok(())
}

/// Loads a cached dataset if present and fingerprint-compatible; `Ok(None)`
/// when absent or stale (older format version, *any* scenario parameter
/// differing from what the cache was generated with, or a damaged file —
/// truncation and decode failures are treated as stale so the entry is
/// regenerated rather than poisoning every future run).
///
/// # Errors
///
/// Returns [`CoreError::Cache`] only when an existing file cannot be
/// opened (permissions, hardware I/O errors).
pub fn load_dataset(
    dir: &Path,
    spec: &SyntheticSpec,
    config: &ExperimentConfig,
) -> Result<Option<DesignDataset>, CoreError> {
    read_dataset_file(
        &cache_path(dir, &spec.name),
        fingerprint(spec, config),
        &spec.name,
    )
}

/// A directory of per-job dataset caches, keyed by **design name +
/// scenario fingerprint** — unlike the flat [`save_dataset`] /
/// [`load_dataset`] layout (one `<design>.popds` per directory), a store
/// keeps every scenario variant of the same design side by side, which is
/// what the streaming pipeline needs when one corpus mixes fabrics,
/// resolutions or sweep seeds of a single design family.
///
/// Same `.popds` format, same integrity rules: loads treat damage as a
/// miss, writes are atomic.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CorpusStore {
    dir: PathBuf,
    /// Total on-disk byte budget; `None` means unbounded (no eviction).
    budget: Option<u64>,
    /// Age after which another process's claim file is considered
    /// abandoned (owner crashed) and may be broken.
    claim_stale_after: std::time::Duration,
}

/// Default staleness horizon for generation claims: generous enough that a
/// healthy job never loses its claim mid-generation, short enough that a
/// crashed owner's claim does not wedge a fleet for long.
const CLAIM_STALE_AFTER: std::time::Duration = std::time::Duration::from_secs(600);

/// How often a waiting process re-probes a claimed entry.
const CLAIM_POLL_INTERVAL: std::time::Duration = std::time::Duration::from_millis(50);

/// What [`CorpusStore::begin`] resolved a job to.
#[derive(Debug)]
pub enum ClaimOutcome {
    /// The entry was already cached (possibly written by another process
    /// while we waited on its claim).
    Cached(Box<DesignDataset>),
    /// We own generation of this entry; finish by storing the dataset and
    /// dropping the guard (in that order).
    Claimed(ClaimGuard),
}

/// Ownership of one entry's generation, backed by an exclusively-created
/// claim file; dropping the guard releases the claim (best-effort).
#[derive(Debug)]
pub struct ClaimGuard {
    path: PathBuf,
    /// The exact content this process wrote into the claim file. Release
    /// removes the file only while it still holds this content: if the
    /// claim went stale (a very slow owner) and another process broke and
    /// re-claimed it, dropping the old guard must not delete the *new*
    /// owner's claim.
    stamp: String,
}

impl Drop for ClaimGuard {
    fn drop(&mut self) {
        if std::fs::read_to_string(&self.path).is_ok_and(|content| content == self.stamp) {
            let _ = std::fs::remove_file(&self.path);
        }
    }
}

impl CorpusStore {
    /// A store rooted at `dir` (created lazily on first write), unbounded.
    pub fn new(dir: impl Into<PathBuf>) -> Self {
        CorpusStore {
            dir: dir.into(),
            budget: None,
            claim_stale_after: CLAIM_STALE_AFTER,
        }
    }

    /// The same store with a total size budget: after every write the
    /// least-recently-used entries are evicted until the store fits (the
    /// serve-side `ModelRegistry` eviction, on disk). Loads touch their
    /// entry, so hot scenarios survive the sweep.
    #[must_use]
    pub fn with_budget(mut self, bytes: u64) -> Self {
        self.budget = Some(bytes);
        self
    }

    /// The same store with a custom claim-staleness horizon (tests shrink
    /// it; production keeps the generous default).
    #[must_use]
    pub fn with_claim_stale_after(mut self, after: std::time::Duration) -> Self {
        self.claim_stale_after = after;
        self
    }

    /// The store's root directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The configured size budget, if any.
    pub fn budget(&self) -> Option<u64> {
        self.budget
    }

    /// The cache file this job maps to:
    /// `<dir>/<design>-<fingerprint:016x>.popds`.
    pub fn entry_path(&self, spec: &SyntheticSpec, config: &ExperimentConfig) -> PathBuf {
        self.dir.join(format!(
            "{}-{:016x}.popds",
            spec.name,
            fingerprint(spec, config)
        ))
    }

    /// Loads the cached dataset for one job; `Ok(None)` on a miss (absent,
    /// stale or damaged entry).
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Cache`] only when an existing file cannot be
    /// opened.
    pub fn load(
        &self,
        spec: &SyntheticSpec,
        config: &ExperimentConfig,
    ) -> Result<Option<DesignDataset>, CoreError> {
        let path = self.entry_path(spec, config);
        let loaded = read_dataset_file(&path, fingerprint(spec, config), &spec.name)?;
        if loaded.is_some() {
            // LRU touch (best-effort): a hit must protect its entry from
            // the size-budget sweep.
            if let Ok(file) = std::fs::File::open(&path) {
                // mtime is LRU metadata, not key material.
                let now = std::time::SystemTime::now();
                let _ = file.set_times(std::fs::FileTimes::new().set_modified(now));
            }
        }
        Ok(loaded)
    }

    /// Atomically writes one job's dataset into the store, then (with a
    /// budget configured) sweeps least-recently-used entries until the
    /// store fits. The entry just written is never evicted by its own
    /// sweep, so a store always serves at least the hottest job.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Cache`] on I/O failure writing the entry;
    /// sweep failures are swallowed (eviction is advisory).
    pub fn store(
        &self,
        ds: &DesignDataset,
        spec: &SyntheticSpec,
        config: &ExperimentConfig,
    ) -> Result<(), CoreError> {
        let path = self.entry_path(spec, config);
        write_dataset_file(&path, ds, fingerprint(spec, config))?;
        self.sweep_protecting(Some(&path));
        Ok(())
    }

    /// Runs the size-budget sweep now (a no-op without a budget): entries
    /// are evicted oldest-modified first until the store's `.popds` bytes
    /// fit the budget. Ties break by name so the sweep is deterministic.
    pub fn sweep(&self) {
        self.sweep_protecting(None);
    }

    fn sweep_protecting(&self, keep: Option<&Path>) {
        let Some(budget) = self.budget else {
            return;
        };
        let Ok(entries) = std::fs::read_dir(&self.dir) else {
            return;
        };
        // The sweep orders evictions by mtime; entry contents and keys
        // stay time-free.
        let mut files: Vec<(std::time::SystemTime, PathBuf, u64)> = entries
            .flatten()
            .filter_map(|e| {
                let path = e.path();
                if path.extension().and_then(|x| x.to_str()) != Some("popds") {
                    return None;
                }
                let meta = e.metadata().ok()?;
                let modified = meta.modified().ok()?;
                Some((modified, path, meta.len()))
            })
            .collect();
        let mut total: u64 = files.iter().map(|(_, _, len)| len).sum();
        files.sort(); // oldest first; path breaks timestamp ties
        for (_, path, len) in files {
            if total <= budget {
                break;
            }
            if keep.is_some_and(|k| k == path) {
                continue;
            }
            if std::fs::remove_file(&path).is_ok() {
                total -= len;
            }
        }
    }

    /// The claim-file path guarding one entry's generation.
    fn claim_path(&self, spec: &SyntheticSpec, config: &ExperimentConfig) -> PathBuf {
        self.entry_path(spec, config).with_extension("claim")
    }

    /// Resolves one job against the store *with cross-process
    /// coordination*: a cache hit returns the dataset; a miss atomically
    /// claims the entry so concurrent cold runs over one cache directory
    /// do not all regenerate it. If another process holds the claim, this
    /// call **waits** — polling until the entry appears (then returns it
    /// as [`ClaimOutcome::Cached`]) or the claim is released or goes stale
    /// (then claims it). A stale claim (older than the staleness horizon —
    /// its owner crashed) is broken and taken over.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Cache`] when an existing entry cannot be
    /// opened or the claim file cannot be created for reasons other than
    /// already existing.
    pub fn begin(
        &self,
        spec: &SyntheticSpec,
        config: &ExperimentConfig,
    ) -> Result<ClaimOutcome, CoreError> {
        let claim = self.claim_path(spec, config);
        // Telemetry: how long this process sat behind another's claim
        // (zero probes on the uncontended path).
        let mut wait_start: Option<Instant> = None;
        let note_wait = |start: Option<Instant>| {
            if let Some(start) = start {
                let registry = pop_obs::global();
                registry.counter("cache.claim_waits").inc();
                registry
                    .histogram("cache.claim_wait_us")
                    .record_duration(start.elapsed());
            }
        };
        loop {
            // Probe the cache first: whoever held the claim may have
            // finished (this is the "second process waits, then streams
            // the first one's work" path).
            if let Some(ds) = self.load(spec, config)? {
                note_wait(wait_start);
                return Ok(ClaimOutcome::Cached(Box::new(ds)));
            }
            std::fs::create_dir_all(&self.dir)
                .map_err(|e| CoreError::Cache(format!("create {}: {e}", self.dir.display())))?;
            match std::fs::OpenOptions::new()
                .write(true)
                .create_new(true)
                .open(&claim)
            {
                Ok(mut file) => {
                    // Stamp the claim with this process + a nonce + its
                    // creation time: the time lets other processes judge
                    // staleness from content (mtime granularity and clock
                    // skew make content sturdier), and the full stamp lets
                    // release verify the claim is still *ours*.
                    // The claim stamp is wall time, not key material.
                    let now = std::time::SystemTime::now()
                        .duration_since(std::time::UNIX_EPOCH)
                        .map(|d| d.as_secs())
                        .unwrap_or(0);
                    let nonce = TMP_COUNTER.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                    let stamp = format!("{}.{} {}\n", std::process::id(), nonce, now);
                    let _ = file.write_all(stamp.as_bytes());
                    note_wait(wait_start);
                    return Ok(ClaimOutcome::Claimed(ClaimGuard { path: claim, stamp }));
                }
                Err(e) if e.kind() == std::io::ErrorKind::AlreadyExists => {
                    if self.claim_is_stale(&claim) {
                        // Owner crashed: break the claim and retry. The
                        // break is arbitrated by an atomic rename to a
                        // unique tombstone — exactly one waiter wins it
                        // (the losers' renames fail and they re-loop), so
                        // a delayed breaker can never delete the claim a
                        // *new* owner just created under the same name.
                        let tomb = claim.with_extension(format!(
                            "claim-stale.{}.{}",
                            std::process::id(),
                            TMP_COUNTER.fetch_add(1, std::sync::atomic::Ordering::Relaxed),
                        ));
                        if std::fs::rename(&claim, &tomb).is_ok() {
                            let _ = std::fs::remove_file(&tomb);
                        }
                        continue;
                    }
                    // Claim-wait telemetry only.
                    wait_start.get_or_insert_with(std::time::Instant::now);
                    std::thread::sleep(CLAIM_POLL_INTERVAL);
                }
                Err(e) => return Err(CoreError::Cache(format!("claim {}: {e}", claim.display()))),
            }
        }
    }

    /// Whether the claim file at `path` is older than the staleness
    /// horizon (or unreadable/garbled, which also means "break it").
    fn claim_is_stale(&self, path: &Path) -> bool {
        let Ok(content) = std::fs::read_to_string(path) else {
            // Vanished: not stale, just released — the retry loop probes.
            return false;
        };
        let stamped = content
            .split_whitespace()
            .nth(1)
            .and_then(|s| s.parse::<u64>().ok());
        let Some(stamped) = stamped else {
            return true; // garbled claim: break it
        };
        // Stale-claim arbitration compares wall time against the stamp;
        // no fingerprint involvement.
        let now = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_secs())
            .unwrap_or(0);
        now.saturating_sub(stamped) > self.claim_stale_after.as_secs()
    }
}

/// Builds (or loads from `cache_dir`) the dataset for one preset.
///
/// # Errors
///
/// Propagates build and cache errors.
pub fn build_or_load(
    spec: &SyntheticSpec,
    config: &ExperimentConfig,
    cache_dir: Option<&Path>,
) -> Result<DesignDataset, CoreError> {
    if let Some(dir) = cache_dir {
        if let Some(ds) = load_dataset(dir, spec, config)? {
            return Ok(ds);
        }
    }
    let ds = build_design_dataset(spec, config)?;
    if let Some(dir) = cache_dir {
        save_dataset(dir, &ds, spec, config)?;
    }
    Ok(ds)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pop_netlist::presets;

    fn cfg() -> ExperimentConfig {
        ExperimentConfig {
            pairs_per_design: 3,
            ..ExperimentConfig::test()
        }
    }

    #[test]
    fn build_dataset_has_expected_shapes() {
        let config = cfg();
        let ds = build_design_dataset(&presets::by_name("diffeq2").unwrap(), &config).unwrap();
        assert_eq!(ds.pairs.len(), 3);
        for p in &ds.pairs {
            assert_eq!(p.x.shape(), [1, 4, 32, 32]);
            assert_eq!(p.y.shape(), [1, 3, 32, 32]);
            assert!(p.meta.true_mean_congestion > 0.0);
            assert!(p.meta.route_micros > 0);
        }
        assert!(ds.channel_width >= 4);
    }

    #[test]
    fn datasets_are_deterministic() {
        let config = cfg();
        let spec = presets::by_name("diffeq2").unwrap();
        let a = build_design_dataset(&spec, &config).unwrap();
        let b = build_design_dataset(&spec, &config).unwrap();
        // Everything but the wall-clock fields must be identical.
        assert_eq!(a.channel_width, b.channel_width);
        assert_eq!((a.grid_width, a.grid_height), (b.grid_width, b.grid_height));
        for (pa, pb) in a.pairs.iter().zip(&b.pairs) {
            assert_eq!(pa.x, pb.x);
            assert_eq!(pa.y, pb.y);
            assert_eq!(pa.meta.place_seed, pb.meta.place_seed);
            assert_eq!(pa.meta.true_mean_congestion, pb.meta.true_mean_congestion);
        }
    }

    #[test]
    fn different_placements_have_different_congestion() {
        let config = ExperimentConfig {
            pairs_per_design: 4,
            ..cfg()
        };
        let ds = build_design_dataset(&presets::by_name("diffeq2").unwrap(), &config).unwrap();
        let c0 = ds.pairs[0].meta.true_mean_congestion;
        assert!(
            ds.pairs
                .iter()
                .any(|p| (p.meta.true_mean_congestion - c0).abs() > 1e-6),
            "congestion must vary across placements"
        );
    }

    #[test]
    fn cache_roundtrip() {
        let config = cfg();
        let spec = presets::by_name("diffeq2").unwrap();
        let ds = build_design_dataset(&spec, &config).unwrap();
        let dir = std::env::temp_dir().join("pop_core_cache_test");
        let _ = std::fs::remove_dir_all(&dir);
        save_dataset(&dir, &ds, &spec, &config).unwrap();
        let loaded = load_dataset(&dir, &spec, &config)
            .unwrap()
            .expect("cache hit");
        assert_eq!(ds, loaded);
        // Every PairMeta field survives the round trip, including the
        // wall-clock provenance (the paper's speedup denominators).
        for (orig, back) in ds.pairs.iter().zip(&loaded.pairs) {
            assert_eq!(orig.meta.design, back.meta.design);
            assert_eq!(orig.meta.index, back.meta.index);
            assert_eq!(orig.meta.place_seed, back.meta.place_seed);
            assert_eq!(
                orig.meta.true_mean_congestion.to_bits(),
                back.meta.true_mean_congestion.to_bits()
            );
            assert_eq!(
                orig.meta.true_max_congestion.to_bits(),
                back.meta.true_max_congestion.to_bits()
            );
            assert_eq!(orig.meta.route_micros, back.meta.route_micros);
            assert_eq!(orig.meta.place_micros, back.meta.place_micros);
        }
        // Stale fingerprint misses.
        let mut other = config.clone();
        other.resolution = 64;
        assert!(load_dataset(&dir, &spec, &other).unwrap().is_none());
    }

    #[test]
    fn cache_misses_when_any_scenario_parameter_changes() {
        let config = cfg();
        let spec = presets::by_name("diffeq2").unwrap();
        let ds = build_design_dataset(&spec, &config).unwrap();
        let dir = std::env::temp_dir().join("pop_core_cache_scenario_test");
        let _ = std::fs::remove_dir_all(&dir);
        save_dataset(&dir, &ds, &spec, &config).unwrap();

        // Spec-side scenario knobs (same name → same cache file, but the
        // data would differ): fanout profile, locality, seed, net budget.
        for mutate in [
            |s: &mut pop_netlist::SyntheticSpec| s.mean_fanout += 0.5,
            |s: &mut pop_netlist::SyntheticSpec| s.locality = 0.1,
            |s: &mut pop_netlist::SyntheticSpec| s.seed ^= 1,
            |s: &mut pop_netlist::SyntheticSpec| s.nets += 1,
        ] {
            let mut other = spec.clone();
            mutate(&mut other);
            assert!(
                load_dataset(&dir, &other, &config).unwrap().is_none(),
                "stale cache served for mutated spec"
            );
        }
        // Config-side scenario knobs: fabric density and aspect.
        for mutate in [
            |c: &mut ExperimentConfig| c.fabric_slack = 1.1,
            |c: &mut ExperimentConfig| c.fabric_aspect = 2.0,
            |c: &mut ExperimentConfig| c.seed += 1,
        ] {
            let mut other = config.clone();
            mutate(&mut other);
            assert!(
                load_dataset(&dir, &spec, &other).unwrap().is_none(),
                "stale cache served for mutated config"
            );
        }
        // The placement strategy is part of the data's identity (the
        // region-parallel annealer is a different deterministic family)…
        let mut par = config.clone();
        par.place_strategy = pop_place::PlaceStrategy::ParallelRegions {
            regions: 2,
            threads: 4,
        };
        assert!(
            load_dataset(&dir, &spec, &par).unwrap().is_none(),
            "stale cache served for a different placement strategy"
        );
        // …but its thread count is not: the parallel result is identical
        // for every thread count, so caches stay warm across hosts.
        let mut par8 = par.clone();
        par8.place_strategy = pop_place::PlaceStrategy::ParallelRegions {
            regions: 2,
            threads: 8,
        };
        assert_eq!(fingerprint(&spec, &par), fingerprint(&spec, &par8));

        // The untouched scenario still hits.
        assert!(load_dataset(&dir, &spec, &config).unwrap().is_some());
    }

    #[test]
    fn staged_context_reproduces_the_dataset_driver() {
        // The invariant the parallel pipeline rests on: driving the
        // DesignContext stages by hand (in any grouping) produces the same
        // pairs as build_design_dataset.
        let config = cfg();
        let spec = presets::by_name("diffeq2").unwrap();
        let whole = build_design_dataset(&spec, &config).unwrap();
        let ctx = DesignContext::prepare(&spec, &config).unwrap();
        let opts = ctx.sweep_options();
        assert_eq!(opts.len(), config.pairs_per_design);
        // Generate out of order to prove order-independence.
        let mut staged: Vec<(usize, Pair)> = opts
            .iter()
            .enumerate()
            .rev()
            .map(|(i, o)| (i, ctx.generate_pair(i, o).unwrap()))
            .collect();
        staged.sort_by_key(|(i, _)| *i);
        for ((_, s), w) in staged.iter().zip(&whole.pairs) {
            assert_eq!(s.without_timings(), w.without_timings());
        }
        let ds = ctx.into_dataset(staged.into_iter().map(|(_, p)| p).collect());
        assert_eq!(ds.name, whole.name);
        assert_eq!(ds.channel_width, whole.channel_width);
        assert_eq!(
            (ds.grid_width, ds.grid_height),
            (whole.grid_width, whole.grid_height)
        );
    }

    #[test]
    fn without_timings_zeroes_only_the_clock_fields() {
        let config = cfg();
        let ds = build_design_dataset(&presets::by_name("diffeq2").unwrap(), &config).unwrap();
        let p = &ds.pairs[0];
        let t = p.without_timings();
        assert_eq!(t.meta.route_micros, 0);
        assert_eq!(t.meta.place_micros, 0);
        assert_eq!(t.x, p.x);
        assert_eq!(t.y, p.y);
        assert_eq!(t.meta.design, p.meta.design);
        assert_eq!(t.meta.place_seed, p.meta.place_seed);
    }

    #[test]
    fn augmentation_triples_and_stays_consistent() {
        let config = cfg();
        let ds = build_design_dataset(&presets::by_name("diffeq2").unwrap(), &config).unwrap();
        let aug = augment_flips(&ds.pairs);
        assert_eq!(aug.len(), ds.pairs.len() * 3);
        // The h-flipped copy of pair 0 flips back to the original.
        let flipped = &aug[ds.pairs.len()];
        assert_eq!(flipped.x.flipped_w(), ds.pairs[0].x);
        assert_eq!(flipped.y.flipped_w(), ds.pairs[0].y);
        assert!(flipped.meta.design.ends_with("hflip"));
        // Ground-truth scalars are flip-invariant and preserved.
        assert_eq!(
            flipped.meta.true_mean_congestion,
            ds.pairs[0].meta.true_mean_congestion
        );
    }

    #[test]
    fn corpus_store_keeps_scenario_variants_of_one_design_side_by_side() {
        // The flat <design>.popds layout collides when two scenarios share
        // a design name; the store keys by fingerprint too.
        let spec = presets::by_name("diffeq2").unwrap();
        let config_a = cfg();
        let config_b = ExperimentConfig {
            fabric_slack: 1.1,
            ..config_a.clone()
        };
        let ds_a = build_design_dataset(&spec, &config_a).unwrap();
        let ds_b = build_design_dataset(&spec, &config_b).unwrap();
        let dir = std::env::temp_dir().join("pop_corpus_store_test");
        let _ = std::fs::remove_dir_all(&dir);
        let store = CorpusStore::new(&dir);
        assert_ne!(
            store.entry_path(&spec, &config_a),
            store.entry_path(&spec, &config_b)
        );
        store.store(&ds_a, &spec, &config_a).unwrap();
        store.store(&ds_b, &spec, &config_b).unwrap();
        assert_eq!(store.load(&spec, &config_a).unwrap().unwrap(), ds_a);
        assert_eq!(store.load(&spec, &config_b).unwrap().unwrap(), ds_b);
        // A third scenario misses without disturbing the other two.
        let config_c = ExperimentConfig {
            seed: 99,
            ..config_a.clone()
        };
        assert!(store.load(&spec, &config_c).unwrap().is_none());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corpus_store_budget_sweep_evicts_least_recently_used() {
        let spec = presets::by_name("diffeq2").unwrap();
        let configs: Vec<ExperimentConfig> = (0..3)
            .map(|i| ExperimentConfig {
                seed: 100 + i,
                ..cfg()
            })
            .collect();
        let datasets: Vec<DesignDataset> = configs
            .iter()
            .map(|c| build_design_dataset(&spec, c).unwrap())
            .collect();
        let dir = std::env::temp_dir().join("pop_corpus_store_budget_test");
        let _ = std::fs::remove_dir_all(&dir);

        // Write all three entries unbounded, then judge them with a
        // budget sized to hold two but not three.
        let unbounded = CorpusStore::new(&dir);
        for (c, d) in configs.iter().zip(&datasets) {
            unbounded.store(d, &spec, c).unwrap();
        }
        let entry_bytes = std::fs::metadata(unbounded.entry_path(&spec, &configs[0]))
            .unwrap()
            .len();
        let store = CorpusStore::new(&dir).with_budget(entry_bytes * 2 + entry_bytes / 2);
        assert_eq!(store.budget(), Some(entry_bytes * 2 + entry_bytes / 2));

        // Make entry ages unambiguous (mtime granularity can be coarse).
        let age = |path: &std::path::Path, secs_ago: u64| {
            let t = std::time::SystemTime::now() - std::time::Duration::from_secs(secs_ago);
            std::fs::File::open(path)
                .unwrap()
                .set_times(std::fs::FileTimes::new().set_modified(t))
                .unwrap();
        };
        age(&store.entry_path(&spec, &configs[0]), 300);
        age(&store.entry_path(&spec, &configs[1]), 200);
        age(&store.entry_path(&spec, &configs[2]), 100);

        // A load touches entry 1, making entry 0 the LRU victim.
        assert!(store.load(&spec, &configs[1]).unwrap().is_some());
        store.sweep();
        assert!(
            store.load(&spec, &configs[0]).unwrap().is_none(),
            "LRU entry must be evicted"
        );
        assert!(store.load(&spec, &configs[1]).unwrap().is_some());
        assert!(store.load(&spec, &configs[2]).unwrap().is_some());

        // A store's own sweep never evicts the entry it just wrote, even
        // under a budget smaller than one entry.
        let tiny = CorpusStore::new(&dir).with_budget(1);
        tiny.store(&datasets[0], &spec, &configs[0]).unwrap();
        assert!(tiny.load(&spec, &configs[0]).unwrap().is_some());
        assert!(tiny.load(&spec, &configs[1]).unwrap().is_none());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corpus_store_claims_serialize_concurrent_generation() {
        let spec = presets::by_name("diffeq2").unwrap();
        let config = cfg();
        let ds = build_design_dataset(&spec, &config).unwrap();
        let dir = std::env::temp_dir().join("pop_corpus_store_claim_test");
        let _ = std::fs::remove_dir_all(&dir);
        let store = CorpusStore::new(&dir);

        // First caller claims; the guard's claim file exists.
        let claim = match store.begin(&spec, &config).unwrap() {
            ClaimOutcome::Claimed(guard) => guard,
            other => panic!("fresh store must hand out a claim, got {other:?}"),
        };
        assert!(store.claim_path(&spec, &config).exists());

        // A concurrent caller (same dir, another "process") blocks until
        // the owner stores the entry and releases — then streams it from
        // disk instead of regenerating.
        let waiter = {
            let store = store.clone();
            let (spec, config) = (spec.clone(), config.clone());
            std::thread::spawn(move || store.begin(&spec, &config).unwrap())
        };
        std::thread::sleep(std::time::Duration::from_millis(120));
        assert!(!waiter.is_finished(), "waiter must block on a live claim");
        store.store(&ds, &spec, &config).unwrap();
        drop(claim);
        match waiter.join().unwrap() {
            ClaimOutcome::Cached(got) => assert_eq!(*got, ds),
            other => panic!("waiter must receive the cached entry, got {other:?}"),
        }
        assert!(
            !store.claim_path(&spec, &config).exists(),
            "dropping the guard must release the claim"
        );

        // A cached entry resolves without claiming at all.
        match store.begin(&spec, &config).unwrap() {
            ClaimOutcome::Cached(got) => assert_eq!(*got, ds),
            other => panic!("warm store must resolve to Cached, got {other:?}"),
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn stale_and_garbled_claims_are_broken_and_taken_over() {
        let spec = presets::by_name("diffeq2").unwrap();
        let config = cfg();
        let dir = std::env::temp_dir().join("pop_corpus_store_stale_claim_test");
        let _ = std::fs::remove_dir_all(&dir);
        let store =
            CorpusStore::new(&dir).with_claim_stale_after(std::time::Duration::from_secs(5));
        std::fs::create_dir_all(&dir).unwrap();

        // A claim stamped far in the past (its owner crashed): taken over.
        let old = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .unwrap()
            .as_secs()
            - 60;
        std::fs::write(store.claim_path(&spec, &config), format!("9999 {old}\n")).unwrap();
        match store.begin(&spec, &config).unwrap() {
            ClaimOutcome::Claimed(_) => {}
            other => panic!("stale claim must be broken, got {other:?}"),
        }

        // A garbled claim file is equally broken.
        std::fs::write(store.claim_path(&spec, &config), "not a claim").unwrap();
        match store.begin(&spec, &config).unwrap() {
            ClaimOutcome::Claimed(_) => {}
            other => panic!("garbled claim must be broken, got {other:?}"),
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn releasing_a_superseded_claim_never_deletes_the_new_owners() {
        // A very slow (but alive) owner whose claim went stale and was
        // taken over must not, on release, delete the claim the *new*
        // owner now holds under the same path.
        let spec = presets::by_name("diffeq2").unwrap();
        let config = cfg();
        let dir = std::env::temp_dir().join("pop_corpus_store_superseded_claim_test");
        let _ = std::fs::remove_dir_all(&dir);
        let store = CorpusStore::new(&dir);
        let slow_owner = match store.begin(&spec, &config).unwrap() {
            ClaimOutcome::Claimed(guard) => guard,
            other => panic!("fresh store must hand out a claim, got {other:?}"),
        };
        let path = store.claim_path(&spec, &config);
        // Simulate the takeover: the claim file now carries another
        // process's stamp.
        std::fs::write(&path, "4242.0 1\n").unwrap();
        drop(slow_owner);
        assert!(
            path.exists(),
            "a superseded guard must leave the new owner's claim in place"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn saves_are_atomic_and_leave_no_temp_droppings() {
        let config = cfg();
        let spec = presets::by_name("diffeq2").unwrap();
        let ds = build_design_dataset(&spec, &config).unwrap();
        let dir = std::env::temp_dir().join("pop_cache_atomic_test");
        let _ = std::fs::remove_dir_all(&dir);
        save_dataset(&dir, &ds, &spec, &config).unwrap();
        let names: Vec<String> = std::fs::read_dir(&dir)
            .unwrap()
            .map(|e| e.unwrap().file_name().to_string_lossy().into_owned())
            .collect();
        assert_eq!(names, vec!["diffeq2.popds".to_string()], "{names:?}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn truncated_cache_files_are_treated_as_stale() {
        let config = cfg();
        let spec = presets::by_name("diffeq2").unwrap();
        let ds = build_design_dataset(&spec, &config).unwrap();
        let dir = std::env::temp_dir().join("pop_cache_truncate_unit_test");
        let _ = std::fs::remove_dir_all(&dir);
        save_dataset(&dir, &ds, &spec, &config).unwrap();
        let path = cache_path(&dir, "diffeq2");
        let bytes = std::fs::read(&path).unwrap();
        // A sample of cut points across the header and first pair record;
        // the integration suite sweeps every byte.
        for cut in [0usize, 7, 8, 15, 16, 19, 27, 31, 40, bytes.len() - 1] {
            std::fs::write(&path, &bytes[..cut]).unwrap();
            assert!(
                load_dataset(&dir, &spec, &config).unwrap().is_none(),
                "truncation at {cut} must be a miss, not an error"
            );
        }
        // Restoring the full file restores the hit.
        std::fs::write(&path, &bytes).unwrap();
        assert!(load_dataset(&dir, &spec, &config).unwrap().is_some());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_headers_cannot_trigger_huge_allocations() {
        let config = cfg();
        let spec = presets::by_name("diffeq2").unwrap();
        let dir = std::env::temp_dir().join("pop_cache_bounds_test");
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let path = cache_path(&dir, "diffeq2");
        // Valid magic + fingerprint followed by an absurd pair count.
        let mut bytes = Vec::new();
        bytes.extend_from_slice(MAGIC);
        bytes.extend_from_slice(&fingerprint(&spec, &config).to_le_bytes());
        bytes.extend_from_slice(&u32::MAX.to_le_bytes()); // pair count
        bytes.extend_from_slice(&[0u8; 12]); // widths
        std::fs::write(&path, &bytes).unwrap();
        assert!(load_dataset(&dir, &spec, &config).unwrap().is_none());
        // Same for a pair record claiming a gigantic tensor dimension.
        let ds = build_design_dataset(&spec, &config).unwrap();
        save_dataset(&dir, &ds, &spec, &config).unwrap();
        let mut bytes = std::fs::read(&path).unwrap();
        // First tensor shape field of pair 0 sits after the dataset header
        // (32 bytes) and the pair meta (4 + name + 4 + 8 + 4 + 4 + 8 + 8).
        let shape_off = 32 + 4 + "diffeq2".len() + 36;
        bytes[shape_off..shape_off + 4].copy_from_slice(&u32::MAX.to_le_bytes());
        std::fs::write(&path, &bytes).unwrap();
        assert!(load_dataset(&dir, &spec, &config).unwrap().is_none());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn pair_records_round_trip_via_the_shared_layout() {
        let config = cfg();
        let ds = build_design_dataset(&presets::by_name("diffeq2").unwrap(), &config).unwrap();
        let mut buf = Vec::new();
        for p in &ds.pairs {
            write_pair(&mut buf, p).unwrap();
        }
        let mut r = std::io::Cursor::new(buf);
        for p in &ds.pairs {
            assert_eq!(&read_pair(&mut r).unwrap(), p);
        }
    }

    #[test]
    fn leave_one_out_partitions() {
        let config = cfg();
        let d1 = build_design_dataset(&presets::by_name("diffeq1").unwrap(), &config).unwrap();
        let d2 = build_design_dataset(&presets::by_name("diffeq2").unwrap(), &config).unwrap();
        let all = vec![d1, d2];
        let (train, test) = leave_one_out(&all, "diffeq1");
        assert_eq!(test.name, "diffeq1");
        assert_eq!(train.len(), 3);
        assert!(train.iter().all(|p| p.meta.design == "diffeq2"));
    }
}
