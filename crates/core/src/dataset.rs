//! Dataset generation: the paper's §5 "Datasets" paragraph as code.
//!
//! For each design: scale the preset, generate the netlist, auto-size the
//! fabric, **calibrate the channel width** (binary-search the minimum width
//! on a probe placement, then add the VTR-style margin — this is how "the
//! ground truth images are collected with … default VPR settings" ends up
//! with a fixed, routable fabric per design), then sweep the placement
//! options, route every placement, rasterise `img_place`/`img_connect`/
//! `img_route` and assemble tensors.
//!
//! Generated datasets can be cached on disk ([`save_dataset`] /
//! [`load_dataset`]) in a little-endian binary format keyed by a config
//! fingerprint, because routing hundreds of placements dominates experiment
//! wall-time.

use crate::config::ExperimentConfig;
use crate::error::CoreError;
use crate::features::{assemble_input, assemble_target};
use pop_arch::Arch;
use pop_netlist::{generate, Netlist, SyntheticSpec};
use pop_nn::Tensor;
use pop_place::{place, sweep::SweepSpec};
use pop_raster::{render_congestion, render_connectivity, render_placement};
use pop_route::{min_channel_width, route_on_graph, RouteGraph, RouteOptions};
use std::io::{Read, Write};
use std::path::{Path, PathBuf};
use std::time::Instant;

/// Provenance and ground-truth scalars of one training pair.
#[derive(Debug, Clone, PartialEq)]
pub struct PairMeta {
    /// Design name.
    pub design: String,
    /// Index within the design's placement sweep.
    pub index: usize,
    /// Placement seed that produced this pair.
    pub place_seed: u64,
    /// Mean channel utilisation of the ground-truth routing.
    pub true_mean_congestion: f32,
    /// Peak channel utilisation of the ground-truth routing.
    pub true_max_congestion: f32,
    /// Wall-clock microseconds spent routing (the denominator of the
    /// paper's speedup metric).
    pub route_micros: u64,
    /// Wall-clock microseconds spent placing.
    pub place_micros: u64,
}

impl PairMeta {
    /// Meta for synthetic test pairs.
    pub fn synthetic(seed: u64) -> Self {
        PairMeta {
            design: "synthetic".into(),
            index: seed as usize,
            place_seed: seed,
            true_mean_congestion: 0.0,
            true_max_congestion: 0.0,
            route_micros: 0,
            place_micros: 0,
        }
    }
}

/// One training example: input features `x`, target heat map `y`, and
/// provenance.
#[derive(Debug, Clone, PartialEq)]
pub struct Pair {
    /// Generator input (`stack(img_place, λ·img_connect)` in `[-1, 1]`).
    pub x: Tensor,
    /// Ground-truth heat map in `[-1, 1]`.
    pub y: Tensor,
    /// Provenance and ground-truth scalars.
    pub meta: PairMeta,
}

/// All pairs generated for one design, plus the fabric they share.
#[derive(Debug, Clone, PartialEq)]
pub struct DesignDataset {
    /// Design name (Table 2 row).
    pub name: String,
    /// Training pairs, in sweep order.
    pub pairs: Vec<Pair>,
    /// Calibrated channel width of the fabric.
    pub channel_width: usize,
    /// Fabric grid width in tiles.
    pub grid_width: usize,
    /// Fabric grid height in tiles.
    pub grid_height: usize,
}

/// Rebuilds the architecture and netlist a dataset was generated on (the
/// fabric is a deterministic function of spec + config).
///
/// # Errors
///
/// Propagates substrate errors.
pub fn design_fabric(
    spec: &SyntheticSpec,
    config: &ExperimentConfig,
) -> Result<(Arch, Netlist, usize), CoreError> {
    let scaled = spec.scaled(config.design_scale);
    let netlist = generate(&scaled);
    let (clbs, ios, mems, mults) = netlist.site_demand();
    let probe_arch = Arch::auto_size(clbs, ios, mems, mults, 8, 1.3)?;
    let probe_placement = place(&probe_arch, &netlist, &Default::default())?;
    let (min_w, _) = min_channel_width(
        &probe_arch,
        &netlist,
        &probe_placement,
        &RouteOptions::default(),
    )?;
    let width = ((min_w as f64 * config.channel_width_margin).ceil() as usize).max(4);
    let arch = Arch::auto_size(clbs, ios, mems, mults, width, 1.3)?;
    Ok((arch, netlist, width))
}

/// Generates the dataset for one design preset under `config`
/// (`config.pairs_per_design` placements from the option sweep, each routed
/// and rasterised).
///
/// # Errors
///
/// Propagates placement/routing failures as [`CoreError::Pipeline`].
pub fn build_design_dataset(
    spec: &SyntheticSpec,
    config: &ExperimentConfig,
) -> Result<DesignDataset, CoreError> {
    config.validate()?;
    let (arch, netlist, channel_width) = design_fabric(spec, config)?;
    let graph = RouteGraph::new(&arch);
    let route_opts = RouteOptions::default();
    let sweep = SweepSpec {
        base_seed: config.seed,
        ..SweepSpec::quick()
    };
    let mut pairs = Vec::with_capacity(config.pairs_per_design);
    for (index, popts) in sweep.take(config.pairs_per_design).into_iter().enumerate() {
        let t0 = Instant::now();
        let placement = place(&arch, &netlist, &popts)?;
        let place_micros = t0.elapsed().as_micros() as u64;

        let t1 = Instant::now();
        let routing = route_on_graph(&arch, &graph, &netlist, &placement, &route_opts)?;
        let route_micros = t1.elapsed().as_micros() as u64;

        let img_place = render_placement(&arch, &netlist, &placement, config.resolution);
        let img_connect = render_connectivity(&arch, &netlist, &placement, config.resolution);
        let img_route = render_congestion(
            &arch,
            &netlist,
            &placement,
            routing.congestion(),
            config.resolution,
        );
        let x = assemble_input(&img_place, &img_connect, config);
        let y = assemble_target(&img_route);
        pairs.push(Pair {
            x,
            y,
            meta: PairMeta {
                design: spec.name.clone(),
                index,
                place_seed: popts.seed,
                true_mean_congestion: routing.congestion().mean_utilization(),
                true_max_congestion: routing.congestion().max_utilization(),
                route_micros,
                place_micros,
            },
        });
    }
    Ok(DesignDataset {
        name: spec.name.clone(),
        pairs,
        channel_width,
        grid_width: arch.width(),
        grid_height: arch.height(),
    })
}

/// pix2pix-style flip augmentation: returns the originals followed by
/// horizontally- and vertically-mirrored copies of every pair (input and
/// target flipped together, so the mapping stays consistent).
///
/// The paper does not augment — its dataset is large enough — but at the
/// CPU reproduction scale (few placements per design) augmentation
/// measurably steadies training; it is opt-in for that reason.
pub fn augment_flips(pairs: &[Pair]) -> Vec<Pair> {
    let mut out = Vec::with_capacity(pairs.len() * 3);
    out.extend_from_slice(pairs);
    for (flip_x, flip_label) in [(true, "hflip"), (false, "vflip")] {
        for p in pairs {
            let (x, y) = if flip_x {
                (p.x.flipped_w(), p.y.flipped_w())
            } else {
                (p.x.flipped_h(), p.y.flipped_h())
            };
            out.push(Pair {
                x,
                y,
                meta: PairMeta {
                    design: format!("{}-{flip_label}", p.meta.design),
                    ..p.meta.clone()
                },
            });
        }
    }
    out
}

/// Leave-one-design-out split (training strategy 1 of §5.1): all pairs of
/// every design except `held_out` for training, the held-out design for
/// testing.
///
/// # Panics
///
/// Panics when `held_out` does not name a dataset in `all`.
pub fn leave_one_out<'a>(
    all: &'a [DesignDataset],
    held_out: &str,
) -> (Vec<&'a Pair>, &'a DesignDataset) {
    let test = all
        .iter()
        .find(|d| d.name == held_out)
        .unwrap_or_else(|| panic!("no dataset named {held_out}"));
    let train: Vec<&Pair> = all
        .iter()
        .filter(|d| d.name != held_out)
        .flat_map(|d| d.pairs.iter())
        .collect();
    (train, test)
}

// ---------------------------------------------------------------------------
// Disk cache.
// ---------------------------------------------------------------------------

const MAGIC: &[u8; 8] = b"POPDS002";

/// Fingerprint of everything that affects generated data.
fn fingerprint(spec_seed: u64, config: &ExperimentConfig) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut eat = |v: u64| {
        h ^= v;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    };
    eat(spec_seed);
    eat(config.resolution as u64);
    eat(config.pairs_per_design as u64);
    eat(config.design_scale.to_bits());
    eat(config.lambda_connect.to_bits() as u64);
    eat(u64::from(config.grayscale_input));
    eat(config.channel_width_margin.to_bits());
    eat(config.seed);
    h
}

fn cache_path(dir: &Path, design: &str) -> PathBuf {
    dir.join(format!("{design}.popds"))
}

fn write_u32(w: &mut impl Write, v: u32) -> std::io::Result<()> {
    w.write_all(&v.to_le_bytes())
}

fn write_u64(w: &mut impl Write, v: u64) -> std::io::Result<()> {
    w.write_all(&v.to_le_bytes())
}

fn write_f32(w: &mut impl Write, v: f32) -> std::io::Result<()> {
    w.write_all(&v.to_le_bytes())
}

fn read_u32(r: &mut impl Read) -> std::io::Result<u32> {
    let mut b = [0u8; 4];
    r.read_exact(&mut b)?;
    Ok(u32::from_le_bytes(b))
}

fn read_u64(r: &mut impl Read) -> std::io::Result<u64> {
    let mut b = [0u8; 8];
    r.read_exact(&mut b)?;
    Ok(u64::from_le_bytes(b))
}

fn read_f32(r: &mut impl Read) -> std::io::Result<f32> {
    let mut b = [0u8; 4];
    r.read_exact(&mut b)?;
    Ok(f32::from_le_bytes(b))
}

fn write_tensor(w: &mut impl Write, t: &Tensor) -> std::io::Result<()> {
    for d in t.shape() {
        write_u32(w, d as u32)?;
    }
    let mut bytes = Vec::with_capacity(t.len() * 4);
    for v in t.data() {
        bytes.extend_from_slice(&v.to_le_bytes());
    }
    w.write_all(&bytes)
}

fn read_tensor(r: &mut impl Read) -> std::io::Result<Tensor> {
    let mut shape = [0usize; 4];
    for s in &mut shape {
        *s = read_u32(r)? as usize;
    }
    let len: usize = shape.iter().product();
    let mut bytes = vec![0u8; len * 4];
    r.read_exact(&mut bytes)?;
    let data = bytes
        .chunks_exact(4)
        .map(|c| f32::from_le_bytes([c[0], c[1], c[2], c[3]]))
        .collect();
    Ok(Tensor::from_vec(shape, data))
}

/// Writes a dataset to `dir/<design>.popds`, keyed by the config
/// fingerprint.
///
/// # Errors
///
/// Returns [`CoreError::Cache`] on I/O failure.
pub fn save_dataset(
    dir: &Path,
    ds: &DesignDataset,
    spec_seed: u64,
    config: &ExperimentConfig,
) -> Result<(), CoreError> {
    std::fs::create_dir_all(dir)?;
    let mut w = std::io::BufWriter::new(std::fs::File::create(cache_path(dir, &ds.name))?);
    w.write_all(MAGIC)?;
    write_u64(&mut w, fingerprint(spec_seed, config))?;
    write_u32(&mut w, ds.pairs.len() as u32)?;
    write_u32(&mut w, ds.channel_width as u32)?;
    write_u32(&mut w, ds.grid_width as u32)?;
    write_u32(&mut w, ds.grid_height as u32)?;
    for p in &ds.pairs {
        write_u32(&mut w, p.meta.index as u32)?;
        write_u64(&mut w, p.meta.place_seed)?;
        write_f32(&mut w, p.meta.true_mean_congestion)?;
        write_f32(&mut w, p.meta.true_max_congestion)?;
        write_u64(&mut w, p.meta.route_micros)?;
        write_u64(&mut w, p.meta.place_micros)?;
        write_tensor(&mut w, &p.x)?;
        write_tensor(&mut w, &p.y)?;
    }
    w.flush()?;
    Ok(())
}

/// Loads a cached dataset if present and fingerprint-compatible; `Ok(None)`
/// when absent or stale.
///
/// # Errors
///
/// Returns [`CoreError::Cache`] on I/O failure of an existing file.
pub fn load_dataset(
    dir: &Path,
    design: &str,
    spec_seed: u64,
    config: &ExperimentConfig,
) -> Result<Option<DesignDataset>, CoreError> {
    let path = cache_path(dir, design);
    if !path.exists() {
        return Ok(None);
    }
    let mut r = std::io::BufReader::new(std::fs::File::open(&path)?);
    let mut magic = [0u8; 8];
    r.read_exact(&mut magic)?;
    if &magic != MAGIC {
        return Ok(None);
    }
    if read_u64(&mut r)? != fingerprint(spec_seed, config) {
        return Ok(None);
    }
    let n = read_u32(&mut r)? as usize;
    let channel_width = read_u32(&mut r)? as usize;
    let grid_width = read_u32(&mut r)? as usize;
    let grid_height = read_u32(&mut r)? as usize;
    let mut pairs = Vec::with_capacity(n);
    for _ in 0..n {
        let index = read_u32(&mut r)? as usize;
        let place_seed = read_u64(&mut r)?;
        let true_mean_congestion = read_f32(&mut r)?;
        let true_max_congestion = read_f32(&mut r)?;
        let route_micros = read_u64(&mut r)?;
        let place_micros = read_u64(&mut r)?;
        let x = read_tensor(&mut r)?;
        let y = read_tensor(&mut r)?;
        pairs.push(Pair {
            x,
            y,
            meta: PairMeta {
                design: design.to_string(),
                index,
                place_seed,
                true_mean_congestion,
                true_max_congestion,
                route_micros,
                place_micros,
            },
        });
    }
    Ok(Some(DesignDataset {
        name: design.to_string(),
        pairs,
        channel_width,
        grid_width,
        grid_height,
    }))
}

/// Builds (or loads from `cache_dir`) the dataset for one preset.
///
/// # Errors
///
/// Propagates build and cache errors.
pub fn build_or_load(
    spec: &SyntheticSpec,
    config: &ExperimentConfig,
    cache_dir: Option<&Path>,
) -> Result<DesignDataset, CoreError> {
    if let Some(dir) = cache_dir {
        if let Some(ds) = load_dataset(dir, &spec.name, spec.seed, config)? {
            return Ok(ds);
        }
    }
    let ds = build_design_dataset(spec, config)?;
    if let Some(dir) = cache_dir {
        save_dataset(dir, &ds, spec.seed, config)?;
    }
    Ok(ds)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pop_netlist::presets;

    fn cfg() -> ExperimentConfig {
        ExperimentConfig {
            pairs_per_design: 3,
            ..ExperimentConfig::test()
        }
    }

    #[test]
    fn build_dataset_has_expected_shapes() {
        let config = cfg();
        let ds = build_design_dataset(&presets::by_name("diffeq2").unwrap(), &config).unwrap();
        assert_eq!(ds.pairs.len(), 3);
        for p in &ds.pairs {
            assert_eq!(p.x.shape(), [1, 4, 32, 32]);
            assert_eq!(p.y.shape(), [1, 3, 32, 32]);
            assert!(p.meta.true_mean_congestion > 0.0);
            assert!(p.meta.route_micros > 0);
        }
        assert!(ds.channel_width >= 4);
    }

    #[test]
    fn datasets_are_deterministic() {
        let config = cfg();
        let spec = presets::by_name("diffeq2").unwrap();
        let a = build_design_dataset(&spec, &config).unwrap();
        let b = build_design_dataset(&spec, &config).unwrap();
        // Everything but the wall-clock fields must be identical.
        assert_eq!(a.channel_width, b.channel_width);
        assert_eq!((a.grid_width, a.grid_height), (b.grid_width, b.grid_height));
        for (pa, pb) in a.pairs.iter().zip(&b.pairs) {
            assert_eq!(pa.x, pb.x);
            assert_eq!(pa.y, pb.y);
            assert_eq!(pa.meta.place_seed, pb.meta.place_seed);
            assert_eq!(pa.meta.true_mean_congestion, pb.meta.true_mean_congestion);
        }
    }

    #[test]
    fn different_placements_have_different_congestion() {
        let config = ExperimentConfig {
            pairs_per_design: 4,
            ..cfg()
        };
        let ds = build_design_dataset(&presets::by_name("diffeq2").unwrap(), &config).unwrap();
        let c0 = ds.pairs[0].meta.true_mean_congestion;
        assert!(
            ds.pairs
                .iter()
                .any(|p| (p.meta.true_mean_congestion - c0).abs() > 1e-6),
            "congestion must vary across placements"
        );
    }

    #[test]
    fn cache_roundtrip() {
        let config = cfg();
        let spec = presets::by_name("diffeq2").unwrap();
        let ds = build_design_dataset(&spec, &config).unwrap();
        let dir = std::env::temp_dir().join("pop_core_cache_test");
        let _ = std::fs::remove_dir_all(&dir);
        save_dataset(&dir, &ds, spec.seed, &config).unwrap();
        let loaded = load_dataset(&dir, "diffeq2", spec.seed, &config)
            .unwrap()
            .expect("cache hit");
        assert_eq!(ds, loaded);
        // Stale fingerprint misses.
        let mut other = config.clone();
        other.resolution = 64;
        assert!(load_dataset(&dir, "diffeq2", spec.seed, &other)
            .unwrap()
            .is_none());
    }

    #[test]
    fn augmentation_triples_and_stays_consistent() {
        let config = cfg();
        let ds = build_design_dataset(&presets::by_name("diffeq2").unwrap(), &config).unwrap();
        let aug = augment_flips(&ds.pairs);
        assert_eq!(aug.len(), ds.pairs.len() * 3);
        // The h-flipped copy of pair 0 flips back to the original.
        let flipped = &aug[ds.pairs.len()];
        assert_eq!(flipped.x.flipped_w(), ds.pairs[0].x);
        assert_eq!(flipped.y.flipped_w(), ds.pairs[0].y);
        assert!(flipped.meta.design.ends_with("hflip"));
        // Ground-truth scalars are flip-invariant and preserved.
        assert_eq!(
            flipped.meta.true_mean_congestion,
            ds.pairs[0].meta.true_mean_congestion
        );
    }

    #[test]
    fn leave_one_out_partitions() {
        let config = cfg();
        let d1 = build_design_dataset(&presets::by_name("diffeq1").unwrap(), &config).unwrap();
        let d2 = build_design_dataset(&presets::by_name("diffeq2").unwrap(), &config).unwrap();
        let all = vec![d1, d2];
        let (train, test) = leave_one_out(&all, "diffeq1");
        assert_eq!(test.name, "diffeq1");
        assert_eq!(train.len(), 3);
        assert!(train.iter().all(|p| p.meta.design == "diffeq2"));
    }
}
