use crate::config::ExperimentConfig;
use crate::dataset::Pair;
use crate::disc::PatchDiscriminator;
use crate::error::CoreError;
use crate::features::tensor_to_image;
use crate::unet::UNetGenerator;
use pop_nn::loss::{bce_with_logits, l1_loss};
use pop_nn::{Adam, Layer, Tensor};
use pop_raster::Image;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Per-epoch training curves — the data behind the paper's Figure 8.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TrainHistory {
    /// Mean generator objective per epoch (`cGAN + λ_L1·L1`).
    pub generator_loss: Vec<f32>,
    /// Mean discriminator objective per epoch.
    pub discriminator_loss: Vec<f32>,
    /// Mean raw L1 distance per epoch (reported even when the L1 term is
    /// ablated from the objective).
    pub l1: Vec<f32>,
}

impl TrainHistory {
    /// Appends another history (used when fine-tuning extends a run).
    pub fn extend(&mut self, other: &TrainHistory) {
        self.generator_loss.extend_from_slice(&other.generator_loss);
        self.discriminator_loss
            .extend_from_slice(&other.discriminator_loss);
        self.l1.extend_from_slice(&other.l1);
    }

    /// Renders the curves as CSV (`epoch,g_loss,d_loss,l1`).
    pub fn to_csv(&self) -> String {
        let mut out = String::from("epoch,g_loss,d_loss,l1\n");
        for i in 0..self.generator_loss.len() {
            out.push_str(&format!(
                "{},{},{},{}\n",
                i + 1,
                self.generator_loss[i],
                self.discriminator_loss[i],
                self.l1[i]
            ));
        }
        out
    }

    /// *Relative* mean epoch-to-epoch change of the generator loss over the
    /// last half of training — the "training noise" §5.3 discusses (smooth
    /// optimisation gives small values; ablated models give larger ones).
    /// Normalised by the mean loss level over the same window so variants
    /// with different objectives (with/without the λ·L1 term) compare
    /// fairly.
    pub fn late_noise(&self) -> f32 {
        let g = &self.generator_loss;
        if g.len() < 3 {
            return 0.0;
        }
        let start = (g.len() / 2).max(1);
        let mut diff_sum = 0.0f32;
        let mut level_sum = 0.0f32;
        let mut n = 0usize;
        for i in start..g.len() {
            diff_sum += (g[i] - g[i - 1]).abs();
            level_sum += g[i].abs();
            n += 1;
        }
        let mean_level = (level_sum / n as f32).max(1e-6);
        (diff_sum / n as f32) / mean_level
    }
}

/// The resume handshake between [`Pix2Pix::train_stream_resumable`] and a
/// resumable epoch source (e.g. the pipeline's spill-to-disk epoch ring).
///
/// The contract that makes interrupted streaming runs resumable:
///
/// * the **source** consults [`completed_epochs`](StreamCheckpoint::completed_epochs)
///   and yields only epochs `completed..total`;
/// * the **trainer** acknowledges each epoch *after* the optimisation pass
///   over it finishes, via [`epoch_completed`](StreamCheckpoint::epoch_completed).
///
/// Because the acknowledgement happens on the training side (not when the
/// generator hands the epoch over), a run killed mid-epoch re-trains that
/// epoch on resume instead of silently skipping it.
///
/// The acknowledgement receives the just-trained **model** so checkpoints
/// can persist weights + optimiser state *with* the corpus position (e.g.
/// `pop-pipeline`'s `TrainCheckpoint` calls `model_io::save_checkpoint`
/// before advancing the epoch marker): a resumed run then continues from
/// the trained weights instead of silently re-initialising.
pub trait StreamCheckpoint {
    /// How many epochs an earlier (interrupted) run fully trained.
    fn completed_epochs(&self) -> usize;
    /// Called once per epoch, after training on it completed; `model` is
    /// the trainer in its post-epoch state, for weight checkpointing.
    fn epoch_completed(&mut self, epoch: usize, model: &mut Pix2Pix);
}

/// A [`StreamCheckpoint`] that remembers nothing — the no-resume default
/// behind [`Pix2Pix::train_stream`].
#[derive(Debug, Clone, Copy, Default)]
pub struct NoCheckpoint;

impl StreamCheckpoint for NoCheckpoint {
    fn completed_epochs(&self) -> usize {
        0
    }
    fn epoch_completed(&mut self, _epoch: usize, _model: &mut Pix2Pix) {}
}

/// Losses of one optimisation step.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StepLosses {
    /// Discriminator loss (mean of real and fake halves).
    pub d_loss: f32,
    /// Generator adversarial term.
    pub g_gan: f32,
    /// Raw L1 between `G(x, z)` and the truth.
    pub g_l1: f32,
}

/// The conditional GAN of §4: U-Net generator + patch discriminator trained
/// with `cL(G, D) + λ·E‖g − G(x, z)‖₁` (both Adam, paper hyper-parameters).
///
/// Train/fine-tune on [`Pair`]s, then [`Pix2Pix::forecast_image`] a heat
/// map from fresh placement features in one forward pass — the operation
/// the paper times at ~0.09 s/image against minutes of routing.
#[derive(Debug, Clone)]
pub struct Pix2Pix {
    gen: UNetGenerator,
    disc: PatchDiscriminator,
    opt_g: Adam,
    opt_d: Adam,
    config: ExperimentConfig,
    rng: StdRng,
}

impl Pix2Pix {
    /// Builds generator, discriminator and optimisers for `config`.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::BadConfig`] when the config fails validation.
    pub fn new(config: &ExperimentConfig, seed: u64) -> Result<Self, CoreError> {
        config.validate()?;
        let in_ch = config.input_channels();
        let gen = UNetGenerator::new(
            in_ch,
            3,
            config.base_filters,
            config.depth,
            config.skip,
            seed,
        );
        let disc = PatchDiscriminator::new(
            in_ch + 3,
            config.base_filters,
            config.resolution,
            seed.wrapping_add(0x0D15C),
        );
        let adam = Adam::new(config.learning_rate, 0.5, 0.999, 1e-8);
        Ok(Pix2Pix {
            gen,
            disc,
            opt_g: adam.clone(),
            opt_d: adam,
            config: config.clone(),
            rng: StdRng::seed_from_u64(seed.wrapping_add(0x7EA1)),
        })
    }

    /// The experiment configuration this model was built for.
    pub fn config(&self) -> &ExperimentConfig {
        &self.config
    }

    /// The generator (e.g. for parameter counting).
    pub fn generator_mut(&mut self) -> &mut UNetGenerator {
        &mut self.gen
    }

    /// The discriminator.
    pub fn discriminator_mut(&mut self) -> &mut PatchDiscriminator {
        &mut self.disc
    }

    /// The trainer RNG's stream position (epoch shuffles + noise), for
    /// checkpointing; pair with [`Pix2Pix::set_rng_state`].
    pub fn rng_state(&self) -> [u64; 4] {
        self.rng.state()
    }

    /// Restores the trainer RNG to a checkpointed stream position.
    pub fn set_rng_state(&mut self, state: [u64; 4]) {
        self.rng = StdRng::from_state(state);
    }

    /// Bias-correction step counts of the generator and discriminator
    /// optimisers (the per-parameter Adam moments live in the parameters
    /// themselves and are checkpointed alongside the weights).
    pub fn optimizer_steps(&self) -> (u64, u64) {
        (self.opt_g.steps(), self.opt_d.steps())
    }

    /// Restores the optimiser step counts from a checkpoint.
    pub fn set_optimizer_steps(&mut self, gen_steps: u64, disc_steps: u64) {
        self.opt_g.set_steps(gen_steps);
        self.opt_d.set_steps(disc_steps);
    }

    /// One cGAN optimisation step on a single `(x, truth)` pair (the paper
    /// trains with batch size 1).
    pub fn train_step(&mut self, x: &Tensor, truth: &Tensor) -> StepLosses {
        // Generator forward (training mode: dropout provides z).
        let fake = self.gen.forward(x, true);

        // ---- Discriminator step: maximise log D(x,g) + log(1-D(G(x,z))).
        self.disc.zero_grad();
        let real_pair = x.concat_channels(truth);
        let logits_real = self.disc.forward(&real_pair, true);
        let (d_real, mut g_real) = bce_with_logits(&logits_real, 1.0);
        g_real.scale(0.5);
        let _ = self.disc.backward(&g_real);

        let fake_pair = x.concat_channels(&fake);
        let logits_fake = self.disc.forward(&fake_pair, true);
        let (d_fake, mut g_fake) = bce_with_logits(&logits_fake, 0.0);
        g_fake.scale(0.5);
        let _ = self.disc.backward(&g_fake);
        self.opt_d.step(&mut self.disc.params_mut());

        // ---- Generator step: minimise log(1-D(G(x,z))) (non-saturating
        // form: maximise log D) + λ·L1.
        self.disc.zero_grad();
        self.gen.zero_grad();
        let logits = self.disc.forward(&fake_pair, true);
        let (g_gan, g_grad) = bce_with_logits(&logits, 1.0);
        let d_input_grad = self.disc.backward(&g_grad);
        let (_, mut fake_grad) = d_input_grad.split_channels(x.c());

        let (l1_raw, l1_grad) = l1_loss(&fake, truth);
        if self.config.use_l1 {
            let mut weighted = l1_grad;
            weighted.scale(self.config.lambda_l1);
            fake_grad.add_assign(&weighted);
        }
        let _ = self.gen.backward(&fake_grad);
        self.opt_g.step(&mut self.gen.params_mut());
        self.gen.zero_grad();
        self.disc.zero_grad();

        StepLosses {
            d_loss: 0.5 * (d_real + d_fake),
            g_gan,
            g_l1: l1_raw,
        }
    }

    /// Trains for `epochs` passes over `pairs` (shuffled each epoch),
    /// returning the loss history.
    pub fn train(&mut self, pairs: &[Pair], epochs: usize) -> TrainHistory {
        let refs: Vec<&Pair> = pairs.iter().collect();
        self.train_refs(&refs, epochs)
    }

    /// [`Pix2Pix::train`] over borrowed pairs — the shape produced by
    /// [`leave_one_out`](crate::dataset::leave_one_out), avoiding a copy of
    /// the training tensors.
    pub fn train_refs(&mut self, pairs: &[&Pair], epochs: usize) -> TrainHistory {
        let mut history = TrainHistory::default();
        if pairs.is_empty() {
            return history;
        }
        let mut order: Vec<usize> = (0..pairs.len()).collect();
        for _epoch in 0..epochs {
            self.train_one_epoch(pairs, &mut order, &mut history);
        }
        history
    }

    /// Trains one epoch per yielded pair set — the consumer half of a
    /// background-prefetch pipeline: while this method trains on epoch `N`,
    /// the producer (e.g. `pop_pipeline::EpochPrefetcher`) is already
    /// generating epoch `N + 1`'s pairs on its worker pools. Empty yields
    /// are skipped; the returned history has one entry per non-empty epoch.
    pub fn train_stream<I>(&mut self, epochs: I) -> TrainHistory
    where
        I: IntoIterator<Item = Vec<Pair>>,
    {
        self.train_stream_resumable(epochs, &mut NoCheckpoint)
    }

    /// [`Pix2Pix::train_stream`] with a resume handshake: epochs are
    /// numbered from `checkpoint.completed_epochs()` (the source is
    /// expected to skip epochs an interrupted run already trained) and each
    /// is acknowledged via [`StreamCheckpoint::epoch_completed`] *after*
    /// its optimisation pass finishes, so progress markers never run ahead
    /// of the actual training state.
    pub fn train_stream_resumable<I>(
        &mut self,
        epochs: I,
        checkpoint: &mut dyn StreamCheckpoint,
    ) -> TrainHistory
    where
        I: IntoIterator<Item = Vec<Pair>>,
    {
        let mut history = TrainHistory::default();
        // The shuffle order persists across equally-sized epochs, exactly
        // like `train_refs` — streaming the same pair set each epoch
        // reproduces `train` bitwise. A size change resets it.
        let mut order: Vec<usize> = Vec::new();
        let mut epoch = checkpoint.completed_epochs();
        for pairs in epochs {
            if pairs.is_empty() {
                // An empty epoch is trivially complete: acknowledge it so
                // the positional numbering stays in sync with the source's
                // epoch indexing (spill files are keyed by epoch index),
                // but record nothing in the history.
                checkpoint.epoch_completed(epoch, self);
                epoch += 1;
                continue;
            }
            let refs: Vec<&Pair> = pairs.iter().collect();
            if order.len() != refs.len() {
                order = (0..refs.len()).collect();
            }
            self.train_one_epoch(&refs, &mut order, &mut history);
            checkpoint.epoch_completed(epoch, self);
            epoch += 1;
        }
        history
    }

    /// Shuffles `order` with the trainer's RNG (deterministic by seed),
    /// trains one pass and appends the epoch means to `history`.
    fn train_one_epoch(
        &mut self,
        pairs: &[&Pair],
        order: &mut [usize],
        history: &mut TrainHistory,
    ) {
        let _span = pop_obs::span!(
            "train_epoch",
            epoch = history.generator_loss.len(),
            pairs = pairs.len()
        );
        let obs = pop_obs::global();
        let step_us = obs.histogram("train.step_us");
        // Fisher-Yates with the trainer's RNG: deterministic by seed.
        for i in (1..order.len()).rev() {
            let j = self.rng.gen_range(0..=i);
            order.swap(i, j);
        }
        let mut sum_g = 0.0f64;
        let mut sum_d = 0.0f64;
        let mut sum_l1 = 0.0f64;
        for &idx in order.iter() {
            let step_started = std::time::Instant::now();
            let losses = self.train_step(&pairs[idx].x, &pairs[idx].y);
            step_us.record_duration(step_started.elapsed());
            let g_total = losses.g_gan
                + if self.config.use_l1 {
                    self.config.lambda_l1 * losses.g_l1
                } else {
                    0.0
                };
            sum_g += g_total as f64;
            sum_d += losses.d_loss as f64;
            sum_l1 += losses.g_l1 as f64;
        }
        let n = pairs.len() as f64;
        history.generator_loss.push((sum_g / n) as f32);
        history.discriminator_loss.push((sum_d / n) as f32);
        history.l1.push((sum_l1 / n) as f32);
        obs.counter("train.epochs").inc();
        obs.counter("train.steps").add(pairs.len() as u64);
        obs.gauge("train.loss.generator").set(sum_g / n);
        obs.gauge("train.loss.discriminator").set(sum_d / n);
        obs.gauge("train.loss.l1").set(sum_l1 / n);
    }

    /// Strategy 2 of §5.1: update a trained model with a few pairs from the
    /// held-out design ("takes the advantages of transfer learning").
    pub fn finetune(&mut self, pairs: &[Pair], epochs: usize) -> TrainHistory {
        self.train(pairs, epochs)
    }

    /// Paints the routing heat map for input features (inference mode — no
    /// dropout, batch-norm running statistics).
    pub fn forecast(&mut self, x: &Tensor) -> Tensor {
        self.gen.forward(x, false)
    }

    /// Freezes the generator into an opt-in i8 inference snapshot: a
    /// lock-free [`QuantizedForecaster`](crate::QuantizedForecaster) with
    /// per-output-channel weight scales and batch-norm folded in. Accuracy
    /// versus this f32 model is gated by the `quantized_accuracy_gate`
    /// test (MetricSet delta on a held-out split).
    pub fn quantized(&self) -> crate::QuantizedForecaster {
        crate::QuantizedForecaster::new(self.gen.quantize())
    }

    /// [`Pix2Pix::forecast`] decoded into an image.
    pub fn forecast_image(&mut self, x: &Tensor) -> Image {
        tensor_to_image(&self.forecast(x))
    }

    /// Forecasts many inputs in one batched forward pass: inputs are
    /// stacked along the batch dimension, painted together, and split back
    /// per request. In inference mode every layer treats batch elements
    /// independently, so each returned tensor is bitwise-identical to the
    /// corresponding single-input [`Pix2Pix::forecast`] — this is the
    /// compute core of the `pop-serve` micro-batcher.
    ///
    /// Returns an empty vector for an empty input slice.
    ///
    /// # Panics
    ///
    /// Panics when inputs disagree on channel/spatial dimensions (see
    /// [`Tensor::stack_batch`]).
    pub fn forecast_batch(&mut self, xs: &[&Tensor]) -> Vec<Tensor> {
        if xs.is_empty() {
            return Vec::new();
        }
        let batch = Tensor::stack_batch(xs);
        self.gen.forward(&batch, false).split_batch()
    }

    /// [`Pix2Pix::forecast_batch`] decoded into images.
    ///
    /// # Panics
    ///
    /// Panics when inputs disagree on channel/spatial dimensions.
    pub fn forecast_batch_images(&mut self, xs: &[&Tensor]) -> Vec<Image> {
        self.forecast_batch(xs)
            .iter()
            .map(tensor_to_image)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::PairMeta;

    fn tiny_config() -> ExperimentConfig {
        ExperimentConfig {
            resolution: 16,
            base_filters: 4,
            depth: 3,
            epochs: 1,
            ..ExperimentConfig::test()
        }
    }

    fn synthetic_pair(cfg: &ExperimentConfig, seed: u64) -> Pair {
        // A learnable mapping: target = low-res structure of the input.
        let x = Tensor::randn([1, cfg.input_channels(), 16, 16], 0.0, 0.5, seed);
        let mut y = Tensor::zeros([1, 3, 16, 16]);
        for c in 0..3 {
            for i in 0..16 {
                for j in 0..16 {
                    y.set(0, c, i, j, x.at(0, 0, i, j).tanh());
                }
            }
        }
        Pair {
            x,
            y,
            meta: PairMeta::synthetic(seed),
        }
    }

    #[test]
    fn construction_validates_config() {
        let mut bad = tiny_config();
        bad.resolution = 17;
        assert!(Pix2Pix::new(&bad, 1).is_err());
        assert!(Pix2Pix::new(&tiny_config(), 1).is_ok());
    }

    #[test]
    fn train_records_history_and_learns() {
        let cfg = tiny_config();
        let pairs: Vec<Pair> = (0..4).map(|s| synthetic_pair(&cfg, s)).collect();
        let mut model = Pix2Pix::new(&cfg, 3).unwrap();
        let history = model.train(&pairs, 6);
        assert_eq!(history.generator_loss.len(), 6);
        assert_eq!(history.discriminator_loss.len(), 6);
        // L1 should drop substantially as the generator fits.
        let first = history.l1[0];
        let last = *history.l1.last().unwrap();
        assert!(last < first, "l1 {first} -> {last}");
        assert!(history.to_csv().lines().count() == 7);
    }

    #[test]
    fn train_stream_matches_train_for_identical_epochs() {
        // Feeding the same pair set once per epoch through the streaming
        // API consumes the trainer RNG identically to `train`, so the loss
        // history is bitwise-equal.
        let cfg = tiny_config();
        let pairs: Vec<Pair> = (0..3).map(|s| synthetic_pair(&cfg, s)).collect();
        let mut batch = Pix2Pix::new(&cfg, 21).unwrap();
        let h_batch = batch.train(&pairs, 3);
        let mut stream = Pix2Pix::new(&cfg, 21).unwrap();
        let h_stream = stream.train_stream((0..3).map(|_| pairs.clone()));
        assert_eq!(h_batch, h_stream);
        // Empty yields are skipped, not recorded.
        let mut skip = Pix2Pix::new(&cfg, 22).unwrap();
        let h = skip.train_stream(vec![pairs.clone(), Vec::new(), pairs.clone()]);
        assert_eq!(h.generator_loss.len(), 2);
    }

    #[test]
    fn stream_checkpoint_acknowledges_epochs_after_training() {
        struct Recorder {
            start: usize,
            acked: Vec<usize>,
        }
        impl StreamCheckpoint for Recorder {
            fn completed_epochs(&self) -> usize {
                self.start
            }
            fn epoch_completed(&mut self, epoch: usize, _model: &mut Pix2Pix) {
                self.acked.push(epoch);
            }
        }
        let cfg = tiny_config();
        let pairs: Vec<Pair> = (0..2).map(|s| synthetic_pair(&cfg, s)).collect();
        // Fresh run: epochs numbered from 0. An empty yield is trivially
        // complete — acknowledged (keeping the source's epoch indexing in
        // sync) but absent from the history.
        let mut fresh = Recorder {
            start: 0,
            acked: Vec::new(),
        };
        let mut model = Pix2Pix::new(&cfg, 31).unwrap();
        let h = model
            .train_stream_resumable(vec![pairs.clone(), Vec::new(), pairs.clone()], &mut fresh);
        assert_eq!(fresh.acked, vec![0, 1, 2]);
        assert_eq!(h.generator_loss.len(), 2);
        // Resumed run: numbering continues where the interrupted run left
        // off (the source only yields the remaining epochs).
        let mut resumed = Recorder {
            start: 2,
            acked: Vec::new(),
        };
        let mut model2 = Pix2Pix::new(&cfg, 31).unwrap();
        let _ = model2.train_stream_resumable(vec![pairs.clone()], &mut resumed);
        assert_eq!(resumed.acked, vec![2]);
    }

    #[test]
    fn forecast_is_deterministic_and_bounded() {
        let cfg = tiny_config();
        let mut model = Pix2Pix::new(&cfg, 5).unwrap();
        let x = Tensor::randn([1, cfg.input_channels(), 16, 16], 0.0, 0.5, 9);
        let a = model.forecast(&x);
        let b = model.forecast(&x);
        assert_eq!(a, b);
        let img = model.forecast_image(&x);
        assert_eq!(img.channels(), 3);
        assert!(img.data().iter().all(|v| (0.0..=1.0).contains(v)));
    }

    #[test]
    fn batched_forecast_matches_sequential_bitwise() {
        let cfg = tiny_config();
        let pairs: Vec<Pair> = (0..2).map(|s| synthetic_pair(&cfg, s)).collect();
        let mut model = Pix2Pix::new(&cfg, 11).unwrap();
        // Train a little so batch-norm running stats are non-trivial.
        let _ = model.train(&pairs, 2);
        let xs: Vec<Tensor> = (0..5)
            .map(|s| Tensor::randn([1, cfg.input_channels(), 16, 16], 0.0, 0.5, 100 + s))
            .collect();
        let sequential: Vec<Tensor> = xs.iter().map(|x| model.forecast(x)).collect();
        let refs: Vec<&Tensor> = xs.iter().collect();
        let batched = model.forecast_batch(&refs);
        assert_eq!(batched.len(), 5);
        for (b, s) in batched.iter().zip(&sequential) {
            // Bitwise equality: eval-mode layers are batch-independent.
            assert_eq!(b, s);
        }
        let images = model.forecast_batch_images(&refs);
        for (img, s) in images.iter().zip(&sequential) {
            assert_eq!(img, &tensor_to_image(s));
        }
    }

    #[test]
    fn forecast_batch_of_nothing_is_empty() {
        let mut model = Pix2Pix::new(&tiny_config(), 1).unwrap();
        assert!(model.forecast_batch(&[]).is_empty());
        assert!(model.forecast_batch_images(&[]).is_empty());
    }

    #[test]
    fn cloned_model_forecasts_identically() {
        let cfg = tiny_config();
        let mut model = Pix2Pix::new(&cfg, 13).unwrap();
        let mut twin = model.clone();
        let x = Tensor::randn([1, cfg.input_channels(), 16, 16], 0.0, 0.5, 14);
        assert_eq!(model.forecast(&x), twin.forecast(&x));
    }

    #[test]
    fn ablated_l1_changes_training() {
        let cfg = tiny_config();
        let pairs: Vec<Pair> = (0..2).map(|s| synthetic_pair(&cfg, s)).collect();
        let mut with_l1 = Pix2Pix::new(&cfg, 7).unwrap();
        let h1 = with_l1.train(&pairs, 2);
        let mut no_l1_cfg = cfg.clone();
        no_l1_cfg.use_l1 = false;
        let mut without_l1 = Pix2Pix::new(&no_l1_cfg, 7).unwrap();
        let h2 = without_l1.train(&pairs, 2);
        // The generator objective differs by the λ·L1 term.
        assert!(h1.generator_loss[0] > h2.generator_loss[0]);
    }

    #[test]
    fn history_extend_and_noise() {
        let mut h = TrainHistory {
            generator_loss: vec![1.0, 0.5, 0.52, 0.51],
            discriminator_loss: vec![0.7; 4],
            l1: vec![0.2; 4],
        };
        let other = TrainHistory {
            generator_loss: vec![0.5],
            discriminator_loss: vec![0.6],
            l1: vec![0.1],
        };
        h.extend(&other);
        assert_eq!(h.generator_loss.len(), 5);
        assert!(h.late_noise() >= 0.0);
    }
}
