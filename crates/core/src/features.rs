//! Feature assembly: images → NCHW tensors and back.
//!
//! §4.2: "the input feature `x = stack(img_place, λ·img_connect)`,
//! `x ∈ R^{256×256×4}`". Image channels are mapped to the `[-1, 1]` range
//! (the generator ends in `tanh`); the connectivity channel is scaled by
//! `λ` (paper: 0.1) before stacking.

use crate::config::ExperimentConfig;
use pop_nn::Tensor;
use pop_raster::{grayscale, Image};

/// Builds the generator input from the placement and connectivity images.
///
/// `img_place` must be RGB; it is converted to grayscale here when the
/// config's §5.2 ablation flag is set. `img_connect` must be 1-channel and
/// of the same resolution.
///
/// Images are CHW and tensors NCHW, so assembly is two flat slice maps —
/// no per-pixel triple indexing and no copy of `img_place` unless the
/// grayscale ablation actually needs one. This is the hot loop of dataset
/// generation (once per placement) and of every serving request.
///
/// # Panics
///
/// Panics on resolution mismatch between images and config.
pub fn assemble_input(img_place: &Image, img_connect: &Image, config: &ExperimentConfig) -> Tensor {
    assert_eq!(img_place.width(), config.resolution, "place image width");
    assert_eq!(
        img_connect.width(),
        config.resolution,
        "connect image width"
    );
    assert_eq!(img_connect.channels(), 1, "connectivity is one channel");
    let gray;
    let place: &Image = if config.grayscale_input {
        gray = grayscale(img_place);
        &gray
    } else {
        img_place
    };
    let w = config.resolution;
    let pc = place.channels();
    let lambda = config.lambda_connect;
    let mut data = Vec::with_capacity((pc + 1) * w * w);
    // Place channels → [-1, 1].
    data.extend(place.data().iter().map(|&v| v * 2.0 - 1.0));
    // Connectivity channel scaled by λ (kept in [0, λ] as in the paper's
    // `λ · img_connect`).
    data.extend(img_connect.data().iter().map(|&v| lambda * v));
    Tensor::from_vec([1, pc + 1, w, w], data)
}

/// Converts the ground-truth heat map image into the generator target
/// (`[-1, 1]` per channel). Flat CHW→NCHW map, like [`assemble_input`].
pub fn assemble_target(img_route: &Image) -> Tensor {
    let (w, h, c) = (img_route.width(), img_route.height(), img_route.channels());
    let data = img_route.data().iter().map(|&v| v * 2.0 - 1.0).collect();
    Tensor::from_vec([1, c, h, w], data)
}

/// Converts a generator output tensor back into an image (values clamped
/// into `[0, 1]`). Only batch element 0 is decoded.
pub fn tensor_to_image(t: &Tensor) -> Image {
    let [_, c, h, w] = t.shape();
    let data = t.data()[..c * h * w]
        .iter()
        .map(|&v| ((v + 1.0) * 0.5).clamp(0.0, 1.0))
        .collect();
    Image::from_data(w, h, c, data)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn images(res: usize) -> (Image, Image) {
        let mut place = Image::zeros(res, res, 3);
        place.set(1, 2, 0, 1.0);
        place.set(1, 2, 1, 0.5);
        let mut connect = Image::zeros(res, res, 1);
        connect.set(3, 3, 0, 1.0);
        (place, connect)
    }

    #[test]
    fn rgb_input_has_four_channels() {
        let cfg = ExperimentConfig {
            resolution: 8,
            ..ExperimentConfig::test()
        };
        let (p, c) = images(8);
        let x = assemble_input(&p, &c, &cfg);
        assert_eq!(x.shape(), [1, 4, 8, 8]);
        // Place pixel mapped to [-1, 1].
        assert_eq!(x.at(0, 0, 2, 1), 1.0);
        assert_eq!(x.at(0, 1, 2, 1), 0.0);
        // Background is -1.
        assert_eq!(x.at(0, 0, 0, 0), -1.0);
        // Connectivity scaled by lambda.
        assert!((x.at(0, 3, 3, 3) - cfg.lambda_connect).abs() < 1e-6);
    }

    #[test]
    fn grayscale_input_has_two_channels() {
        let cfg = ExperimentConfig {
            resolution: 8,
            grayscale_input: true,
            ..ExperimentConfig::test()
        };
        let (p, c) = images(8);
        let x = assemble_input(&p, &c, &cfg);
        assert_eq!(x.shape(), [1, 2, 8, 8]);
    }

    #[test]
    fn target_roundtrip_through_image() {
        let mut img = Image::zeros(4, 4, 3);
        img.set(1, 2, 0, 0.75);
        img.set(0, 0, 2, 0.25);
        let t = assemble_target(&img);
        assert!((t.at(0, 0, 2, 1) - 0.5).abs() < 1e-6);
        let back = tensor_to_image(&t);
        assert!(back.mean_abs_diff(&img).unwrap() < 1e-6);
    }

    #[test]
    fn tensor_to_image_clamps() {
        let t = Tensor::from_vec([1, 1, 1, 2], vec![-5.0, 5.0]);
        let img = tensor_to_image(&t);
        assert_eq!(img.get(0, 0, 0), 0.0);
        assert_eq!(img.get(1, 0, 0), 1.0);
    }
}
