//! The paper's §5.4 applications: placement exploration for minimum
//! congestion, *constrained* placement exploration (Figure 9) and
//! real-time congestion forecasting during simulated annealing.

use crate::config::ExperimentConfig;
use crate::dataset::DesignDataset;
use crate::error::CoreError;
use crate::features::{assemble_input, tensor_to_image};
use crate::forecaster::{ExclusiveForecaster, Forecaster};
use crate::trainer::Pix2Pix;
use pop_arch::Arch;
use pop_netlist::Netlist;
use pop_place::{Annealer, PlaceOptions};
use pop_raster::{render_connectivity, render_placement, Image, Layout, PixelOwner};

/// A floorplan region over which congestion is aggregated — the objectives
/// of Figure 9 ("min-congestion at the upper side / lower side /
/// right-hand side of the floor plan").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Region {
    /// The whole floorplan.
    Overall,
    /// Upper half of the image.
    Upper,
    /// Lower half of the image.
    Lower,
    /// Right half of the image.
    Right,
    /// Left half of the image.
    Left,
}

impl Region {
    /// Whether image pixel `(px, py)` (y down) belongs to the region.
    pub fn contains(&self, px: usize, py: usize, side: usize) -> bool {
        match self {
            Region::Overall => true,
            Region::Upper => py < side / 2,
            Region::Lower => py >= side / 2,
            Region::Right => px >= side / 2,
            Region::Left => px < side / 2,
        }
    }
}

/// Whether exploration seeks the least or the most congested placement
/// (Figure 9 includes an overall-max objective).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Objective {
    /// Select the placement minimising regional congestion.
    Min,
    /// Select the placement maximising regional congestion.
    Max,
}

/// Outcome of one constrained-exploration query.
#[derive(Debug, Clone, PartialEq)]
pub struct ExplorationResult {
    /// Queried region.
    pub region: Region,
    /// Min or max.
    pub objective: Objective,
    /// Index (into the dataset's pairs) the model selected.
    pub chosen: usize,
    /// Regional congestion the model predicted for its choice.
    pub predicted_score: f32,
    /// True regional congestion of the chosen placement.
    pub true_score_of_chosen: f32,
    /// Index of the truly optimal placement.
    pub true_best: usize,
    /// Rank (0 = optimal) of the chosen placement under the true ordering.
    pub true_rank_of_chosen: usize,
}

/// Mean decoded channel utilisation of a heat-map image inside `region`.
pub fn region_congestion(
    grid_width: usize,
    grid_height: usize,
    img: &Image,
    region: Region,
) -> f32 {
    let layout = Layout::new(grid_width, grid_height, img.width());
    let side = img.width();
    let mut sum = 0.0f64;
    let mut count = 0usize;
    for py in 0..img.height() {
        for px in 0..img.width() {
            if region.contains(px, py, side) {
                if let PixelOwner::Channel(_) = layout.owner(px, py) {
                    sum += pop_raster::color::utilization_from_color(img.pixel_rgb8(px, py)) as f64;
                    count += 1;
                }
            }
        }
    }
    if count == 0 {
        0.0
    } else {
        (sum / count as f64) as f32
    }
}

/// Figure 9: for each `(region, objective)` query, forecast every placement
/// in the dataset, choose the best under the *predicted* regional
/// congestion, and report how that choice ranks under the *true* regional
/// congestion.
pub fn constrained_exploration(
    model: &mut Pix2Pix,
    ds: &DesignDataset,
    queries: &[(Region, Objective)],
) -> Vec<ExplorationResult> {
    // Forecast each placement once; score per query afterwards.
    let predicted: Vec<Image> = ds
        .pairs
        .iter()
        .map(|p| model.forecast_image(&p.x))
        .collect();
    let truth: Vec<Image> = ds.pairs.iter().map(|p| tensor_to_image(&p.y)).collect();

    let mut results = Vec::with_capacity(queries.len());
    for &(region, objective) in queries {
        let pred_scores: Vec<f32> = predicted
            .iter()
            .map(|img| region_congestion(ds.grid_width, ds.grid_height, img, region))
            .collect();
        let true_scores: Vec<f32> = truth
            .iter()
            .map(|img| region_congestion(ds.grid_width, ds.grid_height, img, region))
            .collect();
        let better = |a: f32, b: f32| match objective {
            Objective::Min => a < b,
            Objective::Max => a > b,
        };
        let argbest = |scores: &[f32]| -> usize {
            let mut best = 0;
            for i in 1..scores.len() {
                if better(scores[i], scores[best]) {
                    best = i;
                }
            }
            best
        };
        let chosen = argbest(&pred_scores);
        let true_best = argbest(&true_scores);
        let mut order: Vec<usize> = (0..true_scores.len()).collect();
        order.sort_by(|&a, &b| {
            let cmp = true_scores[a].total_cmp(&true_scores[b]);
            match objective {
                Objective::Min => cmp.then(a.cmp(&b)),
                Objective::Max => cmp.reverse().then(a.cmp(&b)),
            }
        });
        let true_rank_of_chosen = order.iter().position(|&i| i == chosen).unwrap_or(0);
        results.push(ExplorationResult {
            region,
            objective,
            chosen,
            predicted_score: pred_scores[chosen],
            true_score_of_chosen: true_scores[chosen],
            true_best,
            true_rank_of_chosen,
        });
    }
    results
}

/// One observation of the §5.4 real-time forecast: the state of the
/// annealer plus the congestion forecast at that instant.
#[derive(Debug, Clone, PartialEq)]
pub struct RealtimeSnapshot {
    /// Annealing moves performed so far.
    pub moves: u64,
    /// Placement cost at the snapshot.
    pub cost: f64,
    /// Annealer temperature at the snapshot.
    pub temperature: f64,
    /// Model-predicted mean channel congestion for the current (partial)
    /// placement.
    pub predicted_mean_congestion: f32,
}

/// Forecasts congestion *while the design is being placed*: steps the
/// annealer, renders the in-flight placement, and runs the generator on it
/// — the paper's "visualizing the simulated annealing placement algorithm"
/// demo, producing the series its GIF animates.
///
/// # Errors
///
/// Propagates placement construction failures.
pub fn realtime_forecast(
    model: &mut Pix2Pix,
    arch: &Arch,
    netlist: &Netlist,
    place_options: &PlaceOptions,
    config: &ExperimentConfig,
    snapshot_every: u64,
    max_snapshots: usize,
) -> Result<Vec<RealtimeSnapshot>, CoreError> {
    realtime_forecast_with(
        &ExclusiveForecaster::new(model),
        arch,
        netlist,
        place_options,
        config,
        snapshot_every,
        max_snapshots,
    )
}

/// [`realtime_forecast`] over any shared [`Forecaster`] — the entry point
/// the serving engine plugs into: an annealer callback can hold a cheap
/// client handle while a `pop-serve` engine batches its forecasts with
/// everyone else's.
///
/// # Errors
///
/// Propagates placement construction and forecast-transport failures.
pub fn realtime_forecast_with<F: Forecaster>(
    forecaster: &F,
    arch: &Arch,
    netlist: &Netlist,
    place_options: &PlaceOptions,
    config: &ExperimentConfig,
    snapshot_every: u64,
    max_snapshots: usize,
) -> Result<Vec<RealtimeSnapshot>, CoreError> {
    let mut annealer = Annealer::new(arch, netlist, place_options)?;
    let mut out = Vec::new();
    while !annealer.is_done() && out.len() < max_snapshots {
        let stats = annealer.step(snapshot_every);
        let img_place = render_placement(arch, netlist, annealer.placement(), config.resolution);
        let img_connect =
            render_connectivity(arch, netlist, annealer.placement(), config.resolution);
        let x = assemble_input(&img_place, &img_connect, config);
        let img = forecaster.forecast_image(&x)?;
        let predicted = crate::metrics::image_mean_congestion(arch.width(), arch.height(), &img);
        out.push(RealtimeSnapshot {
            moves: stats.moves,
            cost: stats.cost,
            temperature: stats.temperature,
            predicted_mean_congestion: predicted,
        });
    }
    Ok(out)
}

/// Outcome of [`congestion_aware_place`].
#[derive(Debug, Clone, PartialEq)]
pub struct CongestionAwarePlacement {
    /// The selected placement.
    pub placement: pop_place::Placement,
    /// Predicted mean congestion of the selected placement.
    pub predicted_congestion: f32,
    /// Predicted mean congestion of the annealer's *final* placement (what
    /// a congestion-blind flow would have shipped).
    pub final_predicted_congestion: f32,
    /// Annealer move count at which the selected snapshot was taken.
    pub selected_at_moves: u64,
    /// Total snapshots evaluated.
    pub snapshots: usize,
}

/// Congestion-aware placement — the design-closure loop the paper's
/// introduction motivates: run the annealer, forecast the congestion of
/// periodic snapshots, and ship the snapshot with the lowest *predicted*
/// congestion instead of blindly taking the final wirelength-optimal
/// placement. Routing never enters the loop.
///
/// Snapshots before `warmup_moves` are ignored (early random placements
/// forecast low congestion simply because nets are spread thin, but they
/// are not routable targets anyone would ship).
///
/// # Errors
///
/// Propagates placement construction failures.
#[allow(clippy::too_many_arguments)]
pub fn congestion_aware_place(
    model: &mut Pix2Pix,
    arch: &Arch,
    netlist: &Netlist,
    place_options: &PlaceOptions,
    config: &ExperimentConfig,
    snapshot_every: u64,
    warmup_moves: u64,
) -> Result<CongestionAwarePlacement, CoreError> {
    let mut annealer = Annealer::new(arch, netlist, place_options)?;
    let mut best: Option<(f32, pop_place::Placement, u64)> = None;
    let mut snapshots = 0usize;
    let mut last_pred = 0.0f32;
    while !annealer.is_done() {
        let stats = annealer.step(snapshot_every);
        let img_place = render_placement(arch, netlist, annealer.placement(), config.resolution);
        let img_connect =
            render_connectivity(arch, netlist, annealer.placement(), config.resolution);
        let x = assemble_input(&img_place, &img_connect, config);
        let img = model.forecast_image(&x);
        last_pred = crate::metrics::image_mean_congestion(arch.width(), arch.height(), &img);
        snapshots += 1;
        if stats.moves < warmup_moves {
            continue;
        }
        let better = match &best {
            None => true,
            Some((b, _, _)) => last_pred < *b,
        };
        if better {
            best = Some((last_pred, annealer.placement().clone(), stats.moves));
        }
    }
    let (predicted, placement, at) = best.unwrap_or_else(|| {
        (
            last_pred,
            annealer.placement().clone(),
            annealer.stats().moves,
        )
    });
    Ok(CongestionAwarePlacement {
        placement,
        predicted_congestion: predicted,
        final_predicted_congestion: last_pred,
        selected_at_moves: at,
        snapshots,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn regions_partition_the_image() {
        let side = 10;
        for py in 0..side {
            for px in 0..side {
                assert!(Region::Overall.contains(px, py, side));
                assert_ne!(
                    Region::Upper.contains(px, py, side),
                    Region::Lower.contains(px, py, side)
                );
                assert_ne!(
                    Region::Left.contains(px, py, side),
                    Region::Right.contains(px, py, side)
                );
            }
        }
    }

    #[test]
    fn congestion_aware_place_returns_legal_placement() {
        use crate::dataset::{build_design_dataset, design_fabric};
        use crate::ExperimentConfig;
        let config = ExperimentConfig {
            pairs_per_design: 4,
            epochs: 2,
            ..ExperimentConfig::test()
        };
        let spec = pop_netlist::presets::by_name("diffeq1").unwrap();
        let ds = build_design_dataset(&spec, &config).unwrap();
        let mut model = crate::Pix2Pix::new(&config, 23).unwrap();
        let _ = model.train(&ds.pairs, config.epochs);
        let (arch, netlist, _) = design_fabric(&spec, &config).unwrap();
        let result = congestion_aware_place(
            &mut model,
            &arch,
            &netlist,
            &PlaceOptions::default(),
            &config,
            1_500,
            1_500,
        )
        .unwrap();
        result.placement.verify(&arch, &netlist).unwrap();
        assert!(result.snapshots > 0);
        assert!(
            result.predicted_congestion <= result.final_predicted_congestion + 1e-6,
            "selected snapshot must not be worse than the final placement: {} vs {}",
            result.predicted_congestion,
            result.final_predicted_congestion
        );
    }

    #[test]
    fn region_congestion_distinguishes_halves() {
        use pop_arch::Arch;
        use pop_route::CongestionMap;
        let netlist = pop_netlist::generate(
            &pop_netlist::presets::by_name("diffeq2")
                .unwrap()
                .scaled(0.01),
        );
        let (c, i, m, x) = netlist.site_demand();
        let arch = Arch::auto_size(c, i, m, x, 8, 1.3).unwrap();
        // Congest only the upper half of the grid (high y).
        let mut util = vec![0.0f32; arch.channel_count()];
        for ch in arch.channels() {
            let (_, y) = ch.midpoint();
            if y > arch.height() as f32 / 2.0 {
                util[arch.channel_index(ch)] = 1.0;
            }
        }
        let cong = CongestionMap::from_utilization(&arch, util);
        let placement = pop_place::place(&arch, &netlist, &Default::default()).unwrap();
        let img = pop_raster::render_congestion(&arch, &netlist, &placement, &cong, 64);
        // Grid-north is image-top: Upper must be much hotter than Lower.
        let upper = region_congestion(arch.width(), arch.height(), &img, Region::Upper);
        let lower = region_congestion(arch.width(), arch.height(), &img, Region::Lower);
        assert!(
            upper > lower + 0.3,
            "upper {upper} should exceed lower {lower}"
        );
    }
}
