use crate::config::SkipMode;
use crate::quant::{QuantDecBlock, QuantEncBlock, QuantizedGenerator};
use pop_nn::{
    BatchNorm2d, Conv2d, ConvTranspose2d, Dropout, Layer, LeakyRelu, Param, Relu, Tanh, Tensor,
};

/// One encoder block: `Conv(4, stride 2, pad 1) → [BatchNorm] → LeakyReLU`.
#[derive(Debug, Clone)]
struct EncBlock {
    conv: Conv2d,
    bn: Option<BatchNorm2d>,
    act: LeakyRelu,
}

impl EncBlock {
    fn forward(&mut self, x: &Tensor, train: bool) -> Tensor {
        let y = self.conv.forward(x, train);
        let y = match &mut self.bn {
            Some(bn) => bn.forward(&y, train),
            None => y,
        };
        self.act.forward(&y, train)
    }

    fn backward(&mut self, grad: &Tensor) -> Tensor {
        let g = self.act.backward(grad);
        let g = match &mut self.bn {
            Some(bn) => bn.backward(&g),
            None => g,
        };
        self.conv.backward(&g)
    }

    fn params_mut(&mut self) -> Vec<&mut Param> {
        let mut p = self.conv.params_mut();
        if let Some(bn) = &mut self.bn {
            p.extend(bn.params_mut());
        }
        p
    }

    fn buffers_mut(&mut self) -> Vec<&mut Vec<f32>> {
        match &mut self.bn {
            Some(bn) => bn.buffers_mut(),
            None => Vec::new(),
        }
    }
}

/// One decoder block:
/// `ConvT(4, stride 2, pad 1) → [BatchNorm] → [Dropout] → ReLU`, or
/// `ConvT → Tanh` for the output block.
#[derive(Debug, Clone)]
struct DecBlock {
    deconv: ConvTranspose2d,
    bn: Option<BatchNorm2d>,
    dropout: Option<Dropout>,
    relu: Option<Relu>,
    tanh: Option<Tanh>,
}

impl DecBlock {
    fn forward(&mut self, x: &Tensor, train: bool) -> Tensor {
        let y = self.deconv.forward(x, train);
        let y = match &mut self.bn {
            Some(bn) => bn.forward(&y, train),
            None => y,
        };
        let y = match &mut self.dropout {
            Some(d) => d.forward(&y, train),
            None => y,
        };
        if let Some(r) = &mut self.relu {
            r.forward(&y, train)
        } else if let Some(t) = &mut self.tanh {
            t.forward(&y, train)
        } else {
            y
        }
    }

    fn backward(&mut self, grad: &Tensor) -> Tensor {
        let g = if let Some(r) = &mut self.relu {
            r.backward(grad)
        } else if let Some(t) = &mut self.tanh {
            t.backward(grad)
        } else {
            grad.clone()
        };
        let g = match &mut self.dropout {
            Some(d) => d.backward(&g),
            None => g,
        };
        let g = match &mut self.bn {
            Some(bn) => bn.backward(&g),
            None => g,
        };
        self.deconv.backward(&g)
    }

    fn params_mut(&mut self) -> Vec<&mut Param> {
        let mut p = self.deconv.params_mut();
        if let Some(bn) = &mut self.bn {
            p.extend(bn.params_mut());
        }
        p
    }

    fn buffers_mut(&mut self) -> Vec<&mut Vec<f32>> {
        match &mut self.bn {
            Some(bn) => bn.buffers_mut(),
            None => Vec::new(),
        }
    }
}

/// The paper's generator: a U-Net FCN (Figure 5, left half).
///
/// `depth` stride-2 convolutions halve the input down to the bottleneck,
/// then `depth` transposed convolutions paint it back up; skip connections
/// concatenate each encoder activation onto the same-resolution decoder
/// input. [`SkipMode`] selects the §5.3 ablation variants (all skips /
/// single skip / none), and dropout in the first decoder blocks provides
/// the GAN noise `z` exactly as in pix2pix.
///
/// Channel plan (base filters `f`): encoder `f, 2f, 4f, 8f, 8f, …` capped
/// at `8f` — for `depth = 8, f = 64` this is precisely the
/// `64 → 128 → 256 → 512 → 512 → 512 → 512 → 512` column of Figure 5.
#[derive(Debug, Clone)]
pub struct UNetGenerator {
    enc: Vec<EncBlock>,
    dec: Vec<DecBlock>,
    skip_at: Vec<bool>,
    enc_ch: Vec<usize>,
    dec_out_ch: Vec<usize>,
    in_channels: usize,
    out_channels: usize,
    skip_grads: Vec<Option<Tensor>>,
}

impl UNetGenerator {
    /// Builds the generator.
    ///
    /// # Panics
    ///
    /// Panics when `depth == 0` or `base_filters == 0` (configs should be
    /// validated through
    /// [`ExperimentConfig::validate`](crate::ExperimentConfig::validate)
    /// first).
    pub fn new(
        in_channels: usize,
        out_channels: usize,
        base_filters: usize,
        depth: usize,
        skip: SkipMode,
        seed: u64,
    ) -> Self {
        assert!(depth > 0, "depth must be positive");
        assert!(base_filters > 0, "base_filters must be positive");
        let enc_ch: Vec<usize> = (0..depth)
            .map(|i| base_filters * (1usize << i.min(3)))
            .collect();
        let skip_at: Vec<bool> = (0..depth)
            .map(|i| match skip {
                SkipMode::All => i >= 1,
                SkipMode::Single => i == depth - 1 && depth > 1,
                SkipMode::None => false,
            })
            .collect();

        let mut enc = Vec::with_capacity(depth);
        for i in 0..depth {
            let cin = if i == 0 { in_channels } else { enc_ch[i - 1] };
            enc.push(EncBlock {
                conv: Conv2d::new(
                    cin,
                    enc_ch[i],
                    4,
                    2,
                    1,
                    seed.wrapping_add(i as u64 * 31 + 1),
                ),
                bn: (i != 0 && i != depth - 1).then(|| BatchNorm2d::new(enc_ch[i])),
                act: LeakyRelu::default(),
            });
        }

        let mut dec_out_ch = Vec::with_capacity(depth);
        for i in 0..depth {
            dec_out_ch.push(if i == depth - 1 {
                out_channels
            } else {
                enc_ch[depth - 2 - i]
            });
        }
        let mut dec = Vec::with_capacity(depth);
        for i in 0..depth {
            let cin = if i == 0 {
                enc_ch[depth - 1]
            } else {
                dec_out_ch[i - 1] + if skip_at[i] { enc_ch[depth - 1 - i] } else { 0 }
            };
            let is_last = i == depth - 1;
            dec.push(DecBlock {
                deconv: ConvTranspose2d::new(
                    cin,
                    dec_out_ch[i],
                    4,
                    2,
                    1,
                    seed.wrapping_add(1000 + i as u64 * 37),
                ),
                bn: (!is_last).then(|| BatchNorm2d::new(dec_out_ch[i])),
                dropout: (!is_last && i < 3)
                    .then(|| Dropout::new(0.5, seed.wrapping_add(2000 + i as u64))),
                relu: (!is_last).then(Relu::new),
                tanh: is_last.then(Tanh::new),
            });
        }

        UNetGenerator {
            enc,
            dec,
            skip_at,
            enc_ch,
            dec_out_ch,
            in_channels,
            out_channels,
            skip_grads: Vec::new(),
        }
    }

    /// Number of down/up levels.
    pub fn depth(&self) -> usize {
        self.enc.len()
    }

    /// Input channel count.
    pub fn in_channels(&self) -> usize {
        self.in_channels
    }

    /// Output channel count.
    pub fn out_channels(&self) -> usize {
        self.out_channels
    }

    /// Total trainable scalars.
    pub fn parameter_count(&mut self) -> usize {
        self.params_mut().iter().map(|p| p.len()).sum()
    }

    /// Encoder channel widths per level (Figure 5 left column).
    pub fn encoder_channels(&self) -> &[usize] {
        &self.enc_ch
    }

    /// Decoder output channel widths per level.
    pub fn decoder_channels(&self) -> &[usize] {
        &self.dec_out_ch
    }

    /// Freezes this generator into an i8 inference snapshot
    /// ([`QuantizedGenerator`]): batch-norm running statistics are folded
    /// into each convolution's weights before quantization, dropout is
    /// dropped (inference identity), activations are carried over.
    pub fn quantize(&self) -> QuantizedGenerator {
        let enc = self
            .enc
            .iter()
            .map(|b| {
                let affine = b.bn.as_ref().map(|bn| bn.inference_affine());
                QuantEncBlock {
                    conv: b
                        .conv
                        .quantize(affine.as_ref().map(|(a, s)| (a.as_slice(), s.as_slice()))),
                    alpha: b.act.alpha(),
                }
            })
            .collect();
        let dec = self
            .dec
            .iter()
            .map(|b| {
                let affine = b.bn.as_ref().map(|bn| bn.inference_affine());
                QuantDecBlock {
                    deconv: b
                        .deconv
                        .quantize(affine.as_ref().map(|(a, s)| (a.as_slice(), s.as_slice()))),
                    tanh: b.tanh.is_some(),
                }
            })
            .collect();
        QuantizedGenerator::from_parts(enc, dec, self.skip_at.clone(), self.in_channels)
    }
}

impl Layer for UNetGenerator {
    fn forward(&mut self, x: &Tensor, train: bool) -> Tensor {
        assert_eq!(x.c(), self.in_channels, "generator input channels");
        let depth = self.enc.len();
        let mut e: Vec<Tensor> = Vec::with_capacity(depth);
        let mut cur = x.clone();
        for block in &mut self.enc {
            cur = block.forward(&cur, train);
            e.push(cur.clone());
        }
        let mut u = e[depth - 1].clone();
        for i in 0..depth {
            let input = if i == 0 || !self.skip_at[i] {
                u
            } else {
                u.concat_channels(&e[depth - 1 - i])
            };
            u = self.dec[i].forward(&input, train);
        }
        u
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let depth = self.enc.len();
        self.skip_grads = (0..depth).map(|_| None).collect();
        let mut g = grad_out.clone();
        for i in (0..depth).rev() {
            let gi = self.dec[i].backward(&g);
            if i == 0 {
                g = gi;
            } else if self.skip_at[i] {
                let (gu, ge) = gi.split_channels(self.dec_out_ch[i - 1]);
                self.skip_grads[depth - 1 - i] = Some(ge);
                g = gu;
            } else {
                g = gi;
            }
        }
        // g is now dL/d(e[depth-1]); walk the encoder back, merging skip
        // contributions at each level.
        for i in (0..depth).rev() {
            if let Some(sg) = self.skip_grads[i].take() {
                g.add_assign(&sg);
            }
            g = self.enc[i].backward(&g);
        }
        g
    }

    fn params_mut(&mut self) -> Vec<&mut Param> {
        let mut out = Vec::new();
        for b in &mut self.enc {
            out.extend(b.params_mut());
        }
        for b in &mut self.dec {
            out.extend(b.params_mut());
        }
        out
    }

    fn buffers_mut(&mut self) -> Vec<&mut Vec<f32>> {
        let mut out = Vec::new();
        for b in &mut self.enc {
            out.extend(b.buffers_mut());
        }
        for b in &mut self.dec {
            out.extend(b.buffers_mut());
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny(skip: SkipMode) -> UNetGenerator {
        UNetGenerator::new(4, 3, 4, 3, skip, 11)
    }

    #[test]
    fn forward_shape_roundtrip() {
        for skip in [SkipMode::All, SkipMode::Single, SkipMode::None] {
            let mut g = tiny(skip);
            let x = Tensor::randn([1, 4, 16, 16], 0.0, 1.0, 1);
            let y = g.forward(&x, true);
            assert_eq!(y.shape(), [1, 3, 16, 16], "{skip:?}");
            // Output is tanh-bounded.
            assert!(y.data().iter().all(|v| (-1.0..=1.0).contains(v)));
        }
    }

    #[test]
    fn backward_shape_roundtrip() {
        for skip in [SkipMode::All, SkipMode::Single, SkipMode::None] {
            let mut g = tiny(skip);
            let x = Tensor::randn([1, 4, 16, 16], 0.0, 1.0, 2);
            let y = g.forward(&x, true);
            let dx = g.backward(&y);
            assert_eq!(dx.shape(), x.shape(), "{skip:?}");
            assert!(dx.data().iter().all(|v| v.is_finite()));
        }
    }

    #[test]
    fn paper_channel_plan_at_depth8() {
        let g = UNetGenerator::new(4, 3, 64, 8, SkipMode::All, 0);
        assert_eq!(
            g.enc_ch,
            vec![64, 128, 256, 512, 512, 512, 512, 512],
            "Figure 5 encoder channels"
        );
        assert_eq!(
            g.dec_out_ch,
            vec![512, 512, 512, 512, 256, 128, 64, 3],
            "Figure 5 decoder channels"
        );
    }

    #[test]
    fn skip_modes_have_expected_connections() {
        let all = UNetGenerator::new(4, 3, 4, 4, SkipMode::All, 0);
        assert_eq!(all.skip_at, vec![false, true, true, true]);
        let single = UNetGenerator::new(4, 3, 4, 4, SkipMode::Single, 0);
        assert_eq!(single.skip_at, vec![false, false, false, true]);
        let none = UNetGenerator::new(4, 3, 4, 4, SkipMode::None, 0);
        assert_eq!(none.skip_at, vec![false; 4]);
    }

    #[test]
    fn more_skips_mean_more_parameters() {
        let mut all = UNetGenerator::new(4, 3, 4, 4, SkipMode::All, 0);
        let mut single = UNetGenerator::new(4, 3, 4, 4, SkipMode::Single, 0);
        let mut none = UNetGenerator::new(4, 3, 4, 4, SkipMode::None, 0);
        let (a, s, n) = (
            all.parameter_count(),
            single.parameter_count(),
            none.parameter_count(),
        );
        assert!(a > s, "all {a} vs single {s}");
        assert!(s > n, "single {s} vs none {n}");
    }

    #[test]
    fn gradients_flow_to_all_parameters() {
        let mut g = tiny(SkipMode::All);
        let x = Tensor::randn([1, 4, 16, 16], 0.0, 1.0, 3);
        let y = g.forward(&x, true);
        g.zero_grad();
        let _ = g.forward(&x, true);
        let _ = g.backward(&Tensor::full(y.shape(), 1.0));
        for (i, p) in g.params_mut().iter().enumerate() {
            let mag: f32 = p.grad.data().iter().map(|v| v.abs()).sum();
            assert!(mag > 0.0, "parameter {i} received no gradient");
        }
    }

    #[test]
    fn training_reduces_reconstruction_loss() {
        use pop_nn::{loss::l1_loss, Adam};
        let mut g = UNetGenerator::new(2, 1, 4, 2, SkipMode::All, 5);
        let x = Tensor::randn([1, 2, 8, 8], 0.0, 0.5, 6);
        let target = Tensor::full([1, 1, 8, 8], 0.5);
        let mut adam = Adam::new(2e-3, 0.5, 0.999, 1e-8);
        let (first, _) = l1_loss(&g.forward(&x, true), &target);
        let mut last = first;
        for _ in 0..30 {
            let y = g.forward(&x, true);
            let (l, grad) = l1_loss(&y, &target);
            last = l;
            g.zero_grad();
            let _ = g.backward(&grad);
            adam.step(&mut g.params_mut());
        }
        assert!(last < first * 0.7, "L1 should shrink: {first} -> {last}");
    }

    #[test]
    fn batched_eval_forward_is_bitwise_identical_to_per_sample() {
        // The serving engine's correctness hinges on this: stacking inputs
        // along the batch axis and forwarding once (eval mode, dropout off,
        // batch-norm running stats) must reproduce each per-sample forward
        // bit for bit — conv/norm/activation all treat batch elements
        // independently at inference.
        for skip in [SkipMode::All, SkipMode::Single, SkipMode::None] {
            let mut g = tiny(skip);
            let xs: Vec<Tensor> = (0..4)
                .map(|s| Tensor::randn([1, 4, 16, 16], 0.0, 1.0, 50 + s))
                .collect();
            let singles: Vec<Tensor> = xs.iter().map(|x| g.forward(x, false)).collect();
            let refs: Vec<&Tensor> = xs.iter().collect();
            let batched = g.forward(&Tensor::stack_batch(&refs), false);
            assert_eq!(batched.n(), 4);
            for (i, (part, single)) in batched.split_batch().iter().zip(&singles).enumerate() {
                assert_eq!(part, single, "sample {i} diverged under {skip:?}");
            }
        }
    }

    #[test]
    fn inference_is_deterministic_without_dropout() {
        let mut g = tiny(SkipMode::All);
        let x = Tensor::randn([1, 4, 16, 16], 0.0, 1.0, 7);
        let a = g.forward(&x, false);
        let b = g.forward(&x, false);
        assert_eq!(a, b);
    }
}
