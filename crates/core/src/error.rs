use std::error::Error;
use std::fmt;

/// Errors produced by the forecasting pipeline.
#[derive(Debug)]
pub enum CoreError {
    /// Configuration is internally inconsistent (e.g. resolution not a
    /// power of two, depth too deep for the resolution).
    BadConfig(String),
    /// Dataset generation failed in a substrate (placement / routing).
    Pipeline(String),
    /// Disk-cache I/O or format failure.
    Cache(String),
    /// An evaluation could not be computed (e.g. a model/dataset
    /// resolution mismatch in a mixed-resolution corpus).
    Eval(String),
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::BadConfig(m) => write!(f, "bad experiment config: {m}"),
            CoreError::Pipeline(m) => write!(f, "dataset pipeline failed: {m}"),
            CoreError::Cache(m) => write!(f, "dataset cache failed: {m}"),
            CoreError::Eval(m) => write!(f, "evaluation failed: {m}"),
        }
    }
}

impl Error for CoreError {}

impl From<pop_place::PlaceError> for CoreError {
    fn from(e: pop_place::PlaceError) -> Self {
        CoreError::Pipeline(e.to_string())
    }
}

impl From<pop_route::RouteError> for CoreError {
    fn from(e: pop_route::RouteError) -> Self {
        CoreError::Pipeline(e.to_string())
    }
}

impl From<pop_arch::ArchError> for CoreError {
    fn from(e: pop_arch::ArchError) -> Self {
        CoreError::Pipeline(e.to_string())
    }
}

impl From<std::io::Error> for CoreError {
    fn from(e: std::io::Error) -> Self {
        CoreError::Cache(e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants() {
        assert!(CoreError::BadConfig("x".into())
            .to_string()
            .contains("config"));
        assert!(CoreError::Pipeline("y".into())
            .to_string()
            .contains("pipeline"));
        assert!(CoreError::Cache("z".into()).to_string().contains("cache"));
        assert!(CoreError::Eval("w".into())
            .to_string()
            .contains("evaluation"));
    }

    #[test]
    fn conversions_compile() {
        fn assert_err<E: Error + Send + Sync>() {}
        assert_err::<CoreError>();
    }
}
