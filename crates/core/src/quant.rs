//! Quantized-inference forecaster: an i8 snapshot of a trained generator.
//!
//! [`Pix2Pix::quantized`](crate::Pix2Pix::quantized) freezes the generator
//! into a [`QuantizedGenerator`]: every convolution's weights quantized to
//! the signed-8-bit grid with per-output-channel scales (see
//! [`pop_nn::quant`]), batch-norm running statistics folded into the
//! quantized weights and biases, dropout dropped (inference identity).
//! The result is immutable and lock-free (`&self` forward, no activation
//! caches), so one snapshot serves any number of threads without the
//! mutex or per-worker replica cloning the f32 path needs.
//!
//! Accuracy is gated the same way the eval harness judges models: a
//! [`MetricSet`](crate::MetricSet) sweep over a held-out split must agree
//! with the f32 model within a small tolerance (`quantized_accuracy_gate`
//! below pins the bound CI enforces).

use crate::error::CoreError;
use crate::forecaster::Forecaster;
use pop_nn::quant::{QuantizedConv2d, QuantizedConvTranspose2d};
use pop_nn::Tensor;

/// One quantized encoder block: conv (BN folded) → LeakyReLU.
#[derive(Debug, Clone)]
pub(crate) struct QuantEncBlock {
    pub(crate) conv: QuantizedConv2d,
    pub(crate) alpha: f32,
}

/// One quantized decoder block: deconv (BN folded) → ReLU, or → Tanh for
/// the output block. Dropout is an inference no-op and is dropped.
#[derive(Debug, Clone)]
pub(crate) struct QuantDecBlock {
    pub(crate) deconv: QuantizedConvTranspose2d,
    pub(crate) tanh: bool,
}

/// An inference-only i8 snapshot of a
/// [`UNetGenerator`](crate::UNetGenerator): same topology (skip
/// connections included), quantized convolutions, `&self` forward.
#[derive(Debug, Clone)]
pub struct QuantizedGenerator {
    enc: Vec<QuantEncBlock>,
    dec: Vec<QuantDecBlock>,
    skip_at: Vec<bool>,
    in_channels: usize,
}

impl QuantizedGenerator {
    pub(crate) fn from_parts(
        enc: Vec<QuantEncBlock>,
        dec: Vec<QuantDecBlock>,
        skip_at: Vec<bool>,
        in_channels: usize,
    ) -> Self {
        QuantizedGenerator {
            enc,
            dec,
            skip_at,
            in_channels,
        }
    }

    /// Input channel count.
    pub fn in_channels(&self) -> usize {
        self.in_channels
    }

    /// Number of down/up levels.
    pub fn depth(&self) -> usize {
        self.enc.len()
    }

    /// Inference forward — mirrors the f32
    /// [`UNetGenerator`](crate::UNetGenerator) eval-mode pass exactly
    /// (encoder stack, skip concatenation, decoder stack), with quantized
    /// convolutions.
    ///
    /// # Panics
    ///
    /// Panics when input channels disagree with the generator.
    pub fn forward(&self, x: &Tensor) -> Tensor {
        assert_eq!(x.c(), self.in_channels, "generator input channels");
        let depth = self.enc.len();
        let mut e: Vec<Tensor> = Vec::with_capacity(depth);
        let mut cur = x.clone();
        for block in &self.enc {
            let mut y = block.conv.forward(&cur);
            for v in y.data_mut() {
                if *v < 0.0 {
                    *v *= block.alpha;
                }
            }
            e.push(y.clone());
            cur = y;
        }
        let mut u = e[depth - 1].clone();
        for i in 0..depth {
            let input = if i == 0 || !self.skip_at[i] {
                u
            } else {
                u.concat_channels(&e[depth - 1 - i])
            };
            let mut y = self.dec[i].deconv.forward(&input);
            if self.dec[i].tanh {
                for v in y.data_mut() {
                    *v = v.tanh();
                }
            } else {
                for v in y.data_mut() {
                    if *v < 0.0 {
                        *v = 0.0;
                    }
                }
            }
            u = y;
        }
        u
    }
}

/// A [`Forecaster`] backed by a [`QuantizedGenerator`] — the opt-in
/// quantized replica kind `pop-serve`'s registry can serve next to the
/// f32 one.
#[derive(Debug, Clone)]
pub struct QuantizedForecaster {
    gen: QuantizedGenerator,
}

impl QuantizedForecaster {
    /// Wraps a quantized generator snapshot.
    pub fn new(gen: QuantizedGenerator) -> Self {
        QuantizedForecaster { gen }
    }

    /// The underlying snapshot.
    pub fn generator(&self) -> &QuantizedGenerator {
        &self.gen
    }
}

impl Forecaster for QuantizedForecaster {
    fn forecast(&self, x: &Tensor) -> Result<Tensor, CoreError> {
        Ok(self.gen.forward(x))
    }

    fn forecast_batch(&self, xs: &[&Tensor]) -> Result<Vec<Tensor>, CoreError> {
        if xs.is_empty() {
            return Ok(Vec::new());
        }
        let batch = Tensor::stack_batch(xs);
        Ok(self.gen.forward(&batch).split_batch())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::{Pair, PairMeta};
    use crate::{ExperimentConfig, MetricSet, Pix2Pix, SharedForecaster};
    use pop_nn::Layer;

    fn tiny_config() -> ExperimentConfig {
        ExperimentConfig {
            resolution: 16,
            base_filters: 4,
            depth: 3,
            epochs: 1,
            ..ExperimentConfig::test()
        }
    }

    fn synthetic_pair(cfg: &ExperimentConfig, seed: u64) -> Pair {
        let x = Tensor::randn([1, cfg.input_channels(), 16, 16], 0.0, 0.5, seed);
        let mut y = Tensor::zeros([1, 3, 16, 16]);
        for c in 0..3 {
            for i in 0..16 {
                for j in 0..16 {
                    y.set(0, c, i, j, x.at(0, 0, i, j).tanh());
                }
            }
        }
        Pair {
            x,
            y,
            meta: PairMeta::synthetic(seed),
        }
    }

    #[test]
    fn quantized_forward_tracks_f32_generator() {
        let cfg = tiny_config();
        let mut model = Pix2Pix::new(&cfg, 21).unwrap();
        let q = model.quantized();
        let x = Tensor::randn([2, cfg.input_channels(), 16, 16], 0.0, 0.5, 22);
        let want = model.generator_mut().forward(&x, false);
        let got = q.forecast(&x).unwrap();
        assert_eq!(got.shape(), want.shape());
        // Tanh output is in [-1, 1]; the stacked quantization error through
        // a few layers stays a small fraction of that range.
        let worst = got
            .data()
            .iter()
            .zip(want.data())
            .map(|(a, b)| (a - b).abs())
            .fold(0.0f32, f32::max);
        assert!(worst < 0.1, "worst quantized deviation {worst}");
    }

    #[test]
    fn quantized_batch_matches_per_sample() {
        let cfg = tiny_config();
        let model = Pix2Pix::new(&cfg, 23).unwrap();
        let q = model.quantized();
        let xs: Vec<Tensor> = (0..3)
            .map(|s| Tensor::randn([1, cfg.input_channels(), 16, 16], 0.0, 0.5, 30 + s))
            .collect();
        let refs: Vec<&Tensor> = xs.iter().collect();
        let batched = q.forecast_batch(&refs).unwrap();
        for (i, x) in xs.iter().enumerate() {
            assert_eq!(batched[i], q.forecast(x).unwrap(), "sample {i}");
        }
    }

    /// The accuracy gate: on a held-out split, every `MetricSet` column of
    /// the quantized forecaster must sit within a small delta of the f32
    /// model's. This is the documented tolerance `BENCH_kernels.json`
    /// reports against and the CI kernels step enforces.
    #[test]
    fn quantized_accuracy_gate() {
        let cfg = tiny_config();
        let mut model = Pix2Pix::new(&cfg, 25).unwrap();
        let train: Vec<Pair> = (0..6).map(|s| synthetic_pair(&cfg, 100 + s)).collect();
        let _ = model.train(&train, 30);
        let holdout: Vec<Pair> = (0..8).map(|s| synthetic_pair(&cfg, 900 + s)).collect();

        let metrics = MetricSet::from_config(&cfg);
        let quant = model.quantized();
        let f32_report = metrics
            .evaluate_pairs(&SharedForecaster::new(model), &holdout, 0, 0)
            .map(|evals| metrics.summarize(&evals))
            .unwrap();
        let q_report = metrics
            .evaluate_pairs(&quant, &holdout, 0, 0)
            .map(|evals| metrics.summarize(&evals))
            .unwrap();

        let d_acc = (f32_report.accuracy - q_report.accuracy).abs();
        let d_nrms = (f32_report.nrms - q_report.nrms).abs();
        assert!(
            d_acc <= 0.02,
            "quantized accuracy delta {d_acc} exceeds 0.02 \
             (f32 {}, quantized {})",
            f32_report.accuracy,
            q_report.accuracy
        );
        assert!(
            d_nrms <= 0.02,
            "quantized NRMS delta {d_nrms} exceeds 0.02 \
             (f32 {}, quantized {})",
            f32_report.nrms,
            q_report.nrms
        );
    }
}
