use pop_nn::{BatchNorm2d, Conv2d, Layer, LeakyRelu, Param, Sigmoid, Tensor};

/// The paper's discriminator (Figure 5, right half): a stack of
/// convolutional layers with batch normalisation, ending in a patch of
/// logits — "six layers convolutional layers (with batch normalization)
/// followed by sigmoid function for binary classification".
///
/// For the paper's 256×256 input the plan is
/// `(4+3)·256² → 64·128² → 128·64² → 256·32² → 512·31² → 1·30²`:
/// three stride-2 convolutions, one stride-1, and a stride-1 projection to
/// a 30×30 patch of real/fake decisions. Smaller resolutions reduce the
/// stride-2 count so the final patch stays at least 1×1.
///
/// Training consumes raw logits via
/// [`bce_with_logits`](pop_nn::loss::bce_with_logits); [`Self::probability`]
/// applies the sigmoid for inference-time readout.
#[derive(Debug, Clone)]
pub struct PatchDiscriminator {
    convs: Vec<Conv2d>,
    bns: Vec<Option<BatchNorm2d>>,
    acts: Vec<Option<LeakyRelu>>,
    sigmoid: Sigmoid,
    in_channels: usize,
}

impl PatchDiscriminator {
    /// Builds a discriminator for `in_channels`-channel inputs of side
    /// `resolution`.
    ///
    /// # Panics
    ///
    /// Panics when the resolution is below 8 pixels.
    pub fn new(in_channels: usize, base_filters: usize, resolution: usize, seed: u64) -> Self {
        assert!(resolution >= 8, "discriminator needs at least 8x8 inputs");
        // Choose the stride-2 depth so the two stride-1 k4/p1 layers that
        // follow still produce a >= 1x1 patch (needs side >= 3 after the
        // strided stack).
        let mut n_strided = 0usize;
        let mut side = resolution;
        while n_strided < 3 && side / 2 >= 3 {
            side /= 2;
            n_strided += 1;
        }

        let mut convs = Vec::new();
        let mut bns: Vec<Option<BatchNorm2d>> = Vec::new();
        let mut acts: Vec<Option<LeakyRelu>> = Vec::new();
        let mut cin = in_channels;
        for i in 0..n_strided {
            let cout = base_filters * (1 << i.min(3));
            convs.push(Conv2d::new(
                cin,
                cout,
                4,
                2,
                1,
                seed.wrapping_add(i as u64 * 13),
            ));
            bns.push((i != 0).then(|| BatchNorm2d::new(cout)));
            acts.push(Some(LeakyRelu::default()));
            cin = cout;
        }
        // Penultimate: stride-1 expansion (512 column of Figure 5).
        let cout = base_filters * (1 << n_strided.min(3));
        convs.push(Conv2d::new(cin, cout, 4, 1, 1, seed.wrapping_add(101)));
        bns.push(Some(BatchNorm2d::new(cout)));
        acts.push(Some(LeakyRelu::default()));
        // Final: stride-1 projection to one logit channel.
        convs.push(Conv2d::new(cout, 1, 4, 1, 1, seed.wrapping_add(202)));
        bns.push(None);
        acts.push(None);

        PatchDiscriminator {
            convs,
            bns,
            acts,
            sigmoid: Sigmoid::new(),
            in_channels,
        }
    }

    /// Number of convolutional layers.
    pub fn layer_count(&self) -> usize {
        self.convs.len()
    }

    /// Input channel count (condition + image).
    pub fn in_channels(&self) -> usize {
        self.in_channels
    }

    /// Total trainable scalars.
    pub fn parameter_count(&mut self) -> usize {
        self.params_mut().iter().map(|p| p.len()).sum()
    }

    /// Mean real-probability of an input: sigmoid over the logit patch,
    /// averaged — the scalar "0/1" read-out of Figure 5.
    pub fn probability(&mut self, x: &Tensor) -> f32 {
        let logits = self.forward(x, false);
        let probs = self.sigmoid.forward(&logits, false);
        probs.mean()
    }
}

impl Layer for PatchDiscriminator {
    fn forward(&mut self, x: &Tensor, train: bool) -> Tensor {
        assert_eq!(x.c(), self.in_channels, "discriminator input channels");
        let mut cur = x.clone();
        for i in 0..self.convs.len() {
            cur = self.convs[i].forward(&cur, train);
            if let Some(bn) = &mut self.bns[i] {
                cur = bn.forward(&cur, train);
            }
            if let Some(act) = &mut self.acts[i] {
                cur = act.forward(&cur, train);
            }
        }
        cur
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let mut g = grad_out.clone();
        for i in (0..self.convs.len()).rev() {
            if let Some(act) = &mut self.acts[i] {
                g = act.backward(&g);
            }
            if let Some(bn) = &mut self.bns[i] {
                g = bn.backward(&g);
            }
            g = self.convs[i].backward(&g);
        }
        g
    }

    fn params_mut(&mut self) -> Vec<&mut Param> {
        let mut out = Vec::new();
        for c in &mut self.convs {
            out.extend(c.params_mut());
        }
        for bn in self.bns.iter_mut().flatten() {
            out.extend(bn.params_mut());
        }
        out
    }

    fn buffers_mut(&mut self) -> Vec<&mut Vec<f32>> {
        let mut out = Vec::new();
        for bn in self.bns.iter_mut().flatten() {
            out.extend(bn.buffers_mut());
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_resolution_patch_is_30x30() {
        let mut d = PatchDiscriminator::new(7, 64, 256, 1);
        let x = Tensor::randn([1, 7, 256, 256], 0.0, 0.1, 2);
        let y = d.forward(&x, false);
        assert_eq!(y.shape(), [1, 1, 30, 30], "Figure 5 output patch");
        assert_eq!(d.layer_count(), 5);
    }

    #[test]
    fn small_resolutions_stay_valid() {
        for res in [8usize, 16, 32, 64] {
            let mut d = PatchDiscriminator::new(7, 4, res, 1);
            let x = Tensor::randn([1, 7, res, res], 0.0, 0.1, 3);
            let y = d.forward(&x, true);
            assert!(y.h() >= 1 && y.w() >= 1, "res {res} -> {:?}", y.shape());
        }
    }

    #[test]
    fn backward_matches_input_shape() {
        let mut d = PatchDiscriminator::new(5, 4, 32, 4);
        let x = Tensor::randn([1, 5, 32, 32], 0.0, 0.5, 5);
        let y = d.forward(&x, true);
        let dx = d.backward(&y);
        assert_eq!(dx.shape(), x.shape());
    }

    #[test]
    fn probability_is_a_probability() {
        let mut d = PatchDiscriminator::new(4, 4, 16, 6);
        let x = Tensor::randn([1, 4, 16, 16], 0.0, 1.0, 7);
        let p = d.probability(&x);
        assert!((0.0..=1.0).contains(&p));
    }

    #[test]
    fn can_learn_to_separate_real_and_fake() {
        use pop_nn::{loss::bce_with_logits, Adam};
        let mut d = PatchDiscriminator::new(2, 4, 16, 8);
        let real = Tensor::full([1, 2, 16, 16], 0.8);
        let fake = Tensor::full([1, 2, 16, 16], -0.8);
        let mut adam = Adam::new(1e-3, 0.5, 0.999, 1e-8);
        for _ in 0..40 {
            d.zero_grad();
            let lr = d.forward(&real, true);
            let (_, g) = bce_with_logits(&lr, 1.0);
            let _ = d.backward(&g);
            let lf = d.forward(&fake, true);
            let (_, g) = bce_with_logits(&lf, 0.0);
            let _ = d.backward(&g);
            adam.step(&mut d.params_mut());
        }
        let p_real = d.probability(&real);
        let p_fake = d.probability(&fake);
        assert!(
            p_real > p_fake + 0.2,
            "real {p_real} should beat fake {p_fake}"
        );
    }
}
