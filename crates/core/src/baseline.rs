//! The pre-ML baseline: RUDY analytical congestion estimation, evaluated
//! with the same metrics as the cGAN (per-pixel accuracy on the rendered
//! heat map, Top10 placement retrieval).
//!
//! The paper's premise is that learned forecasting beats analytical
//! estimation at the *detail* level while needing the same inputs. This
//! module quantifies that: [`evaluate_rudy_against`] replays the exact
//! placement sweep of a generated dataset, computes RUDY estimates, and
//! scores them against the dataset's routed ground truth.

use crate::config::ExperimentConfig;
use crate::dataset::{atomic_write, design_fabric, fingerprint, DesignDataset, Fnv1a};
use crate::error::CoreError;
use crate::features::{assemble_target, tensor_to_image};
use crate::metrics::PairEval;
use pop_netlist::SyntheticSpec;
use pop_place::{place, sweep::SweepSpec};
use pop_raster::metrics::per_pixel_accuracy;
use pop_raster::{render_congestion, Image};
use pop_route::{rudy_estimate, CongestionMap};
use std::io::Read;
use std::path::{Path, PathBuf};

/// Baseline quality numbers, directly comparable to a Table 2 row.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BaselineReport {
    /// Mean per-pixel accuracy of the RUDY heat maps vs the routed truth.
    /// Inflated by construction: RUDY renders through the exact
    /// ground-truth pipeline, so every block tile and background pixel is
    /// free — compare [`BaselineReport::channel_accuracy`] for the
    /// like-for-like number.
    pub per_pixel_accuracy: f32,
    /// Mean per-pixel accuracy over **routing-channel pixels only** — the
    /// pixels RUDY actually estimates, and the detail-level comparison a
    /// learned forecaster is expected to win.
    pub channel_accuracy: f32,
    /// Top10 overlap of the RUDY placement ranking vs the routed ranking.
    pub top10: f32,
    /// Calibration factor applied to the raw RUDY densities.
    pub calibration: f32,
}

/// Renders a RUDY estimate as a heat-map image (same encoding as the
/// ground truth, so image metrics apply unchanged).
pub fn rudy_forecast_image(
    arch: &pop_arch::Arch,
    netlist: &pop_netlist::Netlist,
    placement: &pop_place::Placement,
    calibration: f32,
    side: usize,
) -> (Image, CongestionMap) {
    let est = rudy_estimate(arch, netlist, placement, calibration);
    let img = render_congestion(arch, netlist, placement, &est, side);
    (img, est)
}

/// Scores RUDY against a generated dataset's ground truth.
///
/// The dataset's placement sweep is replayed (it is deterministic in the
/// config seed), RUDY is calibrated on the *first* placement by matching
/// mean congestion — the one freebie any practitioner would grant an
/// analytical model — and every placement is then scored blind.
///
/// # Errors
///
/// Propagates substrate failures; returns [`CoreError::Pipeline`] when the
/// replayed sweep disagrees with the dataset (config mismatch).
pub fn evaluate_rudy_against(
    ds: &DesignDataset,
    spec: &SyntheticSpec,
    config: &ExperimentConfig,
) -> Result<BaselineReport, CoreError> {
    let (evals, calibration) = rudy_pair_evals(ds, spec, config)?;
    if evals.is_empty() {
        // Match `MetricSet::summarize(&[])`: an empty evaluation is the
        // all-zero report (NOT a vacuously perfect retrieval — an empty
        // split must never look unbeatable in a baseline comparison).
        return Ok(BaselineReport {
            per_pixel_accuracy: 0.0,
            channel_accuracy: 0.0,
            top10: 0.0,
            calibration,
        });
    }
    let n = evals.len() as f64;
    let pred: Vec<f32> = evals.iter().map(|e| e.pred_congestion).collect();
    let truth: Vec<f32> = evals.iter().map(|e| e.true_congestion).collect();
    Ok(BaselineReport {
        per_pixel_accuracy: (evals.iter().map(|e| e.accuracy as f64).sum::<f64>() / n) as f32,
        channel_accuracy: (evals.iter().map(|e| e.channel_accuracy as f64).sum::<f64>() / n) as f32,
        top10: crate::metrics::top_k_overlap(&pred, &truth, 10),
        calibration,
    })
}

/// Scores RUDY with the same per-pair records ([`PairEval`]) the learned
/// models are scored with, so one
/// [`MetricSet`](crate::metrics::MetricSet) can summarise an analytical
/// baseline and a cGAN **identically** — same accuracy tolerances, same
/// retrieval-set size, same rank correlations. Returns the records plus
/// the mean-matching calibration factor.
///
/// The replay contract matches [`evaluate_rudy_against`]: the dataset's
/// placement sweep is regenerated from `config.seed` (asserted against
/// each pair's provenance), RUDY is calibrated on the first placement,
/// every placement then scored blind.
///
/// # Errors
///
/// Propagates substrate failures; returns [`CoreError::Pipeline`] when the
/// replayed sweep disagrees with the dataset (config mismatch).
pub fn rudy_pair_evals(
    ds: &DesignDataset,
    spec: &SyntheticSpec,
    config: &ExperimentConfig,
) -> Result<(Vec<PairEval>, f32), CoreError> {
    pop_obs::global().counter("eval.baseline.replay").inc();
    rudy_pair_evals_uncounted(ds, spec, config)
}

fn rudy_pair_evals_uncounted(
    ds: &DesignDataset,
    spec: &SyntheticSpec,
    config: &ExperimentConfig,
) -> Result<(Vec<PairEval>, f32), CoreError> {
    let (arch, netlist, _) = design_fabric(spec, config)?;
    let sweep = SweepSpec {
        base_seed: config.seed,
        ..SweepSpec::quick()
    };
    let options = sweep.take(ds.pairs.len());

    let mut calibration = 1.0f32;
    let mut evals = Vec::with_capacity(ds.pairs.len());
    for (i, (popts, pair)) in options.iter().zip(&ds.pairs).enumerate() {
        if popts.seed != pair.meta.place_seed {
            return Err(CoreError::Pipeline(format!(
                "sweep replay mismatch at pair {i}: seed {} vs {}",
                popts.seed, pair.meta.place_seed
            )));
        }
        let placement = place(&arch, &netlist, popts)?;
        let raw = rudy_estimate(&arch, &netlist, &placement, 1.0);
        if i == 0 {
            // Mean-matching calibration on the first placement.
            let raw_mean = raw.mean_utilization();
            if raw_mean > f32::EPSILON {
                calibration = pair.meta.true_mean_congestion / raw_mean;
            }
        }
        let est = rudy_estimate(&arch, &netlist, &placement, calibration);
        let img = render_congestion(&arch, &netlist, &placement, &est, config.resolution);
        let truth_img = tensor_to_image(&pair.y);
        let est_tensor = assemble_target(&img);
        evals.push(PairEval {
            accuracy: per_pixel_accuracy(&img, &truth_img, config.tolerance)
                .map_err(|e| CoreError::Pipeline(e.to_string()))?,
            channel_accuracy: crate::metrics::channel_accuracy(
                arch.width(),
                arch.height(),
                &img,
                &truth_img,
                config.tolerance,
            )?,
            nrms: crate::metrics::nrms(est_tensor.data(), pair.y.data()),
            pred_congestion: est.mean_utilization(),
            true_congestion: pair.meta.true_mean_congestion,
        });
    }
    Ok((evals, calibration))
}

/// Baseline-record cache format magic (versioned: bump on layout change).
const BASELINE_MAGIC: &[u8; 8] = b"POPBL01\n";
/// Upper bound on a plausible record count — mirrors the corpus store's
/// stance that a corrupt length must fail loudly, not allocate wildly.
const MAX_BASELINE_RECORDS: usize = 1 << 20;

/// Fingerprint of everything a cached baseline record set depends on: the
/// corpus identity (the same [`fingerprint`] that keys the pipeline's
/// dataset cache), the scoring tolerance (baked into the accuracy fields)
/// and the split's pair count.
pub fn baseline_fingerprint(
    spec: &SyntheticSpec,
    config: &ExperimentConfig,
    n_pairs: usize,
) -> u64 {
    let mut h = Fnv1a::new();
    h.eat(fingerprint(spec, config));
    h.eat(config.tolerance.to_bits() as u64);
    h.eat(n_pairs as u64);
    h.finish()
}

/// The cache file a baseline record set maps to:
/// `<dir>/<design>-<fingerprint:016x>.popbl` (sibling naming to the
/// corpus store's `.popds` entries).
pub fn baseline_entry_path(dir: &Path, spec: &SyntheticSpec, fp: u64) -> PathBuf {
    dir.join(format!("{}-{fp:016x}.popbl", spec.name))
}

fn write_baseline_file(
    path: &Path,
    fp: u64,
    evals: &[PairEval],
    calibration: f32,
) -> std::io::Result<()> {
    use std::io::Write;
    atomic_write(path, |w| {
        w.write_all(BASELINE_MAGIC)?;
        w.write_all(&fp.to_le_bytes())?;
        w.write_all(&calibration.to_le_bytes())?;
        w.write_all(&(evals.len() as u32).to_le_bytes())?;
        for e in evals {
            for v in [
                e.accuracy,
                e.channel_accuracy,
                e.nrms,
                e.pred_congestion,
                e.true_congestion,
            ] {
                w.write_all(&v.to_le_bytes())?;
            }
        }
        Ok(())
    })
}

/// Parses a baseline cache file; `None` on any mismatch or damage (the
/// caller falls back to a replay, so staleness is never an error).
fn read_baseline_file(path: &Path, fp: u64, n_pairs: usize) -> Option<(Vec<PairEval>, f32)> {
    let mut r = std::io::BufReader::new(std::fs::File::open(path).ok()?);
    let mut magic = [0u8; 8];
    r.read_exact(&mut magic).ok()?;
    if &magic != BASELINE_MAGIC {
        return None;
    }
    let mut b8 = [0u8; 8];
    r.read_exact(&mut b8).ok()?;
    if u64::from_le_bytes(b8) != fp {
        return None;
    }
    let mut b4 = [0u8; 4];
    r.read_exact(&mut b4).ok()?;
    let calibration = f32::from_le_bytes(b4);
    r.read_exact(&mut b4).ok()?;
    let n = u32::from_le_bytes(b4) as usize;
    if n != n_pairs || n > MAX_BASELINE_RECORDS {
        return None;
    }
    let mut evals = Vec::with_capacity(n);
    for _ in 0..n {
        let mut f = [0.0f32; 5];
        for v in &mut f {
            r.read_exact(&mut b4).ok()?;
            *v = f32::from_le_bytes(b4);
        }
        if f.iter().any(|v| !v.is_finite()) {
            return None;
        }
        evals.push(PairEval {
            accuracy: f[0],
            channel_accuracy: f[1],
            nrms: f[2],
            pred_congestion: f[3],
            true_congestion: f[4],
        });
    }
    // Trailing garbage means the file is not what we wrote: treat as stale.
    if r.read(&mut b4).ok()? != 0 {
        return None;
    }
    Some((evals, calibration))
}

/// [`rudy_pair_evals`] with a persistent record cache: with a cache dir,
/// a warm run loads the scored records straight from disk — **zero
/// baseline re-anneals** — because the records are pure functions of the
/// corpus fingerprint, the scoring tolerance and the pair count (all
/// folded into [`baseline_fingerprint`]). Counts one
/// `eval.baseline.cached` on a hit and one `eval.baseline.replay` on the
/// fallback replay, so harness summaries can assert warm runs replayed
/// nothing. Cache write failures are swallowed (the records themselves
/// are still returned); a stale, damaged or non-finite entry falls back
/// to the replay.
///
/// # Errors
///
/// Propagates [`rudy_pair_evals`] failures on the replay path.
pub fn rudy_pair_evals_cached(
    ds: &DesignDataset,
    spec: &SyntheticSpec,
    config: &ExperimentConfig,
    cache_dir: Option<&Path>,
) -> Result<(Vec<PairEval>, f32), CoreError> {
    let Some(dir) = cache_dir else {
        return rudy_pair_evals(ds, spec, config);
    };
    let fp = baseline_fingerprint(spec, config, ds.pairs.len());
    let path = baseline_entry_path(dir, spec, fp);
    if let Some(hit) = read_baseline_file(&path, fp, ds.pairs.len()) {
        pop_obs::global().counter("eval.baseline.cached").inc();
        return Ok(hit);
    }
    let (evals, calibration) = rudy_pair_evals(ds, spec, config)?;
    let _ = write_baseline_file(&path, fp, &evals, calibration);
    Ok((evals, calibration))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::build_design_dataset;
    use pop_netlist::presets;

    #[test]
    fn baseline_scores_are_valid() {
        let config = ExperimentConfig {
            pairs_per_design: 4,
            ..ExperimentConfig::test()
        };
        let spec = presets::by_name("diffeq1").unwrap();
        let ds = build_design_dataset(&spec, &config).unwrap();
        let report = evaluate_rudy_against(&ds, &spec, &config).unwrap();
        assert!((0.0..=1.0).contains(&report.per_pixel_accuracy));
        assert!((0.0..=1.0).contains(&report.channel_accuracy));
        assert!(
            report.channel_accuracy <= report.per_pixel_accuracy,
            "block tiles are free for RUDY, so restricting to channels \
             can only remove freebies ({} vs {})",
            report.channel_accuracy,
            report.per_pixel_accuracy
        );
        assert!((0.0..=1.0).contains(&report.top10));
        assert!(report.calibration > 0.0);
    }

    #[test]
    fn baseline_cache_roundtrips_and_rejects_stale_entries() {
        let config = ExperimentConfig {
            pairs_per_design: 2,
            ..ExperimentConfig::test()
        };
        let spec = presets::by_name("diffeq1").unwrap();
        let ds = build_design_dataset(&spec, &config).unwrap();
        let dir = std::env::temp_dir().join("pop_baseline_cache_test");
        let _ = std::fs::remove_dir_all(&dir);

        // Cold: replays and stores; warm: must load the same records.
        let (cold, cal_cold) = rudy_pair_evals_cached(&ds, &spec, &config, Some(&dir)).unwrap();
        let fp = baseline_fingerprint(&spec, &config, ds.pairs.len());
        assert!(baseline_entry_path(&dir, &spec, fp).exists());
        let (warm, cal_warm) = rudy_pair_evals_cached(&ds, &spec, &config, Some(&dir)).unwrap();
        assert_eq!(cold, warm);
        assert_eq!(cal_cold, cal_warm);

        // A tolerance change must miss (accuracy bakes the tolerance in).
        let other = ExperimentConfig {
            tolerance: config.tolerance + 0.05,
            ..config.clone()
        };
        let fp_other = baseline_fingerprint(&spec, &other, ds.pairs.len());
        assert_ne!(fp, fp_other);

        // A truncated entry must fall back to the replay, then repair.
        let path = baseline_entry_path(&dir, &spec, fp);
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..bytes.len() / 2]).unwrap();
        assert!(read_baseline_file(&path, fp, ds.pairs.len()).is_none());
        let (repaired, _) = rudy_pair_evals_cached(&ds, &spec, &config, Some(&dir)).unwrap();
        assert_eq!(repaired, cold);
        assert_eq!(std::fs::read(&path).unwrap(), bytes);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn replay_mismatch_is_detected() {
        let config = ExperimentConfig {
            pairs_per_design: 2,
            ..ExperimentConfig::test()
        };
        let spec = presets::by_name("diffeq2").unwrap();
        let mut ds = build_design_dataset(&spec, &config).unwrap();
        ds.pairs[0].meta.place_seed = 999; // corrupt provenance
        assert!(matches!(
            evaluate_rudy_against(&ds, &spec, &config),
            Err(CoreError::Pipeline(_))
        ));
    }
}
