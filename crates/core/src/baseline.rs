//! The pre-ML baseline: RUDY analytical congestion estimation, evaluated
//! with the same metrics as the cGAN (per-pixel accuracy on the rendered
//! heat map, Top10 placement retrieval).
//!
//! The paper's premise is that learned forecasting beats analytical
//! estimation at the *detail* level while needing the same inputs. This
//! module quantifies that: [`evaluate_rudy_against`] replays the exact
//! placement sweep of a generated dataset, computes RUDY estimates, and
//! scores them against the dataset's routed ground truth.

use crate::config::ExperimentConfig;
use crate::dataset::{design_fabric, DesignDataset};
use crate::error::CoreError;
use crate::features::tensor_to_image;
use pop_netlist::SyntheticSpec;
use pop_place::{place, sweep::SweepSpec};
use pop_raster::metrics::per_pixel_accuracy;
use pop_raster::{render_congestion, Image};
use pop_route::{rudy_estimate, CongestionMap};

/// Baseline quality numbers, directly comparable to a Table 2 row.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BaselineReport {
    /// Mean per-pixel accuracy of the RUDY heat maps vs the routed truth.
    pub per_pixel_accuracy: f32,
    /// Top10 overlap of the RUDY placement ranking vs the routed ranking.
    pub top10: f32,
    /// Calibration factor applied to the raw RUDY densities.
    pub calibration: f32,
}

/// Renders a RUDY estimate as a heat-map image (same encoding as the
/// ground truth, so image metrics apply unchanged).
pub fn rudy_forecast_image(
    arch: &pop_arch::Arch,
    netlist: &pop_netlist::Netlist,
    placement: &pop_place::Placement,
    calibration: f32,
    side: usize,
) -> (Image, CongestionMap) {
    let est = rudy_estimate(arch, netlist, placement, calibration);
    let img = render_congestion(arch, netlist, placement, &est, side);
    (img, est)
}

/// Scores RUDY against a generated dataset's ground truth.
///
/// The dataset's placement sweep is replayed (it is deterministic in the
/// config seed), RUDY is calibrated on the *first* placement by matching
/// mean congestion — the one freebie any practitioner would grant an
/// analytical model — and every placement is then scored blind.
///
/// # Errors
///
/// Propagates substrate failures; returns [`CoreError::Pipeline`] when the
/// replayed sweep disagrees with the dataset (config mismatch).
pub fn evaluate_rudy_against(
    ds: &DesignDataset,
    spec: &SyntheticSpec,
    config: &ExperimentConfig,
) -> Result<BaselineReport, CoreError> {
    let (arch, netlist, _) = design_fabric(spec, config)?;
    let sweep = SweepSpec {
        base_seed: config.seed,
        ..SweepSpec::quick()
    };
    let options = sweep.take(ds.pairs.len());

    let mut calibration = 1.0f32;
    let mut acc_sum = 0.0f64;
    let mut pred_scores = Vec::with_capacity(ds.pairs.len());
    let mut true_scores = Vec::with_capacity(ds.pairs.len());
    for (i, (popts, pair)) in options.iter().zip(&ds.pairs).enumerate() {
        if popts.seed != pair.meta.place_seed {
            return Err(CoreError::Pipeline(format!(
                "sweep replay mismatch at pair {i}: seed {} vs {}",
                popts.seed, pair.meta.place_seed
            )));
        }
        let placement = place(&arch, &netlist, popts)?;
        let raw = rudy_estimate(&arch, &netlist, &placement, 1.0);
        if i == 0 {
            // Mean-matching calibration on the first placement.
            let raw_mean = raw.mean_utilization();
            if raw_mean > f32::EPSILON {
                calibration = pair.meta.true_mean_congestion / raw_mean;
            }
        }
        let est = rudy_estimate(&arch, &netlist, &placement, calibration);
        let img = render_congestion(&arch, &netlist, &placement, &est, config.resolution);
        let truth_img = tensor_to_image(&pair.y);
        acc_sum += per_pixel_accuracy(&img, &truth_img, config.tolerance)
            .map_err(|e| CoreError::Pipeline(e.to_string()))? as f64;
        pred_scores.push(est.mean_utilization());
        true_scores.push(pair.meta.true_mean_congestion);
    }
    Ok(BaselineReport {
        per_pixel_accuracy: (acc_sum / ds.pairs.len().max(1) as f64) as f32,
        top10: crate::metrics::top_k_overlap(&pred_scores, &true_scores, 10),
        calibration,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::build_design_dataset;
    use pop_netlist::presets;

    #[test]
    fn baseline_scores_are_valid() {
        let config = ExperimentConfig {
            pairs_per_design: 4,
            ..ExperimentConfig::test()
        };
        let spec = presets::by_name("diffeq1").unwrap();
        let ds = build_design_dataset(&spec, &config).unwrap();
        let report = evaluate_rudy_against(&ds, &spec, &config).unwrap();
        assert!((0.0..=1.0).contains(&report.per_pixel_accuracy));
        assert!((0.0..=1.0).contains(&report.top10));
        assert!(report.calibration > 0.0);
    }

    #[test]
    fn replay_mismatch_is_detected() {
        let config = ExperimentConfig {
            pairs_per_design: 2,
            ..ExperimentConfig::test()
        };
        let spec = presets::by_name("diffeq2").unwrap();
        let mut ds = build_design_dataset(&spec, &config).unwrap();
        ds.pairs[0].meta.place_seed = 999; // corrupt provenance
        assert!(matches!(
            evaluate_rudy_against(&ds, &spec, &config),
            Err(CoreError::Pipeline(_))
        ));
    }
}
