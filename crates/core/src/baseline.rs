//! The pre-ML baseline: RUDY analytical congestion estimation, evaluated
//! with the same metrics as the cGAN (per-pixel accuracy on the rendered
//! heat map, Top10 placement retrieval).
//!
//! The paper's premise is that learned forecasting beats analytical
//! estimation at the *detail* level while needing the same inputs. This
//! module quantifies that: [`evaluate_rudy_against`] replays the exact
//! placement sweep of a generated dataset, computes RUDY estimates, and
//! scores them against the dataset's routed ground truth.

use crate::config::ExperimentConfig;
use crate::dataset::{design_fabric, DesignDataset};
use crate::error::CoreError;
use crate::features::{assemble_target, tensor_to_image};
use crate::metrics::PairEval;
use pop_netlist::SyntheticSpec;
use pop_place::{place, sweep::SweepSpec};
use pop_raster::metrics::per_pixel_accuracy;
use pop_raster::{render_congestion, Image};
use pop_route::{rudy_estimate, CongestionMap};

/// Baseline quality numbers, directly comparable to a Table 2 row.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BaselineReport {
    /// Mean per-pixel accuracy of the RUDY heat maps vs the routed truth.
    /// Inflated by construction: RUDY renders through the exact
    /// ground-truth pipeline, so every block tile and background pixel is
    /// free — compare [`BaselineReport::channel_accuracy`] for the
    /// like-for-like number.
    pub per_pixel_accuracy: f32,
    /// Mean per-pixel accuracy over **routing-channel pixels only** — the
    /// pixels RUDY actually estimates, and the detail-level comparison a
    /// learned forecaster is expected to win.
    pub channel_accuracy: f32,
    /// Top10 overlap of the RUDY placement ranking vs the routed ranking.
    pub top10: f32,
    /// Calibration factor applied to the raw RUDY densities.
    pub calibration: f32,
}

/// Renders a RUDY estimate as a heat-map image (same encoding as the
/// ground truth, so image metrics apply unchanged).
pub fn rudy_forecast_image(
    arch: &pop_arch::Arch,
    netlist: &pop_netlist::Netlist,
    placement: &pop_place::Placement,
    calibration: f32,
    side: usize,
) -> (Image, CongestionMap) {
    let est = rudy_estimate(arch, netlist, placement, calibration);
    let img = render_congestion(arch, netlist, placement, &est, side);
    (img, est)
}

/// Scores RUDY against a generated dataset's ground truth.
///
/// The dataset's placement sweep is replayed (it is deterministic in the
/// config seed), RUDY is calibrated on the *first* placement by matching
/// mean congestion — the one freebie any practitioner would grant an
/// analytical model — and every placement is then scored blind.
///
/// # Errors
///
/// Propagates substrate failures; returns [`CoreError::Pipeline`] when the
/// replayed sweep disagrees with the dataset (config mismatch).
pub fn evaluate_rudy_against(
    ds: &DesignDataset,
    spec: &SyntheticSpec,
    config: &ExperimentConfig,
) -> Result<BaselineReport, CoreError> {
    let (evals, calibration) = rudy_pair_evals(ds, spec, config)?;
    if evals.is_empty() {
        // Match `MetricSet::summarize(&[])`: an empty evaluation is the
        // all-zero report (NOT a vacuously perfect retrieval — an empty
        // split must never look unbeatable in a baseline comparison).
        return Ok(BaselineReport {
            per_pixel_accuracy: 0.0,
            channel_accuracy: 0.0,
            top10: 0.0,
            calibration,
        });
    }
    let n = evals.len() as f64;
    let pred: Vec<f32> = evals.iter().map(|e| e.pred_congestion).collect();
    let truth: Vec<f32> = evals.iter().map(|e| e.true_congestion).collect();
    Ok(BaselineReport {
        per_pixel_accuracy: (evals.iter().map(|e| e.accuracy as f64).sum::<f64>() / n) as f32,
        channel_accuracy: (evals.iter().map(|e| e.channel_accuracy as f64).sum::<f64>() / n) as f32,
        top10: crate::metrics::top_k_overlap(&pred, &truth, 10),
        calibration,
    })
}

/// Scores RUDY with the same per-pair records ([`PairEval`]) the learned
/// models are scored with, so one
/// [`MetricSet`](crate::metrics::MetricSet) can summarise an analytical
/// baseline and a cGAN **identically** — same accuracy tolerances, same
/// retrieval-set size, same rank correlations. Returns the records plus
/// the mean-matching calibration factor.
///
/// The replay contract matches [`evaluate_rudy_against`]: the dataset's
/// placement sweep is regenerated from `config.seed` (asserted against
/// each pair's provenance), RUDY is calibrated on the first placement,
/// every placement then scored blind.
///
/// # Errors
///
/// Propagates substrate failures; returns [`CoreError::Pipeline`] when the
/// replayed sweep disagrees with the dataset (config mismatch).
pub fn rudy_pair_evals(
    ds: &DesignDataset,
    spec: &SyntheticSpec,
    config: &ExperimentConfig,
) -> Result<(Vec<PairEval>, f32), CoreError> {
    let (arch, netlist, _) = design_fabric(spec, config)?;
    let sweep = SweepSpec {
        base_seed: config.seed,
        ..SweepSpec::quick()
    };
    let options = sweep.take(ds.pairs.len());

    let mut calibration = 1.0f32;
    let mut evals = Vec::with_capacity(ds.pairs.len());
    for (i, (popts, pair)) in options.iter().zip(&ds.pairs).enumerate() {
        if popts.seed != pair.meta.place_seed {
            return Err(CoreError::Pipeline(format!(
                "sweep replay mismatch at pair {i}: seed {} vs {}",
                popts.seed, pair.meta.place_seed
            )));
        }
        let placement = place(&arch, &netlist, popts)?;
        let raw = rudy_estimate(&arch, &netlist, &placement, 1.0);
        if i == 0 {
            // Mean-matching calibration on the first placement.
            let raw_mean = raw.mean_utilization();
            if raw_mean > f32::EPSILON {
                calibration = pair.meta.true_mean_congestion / raw_mean;
            }
        }
        let est = rudy_estimate(&arch, &netlist, &placement, calibration);
        let img = render_congestion(&arch, &netlist, &placement, &est, config.resolution);
        let truth_img = tensor_to_image(&pair.y);
        let est_tensor = assemble_target(&img);
        evals.push(PairEval {
            accuracy: per_pixel_accuracy(&img, &truth_img, config.tolerance)
                .map_err(|e| CoreError::Pipeline(e.to_string()))?,
            channel_accuracy: crate::metrics::channel_accuracy(
                arch.width(),
                arch.height(),
                &img,
                &truth_img,
                config.tolerance,
            )?,
            nrms: crate::metrics::nrms(est_tensor.data(), pair.y.data()),
            pred_congestion: est.mean_utilization(),
            true_congestion: pair.meta.true_mean_congestion,
        });
    }
    Ok((evals, calibration))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::build_design_dataset;
    use pop_netlist::presets;

    #[test]
    fn baseline_scores_are_valid() {
        let config = ExperimentConfig {
            pairs_per_design: 4,
            ..ExperimentConfig::test()
        };
        let spec = presets::by_name("diffeq1").unwrap();
        let ds = build_design_dataset(&spec, &config).unwrap();
        let report = evaluate_rudy_against(&ds, &spec, &config).unwrap();
        assert!((0.0..=1.0).contains(&report.per_pixel_accuracy));
        assert!((0.0..=1.0).contains(&report.channel_accuracy));
        assert!(
            report.channel_accuracy <= report.per_pixel_accuracy,
            "block tiles are free for RUDY, so restricting to channels \
             can only remove freebies ({} vs {})",
            report.channel_accuracy,
            report.per_pixel_accuracy
        );
        assert!((0.0..=1.0).contains(&report.top10));
        assert!(report.calibration > 0.0);
    }

    #[test]
    fn replay_mismatch_is_detected() {
        let config = ExperimentConfig {
            pairs_per_design: 2,
            ..ExperimentConfig::test()
        };
        let spec = presets::by_name("diffeq2").unwrap();
        let mut ds = build_design_dataset(&spec, &config).unwrap();
        ds.pairs[0].meta.place_seed = 999; // corrupt provenance
        assert!(matches!(
            evaluate_rudy_against(&ds, &spec, &config),
            Err(CoreError::Pipeline(_))
        ));
    }
}
