//! Shared, non-exclusive inference entry points.
//!
//! [`Pix2Pix::forecast`] needs `&mut self` because every [`pop_nn::Layer`]
//! caches activations for a potential backward pass — fine for training,
//! hostile to serving, where many callers want forecasts from one trained
//! model concurrently. This module provides the seam between the two
//! worlds:
//!
//! * [`Forecaster`] — the object-safe "give me a heat map" contract that
//!   the §5.4 applications ([`crate::apps`]) consume, implemented both by a
//!   locked model and by `pop-serve`'s batching client;
//! * [`SharedForecaster`] — a cloneable `Arc<Mutex<Pix2Pix>>` wrapper that
//!   turns a trained model into a `&self` forecaster usable from any
//!   thread.

use crate::error::CoreError;
use crate::features::tensor_to_image;
use crate::trainer::Pix2Pix;
use pop_nn::Tensor;
use pop_raster::Image;
use std::sync::{Arc, Mutex, MutexGuard};

/// The inference contract: paint a routing heat map for one input feature
/// tensor, through a shared (`&self`) receiver.
pub trait Forecaster {
    /// Paints the heat map for `x` (inference mode — dropout off,
    /// batch-norm running statistics).
    ///
    /// # Errors
    ///
    /// Implementations report transport or model failures as
    /// [`CoreError::Pipeline`].
    fn forecast(&self, x: &Tensor) -> Result<Tensor, CoreError>;

    /// [`Forecaster::forecast`] decoded into an image.
    ///
    /// # Errors
    ///
    /// Propagates [`Forecaster::forecast`] failures.
    fn forecast_image(&self, x: &Tensor) -> Result<Image, CoreError> {
        Ok(tensor_to_image(&self.forecast(x)?))
    }
}

/// A trained model behind an `Arc<Mutex>`: cloneable, `Send + Sync`, and a
/// [`Forecaster`] — the simplest way to share one checkpoint between
/// threads (the serving engine's model registry hands these out).
#[derive(Debug, Clone)]
pub struct SharedForecaster {
    inner: Arc<Mutex<Pix2Pix>>,
}

impl SharedForecaster {
    /// Wraps a model for shared use.
    pub fn new(model: Pix2Pix) -> Self {
        SharedForecaster {
            inner: Arc::new(Mutex::new(model)),
        }
    }

    /// Exclusive access to the underlying model (training, checkpointing).
    ///
    /// # Panics
    ///
    /// Panics when a previous holder panicked while holding the lock.
    pub fn lock(&self) -> MutexGuard<'_, Pix2Pix> {
        self.inner.lock().expect("model mutex poisoned")
    }

    /// A private replica of the current model state (for per-worker model
    /// parallelism — replicas do not share subsequent training updates).
    pub fn replica(&self) -> Pix2Pix {
        self.lock().clone()
    }
}

impl Forecaster for SharedForecaster {
    fn forecast(&self, x: &Tensor) -> Result<Tensor, CoreError> {
        Ok(self.lock().forecast(x))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ExperimentConfig;

    fn tiny_model(seed: u64) -> Pix2Pix {
        let config = ExperimentConfig {
            resolution: 16,
            base_filters: 4,
            depth: 3,
            ..ExperimentConfig::test()
        };
        Pix2Pix::new(&config, seed).unwrap()
    }

    #[test]
    fn shared_forecaster_matches_exclusive_model() {
        let mut model = tiny_model(3);
        let x = Tensor::randn([1, 4, 16, 16], 0.0, 0.5, 7);
        let direct = model.forecast(&x);
        let shared = SharedForecaster::new(model);
        assert_eq!(shared.forecast(&x).unwrap(), direct);
        let img = shared.forecast_image(&x).unwrap();
        assert_eq!(img.channels(), 3);
    }

    #[test]
    fn clones_share_the_same_model() {
        let shared = SharedForecaster::new(tiny_model(4));
        let other = shared.clone();
        let x = Tensor::randn([1, 4, 16, 16], 0.0, 0.5, 8);
        assert_eq!(shared.forecast(&x).unwrap(), other.forecast(&x).unwrap());
    }

    #[test]
    fn replica_is_independent_but_identical() {
        let shared = SharedForecaster::new(tiny_model(5));
        let replica = shared.replica();
        let x = Tensor::randn([1, 4, 16, 16], 0.0, 0.5, 9);
        let mut replica = replica;
        assert_eq!(shared.forecast(&x).unwrap(), replica.forecast(&x));
    }

    #[test]
    fn usable_from_many_threads() {
        let shared = SharedForecaster::new(tiny_model(6));
        let x = Tensor::randn([1, 4, 16, 16], 0.0, 0.5, 10);
        let expected = shared.forecast(&x).unwrap();
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let f = shared.clone();
                let x = x.clone();
                let expected = expected.clone();
                std::thread::spawn(move || {
                    for _ in 0..3 {
                        assert_eq!(f.forecast(&x).unwrap(), expected);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
    }
}
