//! Shared, non-exclusive inference entry points.
//!
//! [`Pix2Pix::forecast`] needs `&mut self` because every [`pop_nn::Layer`]
//! caches activations for a potential backward pass — fine for training,
//! hostile to serving, where many callers want forecasts from one trained
//! model concurrently. This module provides the seam between the two
//! worlds:
//!
//! * [`Forecaster`] — the object-safe "give me a heat map" contract that
//!   the §5.4 applications ([`crate::apps`]) consume, implemented both by a
//!   locked model and by `pop-serve`'s batching client;
//! * [`SharedForecaster`] — a cloneable `Arc<Mutex<Pix2Pix>>` wrapper that
//!   turns a trained model into a `&self` forecaster usable from any
//!   thread.

use crate::error::CoreError;
use crate::features::tensor_to_image;
use crate::trainer::Pix2Pix;
use pop_nn::Tensor;
use pop_raster::Image;
use std::cell::RefCell;
use std::sync::{Arc, Mutex, MutexGuard};

/// The inference contract: paint a routing heat map for one input feature
/// tensor, through a shared (`&self`) receiver.
pub trait Forecaster {
    /// Paints the heat map for `x` (inference mode — dropout off,
    /// batch-norm running statistics).
    ///
    /// # Errors
    ///
    /// Implementations report transport or model failures as
    /// [`CoreError::Pipeline`].
    fn forecast(&self, x: &Tensor) -> Result<Tensor, CoreError>;

    /// [`Forecaster::forecast`] decoded into an image.
    ///
    /// # Errors
    ///
    /// Propagates [`Forecaster::forecast`] failures.
    fn forecast_image(&self, x: &Tensor) -> Result<Image, CoreError> {
        Ok(tensor_to_image(&self.forecast(x)?))
    }

    /// Paints heat maps for many inputs. The default implementation loops
    /// [`Forecaster::forecast`]; implementations backed by a model override
    /// it with one stacked forward pass
    /// ([`Pix2Pix::forecast_batch`] is bitwise-identical to per-sample
    /// inference), which is what lets an evaluation compute *every* metric
    /// from a single batched inference sweep.
    ///
    /// # Errors
    ///
    /// Propagates [`Forecaster::forecast`] failures.
    fn forecast_batch(&self, xs: &[&Tensor]) -> Result<Vec<Tensor>, CoreError> {
        xs.iter().map(|x| self.forecast(x)).collect()
    }
}

/// A trained model behind an `Arc<Mutex>`: cloneable, `Send + Sync`, and a
/// [`Forecaster`] — the simplest way to share one checkpoint between
/// threads (the serving engine's model registry hands these out).
#[derive(Debug, Clone)]
pub struct SharedForecaster {
    inner: Arc<Mutex<Pix2Pix>>,
}

impl SharedForecaster {
    /// Wraps a model for shared use.
    pub fn new(model: Pix2Pix) -> Self {
        SharedForecaster {
            inner: Arc::new(Mutex::new(model)),
        }
    }

    /// Exclusive access to the underlying model (training, checkpointing).
    ///
    /// A poisoned mutex is recovered rather than propagated: inference
    /// only reads the weights, and a panicking holder cannot leave a
    /// half-written forward pass behind — parameter updates go through
    /// whole-tensor swaps.
    pub fn lock(&self) -> MutexGuard<'_, Pix2Pix> {
        // lint: allow(blocking) — per-replica model mutex; one worker per
        // replica, so the acquisition is uncontended by construction.
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// A private replica of the current model state (for per-worker model
    /// parallelism — replicas do not share subsequent training updates).
    pub fn replica(&self) -> Pix2Pix {
        self.lock().clone()
    }
}

impl Forecaster for SharedForecaster {
    fn forecast(&self, x: &Tensor) -> Result<Tensor, CoreError> {
        // lint: allow(blocking) — the model mutex is the forecast itself;
        // see `SharedForecaster::lock`.
        Ok(self.lock().forecast(x))
    }

    fn forecast_batch(&self, xs: &[&Tensor]) -> Result<Vec<Tensor>, CoreError> {
        // lint: allow(blocking) — the model mutex is the forecast itself;
        // see `SharedForecaster::lock`.
        Ok(self.lock().forecast_batch(xs))
    }
}

/// Adapts an exclusively-borrowed model to the shared [`Forecaster`]
/// contract for the duration of a single-threaded evaluation loop — the
/// seam that lets `&mut Pix2Pix` entry points (the Table 2 binaries, the
/// classic `metrics` helpers) drive the same batched single-pass
/// evaluation code the serving/eval layers use, without a mutex.
pub struct ExclusiveForecaster<'a> {
    inner: RefCell<&'a mut Pix2Pix>,
}

impl<'a> ExclusiveForecaster<'a> {
    /// Borrows `model` exclusively for forecasting.
    pub fn new(model: &'a mut Pix2Pix) -> Self {
        ExclusiveForecaster {
            inner: RefCell::new(model),
        }
    }
}

impl Forecaster for ExclusiveForecaster<'_> {
    fn forecast(&self, x: &Tensor) -> Result<Tensor, CoreError> {
        Ok(self.inner.borrow_mut().forecast(x))
    }

    fn forecast_batch(&self, xs: &[&Tensor]) -> Result<Vec<Tensor>, CoreError> {
        Ok(self.inner.borrow_mut().forecast_batch(xs))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ExperimentConfig;

    fn tiny_model(seed: u64) -> Pix2Pix {
        let config = ExperimentConfig {
            resolution: 16,
            base_filters: 4,
            depth: 3,
            ..ExperimentConfig::test()
        };
        Pix2Pix::new(&config, seed).unwrap()
    }

    #[test]
    fn shared_forecaster_matches_exclusive_model() {
        let mut model = tiny_model(3);
        let x = Tensor::randn([1, 4, 16, 16], 0.0, 0.5, 7);
        let direct = model.forecast(&x);
        let shared = SharedForecaster::new(model);
        assert_eq!(shared.forecast(&x).unwrap(), direct);
        let img = shared.forecast_image(&x).unwrap();
        assert_eq!(img.channels(), 3);
    }

    #[test]
    fn clones_share_the_same_model() {
        let shared = SharedForecaster::new(tiny_model(4));
        let other = shared.clone();
        let x = Tensor::randn([1, 4, 16, 16], 0.0, 0.5, 8);
        assert_eq!(shared.forecast(&x).unwrap(), other.forecast(&x).unwrap());
    }

    #[test]
    fn replica_is_independent_but_identical() {
        let shared = SharedForecaster::new(tiny_model(5));
        let replica = shared.replica();
        let x = Tensor::randn([1, 4, 16, 16], 0.0, 0.5, 9);
        let mut replica = replica;
        assert_eq!(shared.forecast(&x).unwrap(), replica.forecast(&x));
    }

    #[test]
    fn exclusive_forecaster_matches_the_model_and_batches() {
        let mut model = tiny_model(7);
        let xs: Vec<Tensor> = (0..3)
            .map(|s| Tensor::randn([1, 4, 16, 16], 0.0, 0.5, 20 + s))
            .collect();
        let direct: Vec<Tensor> = xs.iter().map(|x| model.forecast(x)).collect();
        let f = ExclusiveForecaster::new(&mut model);
        let refs: Vec<&Tensor> = xs.iter().collect();
        assert_eq!(f.forecast_batch(&refs).unwrap(), direct);
        assert_eq!(f.forecast(&xs[0]).unwrap(), direct[0]);
    }

    #[test]
    fn default_forecast_batch_loops_forecast() {
        // A Forecaster that only implements `forecast` still batches via
        // the default method — one result per input, in order.
        struct Doubler;
        impl Forecaster for Doubler {
            fn forecast(&self, x: &Tensor) -> Result<Tensor, CoreError> {
                let mut out = x.clone();
                out.scale(2.0);
                Ok(out)
            }
        }
        let xs: Vec<Tensor> = (0..2)
            .map(|s| Tensor::randn([1, 1, 4, 4], 0.0, 1.0, s))
            .collect();
        let refs: Vec<&Tensor> = xs.iter().collect();
        let out = Doubler.forecast_batch(&refs).unwrap();
        assert_eq!(out.len(), 2);
        for (o, x) in out.iter().zip(&xs) {
            let mut want = x.clone();
            want.scale(2.0);
            assert_eq!(o, &want);
        }
    }

    #[test]
    fn usable_from_many_threads() {
        let shared = SharedForecaster::new(tiny_model(6));
        let x = Tensor::randn([1, 4, 16, 16], 0.0, 0.5, 10);
        let expected = shared.forecast(&x).unwrap();
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let f = shared.clone();
                let x = x.clone();
                let expected = expected.clone();
                std::thread::spawn(move || {
                    for _ in 0..3 {
                        assert_eq!(f.forecast(&x).unwrap(), expected);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
    }
}
