//! Evaluation metrics of §5.1: per-pixel accuracy (Table 2 Acc.1/Acc.2)
//! and Top10 min-congestion retrieval.

use crate::dataset::{DesignDataset, Pair};
use crate::error::CoreError;
use crate::features::tensor_to_image;
use crate::trainer::Pix2Pix;
use pop_raster::metrics::per_pixel_accuracy;
use pop_raster::{Image, Layout};

/// Mean per-pixel accuracy of the model's forecasts over `pairs`
/// ("per-pixel accuracy between the generated image and ground truth
/// image").
///
/// # Errors
///
/// Returns [`CoreError::Eval`] when a pair's resolution does not match the
/// model's output (a mixed-resolution corpus), naming the offending design
/// and index — instead of aborting a whole evaluation sweep with a panic.
pub fn evaluate_accuracy(
    model: &mut Pix2Pix,
    pairs: &[Pair],
    tolerance: f32,
) -> Result<f32, CoreError> {
    if pairs.is_empty() {
        return Ok(0.0);
    }
    let mut sum = 0.0f64;
    for p in pairs {
        let pred = model.forecast_image(&p.x);
        let truth = tensor_to_image(&p.y);
        sum += per_pixel_accuracy(&pred, &truth, tolerance).map_err(|e| {
            CoreError::Eval(format!(
                "pair {}[{}]: forecast vs truth: {e}",
                p.meta.design, p.meta.index
            ))
        })? as f64;
    }
    Ok((sum / pairs.len() as f64) as f32)
}

/// Decodes a (predicted or true) heat-map image into a scalar congestion
/// estimate: the mean utilisation over all routing-channel pixels, read
/// back through the yellow→purple colour bar.
pub fn image_mean_congestion(grid_width: usize, grid_height: usize, img: &Image) -> f32 {
    let layout = Layout::new(grid_width, grid_height, img.width());
    let mut sum = 0.0f64;
    let mut count = 0usize;
    for py in 0..img.height() {
        for px in 0..img.width() {
            if matches!(layout.owner(px, py), pop_raster::PixelOwner::Channel(_)) {
                sum += pop_raster::color::utilization_from_color(img.pixel_rgb8(px, py)) as f64;
                count += 1;
            }
        }
    }
    if count == 0 {
        0.0
    } else {
        (sum / count as f64) as f32
    }
}

/// Fraction of the true best-`k` elements that the predicted ranking also
/// places in its best `k` (both rankings ascending: lower = better).
/// `Top10 = 80%` in the paper means 8 of the 10 selected placements are
/// truly among the 10 least congested.
///
/// # Panics
///
/// Panics when the score slices differ in length.
pub fn top_k_overlap(pred_scores: &[f32], true_scores: &[f32], k: usize) -> f32 {
    assert_eq!(pred_scores.len(), true_scores.len(), "score count");
    let k = k.min(pred_scores.len());
    if k == 0 {
        return 0.0;
    }
    let top_set = |scores: &[f32]| -> Vec<usize> {
        let mut idx: Vec<usize> = (0..scores.len()).collect();
        idx.sort_by(|&a, &b| scores[a].total_cmp(&scores[b]).then(a.cmp(&b)));
        idx.truncate(k);
        idx
    };
    let pred_top = top_set(pred_scores);
    let true_top = top_set(true_scores);
    let hits = pred_top.iter().filter(|i| true_top.contains(i)).count();
    hits as f32 / k as f32
}

/// Pearson correlation between two score vectors (how linearly the
/// predicted congestion tracks the truth across placements).
///
/// # Panics
///
/// Panics when the slices differ in length.
pub fn pearson(a: &[f32], b: &[f32]) -> f32 {
    assert_eq!(a.len(), b.len(), "score count");
    let n = a.len();
    if n < 2 {
        return 0.0;
    }
    let ma: f64 = a.iter().map(|&v| v as f64).sum::<f64>() / n as f64;
    let mb: f64 = b.iter().map(|&v| v as f64).sum::<f64>() / n as f64;
    let mut cov = 0.0;
    let mut va = 0.0;
    let mut vb = 0.0;
    for (&x, &y) in a.iter().zip(b) {
        cov += (x as f64 - ma) * (y as f64 - mb);
        va += (x as f64 - ma).powi(2);
        vb += (y as f64 - mb).powi(2);
    }
    let den = (va.sqrt() * vb.sqrt()).max(1e-12);
    (cov / den) as f32
}

/// Spearman rank correlation (Pearson over ranks) — the metric that
/// matters for placement *selection*: a perfectly monotone but non-linear
/// forecast still ranks placements correctly.
///
/// # Panics
///
/// Panics when the slices differ in length.
pub fn spearman(a: &[f32], b: &[f32]) -> f32 {
    assert_eq!(a.len(), b.len(), "score count");
    let ranks = |v: &[f32]| -> Vec<f32> {
        let mut idx: Vec<usize> = (0..v.len()).collect();
        idx.sort_by(|&i, &j| v[i].total_cmp(&v[j]).then(i.cmp(&j)));
        let mut r = vec![0.0f32; v.len()];
        for (rank, &i) in idx.iter().enumerate() {
            r[i] = rank as f32;
        }
        r
    };
    pearson(&ranks(a), &ranks(b))
}

/// Predicted-vs-true congestion correlation over a whole dataset: forecasts
/// every pair, decodes the scalar congestion, and returns
/// `(pearson, spearman)` against the routed ground truth.
pub fn congestion_correlation(model: &mut Pix2Pix, ds: &DesignDataset) -> (f32, f32) {
    let pred: Vec<f32> = ds
        .pairs
        .iter()
        .map(|p| {
            let img = model.forecast_image(&p.x);
            image_mean_congestion(ds.grid_width, ds.grid_height, &img)
        })
        .collect();
    let truth: Vec<f32> = ds
        .pairs
        .iter()
        .map(|p| p.meta.true_mean_congestion)
        .collect();
    (pearson(&pred, &truth), spearman(&pred, &truth))
}

/// The Table 2 `Top10` metric: forecast every placement of the held-out
/// design, rank by predicted mean congestion, and measure overlap with the
/// ground-truth top 10.
pub fn top10_accuracy(model: &mut Pix2Pix, ds: &DesignDataset) -> f32 {
    let pred: Vec<f32> = ds
        .pairs
        .iter()
        .map(|p| {
            let img = model.forecast_image(&p.x);
            image_mean_congestion(ds.grid_width, ds.grid_height, &img)
        })
        .collect();
    let truth: Vec<f32> = ds
        .pairs
        .iter()
        .map(|p| p.meta.true_mean_congestion)
        .collect();
    top_k_overlap(&pred, &truth, 10)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn evaluate_accuracy_reports_resolution_mismatch_instead_of_panicking() {
        use crate::dataset::PairMeta;
        use crate::{ExperimentConfig, Pix2Pix};
        use pop_nn::Tensor;
        let config = ExperimentConfig {
            resolution: 16,
            base_filters: 4,
            depth: 3,
            ..ExperimentConfig::test()
        };
        let mut model = Pix2Pix::new(&config, 1).unwrap();
        let ok_pair = Pair {
            x: Tensor::zeros([1, config.input_channels(), 16, 16]),
            y: Tensor::zeros([1, 3, 16, 16]),
            meta: PairMeta::synthetic(0),
        };
        assert!(evaluate_accuracy(&mut model, std::slice::from_ref(&ok_pair), 0.1).is_ok());
        // A pair rendered at a different resolution: proper error, no panic.
        let odd_pair = Pair {
            x: Tensor::zeros([1, config.input_channels(), 16, 16]),
            y: Tensor::zeros([1, 3, 8, 8]),
            meta: PairMeta::synthetic(1),
        };
        let err = evaluate_accuracy(&mut model, &[odd_pair], 0.1).unwrap_err();
        assert!(matches!(err, crate::CoreError::Eval(_)), "{err}");
        // Empty slice stays a defined 0.0, not an error.
        assert_eq!(evaluate_accuracy(&mut model, &[], 0.1).unwrap(), 0.0);
    }

    #[test]
    fn top_k_overlap_perfect_and_disjoint() {
        let truth: Vec<f32> = (0..20).map(|i| i as f32).collect();
        assert_eq!(top_k_overlap(&truth, &truth, 10), 1.0);
        let inverted: Vec<f32> = (0..20).map(|i| (19 - i) as f32).collect();
        assert_eq!(top_k_overlap(&inverted, &truth, 10), 0.0);
    }

    #[test]
    fn top_k_overlap_partial() {
        // Prediction swaps one element of the true top-2 out.
        let truth = vec![0.0, 1.0, 2.0, 3.0];
        let pred = vec![0.0, 9.0, 2.0, 3.0];
        // true top2 = {0, 1}; pred top2 = {0, 2} -> overlap 1/2.
        assert_eq!(top_k_overlap(&pred, &truth, 2), 0.5);
    }

    #[test]
    fn top_k_handles_small_sets() {
        let s = vec![1.0, 0.5];
        assert_eq!(top_k_overlap(&s, &s, 10), 1.0);
        let empty: Vec<f32> = vec![];
        assert_eq!(top_k_overlap(&empty, &empty, 10), 0.0);
    }

    #[test]
    fn pearson_detects_linear_relationships() {
        let a: Vec<f32> = (0..20).map(|i| i as f32).collect();
        let b: Vec<f32> = a.iter().map(|v| 3.0 * v + 1.0).collect();
        assert!((pearson(&a, &b) - 1.0).abs() < 1e-5);
        let c: Vec<f32> = a.iter().map(|v| -v).collect();
        assert!((pearson(&a, &c) + 1.0).abs() < 1e-5);
    }

    #[test]
    fn spearman_is_invariant_to_monotone_warping() {
        let a: Vec<f32> = (0..20).map(|i| i as f32).collect();
        // Non-linear but monotone: Pearson < 1, Spearman = 1.
        let b: Vec<f32> = a.iter().map(|v| v.powi(3)).collect();
        assert!((spearman(&a, &b) - 1.0).abs() < 1e-5);
        assert!(pearson(&a, &b) < 0.999);
    }

    #[test]
    fn correlations_handle_degenerate_inputs() {
        assert_eq!(pearson(&[1.0], &[2.0]), 0.0);
        let flat = vec![0.5f32; 8];
        let vary: Vec<f32> = (0..8).map(|i| i as f32).collect();
        // Flat vector has zero variance: correlation defined as ~0.
        assert!(pearson(&flat, &vary).abs() < 1e-3);
    }

    #[test]
    fn image_mean_congestion_reads_colorbar() {
        use pop_arch::Arch;
        use pop_route::CongestionMap;
        let arch = Arch::builder().interior(6, 6).build().unwrap();
        // Uniform 0.5 utilisation everywhere.
        let cong = CongestionMap::from_utilization(&arch, vec![0.5; arch.channel_count()]);
        let netlist = pop_netlist::generate(
            &pop_netlist::presets::by_name("diffeq2")
                .unwrap()
                .scaled(0.01),
        );
        // A netlist that fits this fabric is needed only for rendering;
        // reuse the placement machinery.
        let (c, i, m, x) = netlist.site_demand();
        let arch2 = Arch::auto_size(c, i, m, x, 8, 1.3).unwrap();
        let cong2 = CongestionMap::from_utilization(&arch2, vec![0.5; arch2.channel_count()]);
        let placement = pop_place::place(&arch2, &netlist, &Default::default()).unwrap();
        let img = pop_raster::render_congestion(&arch2, &netlist, &placement, &cong2, 64);
        let mean = image_mean_congestion(arch2.width(), arch2.height(), &img);
        assert!((mean - 0.5).abs() < 0.03, "decoded mean {mean}");
        let _ = cong;
    }
}
