//! Evaluation metrics of §5.1 — per-pixel accuracy (Table 2 Acc.1/Acc.2),
//! Top-k min-congestion retrieval, rank correlations and an NRMS pixel
//! error — behind a **single-pass** evaluation API.
//!
//! [`MetricSet::evaluate`] runs *one* batched inference sweep over a
//! dataset (through the [`Forecaster`] contract, so a locked model, an
//! exclusive borrow and the serving engine's client all work) and feeds
//! every metric from that sweep's per-pair records ([`PairEval`]). The
//! historical shape — each metric helper re-running its own forward passes
//! — is gone; the classic entry points ([`evaluate_accuracy`],
//! [`congestion_correlation`], [`top10_accuracy`]) are thin wrappers over
//! the same pass.
//!
//! The scalar metrics are **total functions with defined edge cases**: no
//! `NaN` ever leaves this module for finite inputs. Ties, constant vectors
//! and empty/oversized `k` are all given documented values (see each
//! function), because an evaluation *matrix* aggregates thousands of these
//! values and one `NaN` cell poisons every mean downstream.

use crate::config::ExperimentConfig;
use crate::dataset::{DesignDataset, Pair};
use crate::error::CoreError;
use crate::features::tensor_to_image;
use crate::forecaster::{ExclusiveForecaster, Forecaster};
use crate::trainer::Pix2Pix;
use pop_raster::metrics::per_pixel_accuracy;
use pop_raster::{Image, Layout};

/// Mean per-pixel accuracy of the model's forecasts over `pairs`
/// ("per-pixel accuracy between the generated image and ground truth
/// image"), computed from one batched inference sweep.
///
/// # Errors
///
/// Returns [`CoreError::Eval`] when a pair's resolution does not match the
/// model's output (a mixed-resolution corpus), naming the offending design
/// and index — instead of aborting a whole evaluation sweep with a panic.
pub fn evaluate_accuracy(
    model: &mut Pix2Pix,
    pairs: &[Pair],
    tolerance: f32,
) -> Result<f32, CoreError> {
    let metrics = MetricSet {
        tolerance,
        ..MetricSet::default()
    };
    let forecaster = ExclusiveForecaster::new(model);
    // Grid (0, 0): accuracy needs no congestion decode.
    let evals = metrics.evaluate_pairs(&forecaster, pairs, 0, 0)?;
    Ok(metrics.summarize(&evals).accuracy)
}

/// Decodes a (predicted or true) heat-map image into a scalar congestion
/// estimate: the mean utilisation over all routing-channel pixels, read
/// back through the yellow→purple colour bar.
pub fn image_mean_congestion(grid_width: usize, grid_height: usize, img: &Image) -> f32 {
    if grid_width == 0 || grid_height == 0 {
        return 0.0;
    }
    let layout = Layout::new(grid_width, grid_height, img.width());
    let mut sum = 0.0f64;
    let mut count = 0usize;
    for py in 0..img.height() {
        for px in 0..img.width() {
            if matches!(layout.owner(px, py), pop_raster::PixelOwner::Channel(_)) {
                sum += pop_raster::color::utilization_from_color(img.pixel_rgb8(px, py)) as f64;
                count += 1;
            }
        }
    }
    if count == 0 {
        0.0
    } else {
        (sum / count as f64) as f32
    }
}

/// Per-pixel accuracy restricted to **routing-channel pixels** — the
/// pixels a congestion forecast actually has to *predict*. Full-image
/// accuracy (Table 2's Acc.) structurally favours analytical estimators
/// rendered through the ground-truth pipeline: their block tiles and
/// background are pixel-perfect by construction, while a generative model
/// must paint them. Restricting to the channels makes the learned-vs-
/// analytical comparison like-for-like at the detail level (the paper's
/// actual claim).
///
/// Returns `0.0` when the grid is degenerate (`0` either way) or the
/// image has no channel pixels.
///
/// # Errors
///
/// Returns [`CoreError::Eval`] when the images differ in shape.
pub fn channel_accuracy(
    grid_width: usize,
    grid_height: usize,
    pred: &Image,
    truth: &Image,
    tolerance: f32,
) -> Result<f32, CoreError> {
    if (pred.width(), pred.height(), pred.channels())
        != (truth.width(), truth.height(), truth.channels())
    {
        return Err(CoreError::Eval(format!(
            "channel accuracy: image shapes differ ({}x{}x{} vs {}x{}x{})",
            pred.width(),
            pred.height(),
            pred.channels(),
            truth.width(),
            truth.height(),
            truth.channels()
        )));
    }
    if grid_width == 0 || grid_height == 0 {
        return Ok(0.0);
    }
    let layout = Layout::new(grid_width, grid_height, pred.width());
    let mut correct = 0usize;
    let mut count = 0usize;
    for py in 0..pred.height() {
        for px in 0..pred.width() {
            if !matches!(layout.owner(px, py), pop_raster::PixelOwner::Channel(_)) {
                continue;
            }
            count += 1;
            let within = (0..pred.channels())
                .all(|ch| (pred.get(px, py, ch) - truth.get(px, py, ch)).abs() <= tolerance);
            if within {
                correct += 1;
            }
        }
    }
    if count == 0 {
        Ok(0.0)
    } else {
        Ok(correct as f32 / count as f32)
    }
}

/// Fraction of the true best-`k` elements that the predicted ranking also
/// places in its best `k` (both rankings ascending: lower = better).
/// `Top10 = 80%` in the paper means 8 of the 10 selected placements are
/// truly among the 10 least congested.
///
/// Ties are handled by *threshold sets*: an element belongs to a ranking's
/// top-`k` iff its score is ≤ the `k`-th smallest score, so every element
/// tied at the boundary is included, and the overlap is normalised by the
/// larger of the two set sizes. Membership therefore depends only on score
/// values — never on input order — which makes the metric deterministic
/// and invariant under permuting both vectors together, even for
/// tie-heavy or constant inputs (where index tie-breaking used to make the
/// result order-dependent).
///
/// Defined edge cases: `k` is clamped to the vector length; `k = 0` (or
/// empty inputs) returns `1.0` — the empty selection is vacuously perfect.
/// The result is always in `[0, 1]` and equals `1.0` whenever the two
/// score vectors are identical.
///
/// # Panics
///
/// Panics when the score slices differ in length.
pub fn top_k_overlap(pred_scores: &[f32], true_scores: &[f32], k: usize) -> f32 {
    assert_eq!(pred_scores.len(), true_scores.len(), "score count");
    let k = k.min(pred_scores.len());
    if k == 0 {
        return 1.0;
    }
    let top_set = |scores: &[f32]| -> Vec<bool> {
        let mut sorted = scores.to_vec();
        sorted.sort_by(f32::total_cmp);
        let threshold = sorted[k - 1];
        scores
            .iter()
            .map(|v| v.total_cmp(&threshold) != std::cmp::Ordering::Greater)
            .collect()
    };
    let pred_top = top_set(pred_scores);
    let true_top = top_set(true_scores);
    let hits = pred_top
        .iter()
        .zip(&true_top)
        .filter(|(p, t)| **p && **t)
        .count();
    let pred_size = pred_top.iter().filter(|p| **p).count();
    let true_size = true_top.iter().filter(|t| **t).count();
    hits as f32 / pred_size.max(true_size) as f32
}

/// Whether every element of `v` compares equal (a zero-variance vector).
fn is_constant(v: &[f32]) -> bool {
    v.windows(2)
        .all(|w| w[0].total_cmp(&w[1]) == std::cmp::Ordering::Equal)
}

/// Pearson correlation between two score vectors (how linearly the
/// predicted congestion tracks the truth across placements).
///
/// Defined edge cases: fewer than two samples, or either vector constant
/// (zero standard deviation — where the textbook formula divides by zero),
/// yield `0.0`; the result is clamped to `[-1, 1]` so floating-point drift
/// can never push a report out of range.
///
/// # Panics
///
/// Panics when the slices differ in length.
pub fn pearson(a: &[f32], b: &[f32]) -> f32 {
    assert_eq!(a.len(), b.len(), "score count");
    let n = a.len();
    if n < 2 || is_constant(a) || is_constant(b) {
        return 0.0;
    }
    let ma: f64 = a.iter().map(|&v| v as f64).sum::<f64>() / n as f64;
    let mb: f64 = b.iter().map(|&v| v as f64).sum::<f64>() / n as f64;
    let mut cov = 0.0;
    let mut va = 0.0;
    let mut vb = 0.0;
    for (&x, &y) in a.iter().zip(b) {
        cov += (x as f64 - ma) * (y as f64 - mb);
        va += (x as f64 - ma).powi(2);
        vb += (y as f64 - mb).powi(2);
    }
    if va <= 0.0 || vb <= 0.0 {
        return 0.0;
    }
    let r = cov / (va.sqrt() * vb.sqrt());
    if r.is_finite() {
        r.clamp(-1.0, 1.0) as f32
    } else {
        0.0
    }
}

/// Spearman rank correlation (Pearson over ranks) — the metric that
/// matters for placement *selection*: a perfectly monotone but non-linear
/// forecast still ranks placements correctly.
///
/// Tied scores receive their **average rank** (the standard fractional
/// ranking), so the result depends only on score values — permuting both
/// vectors together never changes it — and identical vectors score `1.0`
/// even when tie-heavy. Degenerate inputs follow [`pearson`]'s rules
/// (constant vector → `0.0`, result clamped to `[-1, 1]`).
///
/// # Panics
///
/// Panics when the slices differ in length.
pub fn spearman(a: &[f32], b: &[f32]) -> f32 {
    assert_eq!(a.len(), b.len(), "score count");
    let ranks = |v: &[f32]| -> Vec<f32> {
        let mut idx: Vec<usize> = (0..v.len()).collect();
        idx.sort_by(|&i, &j| v[i].total_cmp(&v[j]));
        let mut r = vec![0.0f32; v.len()];
        let mut pos = 0;
        while pos < idx.len() {
            let mut end = pos + 1;
            while end < idx.len()
                && v[idx[end]].total_cmp(&v[idx[pos]]) == std::cmp::Ordering::Equal
            {
                end += 1;
            }
            // Average rank of the tie group [pos, end).
            let avg = (pos + end - 1) as f32 / 2.0;
            for &i in &idx[pos..end] {
                r[i] = avg;
            }
            pos = end;
        }
        r
    };
    pearson(&ranks(a), &ranks(b))
}

/// Normalised root-mean-square pixel error between a forecast and the
/// truth: RMSE divided by the truth's value range (`max − min`), the
/// resolution-independent "how far off is each pixel on average" number
/// Table 2's accuracies round away. When the truth is constant (zero
/// range) the divisor falls back to `1.0`, so the metric stays defined:
/// `nrms ≥ 0` always, and `0` exactly when the two slices match.
///
/// # Panics
///
/// Panics when the slices differ in length.
pub fn nrms(pred: &[f32], truth: &[f32]) -> f32 {
    assert_eq!(pred.len(), truth.len(), "value count");
    if pred.is_empty() {
        return 0.0;
    }
    let mse: f64 = pred
        .iter()
        .zip(truth)
        .map(|(&p, &t)| (p as f64 - t as f64).powi(2))
        .sum::<f64>()
        / pred.len() as f64;
    let (min, max) = truth.iter().fold((f32::INFINITY, f32::NEG_INFINITY), {
        |(lo, hi), &v| (lo.min(v), hi.max(v))
    });
    let range = (max - min) as f64;
    let denom = if range.is_finite() && range > 0.0 {
        range
    } else {
        1.0
    };
    (mse.sqrt() / denom) as f32
}

/// Everything one batched forward pass reveals about a single pair: the
/// per-pair records every aggregate metric is computed from. Callers that
/// need metrics over *slices* of a dataset (e.g. Table 2's Acc.2 over the
/// pairs not used for fine-tuning) slice these records instead of
/// re-running inference.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PairEval {
    /// Per-pixel accuracy of the forecast vs the routed truth.
    pub accuracy: f32,
    /// Per-pixel accuracy over routing-channel pixels only (`0.0` when
    /// the evaluation ran without fabric grid dimensions).
    pub channel_accuracy: f32,
    /// NRMS pixel error of the forecast tensor vs the truth tensor.
    pub nrms: f32,
    /// Scalar congestion decoded from the *predicted* heat map.
    pub pred_congestion: f32,
    /// Ground-truth mean congestion (from routing, via [`Pair`] meta).
    pub true_congestion: f32,
}

/// Which metrics to compute and how — the reusable evaluation policy.
///
/// One [`MetricSet::evaluate`] call runs a single batched inference sweep
/// and derives *all* metrics (accuracy, top-k overlap, Pearson, Spearman,
/// NRMS) from it; there are no per-metric forward re-runs.
#[derive(Debug, Clone, PartialEq)]
pub struct MetricSet {
    /// Per-pixel accuracy tolerance (per channel).
    pub tolerance: f32,
    /// Fraction of placements in the retrieval set: `k = ⌈n·fraction⌉`
    /// (at least 1) — the "top-10%" knob that scales with eval-set size.
    pub top_fraction: f64,
    /// Fixed `k` override (e.g. the paper's literal Top10); `None` uses
    /// [`MetricSet::top_fraction`].
    pub top_count: Option<usize>,
    /// Micro-batch size of the inference sweep (memory/throughput knob;
    /// the result is bitwise-independent of it).
    pub batch: usize,
}

impl Default for MetricSet {
    /// Paper-shaped defaults: 16/255 tolerance, top-10% retrieval,
    /// batches of 8.
    fn default() -> Self {
        MetricSet {
            tolerance: 16.0 / 255.0,
            top_fraction: 0.1,
            top_count: None,
            batch: 8,
        }
    }
}

impl MetricSet {
    /// A metric set using `config`'s accuracy tolerance.
    pub fn from_config(config: &ExperimentConfig) -> Self {
        MetricSet {
            tolerance: config.tolerance,
            ..MetricSet::default()
        }
    }

    /// The same metrics with a fixed top-`k` count (the paper's Top10).
    #[must_use]
    pub fn with_top_count(mut self, k: usize) -> Self {
        self.top_count = Some(k);
        self
    }

    /// The retrieval-set size for an `n`-pair evaluation.
    pub fn top_k(&self, n: usize) -> usize {
        let k = match self.top_count {
            Some(k) => k,
            None => ((n as f64 * self.top_fraction).ceil() as usize).max(1),
        };
        k.min(n)
    }

    /// The single batched inference sweep: forecasts every pair exactly
    /// once (in [`MetricSet::batch`]-sized chunks through
    /// [`Forecaster::forecast_batch`]) and extracts each pair's record.
    /// `grid_width`/`grid_height` locate the routing channels for the
    /// congestion decode; pass `(0, 0)` to skip it (accuracy-only use).
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Eval`] on a model/pair resolution mismatch
    /// (naming the design and index) and propagates forecaster failures.
    pub fn evaluate_pairs(
        &self,
        model: &dyn Forecaster,
        pairs: &[Pair],
        grid_width: usize,
        grid_height: usize,
    ) -> Result<Vec<PairEval>, CoreError> {
        let mut out = Vec::with_capacity(pairs.len());
        for chunk in pairs.chunks(self.batch.max(1)) {
            let xs: Vec<&pop_nn::Tensor> = chunk.iter().map(|p| &p.x).collect();
            let preds = model.forecast_batch(&xs)?;
            if preds.len() != chunk.len() {
                return Err(CoreError::Eval(format!(
                    "forecaster returned {} predictions for {} inputs",
                    preds.len(),
                    chunk.len()
                )));
            }
            for (pred, p) in preds.iter().zip(chunk) {
                let pred_img = tensor_to_image(pred);
                let truth_img = tensor_to_image(&p.y);
                let accuracy =
                    per_pixel_accuracy(&pred_img, &truth_img, self.tolerance).map_err(|e| {
                        CoreError::Eval(format!(
                            "pair {}[{}]: forecast vs truth: {e}",
                            p.meta.design, p.meta.index
                        ))
                    })?;
                out.push(PairEval {
                    accuracy,
                    channel_accuracy: channel_accuracy(
                        grid_width,
                        grid_height,
                        &pred_img,
                        &truth_img,
                        self.tolerance,
                    )?,
                    nrms: nrms(pred.data(), p.y.data()),
                    pred_congestion: image_mean_congestion(grid_width, grid_height, &pred_img),
                    true_congestion: p.meta.true_mean_congestion,
                });
            }
        }
        Ok(out)
    }

    /// Aggregates per-pair records into an [`EvalReport`] — pure
    /// arithmetic, no inference. An empty slice yields the all-zero
    /// report.
    pub fn summarize(&self, evals: &[PairEval]) -> EvalReport {
        let n = evals.len();
        if n == 0 {
            return EvalReport {
                pairs: 0,
                accuracy: 0.0,
                channel_accuracy: 0.0,
                top_overlap: 0.0,
                pearson: 0.0,
                spearman: 0.0,
                nrms: 0.0,
            };
        }
        let mean = |f: fn(&PairEval) -> f32| -> f32 {
            (evals.iter().map(|e| f(e) as f64).sum::<f64>() / n as f64) as f32
        };
        let pred: Vec<f32> = evals.iter().map(|e| e.pred_congestion).collect();
        let truth: Vec<f32> = evals.iter().map(|e| e.true_congestion).collect();
        EvalReport {
            pairs: n,
            accuracy: mean(|e| e.accuracy),
            channel_accuracy: mean(|e| e.channel_accuracy),
            top_overlap: top_k_overlap(&pred, &truth, self.top_k(n)),
            pearson: pearson(&pred, &truth),
            spearman: spearman(&pred, &truth),
            nrms: mean(|e| e.nrms),
        }
    }

    /// Evaluates `model` on a whole dataset: one batched inference sweep
    /// ([`MetricSet::evaluate_pairs`]) feeding every metric
    /// ([`MetricSet::summarize`]).
    ///
    /// # Errors
    ///
    /// Propagates [`MetricSet::evaluate_pairs`] failures.
    pub fn evaluate(
        &self,
        model: &dyn Forecaster,
        ds: &DesignDataset,
    ) -> Result<EvalReport, CoreError> {
        let evals = self.evaluate_pairs(model, &ds.pairs, ds.grid_width, ds.grid_height)?;
        Ok(self.summarize(&evals))
    }
}

/// All Table-2 metrics of one `(model, dataset)` evaluation, produced by a
/// single batched inference pass. Every field is finite for finite inputs
/// (the scalar metrics define their edge cases instead of emitting `NaN`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EvalReport {
    /// How many pairs were evaluated.
    pub pairs: usize,
    /// Mean per-pixel accuracy (Table 2 "Acc.").
    pub accuracy: f32,
    /// Mean per-pixel accuracy over routing-channel pixels only — the
    /// like-for-like detail metric against analytical baselines.
    pub channel_accuracy: f32,
    /// Top-k min-congestion retrieval overlap (Table 2 "Top10", scaled to
    /// the eval-set size via [`MetricSet::top_k`]).
    pub top_overlap: f32,
    /// Pearson correlation of predicted vs routed mean congestion.
    pub pearson: f32,
    /// Spearman rank correlation of predicted vs routed mean congestion.
    pub spearman: f32,
    /// Mean NRMS pixel error (lower is better; 0 = pixel-perfect).
    pub nrms: f32,
}

impl EvalReport {
    /// Whether every metric is a finite number — the "no NaN cells"
    /// invariant evaluation matrices assert.
    pub fn is_finite(&self) -> bool {
        [
            self.accuracy,
            self.channel_accuracy,
            self.top_overlap,
            self.pearson,
            self.spearman,
            self.nrms,
        ]
        .iter()
        .all(|v| v.is_finite())
    }
}

/// Predicted-vs-true congestion correlation over a whole dataset:
/// `(pearson, spearman)` from one batched inference sweep.
///
/// # Errors
///
/// Propagates evaluation failures (resolution mismatches).
pub fn congestion_correlation(
    model: &mut Pix2Pix,
    ds: &DesignDataset,
) -> Result<(f32, f32), CoreError> {
    let report = MetricSet::default().evaluate(&ExclusiveForecaster::new(model), ds)?;
    Ok((report.pearson, report.spearman))
}

/// The Table 2 `Top10` metric: forecast every placement of the held-out
/// design, rank by predicted mean congestion, and measure overlap with the
/// ground-truth top 10.
///
/// # Errors
///
/// Propagates evaluation failures (resolution mismatches).
pub fn top10_accuracy(model: &mut Pix2Pix, ds: &DesignDataset) -> Result<f32, CoreError> {
    let report = MetricSet::default()
        .with_top_count(10)
        .evaluate(&ExclusiveForecaster::new(model), ds)?;
    Ok(report.top_overlap)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn evaluate_accuracy_reports_resolution_mismatch_instead_of_panicking() {
        use crate::dataset::PairMeta;
        use crate::{ExperimentConfig, Pix2Pix};
        use pop_nn::Tensor;
        let config = ExperimentConfig {
            resolution: 16,
            base_filters: 4,
            depth: 3,
            ..ExperimentConfig::test()
        };
        let mut model = Pix2Pix::new(&config, 1).unwrap();
        let ok_pair = Pair {
            x: Tensor::zeros([1, config.input_channels(), 16, 16]),
            y: Tensor::zeros([1, 3, 16, 16]),
            meta: PairMeta::synthetic(0),
        };
        assert!(evaluate_accuracy(&mut model, std::slice::from_ref(&ok_pair), 0.1).is_ok());
        // A pair rendered at a different resolution: proper error, no panic.
        let odd_pair = Pair {
            x: Tensor::zeros([1, config.input_channels(), 16, 16]),
            y: Tensor::zeros([1, 3, 8, 8]),
            meta: PairMeta::synthetic(1),
        };
        let err = evaluate_accuracy(&mut model, &[odd_pair], 0.1).unwrap_err();
        assert!(matches!(err, crate::CoreError::Eval(_)), "{err}");
        // Empty slice stays a defined 0.0, not an error.
        assert_eq!(evaluate_accuracy(&mut model, &[], 0.1).unwrap(), 0.0);
    }

    #[test]
    fn top_k_overlap_perfect_and_disjoint() {
        let truth: Vec<f32> = (0..20).map(|i| i as f32).collect();
        assert_eq!(top_k_overlap(&truth, &truth, 10), 1.0);
        let inverted: Vec<f32> = (0..20).map(|i| (19 - i) as f32).collect();
        assert_eq!(top_k_overlap(&inverted, &truth, 10), 0.0);
    }

    #[test]
    fn top_k_overlap_partial() {
        // Prediction swaps one element of the true top-2 out.
        let truth = vec![0.0, 1.0, 2.0, 3.0];
        let pred = vec![0.0, 9.0, 2.0, 3.0];
        // true top2 = {0, 1}; pred top2 = {0, 2} -> overlap 1/2.
        assert_eq!(top_k_overlap(&pred, &truth, 2), 0.5);
    }

    #[test]
    fn top_k_handles_small_sets_and_k_zero() {
        let s = vec![1.0, 0.5];
        assert_eq!(top_k_overlap(&s, &s, 10), 1.0);
        // k = 0 (and empty inputs): the empty selection is vacuously
        // perfect — identical inputs must always score 1.0.
        let empty: Vec<f32> = vec![];
        assert_eq!(top_k_overlap(&empty, &empty, 10), 1.0);
        assert_eq!(top_k_overlap(&s, &s, 0), 1.0);
    }

    #[test]
    fn top_k_overlap_is_order_independent_under_ties() {
        // Tied boundary scores used to be resolved by input index, so the
        // same score multiset could score differently after a permutation.
        let pred = vec![0.0, 0.0, 1.0];
        let truth = vec![0.0, 1.0, 0.0];
        let a = top_k_overlap(&pred, &truth, 1);
        // Same data, both vectors permuted identically (swap 0 and 1).
        let pred_p = vec![0.0, 0.0, 1.0];
        let truth_p = vec![1.0, 0.0, 0.0];
        let b = top_k_overlap(&pred_p, &truth_p, 1);
        assert_eq!(a, b);
        // Identical tie-heavy inputs are a perfect retrieval.
        let flat = vec![0.5f32; 6];
        assert_eq!(top_k_overlap(&flat, &flat, 2), 1.0);
    }

    #[test]
    fn pearson_detects_linear_relationships() {
        let a: Vec<f32> = (0..20).map(|i| i as f32).collect();
        let b: Vec<f32> = a.iter().map(|v| 3.0 * v + 1.0).collect();
        assert!((pearson(&a, &b) - 1.0).abs() < 1e-5);
        let c: Vec<f32> = a.iter().map(|v| -v).collect();
        assert!((pearson(&a, &c) + 1.0).abs() < 1e-5);
    }

    #[test]
    fn spearman_is_invariant_to_monotone_warping() {
        let a: Vec<f32> = (0..20).map(|i| i as f32).collect();
        // Non-linear but monotone: Pearson < 1, Spearman = 1.
        let b: Vec<f32> = a.iter().map(|v| v.powi(3)).collect();
        assert!((spearman(&a, &b) - 1.0).abs() < 1e-5);
        assert!(pearson(&a, &b) < 0.999);
    }

    #[test]
    fn spearman_averages_tied_ranks() {
        // [0, 1, 1, 2] vs itself must be exactly 1.0 (fractional ranks),
        // and permuting both vectors together must not change the value.
        let a = vec![0.0, 1.0, 1.0, 2.0];
        assert_eq!(spearman(&a, &a), 1.0);
        let b = vec![5.0, 3.0, 4.0, 3.0];
        let ab = spearman(&a, &b);
        let a_p = vec![1.0, 0.0, 2.0, 1.0]; // swap 0<->1, 2<->3
        let b_p = vec![3.0, 5.0, 3.0, 4.0];
        assert_eq!(spearman(&a_p, &b_p), ab);
    }

    #[test]
    fn correlations_handle_degenerate_inputs() {
        assert_eq!(pearson(&[1.0], &[2.0]), 0.0);
        let flat = vec![0.5f32; 8];
        let vary: Vec<f32> = (0..8).map(|i| i as f32).collect();
        // Constant vector: zero variance, correlation defined as exactly 0
        // (the textbook formula would divide by zero).
        assert_eq!(pearson(&flat, &vary), 0.0);
        assert_eq!(spearman(&flat, &vary), 0.0);
        // An awkward constant (inexact mean in f64) is still exactly 0.
        let awkward = vec![0.1f32; 8];
        assert_eq!(pearson(&awkward, &vary), 0.0);
    }

    #[test]
    fn nrms_is_zero_only_on_exact_match() {
        let truth = vec![0.0, 0.5, 1.0];
        assert_eq!(nrms(&truth, &truth), 0.0);
        let off = vec![0.0, 0.6, 1.0];
        assert!(nrms(&off, &truth) > 0.0);
        // Constant truth: the range fallback keeps the metric defined.
        let flat = vec![0.5f32; 4];
        assert_eq!(nrms(&flat, &flat), 0.0);
        let near = vec![0.5, 0.5, 0.5, 0.75];
        let v = nrms(&near, &flat);
        assert!(v > 0.0 && v.is_finite());
        // Empty: defined 0.0.
        assert_eq!(nrms(&[], &[]), 0.0);
    }

    #[test]
    fn image_mean_congestion_reads_colorbar() {
        use pop_arch::Arch;
        use pop_route::CongestionMap;
        let arch = Arch::builder().interior(6, 6).build().unwrap();
        // Uniform 0.5 utilisation everywhere.
        let cong = CongestionMap::from_utilization(&arch, vec![0.5; arch.channel_count()]);
        let netlist = pop_netlist::generate(
            &pop_netlist::presets::by_name("diffeq2")
                .unwrap()
                .scaled(0.01),
        );
        // A netlist that fits this fabric is needed only for rendering;
        // reuse the placement machinery.
        let (c, i, m, x) = netlist.site_demand();
        let arch2 = Arch::auto_size(c, i, m, x, 8, 1.3).unwrap();
        let cong2 = CongestionMap::from_utilization(&arch2, vec![0.5; arch2.channel_count()]);
        let placement = pop_place::place(&arch2, &netlist, &Default::default()).unwrap();
        let img = pop_raster::render_congestion(&arch2, &netlist, &placement, &cong2, 64);
        let mean = image_mean_congestion(arch2.width(), arch2.height(), &img);
        assert!((mean - 0.5).abs() < 0.03, "decoded mean {mean}");
        let _ = cong;
    }

    #[test]
    fn one_inference_pass_feeds_every_metric() {
        use crate::dataset::PairMeta;
        use crate::{ExperimentConfig, Pix2Pix, SharedForecaster};
        use pop_nn::Tensor;
        use std::sync::atomic::{AtomicUsize, Ordering};

        /// Counts how many tensors were actually forecast (and how many
        /// batch calls carried them) on the way to the inner model.
        struct CountingForecaster {
            inner: SharedForecaster,
            batch_calls: AtomicUsize,
            tensors: AtomicUsize,
        }
        impl Forecaster for CountingForecaster {
            fn forecast(&self, x: &Tensor) -> Result<Tensor, CoreError> {
                self.batch_calls.fetch_add(1, Ordering::Relaxed);
                self.tensors.fetch_add(1, Ordering::Relaxed);
                self.inner.forecast(x)
            }
            fn forecast_batch(&self, xs: &[&Tensor]) -> Result<Vec<Tensor>, CoreError> {
                self.batch_calls.fetch_add(1, Ordering::Relaxed);
                self.tensors.fetch_add(xs.len(), Ordering::Relaxed);
                self.inner.forecast_batch(xs)
            }
        }

        let config = ExperimentConfig {
            resolution: 16,
            base_filters: 4,
            depth: 3,
            ..ExperimentConfig::test()
        };
        let pairs: Vec<Pair> = (0..5)
            .map(|s| Pair {
                x: Tensor::randn([1, config.input_channels(), 16, 16], 0.0, 0.5, s),
                y: Tensor::randn([1, 3, 16, 16], 0.0, 0.2, 100 + s),
                meta: PairMeta::synthetic(s),
            })
            .collect();
        let ds = DesignDataset {
            name: "count".into(),
            pairs,
            channel_width: 4,
            grid_width: 4,
            grid_height: 4,
        };
        let counter = CountingForecaster {
            inner: SharedForecaster::new(Pix2Pix::new(&config, 9).unwrap()),
            batch_calls: AtomicUsize::new(0),
            tensors: AtomicUsize::new(0),
        };
        let metrics = MetricSet {
            batch: 2,
            ..MetricSet::default()
        };
        let report = metrics.evaluate(&counter, &ds).unwrap();
        // Every metric is populated from the ONE sweep: exactly one
        // forward per pair, in ceil(5/2) batch calls — not one sweep per
        // metric (5 metrics x 5 pairs would be 25).
        assert_eq!(counter.tensors.load(Ordering::Relaxed), 5);
        assert_eq!(counter.batch_calls.load(Ordering::Relaxed), 3);
        assert_eq!(report.pairs, 5);
        assert!(report.is_finite(), "{report:?}");
        // The classic wrappers ride the same single-pass machinery.
        let mut model = counter.inner.replica();
        let (p, s) = congestion_correlation(&mut model, &ds).unwrap();
        assert!((-1.0..=1.0).contains(&p) && (-1.0..=1.0).contains(&s));
        let top = top10_accuracy(&mut model, &ds).unwrap();
        assert!((0.0..=1.0).contains(&top));
    }

    #[test]
    fn summarize_slices_without_re_running_inference() {
        // Slicing the per-pair records reproduces a fresh evaluation of
        // the same slice — the contract Table 2's Acc.2 relies on.
        let evals: Vec<PairEval> = (0..6)
            .map(|i| PairEval {
                accuracy: 0.1 * i as f32,
                channel_accuracy: 0.1 * i as f32,
                nrms: 0.05 * i as f32,
                pred_congestion: 0.2 + 0.01 * i as f32,
                true_congestion: 0.2 + 0.012 * i as f32,
            })
            .collect();
        let metrics = MetricSet::default();
        let full = metrics.summarize(&evals);
        let tail = metrics.summarize(&evals[2..]);
        assert_eq!(full.pairs, 6);
        assert_eq!(tail.pairs, 4);
        assert!(tail.accuracy > full.accuracy);
        // Empty slice: the defined all-zero report, not NaN.
        let empty = metrics.summarize(&[]);
        assert_eq!(empty.pairs, 0);
        assert!(empty.is_finite());
    }
}
