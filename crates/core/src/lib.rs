//! The paper's contribution: forecasting routing congestion from placement
//! with a conditional GAN ("painting on placement").
//!
//! The pipeline mirrors §2–§4 of the paper:
//!
//! 1. a placed design is rendered into the input features
//!    `x = stack(img_place, λ·img_connect)` ([`features`]);
//! 2. a U-Net generator with full skip connections ([`UNetGenerator`])
//!    paints the routing heat map `G(x, z)` (Figure 5, left);
//! 3. a six-layer convolutional patch discriminator
//!    ([`PatchDiscriminator`]) judges `(x, heat-map)` pairs (Figure 5,
//!    right);
//! 4. [`Pix2Pix`] trains both with `cGAN + λ_L1·L1` (Equations 1–2 plus the
//!    §4.1 combined objective), recording the loss history that Figure 8
//!    plots;
//! 5. [`dataset`] regenerates the paper's data: placement-option sweeps,
//!    ground-truth routing, rasterisation and tensor assembly, with a disk
//!    cache;
//! 6. [`metrics`] computes Table 2's Acc.1/Acc.2 per-pixel accuracies and
//!    Top10 retrieval metric;
//! 7. [`apps`] implements §5.4: congestion-aware placement exploration,
//!    region-constrained exploration (Figure 9) and real-time forecasting
//!    during simulated annealing.
//!
//! Scale note: the paper trains at 256×256 for 250 epochs on a GPU. The
//! same code runs here on CPU; [`ExperimentConfig::paper`] records the
//! paper-exact settings while [`ExperimentConfig::quick`] (the default for
//! benches) shrinks resolution/filters/epochs so experiments finish on one
//! core. All reported comparisons are *shape* comparisons (see
//! EXPERIMENTS.md).
//!
//! # Example
//!
//! ```no_run
//! use pop_core::{dataset::build_design_dataset, ExperimentConfig, Pix2Pix};
//! use pop_netlist::presets;
//!
//! let config = ExperimentConfig::test();
//! let data = build_design_dataset(&presets::by_name("diffeq1").unwrap(), &config)?;
//! let mut model = Pix2Pix::new(&config, 1)?;
//! let history = model.train(&data.pairs, config.epochs);
//! println!("final G loss: {}", history.generator_loss.last().unwrap());
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

pub mod apps;
pub mod baseline;
mod config;
pub mod dataset;
mod disc;
mod error;
pub mod features;
mod forecaster;
pub mod metrics;
pub mod model_io;
mod quant;
mod trainer;
mod unet;

pub use config::{ExperimentConfig, SkipMode};
pub use disc::PatchDiscriminator;
pub use error::CoreError;
pub use forecaster::{ExclusiveForecaster, Forecaster, SharedForecaster};
pub use metrics::{EvalReport, MetricSet, PairEval};
pub use quant::{QuantizedForecaster, QuantizedGenerator};
pub use trainer::{NoCheckpoint, Pix2Pix, StreamCheckpoint, TrainHistory};
pub use unet::UNetGenerator;
