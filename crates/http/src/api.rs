//! The typed JSON bodies of the forecast API.
//!
//! Floats cross the wire *exactly*: [`fmt_f32`] writes the shortest
//! decimal that uniquely identifies the `f32` (Rust's `{}` formatting),
//! and [`f32_from`] recovers it by parsing as `f64` and rounding once to
//! `f32` — lossless for shortest-repr input because `f64` carries more
//! than twice an `f32`'s precision, so the intermediate rounding cannot
//! move the value across an `f32` boundary. The golden determinism test
//! (`tests/http_golden.rs`) pins the resulting bitwise HTTP-vs-in-process
//! equality.

use pop_nn::Tensor;
use pop_obs::json::{self, Value};

/// A request-level API failure: the HTTP status plus a message for the
/// `{"error": ...}` body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ApiError {
    pub status: u16,
    pub message: String,
}

impl ApiError {
    pub fn bad(message: impl Into<String>) -> Self {
        ApiError {
            status: 400,
            message: message.into(),
        }
    }
}

impl std::fmt::Display for ApiError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} ({})", self.message, self.status)
    }
}

impl std::error::Error for ApiError {}

/// The decoded body of `POST /v1/forecast`.
#[derive(Debug, Clone, PartialEq)]
pub struct ForecastRequest {
    /// Which registered model answers; `None` selects the service default.
    pub model: Option<String>,
    /// Route to the i8 quantized replicas instead of the f32 engine.
    pub quantized: bool,
    /// The flattened `[1, C, H, W]` feature-map tensor, row-major.
    pub features: Vec<f32>,
}

/// Parses a `POST /v1/forecast` body.
///
/// # Errors
///
/// Returns a 400 [`ApiError`] for non-UTF-8, non-JSON, or structurally
/// wrong documents (missing/ill-typed `features`, ill-typed options).
pub fn parse_forecast_request(body: &[u8]) -> Result<ForecastRequest, ApiError> {
    let text = std::str::from_utf8(body).map_err(|_| ApiError::bad("request body is not UTF-8"))?;
    let doc = json::parse(text).map_err(|e| ApiError::bad(format!("invalid JSON: {e}")))?;
    if !matches!(doc, Value::Object(_)) {
        return Err(ApiError::bad("request body must be a JSON object"));
    }
    let model = match doc.get("model") {
        None | Some(Value::Null) => None,
        Some(Value::String(s)) => Some(s.clone()),
        Some(_) => return Err(ApiError::bad("\"model\" must be a string")),
    };
    let quantized = match doc.get("quantized") {
        None | Some(Value::Null) => false,
        Some(Value::Bool(b)) => *b,
        Some(_) => return Err(ApiError::bad("\"quantized\" must be a boolean")),
    };
    let features = doc
        .get("features")
        .and_then(Value::as_array)
        .ok_or_else(|| ApiError::bad("\"features\" must be an array of numbers"))?;
    let features = features
        .iter()
        .map(|v| {
            v.as_f64()
                .map(f32_from)
                .ok_or_else(|| ApiError::bad("\"features\" must contain only numbers"))
        })
        .collect::<Result<Vec<f32>, ApiError>>()?;
    Ok(ForecastRequest {
        model,
        quantized,
        features,
    })
}

/// Renders the `POST /v1/forecast` response body.
pub fn render_forecast_response(model: &str, quantized: bool, tensor: &Tensor) -> String {
    let shape = tensor.shape();
    let mut out = String::with_capacity(tensor.data().len() * 12 + 128);
    out.push_str("{\"model\": ");
    out.push_str(&json::str_lit(model));
    out.push_str(", \"quantized\": ");
    out.push_str(if quantized { "true" } else { "false" });
    out.push_str(&format!(
        ", \"shape\": [{}, {}, {}, {}], \"data\": [",
        shape[0], shape[1], shape[2], shape[3]
    ));
    for (i, v) in tensor.data().iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        out.push_str(&fmt_f32(*v));
    }
    out.push_str("]}");
    out
}

/// Parses a forecast response back into a tensor — the client half used
/// by the golden tests and the load generator.
///
/// # Errors
///
/// Returns a 400-status [`ApiError`] for malformed documents or a
/// `shape`/`data` length mismatch.
pub fn parse_forecast_response(body: &[u8]) -> Result<Tensor, ApiError> {
    let text =
        std::str::from_utf8(body).map_err(|_| ApiError::bad("response body is not UTF-8"))?;
    let doc = json::parse(text).map_err(|e| ApiError::bad(format!("invalid JSON: {e}")))?;
    let shape_vals = doc
        .get("shape")
        .and_then(Value::as_array)
        .ok_or_else(|| ApiError::bad("missing \"shape\""))?;
    let dims = shape_vals
        .iter()
        .map(|v| {
            v.as_u64()
                .map(|n| n as usize)
                .ok_or_else(|| ApiError::bad("\"shape\" must be non-negative integers"))
        })
        .collect::<Result<Vec<usize>, ApiError>>()?;
    let [n, c, h, w] = dims.as_slice() else {
        return Err(ApiError::bad("\"shape\" must have 4 dimensions"));
    };
    let shape = [*n, *c, *h, *w];
    let data = doc
        .get("data")
        .and_then(Value::as_array)
        .ok_or_else(|| ApiError::bad("missing \"data\""))?
        .iter()
        .map(|v| {
            v.as_f64()
                .map(f32_from)
                .ok_or_else(|| ApiError::bad("\"data\" must contain only numbers"))
        })
        .collect::<Result<Vec<f32>, ApiError>>()?;
    let expected =
        checked_volume(shape).ok_or_else(|| ApiError::bad("\"shape\" volume overflows"))?;
    if data.len() != expected {
        return Err(ApiError::bad(format!(
            "\"data\" has {} values, shape wants {expected}",
            data.len()
        )));
    }
    Ok(Tensor::from_vec(shape, data))
}

/// Serializes a flattened feature vector as a forecast request body.
pub fn render_forecast_request(model: Option<&str>, quantized: bool, features: &[f32]) -> String {
    let mut out = String::with_capacity(features.len() * 12 + 96);
    out.push('{');
    if let Some(model) = model {
        out.push_str("\"model\": ");
        out.push_str(&json::str_lit(model));
        out.push_str(", ");
    }
    if quantized {
        out.push_str("\"quantized\": true, ");
    }
    out.push_str("\"features\": [");
    for (i, v) in features.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        out.push_str(&fmt_f32(*v));
    }
    out.push_str("]}");
    out
}

/// Shortest-round-trip decimal for an `f32`; non-finite values (which the
/// tanh-bounded forecaster never produces) become JSON `null`.
pub fn fmt_f32(v: f32) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_string()
    }
}

/// The inverse of [`fmt_f32`] after a generic `f64` JSON parse: one final
/// rounding step to `f32`.
pub fn f32_from(v: f64) -> f32 {
    v as f32
}

/// `n*c*h*w` without overflow, or `None`.
pub fn checked_volume(shape: [usize; 4]) -> Option<usize> {
    shape.iter().try_fold(1usize, |acc, &d| acc.checked_mul(d))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forecast_request_round_trips() {
        let features = vec![0.5f32, -1.25, 3.0e-8, f32::MIN_POSITIVE];
        let body = render_forecast_request(Some("dense"), true, &features);
        let req = parse_forecast_request(body.as_bytes()).unwrap();
        assert_eq!(req.model.as_deref(), Some("dense"));
        assert!(req.quantized);
        assert_eq!(req.features, features);
    }

    #[test]
    fn minimal_request_defaults_model_and_precision() {
        let req = parse_forecast_request(b"{\"features\": [1, 2.5]}").unwrap();
        assert_eq!(req.model, None);
        assert!(!req.quantized);
        assert_eq!(req.features, vec![1.0, 2.5]);
    }

    #[test]
    fn every_f32_bit_pattern_family_round_trips_exactly() {
        // A hostile sample: subnormals, ULP neighbours, huge/tiny values.
        let samples = [
            0.0f32,
            -0.0,
            1.0,
            -1.0,
            f32::MIN_POSITIVE,
            f32::MIN_POSITIVE / 2.0, // subnormal
            f32::MAX,
            f32::MIN,
            1.0 + f32::EPSILON,
            0.1,
            -0.3,
            core::f32::consts::PI,
            1.234_567_9e-30,
            9.876_543e30,
        ];
        for v in samples {
            let text = fmt_f32(v);
            let parsed = pop_obs::json::parse(&text).unwrap();
            let back = f32_from(parsed.as_f64().unwrap());
            assert_eq!(
                back.to_bits(),
                v.to_bits(),
                "{v:?} must survive {text} exactly"
            );
        }
    }

    #[test]
    fn forecast_response_round_trips_tensors() {
        let t = Tensor::from_vec([1, 2, 2, 1], vec![0.25, -0.125, 1.0e-7, 0.99999994]);
        let body = render_forecast_response("base", false, &t);
        let back = parse_forecast_response(body.as_bytes()).unwrap();
        assert_eq!(back, t);
        assert!(body.contains("\"model\": \"base\""));
        assert!(body.contains("\"quantized\": false"));
    }

    #[test]
    fn malformed_bodies_are_400() {
        for body in [
            b"not json".as_slice(),
            b"[1, 2]",
            b"{\"features\": \"nope\"}",
            b"{\"features\": [1, \"x\"]}",
            b"{\"features\": [1], \"model\": 7}",
            b"{\"features\": [1], \"quantized\": \"yes\"}",
            b"{}",
            b"\xff\xfe",
        ] {
            let err = parse_forecast_request(body).unwrap_err();
            assert_eq!(err.status, 400, "{err}");
        }
    }

    #[test]
    fn response_parser_rejects_shape_mismatches() {
        assert!(parse_forecast_response(b"{\"shape\": [1,1,2,2], \"data\": [1,2,3]}").is_err());
        assert!(parse_forecast_response(b"{\"shape\": [1,1], \"data\": []}").is_err());
        assert!(parse_forecast_response(b"{\"data\": [1]}").is_err());
    }
}
