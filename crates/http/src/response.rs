//! HTTP/1.1 response assembly and serialization.

use std::io::Write;

/// An HTTP response under construction. Serialization always emits
/// `Content-Length` (no chunked encoding) and an explicit `Connection`
/// header, so clients never have to guess framing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Response {
    status: u16,
    headers: Vec<(String, String)>,
    body: Vec<u8>,
}

impl Response {
    pub fn new(status: u16) -> Self {
        Response {
            status,
            headers: Vec::new(),
            body: Vec::new(),
        }
    }

    /// A response carrying a JSON document.
    pub fn json(status: u16, body: String) -> Self {
        Response::new(status)
            .header("Content-Type", "application/json")
            .with_body(body.into_bytes())
    }

    /// A JSON error body `{"error": "..."}` with the given status.
    pub fn error(status: u16, message: &str) -> Self {
        Response::json(
            status,
            format!("{{\"error\": {}}}", pop_obs::json::str_lit(message)),
        )
    }

    pub fn header(mut self, name: &str, value: &str) -> Self {
        self.headers.push((name.to_string(), value.to_string()));
        self
    }

    pub fn with_body(mut self, body: Vec<u8>) -> Self {
        self.body = body;
        self
    }

    pub fn status(&self) -> u16 {
        self.status
    }

    pub fn body(&self) -> &[u8] {
        &self.body
    }

    /// Serializes the response, stamping framing headers. `keep_alive`
    /// decides the `Connection` header — the caller owns that policy.
    ///
    /// # Errors
    ///
    /// Propagates write failures (a disconnected peer).
    pub fn write_to(&self, w: &mut impl Write, keep_alive: bool) -> std::io::Result<()> {
        let mut head = format!(
            "HTTP/1.1 {} {}\r\n",
            self.status,
            reason_phrase(self.status)
        );
        for (name, value) in &self.headers {
            head.push_str(name);
            head.push_str(": ");
            head.push_str(value);
            head.push_str("\r\n");
        }
        head.push_str(&format!("Content-Length: {}\r\n", self.body.len()));
        head.push_str(if keep_alive {
            "Connection: keep-alive\r\n\r\n"
        } else {
            "Connection: close\r\n\r\n"
        });
        // One buffer, one write: a head-then-body write pair over a bare
        // TcpStream tears the response across two segments and can stall
        // ~40ms against Nagle + delayed-ACK peers.
        let mut frame = head.into_bytes();
        frame.extend_from_slice(&self.body);
        w.write_all(&frame)?;
        w.flush()
    }
}

/// The standard reason phrase for the statuses this server emits.
pub fn reason_phrase(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        408 => "Request Timeout",
        413 => "Payload Too Large",
        429 => "Too Many Requests",
        431 => "Request Header Fields Too Large",
        500 => "Internal Server Error",
        501 => "Not Implemented",
        503 => "Service Unavailable",
        _ => "Unknown",
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serializes_status_headers_and_framing() {
        let r = Response::json(200, "{\"ok\": true}".to_string());
        let mut out = Vec::new();
        r.write_to(&mut out, true).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"));
        assert!(text.contains("Content-Type: application/json\r\n"));
        assert!(text.contains("Content-Length: 12\r\n"));
        assert!(text.contains("Connection: keep-alive\r\n\r\n{\"ok\": true}"));
    }

    #[test]
    fn close_connections_say_so() {
        let mut out = Vec::new();
        Response::error(429, "try later")
            .header("Retry-After", "1")
            .write_to(&mut out, false)
            .unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 429 Too Many Requests\r\n"));
        assert!(text.contains("Retry-After: 1\r\n"));
        assert!(text.contains("Connection: close\r\n"));
        assert!(text.ends_with("{\"error\": \"try later\"}"));
    }
}
