//! `pop-http` — a zero-dependency HTTP/1.1 front end for the forecast
//! serving engine.
//!
//! The paper's §5.4 realtime application assumes the congestion
//! forecaster is callable as a service during physical design; the
//! ROADMAP north star is a production-scale deployment of exactly that.
//! This crate promotes [`pop_serve::ForecastEngine`] from an in-process
//! library to a network-facing system, built entirely on `std::net` plus
//! the workspace's own substrate:
//!
//! * [`RequestParser`] — an incremental, bounded HTTP/1.1 request parser
//!   ([`ParserLimits`]: head size, header count, body size), hardened by
//!   property tests over arbitrary byte fragments: it never panics, and
//!   every malformed input maps to a typed [`ParseError`] with a status.
//! * [`ForecastService`] — named models (each an engine with per-worker
//!   replicas, plus an optional i8 quantized sibling) behind a pure
//!   `Request -> Response` router:
//!
//!   | Route | Answers |
//!   |---|---|
//!   | `POST /v1/forecast` | a forecast (body selects model + precision) |
//!   | `POST /v1/models/<name>/forecast` | per-scenario endpoint sugar |
//!   | `GET /v1/models` | registered models + per-model counters |
//!   | `GET /v1/stats` | serve + transport counters, obs metrics dump |
//!   | `GET /healthz` | liveness |
//!
//! * [`HttpServer`] — accept thread → bounded connection queue →
//!   [`pop_exec::WorkerPool`] connection workers, with read/write
//!   deadlines (slowloris defense), keep-alive, admission control at two
//!   layers (`503` when the connection backlog is full, `429` +
//!   `Retry-After` when an engine queue is — the
//!   [`try_submit`](pop_serve::ForecastClient::try_submit) backpressure
//!   path), and graceful drain ([`HttpServer::shutdown`] →
//!   [`DrainReport`]).
//! * [`HttpClient`] — the blocking keep-alive client the fault-injection
//!   tests and the closed-loop load bench drive the server with.
//!
//! Floats cross the wire bitwise-exactly (shortest-repr decimals, see
//! [`api`]), so an HTTP forecast equals the in-process one — pinned by
//! `tests/http_golden.rs`.

pub mod api;
mod client;
mod parser;
mod response;
mod server;
mod service;

pub use client::{read_response, ClientResponse, HttpClient};
pub use parser::{ParseError, ParserLimits, Request, RequestParser};
pub use response::{reason_phrase, Response};
pub use server::{DrainReport, HttpServer, HttpStats, HttpStatsSnapshot, ServerConfig};
pub use service::{ForecastService, ServiceBuilder};
